#!/usr/bin/env bash
# CI gate: tier-1 build + tests, the sanitizer preset, and lint.
#
# Exits nonzero on the first failure (set -e), so a red step fails the
# whole job.  Steps:
#   1. default preset  — Release build, full ctest suite
#   2. fault smoke     — the fault-injection and recovery benches (fast
#                        mode, fixed seeds) rerun verbosely so a hang or
#                        crash in the kill/restart paths is easy to read
#      (the chaos and partition smokes rerun the serving and switch-fault
#       benches the same way: fast mode, fixed seeds, self-gating)
#   3. sched-fuzz smoke— the moviola deadlock detector rides a reduced
#                        PCT schedule sweep (10 seeds x 4 workloads); any
#                        finding, lint or wedge on any seed is a failure
#   3b. sync smoke     — the scalable-synchronization suites (MCS, tree
#                        barrier, idle counters, observer contract) plus
#                        the tsync weak-scaling bench's self-gates at
#                        256/1K nodes (label sync-smoke)
#   3c. parsim smoke   — the parallel host engine's A/B determinism suite
#                        and host-thread primitive tests (label parsim-smoke)
#   4. scope smoke     — a traced Gauss run exports a Chrome trace, then
#                        the standalone validator re-checks the file on
#                        disk (parses, monotone timestamps, balanced B/E)
#   5. perf smoke      — the host-simulator microbenchmarks at a tiny
#                        min-time, printing the BENCH_host_sim.json row.
#                        NON-GATING: CI machines have wildly variable
#                        throughput, so a slow run only warns
#   5b. parsim tsan    — test_parsim_core (the fiber-free mailbox/barrier/
#                        driver suite) rebuilt under ThreadSanitizer.
#                        NON-GATING while the stage beds in
#   6. asan preset     — ASan+UBSan build, full ctest suite
#   7. lint            — clang-tidy over src/ against the compile database
#                        (skips with a notice when clang-tidy isn't installed;
#                        the `lint` target handles that itself); concurrency-*
#                        findings are promoted to errors via WarningsAsErrors
#
# Usage: ci/check.sh [jobs]        (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

step() { printf '\n=== %s ===\n' "$*"; }

step "configure + build (default preset)"
cmake --preset default
cmake --build --preset default -j "$JOBS"

step "test (default preset)"
ctest --preset default -j "$JOBS"

step "fault-heavy smoke (tfault + trecovery benches, fast mode)"
ctest --preset default -L fault-smoke --output-on-failure --verbose

step "chaos smoke (tserving bench: kills + gray failure gates, fast mode)"
ctest --preset default -L chaos-smoke --output-on-failure --verbose

step "partition smoke (tpartition bench: dead card + split-brain gates, fast mode)"
ctest --preset default -L partition-smoke --output-on-failure --verbose

step "sched-fuzz smoke (moviola detector over PCT schedule seeds)"
ctest --preset default -L sched-fuzz-smoke --output-on-failure --verbose

step "sync smoke (MCS/tree-barrier/counter suites + tsync scaling gates)"
ctest --preset default -L sync-smoke --output-on-failure

step "parsim smoke (parallel host engine: A/B determinism + primitives)"
ctest --preset default -L parsim-smoke --output-on-failure

step "scope smoke (traced Gauss -> Chrome trace -> validator)"
./build/tools/trace_gauss build/scope_ci_trace.json build/scope_ci_metrics.json
./build/tools/trace_validate build/scope_ci_trace.json

step "perf smoke (host simulator microbenchmarks, non-gating)"
# Note: this google-benchmark takes --benchmark_min_time as a plain double
# (seconds); the "0.05s" suffix form is a newer addition it rejects.
if BFLY_HOST_SIM_OUT=build/BENCH_host_sim_ci.json \
    ./build/bench/bench_host_simulator --benchmark_min_time=0.05; then
  :
else
  echo "perf smoke failed (non-gating; host throughput varies in CI)"
fi

step "parsim tsan smoke (mailbox/barrier/driver under TSan, non-gating)"
# Only the fiber-free test_parsim_core binary runs under TSan: ThreadSanitizer
# does not understand ucontext fiber switches, so the Machine-level suites
# stay on the ASan preset below.  Non-gating while the stage beds in — a TSan
# finding prints loudly but does not fail the job.
if cmake --preset tsan && cmake --build --preset tsan -j "$JOBS" &&
    ./build-tsan/tests/test_parsim_core; then
  :
else
  echo "parsim tsan smoke failed (non-gating; see output above)"
fi

step "configure + build (asan preset)"
cmake --preset asan
cmake --build --preset asan -j "$JOBS"

step "test (asan preset)"
ctest --preset asan -j "$JOBS"

step "lint (clang-tidy)"
cmake --build build --target lint

step "all checks passed"
