// TSCOPE — host wall-clock cost of scope tracing.
//
// The Tracer charges nothing in simulated time (tests/scope proves traced
// runs are event-identical to bare runs), so the only price of tracing is
// host time — but that price has two distinct parts since the charge()
// fast path landed (DESIGN.md §4d):
//
//   * attaching any TraceSink forfeits the switch-free fast path (traced
//     runs ride the always-yield slow path, whose interleaving the hooks
//     can observe), and
//   * the hooks themselves: the calls, the event-log appends, the
//     occupancy bins.
//
// So the bench runs the FIG5 Gauss workload three ways — bare (fast path
// on), bare with the fast path disabled, and traced — and reports the
// hook cost against the *slow-path* bare run (apples to apples) with the
// fast-path forfeiture broken out separately.  The Chrome-trace export is
// timed on its own, since exporting happens once at the end rather than
// inside the run.
//
// Output: a human-readable table plus one JSON line for scraping.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "apps/gauss.hpp"
#include "bench_common.hpp"
#include "scope/scope.hpp"
#include "sim/json.hpp"
#include "sim/machine.hpp"

namespace {

double host_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace bfly;
  const std::uint32_t n = bench::fast_mode() ? 48 : 96;
  const std::uint32_t procs = 8;
  bench::header("TSCOPE", "host wall-clock overhead of scope tracing",
                "tracing charges zero simulated time; the event log costs "
                "host time only");
  std::printf("matrix N=%u, 8-node Butterfly-I, US Gauss, best of %d runs\n\n",
              n, bench::fast_mode() ? 3 : 5);

  apps::GaussConfig cfg;
  cfg.n = n;
  cfg.processors = procs;

  sim::MachineConfig slow_cfg = sim::butterfly1(8);
  slow_cfg.host_fastpath = false;

  const int reps = bench::fast_mode() ? 3 : 5;
  double bare_best = 1e100;
  double slow_best = 1e100;
  double traced_best = 1e100;
  double export_best = 1e100;
  sim::Time bare_elapsed = 0;
  sim::Time traced_elapsed = 0;
  std::uint64_t spans = 0;
  std::uint64_t refs = 0;
  std::size_t trace_bytes = 0;
  for (int i = 0; i < reps; ++i) {
    {
      sim::Machine m(sim::butterfly1(8));
      const auto t0 = std::chrono::steady_clock::now();
      const apps::GaussResult r = apps::gauss_us(m, cfg);
      bare_best = std::min(bare_best, host_seconds_since(t0));
      bare_elapsed = r.elapsed;
    }
    {
      sim::Machine m(slow_cfg);
      const auto t0 = std::chrono::steady_clock::now();
      (void)apps::gauss_us(m, cfg);
      slow_best = std::min(slow_best, host_seconds_since(t0));
    }
    {
      sim::Machine m(sim::butterfly1(8));
      scope::Tracer tracer(m);
      const auto t0 = std::chrono::steady_clock::now();
      const apps::GaussResult r = apps::gauss_us(m, cfg);
      traced_best = std::min(traced_best, host_seconds_since(t0));
      traced_elapsed = r.elapsed;
      spans = tracer.spans_begun();
      refs = tracer.references_seen();
      const auto t1 = std::chrono::steady_clock::now();
      const std::string trace = tracer.chrome_trace();
      export_best = std::min(export_best, host_seconds_since(t1));
      trace_bytes = trace.size();
    }
  }

  // Unchargedness shows up here for free: the simulated clocks must agree.
  const bool uncharged = bare_elapsed == traced_elapsed;
  const double hook_overhead = traced_best / slow_best - 1.0;
  const double total_overhead = traced_best / bare_best - 1.0;
  const double forfeit = slow_best / bare_best - 1.0;
  std::printf("%10s %10s %10s %9s %9s %10s %10s %9s\n", "bare(s)",
              "slowpath(s)", "traced(s)", "hooks", "total", "export(s)",
              "trace(MB)", "uncharged");
  std::printf("%10.3f %10.3f %10.3f %8.1f%% %8.1f%% %10.3f %10.2f %9s\n",
              bare_best, slow_best, traced_best, hook_overhead * 100.0,
              total_overhead * 100.0, export_best,
              static_cast<double>(trace_bytes) / (1024.0 * 1024.0),
              uncharged ? "yes" : "NO");

  sim::json::Writer jw;
  jw.begin_object()
      .kv("bench", "tscope_overhead")
      .kv("n", n)
      .kv("procs", procs)
      .kv("bare_host_s", bare_best)
      .kv("bare_slowpath_host_s", slow_best)
      .kv("traced_host_s", traced_best)
      .kv("hook_overhead_pct", hook_overhead * 100.0)
      .kv("total_overhead_pct", total_overhead * 100.0)
      .kv("fastpath_forfeit_pct", forfeit * 100.0)
      .kv("export_host_s", export_best)
      .kv("trace_bytes", static_cast<std::uint64_t>(trace_bytes))
      .kv("spans", spans)
      .kv("references", refs)
      .kv("sim_elapsed_ns", traced_elapsed)
      .kv("uncharged", uncharged)
      .end_object();
  std::printf("%s\n", jw.str().c_str());

  std::printf(
      "\nshape check: uncharged must say yes (identical simulated clocks);\n"
      "hooks is the tracer's own cost vs the slow-path run it rides and\n"
      "should stay well under 2x; total additionally pays the forfeited\n"
      "charge fast path (DESIGN.md 4d) and may be much larger.\n");
  return uncharged ? 0 : 1;
}
