// T-BRIDGE — Bridge parallel file system scaling (Section 3.4).
//
// Paper: "Analytical and experimental studies indicate that Bridge will
// provide linear speedup on several dozen disks for a wide variety of
// file-based operations, including copying, sorting, searching, and
// comparing."

#include <cstdio>

#include "bench_common.hpp"
#include "bridge/bridge.hpp"

namespace {

using namespace bfly;
using sim::Time;

struct OpTimes {
  Time copy = 0, search = 0, compare = 0, sort = 0;
};

OpTimes run(std::uint32_t disks, std::uint32_t file_blocks) {
  sim::MachineConfig mc = sim::butterfly1(128);
  mc.memory_per_node = 4u << 20;
  sim::Machine m(mc);
  chrys::Kernel k(m);
  OpTimes out;
  k.create_process(127, [&] {
    bridge::BridgeFs fs(k, disks);
    const bridge::FileId a = fs.create("a");
    const bridge::FileId b = fs.create("b");
    const bridge::FileId c = fs.create("c");
    std::vector<std::uint8_t> blk(bridge::kBlockSize);
    sim::Rng rng(7);
    for (std::uint32_t i = 0; i < file_blocks; ++i) {
      for (auto& byte : blk) byte = static_cast<std::uint8_t>(rng.next());
      fs.write_block(a, i, blk.data());
    }
    Time t0 = m.now();
    fs.tool_copy(a, b);
    out.copy = m.now() - t0;
    t0 = m.now();
    (void)fs.tool_search(a, 0x42);
    out.search = m.now() - t0;
    t0 = m.now();
    (void)fs.tool_compare(a, b);
    out.compare = m.now() - t0;
    t0 = m.now();
    fs.tool_sort(a, c);
    out.sort = m.now() - t0;
    fs.shutdown();
  });
  m.run();
  return out;
}

}  // namespace

int main() {
  bench::header("T-BRIDGE", "interleaved-file operations vs number of disks",
                "near-linear speedup on several dozen disks for copy / "
                "search / compare; sort gains but pays a serial merge tail");
  const std::uint32_t blocks = bench::fast_mode() ? 96 : 384;
  std::printf("file: %u blocks of %zu bytes\n\n", blocks, bridge::kBlockSize);
  std::printf("%6s %10s %10s %10s %10s | %8s %8s\n", "disks", "copy(s)",
              "search(s)", "compare(s)", "sort(s)", "cp-spd", "srch-spd");

  OpTimes base{};
  for (std::uint32_t d : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const OpTimes t = run(d, blocks);
    if (d == 1) base = t;
    std::printf("%6u %10.2f %10.2f %10.2f %10.2f | %7.1fx %7.1fx\n", d,
                bench::seconds(t.copy), bench::seconds(t.search),
                bench::seconds(t.compare), bench::seconds(t.sort),
                sim::ratio(base.copy, t.copy),
                sim::ratio(base.search, t.search));
  }
  std::printf("\nshape check: copy/search/compare speedups track the disk "
              "count into the\ndozens; sort flattens as the serial merge "
              "dominates (Amdahl again).\n");
  return 0;
}
