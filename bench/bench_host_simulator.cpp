// HOST — google-benchmark microbenchmarks of the simulator itself.
//
// Everything else in bench/ measures *simulated* Butterfly time; this
// binary measures the host cost of the simulation substrate (events,
// fiber switches, timed references), which bounds how big an experiment
// is practical.  These are host-machine numbers and carry no
// paper-reproduction meaning.
//
// Besides the google-benchmark tables, main() runs a hand-timed pass and
// appends a throughput row to BENCH_host_sim.json (override the path with
// BFLY_HOST_SIM_OUT; see DESIGN.md "Host performance model" for how to
// read it).  The committed file keeps one row per engine generation, so
// the trajectory of the event core survives across PRs.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chrysalis/kernel.hpp"
#include "scope/trace_check.hpp"
#include "sim/json.hpp"
#include "sim/machine.hpp"

namespace {

using namespace bfly;

void BM_EngineEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    std::uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i)
      e.post_at(static_cast<sim::Time>(i), [&sink, i] { sink += i; });
    e.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineEventDispatch);

void BM_FiberSwitchPair(benchmark::State& state) {
  sim::Fiber f(
      [] {
        while (true) sim::Fiber::yield_to_engine();
      },
      64 * 1024);
  for (auto _ : state) f.resume();  // resume + yield = one switch pair
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FiberSwitchPair);

sim::MachineConfig timed_ref_config(bool fastpath) {
  sim::MachineConfig cfg = sim::butterfly1(128);
  cfg.host_fastpath = fastpath;
  return cfg;
}

void timed_remote_reference_loop(benchmark::State& state, bool fastpath) {
  for (auto _ : state) {
    sim::Machine m(timed_ref_config(fastpath));
    sim::PhysAddr a = m.alloc(64, 64);
    m.spawn(0, [&] {
      for (int i = 0; i < 500; ++i)
        benchmark::DoNotOptimize(m.read<std::uint32_t>(a));
    });
    m.run();
  }
  state.SetItemsProcessed(state.iterations() * 500);
}

void BM_TimedRemoteReference(benchmark::State& state) {
  timed_remote_reference_loop(state, /*fastpath=*/true);
}
BENCHMARK(BM_TimedRemoteReference);

/// The same workload through the always-yield slow path: the gap between
/// this and BM_TimedRemoteReference is what the charge() fast path buys.
void BM_TimedRemoteReferenceSlowPath(benchmark::State& state) {
  timed_remote_reference_loop(state, /*fastpath=*/false);
}
BENCHMARK(BM_TimedRemoteReferenceSlowPath);

void BM_ChrysalisProcessCreation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Machine m(sim::butterfly1(16));
    chrys::Kernel k(m);
    k.create_process(0, [&] {
      for (int i = 0; i < 20; ++i) k.create_process(i % 16, [] {});
    });
    m.run();
  }
  state.SetItemsProcessed(state.iterations() * 21);
}
BENCHMARK(BM_ChrysalisProcessCreation);

void BM_DualQueueRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    sim::Machine m(sim::butterfly1(4));
    chrys::Kernel k(m);
    chrys::Oid q1 = chrys::kNoObject, q2 = chrys::kNoObject;
    k.create_process(0, [&] {
      q1 = k.make_dual_queue();
      for (int i = 0; i < 50; ++i) k.dq_enqueue(q2, k.dq_dequeue(q1));
    });
    k.create_process(1, [&] {
      q2 = k.make_dual_queue();
      for (int i = 0; i < 50; ++i) {
        k.dq_enqueue(q1, i);
        benchmark::DoNotOptimize(k.dq_dequeue(q2));
      }
    });
    m.run();
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_DualQueueRoundTrip);

// --- BENCH_host_sim.json row ---------------------------------------------
//
// The hand-timed pass below measures the three primitive rates with
// std::chrono (google-benchmark's own numbers stay on stdout) and appends
// one row per fast-path setting.  "Simulated events" counts dispatched
// engine events *plus* switch-free fast-path charges: a warped charge does
// the work an event used to, so the denominator stays comparable across
// engine generations.

double host_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct HostRow {
  std::string label;
  bool fastpath = false;
  double events_per_sec = 0;
  double fiber_switches_per_sec = 0;
  double timed_refs_per_sec = 0;
  double host_ns_per_event = 0;
};

double measure_event_dispatch() {
  constexpr int kEvents = 200000;
  sim::Engine e;
  std::uint64_t sink = 0;
  for (int i = 0; i < kEvents; ++i)
    e.post_at(static_cast<sim::Time>(i), [&sink, i] { sink += i; });
  const auto t0 = std::chrono::steady_clock::now();
  e.run();
  const double dt = host_seconds_since(t0);
  benchmark::DoNotOptimize(sink);
  return kEvents / dt;
}

double measure_fiber_switches() {
  constexpr int kPairs = 200000;
  sim::Fiber f(
      [] {
        while (true) sim::Fiber::yield_to_engine();
      },
      64 * 1024);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kPairs; ++i) f.resume();
  return kPairs / host_seconds_since(t0);
}

HostRow measure_timed_refs(bool fastpath) {
  constexpr int kRefs = 200000;
  HostRow row;
  row.label = fastpath ? "fastpath-on" : "fastpath-off";
  row.fastpath = fastpath;
  sim::Machine m(timed_ref_config(fastpath));
  sim::PhysAddr a = m.alloc(64, 64);
  m.spawn(0, [&] {
    for (int i = 0; i < kRefs; ++i)
      benchmark::DoNotOptimize(m.read<std::uint32_t>(a));
  });
  const auto t0 = std::chrono::steady_clock::now();
  m.run();
  const double dt = host_seconds_since(t0);
  const sim::HostPerf hp = m.host_perf();
  const double sim_events =
      static_cast<double>(hp.events_dispatched + hp.fastpath_charges);
  row.timed_refs_per_sec = kRefs / dt;
  row.host_ns_per_event = dt * 1e9 / sim_events;
  return row;
}

// --- Parallel host-engine sweep (host_shards in {1, 2, 4, 8}) -------------
//
// One fiber per node of a 128-node machine, each issuing a local/remote
// mix of timed references: the workload shape the sharded engine exists
// for.  shards=1 is the serial baseline; the other rows record delivered
// parallel throughput plus the window-barrier overhead.  host_cores is in
// the row because these are host numbers: on a 1-core CI box every shard
// count time-slices one core and the sweep measures protocol overhead,
// not speedup.

struct ParRow {
  std::uint32_t shards = 0;
  std::uint32_t threads = 0;
  double events_per_sec = 0;
  double timed_refs_per_sec = 0;
  double barrier_overhead_pct = 0;
  std::uint64_t windows = 0;
  std::uint64_t messages = 0;
};

ParRow measure_parallel(std::uint32_t shards) {
  constexpr std::uint32_t kNodes = 128;
  constexpr int kRefsPerFiber = 1500;
  sim::MachineConfig cfg = sim::butterfly1(kNodes);
  cfg.host_shards = shards;
  sim::Machine m(cfg);
  std::vector<sim::PhysAddr> a(kNodes);
  for (std::uint32_t n = 0; n < kNodes; ++n) a[n] = m.alloc(n, 8);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    m.spawn(n, [&m, &a, n] {
      for (int i = 0; i < kRefsPerFiber; ++i) {
        // 1 in 4 references stays node-local, the rest scatter.
        const std::uint32_t t = (i % 4 == 0) ? n : (n + 17u * i) % kNodes;
        benchmark::DoNotOptimize(m.read<std::uint32_t>(a[t]));
        m.charge(100);
      }
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  m.run();
  const double dt = host_seconds_since(t0);

  ParRow row;
  row.shards = shards;
  const sim::ParallelRunStats& ps = m.parallel_stats();
  row.threads = ps.threads != 0 ? ps.threads : 1;
  row.timed_refs_per_sec =
      static_cast<double>(kNodes) * kRefsPerFiber / dt;
  const sim::HostPerf hp = m.host_perf();
  row.events_per_sec =
      static_cast<double>(hp.events_dispatched + hp.fastpath_charges) / dt;
  row.windows = ps.windows;
  row.messages = ps.messages;
  if (ps.run_wall_ns > 0 && ps.threads > 0)
    row.barrier_overhead_pct =
        100.0 * static_cast<double>(ps.barrier_wait_ns) /
        (static_cast<double>(ps.run_wall_ns) * ps.threads);
  return row;
}

void emit_par_row(const ParRow& r, sim::json::Writer& w) {
  w.begin_object()
      .kv("label", "parallel-shards-" + std::to_string(r.shards))
      .kv("shards", r.shards)
      .kv("threads", r.threads)
      .kv("host_cores",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .kv("events_per_sec", r.events_per_sec)
      .kv("timed_refs_per_sec", r.timed_refs_per_sec)
      .kv("barrier_overhead_pct", r.barrier_overhead_pct)
      .kv("windows", r.windows)
      .kv("messages", r.messages)
      .end_object();
}

/// Re-serialize a parsed JsonValue (keeps prior runs byte-meaningful when
/// the file is rewritten with a new row appended).
void emit_value(const scope::JsonValue& v, sim::json::Writer& w) {
  using Kind = scope::JsonValue::Kind;
  switch (v.kind) {
    case Kind::kNull:
      w.raw("null");
      break;
    case Kind::kBool:
      w.value(v.b);
      break;
    case Kind::kNumber:
      w.value(v.num);
      break;
    case Kind::kString:
      w.value(v.str);
      break;
    case Kind::kArray:
      w.begin_array();
      for (const auto& e : v.arr) emit_value(e, w);
      w.end_array();
      break;
    case Kind::kObject:
      w.begin_object();
      for (const auto& [k, e] : v.obj) {
        w.key(k);
        emit_value(e, w);
      }
      w.end_object();
      break;
  }
}

void emit_row(const HostRow& r, double speedup, sim::json::Writer& w) {
  w.begin_object()
      .kv("label", r.label)
      .kv("fastpath", r.fastpath)
      .kv("events_per_sec", r.events_per_sec)
      .kv("fiber_switches_per_sec", r.fiber_switches_per_sec)
      .kv("timed_refs_per_sec", r.timed_refs_per_sec)
      .kv("host_ns_per_event", r.host_ns_per_event);
  if (speedup > 0) w.kv("speedup_vs_slowpath", speedup);
  w.end_object();
}

void append_json_rows() {
  const char* out_env = std::getenv("BFLY_HOST_SIM_OUT");
  const std::string path = out_env != nullptr ? out_env : "BENCH_host_sim.json";

  const double events_per_sec = measure_event_dispatch();
  const double switches_per_sec = measure_fiber_switches();
  HostRow on = measure_timed_refs(true);
  HostRow off = measure_timed_refs(false);
  on.events_per_sec = off.events_per_sec = events_per_sec;
  on.fiber_switches_per_sec = off.fiber_switches_per_sec = switches_per_sec;
  const double speedup = on.timed_refs_per_sec / off.timed_refs_per_sec;

  // Carry forward any rows already in the file (the cross-PR trajectory).
  scope::JsonValue prior;
  bool have_prior = false;
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      std::string err;
      have_prior = scope::json_parse(ss.str(), &prior, &err);
      if (!have_prior)
        std::fprintf(stderr, "bench_host_simulator: ignoring unparsable %s: %s\n",
                     path.c_str(), err.c_str());
    }
  }

  sim::json::Writer w;
  w.begin_object()
      .kv("bench", "host_sim")
      .kv("note",
          "host-machine throughput of the simulation substrate; no "
          "paper-reproduction meaning")
      .key("runs")
      .begin_array();
  if (have_prior) {
    const scope::JsonValue* runs = prior.find("runs");
    if (runs != nullptr && runs->kind == scope::JsonValue::Kind::kArray)
      for (const auto& r : runs->arr) emit_value(r, w);
  }
  emit_row(off, 0, w);
  emit_row(on, speedup, w);
  std::vector<ParRow> par;
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    par.push_back(measure_parallel(shards));
    emit_par_row(par.back(), w);
  }
  w.end_array().end_object();

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_host_simulator: cannot write %s\n",
                 path.c_str());
    return;
  }
  out << w.str() << '\n';
  std::printf(
      "\nBENCH_host_sim row -> %s\n"
      "  events/sec           %.3g\n"
      "  fiber switches/sec   %.3g\n"
      "  timed refs/sec       %.3g (fastpath on) / %.3g (off)\n"
      "  host-ns per sim event %.1f (on) / %.1f (off)\n"
      "  fastpath speedup     %.1fx\n",
      path.c_str(), events_per_sec, switches_per_sec, on.timed_refs_per_sec,
      off.timed_refs_per_sec, on.host_ns_per_event, off.host_ns_per_event,
      speedup);
  std::printf("  parallel sweep (host cores: %u)\n",
              std::thread::hardware_concurrency());
  for (const ParRow& r : par)
    std::printf(
        "    shards=%u threads=%u  refs/sec %.3g  events/sec %.3g  "
        "windows %llu  messages %llu  barrier %.1f%%\n",
        r.shards, r.threads, r.timed_refs_per_sec, r.events_per_sec,
        static_cast<unsigned long long>(r.windows),
        static_cast<unsigned long long>(r.messages), r.barrier_overhead_pct);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  append_json_rows();
  return 0;
}
