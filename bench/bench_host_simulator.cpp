// HOST — google-benchmark microbenchmarks of the simulator itself.
//
// Everything else in bench/ measures *simulated* Butterfly time; this
// binary measures the host cost of the simulation substrate (events,
// fiber switches, timed references), which bounds how big an experiment
// is practical.  These are host-machine numbers and carry no
// paper-reproduction meaning.

#include <benchmark/benchmark.h>

#include "chrysalis/kernel.hpp"
#include "sim/machine.hpp"

namespace {

using namespace bfly;

void BM_EngineEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    std::uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i)
      e.post_at(static_cast<sim::Time>(i), [&sink, i] { sink += i; });
    e.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineEventDispatch);

void BM_FiberSwitchPair(benchmark::State& state) {
  sim::Fiber f(
      [] {
        while (true) sim::Fiber::yield_to_engine();
      },
      64 * 1024);
  for (auto _ : state) f.resume();  // resume + yield = one switch pair
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FiberSwitchPair);

void BM_TimedRemoteReference(benchmark::State& state) {
  for (auto _ : state) {
    sim::Machine m(sim::butterfly1(128));
    sim::PhysAddr a = m.alloc(64, 64);
    m.spawn(0, [&] {
      for (int i = 0; i < 500; ++i)
        benchmark::DoNotOptimize(m.read<std::uint32_t>(a));
    });
    m.run();
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_TimedRemoteReference);

void BM_ChrysalisProcessCreation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Machine m(sim::butterfly1(16));
    chrys::Kernel k(m);
    k.create_process(0, [&] {
      for (int i = 0; i < 20; ++i) k.create_process(i % 16, [] {});
    });
    m.run();
  }
  state.SetItemsProcessed(state.iterations() * 21);
}
BENCHMARK(BM_ChrysalisProcessCreation);

void BM_DualQueueRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    sim::Machine m(sim::butterfly1(4));
    chrys::Kernel k(m);
    chrys::Oid q1 = chrys::kNoObject, q2 = chrys::kNoObject;
    k.create_process(0, [&] {
      q1 = k.make_dual_queue();
      for (int i = 0; i < 50; ++i) k.dq_enqueue(q2, k.dq_dequeue(q1));
    });
    k.create_process(1, [&] {
      q2 = k.make_dual_queue();
      for (int i = 0; i < 50; ++i) {
        k.dq_enqueue(q1, i);
        benchmark::DoNotOptimize(k.dq_dequeue(q2));
      }
    });
    m.run();
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_DualQueueRoundTrip);

}  // namespace

BENCHMARK_MAIN();
