// TSERVING — replicated serving under faults: latency, goodput, hedging.
//
// The paper's Butterfly was "rarely fully operational": any long-lived
// service on the machine had to answer through dead and half-dead nodes.
// bfly::serve layers N-way replication, deadlines, retries, hedging and
// admission control over Bridge; this bench quantifies the whole stack with
// an open-loop Poisson client population (latency is measured from each
// request's *scheduled* arrival, so coordinated omission cannot hide
// queueing):
//
//   part 1 (load):   p50/p99/p999 response time and goodput swept over
//                    offered load on a healthy cluster.  Past saturation,
//                    admission control sheds instead of collapsing: goodput
//                    plateaus and p99 stays bounded by the queue limit.
//   part 2 (kills):  a fixed offered load while 0, 1, or 4 of the 8 server
//                    nodes are killed *silently* mid-run.  Suspicion routes
//                    around the corpses, repair re-replicates in the
//                    background.  Gate: goodput with 4 kills stays >= 70% of
//                    the fault-free run, and no request outlives its
//                    deadline budget.
//   part 3 (gray):   one server turns slow-but-alive (heartbeats unaffected,
//                    service stretched 12x).  Hedged reads escape to another
//                    replica past a latency-quantile trigger.  Gate: hedged
//                    read p999 beats unhedged by >= 2x.
//
// Fully deterministic: fixed fault plans, seeded arrival/jitter PRNGs,
// simulated time.  Output: human tables, one JSON line per run, and the
// whole row set again in BENCH_serving.json (path override:
// BFLY_SERVING_OUT).  Exits nonzero when a gate fails.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/serve.hpp"
#include "sim/json.hpp"

using namespace bfly;

namespace {

constexpr std::uint32_t kServers = 8;
constexpr std::uint32_t kFiles = 4;
constexpr std::uint32_t kBlocksPerFile = 16;
constexpr std::uint32_t kWorkers = 64;
// Workload start: setup (file seeding, daemon + worker creation) happens
// before this instant, so the fault plan's absolute times land at fixed
// offsets into the measurement window and the measured ops never overlap
// the expensive serialized process-creation phase.
const sim::Time kWarm = 1500 * sim::kMillisecond;

// Serving-class disks: a 2 ms seek + 1 ms block transfer keeps one server's
// service time near 3 ms, so the 8-server cluster saturates around 2.2k
// ops/s with the 90/10 read/write mix — reachable by the load sweep.
bridge::DiskParams serving_disk() {
  bridge::DiskParams d;
  d.seek_ns = 2 * sim::kMillisecond;
  d.block_transfer_ns = 1 * sim::kMillisecond;
  return d;
}

serve::ServeConfig serving_config(bool hedge) {
  serve::ServeConfig cfg;
  cfg.hedge_reads = hedge;
  // Healthy service is ~3 ms, so floor the hedge trigger just above it and
  // let the running p90 estimate take over once it has samples.
  cfg.hedge_floor = 5 * sim::kMillisecond;
  return cfg;
}

struct Scenario {
  const char* part;     // "load" | "kills" | "gray"
  double offered;       // total offered load, ops per simulated second
  sim::Time duration;   // measurement window
  std::uint32_t kills;  // silent kills of server nodes 1,3,5,7 mid-run
  double slow_factor;   // 0 = healthy; else gray-fail node 2 by this factor
  bool hedge;
  std::uint64_t seed;
};

struct RunResult {
  sim::Time elapsed = 0;
  sim::Time setup = 0;      // workload start (>= kWarm unless setup overran)
  sim::Time worst_svc = 0;  // worst issue-to-return service time
  std::uint64_t ok = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t sheds = 0;
  std::uint64_t noreplica = 0;
  std::vector<sim::Time> resp;       // scheduled-arrival to completion
  std::vector<sim::Time> read_resp;  // reads only (hedging's jurisdiction)
  serve::ServeCounters counters;
  std::uint64_t suspects = 0;
  std::string fault_json;
  bool deadlocked = true;
};

void fill_block(std::vector<std::uint8_t>& blk, std::uint32_t f,
                std::uint32_t b) {
  blk.assign(bridge::kBlockSize, 0);
  for (std::size_t i = 0; i < blk.size(); ++i)
    blk[i] = static_cast<std::uint8_t>((f * 131 + b * 37 + i * 11) % 251);
}

// Exponential inter-arrival gap (open-loop Poisson), clamped away from the
// distribution's pathological ends so one unlucky draw cannot stall a
// worker for the whole run.
sim::Time exp_gap(sim::Rng& rng, double mean_s) {
  double g = -mean_s * std::log(1.0 - rng.uniform());
  g = std::min(g, 50.0 * mean_s);
  const double ns = g * static_cast<double>(sim::kSecond);
  const auto t = static_cast<sim::Time>(ns);
  return std::max<sim::Time>(t, 10 * sim::kMicrosecond);
}

RunResult run_serving(const Scenario& sc) {
  sim::FaultPlan plan;
  for (std::uint32_t i = 0; i < sc.kills; ++i)
    plan.kill_silent(1 + 2 * i, kWarm + sim::kSecond +
                                    i * 500 * sim::kMillisecond);
  if (sc.slow_factor > 0)
    plan.slow(2, kWarm + 800 * sim::kMillisecond, 1000 * sim::kSecond,
              sc.slow_factor);
  sim::Machine m(sim::butterfly1(16), plan);
  chrys::Kernel k(m);
  RunResult r;
  std::uint32_t workers_done = 0;

  k.create_process(15, [&] {
    bridge::BridgeFs fs(k, kServers, serving_disk());
    {
      rescue::RescueConfig rc;
      rc.monitor_node = 14;  // watchdog off the serving nodes
      // Serving nodes run 3 ms non-preemptible disk charges, which starve
      // heartbeat daemons under load; the rescue defaults (2 ms beat / 8 ms
      // suspicion) would false-suspect constantly.  50 ms detection is still
      // an order of magnitude under the 400 ms request deadline.
      rc.heartbeat_period = 10 * sim::kMillisecond;
      rc.suspect_after = 50 * sim::kMillisecond;
      rescue::Membership mem(k, rc);
      serve::ReplicatedFs rfs(k, fs, &mem, serving_config(sc.hedge));
      bridge::FileId files[kFiles];
      std::vector<std::uint8_t> blk;
      for (std::uint32_t f = 0; f < kFiles; ++f) {
        files[f] = rfs.open("serve" + std::to_string(f), kBlocksPerFile);
        for (std::uint32_t b = 0; b < kBlocksPerFile; ++b) {
          fill_block(blk, f, b);
          rfs.write(files[f], b, blk.data());
        }
      }
      mem.start();
      rfs.start_repair(13);
      // Create the client population *before* the measurement clock starts:
      // process creation is a multi-millisecond serialized charge per worker,
      // and workers spawned after kWarm would begin with scheduled arrivals
      // already in the past — a thundering herd that poisons every
      // percentile.  Each worker parks until kWarm on its own.
      const sim::Time t_end = kWarm + sc.duration;
      for (std::uint32_t w = 0; w < kWorkers; ++w) {
        k.create_process(8 + w % 8, [&, w] {
          sim::Rng rng(sc.seed * 1000003ULL + w);
          std::vector<std::uint8_t> wblk, back(bridge::kBlockSize);
          const double mean_gap_s = kWorkers / sc.offered;
          if (m.now() < kWarm) k.delay(kWarm - m.now());
          sim::Time next = kWarm;
          for (;;) {
            next += exp_gap(rng, mean_gap_s);
            if (next >= t_end) break;
            if (m.now() < next) k.delay(next - m.now());
            const std::uint32_t f = static_cast<std::uint32_t>(
                rng.below(kFiles));
            const std::uint32_t b = static_cast<std::uint32_t>(
                rng.below(kBlocksPerFile));
            const bool is_write = rng.below(10) == 0;
            const sim::Time issue = m.now();
            serve::Status st;
            if (is_write) {
              fill_block(wblk, f, b);
              st = rfs.write(files[f], b, wblk.data());
            } else {
              st = rfs.read(files[f], b, back.data());
            }
            const sim::Time done = m.now();
            r.worst_svc = std::max(r.worst_svc, done - issue);
            r.resp.push_back(done - next);
            if (!is_write) r.read_resp.push_back(done - next);
            switch (st) {
              case serve::Status::kOk: ++r.ok; break;
              case serve::Status::kTimeout: ++r.timeouts; break;
              case serve::Status::kShed: ++r.sheds; break;
              case serve::Status::kNoReplica: ++r.noreplica; break;
              // This bench's fault plans kill nodes but never cut the
              // switch, so quorum rejection cannot occur here.
              case serve::Status::kNoQuorum: ++r.noreplica; break;
            }
          }
          ++workers_done;
        });
      }
      // Pin the workload start so the fault plan's absolute times land at
      // fixed offsets into the measurement window.  Setup (seeding, daemons,
      // worker creation) must fit under kWarm or the run is invalid — the
      // setup_s field in the row would show the overrun.
      if (m.now() < kWarm) k.delay(kWarm - m.now());
      r.setup = m.now();
      while (workers_done < kWorkers) k.delay(20 * sim::kMillisecond);
      for (int i = 0; i < 1000 && !rfs.repair_idle(); ++i)
        k.delay(10 * sim::kMillisecond);
      r.counters = rfs.counters();
      mem.stop();
      rfs.stop_repair();
      for (int i = 0; i < 100 && !rfs.repair_idle(); ++i)
        k.delay(10 * sim::kMillisecond);
    }
    fs.shutdown();
  });
  r.elapsed = m.run();
  r.deadlocked = m.deadlocked();
  r.suspects = m.stats().suspects_declared;
  r.fault_json = m.stats().fault_json();
  return r;
}

double pct_ms(std::vector<sim::Time>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto i = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return bench::seconds(v[i]) * 1e3;
}

double goodput(const RunResult& r, const Scenario& sc) {
  return static_cast<double>(r.ok) / bench::seconds(sc.duration);
}

int g_violations = 0;

void gate(bool ok, const char* what) {
  if (ok) return;
  ++g_violations;
  std::fprintf(stderr, "GATE FAILED: %s\n", what);
}

std::vector<std::string> g_rows;

std::string row_json(const Scenario& sc, RunResult& r) {
  sim::json::Writer jw;
  jw.begin_object()
      .kv("bench", "tserving")
      .kv("part", sc.part)
      .kv("offered_per_s", sc.offered)
      .kv("duration_s", bench::seconds(sc.duration))
      .kv("kills", sc.kills)
      .kv("slow_factor", sc.slow_factor)
      .kv("hedge", sc.hedge)
      .kv("ops", static_cast<std::uint64_t>(r.resp.size()))
      .kv("ok", r.ok)
      .kv("timeouts", r.timeouts)
      .kv("sheds", r.sheds)
      .kv("noreplica", r.noreplica)
      .kv("goodput_per_s", goodput(r, sc))
      .kv("p50_ms", pct_ms(r.resp, 0.50))
      .kv("p99_ms", pct_ms(r.resp, 0.99))
      .kv("p999_ms", pct_ms(r.resp, 0.999))
      .kv("read_p999_ms", pct_ms(r.read_resp, 0.999))
      .kv("worst_svc_ms", bench::seconds(r.worst_svc) * 1e3)
      .kv("suspects", r.suspects)
      .kv("setup_s", bench::seconds(r.setup))
      .kv("elapsed_s", bench::seconds(r.elapsed))
      .raw(r.fault_json)
      .end_object();
  return jw.str();
}

void emit(const Scenario& sc, RunResult& r) {
  // Every run shares one validity condition: if setup spilled past kWarm the
  // window no longer lines up with the fault plan and the row is garbage.
  gate(r.setup == kWarm, "setup must finish inside the warmup window");
  std::printf("%6s %9.0f %6u %6.1f %6s %9.0f %8.1f %8.1f %8.1f %8.1f\n",
              sc.part, sc.offered, sc.kills, sc.slow_factor,
              sc.hedge ? "on" : "off", goodput(r, sc), pct_ms(r.resp, 0.50),
              pct_ms(r.resp, 0.99), pct_ms(r.resp, 0.999),
              bench::seconds(r.worst_svc) * 1e3);
  const std::string row = row_json(sc, r);
  std::printf("%s\n", row.c_str());
  g_rows.push_back(row);
}

}  // namespace

int main() {
  const bool fast = bench::fast_mode();
  bench::header("TSERVING",
                "replicated serving: load, node kills, gray failure",
                "a serving layer on a rarely-fully-operational machine must "
                "degrade, not collapse");
  const sim::Time deadline = serve::ServeConfig{}.deadline;
  // Worst service time bound: the deadline plus the charges already in
  // flight when the budget expired.
  const sim::Time svc_bound = deadline + 100 * sim::kMillisecond;

  std::printf("\n16-node Butterfly, %u Bridge servers, 3 replicas, %u "
              "open-loop Poisson workers,\n90/10 read/write over %u blocks; "
              "latency from scheduled arrival (no coordinated omission)\n",
              kServers, kWorkers, kFiles * kBlocksPerFile);
  std::printf("\n%6s %9s %6s %6s %6s %9s %8s %8s %8s %8s\n", "part",
              "offered/s", "kills", "slow", "hedge", "goodput/s", "p50ms",
              "p99ms", "p999ms", "worstms");

  // --- part 1: load sweep, healthy cluster ---------------------------------
  const std::vector<double> loads =
      fast ? std::vector<double>{300, 1200, 2600}
           : std::vector<double>{200, 600, 1200, 2000, 3000};
  const sim::Time dur1 = (fast ? 2 : 3) * sim::kSecond;
  double low_load_goodput = 0, low_load = 0;
  for (const double offered : loads) {
    const Scenario sc{"load", offered, dur1, 0, 0.0, true, 11};
    RunResult r = run_serving(sc);
    gate(!r.deadlocked, "load run must not deadlock");
    if (low_load == 0) {
      low_load = offered;
      low_load_goodput = goodput(r, sc);
    }
    gate(r.worst_svc <= svc_bound, "load: request outlived its deadline");
    emit(sc, r);
  }
  gate(low_load_goodput >= 0.9 * low_load,
       "under light load, goodput must track offered load");

  // --- part 2: silent kills mid-run ----------------------------------------
  const double offered2 = fast ? 600 : 800;
  const sim::Time dur2 = (fast ? 4 : 5) * sim::kSecond;
  double faultfree_goodput = 0;
  for (const std::uint32_t kills : {0u, 1u, 4u}) {
    const Scenario sc{"kills", offered2, dur2, kills, 0.0, true, 23};
    RunResult r = run_serving(sc);
    gate(!r.deadlocked, "kills run must not deadlock");
    gate(r.suspects == kills, "every silent kill must be suspected");
    gate(r.worst_svc <= svc_bound, "kills: request outlived its deadline");
    gate(r.counters.lost_blocks == 0, "no block may lose every replica");
    const double gp = goodput(r, sc);
    if (kills == 0) faultfree_goodput = gp;
    else
      gate(gp >= 0.70 * faultfree_goodput,
           "goodput under kills must stay >= 70% of fault-free");
    if (kills > 0)
      gate(r.counters.rereplications > 0, "kills must trigger re-replication");
    emit(sc, r);
  }

  // --- part 3: gray failure, hedged vs unhedged ----------------------------
  const double offered3 = fast ? 500 : 600;
  const sim::Time dur3 = (fast ? 5 : 8) * sim::kSecond / 2;  // 2.5 / 4 s
  double hedged_p999 = 0, unhedged_p999 = 0;
  for (const bool hedge : {true, false}) {
    const Scenario sc{"gray", offered3, dur3, 0, 12.0, hedge, 37};
    RunResult r = run_serving(sc);
    gate(!r.deadlocked, "gray run must not deadlock");
    gate(r.suspects == 0, "a gray failure must stay invisible to heartbeats");
    gate(r.worst_svc <= svc_bound, "gray: request outlived its deadline");
    const double p = pct_ms(r.read_resp, 0.999);
    if (hedge) {
      hedged_p999 = p;
      gate(r.counters.hedges > 0, "gray run must issue hedges");
      gate(r.counters.hedge_wins > 0, "some hedges must beat the slow server");
    } else {
      unhedged_p999 = p;
    }
    emit(sc, r);
  }
  gate(hedged_p999 * 2.0 <= unhedged_p999,
       "hedged read p999 must beat unhedged by >= 2x under gray failure");

  // --- BENCH_serving.json --------------------------------------------------
  const char* out_path = std::getenv("BFLY_SERVING_OUT");
  if (out_path == nullptr) out_path = "BENCH_serving.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f, "{\"bench\":\"tserving\",\"fast\":%s,\"rows\":[",
                 fast ? "true" : "false");
    for (std::size_t i = 0; i < g_rows.size(); ++i)
      std::fprintf(f, "%s%s", i > 0 ? "," : "", g_rows[i].c_str());
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu rows)\n", out_path, g_rows.size());
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    ++g_violations;
  }

  std::printf(
      "\nshape check: under capacity (~2.2k ops/s with this mix) goodput\n"
      "tracks offered load and p50 sits at the ~3.5 ms service time; past\n"
      "capacity the backlog grows and response time from scheduled arrival\n"
      "explodes, while issue-to-return service stays deadline-bounded and\n"
      "admission control sheds attempts; 4 silent kills cost >= 70%% of\n"
      "fault-free goodput and zero lost blocks; the gray-failed server is\n"
      "never suspected, yet hedged read p999 beats unhedged >= 2x.\n");
  if (g_violations > 0) {
    std::fprintf(stderr, "\n%d gate(s) FAILED\n", g_violations);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
