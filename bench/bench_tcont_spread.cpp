// T-CONT — memory contention and data spreading (Section 4.1).
//
// Paper: "the Gaussian elimination program (on 64 processors or fewer)
// displays a performance improvement of over 30% when data is spread over
// all 128 memories.  The greatest effect occurs when roughly 1/4 to 1/2 of
// the total number of processors are in use."

#include <cstdio>

#include "apps/gauss.hpp"
#include "bench_common.hpp"
#include "sim/machine.hpp"

int main() {
  using namespace bfly;
  const std::uint32_t n = bench::fast_mode() ? 96 : 192;
  bench::header("T-CONT", "Gaussian elimination: data concentrated vs spread",
                ">30% gain from spreading over all 128 memories; peak effect "
                "at 1/4-1/2 of the processors");
  std::printf("matrix N=%u on a 128-node machine\n\n", n);
  std::printf("%6s %18s %16s %10s %16s\n", "procs", "concentrated(s)",
              "spread-128(s)", "gain", "queue wait conc.");

  for (std::uint32_t p : {16u, 32u, 48u, 64u, 96u, 128u}) {
    apps::GaussConfig cfg;
    cfg.n = n;
    cfg.processors = p;

    // The machine carries the 1986 floating-point daughter boards: with
    // software floating point the arithmetic hides all memory behaviour.
    sim::MachineConfig mc = sim::butterfly1(128);
    mc.memory_per_node = 4u << 20;
    mc.flop_ns = 6 * sim::kMicrosecond;

    // Concentrated: the matrix allocated compactly on a handful of nodes —
    // what a naive contiguous allocation gives you.
    cfg.memory_nodes = 4;
    sim::Machine mc1(mc);
    const apps::GaussResult conc = apps::gauss_us(mc1, cfg);

    // Spread: rows over all 128 memories regardless of P.
    cfg.memory_nodes = 128;
    sim::Machine mc2(mc);
    const apps::GaussResult spread = apps::gauss_us(mc2, cfg);

    std::printf("%6u %18.2f %16.2f %9.1f%% %14.2fs\n", p,
                bench::seconds(conc.elapsed), bench::seconds(spread.elapsed),
                100.0 * (bench::seconds(conc.elapsed) -
                         bench::seconds(spread.elapsed)) /
                    bench::seconds(conc.elapsed),
                bench::seconds(conc.queue_ns));
  }
  std::printf("\nshape check: spreading should win noticeably in the middle "
              "of the range\n(too few procs: little traffic; too many: most "
              "memories already in use).\n");
  return 0;
}
