// TPARTITION — serving through switch-level fault domains: a dead switch
// card, then a full 50/50 network partition, then the heal.
//
// The paper's Butterfly was "rarely fully operational", and the failures
// were not only node deaths: switch cards and inter-stage links died too,
// taking *paths* away while every node stayed alive.  This bench drives a
// replicated serving workload through exactly that progression:
//
//   part 1 (clean):  fault-free baseline on a 16-node machine, 8 Bridge
//                    servers, 3 replicas, open-loop clients, 70/30
//                    read/write mix.
//   part 2 (card):   one stage-0 switch card dies mid-run.  The redundant
//                    extra column routes every affected reference around
//                    the corpse at the cost of one extra hop.  Gates: the
//                    detour is taken (alt_routed > 0), nothing becomes
//                    unreachable, nobody is suspected, and goodput and p50
//                    stay at the baseline — a single dead card must be
//                    invisible except for the +1 hop.
//   part 3 (split):  the machine splits 50/50 (even nodes vs odd nodes)
//                    for a fixed window, then heals.  Replicas of each
//                    block land on 3 consecutive servers, so every block
//                    has a 2-replica (majority) side and a 1-replica
//                    (minority) side.  Gates: writes on the minority side
//                    are refused (no split-brain acks — checked per
//                    request against the placement map), majority-side
//                    service holds >= 60% of fault-free goodput, the
//                    membership layer parks the far side in
//                    suspected_unreachable instead of excising it and
//                    restores it after the heal, the heal replays the
//                    dirty log through the majority vote, and a full
//                    read-back finds every acked write intact: zero acked
//                    writes lost.
//   part 4 (replay): part 3 runs twice with the same seeds; elapsed time,
//                    every counter, and the content hash must be equal —
//                    the partition machinery sits inside the deterministic
//                    envelope (Instant Replay holds).
//
// Fully deterministic: fixed fault plans, seeded PRNGs, simulated time.
// Output: human tables, one JSON line per run, and the row set again in
// BENCH_partition.json (override: BFLY_PARTITION_OUT).  Exits nonzero when
// a gate fails.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/serve.hpp"
#include "sim/json.hpp"

using namespace bfly;

namespace {

constexpr std::uint32_t kServers = 8;
constexpr std::uint32_t kFiles = 2;
constexpr std::uint32_t kBlocksPerFile = 32;
constexpr std::uint32_t kBlocks = kFiles * kBlocksPerFile;
constexpr std::uint32_t kWorkers = 16;
// Setup (file seeding, daemons, worker creation) must finish before kWarm
// so the fault plan's absolute times land at fixed workload offsets.
const sim::Time kWarm = 1500 * sim::kMillisecond;

bridge::DiskParams serving_disk() {
  bridge::DiskParams d;
  d.seek_ns = 2 * sim::kMillisecond;
  d.block_transfer_ns = 1 * sim::kMillisecond;
  return d;
}

struct Scenario {
  const char* part;    // "clean" | "card" | "split"
  double offered;      // total offered load, ops per simulated second
  sim::Time duration;  // measurement window
  bool card_fail;      // kill one stage-0 switch card mid-run
  bool split;          // 50/50 partition window mid-run
  std::uint64_t seed;
};

// Partition window, relative to kWarm (absolute times in the plan).
const sim::Time kCutStart = kWarm + 1 * sim::kSecond;
sim::Time cut_heal(const Scenario& sc) {
  return kWarm + sc.duration - 1500 * sim::kMillisecond;
}

struct RunResult {
  sim::Time elapsed = 0;
  sim::Time setup = 0;
  std::uint64_t ok = 0;
  std::uint64_t noquorum = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t other = 0;        // shed / noreplica
  std::uint64_t ok_in_cut = 0;    // completions inside the cut window
  std::uint64_t minority_acks = 0;  // split-brain acks (must stay 0)
  std::uint64_t verify_fail = 0;  // read-back mismatches (acked-write loss)
  std::uint64_t verified = 0;     // acked blocks read back
  std::uint64_t content_hash = 0;
  std::vector<sim::Time> resp;
  serve::ServeCounters counters;
  std::uint64_t suspects = 0;
  std::uint64_t suspects_unreachable = 0;
  std::uint64_t unreachable_restored = 0;
  std::uint64_t alt_routed = 0;
  std::uint64_t net_unreachable_refs = 0;
  std::string fault_json;
  bool deadlocked = true;
};

// Deterministic block content for salt s of block (f, b).
void fill_block(std::vector<std::uint8_t>& blk, std::uint32_t f,
                std::uint32_t b, std::uint32_t salt) {
  blk.assign(bridge::kBlockSize, 0);
  for (std::size_t i = 0; i < blk.size(); ++i)
    blk[i] = static_cast<std::uint8_t>(
        (f * 131 + b * 37 + salt * 17 + i * 11) % 251);
}

sim::Time exp_gap(sim::Rng& rng, double mean_s) {
  double g = -mean_s * std::log(1.0 - rng.uniform());
  g = std::min(g, 50.0 * mean_s);
  const double ns = g * static_cast<double>(sim::kSecond);
  const auto t = static_cast<sim::Time>(ns);
  return std::max<sim::Time>(t, 10 * sim::kMicrosecond);
}

RunResult run_partition(const Scenario& sc) {
  sim::FaultPlan plan;
  if (sc.card_fail) {
    // Stage 0 is the detour-friendly column: its cards are selected by a
    // *source* digit, so entering the banyan at a different input row (the
    // redundant extra column) walks around the corpse.
    plan.fail_card(0, 1, kWarm + 500 * sim::kMillisecond);
  }
  if (sc.split) {
    std::vector<sim::NodeId> even, odd;
    for (sim::NodeId n = 0; n < 16; ++n) (n % 2 ? odd : even).push_back(n);
    plan.partition(even, odd, kCutStart, cut_heal(sc));
  }
  sim::Machine m(sim::butterfly1(16), plan);
  chrys::Kernel k(m);
  RunResult r;
  std::uint32_t workers_done = 0;

  // Last acked salt per logical block, 0 = never acked.  Each block has
  // exactly one writer, so no entry is ever raced.
  std::vector<std::uint32_t> acked_salt(kBlocks, 0);

  k.create_process(15, [&] {
    bridge::BridgeFs fs(k, kServers, serving_disk());
    {
      rescue::RescueConfig rc;
      rc.monitor_node = 14;
      rc.heartbeat_period = 10 * sim::kMillisecond;
      rc.suspect_after = 50 * sim::kMillisecond;
      rescue::Membership mem(k, rc);
      serve::ReplicatedFs rfs(k, fs, &mem);
      bridge::FileId files[kFiles];
      std::vector<std::uint8_t> blk;
      for (std::uint32_t f = 0; f < kFiles; ++f) {
        files[f] = rfs.open("part" + std::to_string(f), kBlocksPerFile);
        for (std::uint32_t b = 0; b < kBlocksPerFile; ++b) {
          fill_block(blk, f, b, 0);
          rfs.write(files[f], b, blk.data());
        }
      }
      // Placement map: how many replicas of each block live on even-parity
      // *nodes* — the even side of the split.  3 consecutive servers means
      // every block is 2/1 or 1/2, never 3/0.
      std::vector<std::uint8_t> even_replicas(kBlocks, 0);
      for (std::uint32_t f = 0; f < kFiles; ++f)
        for (std::uint32_t b = 0; b < kBlocksPerFile; ++b)
          for (std::uint32_t rep = 0; rep < 3; ++rep)
            if (fs.server_node(rfs.replica_server(files[f], b, rep)) % 2 == 0)
              ++even_replicas[f * kBlocksPerFile + b];
      mem.start();
      rfs.start_repair(13);
      const sim::Time t_end = kWarm + sc.duration;
      const sim::Time heal_at = cut_heal(sc);
      for (std::uint32_t w = 0; w < kWorkers; ++w) {
        k.create_process(8 + w % 8, [&, w] {
          sim::Rng rng(sc.seed * 1000003ULL + w);
          std::vector<std::uint8_t> wblk, back(bridge::kBlockSize);
          const bool even_side = (8 + w % 8) % 2 == 0;
          // Disjoint write ranges: worker w owns blocks w, w+16, w+32, ...
          std::uint32_t salt = 0;
          const double mean_gap_s = kWorkers / sc.offered;
          if (m.now() < kWarm) k.delay(kWarm - m.now());
          sim::Time next = kWarm;
          for (;;) {
            next += exp_gap(rng, mean_gap_s);
            if (next >= t_end) break;
            if (m.now() < next) k.delay(next - m.now());
            const bool is_write = rng.below(10) < 3;
            std::uint32_t blkno;
            if (is_write) {
              blkno = w + kWorkers * static_cast<std::uint32_t>(
                                         rng.below(kBlocks / kWorkers));
            } else {
              blkno = static_cast<std::uint32_t>(rng.below(kBlocks));
            }
            const std::uint32_t f = blkno / kBlocksPerFile;
            const std::uint32_t b = blkno % kBlocksPerFile;
            const sim::Time issue = m.now();
            serve::Status st;
            if (is_write) {
              ++salt;
              fill_block(wblk, f, b, salt);
              st = rfs.write(files[f], b, wblk.data());
              if (st == serve::Status::kOk) acked_salt[blkno] = salt;
            } else {
              st = rfs.read(files[f], b, back.data());
            }
            const sim::Time done = m.now();
            r.resp.push_back(done - next);
            const bool in_cut =
                sc.split && issue >= kCutStart && done <= heal_at;
            switch (st) {
              case serve::Status::kOk:
                ++r.ok;
                if (in_cut) {
                  ++r.ok_in_cut;
                  if (is_write) {
                    const bool on_even_majority = even_replicas[blkno] >= 2;
                    if (even_side != on_even_majority) ++r.minority_acks;
                  }
                }
                break;
              case serve::Status::kNoQuorum: ++r.noquorum; break;
              case serve::Status::kTimeout: ++r.timeouts; break;
              default: ++r.other; break;
            }
          }
          ++workers_done;
        });
      }
      if (m.now() < kWarm) k.delay(kWarm - m.now());
      r.setup = m.now();
      while (workers_done < kWorkers) k.delay(20 * sim::kMillisecond);
      // Let the heal-driven reconciliation drain before the audit.
      for (int i = 0; i < 1000 && !rfs.repair_idle(); ++i)
        k.delay(10 * sim::kMillisecond);
      // Zero-acked-write-loss audit: every block whose writer got an ack
      // must read back as the *last* acked salt — a split-brain ack or a
      // reconciliation that picked the wrong side both fail here.
      std::vector<std::uint8_t> back(bridge::kBlockSize), expect;
      std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
      for (std::uint32_t blkno = 0; blkno < kBlocks; ++blkno) {
        if (acked_salt[blkno] == 0) continue;
        const std::uint32_t f = blkno / kBlocksPerFile;
        const std::uint32_t b = blkno % kBlocksPerFile;
        ++r.verified;
        if (rfs.read(files[f], b, back.data()) != serve::Status::kOk) {
          ++r.verify_fail;
          continue;
        }
        fill_block(expect, f, b, acked_salt[blkno]);
        if (back != expect) ++r.verify_fail;
        for (const std::uint8_t byte : back)
          h = (h ^ byte) * 1099511628211ULL;
      }
      r.content_hash = h;
      r.counters = rfs.counters();
      mem.stop();
      rfs.stop_repair();
      for (int i = 0; i < 100 && !rfs.repair_idle(); ++i)
        k.delay(10 * sim::kMillisecond);
    }
    fs.shutdown();
  });
  r.elapsed = m.run();
  r.deadlocked = m.deadlocked();
  r.suspects = m.stats().suspects_declared;
  r.suspects_unreachable = m.stats().suspects_unreachable;
  r.unreachable_restored = m.stats().unreachable_restored;
  r.alt_routed = m.stats().alt_routed;
  r.net_unreachable_refs = m.stats().net_unreachable_refs;
  r.fault_json = m.stats().fault_json();
  return r;
}

double pct_ms(std::vector<sim::Time>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto i = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return bench::seconds(v[i]) * 1e3;
}

double goodput(const RunResult& r, const Scenario& sc) {
  return static_cast<double>(r.ok) / bench::seconds(sc.duration);
}

/// Goodput inside the cut window alone (the degraded-mode number the 60%
/// gate judges).
double cut_goodput(const RunResult& r, const Scenario& sc) {
  const double win = bench::seconds(cut_heal(sc) - kCutStart);
  return win > 0 ? static_cast<double>(r.ok_in_cut) / win : 0.0;
}

int g_violations = 0;

void gate(bool ok, const char* what) {
  if (ok) return;
  ++g_violations;
  std::fprintf(stderr, "GATE FAILED: %s\n", what);
}

std::vector<std::string> g_rows;

std::string row_json(const Scenario& sc, RunResult& r) {
  sim::json::Writer jw;
  jw.begin_object()
      .kv("bench", "tpartition")
      .kv("part", sc.part)
      .kv("offered_per_s", sc.offered)
      .kv("duration_s", bench::seconds(sc.duration))
      .kv("ops", static_cast<std::uint64_t>(r.resp.size()))
      .kv("ok", r.ok)
      .kv("noquorum", r.noquorum)
      .kv("timeouts", r.timeouts)
      .kv("other", r.other)
      .kv("goodput_per_s", goodput(r, sc))
      .kv("cut_goodput_per_s", cut_goodput(r, sc))
      .kv("p50_ms", pct_ms(r.resp, 0.50))
      .kv("p99_ms", pct_ms(r.resp, 0.99))
      .kv("minority_acks", r.minority_acks)
      .kv("verified", r.verified)
      .kv("verify_fail", r.verify_fail)
      .kv("alt_routed", r.alt_routed)
      .kv("suspects", r.suspects)
      .kv("suspects_unreachable", r.suspects_unreachable)
      .kv("unreachable_restored", r.unreachable_restored)
      .kv("dirty_logged", r.counters.dirty_logged)
      .kv("reconciled", r.counters.reconciled)
      .kv("quorum_rejects", r.counters.quorum_rejects)
      .kv("setup_s", bench::seconds(r.setup))
      .kv("elapsed_s", bench::seconds(r.elapsed))
      .raw(r.fault_json)
      .end_object();
  return jw.str();
}

void emit(const Scenario& sc, RunResult& r) {
  gate(r.setup == kWarm, "setup must finish inside the warmup window");
  std::printf("%6s %9.0f %9.0f %9.0f %8.1f %8.1f %6llu %6llu %6llu\n",
              sc.part, sc.offered, goodput(r, sc), cut_goodput(r, sc),
              pct_ms(r.resp, 0.50), pct_ms(r.resp, 0.99),
              static_cast<unsigned long long>(r.noquorum),
              static_cast<unsigned long long>(r.counters.reconciled),
              static_cast<unsigned long long>(r.verify_fail));
  const std::string row = row_json(sc, r);
  std::printf("%s\n", row.c_str());
  g_rows.push_back(row);
}

}  // namespace

int main() {
  const bool fast = bench::fast_mode();
  bench::header("TPARTITION",
                "switch-card death, 50/50 partition, heal — under load",
                "switch hardware fails independently of nodes; the machine "
                "must route around a dead card and a split must degrade to "
                "majority-quorum service, not split-brain");

  std::printf("\n16-node Butterfly, %u Bridge servers, 3 replicas, %u "
              "open-loop workers, 70/30 read/write\nover %u blocks; "
              "partition splits even vs odd nodes, every block 2/1 across "
              "the cut\n",
              kServers, kWorkers, kBlocks);
  std::printf("\n%6s %9s %9s %9s %8s %8s %6s %6s %6s\n", "part", "offered/s",
              "goodput/s", "cut-gp/s", "p50ms", "p99ms", "noquo", "recon",
              "vfail");

  const double offered = fast ? 300 : 500;
  const sim::Time dur_short = (fast ? 2 : 3) * sim::kSecond;
  const sim::Time dur_split = (fast ? 4 : 6) * sim::kSecond;

  // --- part 1: clean baseline ----------------------------------------------
  const Scenario clean{"clean", offered, dur_short, false, false, 41};
  RunResult rc = run_partition(clean);
  gate(!rc.deadlocked, "clean run must not deadlock");
  gate(rc.verify_fail == 0, "clean: every acked write must read back");
  gate(rc.alt_routed == 0, "clean: no detours without a dead card");
  gate(rc.net_unreachable_refs == 0, "clean: nothing is unreachable");
  const double clean_gp = goodput(rc, clean);
  const double clean_p50 = pct_ms(rc.resp, 0.50);
  emit(clean, rc);

  // --- part 2: one dead switch card ----------------------------------------
  const Scenario card{"card", offered, dur_short, true, false, 41};
  RunResult rcard = run_partition(card);
  gate(!rcard.deadlocked, "card run must not deadlock");
  gate(rcard.alt_routed > 0, "a dead card must force alternate paths");
  gate(rcard.net_unreachable_refs == 0,
       "one dead stage-0 card must leave every node reachable");
  gate(rcard.suspects == 0 && rcard.suspects_unreachable == 0,
       "a routed-around card must be invisible to membership");
  gate(rcard.verify_fail == 0, "card: every acked write must read back");
  gate(goodput(rcard, card) >= 0.95 * clean_gp,
       "goodput with a dead card must stay >= 95% of clean");
  gate(pct_ms(rcard.resp, 0.50) <= 1.25 * clean_p50 + 0.5,
       "p50 with a dead card must stay near clean (+1 hop only)");
  emit(card, rcard);

  // --- part 3: 50/50 partition and heal ------------------------------------
  const Scenario split{"split", offered, dur_split, false, true, 41};
  RunResult rs = run_partition(split);
  gate(!rs.deadlocked, "split run must not deadlock");
  gate(rs.minority_acks == 0, "no write may ack on the minority side");
  gate(rs.noquorum > 0, "minority-side writes must be refused, not lost");
  gate(rs.suspects == 0,
       "a partition must not excise anyone — the far side is alive");
  gate(rs.suspects_unreachable > 0,
       "membership must park the far side in suspected_unreachable");
  gate(rs.unreachable_restored > 0,
       "healed nodes must be restored to full membership");
  gate(rs.counters.dirty_logged > 0,
       "majority-side acks with a cut-off arm must be dirty-logged");
  gate(rs.counters.reconciled > 0,
       "the heal must replay the dirty log through the majority vote");
  gate(rs.verify_fail == 0,
       "zero acked writes lost across partition and heal");
  gate(rs.counters.lost_blocks == 0, "no block may lose every replica");
  gate(cut_goodput(rs, split) >= 0.60 * clean_gp,
       "goodput inside the cut must stay >= 60% of fault-free");
  emit(split, rs);

  // --- part 4: determinism (Instant Replay envelope) -----------------------
  RunResult rs2 = run_partition(split);
  gate(rs2.elapsed == rs.elapsed, "replay: elapsed time must be equal");
  gate(rs2.ok == rs.ok && rs2.noquorum == rs.noquorum &&
           rs2.timeouts == rs.timeouts,
       "replay: status counts must be equal");
  gate(rs2.content_hash == rs.content_hash,
       "replay: final content hash must be equal");
  gate(rs2.counters.dirty_logged == rs.counters.dirty_logged &&
           rs2.counters.reconciled == rs.counters.reconciled &&
           rs2.counters.quorum_rejects == rs.counters.quorum_rejects,
       "replay: partition counters must be equal");
  emit(split, rs2);

  // --- BENCH_partition.json ------------------------------------------------
  const char* out_path = std::getenv("BFLY_PARTITION_OUT");
  if (out_path == nullptr) out_path = "BENCH_partition.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f, "{\"bench\":\"tpartition\",\"fast\":%s,\"rows\":[",
                 fast ? "true" : "false");
    for (std::size_t i = 0; i < g_rows.size(); ++i)
      std::fprintf(f, "%s%s", i > 0 ? "," : "", g_rows[i].c_str());
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu rows)\n", out_path, g_rows.size());
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    ++g_violations;
  }

  std::printf(
      "\nshape check: a dead stage-0 card costs one extra hop and nothing\n"
      "else; the 50/50 split turns ~half the writes into quorum refusals\n"
      "while reads and majority writes keep flowing; the heal restores\n"
      "membership and replays the dirty log, and the audit finds every\n"
      "acked write -- no split-brain, no silent loss, bit-equal replays.\n");
  if (g_violations > 0) {
    std::fprintf(stderr, "\n%d gate(s) FAILED\n", g_violations);
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
