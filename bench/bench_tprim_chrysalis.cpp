// T-PRIM — Chrysalis primitive costs (Sections 2.1-2.2; Dibble's BPR 18
// was "the only full set of published benchmarks for PNC and Chrysalis
// functions").
//
// Paper numbers: events and dual queues complete in tens of microseconds
// (microcoded); entering+leaving a catch block ~70 us; mapping or unmapping
// a segment costs over 1 ms; process creation is heavyweight and partially
// serialized.

#include <cstdio>

#include "bench_common.hpp"
#include "chrysalis/kernel.hpp"
#include "chrysalis/spinlock.hpp"

int main() {
  using namespace bfly;
  using sim::Time;
  bench::header("T-PRIM", "Chrysalis / PNC primitive costs",
                "events & dual queues: tens of us; catch/throw ~70us; "
                "map/unmap >1ms; process creation: ms + serialized section");

  sim::Machine m(sim::butterfly1(16));
  chrys::Kernel k(m);
  struct Row {
    const char* name;
    double us;
  };
  std::vector<Row> rows;

  k.create_process(0, [&] {
    auto timed = [&](const char* name, int reps, auto&& fn) {
      const Time t0 = m.now();
      for (int i = 0; i < reps; ++i) fn();
      rows.push_back(Row{name, (m.now() - t0) / 1e3 / reps});
    };

    chrys::Oid ev = k.make_event();
    timed("event post (no waiter)", 50, [&] { k.event_post(ev, 1); });
    timed("event wait (pending)", 1, [&] { (void)k.event_wait(ev); });

    chrys::Oid dq = k.make_dual_queue();
    timed("dual queue enqueue", 50, [&] { k.dq_enqueue(dq, 7); });
    timed("dual queue dequeue (data)", 50, [&] { (void)k.dq_dequeue(dq); });

    timed("catch block (enter+leave)", 20, [&] { (void)k.catch_block([] {}); });
    timed("throw + unwind", 20, [&] {
      (void)k.catch_block([&] { k.throw_err(chrys::kThrowUser); });
    });

    chrys::Oid mo = k.make_memory_object(1, 4096);
    timed("map segment", 8, [&] {
      const auto seg = k.map_object(mo);
      k.unmap_segment(seg);  // keep a free slot for the next round
    });

    sim::PhysAddr cell = m.alloc(0, 8);
    m.poke<std::uint32_t>(cell, 0);
    chrys::SpinLock lock(m, cell);
    timed("spin lock acquire+release", 50, [&] {
      lock.acquire();
      lock.release();
    });

    timed("process create (unloaded)", 4,
          [&] { k.create_process(2, [] {}); });
  });
  m.run();

  std::printf("%-34s %12s\n", "primitive", "cost");
  for (const auto& r : rows) std::printf("%-34s %10.1fus\n", r.name, r.us);
  std::printf("\nnote: 'map segment' row includes the paired unmap — each\n"
              "direction is over 1 ms, the cost SMP's SAR cache amortizes.\n");
  return 0;
}
