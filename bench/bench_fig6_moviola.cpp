// FIG6 — "Graphical View of Odd-Even Merge Sort" (Section 4.2, Figure 6).
//
// Figure 6 of the paper is a Moviola rendering of DEADLOCK in an odd-even
// merge sort.  We reproduce the scenario: an odd-even transposition sort
// over SMP in which every exchange receives before it sends — the classic
// message-ordering bug — so the whole family blocks.  The bench prints the
// Moviola deadlock view (who is blocked on what), then the partial-order
// graph of a correct run of the same program for contrast.

#include <cstdio>

#include "apps/sort.hpp"
#include "bench_common.hpp"
#include "chrysalis/kernel.hpp"
#include "replay/instant_replay.hpp"
#include "replay/moviola.hpp"

int main() {
  using namespace bfly;
  bench::header("FIG6", "Moviola view of deadlock in odd-even merge sort",
                "receive-before-send bug blocks every process on its mailbox");

  // --- The buggy run -------------------------------------------------------
  {
    sim::Machine m(sim::butterfly1(16));
    // Build the deadlocking sort directly so we can interrogate the kernel.
    apps::SortConfig cfg;
    cfg.n = 256;
    cfg.processors = 8;
    cfg.inject_deadlock = true;
    apps::SortResult r;
    {
      // odd_even_sort creates its own kernel; re-run it here and show the
      // machine state it leaves behind.
      r = apps::odd_even_sort(m, cfg);
    }
    std::printf("buggy sort (8 processes, receive-before-send):\n");
    std::printf("  machine deadlocked: %s\n", r.deadlocked ? "YES" : "no");
    std::printf("  blocked fibers: %zu\n\n", m.blocked_fibers().size());
  }
  // Use a kernel we still hold to print the full Moviola report.
  {
    sim::Machine m(sim::butterfly1(16));
    chrys::Kernel k(m);
    // Minimal in-place reconstruction: 4 processes in a receive cycle.
    std::vector<chrys::Oid> boxes(4);
    k.create_process(0, [&] {
      for (auto& b : boxes) {
        b = k.make_dual_queue();
        k.give_to_system(b);  // must outlive the creator
      }
      for (std::uint32_t w = 0; w < 4; ++w) {
        k.create_process(w % m.nodes(), [&k, &boxes, w] {
          // Everyone receives first; the sends below are never reached.
          const std::uint32_t v = k.dq_dequeue(boxes[w]);
          k.dq_enqueue(boxes[(w + 1) % 4], v);
        }, "sorter-" + std::to_string(w));
      }
    });
    m.run();
    std::printf("Moviola deadlock view of the wait cycle:\n%s\n",
                replay::Moviola::deadlock_report(k, m).c_str());
  }

  // --- A correct run, with its event partial order -------------------------
  {
    sim::Machine m(sim::butterfly1(16));
    chrys::Kernel k(m);
    replay::Monitor mon(k, 4);
    mon.set_mode(replay::Mode::kRecord);
    // Each exchange is one shared object; partners write it in turn.
    std::vector<std::uint32_t> objs;
    for (int i = 0; i < 3; ++i)
      objs.push_back(mon.register_object(i % m.nodes(),
                                         "exch" + std::to_string(i)));
    for (std::uint32_t w = 0; w < 4; ++w) {
      k.create_process(w, [&, w] {
        for (std::uint32_t phase = 0; phase < 3; ++phase) {
          const bool lower = (phase % 2 == 0) == (w % 2 == 0);
          const std::uint32_t partner = lower ? w + 1 : w - 1;
          if (partner >= 4) continue;
          const std::uint32_t obj = objs[std::min(w, partner) % 3];
          mon.begin_write(w, obj);
          m.charge(sim::kMillisecond);
          mon.end_write(w, obj);
        }
      });
    }
    m.run();
    replay::Log log = mon.take_log();
    replay::Moviola mv(log);
    std::printf("correct run: %zu events, %zu cross-process dependences, "
                "critical path %u\n",
                mv.events().size(), mv.cross_actor_edges(),
                mv.critical_path());
    std::printf("\npartial-order graph (Graphviz):\n%s", mv.to_dot().c_str());
  }
  return 0;
}
