// Shared helpers for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation, printing the same rows/series the paper reports.  Benches run
// entirely in simulated time, so "seconds" below are Butterfly seconds, not
// host seconds.  Set BFLY_FAST=1 in the environment to shrink problem sizes
// for smoke runs (CI); the default sizes match the paper's scale.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/time.hpp"

namespace bfly::bench {

inline bool fast_mode() {
  const char* v = std::getenv("BFLY_FAST");
  return v != nullptr && v[0] != '0';
}

inline double seconds(sim::Time t) {
  return static_cast<double>(t) / sim::kSecond;
}

inline void header(const char* id, const char* title, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("paper: %s\n", claim);
  std::printf("==============================================================\n");
}

}  // namespace bfly::bench
