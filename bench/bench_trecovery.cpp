// TRECOVERY — time-to-detect and time-to-recover under node kills.
//
// The paper's long multi-day runs (the 128-node connectionist simulations)
// died with the machine and restarted from scratch; a node that failed
// *silently* was worse, hanging the job until a human noticed.  bfly::rescue
// closes both holes: a heartbeat/watchdog membership service detects silent
// deaths in bounded time, and quiesced checkpoints through Bridge stable
// storage bound the work lost to a crash.  This bench quantifies both knobs:
//
//   part 1 (detect):   time from a silent kill to the watchdog's suspicion,
//                      swept over the heartbeat period, with 0/1/4 kills.
//                      The 0-kill rows report the instrumentation overhead.
//   part 2 (recovery): simulated time a restarted run spends re-doing work
//                      lost since the last checkpoint, swept over the
//                      checkpoint interval, for a Gauss-style elimination
//                      sweep and an odd-even transposition sort.  The final
//                      answer must match an uninterrupted run bit-for-bit.
//
// Output: human-readable tables plus one JSON line per configuration.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "sim/json.hpp"
#include "rescue/checkpoint.hpp"
#include "rescue/rescue.hpp"
#include "us/uniform_system.hpp"

using namespace bfly;

namespace {

// --- part 1: detection latency --------------------------------------------

struct DetectResult {
  sim::Time elapsed = 0;
  sim::Time startup = 0;  // Membership::start(): serialized process creation
  sim::Time grind = 0;    // the for_all span, excluding startup
  sim::Time mean_detect = 0;
  sim::Time max_detect = 0;
  std::uint64_t declared = 0;
  std::uint64_t false_suspects = 0;
};

// A Uniform System grind: `tasks` one-millisecond tasks over all 8 nodes.
// Shared US structures live on nodes 0-1; kills take pure workers from node
// 7 downward, so no survivor ever references a corpse — detection can only
// come from the heartbeat timeout.
DetectResult run_detect(std::uint32_t tasks, sim::Time hb_period,
                        std::uint32_t kills, bool with_membership) {
  const sim::Time kill_base = 50 * sim::kMillisecond;
  sim::FaultPlan plan;
  std::vector<sim::Time> kill_at;
  for (std::uint32_t i = 0; i < kills; ++i) {
    const sim::Time at = kill_base + i * 2 * sim::kMillisecond;
    plan.kill_silent(7 - i, at);
    kill_at.push_back(at);
  }
  sim::Machine m(sim::butterfly1(8), plan);
  chrys::Kernel k(m);
  us::UsConfig cfg;
  cfg.memory_nodes = 2;
  us::UniformSystem us(k, cfg);
  rescue::RescueConfig rc;
  rc.heartbeat_period = hb_period;
  // Four missed heartbeats plus scheduling jitter: daemons and watchdog
  // share their CPUs with 1 ms tasks and only run at task boundaries, so
  // observed staleness carries up to ~2 ms of slack on a healthy node.
  rc.suspect_after = 4 * hb_period + 2 * sim::kMillisecond;
  rc.monitor_node = 2;  // off the US queue node and off the kill list
  rescue::Membership mem(k, rc);
  if (with_membership)
    mem.subscribe([&](sim::NodeId n) { us.excise_node(n); });
  DetectResult r;
  us.run_main([&] {
    const sim::Time t0 = m.now();
    if (with_membership) mem.start();
    const sim::Time t1 = m.now();
    us.for_all(0, tasks, [](us::TaskCtx& c) { c.m.compute(8000); });
    r.startup = t1 - t0;
    r.grind = m.now() - t1;
    if (with_membership) mem.stop();
  });
  r.elapsed = m.now();
  r.declared = m.stats().suspects_declared;
  r.false_suspects = m.stats().false_suspects;
  for (std::uint32_t i = 0; i < kills; ++i) {
    const sim::Time at = mem.suspected_at(7 - i);
    if (at == 0) continue;  // not detected (e.g. membership off)
    const sim::Time d = at - kill_at[i];
    r.mean_detect += d;
    if (d > r.max_detect) r.max_detect = d;
  }
  if (r.declared > 0) r.mean_detect /= r.declared;
  return r;
}

// --- part 2: recovery cost ------------------------------------------------

// Two deterministic step workloads over shared memory.  Within one step
// every task writes a disjoint slice and reads nothing a peer writes, so
// the bytes after step k are a pure function of the bytes before it — any
// schedule, any node count, any restart gives the same answer.

struct Workload {
  const char* name;
  std::uint32_t words;       // u32s of protected shared state
  std::uint32_t tasks;       // parallel tasks per step
  void (*step)(us::UniformSystem&, sim::Machine&, sim::PhysAddr,
               std::uint32_t words, std::uint32_t step_no);
};

// Gauss-style elimination sweep: square matrix, step s combines pivot row
// (s mod n) into every other row.  Fixed-point u32 arithmetic keeps the
// fingerprint exact.
void gauss_step(us::UniformSystem& us, sim::Machine& m, sim::PhysAddr base,
                std::uint32_t words, std::uint32_t s) {
  std::uint32_t n = 1;
  while (n * n < words) ++n;  // words is a perfect square
  const std::uint32_t pivot = s % n;
  us.for_all(0, n, [=, &m](us::TaskCtx& c) {
    const std::uint32_t r = c.arg;
    if (r == pivot) return;
    for (std::uint32_t col = 0; col < n; ++col) {
      const auto pv = m.read<std::uint32_t>(base.plus((pivot * n + col) * 4));
      const auto rv = m.read<std::uint32_t>(base.plus((r * n + col) * 4));
      m.write<std::uint32_t>(base.plus((r * n + col) * 4),
                             rv * 1664525u - pv * (2654435761u + r));
    }
  });
}

// Odd-even transposition sort: step s compare-exchanges disjoint pairs of
// parity s&1.  After `words` steps the array would be sorted; any prefix of
// steps is still a deterministic permutation-in-progress.
void sort_step(us::UniformSystem& us, sim::Machine& m, sim::PhysAddr base,
               std::uint32_t words, std::uint32_t s) {
  us.for_all(0, words / 2, [=, &m](us::TaskCtx& c) {
    const std::uint32_t j = 2 * c.arg + (s & 1);
    if (j + 1 >= words) return;
    const auto a = m.read<std::uint32_t>(base.plus(j * 4));
    const auto b = m.read<std::uint32_t>(base.plus((j + 1) * 4));
    if (a > b) {
      m.write<std::uint32_t>(base.plus(j * 4), b);
      m.write<std::uint32_t>(base.plus((j + 1) * 4), a);
    }
  });
}

void init_words(sim::Machine& m, sim::PhysAddr base, std::uint32_t words) {
  for (std::uint32_t w = 0; w < words; ++w)
    m.poke<std::uint32_t>(base.plus(w * 4),
                          (w * 2654435761u) ^ 0x9e3779b9u);
}

std::vector<std::uint32_t> read_words(sim::Machine& m, sim::PhysAddr base,
                                      std::uint32_t words) {
  std::vector<std::uint32_t> out(words);
  for (std::uint32_t w = 0; w < words; ++w)
    out[w] = m.peek<std::uint32_t>(base.plus(w * 4));
  return out;
}

constexpr std::uint32_t kCrashStep = 16;  // incarnation A dies after step 15
constexpr std::uint32_t kTotalSteps = 20;

// The uninterrupted reference: all kTotalSteps applied in one incarnation,
// no checkpointer, no Bridge.  Returns the final bytes.
std::vector<std::uint32_t> run_bare(const Workload& w) {
  sim::Machine m(sim::butterfly1(8));
  chrys::Kernel k(m);
  us::UniformSystem us(k);
  const sim::PhysAddr base = m.alloc(1, w.words * 4);
  init_words(m, base, w.words);
  us.run_main([&] {
    for (std::uint32_t s = 0; s < kTotalSteps; ++s)
      w.step(us, m, base, w.words, s);
  });
  return read_words(m, base, w.words);
}

struct RecoverResult {
  std::uint32_t redo_steps = 0;
  sim::Time recover = 0;       // simulated time re-doing lost steps
  std::uint64_t checkpoints = 0;
  bool match = false;
  std::string fault_json;
};

RecoverResult run_recovery(const Workload& w, std::uint32_t every,
                           const std::vector<std::uint32_t>& expect) {
  bridge::StableStore store;
  // Incarnation A: run to the crash point, checkpointing every `every`
  // steps.  The crash is the whole machine going away — exactly the
  // restart-from-scratch scenario the paper's long runs suffered — so the
  // incarnation simply ends with the stable store holding the last image.
  {
    sim::Machine m(sim::butterfly1(8));
    chrys::Kernel k(m);
    us::UniformSystem us(k);
    const sim::PhysAddr base = m.alloc(1, w.words * 4);
    init_words(m, base, w.words);
    us.run_main([&] {
      bridge::BridgeFs fs(k, 2, bridge::DiskParams{}, &store);
      rescue::Checkpointer cp(k, fs, rescue::CheckpointConfig{every, "ck"});
      cp.protect(base, w.words * 4);
      cp.run_steps(kCrashStep, [&](std::uint32_t s) {
        w.step(us, m, base, w.words, s);
      });
      fs.shutdown();
    });
  }
  // Incarnation B: same deterministic allocation sequence, restore the
  // latest checkpoint, re-do the lost steps, finish the job.
  RecoverResult r;
  sim::Machine m(sim::butterfly1(8));
  chrys::Kernel k(m);
  us::UniformSystem us(k);
  const sim::PhysAddr base = m.alloc(1, w.words * 4);
  init_words(m, base, w.words);
  std::vector<std::uint32_t> final_words;
  us.run_main([&] {
    bridge::BridgeFs fs(k, 2, bridge::DiskParams{}, &store);
    rescue::Checkpointer cp(k, fs, rescue::CheckpointConfig{every, "ck"});
    cp.protect(base, w.words * 4);
    if (!cp.restore()) return;  // leaves match=false
    r.redo_steps = kCrashStep - cp.next_step();
    const sim::Time t0 = m.now();
    sim::Time caught_up = t0;
    cp.run_steps(kTotalSteps, [&](std::uint32_t s) {
      if (s == kCrashStep) caught_up = m.now();
      w.step(us, m, base, w.words, s);
    });
    r.recover = caught_up - t0;
    final_words = read_words(m, base, w.words);
    fs.shutdown();
  });
  r.checkpoints = m.stats().checkpoints_taken;
  r.match = final_words == expect;
  r.fault_json = m.stats().fault_json();
  return r;
}

}  // namespace

int main() {
  const bool fast = bench::fast_mode();
  bench::header("TRECOVERY", "failure detection and checkpoint/restart cost",
                "recovery must be bounded in time, not contingent on a "
                "survivor touching the corpse");

  // --- part 1 --------------------------------------------------------------
  const std::uint32_t tasks = fast ? 256 : 400;
  std::printf("\npart 1: silent kills at 50 ms, suspect_after = 4 x period + 2 ms, "
              "%u x 1 ms tasks on 8 nodes\n", tasks);
  std::printf("overhead = steady-state heartbeat cost over the zero-kill "
              "grind; one-time startup\n(serialized daemon creation) is "
              "reported separately.\n");
  std::printf("%8s %8s %12s %12s %12s %10s\n", "hb(ms)", "kills",
              "detect(ms)", "max(ms)", "elapsed(s)", "overhead");
  const sim::Time periods[] = {1 * sim::kMillisecond, 2 * sim::kMillisecond,
                               4 * sim::kMillisecond, 8 * sim::kMillisecond};
  const DetectResult bare = run_detect(tasks, periods[0], 0, false);
  for (const sim::Time p : periods) {
    for (const std::uint32_t kills : {0u, 1u, 4u}) {
      const DetectResult r = run_detect(tasks, p, kills, true);
      // Steady-state instrumentation cost: only the zero-kill grind spans
      // are comparable (with kills the span includes degradation).
      const double over =
          kills == 0 ? static_cast<double>(r.grind) /
                               static_cast<double>(bare.grind) -
                           1.0
                     : 0.0;
      char over_col[16] = "-";
      if (kills == 0)
        std::snprintf(over_col, sizeof over_col, "%.1f%%", over * 100.0);
      std::printf("%8.0f %8u %12.1f %12.1f %12.3f %10s\n",
                  bench::seconds(p) * 1e3, kills,
                  bench::seconds(r.mean_detect) * 1e3,
                  bench::seconds(r.max_detect) * 1e3, bench::seconds(r.elapsed),
                  over_col);
      sim::json::Writer jw;
      jw.begin_object()
          .kv("bench", "trecovery")
          .kv("part", "detect")
          .kv("hb_period_ms", bench::seconds(p) * 1e3)
          .kv("kills", kills)
          .kv("declared", r.declared)
          .kv("mean_detect_ms", bench::seconds(r.mean_detect) * 1e3)
          .kv("max_detect_ms", bench::seconds(r.max_detect) * 1e3)
          .kv("elapsed_s", bench::seconds(r.elapsed))
          .kv("grind_s", bench::seconds(r.grind))
          .kv("startup_ms", bench::seconds(r.startup) * 1e3)
          .kv("overhead_pct", over * 100.0)
          .kv("false_suspects", r.false_suspects)
          .end_object();
      std::printf("%s\n", jw.str().c_str());
    }
  }

  // --- part 2 --------------------------------------------------------------
  const std::uint32_t gauss_n = fast ? 16 : 24;
  const std::uint32_t sort_words = fast ? 128 : 256;
  const Workload workloads[] = {
      {"gauss", gauss_n * gauss_n, gauss_n, gauss_step},
      {"sort", sort_words, sort_words / 2, sort_step},
  };
  std::printf("\npart 2: crash after step %u of %u, restart from the last "
              "checkpoint, finish, compare bytes\n", kCrashStep, kTotalSteps);
  std::printf("%8s %10s %8s %12s %8s %8s\n", "work", "ckpt-every", "redo",
              "recover(s)", "ckpts", "match");
  for (const Workload& w : workloads) {
    const std::vector<std::uint32_t> expect = run_bare(w);
    for (const std::uint32_t every : {8u, 4u, 2u, 1u}) {
      const RecoverResult r = run_recovery(w, every, expect);
      std::printf("%8s %10u %8u %12.4f %8llu %8s\n", w.name, every,
                  r.redo_steps, bench::seconds(r.recover),
                  static_cast<unsigned long long>(r.checkpoints),
                  r.match ? "yes" : "NO");
      sim::json::Writer jw;
      jw.begin_object()
          .kv("bench", "trecovery")
          .kv("part", "recovery")
          .kv("workload", w.name)
          .kv("ckpt_every", every)
          .kv("redo_steps", r.redo_steps)
          .kv("recover_s", bench::seconds(r.recover))
          .kv("match", r.match)
          .raw(r.fault_json)
          .end_object();
      std::printf("%s\n", jw.str().c_str());
    }
  }
  std::printf(
      "\nshape check: detect(ms) tracks 4 x hb_period + 2 ms; zero-kill\n"
      "grind overhead stays in the single-digit percent range; recover(s)\n"
      "decreases monotonically as checkpoints get more frequent; every\n"
      "recovery row must say match=yes (bit-for-bit).\n");
  return 0;
}
