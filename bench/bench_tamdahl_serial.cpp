// T-AMDAHL — serial bottlenecks in system software (Section 4.1).
//
// Paper: "Amdahl's law is extremely important in large-scale
// multiprocessors."  Three Rochester case studies:
//   * serial memory allocation in the Uniform System "was a dominant factor
//     in many programs until a parallel memory allocator was introduced"
//     (Ellis & Olson);
//   * serial process creation limits startup — Crowd Control parallelizes
//     it, but "serial access to system resources (such as process templates
//     in Chrysalis) ultimately limits" the achievable speedup;
//   * "serial access to a large file is especially unacceptable when 100
//     processes are available" — the Bridge motivation (see T-BRIDGE).

#include <cstdio>

#include "bench_common.hpp"
#include "crowd/crowd.hpp"
#include "us/uniform_system.hpp"

int main() {
  using namespace bfly;
  using sim::Time;
  bench::header("T-AMDAHL", "serial bottlenecks: allocator and process creation",
                "parallel allocator removes a dominant serial factor; Crowd "
                "Control helps but the template section caps it");

  // --- Allocator: alloc-heavy task load, serial vs parallel first fit ----
  std::printf("allocation-heavy workload (every task allocates+frees):\n");
  std::printf("%6s %16s %16s %10s\n", "procs", "serial alloc(s)",
              "parallel alloc(s)", "gain");
  for (std::uint32_t p : {8u, 32u, 64u}) {
    auto run = [&](bool parallel_alloc) {
      sim::Machine m(sim::butterfly1(64));
      chrys::Kernel k(m);
      us::UsConfig cfg;
      cfg.processors = p;
      cfg.parallel_allocator = parallel_alloc;
      us::UniformSystem us(k, cfg);
      Time t = 0;
      us.run_main([&] {
        const Time t0 = m.now();
        us.for_all(0, 300, [](us::TaskCtx& c) {
          const sim::PhysAddr a = c.us.alloc_on(c.node, 512);
          c.m.charge(2 * sim::kMillisecond);  // the useful work
          c.us.free_global(a, 512);
        });
        t = m.now() - t0;
      });
      return t;
    };
    const Time serial = run(false);
    const Time parallel = run(true);
    std::printf("%6u %16.3f %16.3f %9.1f%%\n", p, bench::seconds(serial),
                bench::seconds(parallel),
                100.0 * (bench::seconds(serial) - bench::seconds(parallel)) /
                    bench::seconds(serial));
  }

  // --- Process creation: serial vs Crowd Control tree ---------------------
  std::printf("\nstartup of P worker processes:\n");
  std::printf("%6s %14s %12s %22s\n", "procs", "serial(s)", "crowd(s)",
              "template floor (s)");
  for (std::uint32_t p : {16u, 64u, 120u}) {
    sim::Machine m1(sim::butterfly1(128));
    chrys::Kernel k1(m1);
    Time serial = 0;
    k1.create_process(0, [&] {
      serial = crowd::spread_serial(k1, p, [](std::uint32_t) {});
    });
    m1.run();

    sim::Machine m2(sim::butterfly1(128));
    chrys::Kernel k2(m2);
    Time tree = 0;
    k2.create_process(0,
                      [&] { tree = crowd::spread(k2, p, [](std::uint32_t) {}); });
    m2.run();

    const Time floor = (p - 1) * m1.config().proc_create_serial_ns;
    std::printf("%6u %14.3f %12.3f %22.3f\n", p, bench::seconds(serial),
                bench::seconds(tree), bench::seconds(floor));
  }
  std::printf("\nshape check: crowd beats serial, but never beats the "
              "serialized\ntemplate floor — \"none of these parallel "
              "solutions is particularly simple\".\n");
  return 0;
}
