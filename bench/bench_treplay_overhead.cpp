// T-REPLAY — Instant Replay overhead and reproduction (Section 3.3).
//
// Paper: "the overhead of monitoring can be kept to within a few percent of
// execution time for typical programs, making it practical to run
// non-deterministic applications under Instant Replay all the time"; the
// debugging and analysis cycle "decreased from several days to a few
// hours".

#include <cstdio>

#include "apps/pedagogical.hpp"
#include "bench_common.hpp"
#include "chrysalis/spinlock.hpp"
#include "replay/instant_replay.hpp"
#include "replay/moviola.hpp"

namespace {

using namespace bfly;
using sim::Time;

struct RunOut {
  std::vector<std::uint32_t> order;
  replay::Log log;
  Time elapsed = 0;
};

// A shared-object workload: `actors` processes update one shared object
// under the application's own spin lock.  Instant Replay's overhead is what
// the version protocol adds ON TOP of that existing access protocol:
//   off    = application lock only (the unmonitored program);
//   record = application lock + version bookkeeping and logging;
//   replay = version protocol alone drives the order (it subsumes the
//            mutual exclusion).
RunOut run_workload(std::uint32_t actors, std::uint32_t rounds,
                    replay::Mode mode, std::uint64_t jitter_seed,
                    const replay::Log* script) {
  sim::Machine m(sim::butterfly1(32));
  chrys::Kernel k(m);
  replay::Monitor mon(k, actors);
  RunOut out;
  const std::uint32_t obj = mon.register_object(0, "ledger");
  mon.set_mode(mode);
  if (script != nullptr) mon.load_log(*script);
  sim::PhysAddr app_lock = m.alloc(0, 8);
  m.poke<std::uint32_t>(app_lock, 0);
  sim::Rng jitter(jitter_seed);
  std::vector<Time> delays;
  for (std::uint32_t i = 0; i < actors * rounds; ++i)
    delays.push_back((1 + jitter.below(30)) * 200 * sim::kMicrosecond);
  for (std::uint32_t a = 0; a < actors; ++a) {
    k.create_process(a % m.nodes(), [&, a] {
      chrys::SpinLock lock(m, app_lock, 100 * sim::kMicrosecond);
      for (std::uint32_t r = 0; r < rounds; ++r) {
        k.delay(delays[a * rounds + r]);
        if (mode != replay::Mode::kReplay) lock.acquire();
        mon.begin_write(a, obj);  // no-op when monitoring is off
        out.order.push_back(a);
        m.charge(3 * sim::kMillisecond);  // the guarded work
        mon.end_write(a, obj);
        if (mode != replay::Mode::kReplay) lock.release();
      }
    });
  }
  out.elapsed = m.run();
  out.log = mon.take_log();
  return out;
}

}  // namespace

int main() {
  bench::header("T-REPLAY", "Instant Replay: overhead and exact reproduction",
                "monitoring within a few percent; replay reproduces the "
                "nondeterministic interleaving exactly");

  const std::uint32_t actors = 16, rounds = bench::fast_mode() ? 6 : 12;
  const RunOut off = run_workload(actors, rounds, replay::Mode::kOff, 5, nullptr);
  const RunOut rec = run_workload(actors, rounds, replay::Mode::kRecord, 5, nullptr);
  const double overhead =
      100.0 * (static_cast<double>(rec.elapsed) - static_cast<double>(off.elapsed)) /
      static_cast<double>(off.elapsed);
  std::printf("workload: %u processes x %u guarded sections (3ms each)\n\n",
              actors, rounds);
  std::printf("monitoring off:    %10.3fs\n", bench::seconds(off.elapsed));
  std::printf("recording:         %10.3fs   (overhead %.2f%%)\n",
              bench::seconds(rec.elapsed), overhead);
  std::printf("log size:          %10zu entries (order only, no contents)\n\n",
              rec.log.total_entries());

  int reproduced = 0, trials = 0;
  for (std::uint64_t seed : {101u, 202u, 303u, 404u}) {
    const RunOut rep =
        run_workload(actors, rounds, replay::Mode::kReplay, seed, &rec.log);
    ++trials;
    reproduced += rep.order == rec.order;
  }
  std::printf("replay under %d different timing perturbations: %d/%d exact\n",
              trials, reproduced, trials);

  // The nondeterministic knight's tour: different timings, different tours —
  // unless replayed.
  std::printf("\nknight's tour winners across timing seeds:");
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    sim::Machine m(sim::butterfly1(8));
    const apps::KnightResult r = apps::knights_tour(m, 5, 4, seed);
    std::printf(" P%u", r.winner);
  }
  std::printf("   (timing-dependent)\n");

  // Moviola on the recorded log.
  replay::Moviola mv(rec.log);
  std::printf("\nMoviola: %zu events, %zu cross-process dependences, "
              "critical path %u events\n",
              mv.events().size(), mv.cross_actor_edges(), mv.critical_path());
  std::printf("shape check: overhead should be a few percent and "
              "reproduction 4/4.\n");
  return 0;
}
