// T-RPC — the communication cost spectrum (Sections 2.2, 3.2, 4.2; Low's
// RPC experiments, Scott & Cox's message-passing overhead study).
//
// Paper: "A comparison with the costs of the basic primitives provided by
// Chrysalis shows that any general scheme for communication on the
// Butterfly will have comparable costs" — i.e. there is a ladder from raw
// shared references through microcoded primitives to library messages to
// full RPC, each buying semantics with microseconds.

#include <cstdio>

#include "bench_common.hpp"
#include "antfarm/antfarm.hpp"
#include "chrysalis/kernel.hpp"
#include "elmwood/elmwood.hpp"
#include "lynx/lynx.hpp"
#include "smp/family.hpp"

int main() {
  using namespace bfly;
  using sim::Time;
  bench::header("T-RPC", "one word, node 1 -> node 2 and back (8 mechanisms)",
                "shared ref < event < dual queue < Ant Farm msg < SMP msg < "
                "Lynx RPC; all 'reasonable for the semantics provided'");

  struct Row {
    const char* name;
    double us;
    const char* semantics;
  };
  std::vector<Row> rows;
  constexpr int kReps = 20;

  // 1. Raw shared-memory round trip (two remote reads).
  {
    sim::Machine m(sim::butterfly1(16));
    sim::PhysAddr cell = m.alloc(2, 8);
    Time t = 0;
    m.spawn(1, [&] {
      const Time t0 = m.now();
      for (int i = 0; i < kReps; ++i) {
        m.write<std::uint32_t>(cell, i);
        (void)m.read<std::uint32_t>(cell);
      }
      t = (m.now() - t0) / kReps;
    });
    m.run();
    rows.push_back(Row{"shared memory (write+read)", t / 1e3,
                       "no synchronization at all"});
  }

  // 2. Shared-memory polling RPC: the crudest request/response — the
  // client writes an argument and spins on a reply word; the server polls.
  {
    sim::Machine m(sim::butterfly1(16));
    chrys::Kernel k(m);
    sim::PhysAddr req = m.alloc(2, 8), rep = m.alloc(1, 8);
    m.poke<std::uint32_t>(req, 0);
    m.poke<std::uint32_t>(rep, 0);
    Time t = 0;
    k.create_process(2, [&] {
      for (int i = 0; i < kReps; ++i) {
        while (m.read<std::uint32_t>(req) == 0) m.charge(5 * sim::kMicrosecond);
        m.write<std::uint32_t>(req, 0);
        m.write<std::uint32_t>(rep, 1);
      }
    });
    k.create_process(1, [&] {
      k.delay(sim::kMillisecond);
      const Time t0 = m.now();
      for (int i = 0; i < kReps; ++i) {
        m.write<std::uint32_t>(req, 1);
        while (m.read<std::uint32_t>(rep) == 0) m.charge(5 * sim::kMicrosecond);
        m.write<std::uint32_t>(rep, 0);
      }
      t = (m.now() - t0) / kReps;
    });
    m.run();
    rows.push_back(Row{"shared-memory polling RPC", t / 1e3,
                       "busy-waits steal remote cycles"});
  }

  // 3. Chrysalis event ping-pong.
  {
    sim::Machine m(sim::butterfly1(16));
    chrys::Kernel k(m);
    Time t = 0;
    chrys::Oid ping = chrys::kNoObject, pong = chrys::kNoObject;
    chrys::Oid server = k.create_process(2, [&] {
      ping = k.make_event();
      for (int i = 0; i < kReps; ++i) {
        (void)k.event_wait(ping);
        k.event_post(pong, 1);
      }
    });
    (void)server;
    k.create_process(1, [&] {
      pong = k.make_event();
      k.delay(sim::kMillisecond);  // let the server set up
      const Time t0 = m.now();
      for (int i = 0; i < kReps; ++i) {
        k.event_post(ping, 1);
        (void)k.event_wait(pong);
      }
      t = (m.now() - t0) / kReps;
    });
    m.run();
    rows.push_back(Row{"event post/wait round trip", t / 1e3,
                       "blocking, one 32-bit datum"});
  }

  // 3. Dual queue round trip.
  {
    sim::Machine m(sim::butterfly1(16));
    chrys::Kernel k(m);
    Time t = 0;
    chrys::Oid q1 = chrys::kNoObject, q2 = chrys::kNoObject;
    k.create_process(2, [&] {
      q1 = k.make_dual_queue();
      for (int i = 0; i < kReps; ++i) k.dq_enqueue(q2, k.dq_dequeue(q1));
    });
    k.create_process(1, [&] {
      q2 = k.make_dual_queue();
      k.delay(sim::kMillisecond);
      const Time t0 = m.now();
      for (int i = 0; i < kReps; ++i) {
        k.dq_enqueue(q1, i);
        (void)k.dq_dequeue(q2);
      }
      t = (m.now() - t0) / kReps;
    });
    m.run();
    rows.push_back(Row{"dual queue round trip", t / 1e3,
                       "blocking queue, multiple waiters"});
  }

  // 4. Ant Farm thread message round trip.
  {
    sim::Machine m(sim::butterfly1(16));
    chrys::Kernel k(m);
    Time t = 0;
    k.create_process(0, [&] {
      antfarm::Colony col(k, 4);
      antfarm::ThreadId echo_id = 0, main_id = 0;
      echo_id = col.start(2, [&col, &main_id] {
        for (int i = 0; i < kReps; ++i) {
          const auto v = col.receive();
          col.send(main_id, v);
        }
      });
      col.start(1, [&col, &t, echo_id, &main_id, &m] {
        main_id = col.self();
        const Time t0 = m.now();
        for (int i = 0; i < kReps; ++i) {
          col.send(echo_id, i);
          (void)col.receive();
        }
        t = (m.now() - t0) / kReps;
      });
      col.join();
    });
    m.run();
    rows.push_back(Row{"Ant Farm send/receive round trip", t / 1e3,
                       "lightweight blockable threads"});
  }

  // 5. SMP message round trip.
  {
    sim::Machine m(sim::butterfly1(16));
    chrys::Kernel k(m);
    Time t = 0;
    k.create_process(0, [&] {
      smp::FamilyOptions opt;
      opt.base_node = 1;
      smp::Family fam(
          k, smp::Topology::line(2),
          [&](smp::Member& me) {
            if (me.index() == 0) {
              const Time t0 = m.now();
              for (int i = 0; i < kReps; ++i) {
                me.send_value<std::uint32_t>(1, 0, i);
                (void)me.receive();
              }
              t = (m.now() - t0) / kReps;
            } else {
              for (int i = 0; i < kReps; ++i) {
                smp::Message msg = me.receive();
                me.send_value<std::uint32_t>(0, 0, msg.as<std::uint32_t>());
              }
            }
          },
          opt);
      fam.join();
    });
    m.run();
    rows.push_back(Row{"SMP message round trip", t / 1e3,
                       "typed messages, family topology"});
  }

  // 7. Elmwood object invocation.
  {
    sim::Machine m(sim::butterfly1(16));
    chrys::Kernel k(m);
    elmwood::Elmwood os(k);
    Time t = 0;
    k.create_process(1, [&] {
      const elmwood::Capability obj = os.create_object(2, "echo");
      os.add_entry(obj, "echo",
                   [](elmwood::Invocation&, std::uint64_t v) { return v; });
      const Time t0 = m.now();
      for (int i = 0; i < kReps; ++i) (void)os.invoke(obj, "echo", i);
      t = (m.now() - t0) / kReps;
      os.shutdown();
    });
    m.run();
    rows.push_back(Row{"Elmwood object invocation", t / 1e3,
                       "capabilities, monitor objects"});
  }

  // 8. Lynx RPC.
  {
    sim::Machine m(sim::butterfly1(16));
    chrys::Kernel k(m);
    Time t = 0;
    k.create_process(0, [&] {
      lynx::Runtime rt(k);
      lynx::End e;
      const auto server = rt.spawn(2, [](lynx::Proc& p) {
        for (int i = 0; i < kReps; ++i) {
          lynx::Request r = p.accept();
          p.reply_value<int>(r, r.as<int>());
        }
      });
      const auto client = rt.spawn(1, [&](lynx::Proc& p) {
        const Time t0 = m.now();
        for (int i = 0; i < kReps; ++i)
          (void)p.call_value<int, int>(e, i);
        t = (m.now() - t0) / kReps;
      });
      e = rt.connect(client, server);
      rt.join();
    });
    m.run();
    rows.push_back(Row{"Lynx RPC (call/accept/reply)", t / 1e3,
                       "RPC, type check, dispatcher, movable links"});
  }

  std::printf("%-34s %12s   %s\n", "mechanism", "round trip", "semantics bought");
  for (const auto& r : rows)
    std::printf("%-34s %10.1fus   %s\n", r.name, r.us, r.semantics);
  std::printf("\nshape check: each step up the ladder costs more; the whole\n"
              "ladder spans roughly two orders of magnitude.\n");
  return 0;
}
