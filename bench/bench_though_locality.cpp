// T-HOUGH — locality in the Hough transform (Section 4.1).
//
// Paper: "In the Hough transform application, this technique [copying
// blocks of data from the global shared memory into local memory] improved
// performance by 42% when 64 processors were used.  Local lookup tables for
// transcendental functions improved performance by an additional 22%."

#include <cstdio>

#include "apps/hough.hpp"
#include "bench_common.hpp"
#include "sim/machine.hpp"

int main() {
  using namespace bfly;
  bench::header("T-HOUGH", "Hough transform locality ladder (64 processors)",
                "copy-to-local: +42%; local trig tables: further +22%");

  apps::HoughConfig cfg;
  cfg.processors = 64;
  cfg.width = cfg.height = bench::fast_mode() ? 256 : 512;
  cfg.lines = 2;
  cfg.line_fraction = 0.25;  // short segments: ~300 edge pixels total
  cfg.noise = 60;

  double base = 0, prev = 0;
  std::printf("%-14s %12s %14s %14s %16s\n", "variant", "time(s)",
              "vs naive", "vs previous", "remote refs");
  struct Row {
    const char* name;
    apps::HoughVariant v;
  } rows[] = {
      {"naive", apps::HoughVariant::kNaive},
      {"copy-local", apps::HoughVariant::kLocalCopy},
      {"local-tables", apps::HoughVariant::kLocalTables},
  };
  for (const Row& row : rows) {
    cfg.variant = row.v;
    sim::Machine m(sim::butterfly1(128));
    const apps::HoughResult r = apps::hough(m, cfg);
    const double t = bench::seconds(r.elapsed);
    if (row.v == apps::HoughVariant::kNaive) base = prev = t;
    std::printf("%-14s %12.3f %13.1f%% %13.1f%% %16llu\n", row.name, t,
                100.0 * (base - t) / base, 100.0 * (prev - t) / prev,
                static_cast<unsigned long long>(r.remote_refs));
    prev = t;
  }
  std::printf("\nshape check: copy-local should gain roughly 40%% over naive;\n"
              "local tables a further ~20%%.\n");
  return 0;
}
