// T-REF — memory reference costs (Section 2.1).
//
// Paper: "remote memory references (reads) take about 4 us, roughly five
// times as long as a local reference"; remote references steal memory
// cycles from the home node; on the Butterfly Plus "local references have
// improved by a factor of four, while remote references have improved by
// only a factor of two" (making locality even MORE important).

#include <cstdio>

#include "bench_common.hpp"
#include "sim/machine.hpp"

namespace {

struct RefCosts {
  double local_us, remote_us, atomic_us, block_per_word_us;
};

RefCosts measure(const bfly::sim::MachineConfig& cfg) {
  using namespace bfly::sim;
  Machine m(cfg);
  PhysAddr local = m.alloc(0, 4096);
  PhysAddr remote = m.alloc(cfg.nodes / 2, 4096);
  RefCosts out{};
  m.spawn(0, [&] {
    constexpr int kReps = 200;
    Time t0 = m.now();
    for (int i = 0; i < kReps; ++i) (void)m.read<std::uint32_t>(local);
    out.local_us = (m.now() - t0) / 1e3 / kReps;
    t0 = m.now();
    for (int i = 0; i < kReps; ++i) (void)m.read<std::uint32_t>(remote);
    out.remote_us = (m.now() - t0) / 1e3 / kReps;
    t0 = m.now();
    for (int i = 0; i < kReps; ++i) (void)m.fetch_add_u32(remote, 1);
    out.atomic_us = (m.now() - t0) / 1e3 / kReps;
    t0 = m.now();
    std::uint8_t buf[4096];
    for (int i = 0; i < 20; ++i) m.block_read(buf, remote, 4096);
    out.block_per_word_us = (m.now() - t0) / 1e3 / 20 / 1024;
  });
  m.run();
  return out;
}

}  // namespace

int main() {
  using namespace bfly;
  bench::header("T-REF", "memory reference costs, Butterfly-I vs Butterfly Plus",
                "remote read ~4us, ~5x local; Plus: local 4x better, remote 2x");

  const RefCosts b1 = measure(sim::butterfly1(128));
  const RefCosts bp = measure(sim::butterfly_plus(128));

  std::printf("%-28s %14s %14s\n", "operation", "Butterfly-I", "B.Plus");
  std::printf("%-28s %12.2fus %12.2fus\n", "local 32-bit read", b1.local_us,
              bp.local_us);
  std::printf("%-28s %12.2fus %12.2fus\n", "remote 32-bit read", b1.remote_us,
              bp.remote_us);
  std::printf("%-28s %12.2fus %12.2fus\n", "remote atomic add", b1.atomic_us,
              bp.atomic_us);
  std::printf("%-28s %12.2fus %12.2fus\n", "block transfer (per word)",
              b1.block_per_word_us, bp.block_per_word_us);
  std::printf("\nratios: B-I remote/local = %.1f   Plus remote/local = %.1f\n",
              b1.remote_us / b1.local_us, bp.remote_us / bp.local_us);
  std::printf("improvement: local %.1fx, remote %.1fx "
              "(locality matters even more on the Plus)\n",
              b1.local_us / bp.local_us, b1.remote_us / bp.remote_us);

  // Cycle stealing: the home node's local references under remote load.
  for (int hammer : {0, 16, 48}) {
    sim::Machine m(sim::butterfly1(64));
    sim::PhysAddr mine = m.alloc(0, 64);
    sim::PhysAddr shared = m.alloc(0, 64);
    sim::Time t = 0;
    m.spawn(0, [&] {
      const sim::Time t0 = m.now();
      for (int i = 0; i < 300; ++i) (void)m.read<std::uint32_t>(mine);
      t = m.now() - t0;
    });
    for (int h = 1; h <= hammer; ++h)
      m.spawn(h, [&m, shared] {
        for (int i = 0; i < 200; ++i) (void)m.read<std::uint32_t>(shared);
      });
    m.run();
    std::printf("home node local read with %2d remote hammerers: %.2fus\n",
                hammer, t / 1e3 / 300);
  }
  return 0;
}
