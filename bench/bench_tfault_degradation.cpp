// TFAULT — graceful degradation under dead nodes.
//
// Section 2.1 of the paper: with hundreds of boards, Rochester's Butterfly
// was "rarely fully operational"; the working configuration simply shrank
// and programs were expected to run on whatever was left.  This bench
// quantifies that: Gaussian elimination on a 64-processor pool (rows
// scattered over memory nodes 0-47) with 0, 1, 4, and 8 of the
// compute-only nodes (63 downward) killed at ~40% of the clean runtime.
// The Uniform System re-issues the tasks lost with each processor, so the
// answer stays correct while the speedup degrades roughly with the pool.
//
// Output: one JSON line per configuration (plus the human-readable table),
// so the series can be scraped into a plot.

#include <cstdio>

#include "apps/gauss.hpp"
#include "bench_common.hpp"
#include "sim/json.hpp"
#include "sim/machine.hpp"

int main() {
  using namespace bfly;
  const std::uint32_t n = bench::fast_mode() ? 64 : 192;
  const std::uint32_t procs = 64;
  bench::header("TFAULT", "Gauss speedup with nodes dying mid-solve",
                "the machine was rarely fully operational: the pool shrinks, "
                "the answer must not");
  std::printf("matrix N=%u, 64-node Butterfly-I, rows on nodes 0-47, kills "
              "from node 63 down\n\n", n);

  apps::GaussConfig cfg;
  cfg.n = n;
  cfg.processors = procs;
  cfg.memory_nodes = 48;  // killed nodes hold no rows, only managers

  // Serial reference for the speedup column.
  apps::GaussConfig serial = cfg;
  serial.processors = 1;
  sim::Machine msr(sim::butterfly1(64));
  const apps::GaussResult rser = apps::gauss_us(msr, serial);

  // A clean 64-processor run fixes the kill schedule at 40% of its time.
  sim::Machine mcl(sim::butterfly1(64));
  const apps::GaussResult rcl = apps::gauss_us(mcl, cfg);
  const sim::Time kill_at = rcl.elapsed * 2 / 5;

  std::printf("%8s %12s %10s %12s %8s\n", "killed", "elapsed(s)", "speedup",
              "max err", "ok");
  const std::uint32_t kill_counts[] = {0, 1, 4, 8};
  for (std::uint32_t kills : kill_counts) {
    sim::FaultPlan plan;
    for (std::uint32_t i = 0; i < kills; ++i)
      plan.kill(63 - i, kill_at + i * sim::kMillisecond);
    sim::Machine m(sim::butterfly1(64), plan);
    const apps::GaussResult r = apps::gauss_us(m, cfg);
    const double err = apps::gauss_error(r, n, cfg.seed);
    const bool ok = err < 1e-6;
    const double speedup = static_cast<double>(rser.elapsed) /
                           static_cast<double>(r.elapsed);
    std::printf("%8u %12.3f %10.2f %12.2e %8s\n", kills,
                bench::seconds(r.elapsed), speedup, err, ok ? "yes" : "NO");
    sim::json::Writer jw;
    jw.begin_object()
        .kv("bench", "tfault_degradation")
        .kv("n", n)
        .kv("procs", procs)
        .kv("nodes_killed", kills)
        .kv("kill_at_s", bench::seconds(kill_at))
        .kv("elapsed_s", bench::seconds(r.elapsed))
        .kv("speedup", speedup)
        .kv("max_err", err)
        .kv("correct", ok)
        .end_object();
    std::printf("%s\n", jw.str().c_str());
  }
  std::printf(
      "\nshape check: every row must say ok=yes (dead processors lose work,\n"
      "never answers); elapsed grows and speedup shrinks as kills rise.\n");
  return 0;
}
