// TSYNC — weak-scaling sweep of synchronization primitives to 16K nodes.
//
// The paper's busy-waiting warning (Section 5: waiting processors steal
// memory cycles from the node that owns the lock word) is a 128-node
// inconvenience that becomes a scaling wall three orders of magnitude
// later.  On the deliberately anachronistic `exascale_ish` profile
// (remote:local ~120x, per-node compute cheap) this bench sweeps
// 256/1K/4K/16K simulated nodes and pits the 1988 primitives against
// their scalable replacements:
//
//   lock:     test-and-set spin lock (exponential backoff) vs MCS queue
//             lock — contenders grab/release once, measuring the full
//             convoy drain.  Spin probes hammer the home module; MCS
//             waiters spin in their own memory.
//   barrier:  centralized counter + sense flag vs sense-reversing
//             combining tree (arity 4) — all N nodes arrive, 4 episodes.
//             Central arrival is O(n) serialized on one module; the tree
//             is O(log n) with local-only waiting.
//   counter:  one hot outstanding-work cell vs per-node distributed cells
//             (8 adds per node + one aggregating read) — the us::wait_idle
//             bookkeeping pattern at scale.
//   fadd:     concurrent fetch_add_u32 bursts into one cell with
//             model_switch_contention on, switch combining off vs on —
//             the Ultracomputer argument: adds meeting at a switch stage
//             merge, so the home port sees one transaction per window.
//
// Fast mode (BFLY_FAST=1, the sync-smoke CI stage) runs {256, 1K} and
// *gates*: MCS must beat the spin lock at 1K, tree-barrier growth from
// 256->1K must look like O(log n) not O(n), the distributed counter must
// beat the central one, and combining must both engage (combined_adds > 0)
// and win elapsed time.  Full mode (BFLY_SYNC_FULL=1) runs all four sizes
// non-gating and writes every row to BENCH_sync.json (override:
// BFLY_SYNC_OUT).  Fully deterministic: simulated time, fixed layouts.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chrysalis/spinlock.hpp"
#include "sim/json.hpp"
#include "sim/machine.hpp"
#include "sync/barrier.hpp"
#include "sync/counter.hpp"
#include "sync/mcs.hpp"

using namespace bfly;

namespace {

// Lock and fadd rows cap the contender count: the convoy's *length* is the
// workload, and past a couple thousand simultaneous contenders the host
// event count grows without changing the per-handoff story.
constexpr std::uint32_t kMaxContenders = 2048;
constexpr std::uint32_t kBarrierEpisodes = 4;
constexpr std::uint32_t kAddsPerNode = 32;  // counter rows
constexpr std::uint32_t kFaddPerActor = 4;  // fadd rows

int g_violations = 0;

void gate(bool ok, const char* what) {
  if (ok) return;
  ++g_violations;
  std::fprintf(stderr, "GATE FAILED: %s\n", what);
}

struct Row {
  std::string prim;            // "lock-spin", "lock-mcs", ...
  std::uint32_t nodes = 0;     // machine size
  std::uint32_t actors = 0;    // fibers participating
  std::uint64_t ops = 0;       // acquisitions / barrier crossings / adds
  sim::Time elapsed = 0;
  std::uint64_t lock_spins = 0;
  std::uint64_t combined_adds = 0;
  std::string forfeit;         // parsim eligibility (empty = eligible)
  std::string sync_json;

  double per_op_us() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(elapsed) / 1000.0 /
                          static_cast<double>(ops);
  }
};

std::vector<std::string> g_rows;

void emit(const Row& r) {
  std::printf("%-12s %6u %7u %8llu %12.3f %10.3f %10llu %10llu\n",
              r.prim.c_str(), r.nodes, r.actors,
              static_cast<unsigned long long>(r.ops),
              bench::seconds(r.elapsed) * 1e3, r.per_op_us(),
              static_cast<unsigned long long>(r.lock_spins),
              static_cast<unsigned long long>(r.combined_adds));
  sim::json::Writer jw;
  jw.begin_object()
      .kv("bench", "tsync")
      .kv("prim", r.prim)
      .kv("nodes", r.nodes)
      .kv("actors", r.actors)
      .kv("ops", r.ops)
      .kv("elapsed_ms", bench::seconds(r.elapsed) * 1e3)
      .kv("per_op_us", r.per_op_us())
      .kv("parallel_forfeit", r.forfeit)
      .raw(r.sync_json)
      .end_object();
  g_rows.push_back(jw.str());
}

void finish_row(Row& r, sim::Machine& m) {
  r.lock_spins = m.stats().lock_spins;
  r.combined_adds = m.stats().combined_adds;
  if (const char* f = m.parallel_forfeit()) r.forfeit = f;
  r.sync_json = m.stats().sync_json();
}

// Contenders spread across the machine; node 0 hosts the shared word.
std::vector<sim::NodeId> spread_nodes(std::uint32_t machine,
                                      std::uint32_t actors) {
  std::vector<sim::NodeId> nodes(actors);
  for (std::uint32_t w = 0; w < actors; ++w)
    nodes[w] = static_cast<sim::NodeId>(
        (static_cast<std::uint64_t>(w) * machine) / actors);
  return nodes;
}

// --- lock rows --------------------------------------------------------------

// Every row family runs with the switch-contention model on (combining
// still off outside the fadd A/B): the whole point is what hot-spot
// traffic does to a shared port, and without the model a centralized
// cell costs nothing extra no matter how many nodes probe it.
sim::MachineConfig contended(std::uint32_t machine) {
  sim::MachineConfig cfg = sim::exascale_ish(machine);
  cfg.model_switch_contention = true;
  return cfg;
}

Row run_lock(std::uint32_t machine, bool mcs) {
  const std::uint32_t actors = std::min(machine, kMaxContenders);
  sim::Machine m(contended(machine));
  const auto nodes = spread_nodes(machine, actors);
  const sim::PhysAddr cell = m.alloc(0, 8);
  m.poke<std::uint32_t>(cell, 0);
  m.label_memory(cell, 8, "bench.lock");
  // The protected data lives with the lock word, as it would in any real
  // structure: the holder's critical-section references queue behind
  // whatever probe storm is hammering node 0's port — the "stolen memory
  // cycles" the paper warns about, charged to the one processor that is
  // making progress.
  const sim::PhysAddr data = m.alloc(0, 32);
  m.label_memory(data, 32, "bench.lock.data");
  // MCS waiters re-check locally — a probe steals nothing from anyone, so
  // the backoff cap can sit near the handoff latency itself and the cap
  // is purely a host-event bound, not a contention dial.
  sync::McsLock qlock(m, 0, nodes, sim::kMicrosecond, 8 * sim::kMicrosecond);
  for (std::uint32_t w = 0; w < actors; ++w) {
    m.spawn(nodes[w], [&m, &qlock, cell, data, w, mcs] {
      // The paper: "programs can be highly sensitive to the amount of
      // time spent between attempts to set a lock".  A 16 us cap is the
      // responsive end of that trade — handoffs are detected quickly, but
      // past ~400 waiters the probe stream alone saturates the home port
      // and the holder's own critical-section references queue behind it.
      chrys::SpinLock slock(m, cell, 2 * sim::kMicrosecond,
                            16 * sim::kMicrosecond);
      if (mcs) qlock.acquire(w); else slock.acquire();
      std::uint32_t v = 0;
      for (std::uint32_t i = 0; i < 4; ++i)
        v += m.read<std::uint32_t>(data.plus(8 * i));
      m.write<std::uint32_t>(data, v + 1);
      m.charge(2 * sim::kMicrosecond);  // local work on the guarded state
      if (mcs) qlock.release(w); else slock.release();
    });
  }
  Row r;
  r.prim = mcs ? "lock-mcs" : "lock-spin";
  r.nodes = machine;
  r.actors = actors;
  r.ops = actors;
  r.elapsed = m.run();
  finish_row(r, m);
  return r;
}

// --- barrier rows -----------------------------------------------------------

Row run_barrier(std::uint32_t machine, bool tree) {
  sim::Machine m(contended(machine));
  std::vector<sim::NodeId> nodes(machine);
  for (std::uint32_t w = 0; w < machine; ++w) nodes[w] = w;
  sync::CentralBarrier cbar(m, 0, machine, 5 * sim::kMicrosecond,
                            sim::kMillisecond);
  sync::TreeBarrier tbar(m, nodes, 4, sim::kMicrosecond,
                         64 * sim::kMicrosecond);
  for (std::uint32_t w = 0; w < machine; ++w) {
    m.spawn(nodes[w], [&m, &cbar, &tbar, w, tree] {
      for (std::uint32_t e = 0; e < kBarrierEpisodes; ++e) {
        // A sliver of skew so arrivals are a wave, not one instant.
        m.charge(((w * 37 + e * 11) % 64) * 100);
        if (tree) tbar.arrive(w); else cbar.arrive(w);
      }
    });
  }
  Row r;
  r.prim = tree ? "barrier-tree" : "barrier-central";
  r.nodes = machine;
  r.actors = machine;
  r.ops = kBarrierEpisodes;
  r.elapsed = m.run();
  finish_row(r, m);
  return r;
}

// --- counter rows -----------------------------------------------------------

Row run_counter(std::uint32_t machine, bool dist) {
  sim::Machine m(contended(machine));
  std::vector<sim::NodeId> nodes(machine);
  for (std::uint32_t w = 0; w < machine; ++w) nodes[w] = w;
  sync::CentralCounter central(m, 0, "bench.counter");
  sync::DistributedCounter spread(m, nodes, "bench.counter.d");
  sync::IdleCounter& c =
      dist ? static_cast<sync::IdleCounter&>(spread)
           : static_cast<sync::IdleCounter&>(central);
  for (std::uint32_t w = 0; w < machine; ++w) {
    m.spawn(nodes[w], [&m, &c, w] {
      for (std::uint32_t i = 0; i < kAddsPerNode; ++i) {
        (void)c.add(1);
        m.charge(((w * 13 + i * 7) % 32) * 100);
      }
      for (std::uint32_t i = 0; i < kAddsPerNode; ++i)
        (void)c.add(0xffffffffu);
      // One node plays the wait_idle waiter: a single aggregating read.
      if (w == 0) (void)c.read();
    });
  }
  Row r;
  r.prim = dist ? "counter-dist" : "counter-central";
  r.nodes = machine;
  r.actors = machine;
  r.ops = static_cast<std::uint64_t>(machine) * 2 * kAddsPerNode;
  r.elapsed = m.run();
  finish_row(r, m);
  return r;
}

// --- fadd / switch-combining rows -------------------------------------------

Row run_fadd(std::uint32_t machine, bool combining) {
  sim::MachineConfig cfg = contended(machine);
  cfg.switch_combining = combining;
  sim::Machine m(cfg);
  const std::uint32_t actors = std::min(machine, kMaxContenders);
  const auto nodes = spread_nodes(machine, actors);
  const sim::PhysAddr cell = m.alloc(0, 8);
  m.poke<std::uint32_t>(cell, 0);
  m.label_memory(cell, 8, "bench.fadd");
  for (std::uint32_t w = 0; w < actors; ++w) {
    m.spawn(nodes[w], [&m, cell, w] {
      for (std::uint32_t i = 0; i < kFaddPerActor; ++i) {
        (void)m.fetch_add_u32(cell, 1);
        m.charge(((w * 29 + i * 17) % 16) * 100);
      }
    });
  }
  Row r;
  r.prim = combining ? "fadd-combine" : "fadd-port";
  r.nodes = machine;
  r.actors = actors;
  r.ops = static_cast<std::uint64_t>(actors) * kFaddPerActor;
  r.elapsed = m.run();
  finish_row(r, m);
  // Correctness: every add must land exactly once, combined or not.
  const auto v = m.peek<std::uint32_t>(cell);
  gate(v == r.ops, "fadd: cell must equal the number of adds");
  return r;
}

}  // namespace

int main() {
  const bool full = [] {
    const char* v = std::getenv("BFLY_SYNC_FULL");
    return v != nullptr && v[0] != '0';
  }();
  const bool gating = !full;
  bench::header(
      "TSYNC", "scalable synchronization: weak scaling to 16K nodes",
      "busy-waiting steals cycles from the node that owns the lock word; "
      "at 16K nodes the 1988 primitives collapse, MCS/tree/combining hold");

  std::vector<std::uint32_t> sizes{256, 1024};
  if (full) {
    sizes.push_back(4096);
    sizes.push_back(16384);
  }

  std::printf("%-12s %6s %7s %8s %12s %10s %10s %10s\n", "prim", "nodes",
              "actors", "ops", "elapsed_ms", "per_op_us", "spins",
              "combined");

  // Keyed "prim/nodes" for the gate lookups below.
  std::vector<Row> rows;
  for (const std::uint32_t n : sizes) {
    rows.push_back(run_lock(n, /*mcs=*/false));
    rows.push_back(run_lock(n, /*mcs=*/true));
    rows.push_back(run_barrier(n, /*tree=*/false));
    rows.push_back(run_barrier(n, /*tree=*/true));
    rows.push_back(run_counter(n, /*dist=*/false));
    rows.push_back(run_counter(n, /*dist=*/true));
    rows.push_back(run_fadd(n, /*combining=*/false));
    rows.push_back(run_fadd(n, /*combining=*/true));
    for (std::size_t i = rows.size() - 8; i < rows.size(); ++i)
      emit(rows[i]);
  }

  const auto row = [&](const char* prim, std::uint32_t n) -> const Row& {
    for (const Row& r : rows)
      if (r.prim == prim && r.nodes == n) return r;
    std::fprintf(stderr, "missing row %s/%u\n", prim, n);
    std::exit(2);
  };

  // Shape report: per-op growth factors per size step (ops scale with the
  // machine for the lock/counter/fadd families, so elapsed ratios would
  // conflate workload growth with primitive cost).
  const auto ratio = [&](const char* prim, std::uint32_t lo,
                         std::uint32_t hi) {
    return row(prim, hi).per_op_us() / row(prim, lo).per_op_us();
  };
  std::printf("\ngrowth 256 -> 1024 (4x nodes):\n");
  for (const char* p : {"lock-spin", "lock-mcs", "barrier-central",
                        "barrier-tree", "counter-central", "counter-dist",
                        "fadd-port", "fadd-combine"})
    std::printf("  %-16s %6.2fx\n", p, ratio(p, 256, 1024));
  if (full) {
    std::printf("growth 1024 -> 16384 (16x nodes):\n");
    for (const char* p : {"barrier-central", "barrier-tree",
                          "counter-central", "counter-dist"})
      std::printf("  %-16s %6.2fx\n", p, ratio(p, 1024, 16384));
  }

  if (gating) {
    // MCS vs spin at 1K: same convoy, same critical sections; the queue
    // lock's handoffs must win (throughput >= means elapsed <=).
    gate(row("lock-mcs", 1024).elapsed <= row("lock-spin", 1024).elapsed,
         "MCS throughput must be >= the backoff spin lock at 1K nodes");
    // Tree barrier growth over a 4x size step: O(log n) adds one constant
    // increment (ratio -> 1); O(n) would be ~4x.  Allow 2.5x of slack.
    gate(ratio("barrier-tree", 256, 1024) <= 2.5,
         "tree barrier must grow O(log n), not O(n), from 256 to 1K");
    // The centralized barrier is the O(n) baseline the tree is fixing;
    // if it stops collapsing the comparison is vacuous.
    gate(ratio("barrier-central", 256, 1024) >= 2.0,
         "central barrier must show ~O(n) growth from 256 to 1K");
    gate(row("counter-dist", 1024).elapsed <=
             row("counter-central", 1024).elapsed,
         "distributed counter must beat the central cell at 1K nodes");
    gate(row("fadd-combine", 1024).combined_adds > 0,
         "switch combining must engage under a contended fadd burst");
    gate(row("fadd-combine", 1024).elapsed < row("fadd-port", 1024).elapsed,
         "combining must beat port serialization at 1K nodes");
  }

  const char* out_path = std::getenv("BFLY_SYNC_OUT");
  if (out_path == nullptr) out_path = "BENCH_sync.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f, "{\"bench\":\"tsync\",\"full\":%s,\"rows\":[",
                 full ? "true" : "false");
    for (std::size_t i = 0; i < g_rows.size(); ++i)
      std::fprintf(f, "%s%s", i > 0 ? "," : "", g_rows[i].c_str());
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu rows)\n", out_path, g_rows.size());
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    ++g_violations;
  }

  std::printf(
      "\nshape check: lock-spin and barrier-central per-op cost grows with\n"
      "the machine (probe pressure and O(n) arrival on one module);\n"
      "lock-mcs handoff and barrier-tree cost stay near-flat (log-depth\n"
      "wave, local-only waiting); counter-dist adds are local so the\n"
      "aggregating read is the only term that grows; fadd-combine merges\n"
      "concurrent adds at the switch so the port queue never forms.\n");
  if (g_violations != 0) {
    std::fprintf(stderr, "\n%d gate(s) FAILED\n", g_violations);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
