// FIG5 — Gaussian elimination: shared memory (Uniform System) versus
// message passing (SMP), reproducing Figure 5 of the paper.
//
// Paper's observations (Section 4.1):
//   * below 64 processors the SMP (message passing) implementation
//     outperforms the Uniform System implementation, despite messages being
//     far more expensive than shared references;
//   * beyond 64 processors the Uniform System timings stay roughly flat;
//   * the SMP timings actually *increase* beyond 64 processors, because its
//     communication volume is P*N messages — doubling the parallelism
//     doubles the communication — while the Uniform System's volume,
//     (N^2-N)+P(N-1), grows only weakly with P.

// Set BFLY_TRACE=<path> to also run the 8-processor US configuration under
// a scope::Tracer: the Chrome trace lands at <path> and the critical-path /
// Amdahl report prints after the table.  Tracing is uncharged, so the
// traced run's timings match the table's 8-processor row exactly.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "apps/gauss.hpp"
#include "bench_common.hpp"
#include "scope/scope.hpp"
#include "sim/machine.hpp"

int main() {
  using namespace bfly;
  const std::uint32_t n = bench::fast_mode() ? 96 : 384;
  const char* trace_path = std::getenv("BFLY_TRACE");
  bench::header("FIG5", "Gaussian elimination, shared memory vs message passing",
                "SMP wins < 64 procs; US flat beyond 64; SMP rises past 64");
  std::printf("matrix N=%u, machine: 128-node Butterfly-I\n\n", n);
  std::printf("%6s %14s %14s %16s %12s\n", "procs", "shared-mem(s)",
              "msg-pass(s)", "US remote refs", "SMP msgs");

  const std::uint32_t procs[] = {8, 16, 32, 48, 64, 96, 128};
  for (std::uint32_t p : procs) {
    apps::GaussConfig cfg;
    cfg.n = n;
    cfg.processors = p;

    // 4 MB memory boards (the upgrade BBN offered): N=384 rows plus
    // in-flight message buffers exceed the stock 1 MB on the gather node.
    sim::MachineConfig mc = sim::butterfly1(128);
    mc.memory_per_node = 4u << 20;

    sim::Machine mu(mc);
    // Trace the smallest US configuration (uncharged: same elapsed either
    // way), and hold the report until after the table prints.
    std::unique_ptr<scope::Tracer> tracer;
    if (trace_path != nullptr && p == 8)
      tracer = std::make_unique<scope::Tracer>(mu);
    const apps::GaussResult ru = apps::gauss_us(mu, cfg);
    if (tracer != nullptr) {
      std::FILE* f = std::fopen(trace_path, "w");
      if (f != nullptr) {
        const std::string trace = tracer->chrome_trace();
        std::fwrite(trace.data(), 1, trace.size(), f);
        std::fclose(f);
      }
    }

    sim::Machine ms(mc);
    const apps::GaussResult rs = apps::gauss_smp(ms, cfg);

    std::printf("%6u %14.2f %14.2f %16llu %12llu\n", p,
                bench::seconds(ru.elapsed), bench::seconds(rs.elapsed),
                static_cast<unsigned long long>(ru.remote_refs),
                static_cast<unsigned long long>(rs.messages));
    if (tracer != nullptr) {
      std::printf("\n-- scope report for the traced 8-processor US run "
                  "(trace: %s) --\n%s\n", trace_path,
                  tracer->report().c_str());
    }
  }
  std::printf(
      "\nshape check: min of msg-pass column should sit near 64 procs and\n"
      "rise beyond it, while shared-mem flattens (crossover near 64).\n");
  return 0;
}
