// ABLATION — design choices called out in DESIGN.md, each toggled in
// isolation:
//   1. switch contention modelling (off by default; Rettberg & Thomas say
//      it is negligible — verify that in-model at application level);
//   2. the SMP SAR cache (delaying unmaps to amortize the ~1 ms map cost);
//   3. Uniform System tree initialization (the Rochester "faster
//      initialization" contribution);
//   4. Butterfly-I vs Butterfly Plus on the Hough locality ladder (the
//      paper: "the issue of locality will be even more important in the
//      Butterfly Plus, since local references have improved by a factor of
//      four, while remote references have improved by only a factor of
//      two").

#include <cstdio>

#include "apps/gauss.hpp"
#include "apps/hough.hpp"
#include "bench_common.hpp"
#include "smp/family.hpp"
#include "us/uniform_system.hpp"

int main() {
  using namespace bfly;
  using sim::Time;
  bench::header("ABLATION", "design-choice ablations",
                "switch contention negligible; SAR cache pays; tree init "
                "pays; the Plus rewards locality even more");

  // 1. Switch contention on/off under a heavy all-to-all workload.
  {
    auto run = [](bool model_switch) {
      sim::MachineConfig mc = sim::butterfly1(64);
      mc.model_switch_contention = model_switch;
      sim::Machine m(mc);
      apps::GaussConfig cfg;
      cfg.n = 64;
      cfg.processors = 64;
      return apps::gauss_us(m, cfg).elapsed;
    };
    const Time off = run(false);
    const Time on = run(true);
    std::printf("1. switch contention model: off %.3fs  on %.3fs  "
                "(delta %.2f%% — negligible, as Rettberg & Thomas found)\n",
                bench::seconds(off), bench::seconds(on),
                100.0 * (static_cast<double>(on) - static_cast<double>(off)) /
                    static_cast<double>(off));
  }

  // 2. SMP SAR cache on/off (20-message burst on one channel).
  {
    auto run = [](std::uint32_t cache) {
      sim::Machine m(sim::butterfly1(8));
      chrys::Kernel k(m);
      Time t = 0;
      k.create_process(0, [&] {
        smp::FamilyOptions opt;
        opt.sar_cache_capacity = cache;
        smp::Family fam(
            k, smp::Topology::line(2),
            [&](smp::Member& me) {
              if (me.index() == 0) {
                const Time t0 = m.now();
                for (int i = 0; i < 20; ++i)
                  me.send_value<std::uint32_t>(1, 0, i);
                t = m.now() - t0;
              } else {
                for (int i = 0; i < 20; ++i) (void)me.receive();
              }
            },
            opt);
        fam.join();
      });
      m.run();
      return t;
    };
    const Time off = run(0);
    const Time on = run(200);
    std::printf("2. SMP SAR cache: off %.1fms  on %.1fms per 20 sends "
                "(%.1fx — the map/unmap tax)\n",
                off / 1e6, on / 1e6,
                static_cast<double>(off) / static_cast<double>(on));
  }

  // 3. US initialization: serial vs tree, 64 managers.
  {
    auto run = [](bool tree) {
      sim::Machine m(sim::butterfly1(64));
      chrys::Kernel k(m);
      us::UsConfig cfg;
      cfg.tree_init = tree;
      us::UniformSystem us(k, cfg);
      Time t = 0;
      k.create_process(0, [&] {
        const Time t0 = m.now();
        us.initialize();
        us.for_all(0, 64, [](us::TaskCtx&) {});
        t = m.now() - t0;
        us.terminate();
      });
      m.run();
      return t;
    };
    const Time serial = run(false);
    const Time tree = run(true);
    std::printf("3. US initialization (64 managers): serial %.1fms  "
                "tree %.1fms  (%.1fx)\n",
                serial / 1e6, tree / 1e6,
                static_cast<double>(serial) / static_cast<double>(tree));
  }

  // 4. Hough locality ladder on both hardware generations.
  {
    std::printf("4. Hough locality gain by hardware generation "
                "(64 procs, naive -> local-tables):\n");
    for (int gen = 0; gen < 2; ++gen) {
      const sim::MachineConfig mc =
          gen == 0 ? sim::butterfly1(128) : sim::butterfly_plus(128);
      Time naive = 0, local = 0;
      for (int variant = 0; variant < 2; ++variant) {
        apps::HoughConfig cfg;
        cfg.width = cfg.height = 256;
        cfg.lines = 2;
        cfg.line_fraction = 0.25;
        cfg.noise = 60;
        cfg.processors = 64;
        cfg.variant = variant == 0 ? apps::HoughVariant::kNaive
                                   : apps::HoughVariant::kLocalTables;
        sim::Machine m(mc);
        const Time t = apps::hough(m, cfg).elapsed;
        (variant == 0 ? naive : local) = t;
      }
      std::printf("   %-14s naive %.1fms -> local %.1fms  (gain %.1f%%)\n",
                  gen == 0 ? "Butterfly-I" : "Butterfly Plus", naive / 1e6,
                  local / 1e6,
                  100.0 * (static_cast<double>(naive) - static_cast<double>(local)) /
                      static_cast<double>(naive));
    }
    std::printf("   shape check: the Plus's gain percentage should be at "
                "least as large.\n");
  }
  return 0;
}
