// T-SPEEDUP — application speedups at scale (Section 4.1).
//
// Paper: "We have achieved significant speedups (often almost linear) using
// over 100 processors on a range of applications including connectionist
// network simulation, game-playing, Gaussian elimination, parallel data
// structure management, and numerous computer vision and graph algorithms."

#include <cstdio>

#include "apps/connectionist.hpp"
#include "apps/gauss.hpp"
#include "apps/geometry.hpp"
#include "apps/graph.hpp"
#include "apps/image.hpp"
#include "apps/pedagogical.hpp"
#include "apps/sort.hpp"
#include "bench_common.hpp"

int main() {
  using namespace bfly;
  using sim::Time;
  bench::header("T-SPEEDUP", "application suite: speedup vs processors",
                "significant speedups, often almost linear, beyond 100 "
                "processors");

  const bool fast = bench::fast_mode();
  const std::uint32_t plist[] = {1, 8, 32, 64, 120};

  struct App {
    const char* name;
    std::function<Time(std::uint32_t)> run;
  };
  std::vector<App> apps;

  apps.push_back({"connectionist", [&](std::uint32_t p) {
    sim::Machine m(sim::butterfly1(128));
    apps::ConnectionistConfig cfg;
    cfg.units = fast ? 240 : 480;
    cfg.fanin = 16;
    cfg.rounds = fast ? 3 : 5;
    cfg.processors = p;
    return apps::connectionist(m, cfg).elapsed;
  }});
  apps.push_back({"gauss (US)", [&](std::uint32_t p) {
    sim::Machine m(sim::butterfly1(128));
    apps::GaussConfig cfg;
    cfg.n = fast ? 64 : 128;
    cfg.processors = p;
    return apps::gauss_us(m, cfg).elapsed;
  }});
  apps.push_back({"CC labeling", [&](std::uint32_t p) {
    sim::Machine m(sim::butterfly1(128));
    const apps::Graph g = apps::Graph::random(fast ? 400 : 800, 4, 3);
    return apps::connected_components(m, g, p).elapsed;
  }});
  apps.push_back({"bitonic sort", [&](std::uint32_t p) {
    sim::Machine m(sim::butterfly1(128));
    apps::SortConfig cfg;
    cfg.n = fast ? 2048 : 4096;
    cfg.processors = p;
    return apps::bitonic_sort(m, cfg).elapsed;
  }});
  apps.push_back({"convex hull", [&](std::uint32_t p) {
    sim::Machine m(sim::butterfly1(128));
    const auto pts = apps::random_points(fast ? 2000 : 6000, 21);
    return apps::convex_hull(m, pts, p).elapsed;
  }});
  apps.push_back({"sobel (BIFF)", [&](std::uint32_t p) {
    sim::Machine m(sim::butterfly1(128));
    const apps::Image img = apps::Image::synthetic(fast ? 128 : 256,
                                                   fast ? 128 : 256, 4);
    return apps::biff_apply(m, img, apps::filter_sobel(), p, 30).elapsed;
  }});
  apps.push_back({"8-queens (x4 boards)", [&](std::uint32_t p) {
    sim::Machine m(sim::butterfly1(128));
    return apps::queens(m, fast ? 9 : 10, p).elapsed;
  }});

  std::printf("%-22s", "application");
  for (std::uint32_t p : plist) std::printf("   P=%-4u", p);
  std::printf("   speedup@120\n");
  for (const App& a : apps) {
    std::printf("%-22s", a.name);
    Time t1 = 0;
    double spd = 0;
    for (std::uint32_t p : plist) {
      const Time t = a.run(p);
      if (p == 1) t1 = t;
      spd = sim::ratio(t1, t);
      std::printf(" %7.2fs", bench::seconds(t));
    }
    std::printf("   %6.1fx\n", spd);
  }
  std::printf("\nshape check: most rows should approach their task "
              "parallelism limit;\nnothing should slow down as processors "
              "are added.\n");
  return 0;
}
