# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_chrysalis[1]_include.cmake")
include("/root/repo/build/tests/test_us[1]_include.cmake")
include("/root/repo/build/tests/test_smp[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_antfarm[1]_include.cmake")
include("/root/repo/build/tests/test_lynx[1]_include.cmake")
include("/root/repo/build/tests/test_crowd[1]_include.cmake")
include("/root/repo/build/tests/test_replay[1]_include.cmake")
include("/root/repo/build/tests/test_bridge[1]_include.cmake")
include("/root/repo/build/tests/test_psyche[1]_include.cmake")
include("/root/repo/build/tests/test_pds[1]_include.cmake")
include("/root/repo/build/tests/test_elmwood[1]_include.cmake")
include("/root/repo/build/tests/test_m2[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
