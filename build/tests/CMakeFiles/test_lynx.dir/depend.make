# Empty dependencies file for test_lynx.
# This may be replaced when dependencies are built.
