file(REMOVE_RECURSE
  "CMakeFiles/test_lynx.dir/lynx/lynx_test.cpp.o"
  "CMakeFiles/test_lynx.dir/lynx/lynx_test.cpp.o.d"
  "test_lynx"
  "test_lynx.pdb"
  "test_lynx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lynx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
