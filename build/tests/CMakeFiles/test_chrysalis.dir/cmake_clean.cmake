file(REMOVE_RECURSE
  "CMakeFiles/test_chrysalis.dir/chrysalis/memory_object_test.cpp.o"
  "CMakeFiles/test_chrysalis.dir/chrysalis/memory_object_test.cpp.o.d"
  "CMakeFiles/test_chrysalis.dir/chrysalis/partition_test.cpp.o"
  "CMakeFiles/test_chrysalis.dir/chrysalis/partition_test.cpp.o.d"
  "CMakeFiles/test_chrysalis.dir/chrysalis/process_test.cpp.o"
  "CMakeFiles/test_chrysalis.dir/chrysalis/process_test.cpp.o.d"
  "CMakeFiles/test_chrysalis.dir/chrysalis/sync_test.cpp.o"
  "CMakeFiles/test_chrysalis.dir/chrysalis/sync_test.cpp.o.d"
  "test_chrysalis"
  "test_chrysalis.pdb"
  "test_chrysalis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chrysalis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
