# Empty compiler generated dependencies file for test_chrysalis.
# This may be replaced when dependencies are built.
