
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chrysalis/memory_object_test.cpp" "tests/CMakeFiles/test_chrysalis.dir/chrysalis/memory_object_test.cpp.o" "gcc" "tests/CMakeFiles/test_chrysalis.dir/chrysalis/memory_object_test.cpp.o.d"
  "/root/repo/tests/chrysalis/partition_test.cpp" "tests/CMakeFiles/test_chrysalis.dir/chrysalis/partition_test.cpp.o" "gcc" "tests/CMakeFiles/test_chrysalis.dir/chrysalis/partition_test.cpp.o.d"
  "/root/repo/tests/chrysalis/process_test.cpp" "tests/CMakeFiles/test_chrysalis.dir/chrysalis/process_test.cpp.o" "gcc" "tests/CMakeFiles/test_chrysalis.dir/chrysalis/process_test.cpp.o.d"
  "/root/repo/tests/chrysalis/sync_test.cpp" "tests/CMakeFiles/test_chrysalis.dir/chrysalis/sync_test.cpp.o" "gcc" "tests/CMakeFiles/test_chrysalis.dir/chrysalis/sync_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chrysalis/CMakeFiles/bfly_chrysalis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfly_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
