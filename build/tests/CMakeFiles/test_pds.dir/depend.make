# Empty dependencies file for test_pds.
# This may be replaced when dependencies are built.
