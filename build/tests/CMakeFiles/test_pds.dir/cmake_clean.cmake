file(REMOVE_RECURSE
  "CMakeFiles/test_pds.dir/pds/concurrent_test.cpp.o"
  "CMakeFiles/test_pds.dir/pds/concurrent_test.cpp.o.d"
  "test_pds"
  "test_pds.pdb"
  "test_pds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
