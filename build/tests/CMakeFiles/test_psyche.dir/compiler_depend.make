# Empty compiler generated dependencies file for test_psyche.
# This may be replaced when dependencies are built.
