file(REMOVE_RECURSE
  "CMakeFiles/test_psyche.dir/psyche/psyche_test.cpp.o"
  "CMakeFiles/test_psyche.dir/psyche/psyche_test.cpp.o.d"
  "test_psyche"
  "test_psyche.pdb"
  "test_psyche[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_psyche.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
