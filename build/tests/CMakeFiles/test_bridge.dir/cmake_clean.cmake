file(REMOVE_RECURSE
  "CMakeFiles/test_bridge.dir/bridge/bridge_test.cpp.o"
  "CMakeFiles/test_bridge.dir/bridge/bridge_test.cpp.o.d"
  "test_bridge"
  "test_bridge.pdb"
  "test_bridge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
