# Empty dependencies file for test_us.
# This may be replaced when dependencies are built.
