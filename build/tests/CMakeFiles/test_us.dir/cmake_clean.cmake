file(REMOVE_RECURSE
  "CMakeFiles/test_us.dir/us/fault_test.cpp.o"
  "CMakeFiles/test_us.dir/us/fault_test.cpp.o.d"
  "CMakeFiles/test_us.dir/us/uniform_system_test.cpp.o"
  "CMakeFiles/test_us.dir/us/uniform_system_test.cpp.o.d"
  "test_us"
  "test_us.pdb"
  "test_us[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_us.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
