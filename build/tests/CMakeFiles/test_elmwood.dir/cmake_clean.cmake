file(REMOVE_RECURSE
  "CMakeFiles/test_elmwood.dir/elmwood/elmwood_test.cpp.o"
  "CMakeFiles/test_elmwood.dir/elmwood/elmwood_test.cpp.o.d"
  "test_elmwood"
  "test_elmwood.pdb"
  "test_elmwood[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elmwood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
