# Empty compiler generated dependencies file for test_elmwood.
# This may be replaced when dependencies are built.
