file(REMOVE_RECURSE
  "CMakeFiles/test_m2.dir/m2/coroutines_test.cpp.o"
  "CMakeFiles/test_m2.dir/m2/coroutines_test.cpp.o.d"
  "test_m2"
  "test_m2.pdb"
  "test_m2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_m2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
