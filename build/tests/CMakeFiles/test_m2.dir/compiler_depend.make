# Empty compiler generated dependencies file for test_m2.
# This may be replaced when dependencies are built.
