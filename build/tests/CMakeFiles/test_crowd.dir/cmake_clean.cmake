file(REMOVE_RECURSE
  "CMakeFiles/test_crowd.dir/crowd/crowd_test.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/crowd_test.cpp.o.d"
  "test_crowd"
  "test_crowd.pdb"
  "test_crowd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
