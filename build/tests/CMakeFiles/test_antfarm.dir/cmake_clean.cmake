file(REMOVE_RECURSE
  "CMakeFiles/test_antfarm.dir/antfarm/antfarm_test.cpp.o"
  "CMakeFiles/test_antfarm.dir/antfarm/antfarm_test.cpp.o.d"
  "test_antfarm"
  "test_antfarm.pdb"
  "test_antfarm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_antfarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
