# Empty dependencies file for test_antfarm.
# This may be replaced when dependencies are built.
