# Empty compiler generated dependencies file for bfly_antfarm.
# This may be replaced when dependencies are built.
