file(REMOVE_RECURSE
  "libbfly_antfarm.a"
)
