file(REMOVE_RECURSE
  "CMakeFiles/bfly_antfarm.dir/antfarm.cpp.o"
  "CMakeFiles/bfly_antfarm.dir/antfarm.cpp.o.d"
  "libbfly_antfarm.a"
  "libbfly_antfarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_antfarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
