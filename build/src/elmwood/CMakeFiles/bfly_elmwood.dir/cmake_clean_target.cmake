file(REMOVE_RECURSE
  "libbfly_elmwood.a"
)
