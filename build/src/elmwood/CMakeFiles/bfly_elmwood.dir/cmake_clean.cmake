file(REMOVE_RECURSE
  "CMakeFiles/bfly_elmwood.dir/elmwood.cpp.o"
  "CMakeFiles/bfly_elmwood.dir/elmwood.cpp.o.d"
  "libbfly_elmwood.a"
  "libbfly_elmwood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_elmwood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
