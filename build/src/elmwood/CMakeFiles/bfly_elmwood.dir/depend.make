# Empty dependencies file for bfly_elmwood.
# This may be replaced when dependencies are built.
