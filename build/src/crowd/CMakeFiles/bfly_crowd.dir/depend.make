# Empty dependencies file for bfly_crowd.
# This may be replaced when dependencies are built.
