file(REMOVE_RECURSE
  "libbfly_crowd.a"
)
