file(REMOVE_RECURSE
  "CMakeFiles/bfly_crowd.dir/crowd.cpp.o"
  "CMakeFiles/bfly_crowd.dir/crowd.cpp.o.d"
  "libbfly_crowd.a"
  "libbfly_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
