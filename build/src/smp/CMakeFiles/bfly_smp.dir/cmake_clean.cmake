file(REMOVE_RECURSE
  "CMakeFiles/bfly_smp.dir/family.cpp.o"
  "CMakeFiles/bfly_smp.dir/family.cpp.o.d"
  "libbfly_smp.a"
  "libbfly_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
