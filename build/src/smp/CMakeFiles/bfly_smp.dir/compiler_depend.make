# Empty compiler generated dependencies file for bfly_smp.
# This may be replaced when dependencies are built.
