file(REMOVE_RECURSE
  "libbfly_smp.a"
)
