# Empty dependencies file for bfly_replay.
# This may be replaced when dependencies are built.
