file(REMOVE_RECURSE
  "CMakeFiles/bfly_replay.dir/instant_replay.cpp.o"
  "CMakeFiles/bfly_replay.dir/instant_replay.cpp.o.d"
  "CMakeFiles/bfly_replay.dir/moviola.cpp.o"
  "CMakeFiles/bfly_replay.dir/moviola.cpp.o.d"
  "libbfly_replay.a"
  "libbfly_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
