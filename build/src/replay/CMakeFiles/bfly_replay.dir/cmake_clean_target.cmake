file(REMOVE_RECURSE
  "libbfly_replay.a"
)
