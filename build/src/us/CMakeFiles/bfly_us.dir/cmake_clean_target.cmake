file(REMOVE_RECURSE
  "libbfly_us.a"
)
