file(REMOVE_RECURSE
  "CMakeFiles/bfly_us.dir/uniform_system.cpp.o"
  "CMakeFiles/bfly_us.dir/uniform_system.cpp.o.d"
  "libbfly_us.a"
  "libbfly_us.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_us.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
