# Empty dependencies file for bfly_us.
# This may be replaced when dependencies are built.
