# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("chrysalis")
subdirs("us")
subdirs("net")
subdirs("smp")
subdirs("antfarm")
subdirs("lynx")
subdirs("crowd")
subdirs("replay")
subdirs("psyche")
subdirs("pds")
subdirs("elmwood")
subdirs("m2")
subdirs("bridge")
subdirs("apps")
