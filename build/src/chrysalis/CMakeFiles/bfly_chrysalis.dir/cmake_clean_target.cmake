file(REMOVE_RECURSE
  "libbfly_chrysalis.a"
)
