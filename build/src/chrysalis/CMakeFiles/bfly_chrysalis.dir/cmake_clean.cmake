file(REMOVE_RECURSE
  "CMakeFiles/bfly_chrysalis.dir/kernel.cpp.o"
  "CMakeFiles/bfly_chrysalis.dir/kernel.cpp.o.d"
  "libbfly_chrysalis.a"
  "libbfly_chrysalis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_chrysalis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
