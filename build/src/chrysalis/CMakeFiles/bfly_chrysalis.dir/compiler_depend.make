# Empty compiler generated dependencies file for bfly_chrysalis.
# This may be replaced when dependencies are built.
