file(REMOVE_RECURSE
  "libbfly_lynx.a"
)
