file(REMOVE_RECURSE
  "CMakeFiles/bfly_lynx.dir/lynx.cpp.o"
  "CMakeFiles/bfly_lynx.dir/lynx.cpp.o.d"
  "libbfly_lynx.a"
  "libbfly_lynx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_lynx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
