# Empty compiler generated dependencies file for bfly_lynx.
# This may be replaced when dependencies are built.
