file(REMOVE_RECURSE
  "libbfly_net.a"
)
