# Empty dependencies file for bfly_net.
# This may be replaced when dependencies are built.
