file(REMOVE_RECURSE
  "CMakeFiles/bfly_net.dir/mesh.cpp.o"
  "CMakeFiles/bfly_net.dir/mesh.cpp.o.d"
  "libbfly_net.a"
  "libbfly_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
