file(REMOVE_RECURSE
  "libbfly_m2.a"
)
