file(REMOVE_RECURSE
  "CMakeFiles/bfly_m2.dir/coroutines.cpp.o"
  "CMakeFiles/bfly_m2.dir/coroutines.cpp.o.d"
  "libbfly_m2.a"
  "libbfly_m2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_m2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
