# Empty dependencies file for bfly_m2.
# This may be replaced when dependencies are built.
