# Empty compiler generated dependencies file for bfly_sim.
# This may be replaced when dependencies are built.
