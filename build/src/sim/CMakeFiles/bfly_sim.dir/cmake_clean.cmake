file(REMOVE_RECURSE
  "CMakeFiles/bfly_sim.dir/fiber.cpp.o"
  "CMakeFiles/bfly_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/bfly_sim.dir/machine.cpp.o"
  "CMakeFiles/bfly_sim.dir/machine.cpp.o.d"
  "CMakeFiles/bfly_sim.dir/switch_fabric.cpp.o"
  "CMakeFiles/bfly_sim.dir/switch_fabric.cpp.o.d"
  "CMakeFiles/bfly_sim.dir/time.cpp.o"
  "CMakeFiles/bfly_sim.dir/time.cpp.o.d"
  "libbfly_sim.a"
  "libbfly_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
