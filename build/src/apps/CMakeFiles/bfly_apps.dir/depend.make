# Empty dependencies file for bfly_apps.
# This may be replaced when dependencies are built.
