
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/alphabeta.cpp" "src/apps/CMakeFiles/bfly_apps.dir/alphabeta.cpp.o" "gcc" "src/apps/CMakeFiles/bfly_apps.dir/alphabeta.cpp.o.d"
  "/root/repo/src/apps/connectionist.cpp" "src/apps/CMakeFiles/bfly_apps.dir/connectionist.cpp.o" "gcc" "src/apps/CMakeFiles/bfly_apps.dir/connectionist.cpp.o.d"
  "/root/repo/src/apps/gauss.cpp" "src/apps/CMakeFiles/bfly_apps.dir/gauss.cpp.o" "gcc" "src/apps/CMakeFiles/bfly_apps.dir/gauss.cpp.o.d"
  "/root/repo/src/apps/geometry.cpp" "src/apps/CMakeFiles/bfly_apps.dir/geometry.cpp.o" "gcc" "src/apps/CMakeFiles/bfly_apps.dir/geometry.cpp.o.d"
  "/root/repo/src/apps/graph.cpp" "src/apps/CMakeFiles/bfly_apps.dir/graph.cpp.o" "gcc" "src/apps/CMakeFiles/bfly_apps.dir/graph.cpp.o.d"
  "/root/repo/src/apps/hough.cpp" "src/apps/CMakeFiles/bfly_apps.dir/hough.cpp.o" "gcc" "src/apps/CMakeFiles/bfly_apps.dir/hough.cpp.o.d"
  "/root/repo/src/apps/image.cpp" "src/apps/CMakeFiles/bfly_apps.dir/image.cpp.o" "gcc" "src/apps/CMakeFiles/bfly_apps.dir/image.cpp.o.d"
  "/root/repo/src/apps/mst.cpp" "src/apps/CMakeFiles/bfly_apps.dir/mst.cpp.o" "gcc" "src/apps/CMakeFiles/bfly_apps.dir/mst.cpp.o.d"
  "/root/repo/src/apps/pedagogical.cpp" "src/apps/CMakeFiles/bfly_apps.dir/pedagogical.cpp.o" "gcc" "src/apps/CMakeFiles/bfly_apps.dir/pedagogical.cpp.o.d"
  "/root/repo/src/apps/pentominoes.cpp" "src/apps/CMakeFiles/bfly_apps.dir/pentominoes.cpp.o" "gcc" "src/apps/CMakeFiles/bfly_apps.dir/pentominoes.cpp.o.d"
  "/root/repo/src/apps/sort.cpp" "src/apps/CMakeFiles/bfly_apps.dir/sort.cpp.o" "gcc" "src/apps/CMakeFiles/bfly_apps.dir/sort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/us/CMakeFiles/bfly_us.dir/DependInfo.cmake"
  "/root/repo/build/src/smp/CMakeFiles/bfly_smp.dir/DependInfo.cmake"
  "/root/repo/build/src/chrysalis/CMakeFiles/bfly_chrysalis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfly_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
