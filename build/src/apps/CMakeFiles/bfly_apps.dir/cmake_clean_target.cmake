file(REMOVE_RECURSE
  "libbfly_apps.a"
)
