file(REMOVE_RECURSE
  "CMakeFiles/bfly_apps.dir/alphabeta.cpp.o"
  "CMakeFiles/bfly_apps.dir/alphabeta.cpp.o.d"
  "CMakeFiles/bfly_apps.dir/connectionist.cpp.o"
  "CMakeFiles/bfly_apps.dir/connectionist.cpp.o.d"
  "CMakeFiles/bfly_apps.dir/gauss.cpp.o"
  "CMakeFiles/bfly_apps.dir/gauss.cpp.o.d"
  "CMakeFiles/bfly_apps.dir/geometry.cpp.o"
  "CMakeFiles/bfly_apps.dir/geometry.cpp.o.d"
  "CMakeFiles/bfly_apps.dir/graph.cpp.o"
  "CMakeFiles/bfly_apps.dir/graph.cpp.o.d"
  "CMakeFiles/bfly_apps.dir/hough.cpp.o"
  "CMakeFiles/bfly_apps.dir/hough.cpp.o.d"
  "CMakeFiles/bfly_apps.dir/image.cpp.o"
  "CMakeFiles/bfly_apps.dir/image.cpp.o.d"
  "CMakeFiles/bfly_apps.dir/mst.cpp.o"
  "CMakeFiles/bfly_apps.dir/mst.cpp.o.d"
  "CMakeFiles/bfly_apps.dir/pedagogical.cpp.o"
  "CMakeFiles/bfly_apps.dir/pedagogical.cpp.o.d"
  "CMakeFiles/bfly_apps.dir/pentominoes.cpp.o"
  "CMakeFiles/bfly_apps.dir/pentominoes.cpp.o.d"
  "CMakeFiles/bfly_apps.dir/sort.cpp.o"
  "CMakeFiles/bfly_apps.dir/sort.cpp.o.d"
  "libbfly_apps.a"
  "libbfly_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
