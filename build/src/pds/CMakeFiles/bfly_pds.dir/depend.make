# Empty dependencies file for bfly_pds.
# This may be replaced when dependencies are built.
