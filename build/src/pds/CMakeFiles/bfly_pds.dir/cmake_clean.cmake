file(REMOVE_RECURSE
  "CMakeFiles/bfly_pds.dir/concurrent.cpp.o"
  "CMakeFiles/bfly_pds.dir/concurrent.cpp.o.d"
  "libbfly_pds.a"
  "libbfly_pds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_pds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
