file(REMOVE_RECURSE
  "libbfly_pds.a"
)
