file(REMOVE_RECURSE
  "libbfly_psyche.a"
)
