# Empty compiler generated dependencies file for bfly_psyche.
# This may be replaced when dependencies are built.
