file(REMOVE_RECURSE
  "CMakeFiles/bfly_psyche.dir/psyche.cpp.o"
  "CMakeFiles/bfly_psyche.dir/psyche.cpp.o.d"
  "libbfly_psyche.a"
  "libbfly_psyche.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_psyche.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
