# Empty dependencies file for bfly_bridge.
# This may be replaced when dependencies are built.
