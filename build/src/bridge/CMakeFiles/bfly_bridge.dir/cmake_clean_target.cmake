file(REMOVE_RECURSE
  "libbfly_bridge.a"
)
