file(REMOVE_RECURSE
  "CMakeFiles/bfly_bridge.dir/bridge.cpp.o"
  "CMakeFiles/bfly_bridge.dir/bridge.cpp.o.d"
  "libbfly_bridge.a"
  "libbfly_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
