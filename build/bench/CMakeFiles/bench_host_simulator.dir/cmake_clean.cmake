file(REMOVE_RECURSE
  "CMakeFiles/bench_host_simulator.dir/bench_host_simulator.cpp.o"
  "CMakeFiles/bench_host_simulator.dir/bench_host_simulator.cpp.o.d"
  "bench_host_simulator"
  "bench_host_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
