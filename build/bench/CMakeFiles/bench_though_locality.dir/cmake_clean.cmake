file(REMOVE_RECURSE
  "CMakeFiles/bench_though_locality.dir/bench_though_locality.cpp.o"
  "CMakeFiles/bench_though_locality.dir/bench_though_locality.cpp.o.d"
  "bench_though_locality"
  "bench_though_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_though_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
