
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_though_locality.cpp" "bench/CMakeFiles/bench_though_locality.dir/bench_though_locality.cpp.o" "gcc" "bench/CMakeFiles/bench_though_locality.dir/bench_though_locality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/bfly_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/us/CMakeFiles/bfly_us.dir/DependInfo.cmake"
  "/root/repo/build/src/smp/CMakeFiles/bfly_smp.dir/DependInfo.cmake"
  "/root/repo/build/src/chrysalis/CMakeFiles/bfly_chrysalis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfly_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
