# Empty dependencies file for bench_though_locality.
# This may be replaced when dependencies are built.
