# Empty compiler generated dependencies file for bench_tbridge_scaling.
# This may be replaced when dependencies are built.
