file(REMOVE_RECURSE
  "CMakeFiles/bench_tbridge_scaling.dir/bench_tbridge_scaling.cpp.o"
  "CMakeFiles/bench_tbridge_scaling.dir/bench_tbridge_scaling.cpp.o.d"
  "bench_tbridge_scaling"
  "bench_tbridge_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbridge_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
