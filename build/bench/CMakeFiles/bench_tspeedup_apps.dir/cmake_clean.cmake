file(REMOVE_RECURSE
  "CMakeFiles/bench_tspeedup_apps.dir/bench_tspeedup_apps.cpp.o"
  "CMakeFiles/bench_tspeedup_apps.dir/bench_tspeedup_apps.cpp.o.d"
  "bench_tspeedup_apps"
  "bench_tspeedup_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tspeedup_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
