# Empty compiler generated dependencies file for bench_tspeedup_apps.
# This may be replaced when dependencies are built.
