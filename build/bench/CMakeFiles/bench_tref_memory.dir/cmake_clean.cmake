file(REMOVE_RECURSE
  "CMakeFiles/bench_tref_memory.dir/bench_tref_memory.cpp.o"
  "CMakeFiles/bench_tref_memory.dir/bench_tref_memory.cpp.o.d"
  "bench_tref_memory"
  "bench_tref_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tref_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
