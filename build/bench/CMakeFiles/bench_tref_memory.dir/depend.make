# Empty dependencies file for bench_tref_memory.
# This may be replaced when dependencies are built.
