file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_moviola.dir/bench_fig6_moviola.cpp.o"
  "CMakeFiles/bench_fig6_moviola.dir/bench_fig6_moviola.cpp.o.d"
  "bench_fig6_moviola"
  "bench_fig6_moviola.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_moviola.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
