file(REMOVE_RECURSE
  "CMakeFiles/bench_tamdahl_serial.dir/bench_tamdahl_serial.cpp.o"
  "CMakeFiles/bench_tamdahl_serial.dir/bench_tamdahl_serial.cpp.o.d"
  "bench_tamdahl_serial"
  "bench_tamdahl_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tamdahl_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
