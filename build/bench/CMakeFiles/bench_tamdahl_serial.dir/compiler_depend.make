# Empty compiler generated dependencies file for bench_tamdahl_serial.
# This may be replaced when dependencies are built.
