file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_gauss.dir/bench_fig5_gauss.cpp.o"
  "CMakeFiles/bench_fig5_gauss.dir/bench_fig5_gauss.cpp.o.d"
  "bench_fig5_gauss"
  "bench_fig5_gauss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_gauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
