file(REMOVE_RECURSE
  "CMakeFiles/bench_tcont_spread.dir/bench_tcont_spread.cpp.o"
  "CMakeFiles/bench_tcont_spread.dir/bench_tcont_spread.cpp.o.d"
  "bench_tcont_spread"
  "bench_tcont_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcont_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
