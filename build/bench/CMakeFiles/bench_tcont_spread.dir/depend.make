# Empty dependencies file for bench_tcont_spread.
# This may be replaced when dependencies are built.
