file(REMOVE_RECURSE
  "CMakeFiles/bench_tprim_chrysalis.dir/bench_tprim_chrysalis.cpp.o"
  "CMakeFiles/bench_tprim_chrysalis.dir/bench_tprim_chrysalis.cpp.o.d"
  "bench_tprim_chrysalis"
  "bench_tprim_chrysalis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tprim_chrysalis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
