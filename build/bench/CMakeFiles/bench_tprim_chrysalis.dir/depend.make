# Empty dependencies file for bench_tprim_chrysalis.
# This may be replaced when dependencies are built.
