file(REMOVE_RECURSE
  "CMakeFiles/bench_trpc_comm.dir/bench_trpc_comm.cpp.o"
  "CMakeFiles/bench_trpc_comm.dir/bench_trpc_comm.cpp.o.d"
  "bench_trpc_comm"
  "bench_trpc_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trpc_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
