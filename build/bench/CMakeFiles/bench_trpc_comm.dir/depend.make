# Empty dependencies file for bench_trpc_comm.
# This may be replaced when dependencies are built.
