
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_trpc_comm.cpp" "bench/CMakeFiles/bench_trpc_comm.dir/bench_trpc_comm.cpp.o" "gcc" "bench/CMakeFiles/bench_trpc_comm.dir/bench_trpc_comm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/antfarm/CMakeFiles/bfly_antfarm.dir/DependInfo.cmake"
  "/root/repo/build/src/lynx/CMakeFiles/bfly_lynx.dir/DependInfo.cmake"
  "/root/repo/build/src/smp/CMakeFiles/bfly_smp.dir/DependInfo.cmake"
  "/root/repo/build/src/elmwood/CMakeFiles/bfly_elmwood.dir/DependInfo.cmake"
  "/root/repo/build/src/chrysalis/CMakeFiles/bfly_chrysalis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfly_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
