# Empty compiler generated dependencies file for bench_treplay_overhead.
# This may be replaced when dependencies are built.
