file(REMOVE_RECURSE
  "CMakeFiles/bench_treplay_overhead.dir/bench_treplay_overhead.cpp.o"
  "CMakeFiles/bench_treplay_overhead.dir/bench_treplay_overhead.cpp.o.d"
  "bench_treplay_overhead"
  "bench_treplay_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_treplay_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
