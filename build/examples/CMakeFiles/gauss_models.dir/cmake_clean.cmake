file(REMOVE_RECURSE
  "CMakeFiles/gauss_models.dir/gauss_models.cpp.o"
  "CMakeFiles/gauss_models.dir/gauss_models.cpp.o.d"
  "gauss_models"
  "gauss_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauss_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
