# Empty dependencies file for gauss_models.
# This may be replaced when dependencies are built.
