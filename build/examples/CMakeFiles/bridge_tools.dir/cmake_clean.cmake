file(REMOVE_RECURSE
  "CMakeFiles/bridge_tools.dir/bridge_tools.cpp.o"
  "CMakeFiles/bridge_tools.dir/bridge_tools.cpp.o.d"
  "bridge_tools"
  "bridge_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridge_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
