# Empty compiler generated dependencies file for bridge_tools.
# This may be replaced when dependencies are built.
