file(REMOVE_RECURSE
  "CMakeFiles/multi_model.dir/multi_model.cpp.o"
  "CMakeFiles/multi_model.dir/multi_model.cpp.o.d"
  "multi_model"
  "multi_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
