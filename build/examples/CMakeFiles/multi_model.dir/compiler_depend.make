# Empty compiler generated dependencies file for multi_model.
# This may be replaced when dependencies are built.
