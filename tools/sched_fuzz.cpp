// sched_fuzz [seeds] [--workload=NAME] — PCT-style schedule sweep.
//
// Runs each workload once per exploration seed with the moviola Detector
// attached and fails loudly on any finding: a deadlock, lost wakeup,
// starvation or orphan wait that only one dispatch order can reach.  The
// workloads are the stack's most schedule-sensitive machinery:
//
//   dq      — many consumers racing on shared dual queues with timed and
//             untimed dequeues (the dq_dequeue_for wait-generation guard
//             is exactly the code a perturbed handoff order stresses);
//   monitor — the Instant Replay CREW monitor under token-paced writers,
//             recording a log per seed and re-running it in replay mode:
//             the replayed order must match the recorded one bit for bit;
//   us      — the Uniform System task machinery (manager loops, the task
//             dual queue, nested gen_task, the wait_idle completion
//             counter) that the whole application suite runs on;
//   serve   — a miniature replicated-Bridge serving cell with silent
//             kills, rescue membership and background repair, where
//             Membership::stop()'s join paths race daemon wakeups.
//
// Every seed is deterministic: a failure prints its seed, and re-running
// with that seed reproduces the run exactly (record the monitor workload
// under the seed and the Instant Replay log pins the interleaving for
// good).  Exit status 0 = every seed of every workload came out clean.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bridge/bridge.hpp"
#include "chrysalis/kernel.hpp"
#include "moviola/wait_graph.hpp"
#include "replay/instant_replay.hpp"
#include "rescue/rescue.hpp"
#include "serve/serve.hpp"
#include "us/uniform_system.hpp"

namespace {

using bfly::moviola::Detector;
using bfly::sim::butterfly1;
using bfly::sim::Machine;

struct SweepStats {
  int runs = 0;
  int failures = 0;
  std::uint64_t distinct_orders = 0;
};

bool report_run(const char* workload, std::uint64_t seed, Machine& m,
                Detector& d) {
  const auto findings = d.analyze();
  if (findings.empty() && d.lints().empty() && !m.deadlocked()) return true;
  std::fprintf(stderr, "sched_fuzz: %s seed %llu FAILED\n%s", workload,
               static_cast<unsigned long long>(seed), d.report().c_str());
  if (m.deadlocked() && findings.empty())
    std::fprintf(stderr, "  (machine deadlocked with no classified finding)\n");
  return false;
}

// --- dq: consumers race timed and untimed dequeues on shared queues --------
bool run_dq(std::uint64_t seed) {
  Machine m(butterfly1(4));
  bfly::chrys::Kernel k(m);
  Detector d(m, &k);
  k.set_schedule_exploration(seed);
  const bfly::chrys::Oid q1 = k.make_dual_queue();
  const bfly::chrys::Oid q2 = k.make_dual_queue();
  constexpr int kConsumers = 6;
  constexpr int kItemsEach = 8;
  for (int c = 0; c < kConsumers; ++c) {
    k.create_process(c % 4, [&k, q1, q2, c] {
      for (int i = 0; i < kItemsEach; ++i) {
        // Alternate untimed dequeues with timed ones that mostly expire:
        // the wait-generation guard must never let a stale timer cancel a
        // later wait on the same queue.
        if ((c + i) % 3 == 0) {
          std::uint32_t v = 0;
          if (k.dq_dequeue_for(q2, 300 * bfly::sim::kMicrosecond, &v))
            k.dq_enqueue(q1, v);  // bounce served items to the other queue
          else
            k.dq_enqueue(q1, 0);
        } else {
          (void)k.dq_dequeue(q1);
        }
      }
    }, "consumer" + std::to_string(c));
  }
  k.create_process(3, [&k, q1, q2] {
    for (int i = 0; i < kConsumers * kItemsEach; ++i) {
      k.delay(150 * bfly::sim::kMicrosecond);
      k.dq_enqueue((i % 4 == 0) ? q2 : q1, static_cast<std::uint32_t>(i));
    }
    // Top up q1: timed q2 waits that get served bounce into q1, but timed
    // waits that expire also enqueue 0 there, so the exact balance depends
    // on the schedule.  Feed until everyone can finish.
    for (int i = 0; i < kConsumers * kItemsEach; ++i) {
      k.delay(100 * bfly::sim::kMicrosecond);
      k.dq_enqueue(q1, 1u);
    }
  }, "producer");
  m.run();
  // Surplus producer items leave queued data behind, never waiters: any
  // finding here is real.
  return report_run("dq", seed, m, d);
}

// --- monitor: record under the seed, then force the order back ------------
bool run_monitor(std::uint64_t seed, SweepStats& st) {
  using bfly::replay::Log;
  using bfly::replay::Mode;
  using bfly::replay::Monitor;
  constexpr std::uint32_t kActors = 4;
  constexpr std::uint32_t kRounds = 5;

  auto run = [&](Mode mode, std::uint64_t explore, const Log* script,
                 std::vector<std::uint32_t>* order, Log* log_out) -> bool {
    Machine m(butterfly1(8));
    bfly::chrys::Kernel k(m);
    Detector d(m, &k);
    if (explore != 0) k.set_schedule_exploration(explore);
    Monitor mon(k, kActors);
    const std::uint32_t obj = mon.register_object(0, "counter");
    mon.set_mode(mode);
    if (script != nullptr) mon.load_log(*script);
    const bfly::chrys::Oid tokens = k.make_dual_queue();
    for (std::uint32_t a = 0; a < kActors; ++a) {
      k.create_process(1 + a, [&, a] {
        for (std::uint32_t r = 0; r < kRounds; ++r) {
          (void)k.dq_dequeue(tokens);
          mon.begin_write(a, obj);
          if (order != nullptr) order->push_back(a);
          m.charge(400 * bfly::sim::kMicrosecond);
          mon.end_write(a, obj);
        }
      }, "actor" + std::to_string(a));
    }
    k.create_process(0, [&] {
      for (std::uint32_t i = 0; i < kActors * kRounds; ++i) {
        k.delay(600 * bfly::sim::kMicrosecond);
        k.dq_enqueue(tokens, i);
      }
    }, "dispenser");
    m.run();
    if (log_out != nullptr) *log_out = mon.take_log();
    return report_run("monitor", seed, m, d);
  };

  Log log;
  std::vector<std::uint32_t> recorded, replayed;
  if (!run(Mode::kRecord, seed, nullptr, &recorded, &log)) return false;
  // Replay under a different exploration seed: the log must win.
  if (!run(Mode::kReplay, seed + 1, &log, &replayed, nullptr)) return false;
  if (replayed != recorded) {
    std::fprintf(stderr,
                 "sched_fuzz: monitor seed %llu: replay diverged from the "
                 "recorded order\n",
                 static_cast<unsigned long long>(seed));
    return false;
  }
  st.distinct_orders += recorded.empty() ? 0 : recorded[0] + 1;  // coarse mix
  return true;
}

// --- us: Uniform System task machinery under perturbed dispatch ------------
// The app suite runs on US; sweeping its manager loops, task dual queue
// and wait_idle completion counter under exploration covers the blocking
// graph every application actually exercises.
bool run_us(std::uint64_t seed) {
  Machine m(butterfly1(8));
  bfly::chrys::Kernel k(m);
  Detector d(m, &k);
  k.set_schedule_exploration(seed);
  bfly::us::UniformSystem us(k);
  std::uint32_t sum = 0;
  us.run_main([&] {
    const bfly::sim::PhysAddr cell = us.alloc_global(8);
    us.put<std::uint32_t>(cell, 0);
    // Nested generation: tasks generate subtasks, so the completion
    // counter sees concurrent increments from every manager while the
    // parent blocks in wait_idle.
    us.for_all(0, 24, [&](bfly::us::TaskCtx& t) {
      if (t.arg % 4 == 0)
        t.us.gen_task(
            [&](bfly::us::TaskCtx& t2) { (void)t2.us.atomic_add(cell, 1); },
            t.arg);
      (void)t.us.atomic_add(cell, 1);
    });
    sum = us.get<std::uint32_t>(cell);
  });
  if (sum != 24 + 6) {
    std::fprintf(stderr,
                 "sched_fuzz: us seed %llu: task sum %u != 30 (tasks lost "
                 "or duplicated under exploration)\n",
                 static_cast<unsigned long long>(seed), sum);
    return false;
  }
  return report_run("us", seed, m, d);
}

// --- serve: mini chaos cell with membership join on the way out ------------
bool run_serve(std::uint64_t seed) {
  bfly::sim::FaultPlan plan;
  plan.kill_silent(1, 400 * bfly::sim::kMillisecond);
  Machine m(butterfly1(16), plan);
  bfly::chrys::Kernel k(m);
  Detector d(m, &k);
  k.set_schedule_exploration(seed);
  d.arm_watchdog(2 * bfly::sim::kSecond);
  // Hard simulated-time cap: a wedged schedule must become a diagnosis,
  // not a hung sweep.  A clean run finishes well under it — the cap
  // closure then finds `finished` set and does nothing (it cannot be
  // unscheduled, so it must not treat a completed run as wedged).
  bool timed_out = false;
  bool finished = false;
  m.engine().post_at(120 * bfly::sim::kSecond, [&m, &timed_out, &finished] {
    if (finished) return;
    timed_out = true;
    m.engine().stop();
  });
  constexpr std::uint32_t kWorkers = 3;
  constexpr std::uint32_t kOpsPer = 8;
  std::uint32_t done = 0;

  k.create_process(15, [&] {
    bfly::bridge::BridgeFs fs(k, 8);
    {
      bfly::rescue::RescueConfig rc;
      rc.monitor_node = 14;
      bfly::rescue::Membership mem(k, rc);
      bfly::serve::ServeConfig cfg;
      cfg.min_hedge_samples = 1u << 20;
      bfly::serve::ReplicatedFs rfs(k, fs, &mem, cfg);
      const bfly::bridge::FileId f = rfs.open("fuzz", 16);
      std::vector<std::uint8_t> blk(bfly::bridge::kBlockSize, 7);
      for (std::uint32_t b = 0; b < kWorkers; ++b)
        (void)rfs.write(f, b, blk.data());
      mem.start();
      rfs.start_repair(13);
      for (std::uint32_t w = 0; w < kWorkers; ++w) {
        k.create_process(9 + w, [&, w] {
          std::vector<std::uint8_t> buf(bfly::bridge::kBlockSize);
          for (std::uint32_t op = 0; op < kOpsPer; ++op) {
            k.delay(10 * bfly::sim::kMillisecond);
            if (op % 3 == 2)
              (void)rfs.write(f, w, buf.data());
            else
              (void)rfs.read(f, w, buf.data());
          }
          ++done;
        }, "worker" + std::to_string(w));
      }
      while (done < kWorkers) k.delay(40 * bfly::sim::kMillisecond);
      for (int i = 0; i < 200 && !rfs.repair_idle(); ++i)
        k.delay(20 * bfly::sim::kMillisecond);
      // The join paths under perturbed dispatch: stop() must wait for
      // every daemon on a live node, no matter who gets scheduled first.
      mem.stop();
      rfs.stop_repair();
    }
    fs.shutdown();
    finished = true;
  }, "driver");
  m.run();
  if (timed_out) {
    std::fprintf(stderr,
                 "sched_fuzz: serve seed %llu WEDGED (stopped at simulated "
                 "%llu ns, %u/%u workers done)\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(m.now()), done, kWorkers);
    for (const auto& b : k.blocked_processes())
      std::fprintf(stderr, "  blocked: %s (oid %u) on oid %u\n",
                   b.name.c_str(), b.process, b.waiting_on);
    std::fprintf(stderr, "%s", k.sched_snapshot().c_str());
    (void)report_run("serve", seed, m, d);
    return false;
  }
  return report_run("serve", seed, m, d);
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 200;
  std::string workload = "all";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workload=", 11) == 0)
      workload = argv[i] + 11;
    else
      seeds = std::atoi(argv[i]);
  }
  if (seeds <= 0) {
    std::fprintf(
        stderr,
        "usage: sched_fuzz [seeds>0] [--workload=dq|monitor|us|serve|all]\n");
    return 2;
  }

  SweepStats st;
  int failures = 0;
  for (int s = 1; s <= seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(s) * 7919u;  // spread seeds
    if (workload == "all" || workload == "dq") {
      ++st.runs;
      if (!run_dq(seed)) ++failures;
    }
    if (workload == "all" || workload == "monitor") {
      ++st.runs;
      if (!run_monitor(seed, st)) ++failures;
    }
    if (workload == "all" || workload == "us") {
      ++st.runs;
      if (!run_us(seed)) ++failures;
    }
    if (workload == "all" || workload == "serve") {
      ++st.runs;
      if (!run_serve(seed)) ++failures;
    }
  }
  std::printf("sched_fuzz: %d run(s) across %d seed(s), %d failure(s)\n",
              st.runs, seeds, failures);
  return failures == 0 ? 0 : 1;
}
