// trace_gauss [trace.json] [metrics.json] — the traced Gauss smoke.
//
// Runs the FIG5 Gaussian elimination (Uniform System version) on an 8-node
// Butterfly-I with a scope::Tracer attached, writes the Chrome trace (open
// it in Perfetto / chrome://tracing) and the bench-style metrics JSON, and
// prints the critical-path / Amdahl report.  Self-validates the exported
// trace before exiting, so ci/check.sh can gate on the exit status alone.

#include <cstdio>
#include <fstream>
#include <string>

#include "apps/gauss.hpp"
#include "scope/scope.hpp"
#include "scope/trace_check.hpp"
#include "sim/machine.hpp"

namespace {

bool write_file(const char* path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "trace_gauss: cannot write %s\n", path);
    return false;
  }
  out << text;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bfly;
  const char* trace_path = argc > 1 ? argv[1] : "gauss_trace.json";
  const char* metrics_path = argc > 2 ? argv[2] : nullptr;

  apps::GaussConfig cfg;
  cfg.n = 64;
  cfg.processors = 8;

  sim::Machine m(sim::butterfly1(8));
  scope::Tracer tracer(m);
  const apps::GaussResult r = apps::gauss_us(m, cfg);
  const double err = apps::gauss_error(r, cfg.n, cfg.seed);
  std::printf("gauss US: N=%u on 8 nodes, elapsed %s, max err %.3e\n\n",
              cfg.n, sim::format_duration(r.elapsed).c_str(), err);
  std::printf("%s\n", tracer.report().c_str());

  const std::string trace = tracer.chrome_trace();
  if (!write_file(trace_path, trace)) return 1;
  std::printf("wrote %s (%zu bytes, %llu spans, %llu instants)\n",
              trace_path, trace.size(),
              static_cast<unsigned long long>(tracer.spans_begun()),
              static_cast<unsigned long long>(tracer.instants_recorded()));
  if (metrics_path != nullptr) {
    if (!write_file(metrics_path, tracer.metrics_json())) return 1;
    std::printf("wrote %s\n", metrics_path);
  }

  if (err > 1e-6) {
    std::fprintf(stderr, "trace_gauss: solution error too large\n");
    return 1;
  }
  std::vector<std::string> errors;
  scope::TraceCheckStats stats;
  if (!scope::validate_chrome_trace(trace, &errors, &stats)) {
    for (const std::string& e : errors)
      std::fprintf(stderr, "trace_gauss: %s\n", e.c_str());
    return 1;
  }
  const scope::CriticalPathReport cp = tracer.critical_path();
  if (cp.tasks == 0 || cp.serial_fraction <= 0.0 ||
      cp.serial_fraction > 1.0) {
    std::fprintf(stderr, "trace_gauss: implausible critical-path report\n");
    return 1;
  }
  std::printf("self-check: %zu events validate clean\n", stats.events);
  return 0;
}
