// trace_validate <trace.json> — the CI gate for exported Chrome traces.
//
// Exit 0 iff the file parses as JSON, its timestamps are monotone, and
// every B event balances with an E on the same (pid, tid) track; prints
// what it found either way.  See src/scope/trace_check.hpp.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "scope/trace_check.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_validate <trace.json>\n");
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_validate: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  std::vector<std::string> errors;
  bfly::scope::TraceCheckStats stats;
  const bool ok = bfly::scope::validate_chrome_trace(text, &errors, &stats);
  std::printf(
      "%s: %zu events (%zu B / %zu E, %zu instants, %zu counters, "
      "%zu metadata)\n",
      argv[1], stats.events, stats.begins, stats.ends, stats.instants,
      stats.counters, stats.metadata);
  if (!ok) {
    for (const std::string& e : errors)
      std::fprintf(stderr, "trace_validate: %s\n", e.c_str());
    std::fprintf(stderr, "trace_validate: FAILED\n");
    return 1;
  }
  std::printf("trace_validate: OK\n");
  return 0;
}
