#include "lynx/lynx.hpp"

#include <gtest/gtest.h>

namespace bfly::lynx {
namespace {

using sim::butterfly1;
using sim::Machine;

void with_runtime(std::uint32_t nodes,
                  std::function<void(chrys::Kernel&, Runtime&)> setup) {
  Machine m(butterfly1(nodes));
  chrys::Kernel k(m);
  k.create_process(0, [&] {
    Runtime rt(k);
    setup(k, rt);
    rt.join();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(Lynx, SimpleRpcRoundTrip) {
  std::uint32_t got = 0;
  End client_end;
  with_runtime(4, [&](chrys::Kernel&, Runtime& rt) {
    const std::uint32_t server = rt.spawn(1, [](Proc& p) {
      Request req = p.accept();
      const auto v = req.as<std::uint32_t>();
      p.reply_value<std::uint32_t>(req, v * 2);
    });
    const std::uint32_t client = rt.spawn(2, [&got, &client_end](Proc& p) {
      got = p.call_value<std::uint32_t, std::uint32_t>(client_end, 21);
    });
    client_end = rt.connect(client, server);
  });
  EXPECT_EQ(got, 42u);
}

TEST(Lynx, ServerHandlesManyClients) {
  std::vector<std::uint32_t> results(6, 0);
  std::vector<End> ends(6);
  with_runtime(8, [&](chrys::Kernel&, Runtime& rt) {
    const std::uint32_t server = rt.spawn(0, [](Proc& p) {
      for (int i = 0; i < 6; ++i) {
        Request req = p.accept();
        p.reply_value<std::uint32_t>(req, req.as<std::uint32_t>() + 100);
      }
    });
    for (std::uint32_t c = 0; c < 6; ++c) {
      const std::uint32_t client = rt.spawn(1 + c % 7, [&, c](Proc& p) {
        results[c] = p.call_value<std::uint32_t, std::uint32_t>(ends[c], c);
      });
      ends[c] = rt.connect(client, server);
    }
  });
  for (std::uint32_t c = 0; c < 6; ++c) EXPECT_EQ(results[c], c + 100);
}

TEST(Lynx, ThreadsInOneProcessInterleaveCalls) {
  // The dispatcher must let other threads run while one awaits a reply.
  std::vector<int> events;
  End e;
  with_runtime(4, [&](chrys::Kernel&, Runtime& rt) {
    const std::uint32_t server = rt.spawn(1, [](Proc& p) {
      // Two requests arrive before either is answered.
      Request a = p.accept();
      Request b = p.accept();
      p.reply_value<int>(b, 2);
      p.reply_value<int>(a, 1);
    });
    const std::uint32_t client = rt.spawn(2, [&](Proc& p) {
      p.fork([&] {
        events.push_back(10);
        const int r = p.call_value<int, int>(e, 0);
        events.push_back(r);
      });
      events.push_back(20);
      const int r = p.call_value<int, int>(e, 0);
      events.push_back(r);
    });
    e = rt.connect(client, server);
  });
  // Both calls completed; replies came back in reversed order.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0], 20);  // body thread runs first
  EXPECT_EQ(events[1], 10);  // forked thread runs while body awaits reply
}

TEST(Lynx, LinksCanMove) {
  // A link end is handed from one process to another mid-run: complete
  // run-time control over the communication topology.
  std::uint32_t first = 0, second = 0;
  End client_end;
  std::uint32_t s2 = 0;
  with_runtime(8, [&](chrys::Kernel& k, Runtime& rt) {
    const std::uint32_t s1 = rt.spawn(1, [&](Proc& p) {
      Request req = p.accept();
      p.reply_value<std::uint32_t>(req, 111);
      // Hand our end of the link over to the other server.
    });
    s2 = rt.spawn(2, [&](Proc& p) {
      Request req = p.accept();
      p.reply_value<std::uint32_t>(req, 222);
    });
    const std::uint32_t client = rt.spawn(3, [&](Proc& p) {
      first = p.call_value<std::uint32_t, std::uint32_t>(client_end, 0);
      rt.move_end(client_end.opposite(), s2);
      second = p.call_value<std::uint32_t, std::uint32_t>(client_end, 0);
    });
    client_end = rt.connect(client, s1);
    (void)k;
  });
  EXPECT_EQ(first, 111u);
  EXPECT_EQ(second, 222u);
}

TEST(Lynx, CallOnDeadLinkThrows) {
  int code = 0;
  End e;
  with_runtime(4, [&](chrys::Kernel& k, Runtime& rt) {
    const std::uint32_t a = rt.spawn(1, [&](Proc& p) {
      rt.destroy_link(e);
      code = k.catch_block([&] { (void)p.call(e, "x", 1); });
    });
    const std::uint32_t b = rt.spawn(2, [](Proc&) {});
    e = rt.connect(a, b);
  });
  EXPECT_EQ(code, chrys::kThrowBadObject);
}

TEST(Lynx, CallOnSomeoneElsesEndThrows) {
  int code = 0;
  End e;
  with_runtime(4, [&](chrys::Kernel& k, Runtime& rt) {
    const std::uint32_t a = rt.spawn(1, [&](Proc& p) {
      // Try to call through the end held by the OTHER process.
      code = k.catch_block([&] { (void)p.call(e.opposite(), "x", 1); });
    });
    const std::uint32_t b = rt.spawn(2, [](Proc&) {});
    e = rt.connect(a, b);
  });
  EXPECT_EQ(code, chrys::kThrowNotOwner);
}

TEST(Lynx, RpcCostsMillisecondsNotMicroseconds) {
  // Scott & Cox: Lynx RPC on the Butterfly costs a couple of milliseconds —
  // far above the microcoded primitives, but "for the semantics provided,
  // the costs are very reasonable".
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  sim::Time rpc_time = 0;
  k.create_process(0, [&] {
    Runtime rt(k);
    End e;
    const std::uint32_t server = rt.spawn(1, [](Proc& p) {
      for (int i = 0; i < 10; ++i) {
        Request r = p.accept();
        p.reply_value<int>(r, 0);
      }
    });
    const std::uint32_t client = rt.spawn(2, [&](Proc& p) {
      const sim::Time s = p.runtime().kernel_now();
      for (int i = 0; i < 10; ++i) (void)p.call_value<int, int>(e, i);
      rpc_time = (p.runtime().kernel_now() - s) / 10;
    });
    e = rt.connect(client, server);
    rt.join();
  });
  m.run();
  EXPECT_GT(rpc_time, 1 * sim::kMillisecond);
  EXPECT_LT(rpc_time, 10 * sim::kMillisecond);
}

}  // namespace
}  // namespace bfly::lynx
