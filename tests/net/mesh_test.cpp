#include "net/mesh.hpp"

#include <gtest/gtest.h>

namespace bfly::net {
namespace {

using sim::butterfly1;
using sim::Machine;

void with_creator(std::uint32_t nodes, std::function<void(chrys::Kernel&)> body) {
  Machine m(butterfly1(nodes));
  chrys::Kernel k(m);
  k.create_process(0, [&] { body(k); }, "creator");
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(Mesh, LinePassesBytesEastward) {
  with_creator(8, [](chrys::Kernel& k) {
    std::uint32_t final_value = 0;
    Mesh mesh(k, 1, 5, [&](Element& e) {
      if (e.col() == 0) {
        e.out(Direction::kEast)->write_value<std::uint32_t>(100);
      } else {
        const auto v = e.in(Direction::kWest)->read_value<std::uint32_t>();
        if (e.out(Direction::kEast) != nullptr)
          e.out(Direction::kEast)->write_value<std::uint32_t>(v + 1);
        else
          final_value = v;
      }
    });
    mesh.join();
    EXPECT_EQ(final_value, 103u);
  });
}

TEST(Mesh, BoundariesAreNullWithoutWrap) {
  with_creator(8, [](chrys::Kernel& k) {
    bool corner_ok = false, middle_ok = false;
    Mesh mesh(k, 3, 3, [&](Element& e) {
      if (e.row() == 0 && e.col() == 0) {
        corner_ok = e.in(Direction::kNorth) == nullptr &&
                    e.out(Direction::kWest) == nullptr &&
                    e.out(Direction::kEast) != nullptr &&
                    e.out(Direction::kSouth) != nullptr;
      }
      if (e.row() == 1 && e.col() == 1) {
        middle_ok = e.out(Direction::kNorth) != nullptr &&
                    e.out(Direction::kSouth) != nullptr &&
                    e.out(Direction::kWest) != nullptr &&
                    e.out(Direction::kEast) != nullptr;
      }
    });
    mesh.join();
    EXPECT_TRUE(corner_ok);
    EXPECT_TRUE(middle_ok);
  });
}

TEST(Mesh, TorusWrapsBothWays) {
  with_creator(8, [](chrys::Kernel& k) {
    std::uint32_t hops = 0;
    MeshOptions opt;
    opt.wrap_rows = opt.wrap_cols = true;
    Mesh mesh(
        k, 2, 4,
        [&](Element& e) {
          // Token circulates the ring in row 0 and returns to origin.
          if (e.row() != 0) return;
          if (e.col() == 0) {
            e.out(Direction::kEast)->write_value<std::uint32_t>(1);
            hops = e.in(Direction::kWest)->read_value<std::uint32_t>();
          } else {
            const auto v = e.in(Direction::kWest)->read_value<std::uint32_t>();
            e.out(Direction::kEast)->write_value<std::uint32_t>(v + 1);
          }
        },
        opt);
    mesh.join();
    EXPECT_EQ(hops, 4u);
  });
}

TEST(Mesh, StreamsHaveNoMessageBoundaries) {
  with_creator(4, [](chrys::Kernel& k) {
    std::vector<std::uint8_t> got(6, 0);
    Mesh mesh(k, 1, 2, [&](Element& e) {
      if (e.col() == 0) {
        // Two writes...
        const std::uint8_t a[] = {1, 2, 3, 4};
        const std::uint8_t b[] = {5, 6};
        e.out(Direction::kEast)->write(a, 4);
        e.out(Direction::kEast)->write(b, 2);
      } else {
        // ...consumed by three reads of different sizes.
        e.in(Direction::kWest)->read(got.data(), 1);
        e.in(Direction::kWest)->read(got.data() + 1, 3);
        e.in(Direction::kWest)->read(got.data() + 4, 2);
      }
    });
    mesh.join();
    EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6}));
  });
}

TEST(Mesh, CylinderPipelineComputesRowSums) {
  // A 4x3 cylinder: each element adds its (row+col) to a westward-arriving
  // sum; column 0 elements start the wave.
  with_creator(16, [](chrys::Kernel& k) {
    std::vector<std::uint32_t> sums(4, 0);
    Mesh mesh(k, 4, 3, [&](Element& e) {
      std::uint32_t acc = e.row() * 10 + e.col();
      if (e.col() > 0) acc += e.in(Direction::kWest)->read_value<std::uint32_t>();
      if (e.out(Direction::kEast) != nullptr)
        e.out(Direction::kEast)->write_value<std::uint32_t>(acc);
      else
        sums[e.row()] = acc;
    });
    mesh.join();
    for (std::uint32_t r = 0; r < 4; ++r) EXPECT_EQ(sums[r], r * 30 + 3);
  });
}

TEST(Mesh, LargeTransfersArriveIntact) {
  with_creator(4, [](chrys::Kernel& k) {
    bool ok = false;
    Mesh mesh(k, 1, 2, [&](Element& e) {
      constexpr std::size_t kN = 10000;
      if (e.col() == 0) {
        std::vector<std::uint8_t> data(kN);
        for (std::size_t i = 0; i < kN; ++i)
          data[i] = static_cast<std::uint8_t>(i % 241);
        e.out(Direction::kEast)->write(data.data(), kN);
      } else {
        std::vector<std::uint8_t> data(kN, 0);
        e.in(Direction::kWest)->read(data.data(), kN);
        ok = true;
        for (std::size_t i = 0; i < kN; ++i)
          ok = ok && data[i] == static_cast<std::uint8_t>(i % 241);
      }
    });
    mesh.join();
    EXPECT_TRUE(ok);
  });
}

TEST(MeshFaults, ReadFromExitedPeerRaisesInsteadOfHanging) {
  // The writer element exits without ever writing; its reader must get a
  // broken-stream throw, not block forever.
  Machine m(sim::butterfly1(4));
  chrys::Kernel k(m);
  std::uint32_t err = 0;
  bool read_returned = false;
  k.create_process(0, [&] {
    Mesh mesh(k, 1, 2, [&](Element& e) {
      if (e.col() == 0) return;  // writer quits immediately
      std::uint32_t v = 0;
      err = k.catch_block(
          [&] { v = e.in(Direction::kWest)->read_value<std::uint32_t>(); });
      read_returned = true;
      (void)v;
    });
    mesh.join();
    EXPECT_EQ(mesh.elements_faulted(), 0u);  // the body caught it
    EXPECT_EQ(mesh.elements_lost(), 0u);
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_TRUE(read_returned);
  EXPECT_EQ(err, chrys::kThrowBrokenStream);
}

TEST(MeshFaults, DeadWriterNodeBreaksTheStreamAndJoinCompletes) {
  // Node 1 (the writer element's node) dies mid-run.  The reader gets a
  // broken-stream error, the mesh still joins, and nothing deadlocks.
  sim::FaultPlan plan;
  plan.kill(1, 20 * sim::kMillisecond);
  Machine m(sim::butterfly1(4), plan);
  chrys::Kernel k(m);
  std::uint32_t first = 0;
  k.create_process(0, [&] {
    MeshOptions opt;
    opt.base_node = 1;  // element (0,0) on node 1, element (0,1) on node 2
    Mesh mesh(
        k, 1, 2,
        [&](Element& e) {
          if (e.col() == 0) {
            // One value early, then die mid-delay before the second.
            e.out(Direction::kEast)->write_value<std::uint32_t>(7);
            k.delay(100 * sim::kMillisecond);
            e.out(Direction::kEast)->write_value<std::uint32_t>(8);
          } else {
            Stream* in = e.in(Direction::kWest);
            first = in->read_value<std::uint32_t>();
            (void)in->read_value<std::uint32_t>();  // writer dies: throws
          }
        },
        opt);
    mesh.join();
    EXPECT_EQ(mesh.elements_lost(), 1u);
    EXPECT_EQ(mesh.elements_faulted(), 1u);  // the reader's uncaught throw
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_EQ(first, 7u);
  EXPECT_FALSE(m.node_alive(1));
}

TEST(MeshFaults, KillLandingWhileTheReaderIsBlockedWakesIt) {
  // Regression for the blocked-at-the-moment-of-death window: the reader
  // is already parked inside read() when the writer's node dies.  The
  // crash broadcast must wake exactly that parked reader with a
  // broken-stream error on the next scheduler tick, not leave it hung.
  sim::FaultPlan plan;
  plan.kill(1, 20 * sim::kMillisecond);
  Machine m(sim::butterfly1(4), plan);
  chrys::Kernel k(m);
  std::uint32_t err = 0;
  sim::Time woke_at = 0;
  k.create_process(0, [&] {
    MeshOptions opt;
    opt.base_node = 1;  // writer on node 1, reader on node 2
    Mesh mesh(
        k, 1, 2,
        [&](Element& e) {
          if (e.col() == 0) {
            k.delay(100 * sim::kMillisecond);  // never writes; dies at 20 ms
            e.out(Direction::kEast)->write_value<std::uint32_t>(1);
          } else {
            err = k.catch_block([&] {
              std::uint32_t v =
                  e.in(Direction::kWest)->read_value<std::uint32_t>();
              (void)v;
            });
            woke_at = m.now();
          }
        },
        opt);
    mesh.join();
    EXPECT_EQ(mesh.elements_lost(), 1u);
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_EQ(err, chrys::kThrowBrokenStream);
  // Woken by the kill itself (not some later event): within a tick of it.
  EXPECT_GE(woke_at, 20 * sim::kMillisecond);
  EXPECT_LT(woke_at, 21 * sim::kMillisecond);
}

TEST(MeshFaults, SilentDeathWithoutAReadTimeoutBlocksForever) {
  // Control for the detector tests: a *silent* kill posts no EOF and fires
  // no crash broadcast, so a reader with no read_timeout waits forever and
  // the run ends deadlocked.  This is the hole rescue::Membership (or a
  // read timeout) exists to close.
  sim::FaultPlan plan;
  plan.kill_silent(1, 20 * sim::kMillisecond);
  Machine m(sim::butterfly1(4), plan);
  chrys::Kernel k(m);
  k.create_process(0, [&] {
    MeshOptions opt;
    opt.base_node = 1;
    Mesh mesh(
        k, 1, 2,
        [&](Element& e) {
          if (e.col() == 0) {
            k.delay(100 * sim::kMillisecond);
            e.out(Direction::kEast)->write_value<std::uint32_t>(1);
          } else {
            (void)e.in(Direction::kWest)->read_value<std::uint32_t>();
          }
        },
        opt);
    mesh.join();
  });
  m.run();
  EXPECT_TRUE(m.deadlocked());
}

TEST(MeshFaults, ReadTimeoutDetectsASilentlyDeadWriter) {
  // Same silent kill, but the reader re-checks the writer's liveness every
  // read_timeout: its own failure detection turns the hang into a
  // broken-stream error, and excising the corpse lets join() finish.
  sim::FaultPlan plan;
  plan.kill_silent(1, 20 * sim::kMillisecond);
  Machine m(sim::butterfly1(4), plan);
  chrys::Kernel k(m);
  std::uint32_t first = 0, err = 0;
  Mesh* meshp = nullptr;
  k.create_process(0, [&] {
    MeshOptions opt;
    opt.base_node = 1;
    opt.read_timeout = 5 * sim::kMillisecond;
    Mesh mesh(
        k, 1, 2,
        [&](Element& e) {
          if (e.col() == 0) {
            e.out(Direction::kEast)->write_value<std::uint32_t>(7);
            k.delay(100 * sim::kMillisecond);  // dies silently in here
            e.out(Direction::kEast)->write_value<std::uint32_t>(8);
          } else {
            Stream* in = e.in(Direction::kWest);
            first = in->read_value<std::uint32_t>();
            err = k.catch_block(
                [&] { (void)in->read_value<std::uint32_t>(); });
            // The reader found the corpse itself; report it so the dead
            // element's join token gets posted.
            meshp->excise_node(1);
          }
        },
        opt);
    meshp = &mesh;
    mesh.join();
    EXPECT_EQ(mesh.elements_lost(), 1u);
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_EQ(first, 7u);
  EXPECT_EQ(err, chrys::kThrowBrokenStream);
}

TEST(MeshFaults, KillDuringConstructionCostsOnlyThatElement) {
  // Node 1 dies while the mesh is still being built: the elements homed
  // there are written off (their streams get EOF, join() gets their
  // tokens) and construction completes for everyone else.
  sim::FaultPlan plan;
  plan.kill(1, 1);  // effectively before any element process can start
  Machine m(sim::butterfly1(4), plan);
  chrys::Kernel k(m);
  std::uint32_t reader_err = 0;
  k.create_process(0, [&] {
    MeshOptions opt;
    opt.base_node = 1;
    Mesh mesh(
        k, 1, 2,
        [&](Element& e) {
          if (e.col() == 0) {
            e.out(Direction::kEast)->write_value<std::uint32_t>(1);
          } else {
            reader_err = k.catch_block([&] {
              (void)e.in(Direction::kWest)->read_value<std::uint32_t>();
            });
          }
        },
        opt);
    mesh.join();
    EXPECT_EQ(mesh.elements_lost(), 1u);
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_EQ(reader_err, chrys::kThrowBrokenStream);
}

TEST(MeshFaults, BytesBufferedBeforeTheBreakAreStillReadable) {
  Machine m(sim::butterfly1(4));
  chrys::Kernel k(m);
  std::vector<std::uint8_t> got;
  std::uint32_t err = 0;
  k.create_process(0, [&] {
    Mesh mesh(k, 1, 2, [&](Element& e) {
      if (e.col() == 0) {
        const std::uint8_t data[] = {9, 8, 7};
        e.out(Direction::kEast)->write(data, 3);  // then exit
      } else {
        Stream* in = e.in(Direction::kWest);
        std::uint8_t buf[3] = {};
        in->read(buf, 3);  // delivered bytes arrive fine
        got.assign(buf, buf + 3);
        err = k.catch_block([&] {
          std::uint8_t more = 0;
          in->read(&more, 1);  // past the end: broken
        });
        EXPECT_TRUE(in->broken());
      }
    });
    mesh.join();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_EQ(got, (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_EQ(err, chrys::kThrowBrokenStream);
}

}  // namespace
}  // namespace bfly::net
