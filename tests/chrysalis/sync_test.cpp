#include <gtest/gtest.h>

#include "chrysalis/kernel.hpp"
#include "chrysalis/spinlock.hpp"

namespace bfly::chrys {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

TEST(Event, PostThenWaitDeliversDatum) {
  Machine m(butterfly1(2));
  Kernel k(m);
  std::uint32_t got = 0;
  k.create_process(0, [&] {
    Oid ev = k.make_event();
    k.event_post(ev, 42);
    got = k.event_wait(ev);
  });
  m.run();
  EXPECT_EQ(got, 42u);
}

TEST(Event, WaitBlocksUntilPostFromAnotherNode) {
  Machine m(butterfly1(2));
  Kernel k(m);
  std::uint32_t got = 0;
  Time woke = 0;
  Oid ev = kNoObject;
  k.create_process(0, [&] {
    ev = k.make_event();
    got = k.event_wait(ev);
    woke = m.now();
  });
  k.create_process(1, [&] {
    k.delay(5 * sim::kMillisecond);
    k.event_post(ev, 7);
  });
  m.run();
  EXPECT_EQ(got, 7u);
  EXPECT_GE(woke, 5 * sim::kMillisecond);
  EXPECT_FALSE(m.deadlocked());
}

TEST(Event, OnlyOwnerCanWait) {
  Machine m(butterfly1(2));
  Kernel k(m);
  Oid ev = kNoObject;
  int code = 0;
  k.create_process(0, [&] {
    ev = k.make_event();
    k.delay(20 * sim::kMillisecond);
  });
  k.create_process(1, [&] {
    k.delay(5 * sim::kMillisecond);
    code = k.catch_block([&] { (void)k.event_wait(ev); });
  });
  m.run();
  EXPECT_EQ(code, kThrowNotOwner);
}

TEST(Event, SecondPostOverwrites) {
  Machine m(butterfly1(1));
  Kernel k(m);
  std::uint32_t got = 0;
  k.create_process(0, [&] {
    Oid ev = k.make_event();
    k.event_post(ev, 1);
    k.event_post(ev, 2);  // binary semantics: overwrites
    got = k.event_wait(ev);
  });
  m.run();
  EXPECT_EQ(got, 2u);
}

TEST(Event, PrimitivesCompleteInTensOfMicroseconds) {
  Machine m(butterfly1(2));
  Kernel k(m);
  Time post_cost = 0, wait_cost = 0;
  k.create_process(0, [&] {
    Oid ev = k.make_event();
    Time t0 = m.now();
    k.event_post(ev, 0);
    post_cost = m.now() - t0;
    t0 = m.now();
    (void)k.event_wait(ev);
    wait_cost = m.now() - t0;
  });
  m.run();
  EXPECT_GE(post_cost, 10 * sim::kMicrosecond);
  EXPECT_LE(post_cost, 90 * sim::kMicrosecond);
  EXPECT_GE(wait_cost, 10 * sim::kMicrosecond);
  EXPECT_LE(wait_cost, 90 * sim::kMicrosecond);
}

TEST(DualQueue, DataToMultipleWaiters) {
  Machine m(butterfly1(4));
  Kernel k(m);
  std::vector<std::uint32_t> got(3, 0);
  Oid dq = k.make_dual_queue();
  for (int i = 0; i < 3; ++i)
    k.create_process(i, [&, i] { got[i] = k.dq_dequeue(dq); });
  k.create_process(3, [&] {
    k.delay(sim::kMillisecond);
    k.dq_enqueue(dq, 10);
    k.dq_enqueue(dq, 20);
    k.dq_enqueue(dq, 30);
  });
  m.run();
  EXPECT_FALSE(m.deadlocked());
  // FIFO handoff to waiters in blocking order.
  EXPECT_EQ(got, (std::vector<std::uint32_t>{10, 20, 30}));
}

TEST(DualQueue, HoldsDataFromMultiplePosts) {
  Machine m(butterfly1(1));
  Kernel k(m);
  std::vector<std::uint32_t> got;
  k.create_process(0, [&] {
    Oid dq = k.make_dual_queue();
    for (std::uint32_t i = 1; i <= 5; ++i) k.dq_enqueue(dq, i);
    EXPECT_EQ(k.dq_depth(dq), 5u);
    for (int i = 0; i < 5; ++i) got.push_back(k.dq_dequeue(dq));
  });
  m.run();
  EXPECT_EQ(got, (std::vector<std::uint32_t>{1, 2, 3, 4, 5}));
}

TEST(DualQueue, TryDequeueDoesNotBlock) {
  Machine m(butterfly1(1));
  Kernel k(m);
  bool empty_ok = false;
  k.create_process(0, [&] {
    Oid dq = k.make_dual_queue();
    std::uint32_t v = 0;
    empty_ok = !k.dq_try_dequeue(dq, &v);
    k.dq_enqueue(dq, 9);
    empty_ok = empty_ok && k.dq_try_dequeue(dq, &v) && v == 9;
  });
  m.run();
  EXPECT_TRUE(empty_ok);
}

TEST(DualQueue, BoundedQueueThrowsWhenFull) {
  Machine m(butterfly1(1));
  Kernel k(m);
  int code = 0;
  k.create_process(0, [&] {
    Oid dq = k.make_dual_queue(2);
    k.dq_enqueue(dq, 1);
    k.dq_enqueue(dq, 2);
    code = k.catch_block([&] { k.dq_enqueue(dq, 3); });
  });
  m.run();
  EXPECT_EQ(code, kThrowQueueFull);
}

TEST(DualQueue, AnyoneCanEnqueueProtectionLoophole) {
  // Section 2.2: "a process can enqueue and dequeue information on any dual
  // queue it can name" — names are sequential and guessable.
  Machine m(butterfly1(2));
  Kernel k(m);
  Oid dq = kNoObject;
  std::uint32_t stolen = 0;
  k.create_process(0, [&] {
    dq = k.make_dual_queue();
    k.dq_enqueue(dq, 777);
    k.delay(10 * sim::kMillisecond);
  });
  k.create_process(1, [&] {
    k.delay(sim::kMillisecond);
    const Oid guessed = dq;  // in reality: brute-force the small name space
    stolen = k.dq_dequeue(guessed);
  });
  m.run();
  EXPECT_EQ(stolen, 777u);
}

TEST(CatchThrow, CostsAbout70Microseconds) {
  Machine m(butterfly1(1));
  Kernel k(m);
  Time cost = 0;
  k.create_process(0, [&] {
    const Time t0 = m.now();
    (void)k.catch_block([] {});
    cost = m.now() - t0;
  });
  m.run();
  EXPECT_EQ(cost, 70 * sim::kMicrosecond);
}

TEST(CatchThrow, NestedCatchUnwindsToNearest) {
  Machine m(butterfly1(1));
  Kernel k(m);
  int outer = -1, inner = -1;
  k.create_process(0, [&] {
    outer = k.catch_block([&] {
      inner = k.catch_block([&] { k.throw_err(kThrowUser + 5); });
      // Execution continues after the inner catch.
    });
  });
  m.run();
  EXPECT_EQ(inner, kThrowUser + 5);
  EXPECT_EQ(outer, kThrowNone);
}

TEST(CatchThrow, DatumIsDelivered) {
  Machine m(butterfly1(1));
  Kernel k(m);
  std::uint32_t datum = 0;
  int code = 0;
  k.create_process(0, [&] {
    code = k.catch_block([&] { k.throw_err(kThrowUser, 0xabcd); }, &datum);
  });
  m.run();
  EXPECT_EQ(code, kThrowUser);
  EXPECT_EQ(datum, 0xabcdu);
}

TEST(SpinLock, MutualExclusionAcrossNodes) {
  Machine m(butterfly1(8));
  Kernel k(m);
  sim::PhysAddr cell = m.alloc(0, 8);
  sim::PhysAddr counter = m.alloc(0, 8);
  m.poke<std::uint32_t>(cell, 0);
  m.poke<std::uint32_t>(counter, 0);
  for (int n = 0; n < 8; ++n) {
    k.create_process(n, [&m, cell, counter] {
      SpinLock lock(m, cell);
      for (int i = 0; i < 20; ++i) {
        lock.acquire();
        // Non-atomic read-modify-write protected by the lock.
        const auto v = m.read<std::uint32_t>(counter);
        m.charge(10 * sim::kMicrosecond);
        m.write<std::uint32_t>(counter, v + 1);
        lock.release();
      }
    });
  }
  m.run();
  EXPECT_EQ(m.peek<std::uint32_t>(counter), 160u);
}

TEST(SpinLock, SpinningStealsCyclesFromLockHomeNode) {
  // Busy-waiting remote processors hammer the lock word's home module; the
  // home node's own local references slow down (Section 2.1).
  auto victim_time = [](int spinners) {
    Machine m(butterfly1(32));
    Kernel k(m);
    sim::PhysAddr cell = m.alloc(0, 8);
    m.poke<std::uint32_t>(cell, 1);  // held: everyone spins
    sim::PhysAddr local = m.alloc(0, 64);
    Time t = 0;
    k.create_process(0, [&m, local, &t] {
      const Time t0 = m.now();
      for (int i = 0; i < 500; ++i) (void)m.read<std::uint32_t>(local);
      t = m.now() - t0;
    });
    for (int s = 1; s <= spinners; ++s) {
      k.create_process(s, [&m, cell] {
        SpinLock lock(m, cell, sim::kMicrosecond);
        for (int i = 0; i < 400; ++i) {
          if (lock.try_acquire()) lock.release();
          m.charge(sim::kMicrosecond);
        }
      });
    }
    m.run();
    return t;
  };
  EXPECT_GT(victim_time(20), 2 * victim_time(0));
}

TEST(DualQueue, TimedDequeueReturnsDataWhenAvailable) {
  Machine m(butterfly1(2));
  Kernel k(m);
  bool got = false;
  std::uint32_t v = 0;
  k.create_process(0, [&] {
    const Oid dq = k.make_dual_queue();
    k.dq_enqueue(dq, 31);
    got = k.dq_dequeue_for(dq, 10 * sim::kMillisecond, &v);
  });
  m.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(v, 31u);
}

TEST(DualQueue, TimedDequeueTimesOutOnEmptyQueue) {
  Machine m(butterfly1(2));
  Kernel k(m);
  bool got = true;
  Time woke = 0;
  k.create_process(0, [&] {
    const Oid dq = k.make_dual_queue();
    std::uint32_t v = 0;
    got = k.dq_dequeue_for(dq, 8 * sim::kMillisecond, &v);
    woke = m.now();
  });
  m.run();
  EXPECT_FALSE(got);
  EXPECT_GE(woke, 8 * sim::kMillisecond);
  EXPECT_FALSE(m.deadlocked());
}

TEST(DualQueue, TimedDequeueWokenByLatePost) {
  Machine m(butterfly1(2));
  Kernel k(m);
  bool got = false;
  std::uint32_t v = 0;
  Oid dq = kNoObject;
  k.create_process(0, [&] {
    dq = k.make_dual_queue();
    got = k.dq_dequeue_for(dq, 60 * sim::kMillisecond, &v);
  });
  k.create_process(1, [&] {
    k.delay(5 * sim::kMillisecond);
    k.dq_enqueue(dq, 9);
  });
  m.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(v, 9u);
  EXPECT_FALSE(m.deadlocked());
}

TEST(DualQueue, StaleTimerAfterDeliveryDoesNotCorruptLaterWaits) {
  // Deliver just before the timeout fires, then reuse the process in a
  // second timed wait that outlives the first (stale) timer event.  The
  // generation counter must keep the old timer from waking the new wait.
  Machine m(butterfly1(2));
  Kernel k(m);
  std::vector<std::pair<bool, std::uint32_t>> results;
  Oid dq = kNoObject;
  k.create_process(0, [&] {
    dq = k.make_dual_queue();
    std::uint32_t v = 0;
    const bool a = k.dq_dequeue_for(dq, 10 * sim::kMillisecond, &v);
    results.push_back({a, v});
    v = 0;
    const bool b = k.dq_dequeue_for(dq, 50 * sim::kMillisecond, &v);
    results.push_back({b, v});
  });
  k.create_process(1, [&] {
    k.delay(9 * sim::kMillisecond);  // just under the first deadline
    k.dq_enqueue(dq, 1);
    k.delay(30 * sim::kMillisecond);
    k.dq_enqueue(dq, 2);
  });
  m.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], (std::pair<bool, std::uint32_t>{true, 1}));
  EXPECT_EQ(results[1], (std::pair<bool, std::uint32_t>{true, 2}));
  EXPECT_FALSE(m.deadlocked());
}

TEST(Kill, KilledProcessReleasesItsDualQueueWaiterSlot) {
  // A process blocked in dq_dequeue dies with its node; a later enqueue
  // must not hand the datum to the corpse.
  sim::FaultPlan plan;
  plan.kill(1, 5 * sim::kMillisecond);
  Machine m(butterfly1(2), plan);
  Kernel k(m);
  std::uint32_t got = 0;
  Oid dq = kNoObject;
  k.create_process(0, [&] {
    dq = k.make_dual_queue();
    k.delay(20 * sim::kMillisecond);
    k.dq_enqueue(dq, 77);
    k.delay(5 * sim::kMillisecond);
    std::uint32_t v = 0;
    if (k.dq_try_dequeue(dq, &v)) got = v;
  });
  k.create_process(1, [&] {
    k.delay(sim::kMillisecond);
    (void)k.dq_dequeue(dq);  // blocked here when node 1 dies at 5 ms
  });
  m.run();
  EXPECT_FALSE(m.deadlocked());
  // The datum survived: the dead waiter was skipped and the data queued.
  EXPECT_EQ(got, 77u);
  EXPECT_GE(k.killed_processes(), 1u);
}

TEST(Kill, CreateProcessOnDeadNodeThrows) {
  sim::FaultPlan plan;
  plan.kill(1, sim::kMillisecond);
  Machine m(butterfly1(2), plan);
  Kernel k(m);
  std::uint32_t err = kThrowNone;
  k.create_process(0, [&] {
    k.delay(10 * sim::kMillisecond);
    err = static_cast<std::uint32_t>(
        k.catch_block([&] { (void)k.create_process(1, [] {}); }));
  });
  m.run();
  EXPECT_EQ(err, static_cast<std::uint32_t>(kThrowNodeDead));
  EXPECT_FALSE(m.deadlocked());
}

}  // namespace
}  // namespace bfly::chrys
