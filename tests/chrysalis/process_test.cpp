#include <gtest/gtest.h>

#include "chrysalis/kernel.hpp"

namespace bfly::chrys {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

TEST(Process, RunsAndExits) {
  Machine m(butterfly1(4));
  Kernel k(m);
  bool ran = false;
  k.create_process(0, [&] { ran = true; });
  m.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(k.live_processes(), 0u);
  EXPECT_FALSE(m.deadlocked());
}

TEST(Process, NonPreemptivePerNodeScheduling) {
  Machine m(butterfly1(2));
  Kernel k(m);
  std::vector<int> order;
  k.create_process(0, [&] {
    order.push_back(1);
    m.charge(sim::kMillisecond);  // holds the CPU: no preemption
    order.push_back(2);
  });
  k.create_process(0, [&] { order.push_back(3); });
  m.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Process, ProcessesOnDifferentNodesOverlapInTime) {
  Machine m(butterfly1(4));
  Kernel k(m);
  Time done_a = 0, done_b = 0;
  k.create_process(0, [&] {
    m.charge(10 * sim::kMillisecond);
    done_a = m.now();
  });
  k.create_process(1, [&] {
    m.charge(10 * sim::kMillisecond);
    done_b = m.now();
  });
  m.run();
  // True parallelism: both finish ~10 ms after their (near-simultaneous)
  // creation rather than 20 ms serial.
  EXPECT_LT(done_a, 15 * sim::kMillisecond);
  EXPECT_LT(done_b, 15 * sim::kMillisecond);
}

TEST(Process, YieldRotatesReadyQueue) {
  Machine m(butterfly1(1));
  Kernel k(m);
  std::vector<int> order;
  k.create_process(0, [&] {
    order.push_back(1);
    k.yield();
    order.push_back(3);
  });
  k.create_process(0, [&] {
    order.push_back(2);
    k.yield();
    order.push_back(4);
  });
  m.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Process, CreationCostIncludesSerializedTemplateSection) {
  // Two processes creating children concurrently must queue on the global
  // process-template resource (the Crowd Control bottleneck).
  Machine m(butterfly1(8));
  Kernel k(m);
  Time t_single = 0;
  {
    Machine m1(butterfly1(8));
    Kernel k1(m1);
    k1.create_process(0, [&] {
      const Time t0 = m1.now();
      k1.create_process(1, [] {});
      t_single = m1.now() - t0;
    });
    m1.run();
  }
  std::vector<Time> costs;
  for (int i = 0; i < 4; ++i) {
    k.create_process(i, [&, i] {
      const Time t0 = m.now();
      k.create_process(4 + i, [] {});
      costs.push_back(m.now() - t0);
    });
  }
  m.run();
  ASSERT_EQ(costs.size(), 4u);
  Time max_cost = *std::max_element(costs.begin(), costs.end());
  EXPECT_GT(max_cost, t_single + 2 * m.config().proc_create_serial_ns)
      << "concurrent creators must serialize on the template resource";
}

TEST(Process, SarBlocksAreBuddySized) {
  Machine m(butterfly1(2));
  Kernel k(m);
  Oid p = k.create_process(0, [] {}, "p", 20);
  m.run();
  // 20 segments requested -> 32-SAR block.
  EXPECT_EQ(k.free_sars(0), 512u - 0u);  // refunded at exit
  (void)p;
}

TEST(Process, SarExhaustionLimitsProcessesPerNode) {
  Machine m(butterfly1(2));
  Kernel k(m);
  int created = 0, failed = 0;
  k.create_process(0, [&] {
    // Each child wants a 256-SAR block; only 1 more fits beside this
    // process's own 8 (512 total).
    for (int i = 0; i < 3; ++i) {
      const int code = k.catch_block([&] {
        k.create_process(0, [&k] { k.delay(50 * sim::kMillisecond); }, "fat",
                         256);
        ++created;
      });
      if (code == kThrowNoSars) ++failed;
    }
  });
  m.run();
  EXPECT_EQ(created, 1);
  EXPECT_EQ(failed, 2);
}

TEST(Process, FaultedProcessTerminatesQuietly) {
  Machine m(butterfly1(2));
  Kernel k(m);
  bool after = false;
  k.create_process(0, [&] { k.throw_err(kThrowUser + 1); });
  k.create_process(0, [&] { after = true; });
  m.run();
  EXPECT_TRUE(after);
  EXPECT_EQ(k.live_processes(), 0u);
}

TEST(Process, DelayReleasesCpuToOtherProcesses) {
  Machine m(butterfly1(1));
  Kernel k(m);
  std::vector<int> order;
  k.create_process(0, [&] {
    k.delay(10 * sim::kMillisecond);
    order.push_back(2);
  });
  k.create_process(0, [&] { order.push_back(1); });
  m.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Process, SleeperOnIdleNodeDoesNotDelayMidSleepWakeups) {
  // A delay taken while the node's ready queue happens to be empty must
  // still release the CPU: a server woken by a request arriving mid-sleep
  // runs immediately, it does not wait out the sleeper's nap.  (This was
  // once a real bug — delay charged the interval on an idle node, and any
  // periodic sleeper made every mid-sleep wakeup late by up to a period.)
  Machine m(butterfly1(2));
  Kernel k(m);
  const Oid dq = k.make_dual_queue();
  Time served_at = 0;
  k.create_process(0, [&] {
    (void)k.dq_dequeue(dq);  // blocks: not in the ready queue
    served_at = m.now();
  });
  k.create_process(0, [&] {
    k.delay(50 * sim::kMillisecond);  // ready queue is empty at this point
  });
  k.create_process(1, [&] {
    k.delay(5 * sim::kMillisecond);
    k.dq_enqueue(dq, 7);  // lands mid-sleep on node 0
  });
  m.run();
  EXPECT_GE(served_at, 5 * sim::kMillisecond);
  EXPECT_LT(served_at, 10 * sim::kMillisecond);  // not 50: sleeper can't block it
  EXPECT_FALSE(m.deadlocked());
}

}  // namespace
}  // namespace bfly::chrys
