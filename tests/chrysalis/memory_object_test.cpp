#include <gtest/gtest.h>

#include "chrysalis/kernel.hpp"

namespace bfly::chrys {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

TEST(MemoryObject, RoundsUpToStandardSizes) {
  Machine m(butterfly1(2));
  Kernel k(m);
  std::size_t wasted_live = 0;
  k.create_process(0, [&] {
    Oid a = k.make_memory_object(0, 100);
    EXPECT_EQ(k.memobj_size(a), 256u);
    Oid b = k.make_memory_object(0, 5000);
    EXPECT_EQ(k.memobj_size(b), 8192u);
    Oid c = k.make_memory_object(0, 64 * 1024);
    EXPECT_EQ(k.memobj_size(c), 64u * 1024);
    wasted_live = k.wasted_bytes();
  });
  m.run();
  EXPECT_EQ(wasted_live, (256u - 100) + (8192u - 5000));
  EXPECT_EQ(k.wasted_bytes(), 0u) << "reclamation returns the fragments";
}

TEST(MemoryObject, OversizeThrows) {
  Machine m(butterfly1(2));
  Kernel k(m);
  int code = 0;
  k.create_process(0, [&] {
    code = k.catch_block([&] { (void)k.make_memory_object(0, 65537); });
  });
  m.run();
  EXPECT_EQ(code, kThrowOutOfMemory);
}

TEST(MemoryObject, MapUnmapCostsOverOneMillisecond) {
  Machine m(butterfly1(2));
  Kernel k(m);
  Time map_cost = 0, unmap_cost = 0;
  k.create_process(0, [&] {
    Oid mo = k.make_memory_object(1, 4096);
    Time t0 = m.now();
    const std::uint32_t seg = k.map_object(mo);
    map_cost = m.now() - t0;
    t0 = m.now();
    k.unmap_segment(seg);
    unmap_cost = m.now() - t0;
  });
  m.run();
  EXPECT_GT(map_cost, sim::kMillisecond);
  EXPECT_GT(unmap_cost, sim::kMillisecond);
}

TEST(MemoryObject, VirtualAccessThroughSegments) {
  Machine m(butterfly1(4));
  Kernel k(m);
  std::uint32_t got = 0;
  k.create_process(0, [&] {
    Oid mo = k.make_memory_object(2, 4096);  // remote memory
    const std::uint32_t seg = k.map_object(mo);
    k.vwrite<std::uint32_t>(VirtAddr(seg, 128), 0xfeed);
    got = k.vread<std::uint32_t>(VirtAddr(seg, 128));
  });
  m.run();
  EXPECT_EQ(got, 0xfeedu);
}

TEST(MemoryObject, UnmappedSegmentFaults) {
  Machine m(butterfly1(2));
  Kernel k(m);
  int code = 0;
  k.create_process(0, [&] {
    code = k.catch_block(
        [&] { (void)k.vread<std::uint32_t>(VirtAddr(3, 0)); });
  });
  m.run();
  EXPECT_EQ(code, kThrowSegmentFault);
}

TEST(MemoryObject, OffsetBeyondObjectFaults) {
  Machine m(butterfly1(2));
  Kernel k(m);
  int code = 0;
  k.create_process(0, [&] {
    Oid mo = k.make_memory_object(0, 256);
    const std::uint32_t seg = k.map_object(mo);
    code = k.catch_block(
        [&] { (void)k.vread<std::uint32_t>(VirtAddr(seg, 300)); });
  });
  m.run();
  EXPECT_EQ(code, kThrowSegmentFault);
}

TEST(MemoryObject, AddressSpaceLimit) {
  // A process with an 8-SAR block can map at most 8 objects.
  Machine m(butterfly1(2));
  Kernel k(m);
  int mapped = 0, code = 0;
  k.create_process(
      0,
      [&] {
        for (int i = 0; i < 9; ++i) {
          Oid mo = k.make_memory_object(0, 256);
          code = k.catch_block([&] {
            (void)k.map_object(mo);
            ++mapped;
          });
          if (code != kThrowNone) break;
        }
      },
      "small", 8);
  m.run();
  EXPECT_EQ(mapped, 8);
  EXPECT_EQ(code, kThrowAddressSpaceFull);
}

TEST(ObjectModel, DeletingParentReclaimsChildren) {
  Machine m(butterfly1(2));
  Kernel k(m);
  Oid mo = kNoObject;
  k.create_process(0, [&] {
    mo = k.make_memory_object(0, 1024);
    // Process exits; its subsidiary memory object must be reclaimed.
  });
  m.run();
  EXPECT_FALSE(k.object_alive(mo));
  EXPECT_EQ(k.live_bytes(), 0u);
}

TEST(ObjectModel, SystemOwnedObjectsLeak) {
  Machine m(butterfly1(2));
  Kernel k(m);
  Oid mo = kNoObject;
  k.create_process(0, [&] {
    mo = k.make_memory_object(0, 1024);
    k.give_to_system(mo);
  });
  m.run();
  EXPECT_TRUE(k.object_alive(mo)) << "system-owned objects survive their creator";
  EXPECT_EQ(k.leaked_bytes(), 1024u) << "Chrysalis tends to leak storage";
}

TEST(ObjectModel, ExplicitDeleteFreesMemory) {
  Machine m(butterfly1(2));
  Kernel k(m);
  k.create_process(0, [&] {
    Oid mo = k.make_memory_object(0, 2048);
    EXPECT_EQ(k.live_bytes(), 2048u);
    k.delete_object(mo);
    EXPECT_EQ(k.live_bytes(), 0u);
    EXPECT_FALSE(k.object_alive(mo));
  });
  m.run();
}

TEST(ObjectModel, SixteenMegabyteAddressSpaceCeiling) {
  // 256 segments x 64 KB = 16 MB: the paper's complaint that only 16 MB of
  // the machine's 1 GB physical memory is addressable by one process.
  Machine m(butterfly1(2));
  const std::size_t max_addressable =
      static_cast<std::size_t>(m.config().max_segments_per_process) *
      m.config().segment_limit;
  EXPECT_EQ(max_addressable, 16u * 1024 * 1024);
}

}  // namespace
}  // namespace bfly::chrys
