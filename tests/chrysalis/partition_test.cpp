#include <gtest/gtest.h>

#include "chrysalis/kernel.hpp"

namespace bfly::chrys {
namespace {

using sim::butterfly1;
using sim::Machine;

TEST(Partition, ProcessesLandInsideTheirPartition) {
  Machine m(butterfly1(16));
  Kernel k(m);
  std::vector<sim::NodeId> where;
  const auto p = k.create_partition({4, 5, 6, 7});
  for (std::uint32_t i = 0; i < 4; ++i)
    k.enter_partition(p, i, [&k, &where] { where.push_back(k.self().node()); });
  m.run();
  std::sort(where.begin(), where.end());
  EXPECT_EQ(where, (std::vector<sim::NodeId>{4, 5, 6, 7}));
}

TEST(Partition, CreationOutsideTheFenceThrows) {
  Machine m(butterfly1(16));
  Kernel k(m);
  int code = 0;
  const auto p = k.create_partition({2, 3});
  k.enter_partition(p, 0, [&] {
    // Inside the partition: creating on node 9 must be rejected.
    code = k.catch_block([&] { k.create_process(9, [] {}); });
  });
  m.run();
  EXPECT_EQ(code, kThrowBadObject);
}

TEST(Partition, ChildrenInheritThePartition) {
  Machine m(butterfly1(16));
  Kernel k(m);
  Kernel::PartitionId seen = 0;
  const auto p = k.create_partition({1, 2, 3});
  k.enter_partition(p, 0, [&] {
    k.create_process(2, [&] { seen = k.current_partition(); });
  });
  m.run();
  EXPECT_EQ(seen, p);
}

TEST(Partition, TwoVirtualMachinesCoexist) {
  // The multi-user story: two partitions each run their own workload and
  // never place work on each other's nodes.
  Machine m(butterfly1(16));
  Kernel k(m);
  std::vector<sim::NodeId> a_nodes, b_nodes;
  const auto pa = k.create_partition({0, 1, 2, 3});
  const auto pb = k.create_partition({8, 9, 10, 11});
  for (std::uint32_t i = 0; i < 4; ++i) {
    k.enter_partition(pa, i, [&] {
      a_nodes.push_back(k.self().node());
      k.machine().charge(5 * sim::kMillisecond);
    });
    k.enter_partition(pb, i, [&] {
      b_nodes.push_back(k.self().node());
      k.machine().charge(5 * sim::kMillisecond);
    });
  }
  m.run();
  for (sim::NodeId n : a_nodes) EXPECT_LE(n, 3u);
  for (sim::NodeId n : b_nodes) EXPECT_GE(n, 8u);
}

TEST(Partition, OutsideProcessesAreUnrestricted) {
  Machine m(butterfly1(8));
  Kernel k(m);
  bool ok = false;
  (void)k.create_partition({0, 1});
  k.create_process(5, [&] {
    EXPECT_EQ(k.current_partition(), Kernel::kWholeMachine);
    k.create_process(6, [&ok] { ok = true; });  // anywhere is fine
  });
  m.run();
  EXPECT_TRUE(ok);
}

TEST(Partition, BadNodeListRejected) {
  Machine m(butterfly1(4));
  Kernel k(m);
  EXPECT_THROW((void)k.create_partition({2, 99}), ThrowSignal);
}

}  // namespace
}  // namespace bfly::chrys
