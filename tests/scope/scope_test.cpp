// Unit tests for bfly::scope: span bookkeeping across fiber switches, the
// event cap, exporter validity and escaping, the JSON parser / trace
// validator, and the critical-path sweep on hand-built span patterns whose
// decomposition is known exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chrysalis/kernel.hpp"
#include "scope/scope.hpp"
#include "scope/trace_check.hpp"
#include "sim/machine.hpp"

namespace bfly::scope {
namespace {

using sim::butterfly1;
using sim::kMillisecond;
using sim::Machine;

void expect_valid_trace(const Tracer& tracer, TraceCheckStats* stats) {
  std::vector<std::string> errors;
  ASSERT_TRUE(validate_chrome_trace(tracer.chrome_trace(), &errors, stats))
      << (errors.empty() ? std::string("no error detail") : errors.front());
}

TEST(ScopeSpans, NestAndInterleaveAcrossFibers) {
  Machine m(butterfly1(4));
  Tracer tracer(m);
  m.spawn(0, [&] {
    sim::TraceSpan outer(m, "t", "outer");
    m.charge(2 * kMillisecond);
    {
      sim::TraceSpan inner(m, "t", "inner");
      m.charge(2 * kMillisecond);
    }
    m.trace_instant("t", "mark", 7);
    m.charge(1 * kMillisecond);
  });
  m.spawn(1, [&] {
    sim::TraceSpan s(m, "t", "other");
    m.charge(3 * kMillisecond);
  });
  m.run();

  EXPECT_EQ(tracer.spans_begun(), 3u);
  EXPECT_EQ(tracer.spans_completed(), 3u);
  EXPECT_EQ(tracer.instants_recorded(), 1u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
  EXPECT_GE(tracer.tracks(), 2u);

  TraceCheckStats stats;
  expect_valid_trace(tracer, &stats);
  EXPECT_EQ(stats.begins, 3u);
  EXPECT_EQ(stats.ends, 3u);
  EXPECT_EQ(stats.instants, 1u);
}

TEST(ScopeSpans, EventCapDropsBalanced) {
  ScopeOptions opt;
  opt.max_events = 2;
  Machine m(butterfly1(2));
  Tracer tracer(m, opt);
  m.spawn(0, [&] {
    for (int i = 0; i < 3; ++i) {
      sim::TraceSpan s(m, "t", "span");
      m.charge(kMillisecond);
    }
  });
  m.run();

  // begin+end fill the cap; the two later spans drop whole (their ends are
  // absorbed, never recorded as unmatched E events).
  EXPECT_EQ(tracer.spans_begun(), 1u);
  EXPECT_EQ(tracer.spans_completed(), 1u);
  EXPECT_EQ(tracer.dropped_events(), 2u);

  TraceCheckStats stats;
  expect_valid_trace(tracer, &stats);
  EXPECT_EQ(stats.begins, stats.ends);
}

TEST(ScopeSpans, OpenSpansCloseAtExport) {
  Machine m(butterfly1(2));
  Tracer tracer(m);
  m.spawn(0, [&] {
    m.trace_begin("t", "leftopen");
    m.charge(kMillisecond);
    // No trace_end: the fiber exits with the span open.
  });
  m.run();

  EXPECT_EQ(tracer.spans_begun(), 1u);
  EXPECT_EQ(tracer.spans_completed(), 0u);
  TraceCheckStats stats;
  expect_valid_trace(tracer, &stats);  // exporter supplies the closing E
  EXPECT_EQ(stats.begins, 1u);
  EXPECT_EQ(stats.ends, 1u);
}

TEST(ScopeExport, HostileProcessNamesStayValidJson) {
  Machine m(butterfly1(2));
  Tracer tracer(m);
  chrys::Kernel k(m);
  k.create_process(
      0, [&] { m.charge(kMillisecond); },
      "we\"ird\\name\nwith\tjunk");
  m.run();

  const std::string trace = tracer.chrome_trace();
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse(trace, &v, &err)) << err;
  EXPECT_TRUE(validate_chrome_trace(trace));
  ASSERT_TRUE(json_parse(tracer.metrics_json(), &v, &err)) << err;
}

TEST(TraceCheck, ParsesAndRejectsJson) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(json_parse("{\"a\":[1,2.5,\"x\\u0041\"],\"b\":null}", &v, &err))
      << err;
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->arr.size(), 3u);
  EXPECT_EQ(a->arr[2].str, "xA");  // A decodes to 'A'

  EXPECT_FALSE(json_parse("{\"a\":", &v, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(json_parse("{\"a\":1} trailing", &v, &err));
  EXPECT_FALSE(json_parse("", &v, &err));
}

TEST(TraceCheck, ValidatorFlagsBrokenTraces) {
  const char* good =
      "{\"traceEvents\":["
      "{\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":1,\"name\":\"x\"},"
      "{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":2}]}";
  EXPECT_TRUE(validate_chrome_trace(good));

  const char* non_monotone =
      "{\"traceEvents\":["
      "{\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":2,\"name\":\"x\"},"
      "{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":1}]}";
  EXPECT_FALSE(validate_chrome_trace(non_monotone));

  const char* unmatched_end =
      "{\"traceEvents\":[{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":1}]}";
  EXPECT_FALSE(validate_chrome_trace(unmatched_end));

  const char* unclosed_begin =
      "{\"traceEvents\":["
      "{\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":1,\"name\":\"x\"}]}";
  EXPECT_FALSE(validate_chrome_trace(unclosed_begin));

  EXPECT_FALSE(validate_chrome_trace("{\"foo\":1}"));
  EXPECT_FALSE(validate_chrome_trace("not json at all"));
}

TEST(CriticalPath, OverlapDecomposition) {
  Machine m(butterfly1(2));
  Tracer tracer(m);
  // Task A runs [0, 10ms); task B runs [5ms, 15ms): 5 ms of true overlap.
  m.spawn(0, [&] {
    sim::TraceSpan t(m, "us", "task");
    m.charge(10 * kMillisecond);
  });
  m.spawn(1, [&] {
    m.charge(5 * kMillisecond);
    sim::TraceSpan t(m, "us", "task");
    m.charge(10 * kMillisecond);
  });
  m.run();

  const CriticalPathReport r = tracer.critical_path();
  EXPECT_EQ(r.tasks, 2u);
  EXPECT_EQ(r.workers, 2u);
  EXPECT_EQ(r.elapsed, 15 * kMillisecond);
  EXPECT_EQ(r.task_busy, 20 * kMillisecond);
  EXPECT_EQ(r.serial_ns, 10 * kMillisecond);  // only [5,10) has 2 in flight
  ASSERT_EQ(r.phases.size(), 1u);             // no barriers: one phase
  EXPECT_EQ(r.phases[0].longest, 10 * kMillisecond);
  EXPECT_EQ(r.critical_path, 10 * kMillisecond);  // no glue, longest task
  EXPECT_EQ(r.serial_elapsed_est, 20 * kMillisecond);
  EXPECT_DOUBLE_EQ(r.speedup_bound, 2.0);
}

TEST(CriticalPath, BarriersSplitPhases) {
  Machine m(butterfly1(2));
  Tracer tracer(m);
  m.spawn(0, [&] {
    {
      sim::TraceSpan t(m, "us", "task");
      m.charge(4 * kMillisecond);
    }
    {
      sim::TraceSpan w(m, "us", "wait_idle");
      m.charge(1 * kMillisecond);
    }
    {
      sim::TraceSpan t(m, "us", "task");
      m.charge(6 * kMillisecond);
    }
  });
  m.run();

  const CriticalPathReport r = tracer.critical_path();
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].tasks, 1u);
  EXPECT_EQ(r.phases[0].longest, 4 * kMillisecond);
  EXPECT_EQ(r.phases[1].tasks, 1u);
  EXPECT_EQ(r.phases[1].longest, 6 * kMillisecond);
  // Glue is the 1 ms barrier wait; the path is glue + each phase's longest.
  EXPECT_EQ(r.critical_path, 11 * kMillisecond);
  EXPECT_EQ(r.elapsed, 11 * kMillisecond);
}

TEST(CriticalPath, CapacityDecompositionAddsUp) {
  Machine m(butterfly1(4));
  Tracer tracer(m);
  const sim::PhysAddr remote = m.alloc(2, 64);  // off-node: mem_wait > 0
  m.spawn(0, [&] {
    sim::TraceSpan t(m, "us", "task");
    m.compute(1000);
    for (int i = 0; i < 16; ++i) (void)m.read<std::uint32_t>(remote);
  });
  m.run();

  const CriticalPathReport r = tracer.critical_path();
  EXPECT_EQ(r.worker_nodes, 1u);
  EXPECT_EQ(r.capacity, r.elapsed);
  EXPECT_GT(r.compute_ns, 0u);
  EXPECT_GT(r.mem_wait_ns, 0u);
  EXPECT_EQ(r.compute_ns + r.mem_wait_ns + r.contention_ns + r.idle_ns,
            r.capacity);
  EXPECT_GT(tracer.references_seen(), 0u);

  // The occupancy series saw the remote module's service time.
  const std::string metrics = tracer.metrics_json();
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse(metrics, &v, &err)) << err;
  const JsonValue* series = v.find("series");
  ASSERT_NE(series, nullptr);
  const JsonValue* nodes = series->find("node");
  ASSERT_NE(nodes, nullptr);
  EXPECT_FALSE(nodes->arr.empty());
}

}  // namespace
}  // namespace bfly::scope
