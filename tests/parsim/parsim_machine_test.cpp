// Machine-level behaviour of the parallel host engine: the partition
// function, config/env plumbing, the forfeit matrix (which features demote a
// parallel run back to the serial engine, and with what reason), cross-shard
// spawn rejection, and quiescence under sharding.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "chrysalis/kernel.hpp"
#include "sim/config.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "sim/observe.hpp"

namespace bfly {
namespace {

// Scoped setenv/unsetenv so a test can't leak an override into the rest of
// the binary (gtest runs everything in one process).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

struct NullObserver final : sim::MemObserver {
  void on_access(sim::Fiber*, sim::NodeId, sim::PhysAddr, std::uint32_t,
                 sim::MemOp) override {}
  void on_spawn(sim::Fiber*, sim::Fiber*) override {}
  void on_free(sim::PhysAddr, std::size_t) override {}
  void on_release(sim::Fiber*, std::uint64_t) override {}
  void on_acquire(sim::Fiber*, std::uint64_t) override {}
  void on_lock_acquire(sim::Fiber*, std::uint64_t) override {}
  void on_lock_release(sim::Fiber*, std::uint64_t) override {}
  void on_label(sim::PhysAddr, std::size_t, std::string) override {}
};

sim::MachineConfig par_cfg(std::uint32_t nodes, std::uint32_t shards,
                           std::uint32_t threads = 1) {
  sim::MachineConfig cfg = sim::butterfly1(nodes);
  cfg.host_shards = shards;
  cfg.host_threads = threads;
  return cfg;
}

// A workload trivially eligible for the parallel engine: one fiber per node
// doing a remote read and some compute.
void spawn_eligible_workload(sim::Machine& m) {
  for (sim::NodeId n = 0; n < m.nodes(); ++n) {
    const sim::PhysAddr a = m.alloc(n, 8);
    m.spawn(n, [&m, a, n] {
      m.charge(100 * (n + 1));
      (void)m.read<std::uint32_t>(a);
      const sim::PhysAddr remote =
          sim::PhysAddr{(n + 1u) % m.nodes(), a.offset};
      (void)m.read<std::uint32_t>(remote);
    });
  }
}

TEST(ParsimPartition, BlockPartitionIsMonotoneCompleteAndBalanced) {
  for (std::uint32_t nodes : {8u, 64u, 100u}) {
    for (std::uint32_t shards : {1u, 2u, 3u, 4u, 8u}) {
      sim::MachineConfig cfg = par_cfg(nodes, shards);
      sim::Machine m(cfg);
      ASSERT_EQ(m.host_shards(), std::min(shards, nodes));
      std::vector<std::uint32_t> count(m.host_shards(), 0);
      std::uint32_t prev = 0;
      for (sim::NodeId n = 0; n < nodes; ++n) {
        const std::uint32_t s = m.shard_of(n);
        ASSERT_LT(s, m.host_shards());
        ASSERT_GE(s, prev) << "partition must be monotone in node id";
        prev = s;
        ++count[s];
      }
      ASSERT_EQ(m.shard_of(0), 0u);
      ASSERT_EQ(m.shard_of(nodes - 1), m.host_shards() - 1);
      const auto [lo, hi] = std::minmax_element(count.begin(), count.end());
      EXPECT_LE(*hi - *lo, 1u)
          << "shard sizes must differ by at most one (nodes=" << nodes
          << " shards=" << shards << ")";
    }
  }
}

TEST(ParsimPartition, ShardCountClampsToNodeCount) {
  sim::Machine m(par_cfg(/*nodes=*/4, /*shards=*/64));
  EXPECT_EQ(m.host_shards(), 4u);
}

TEST(ParsimConfig, DefaultIsSerialAndReportsWhy) {
  sim::Machine m(sim::butterfly1(16));
  EXPECT_EQ(m.host_shards(), 1u);
  spawn_eligible_workload(m);
  m.run();
  EXPECT_STREQ(m.parallel_forfeit(), "host_shards=1");
  EXPECT_EQ(m.parallel_stats().shards, 0u);
  EXPECT_EQ(m.parallel_stats().windows, 0u);
}

TEST(ParsimConfig, EligibleWorkloadActuallyRunsParallel) {
  sim::Machine m(par_cfg(16, /*shards=*/4, /*threads=*/2));
  spawn_eligible_workload(m);
  const sim::Time end = m.run();
  EXPECT_GT(end, 0u);
  EXPECT_EQ(m.parallel_forfeit(), nullptr)
      << "unexpected forfeit: " << m.parallel_forfeit();
  const sim::ParallelRunStats& ps = m.parallel_stats();
  EXPECT_EQ(ps.shards, 4u);
  EXPECT_EQ(ps.threads, 2u);
  EXPECT_GT(ps.windows, 0u);
  EXPECT_GT(ps.messages, 0u) << "remote reads must flow through mailboxes";
  EXPECT_GT(ps.run_wall_ns, 0u);
  EXPECT_FALSE(m.deadlocked());
}

TEST(ParsimConfig, EnvOverridesShardAndThreadCounts) {
  ScopedEnv shards("BFLY_HOST_SHARDS", "4");
  ScopedEnv threads("BFLY_HOST_THREADS", "2");
  sim::Machine m(sim::butterfly1(16));  // config says host_shards = 1
  EXPECT_EQ(m.host_shards(), 4u);
  spawn_eligible_workload(m);
  m.run();
  EXPECT_EQ(m.parallel_forfeit(), nullptr);
  EXPECT_EQ(m.parallel_stats().shards, 4u);
  EXPECT_EQ(m.parallel_stats().threads, 2u);
}

// --- Forfeit matrix --------------------------------------------------------
// Each feature that cannot (yet) run sharded must demote the run to the
// serial engine with a stable, descriptive reason — never crash, never
// silently produce different results.

TEST(ParsimForfeit, FaultPlanForcesSerial) {
  sim::FaultPlan plan;
  plan.kill_silent(1, 50 * sim::kMicrosecond);
  sim::Machine m(par_cfg(16, 4), plan);
  spawn_eligible_workload(m);
  m.run();
  EXPECT_STREQ(m.parallel_forfeit(), "fault plan or kill_node active");
  EXPECT_EQ(m.parallel_stats().shards, 0u);
}

TEST(ParsimForfeit, SwitchContentionModelForcesSerial) {
  sim::MachineConfig cfg = par_cfg(16, 4);
  cfg.model_switch_contention = true;
  sim::Machine m(cfg);
  spawn_eligible_workload(m);
  m.run();
  EXPECT_STREQ(m.parallel_forfeit(), "switch contention model active");
}

TEST(ParsimForfeit, MemoryObserverForcesSerial) {
  sim::Machine m(par_cfg(16, 4));
  NullObserver obs;
  m.set_observer(&obs);
  spawn_eligible_workload(m);
  m.run();
  EXPECT_STREQ(m.parallel_forfeit(), "memory observer attached");
}

TEST(ParsimForfeit, DeathObserverForcesSerial) {
  sim::Machine m(par_cfg(16, 4));
  m.on_node_death([](sim::NodeId) {});
  spawn_eligible_workload(m);
  m.run();
  EXPECT_STREQ(m.parallel_forfeit(), "death/crash observers registered");
}

TEST(ParsimForfeit, PendingClosureEventsForceSerial) {
  sim::Machine m(par_cfg(16, 4));
  spawn_eligible_workload(m);
  m.engine().post_at(10, [] {});  // host timer: not a fiber event
  m.run();
  EXPECT_STREQ(m.parallel_forfeit(), "timer/closure events pending");
}

TEST(ParsimForfeit, KernelWorkloadsForfeitAutomatically) {
  // chrys::Kernel registers a death observer unconditionally, so any
  // OS-level workload runs serially — byte-identical to host_shards=1 —
  // without the kernel knowing parsim exists.
  sim::Machine m(par_cfg(16, 4));
  chrys::Kernel k(m);
  k.create_process(0, [&] { m.charge(1000); });
  m.run();
  EXPECT_NE(m.parallel_forfeit(), nullptr);
  EXPECT_EQ(m.parallel_stats().shards, 0u);
}

// --- Shard-safety of the fiber API ----------------------------------------

TEST(ParsimSafety, CrossShardSpawnDuringParallelRunThrows) {
  sim::Machine m(par_cfg(/*nodes=*/8, /*shards=*/2));
  bool threw = false;
  bool same_shard_ok = false;
  m.spawn(0, [&] {
    m.charge(100);
    // Node 7 lives on the other shard: mid-run spawn must be rejected
    // (there is no mailbox protocol for fiber creation).
    try {
      m.spawn(7, [] {});
    } catch (const sim::SimError&) {
      threw = true;
    }
    // Same-shard spawn keeps working mid-run.
    sim::Fiber* f = m.spawn(1, [&] { m.charge(10); });
    same_shard_ok = (f != nullptr);
  });
  m.run();
  EXPECT_EQ(m.parallel_forfeit(), nullptr);
  EXPECT_TRUE(threw);
  EXPECT_TRUE(same_shard_ok);
}

TEST(ParsimSafety, QuiescenceSeesCrossShardMailbox) {
  // A wakeup in flight between shards must keep quiescent() false even
  // though no shard has a pending fiber event yet (satellite 6: no false
  // quiescence while a cross-shard mailbox is non-empty).
  sim::Machine m(par_cfg(/*nodes=*/8, /*shards=*/2, /*threads=*/1));
  bool quiescent_before_wake = false;
  bool quiescent_after_send = true;
  bool woke = false;

  sim::Fiber* sleeper = m.spawn_parked(7, [&] { woke = true; });
  m.spawn(0, [&] {
    m.charge(sim::kMillisecond);  // sleeper is certainly parked by now
    quiescent_before_wake = m.quiescent();
    m.wakeup(sleeper);  // kWake is now sitting in shard 1's mailbox
    quiescent_after_send = m.quiescent();
  });
  m.run();

  EXPECT_EQ(m.parallel_forfeit(), nullptr);
  EXPECT_TRUE(quiescent_before_wake)
      << "only a parked fiber and the running waker existed";
  EXPECT_FALSE(quiescent_after_send)
      << "an undelivered cross-shard wakeup must defeat quiescence";
  EXPECT_TRUE(woke) << "the wakeup must not be lost at the window barrier";
  EXPECT_FALSE(m.deadlocked());
}

TEST(ParsimSafety, ParallelRunIsRepeatableWithinProcess) {
  // Two identical machines, identical results — guards against leaked
  // global state (thread_local shard pointers, per-run sequence counters).
  auto once = [] {
    sim::Machine m(par_cfg(16, 4, 2));
    spawn_eligible_workload(m);
    const sim::Time end = m.run();
    std::uint64_t stalls = 0;
    for (const auto& ns : m.stats().node) stalls += ns.stall_ns;
    return std::pair<sim::Time, std::uint64_t>(end, stalls);
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bfly
