// A/B determinism suite for the parallel host engine (ISSUE 9 satellite 3).
//
// Three contracts are pinned here:
//
//  1. *Shard/thread invariance* — for k >= 2 shards, results (memory,
//     per-node stats, elapsed time) are identical across shard counts and
//     across host thread counts, because every req != home reference flows
//     through arrival-time-stamped messages delivered in (arrive, src_node,
//     seq) order.  The host schedule can never leak into the simulation.
//  2. *Serial equality on uncontended workloads* — a single fiber issues
//     references one at a time, so issue order == arrival order and the
//     split-phase engine reproduces the serial engine exactly, k = 1 vs 2
//     vs 4, for every operation kind.
//  3. *Forfeit byte-identity* — workloads that demote to the serial engine
//     (US/SMP/Kernel apps, FaultPlans, replay monitors) produce the same
//     bytes at host_shards = 1, 2, 4, because they all run the same serial
//     engine.  Instant Replay logs compare equal field-wise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "apps/gauss.hpp"
#include "apps/sort.hpp"
#include "replay/instant_replay.hpp"
#include "rescue/checkpoint.hpp"
#include "serve/serve.hpp"
#include "sim/config.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"

namespace bfly {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::PhysAddr;
using sim::Time;

sim::MachineConfig par_cfg(std::uint32_t nodes, std::uint32_t shards,
                           std::uint32_t threads, bool fastpath = true) {
  sim::MachineConfig cfg = butterfly1(nodes);
  cfg.host_shards = shards;
  cfg.host_threads = threads;
  cfg.host_fastpath = fastpath;
  return cfg;
}

std::vector<std::uint64_t> snapshot_stats(Machine& m) {
  std::vector<std::uint64_t> out;
  for (const auto& ns : m.stats().node) {
    out.push_back(ns.local_refs);
    out.push_back(ns.remote_refs);
    out.push_back(ns.serviced_remote);
    out.push_back(ns.stall_ns);
    out.push_back(ns.queue_ns);
    out.push_back(ns.compute_ns);
    out.push_back(ns.block_words);
  }
  return out;
}

// --- Contract 1: contended mesh, shard/thread invariance -------------------

struct MeshOut {
  Time elapsed = 0;
  std::vector<std::uint8_t> memory;       // journals + counters + cells + blocks
  std::vector<std::uint64_t> stats;
  const char* forfeit = "";
  sim::ParallelRunStats ps;

  bool operator==(const MeshOut& o) const {
    return elapsed == o.elapsed && memory == o.memory && stats == o.stats;
  }
};

// 64 fibers, one per node, all hammering each other's counters, cells and
// block buffers — heavy cross-shard contention in every direction, plus one
// park/wakeup pair that always crosses a shard boundary for k >= 2.
MeshOut run_mesh(std::uint32_t shards, std::uint32_t threads,
                 bool fastpath = true) {
  constexpr std::uint32_t kNodes = 64;
  constexpr std::uint32_t kRounds = 6;
  Machine m(par_cfg(kNodes, shards, threads, fastpath));
  std::vector<PhysAddr> counter(kNodes), cell(kNodes), block(kNodes),
      journal(kNodes);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    counter[n] = m.alloc(n, 8);
    cell[n] = m.alloc(n, 8);
    block[n] = m.alloc(n, 64);
    journal[n] = m.alloc(n, 4 * (kRounds + 2));
  }

  sim::Fiber* sleeper = m.spawn_parked(0, [&] {
    m.poke<std::uint32_t>(journal[0].plus(4 * kRounds),
                          static_cast<std::uint32_t>(m.now() & 0xffffffffu));
  });

  for (std::uint32_t n = 0; n < kNodes; ++n) {
    m.spawn(n, [&, n] {
      std::uint32_t acc = n;
      for (std::uint32_t i = 0; i < kRounds; ++i) {
        m.charge(50 * ((n + i) % 9 + 1));
        acc ^= m.fetch_add_u32(counter[(n * 5 + i * 11) % kNodes], n + 1);
        acc += m.read<std::uint32_t>(cell[(n + i * 17) % kNodes]);
        m.write<std::uint32_t>(cell[n], acc + i);
        if (i == 2) {
          std::uint8_t buf[64];
          for (std::uint32_t j = 0; j < 64; ++j)
            buf[j] = static_cast<std::uint8_t>(acc + j);
          m.block_write(block[(n + 9) % kNodes], buf, 64);
        }
        if (i == 3) {
          std::uint8_t buf[64];
          m.block_read(buf, block[(n + 13) % kNodes], 64);
          acc += buf[0] + buf[63];
        }
        if (i == 4) m.block_copy(block[(n + 3) % kNodes], block[n], 64);
        m.access_words(cell[(n + i * 7) % kNodes], 3, /*write=*/i % 2 == 1);
        acc ^= m.fetch_or_u32(counter[(n + i) % kNodes], 1u << (n % 31));
        m.poke<std::uint32_t>(
            journal[n].plus(4 * i),
            acc ^ static_cast<std::uint32_t>(m.now() & 0xffffffffu));
      }
      if (n == kNodes - 1) {
        m.charge(2 * sim::kMillisecond);  // sleeper is parked by now
        m.wakeup(sleeper);
      }
      m.charge(1000);
    });
  }

  MeshOut out;
  out.elapsed = m.run();
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    std::uint8_t buf[64];
    auto grab = [&](PhysAddr a, std::size_t bytes) {
      m.peek_bytes(buf, a, bytes);
      out.memory.insert(out.memory.end(), buf, buf + bytes);
    };
    grab(journal[n], 4 * (kRounds + 2));
    grab(counter[n], 8);
    grab(cell[n], 8);
    grab(block[n], 64);
  }
  out.stats = snapshot_stats(m);
  out.forfeit = m.parallel_forfeit();
  out.ps = m.parallel_stats();
  return out;
}

TEST(ParsimDeterminism, MeshIsShardAndThreadCountInvariant) {
  const MeshOut golden = run_mesh(2, 1);
  ASSERT_EQ(golden.forfeit, nullptr);
  ASSERT_EQ(golden.ps.shards, 2u);
  ASSERT_GT(golden.ps.messages, 0u);
  ASSERT_GT(golden.ps.windows, 0u);

  struct Case {
    std::uint32_t shards, threads;
  };
  for (const Case c : {Case{2, 2}, Case{2, 4}, Case{4, 1}, Case{4, 2},
                       Case{4, 4}, Case{8, 2}, Case{8, 4}}) {
    const MeshOut got = run_mesh(c.shards, c.threads);
    EXPECT_EQ(got.forfeit, nullptr);
    EXPECT_EQ(got.ps.shards, c.shards);
    EXPECT_TRUE(got == golden)
        << "divergence at shards=" << c.shards << " threads=" << c.threads
        << " (elapsed " << got.elapsed << " vs " << golden.elapsed << ")";
  }
}

TEST(ParsimDeterminism, MeshIsFastpathInvariant) {
  const MeshOut on = run_mesh(2, 2, /*fastpath=*/true);
  const MeshOut off = run_mesh(2, 2, /*fastpath=*/false);
  EXPECT_TRUE(on == off)
      << "the charge() fast path must be a pure host optimization";
}

// --- Contract 2: single fiber, serial equality -----------------------------

struct SoloOut {
  Time elapsed = 0;
  std::vector<std::uint8_t> memory;
  std::vector<std::uint64_t> stats;

  bool operator==(const SoloOut& o) const {
    return elapsed == o.elapsed && memory == o.memory && stats == o.stats;
  }
};

// One fiber on node 0 visits every node with every operation kind.  With a
// single fiber there is no contention, so issue order == arrival order and
// the split-phase parallel engine must reproduce the serial engine bit for
// bit — including elapsed time and queue/stall accounting.
SoloOut run_solo(std::uint32_t shards) {
  constexpr std::uint32_t kNodes = 16;
  Machine m(par_cfg(kNodes, shards, /*threads=*/2));
  std::vector<PhysAddr> word(kNodes), blk(kNodes), blk2(kNodes);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    word[n] = m.alloc(n, 16);
    blk[n] = m.alloc(n, 96);
    blk2[n] = m.alloc(n, 96);
  }

  m.spawn(0, [&] {
    std::uint64_t acc = 1;
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      m.charge(300);
      m.write<std::uint64_t>(word[n], acc * 0x9e3779b97f4a7c15ULL);
      acc += m.read<std::uint64_t>(word[n]);
      acc += m.fetch_add_u32(word[n].plus(8), static_cast<std::uint32_t>(n));
      acc += m.fetch_or_u32(word[n].plus(8), 1u << (n % 31));
      acc += m.test_and_set(word[n].plus(12));
      m.access_words(word[n], 5, /*write=*/false);
      m.access_words(word[n], 4, /*write=*/true);
      std::uint8_t buf[96];
      for (std::uint32_t j = 0; j < 96; ++j)
        buf[j] = static_cast<std::uint8_t>(acc + j * 3);
      m.block_write(blk[n], buf, 96);
      std::uint8_t back[96];
      m.block_read(back, blk[n], 96);
      acc += back[95];
      m.block_copy(blk2[n], blk[(n + 1) % kNodes], 96);
      m.block_copy(blk2[(n + 5) % kNodes], blk[n], 64);
    }
    m.write<std::uint64_t>(word[0], acc);
    m.charge(10 * sim::kMicrosecond);  // dominate fire-and-forget tails
  });

  SoloOut out;
  out.elapsed = m.run();
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    std::uint8_t buf[96];
    auto grab = [&](PhysAddr a, std::size_t bytes) {
      m.peek_bytes(buf, a, bytes);
      out.memory.insert(out.memory.end(), buf, buf + bytes);
    };
    grab(word[n], 16);
    grab(blk[n], 96);
    grab(blk2[n], 96);
  }
  out.stats = snapshot_stats(m);
  return out;
}

TEST(ParsimDeterminism, UncontendedSingleFiberMatchesSerialExactly) {
  const SoloOut serial = run_solo(1);
  const SoloOut two = run_solo(2);
  const SoloOut four = run_solo(4);
  EXPECT_TRUE(two == serial)
      << "k=2 elapsed " << two.elapsed << " vs serial " << serial.elapsed;
  EXPECT_TRUE(four == serial)
      << "k=4 elapsed " << four.elapsed << " vs serial " << serial.elapsed;
}

// --- Contract 3: forfeited workloads are byte-identical --------------------

TEST(ParsimForfeitIdentity, GaussUsAndSmpAreShardCountIndependent) {
  apps::GaussConfig gc;
  gc.n = 24;
  gc.processors = 8;
  gc.memory_nodes = 8;
  for (auto solve : {apps::gauss_us, apps::gauss_smp}) {
    apps::GaussResult base;
    for (int i = 0; std::uint32_t shards : {1u, 2u, 4u}) {
      Machine m(par_cfg(16, shards, 2));
      const apps::GaussResult r = solve(m, gc);
      if (shards > 1) {
        EXPECT_NE(m.parallel_forfeit(), nullptr);
      }
      EXPECT_EQ(m.parallel_stats().shards, 0u);
      if (i++ == 0) {
        base = r;
        EXPECT_LT(apps::gauss_error(r, gc.n, gc.seed), 1e-6);
      } else {
        EXPECT_EQ(r.elapsed, base.elapsed) << "shards=" << shards;
        EXPECT_EQ(r.solution, base.solution) << "shards=" << shards;
      }
    }
  }
}

TEST(ParsimForfeitIdentity, BitonicSortIsShardCountIndependent) {
  apps::SortConfig sc;
  sc.n = 256;
  sc.processors = 4;
  apps::SortResult base;
  for (int i = 0; std::uint32_t shards : {1u, 2u, 4u}) {
    Machine m(par_cfg(16, shards, 2));
    const apps::SortResult r = apps::bitonic_sort(m, sc);
    EXPECT_FALSE(r.deadlocked);
    if (i++ == 0) {
      base = r;
      EXPECT_TRUE(std::is_sorted(r.keys.begin(), r.keys.end()));
    } else {
      EXPECT_EQ(r.elapsed, base.elapsed) << "shards=" << shards;
      EXPECT_EQ(r.keys, base.keys) << "shards=" << shards;
    }
  }
}

// Instant Replay log equality: the racy CREW monitor cell (Kernel +
// Monitor both force a forfeit) must record the *same interleaving* at any
// host_shards setting.
struct RacyOut {
  std::vector<std::uint32_t> order;
  replay::Log log;
  Time elapsed = 0;
};

RacyOut run_racy(std::uint32_t shards) {
  constexpr std::uint32_t kActors = 3;
  constexpr std::uint32_t kRounds = 4;
  Machine m(par_cfg(8, shards, 2));
  chrys::Kernel k(m);
  replay::Monitor mon(k, kActors);
  RacyOut out;
  const std::uint32_t obj = mon.register_object(0, "counter");
  mon.set_mode(replay::Mode::kRecord);

  sim::Rng jitter(1111);
  std::vector<Time> delays;
  for (std::uint32_t i = 0; i < kActors * kRounds; ++i)
    delays.push_back((1 + jitter.below(40)) * 100 * sim::kMicrosecond);

  for (std::uint32_t a = 0; a < kActors; ++a) {
    k.create_process(a % m.nodes(), [&, a] {
      for (std::uint32_t r = 0; r < kRounds; ++r) {
        k.delay(delays[a * kRounds + r]);
        mon.begin_write(a, obj);
        out.order.push_back(a);
        m.charge(500 * sim::kMicrosecond);
        mon.end_write(a, obj);
      }
    });
  }
  out.elapsed = m.run();
  out.log = mon.take_log();
  return out;
}

void expect_logs_equal(const replay::Log& a, const replay::Log& b) {
  ASSERT_EQ(a.per_actor.size(), b.per_actor.size());
  for (std::size_t i = 0; i < a.per_actor.size(); ++i) {
    ASSERT_EQ(a.per_actor[i].size(), b.per_actor[i].size()) << "actor " << i;
    for (std::size_t j = 0; j < a.per_actor[i].size(); ++j) {
      const replay::AccessEntry& x = a.per_actor[i][j];
      const replay::AccessEntry& y = b.per_actor[i][j];
      EXPECT_EQ(x.object, y.object);
      EXPECT_EQ(x.version, y.version);
      EXPECT_EQ(x.readers, y.readers);
      EXPECT_EQ(x.is_write, y.is_write);
      EXPECT_EQ(x.at, y.at);
    }
  }
}

TEST(ParsimForfeitIdentity, InstantReplayLogsAreShardCountIndependent) {
  const RacyOut one = run_racy(1);
  const RacyOut two = run_racy(2);
  const RacyOut four = run_racy(4);
  EXPECT_EQ(one.order, two.order);
  EXPECT_EQ(one.order, four.order);
  EXPECT_EQ(one.elapsed, two.elapsed);
  EXPECT_EQ(one.elapsed, four.elapsed);
  expect_logs_equal(one.log, two.log);
  expect_logs_equal(one.log, four.log);
}

// FaultPlan-active chaos cell (compact version of tests/serve/chaos_test):
// silent kills + replicated serving + failure detection.  The FaultPlan
// forfeits the parallel engine, so every shard count replays the identical
// chaotic run.
struct ChaosOut {
  Time elapsed = 0;
  std::uint64_t ok = 0, failed = 0;
  std::uint64_t content_hash = 0;
  const char* forfeit = "";

  bool operator==(const ChaosOut& o) const {
    return elapsed == o.elapsed && ok == o.ok && failed == o.failed &&
           content_hash == o.content_hash;
  }
};

ChaosOut run_chaos_cell(std::uint32_t shards) {
  sim::FaultPlan plan;
  plan.kill_silent(1, 300 * sim::kMillisecond);
  sim::MachineConfig cfg = par_cfg(16, shards, 2);
  Machine m(cfg, plan);
  chrys::Kernel k(m);
  ChaosOut out;
  constexpr std::uint32_t kBlocks = 4;
  constexpr std::uint32_t kOps = 12;

  k.create_process(15, [&] {
    bridge::BridgeFs fs(k, 8);
    {
      rescue::RescueConfig rc;
      rc.monitor_node = 14;
      rescue::Membership mem(k, rc);
      serve::ServeConfig sc;
      sc.hedge_floor = 60 * sim::kMillisecond;
      sc.min_hedge_samples = 1u << 20;
      serve::ReplicatedFs rfs(k, fs, &mem, sc);
      const bridge::FileId f = rfs.open("parsim-chaos", kBlocks);
      std::vector<std::uint8_t> blk(bridge::kBlockSize), back(
          bridge::kBlockSize);
      for (std::uint32_t b = 0; b < kBlocks; ++b) {
        for (std::size_t i = 0; i < blk.size(); ++i)
          blk[i] = static_cast<std::uint8_t>(b * 41 + i * 7);
        if (rfs.write(f, b, blk.data()) == serve::Status::kOk)
          ++out.ok;
        else
          ++out.failed;
      }
      mem.start();
      sim::Rng pace(7);
      for (std::uint32_t op = 0; op < kOps; ++op) {
        k.delay((1 + pace.below(30)) * 10 * sim::kMillisecond);
        const std::uint32_t b = op % kBlocks;
        serve::Status st;
        if (op % 3 == 2) {
          for (std::size_t i = 0; i < blk.size(); ++i)
            blk[i] = static_cast<std::uint8_t>(op + b * 41 + i * 7);
          st = rfs.write(f, b, blk.data());
        } else {
          st = rfs.read(f, b, back.data());
        }
        if (st == serve::Status::kOk)
          ++out.ok;
        else
          ++out.failed;
      }
      for (std::uint32_t b = 0; b < kBlocks; ++b) {
        if (rfs.read(f, b, back.data()) != serve::Status::kOk) continue;
        for (std::size_t i = 0; i < back.size(); ++i)
          out.content_hash = out.content_hash * 1099511628211ULL + back[i];
      }
      mem.stop();
    }
    fs.shutdown();
  });

  out.elapsed = m.run();
  out.forfeit = m.parallel_forfeit();
  return out;
}

TEST(ParsimForfeitIdentity, FaultPlanChaosCellIsShardCountIndependent) {
  const ChaosOut one = run_chaos_cell(1);
  const ChaosOut two = run_chaos_cell(2);
  const ChaosOut four = run_chaos_cell(4);
  EXPECT_STREQ(one.forfeit, "host_shards=1");
  EXPECT_STREQ(two.forfeit, "fault plan or kill_node active");
  EXPECT_STREQ(four.forfeit, "fault plan or kill_node active");
  EXPECT_GT(one.ok, 0u);
  EXPECT_TRUE(two == one);
  EXPECT_TRUE(four == one);
}

}  // namespace
}  // namespace bfly
