// Unit tests for the parsim primitives (mailbox, barrier, driver) with NO
// fibers and NO Machine: everything here runs on plain host threads, which
// is what lets ci/check.sh rebuild this one binary under ThreadSanitizer
// (the parsim-tsan stage) without ucontext annotations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parsim/barrier.hpp"
#include "parsim/driver.hpp"
#include "parsim/mailbox.hpp"
#include "parsim/msg.hpp"

namespace bfly::parsim {
namespace {

Msg make_msg(sim::Time arrive, std::uint32_t src, std::uint64_t seq) {
  Msg m;
  m.arrive = arrive;
  m.src_node = src;
  m.seq = seq;
  m.value = arrive * 1000 + src * 10 + seq;
  return m;
}

TEST(Mailbox, DrainSortsIntoDeterministicDeliveryOrder) {
  Mailbox box;
  // Deliberately shuffled: ties on arrive break by src_node, then seq.
  box.send(make_msg(30, 1, 0));
  box.send(make_msg(10, 2, 5));
  box.send(make_msg(10, 0, 1));
  box.send(make_msg(10, 0, 0));
  box.send(make_msg(20, 3, 2));
  EXPECT_EQ(box.size(), 5u);

  std::vector<Msg> out;
  box.drain(&out);
  EXPECT_EQ(box.size(), 0u);
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_TRUE(msg_before(out[i - 1], out[i]))
        << "delivery order must be strictly increasing at index " << i;
  EXPECT_EQ(out[0].src_node, 0u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[1].seq, 1u);
  EXPECT_EQ(out[2].src_node, 2u);
  EXPECT_EQ(out[4].arrive, 30u);
}

TEST(Mailbox, ConcurrentSendersAllLandAndOrderIsScheduleIndependent) {
  constexpr std::uint32_t kSenders = 4;
  constexpr std::uint32_t kPerSender = 200;
  Mailbox box;
  std::vector<std::thread> threads;
  for (std::uint32_t s = 0; s < kSenders; ++s) {
    threads.emplace_back([&box, s] {
      for (std::uint32_t i = 0; i < kPerSender; ++i)
        box.send(make_msg(/*arrive=*/i % 17, /*src=*/s, /*seq=*/i));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(box.size(), kSenders * kPerSender);

  std::vector<Msg> out;
  box.drain(&out);
  ASSERT_EQ(out.size(), kSenders * kPerSender);
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_TRUE(msg_before(out[i - 1], out[i]));
}

TEST(SpinBarrier, PublishesAllWritesAcrossRounds) {
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint32_t kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::vector<std::uint64_t> slot(kThreads, 0);
  std::vector<int> failures(kThreads, 0);

  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t r = 1; r <= kRounds; ++r) {
        slot[t] = r;                 // write my slot...
        barrier.arrive_and_wait();   // ...publish to everyone
        for (std::uint32_t o = 0; o < kThreads; ++o)
          if (slot[o] != r) ++failures[t];
        barrier.arrive_and_wait();   // nobody starts round r+1 early
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::uint32_t t = 0; t < kThreads; ++t)
    EXPECT_EQ(failures[t], 0) << "thread " << t
                              << " saw a stale slot after the barrier";
}

// --- A miniature ShardProgram: token rings over mailboxes ------------------
//
// Each shard owns a sorted event list and an inbox.  Applying an event
// journals (arrive, src_node, seq) and forwards the token to the next shard
// with arrive += hop, until `limit`.  The journals are a complete record of
// the delivery order, so comparing them across thread counts is the
// determinism check.
struct RingProgram final : ShardProgram {
  struct Shard {
    std::vector<Msg> heap;  // kept sorted by msg_before
    Mailbox inbox;
    std::vector<std::uint64_t> journal;
  };

  RingProgram(std::uint32_t shards, sim::Time hop, sim::Time limit)
      : hop_(hop), limit_(limit), shard_(shards) {}

  void seed_token(std::uint32_t shard, sim::Time at, std::uint32_t src) {
    Msg m = make_msg(at, src, seq_[src]++);
    shard_[shard].inbox.send(std::move(m));
  }

  void shard_drain(std::uint32_t s) override {
    Shard& sh = shard_[s];
    sh.inbox.drain(&sh.heap);
    std::sort(sh.heap.begin(), sh.heap.end(), msg_before);
  }

  sim::Time shard_next_time(std::uint32_t s) override {
    return shard_[s].heap.empty() ? kTimeNever : shard_[s].heap.front().arrive;
  }

  void shard_window(std::uint32_t s, sim::Time edge) override {
    Shard& sh = shard_[s];
    std::size_t i = 0;
    for (; i < sh.heap.size() && sh.heap[i].arrive < edge; ++i) {
      const Msg& m = sh.heap[i];
      if (throw_at_ != 0 && m.arrive >= throw_at_)
        throw std::runtime_error("injected shard failure");
      sh.journal.push_back(m.arrive * 1000000 + m.src_node * 1000 + m.seq);
      if (m.arrive + hop_ < limit_) {
        Msg fwd = make_msg(m.arrive + hop_, m.src_node,
                           seq_local(s, m.src_node));
        shard_[(s + 1) % shard_.size()].inbox.send(std::move(fwd));
      }
    }
    sh.heap.erase(sh.heap.begin(), sh.heap.begin() + i);
  }

  // Per-(shard, token) sequence counters: only the shard holding the token
  // increments, so no synchronization — mirroring Machine's per-node seq.
  std::uint64_t seq_local(std::uint32_t s, std::uint32_t src) {
    return seq_grid_[s * 16 + src]++;
  }

  sim::Time hop_;
  sim::Time limit_;
  sim::Time throw_at_ = 0;
  std::vector<Shard> shard_;
  std::uint64_t seq_[16] = {};
  std::uint64_t seq_grid_[16 * 16] = {};
};

std::vector<std::vector<std::uint64_t>> run_ring(std::uint32_t shards,
                                                 std::uint32_t threads,
                                                 DriverStats* stats = nullptr) {
  RingProgram prog(shards, /*hop=*/7, /*limit=*/700);
  for (std::uint32_t s = 0; s < shards; ++s)
    prog.seed_token(s, /*at=*/s + 1, /*src=*/s);
  Driver d(prog, shards, threads, /*lookahead=*/7);
  d.run();
  if (stats != nullptr) *stats = d.stats();
  std::vector<std::vector<std::uint64_t>> out;
  for (auto& sh : prog.shard_) out.push_back(sh.journal);
  return out;
}

TEST(Driver, TokenRingTerminatesAndEveryHopExecutes) {
  DriverStats stats;
  auto journals = run_ring(4, 1, &stats);
  std::size_t hops = 0;
  for (const auto& j : journals) hops += j.size();
  // 4 tokens, each hopping every 7 time units from its seed until 700.
  std::size_t expected = 0;
  for (std::uint32_t s = 0; s < 4; ++s)
    for (sim::Time t = s + 1; t < 700; t += 7) ++expected;
  EXPECT_EQ(hops, expected);
  EXPECT_GT(stats.windows, 0u);
  EXPECT_GT(stats.run_wall_ns, 0u);
}

TEST(Driver, JournalsAreThreadCountInvariant) {
  const auto one = run_ring(4, 1);
  const auto two = run_ring(4, 2);
  const auto four = run_ring(4, 4);
  const auto eight_threads_clamped = run_ring(4, 8);  // clamps to 4
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight_threads_clamped);
}

TEST(Driver, ZeroLookaheadDegeneratesToLockstepButTerminates) {
  RingProgram prog(3, /*hop=*/5, /*limit=*/100);
  for (std::uint32_t s = 0; s < 3; ++s) prog.seed_token(s, s + 1, s);
  Driver d(prog, 3, 3, /*lookahead=*/0);
  d.run();
  std::size_t hops = 0;
  for (auto& sh : prog.shard_) hops += sh.journal.size();
  EXPECT_GT(hops, 0u);
}

TEST(Driver, WorkerExceptionPropagatesToRun) {
  RingProgram prog(4, /*hop=*/7, /*limit=*/700);
  prog.throw_at_ = 350;
  for (std::uint32_t s = 0; s < 4; ++s) prog.seed_token(s, s + 1, s);
  Driver d(prog, 4, 2, /*lookahead=*/7);
  EXPECT_THROW(d.run(), std::runtime_error);
}

TEST(Driver, IdleProgramFinishesImmediately) {
  RingProgram prog(2, 7, 700);  // no tokens seeded
  Driver d(prog, 2, 2, 7);
  d.run();
  EXPECT_EQ(d.stats().windows, 0u);
}

}  // namespace
}  // namespace bfly::parsim
