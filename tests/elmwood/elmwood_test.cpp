#include "elmwood/elmwood.hpp"

#include <gtest/gtest.h>

namespace bfly::elmwood {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

void with_os(std::function<void(chrys::Kernel&, Elmwood&)> body) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  Elmwood os(k);
  k.create_process(0, [&] {
    body(k, os);
    os.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(Elmwood, InvokeEntryOnRemoteObject) {
  with_os([](chrys::Kernel&, Elmwood& os) {
    const Capability doubler = os.create_object(3, "doubler");
    os.add_entry(doubler, "twice",
                 [](Invocation&, std::uint64_t v) { return 2 * v; });
    EXPECT_EQ(os.invoke(doubler, "twice", 21), 42u);
    EXPECT_EQ(os.invoke(doubler, "twice", 100), 200u);
  });
}

TEST(Elmwood, UnknownEntryOrCapabilityThrows) {
  with_os([](chrys::Kernel& k, Elmwood& os) {
    const Capability obj = os.create_object(1, "o");
    os.add_entry(obj, "ok", [](Invocation&, std::uint64_t) { return 0ull; });
    int code = k.catch_block([&] { (void)os.invoke(obj, "nope", 0); });
    EXPECT_EQ(code, chrys::kThrowBadObject);
    code = k.catch_block(
        [&] { (void)os.invoke(Capability{0xdeadbeef}, "ok", 0); });
    EXPECT_EQ(code, chrys::kThrowBadObject);
  });
}

TEST(Elmwood, EntriesAreAMonitor) {
  // Two concurrent invocations of a read-modify-write entry must not race:
  // the object serializes them.
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  Elmwood os(k);
  std::uint64_t counter = 0;
  Capability obj{};
  k.create_process(0, [&] {
    obj = os.create_object(2, "counter");
    os.add_entry(obj, "bump", [&](Invocation&, std::uint64_t) {
      const std::uint64_t v = counter;
      os.invocations();  // no-op; keep the body non-trivial
      k.machine().charge(2 * sim::kMillisecond);  // wide race window
      counter = v + 1;
      return counter;
    });
    for (std::uint32_t p = 1; p <= 5; ++p)
      k.create_process(p, [&os, &obj] {
        for (int i = 0; i < 4; ++i) (void)os.invoke(obj, "bump", 0);
      });
    k.delay(400 * sim::kMillisecond);
    os.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_EQ(counter, 20u) << "monitor must serialize the RMW entries";
}

TEST(Elmwood, ReentrantEntriesOverlap) {
  // Two invocations of a reentrant entry overlap in time; the same entry
  // without the flag would take twice as long.
  auto run = [](bool reentrant) {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    Elmwood os(k);
    Time t = 0;
    k.create_process(0, [&] {
      const Capability obj = os.create_object(2, "slow");
      // The entry BLOCKS (an I/O-shaped wait): reentrancy lets a second
      // invocation proceed during the wait; a monitor entry holds everyone
      // out until it finishes.
      os.add_entry(
          obj, "work",
          [&k](Invocation&, std::uint64_t) {
            k.delay(50 * sim::kMillisecond);
            return 0ull;
          },
          reentrant);
      const Time t0 = k.now();
      chrys::Oid done = k.make_dual_queue();
      for (std::uint32_t p = 1; p <= 2; ++p)
        k.create_process(p, [&os, obj, &k, done] {
          (void)os.invoke(obj, "work", 0);
          k.dq_enqueue(done, 1);
        });
      (void)k.dq_dequeue(done);
      (void)k.dq_dequeue(done);
      t = k.now() - t0;
      os.shutdown();
    });
    m.run();
    return t;
  };
  const Time serial = run(false);
  const Time overlapped = run(true);
  EXPECT_GT(serial, 95 * sim::kMillisecond);
  EXPECT_LT(overlapped, serial - 30 * sim::kMillisecond);
}

TEST(Elmwood, NestedInvocationAcrossObjects) {
  with_os([](chrys::Kernel&, Elmwood& os) {
    const Capability inner = os.create_object(1, "inner");
    os.add_entry(inner, "add3",
                 [](Invocation&, std::uint64_t v) { return v + 3; });
    const Capability outer = os.create_object(2, "outer");
    os.add_entry(outer, "pipe", [inner](Invocation& inv, std::uint64_t v) {
      return inv.invoke(inner, "add3", v) * 10;
    });
    EXPECT_EQ(os.invoke(outer, "pipe", 4), 70u);
  });
}

TEST(Elmwood, ObjectsOnDifferentNodesRunInParallel) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  Elmwood os(k);
  Time t = 0;
  k.create_process(0, [&] {
    std::vector<Capability> objs;
    for (sim::NodeId n = 1; n <= 4; ++n) {
      const Capability o = os.create_object(n, "w" + std::to_string(n));
      os.add_entry(o, "work", [&k](Invocation&, std::uint64_t) {
        k.machine().charge(40 * sim::kMillisecond);
        return 0ull;
      });
      objs.push_back(o);
    }
    chrys::Oid done = k.make_dual_queue();
    const Time t0 = k.now();
    for (std::uint32_t i = 0; i < 4; ++i)
      k.create_process(5 + i % 3, [&os, &k, o = objs[i], done] {
        (void)os.invoke(o, "work", 0);
        k.dq_enqueue(done, 1);
      });
    for (int i = 0; i < 4; ++i) (void)k.dq_dequeue(done);
    t = k.now() - t0;
    os.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_LT(t, 100 * sim::kMillisecond)
      << "four 40ms invocations on four objects must overlap";
}

}  // namespace
}  // namespace bfly::elmwood
