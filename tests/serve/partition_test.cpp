// Partition tolerance for bfly::serve: majority-quorum writes under a
// split-brain cut (no minority-side acks), the per-block dirty log driving
// heal-time reconciliation, resync()'s majority vote over divergent
// committed writes, and Instant Replay log equality across a full
// cut-and-heal cycle.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "replay/instant_replay.hpp"
#include "serve/serve.hpp"

namespace bfly::serve {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

void fill_block(std::vector<std::uint8_t>& blk, std::uint32_t b,
                std::uint8_t salt) {
  blk.assign(bridge::kBlockSize, 0);
  for (std::size_t i = 0; i < bridge::kBlockSize; ++i)
    blk[i] = static_cast<std::uint8_t>((b * 41 + i * 7 + salt) % 247);
}

// Replica placement is a pure function of (file, block, server count), so a
// plan-free probe run tells us which server nodes hold block 0's three
// replicas — the partition plans below are built around that answer.
std::array<sim::NodeId, 3> replica_nodes_of_block0() {
  std::array<sim::NodeId, 3> nodes{};
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  k.create_process(7, [&] {
    bridge::BridgeFs fs(k, 4);
    {
      ReplicatedFs rfs(k, fs);
      const bridge::FileId f = rfs.open("probe", 4);
      for (std::uint32_t r = 0; r < 3; ++r)
        nodes[r] = fs.server_node(rfs.replica_server(f, 0, r));
    }
    fs.shutdown();
  });
  m.run();
  return nodes;
}

// --- Quorum refusal, dirty log, heal-driven reconciliation ----------------
// The cut isolates replica 0 (plus a client on node 4) from replicas 1-2
// (plus a client on node 5).  The fourth server, the orchestrator (node 7)
// and the repair worker (node 6) sit on neither side and keep full
// connectivity throughout.

TEST(ServePartition, MinoritySideIsRefusedWhileMajorityAcksThenHealReconciles) {
  const auto rep = replica_nodes_of_block0();
  sim::FaultPlan plan;
  plan.partition({rep[0], 4}, {rep[1], rep[2], 5}, 200 * sim::kMillisecond,
                 600 * sim::kMillisecond);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  Status st_minority = Status::kOk;
  Status st_majority = Status::kTimeout;
  std::uint32_t clients_done = 0;
  std::size_t dirty_mid = 0;
  bool mid_read_ok = false, mid_matches_majority = false;
  k.create_process(7, [&] {
    bridge::BridgeFs fs(k, 4);
    {
      ReplicatedFs rfs(k, fs);
      const bridge::FileId f = rfs.open("split", 4);
      std::vector<std::uint8_t> seed, majority_blk, back(bridge::kBlockSize);
      fill_block(seed, 0, 1);
      EXPECT_EQ(rfs.write(f, 0, seed.data()), Status::kOk);  // pre-cut: 3-way
      rfs.start_repair(6);

      // Minority client: reaches only replica 0 — one commit out of a
      // 2-of-3 quorum, so the write must be refused, and the rogue commit
      // dirty-logged for the heal to revert.
      k.create_process(4, [&] {
        k.delay(300 * sim::kMillisecond);
        std::vector<std::uint8_t> y;
        fill_block(y, 0, 2);
        st_minority = rfs.write(f, 0, y.data());
        ++clients_done;
      });
      // Majority client: replicas 1-2 commit, replica 0 is unreachable —
      // acked, with the stale arm dirty-logged.
      k.create_process(5, [&] {
        k.delay(400 * sim::kMillisecond);
        fill_block(majority_blk, 0, 3);
        st_majority = rfs.write(f, 0, majority_blk.data());
        std::vector<std::uint8_t> mb(bridge::kBlockSize);
        if (rfs.read(f, 0, mb.data()) == Status::kOk) {
          mid_read_ok = true;  // read routed around the unreachable replica
          mid_matches_majority = (mb == majority_blk);
        }
        ++clients_done;
      });
      while (clients_done < 2) k.delay(10 * sim::kMillisecond);
      dirty_mid = rfs.dirty_blocks();
      while (m.now() < 700 * sim::kMillisecond)
        k.delay(10 * sim::kMillisecond);  // heal fires at 600 ms
      for (int i = 0; i < 200 && !rfs.repair_idle(); ++i)
        k.delay(10 * sim::kMillisecond);
      EXPECT_TRUE(rfs.repair_idle());
      EXPECT_EQ(rfs.dirty_blocks(), 0u) << "dirty log drained by the heal";
      EXPECT_EQ(rfs.read(f, 0, back.data()), Status::kOk);
      EXPECT_EQ(back, majority_blk) << "the acked write is the survivor";
      EXPECT_EQ(rfs.live_replicas(f, 0), 3u);
      EXPECT_EQ(rfs.resync(f), 0u) << "reconciliation already converged it";
      EXPECT_EQ(rfs.counters().quorum_rejects, 1u);
      EXPECT_GE(rfs.counters().dirty_logged, 1u);
      EXPECT_EQ(rfs.counters().reconciled, 1u);
      EXPECT_EQ(rfs.counters().lost_blocks, 0u);
      rfs.stop_repair();
    }
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_EQ(st_minority, Status::kNoQuorum) << "no split-brain acks";
  EXPECT_EQ(st_majority, Status::kOk);
  EXPECT_TRUE(mid_read_ok);
  EXPECT_TRUE(mid_matches_majority);
  EXPECT_EQ(dirty_mid, 1u) << "both cut-window writes key the same arm";
  EXPECT_EQ(m.stats().serve_quorum_rejects, 1u);
  EXPECT_GE(m.stats().serve_dirty_logged, 1u);
  EXPECT_EQ(m.stats().serve_reconciled, 1u);
}

// --- resync() with divergent committed writes on both sides ---------------
// At heal time replica 0 holds the refused minority write and replicas 1-2
// hold the acked majority write: three committed copies, two contents.  The
// foreground majority vote must pick the acked content and rewrite the
// rogue replica — zero acked writes lost.

TEST(ServePartition, ResyncMajorityVoteHealsDivergentCommittedWrites) {
  const auto rep = replica_nodes_of_block0();
  sim::FaultPlan plan;
  plan.partition({rep[0], 4}, {rep[1], rep[2], 5}, 100 * sim::kMillisecond,
                 400 * sim::kMillisecond);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  Status minority = Status::kOk;
  Status majority = Status::kTimeout;
  std::uint32_t done = 0;
  k.create_process(7, [&] {
    bridge::BridgeFs fs(k, 4);
    {
      ReplicatedFs rfs(k, fs);
      const bridge::FileId f = rfs.open("diverge", 4);
      std::vector<std::uint8_t> seed, x, back(bridge::kBlockSize);
      fill_block(seed, 0, 1);
      EXPECT_EQ(rfs.write(f, 0, seed.data()), Status::kOk);
      k.create_process(4, [&] {
        k.delay(150 * sim::kMillisecond);
        std::vector<std::uint8_t> y;
        fill_block(y, 0, 2);
        minority = rfs.write(f, 0, y.data());  // rogue commit on replica 0
        ++done;
      });
      k.create_process(5, [&] {
        k.delay(200 * sim::kMillisecond);
        std::vector<std::uint8_t> xb;
        fill_block(xb, 0, 3);
        majority = rfs.write(f, 0, xb.data());  // acked on replicas 1-2
        ++done;
      });
      while (done < 2) k.delay(10 * sim::kMillisecond);
      while (m.now() < 450 * sim::kMillisecond)
        k.delay(10 * sim::kMillisecond);  // past the heal
      EXPECT_EQ(rfs.resync_block(f, 0), 1u) << "one rogue replica rewritten";
      EXPECT_EQ(rfs.resync_block(f, 0), 0u) << "second pass: converged";
      EXPECT_EQ(rfs.read(f, 0, back.data()), Status::kOk);
      fill_block(x, 0, 3);
      EXPECT_EQ(back, x) << "majority (acked) content wins the vote";
      EXPECT_EQ(rfs.live_replicas(f, 0), 3u);
    }
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_EQ(minority, Status::kNoQuorum);
  EXPECT_EQ(majority, Status::kOk);
}

// --- Instant Replay log equality across a cut-and-heal cycle --------------
// Three actors race monitored writes while driving serve traffic through a
// partition that cuts them off from two of the four servers: quorum
// refusals, dirty logging and the heal-time reconcile all ride the layer's
// seeded PRNG, so two runs must produce field-identical record logs.

struct PartitionReplayRun {
  replay::Log log;
  Time elapsed = 0;
  std::uint64_t ok = 0;
  std::uint64_t noquorum = 0;
  ServeCounters counters;
};

PartitionReplayRun run_partition_replay_workload() {
  // Seeding six 3-way blocks costs ~180 ms of simulated time, so the window
  // opens at 260 ms — just before the actors' first writes — and heals at
  // 700 ms, deep enough that every write round runs against the cut.
  sim::FaultPlan plan;
  plan.partition({0, 1}, {4, 5, 6}, 260 * sim::kMillisecond,
                 700 * sim::kMillisecond);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  replay::Monitor mon(k, 3);
  // The monitored cell lives on node 7 — on neither side of the cut — so
  // actors reach it throughout the window.
  const std::uint32_t obj = mon.register_object(7, "cell");
  mon.set_mode(replay::Mode::kRecord);
  PartitionReplayRun out;
  k.create_process(7, [&] {
    bridge::BridgeFs fs(k, 4);
    {
      ServeConfig cfg;
      cfg.deadline = 5 * sim::kSecond;
      ReplicatedFs rfs(k, fs, nullptr, cfg);
      const bridge::FileId f = rfs.open("data", 16);
      std::vector<std::uint8_t> blk;
      for (std::uint32_t b = 0; b < 6; ++b) {
        fill_block(blk, b, 3);
        EXPECT_EQ(rfs.write(f, b, blk.data()), Status::kOk);
      }
      rfs.start_repair(7);
      std::uint32_t live = 0;
      sim::Rng jitter(77);
      std::vector<Time> delays;
      for (std::uint32_t i = 0; i < 18; ++i)
        delays.push_back((20 + jitter.below(40)) * sim::kMillisecond);
      for (std::uint32_t a = 0; a < 3; ++a) {
        ++live;
        k.create_process(4 + a, [&, a] {
          std::vector<std::uint8_t> wblk, back(bridge::kBlockSize);
          for (std::uint32_t r = 0; r < 6; ++r) {
            k.delay(delays[a * 6 + r]);
            const std::uint32_t b = (a * 6 + r) % 6;
            Status st;
            if (r % 2 == 1) {
              fill_block(wblk, b, static_cast<std::uint8_t>(10 + r));
              st = rfs.write(f, b, wblk.data());
            } else {
              st = rfs.read(f, b, back.data());
            }
            if (st == Status::kOk) ++out.ok;
            if (st == Status::kNoQuorum) ++out.noquorum;
            mon.begin_write(a, obj);
            m.charge(300 * sim::kMicrosecond);
            mon.end_write(a, obj);
          }
          --live;
        });
      }
      while (live > 0) k.delay(20 * sim::kMillisecond);
      while (m.now() < 750 * sim::kMillisecond)
        k.delay(20 * sim::kMillisecond);  // the heal (and its reconcile) fire at 700 ms
      for (int i = 0; i < 200 && !rfs.repair_idle(); ++i)
        k.delay(20 * sim::kMillisecond);
      EXPECT_TRUE(rfs.repair_idle());
      out.counters = rfs.counters();
      rfs.stop_repair();
    }
    fs.shutdown();
  });
  out.elapsed = m.run();
  EXPECT_FALSE(m.deadlocked());
  out.log = mon.take_log();
  return out;
}

TEST(ServePartition, InstantReplayLogEqualityHoldsAcrossCutAndHeal) {
  const PartitionReplayRun a = run_partition_replay_workload();
  const PartitionReplayRun b = run_partition_replay_workload();
  // The workload genuinely exercised the partition paths...
  EXPECT_GT(a.counters.dirty_logged, 0u);
  EXPECT_GT(a.counters.reconciled, 0u);
  // ...and both runs agree on every observable.
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.noquorum, b.noquorum);
  EXPECT_EQ(a.counters.quorum_rejects, b.counters.quorum_rejects);
  EXPECT_EQ(a.counters.dirty_logged, b.counters.dirty_logged);
  EXPECT_EQ(a.counters.reconciled, b.counters.reconciled);
  EXPECT_EQ(a.counters.retries, b.counters.retries);
  EXPECT_EQ(a.counters.timeouts, b.counters.timeouts);
  ASSERT_EQ(a.log.per_actor.size(), b.log.per_actor.size());
  for (std::size_t i = 0; i < a.log.per_actor.size(); ++i) {
    ASSERT_EQ(a.log.per_actor[i].size(), b.log.per_actor[i].size())
        << "actor " << i;
    for (std::size_t j = 0; j < a.log.per_actor[i].size(); ++j) {
      const replay::AccessEntry& x = a.log.per_actor[i][j];
      const replay::AccessEntry& y = b.log.per_actor[i][j];
      EXPECT_EQ(x.object, y.object) << i << "/" << j;
      EXPECT_EQ(x.version, y.version) << i << "/" << j;
      EXPECT_EQ(x.readers, y.readers) << i << "/" << j;
      EXPECT_EQ(x.is_write, y.is_write) << i << "/" << j;
      EXPECT_EQ(x.at, y.at) << i << "/" << j;
    }
  }
}

}  // namespace
}  // namespace bfly::serve
