// bfly::serve unit behaviour: replicated placement, read-any/write-all
// survival of a replica kill, background re-replication, admission control,
// deadline budgets, and hedged reads against a gray-failed server.
#include "serve/serve.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <vector>

namespace bfly::serve {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

void fill_block(std::vector<std::uint8_t>& blk, std::uint32_t b,
                std::uint8_t salt = 0) {
  blk.assign(bridge::kBlockSize, 0);
  for (std::size_t i = 0; i < bridge::kBlockSize; ++i)
    blk[i] = static_cast<std::uint8_t>((b * 37 + i * 3 + salt) % 249);
}

void with_serve(std::uint32_t nodes, std::uint32_t servers, ServeConfig cfg,
                sim::FaultPlan plan,
                const std::function<void(chrys::Kernel&, Machine&,
                                         bridge::BridgeFs&, ReplicatedFs&)>&
                    body) {
  Machine m(butterfly1(nodes), plan);
  chrys::Kernel k(m);
  k.create_process(nodes - 1, [&] {
    bridge::BridgeFs fs(k, servers);
    {
      ReplicatedFs rfs(k, fs, nullptr, cfg);
      body(k, m, fs, rfs);
      rfs.stop_repair();
    }
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

ServeConfig quiet_cfg() {
  ServeConfig cfg;
  // A healthy Bridge access is ~26 ms, too close to the default 30 ms
  // hedge floor to keep unit-test counters clean; hedging gets its own
  // dedicated tests below.
  cfg.hedge_floor = 500 * sim::kMillisecond;
  return cfg;
}

TEST(Serve, ReplicatedRoundTrip) {
  with_serve(8, 4, quiet_cfg(), sim::FaultPlan{},
             [](chrys::Kernel&, Machine& m, bridge::BridgeFs&,
                ReplicatedFs& rfs) {
               const bridge::FileId f = rfs.open("data", 16);
               std::vector<std::uint8_t> blk, back(bridge::kBlockSize);
               for (std::uint32_t b = 0; b < 8; ++b) {
                 fill_block(blk, b);
                 ASSERT_EQ(rfs.write(f, b, blk.data()), Status::kOk);
               }
               EXPECT_EQ(rfs.blocks(f), 8u);
               for (std::uint32_t b = 0; b < 8; ++b) {
                 ASSERT_EQ(rfs.read(f, b, back.data()), Status::kOk);
                 fill_block(blk, b);
                 EXPECT_EQ(back, blk) << "block " << b;
                 EXPECT_EQ(rfs.live_replicas(f, b), 3u);
               }
               const ServeCounters& c = rfs.counters();
               EXPECT_EQ(c.reads, 8u);
               EXPECT_EQ(c.writes, 8u);
               EXPECT_EQ(c.retries, 0u);
               EXPECT_EQ(c.sheds, 0u);
               EXPECT_EQ(c.timeouts, 0u);
               EXPECT_EQ(c.failed_replicas, 0u);
               // Counters are mirrored into the machine stats for
               // fault_json() export.
               EXPECT_EQ(m.stats().serve_timeouts, 0u);
             });
}

TEST(Serve, ServiceSurvivesALoudReplicaKill) {
  // Server 1 (node 1) dies after the initial writes: every block stays
  // readable through its other replicas, and writes keep committing on the
  // survivors while the dead arm is counted and queued for repair.
  sim::FaultPlan plan;
  plan.kill(1, 800 * sim::kMillisecond);
  with_serve(
      8, 4, quiet_cfg(), plan,
      [](chrys::Kernel& k, Machine&, bridge::BridgeFs&, ReplicatedFs& rfs) {
        const bridge::FileId f = rfs.open("data", 16);
        std::vector<std::uint8_t> blk, back(bridge::kBlockSize);
        for (std::uint32_t b = 0; b < 8; ++b) {
          fill_block(blk, b);
          ASSERT_EQ(rfs.write(f, b, blk.data()), Status::kOk);
        }
        while (k.node_alive(1)) k.delay(50 * sim::kMillisecond);
        std::uint32_t degraded = 0;
        for (std::uint32_t b = 0; b < 8; ++b) {
          ASSERT_EQ(rfs.read(f, b, back.data()), Status::kOk) << "block " << b;
          fill_block(blk, b);
          EXPECT_EQ(back, blk) << "block " << b;
          if (rfs.live_replicas(f, b) < 3) ++degraded;
        }
        EXPECT_GT(degraded, 0u) << "some block must have lost a replica";
        // Writes still land on the survivors.
        for (std::uint32_t b = 0; b < 8; ++b) {
          fill_block(blk, b, /*salt=*/7);
          ASSERT_EQ(rfs.write(f, b, blk.data()), Status::kOk);
        }
        EXPECT_GT(rfs.counters().failed_replicas, 0u);
        for (std::uint32_t b = 0; b < 8; ++b) {
          ASSERT_EQ(rfs.read(f, b, back.data()), Status::kOk);
          fill_block(blk, b, /*salt=*/7);
          EXPECT_EQ(back, blk) << "block " << b;
        }
      });
}

TEST(Serve, RepairWorkerRestoresFullReplication) {
  sim::FaultPlan plan;
  plan.kill(2, 600 * sim::kMillisecond);
  with_serve(
      8, 4, quiet_cfg(), plan,
      [](chrys::Kernel& k, Machine& m, bridge::BridgeFs&, ReplicatedFs& rfs) {
        const bridge::FileId f = rfs.open("data", 16);
        std::vector<std::uint8_t> blk, back(bridge::kBlockSize);
        for (std::uint32_t b = 0; b < 8; ++b) {
          fill_block(blk, b);
          ASSERT_EQ(rfs.write(f, b, blk.data()), Status::kOk);
        }
        rfs.start_repair(6);  // a client node, not a server
        while (k.node_alive(2)) k.delay(50 * sim::kMillisecond);
        // The crash broadcast queued re-replication of everything server 2
        // held; wait for the worker to drain it.
        for (int i = 0; i < 400 && !rfs.repair_idle(); ++i)
          k.delay(20 * sim::kMillisecond);
        ASSERT_TRUE(rfs.repair_idle());
        EXPECT_GT(rfs.counters().rereplications, 0u);
        EXPECT_EQ(rfs.counters().lost_blocks, 0u);
        EXPECT_EQ(m.stats().serve_rereplications,
                  rfs.counters().rereplications);
        for (std::uint32_t b = 0; b < 8; ++b) {
          EXPECT_EQ(rfs.live_replicas(f, b), 3u) << "block " << b;
          ASSERT_EQ(rfs.read(f, b, back.data()), Status::kOk);
          fill_block(blk, b);
          EXPECT_EQ(back, blk) << "block " << b;
        }
      });
}

TEST(Serve, AdmissionControlShedsWhenEveryQueueIsOverLimit) {
  // queue_limit 0 makes every candidate shed: the layered fs must give up
  // with kShed (after its bounded retries), never hang, and count the
  // sheds.  A sibling layer with a sane limit over the same Bridge serves
  // the same data fine — placement is pure hashing, so both agree.
  with_serve(8, 4, quiet_cfg(), sim::FaultPlan{},
             [](chrys::Kernel& k, Machine& m, bridge::BridgeFs& fs,
                ReplicatedFs& rfs) {
               const bridge::FileId f = rfs.open("data", 16);
               std::vector<std::uint8_t> blk, back(bridge::kBlockSize);
               fill_block(blk, 0);
               ASSERT_EQ(rfs.write(f, 0, blk.data()), Status::kOk);

               ServeConfig strangled = quiet_cfg();
               strangled.queue_limit = 0;
               strangled.retry.attempts = 2;
               ReplicatedFs choked(k, fs, nullptr, strangled);
               (void)choked.open("data", 16);
               const Time t0 = m.now();
               EXPECT_EQ(choked.read(f, 0, back.data()), Status::kShed);
               EXPECT_EQ(choked.write(f, 0, blk.data()), Status::kShed);
               EXPECT_LT(m.now() - t0, strangled.deadline * 2);
               EXPECT_GT(choked.counters().sheds, 0u);
               EXPECT_GT(m.stats().serve_sheds, 0u);
               // The healthy layer is unbothered.
               ASSERT_EQ(rfs.read(f, 0, back.data()), Status::kOk);
               fill_block(blk, 0);
               EXPECT_EQ(back, blk);
             });
}

TEST(Serve, DeadlineBoundsRequestsAgainstAnAllSlowCluster) {
  // Both servers gray-fail with a 100x service stretch: nothing can answer
  // inside the budget, so reads and writes return kTimeout close to the
  // deadline — they never hang, and never overshoot by more than the
  // charges already in flight.
  sim::FaultPlan plan;
  plan.slow(0, sim::kMillisecond, 1000 * sim::kSecond, 100.0);
  plan.slow(1, sim::kMillisecond, 1000 * sim::kSecond, 100.0);
  ServeConfig cfg = quiet_cfg();
  cfg.replicas = 2;
  cfg.deadline = 150 * sim::kMillisecond;
  cfg.retry.attempts = 2;
  cfg.hedge_reads = false;
  with_serve(4, 2, cfg, plan,
             [&cfg](chrys::Kernel&, Machine& m, bridge::BridgeFs&,
                    ReplicatedFs& rfs) {
               const bridge::FileId f = rfs.open("data", 8);
               std::vector<std::uint8_t> blk(bridge::kBlockSize, 9);
               std::vector<std::uint8_t> back(bridge::kBlockSize);
               const Time slack = 60 * sim::kMillisecond;
               Time t0 = m.now();
               EXPECT_EQ(rfs.write(f, 0, blk.data()), Status::kTimeout);
               EXPECT_LE(m.now() - t0, cfg.deadline + slack);
               t0 = m.now();
               EXPECT_EQ(rfs.read(f, 0, back.data()), Status::kTimeout);
               EXPECT_LE(m.now() - t0, cfg.deadline + slack);
               EXPECT_GE(rfs.counters().timeouts, 2u);
               EXPECT_GE(m.stats().serve_timeouts, 2u);
             });
}

TEST(Serve, HedgedReadsBeatAGrayFailedServer) {
  // Server 2 answers 40x slow — alive to any heartbeat, lethal to tail
  // latency.  A hedged layer re-issues stragglers after ~40 ms and its
  // worst read beats the unhedged layer's by well over the 2x the serving
  // experiment demands.
  auto worst_read = [](bool hedge, std::uint64_t* hedges,
                       std::uint64_t* wins) {
    sim::FaultPlan plan;
    plan.slow(2, 2 * sim::kSecond, 1000 * sim::kSecond, 40.0);
    Machine m(butterfly1(8), plan);
    chrys::Kernel k(m);
    Time worst = 0;
    k.create_process(7, [&] {
      bridge::BridgeFs fs(k, 4);
      {
        ServeConfig cfg;
        cfg.hedge_reads = hedge;
        cfg.hedge_floor = 40 * sim::kMillisecond;
        cfg.min_hedge_samples = 1u << 20;  // pin the threshold to the floor
        cfg.deadline = 10 * sim::kSecond;
        ReplicatedFs rfs(k, fs, nullptr, cfg);
        const bridge::FileId f = rfs.open("data", 16);
        std::vector<std::uint8_t> blk, back(bridge::kBlockSize);
        for (std::uint32_t b = 0; b < 8; ++b) {
          fill_block(blk, b);
          EXPECT_EQ(rfs.write(f, b, blk.data()), Status::kOk);
        }
        while (m.now() < 2 * sim::kSecond) k.delay(100 * sim::kMillisecond);
        for (std::uint32_t pass = 0; pass < 3; ++pass) {
          for (std::uint32_t b = 0; b < 8; ++b) {
            const Time t0 = m.now();
            EXPECT_EQ(rfs.read(f, b, back.data()), Status::kOk);
            worst = std::max(worst, m.now() - t0);
            fill_block(blk, b);
            EXPECT_EQ(back, blk) << "pass " << pass << " block " << b;
          }
        }
        if (hedges != nullptr) *hedges = rfs.counters().hedges;
        if (wins != nullptr) *wins = rfs.counters().hedge_wins;
      }
      fs.shutdown();
    });
    m.run();
    EXPECT_FALSE(m.deadlocked());
    return worst;
  };
  std::uint64_t hedges = 0;
  std::uint64_t wins = 0;
  const Time hedged = worst_read(true, &hedges, &wins);
  const Time unhedged = worst_read(false, nullptr, nullptr);
  EXPECT_GT(hedges, 0u);
  EXPECT_GT(wins, 0u);
  EXPECT_LE(hedged * 2, unhedged)
      << "hedged worst " << hedged << " vs unhedged " << unhedged;
}

TEST(Serve, ConfigIsValidated) {
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  k.create_process(3, [&] {
    bridge::BridgeFs fs(k, 2);
    ServeConfig bad;
    bad.replicas = 3;  // only 2 servers
    EXPECT_THROW(ReplicatedFs(k, fs, nullptr, bad), sim::SimError);
    bad = ServeConfig{};
    bad.replicas = 0;
    EXPECT_THROW(ReplicatedFs(k, fs, nullptr, bad), sim::SimError);
    bad = ServeConfig{};
    bad.deadline = 0;
    EXPECT_THROW(ReplicatedFs(k, fs, nullptr, bad), sim::SimError);
    bad = ServeConfig{};
    bad.retry.attempts = 0;
    EXPECT_THROW(ReplicatedFs(k, fs, nullptr, bad), sim::SimError);
    ServeConfig ok;
    ok.replicas = 2;
    ReplicatedFs rfs(k, fs, nullptr, ok);
    EXPECT_THROW(rfs.open("f", 0), sim::SimError);
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

}  // namespace
}  // namespace bfly::serve
