// Chaos-style exercises for bfly::serve: staggered silent kills under a
// live client population, determinism of the whole chaotic run, Instant
// Replay log equality with serve traffic racing, and kill-during-checkpoint
// restart with under-replicated blocks converging back to full strength.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "replay/instant_replay.hpp"
#include "rescue/checkpoint.hpp"
#include "serve/serve.hpp"

namespace bfly::serve {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

void fill_block(std::vector<std::uint8_t>& blk, std::uint32_t b,
                std::uint8_t salt) {
  blk.assign(bridge::kBlockSize, 0);
  for (std::size_t i = 0; i < bridge::kBlockSize; ++i)
    blk[i] = static_cast<std::uint8_t>((b * 41 + i * 7 + salt) % 247);
}

// --- The chaos scenario ----------------------------------------------------
// 8 Bridge servers on nodes 0-7 of a 16-node machine, 4 client workers on
// nodes 9-12, a failure detector and a repair worker on client-side nodes.
// Nodes 1 and 3 go *silently* catatonic mid-run.  Each worker owns 4 blocks
// and grinds read/write cycles against them until its op budget is spent.

struct ChaosResult {
  Time elapsed = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  Time worst = 0;  // worst single-op latency
  ServeCounters counters;
  std::uint64_t content_hash = 0;
  std::uint64_t suspects = 0;
  bool deadlocked = true;
  bool converged = false;  // every block back to 3 live replicas
};

ChaosResult run_chaos() {
  sim::FaultPlan plan;
  plan.kill_silent(1, 1 * sim::kSecond);
  plan.kill_silent(3, 2 * sim::kSecond);
  Machine m(butterfly1(16), plan);
  chrys::Kernel k(m);
  ChaosResult out;
  constexpr std::uint32_t kWorkers = 4;
  constexpr std::uint32_t kBlocksPer = 4;
  constexpr std::uint32_t kOpsPer = 30;
  std::vector<std::uint8_t> last_salt(kWorkers * kBlocksPer, 0);
  std::uint32_t done = 0;

  k.create_process(15, [&] {
    bridge::BridgeFs fs(k, 8);
    {
      rescue::RescueConfig rc;
      rc.monitor_node = 14;  // keep the watchdog off the serving nodes
      rescue::Membership mem(k, rc);
      ServeConfig cfg;
      cfg.hedge_floor = 60 * sim::kMillisecond;
      cfg.min_hedge_samples = 1u << 20;  // pin the hedge trigger to the floor
      ReplicatedFs rfs(k, fs, &mem, cfg);
      const bridge::FileId f = rfs.open("chaos", 32);
      std::vector<std::uint8_t> blk;
      for (std::uint32_t b = 0; b < kWorkers * kBlocksPer; ++b) {
        fill_block(blk, b, 0);
        if (rfs.write(f, b, blk.data()) == Status::kOk)
          ++out.ok;
        else
          ++out.failed;
      }
      mem.start();
      rfs.start_repair(13);

      for (std::uint32_t w = 0; w < kWorkers; ++w) {
        k.create_process(9 + w, [&, w] {
          std::vector<std::uint8_t> wblk, wback(bridge::kBlockSize);
          sim::Rng pace(100 + w);
          for (std::uint32_t op = 0; op < kOpsPer; ++op) {
            const std::uint32_t b = w * kBlocksPer + op % kBlocksPer;
            k.delay((1 + pace.below(20)) * sim::kMillisecond);
            const Time t0 = m.now();
            Status st;
            if (op % 3 == 2) {
              const auto salt = static_cast<std::uint8_t>(1 + op % 200);
              fill_block(wblk, b, salt);
              st = rfs.write(f, b, wblk.data());
              if (st == Status::kOk) last_salt[b] = salt;
            } else {
              st = rfs.read(f, b, wback.data());
            }
            out.worst = std::max(out.worst, m.now() - t0);
            if (st == Status::kOk)
              ++out.ok;
            else
              ++out.failed;
          }
          ++done;
        });
      }
      while (done < kWorkers) k.delay(50 * sim::kMillisecond);
      // Let the repair queue drain, then verify convergence and content.
      for (int i = 0; i < 500 && !rfs.repair_idle(); ++i)
        k.delay(20 * sim::kMillisecond);
      out.converged = rfs.repair_idle();
      std::vector<std::uint8_t> back(bridge::kBlockSize);
      for (std::uint32_t b = 0; b < kWorkers * kBlocksPer; ++b) {
        if (rfs.live_replicas(f, b) != 3) out.converged = false;
        if (rfs.read(f, b, back.data()) != Status::kOk) {
          out.converged = false;
          continue;
        }
        fill_block(blk, b, last_salt[b]);
        if (back != blk) out.converged = false;
        for (std::size_t i = 0; i < back.size(); ++i)
          out.content_hash = out.content_hash * 1099511628211ULL + back[i];
      }
      out.counters = rfs.counters();
      mem.stop();
      rfs.stop_repair();
      for (int i = 0; i < 100 && !rfs.repair_idle(); ++i)
        k.delay(20 * sim::kMillisecond);
    }
    fs.shutdown();
  });
  out.elapsed = m.run();
  out.deadlocked = m.deadlocked();
  out.suspects = m.stats().suspects_declared;
  return out;
}

TEST(ServeChaos, ServiceDegradesGracefullyUnderStaggeredSilentKills) {
  const ChaosResult r = run_chaos();
  ASSERT_FALSE(r.deadlocked);
  EXPECT_EQ(r.suspects, 2u) << "both silent kills must be detected";
  const std::uint64_t total = r.ok + r.failed;
  EXPECT_EQ(total, 4u * 30u + 16u);
  // Goodput: the overwhelming majority of ops succeed through kills,
  // suspicion windows, and re-replication.
  EXPECT_GE(r.ok * 10, total * 8) << r.failed << " of " << total << " failed";
  // No request outlives its deadline budget (plus the charges already in
  // flight when it expired).
  EXPECT_LE(r.worst, ServeConfig{}.deadline + 100 * sim::kMillisecond);
  EXPECT_TRUE(r.converged) << "every block back to 3 live replicas with the "
                              "last committed content";
  EXPECT_GT(r.counters.rereplications, 0u);
  EXPECT_EQ(r.counters.lost_blocks, 0u);
}

TEST(ServeChaos, TheWholeChaoticRunIsDeterministic) {
  // Retries, hedges, sheds, kills, suspicion timing, repair placement —
  // all of it is a pure function of (config, plan, program).
  const ChaosResult a = run_chaos();
  const ChaosResult b = run_chaos();
  ASSERT_FALSE(a.deadlocked);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.worst, b.worst);
  EXPECT_EQ(a.content_hash, b.content_hash);
  EXPECT_EQ(a.counters.retries, b.counters.retries);
  EXPECT_EQ(a.counters.hedges, b.counters.hedges);
  EXPECT_EQ(a.counters.hedge_wins, b.counters.hedge_wins);
  EXPECT_EQ(a.counters.sheds, b.counters.sheds);
  EXPECT_EQ(a.counters.timeouts, b.counters.timeouts);
  EXPECT_EQ(a.counters.rereplications, b.counters.rereplications);
}

// --- Instant Replay with serve enabled ------------------------------------

struct ReplayRun {
  replay::Log log;
  Time elapsed = 0;
};

ReplayRun run_replay_workload() {
  // Three actors race monitored writes to a shared object while each also
  // drives serve traffic — including hedges against a gray-slow server, the
  // most schedule-sensitive path in the layer.  Two runs must produce
  // field-identical record logs.
  sim::FaultPlan plan;
  plan.slow(2, 200 * sim::kMillisecond, 100 * sim::kSecond, 30.0);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  replay::Monitor mon(k, 3);
  const std::uint32_t obj = mon.register_object(0, "cell");
  mon.set_mode(replay::Mode::kRecord);
  ReplayRun out;
  k.create_process(7, [&] {
    bridge::BridgeFs fs(k, 4);
    {
      ServeConfig cfg;
      cfg.hedge_floor = 50 * sim::kMillisecond;
      cfg.min_hedge_samples = 1u << 20;
      cfg.deadline = 5 * sim::kSecond;
      ReplicatedFs rfs(k, fs, nullptr, cfg);
      const bridge::FileId f = rfs.open("data", 16);
      std::vector<std::uint8_t> blk;
      for (std::uint32_t b = 0; b < 6; ++b) {
        fill_block(blk, b, 3);
        EXPECT_EQ(rfs.write(f, b, blk.data()), Status::kOk);
      }
      std::uint32_t live = 0;
      sim::Rng jitter(77);
      std::vector<Time> delays;
      for (std::uint32_t i = 0; i < 12; ++i)
        delays.push_back((1 + jitter.below(30)) * sim::kMillisecond);
      for (std::uint32_t a = 0; a < 3; ++a) {
        ++live;
        k.create_process(4 + a, [&, a] {
          std::vector<std::uint8_t> back(bridge::kBlockSize);
          for (std::uint32_t r = 0; r < 4; ++r) {
            k.delay(delays[a * 4 + r]);
            EXPECT_EQ(rfs.read(f, (a * 4 + r) % 6, back.data()), Status::kOk);
            mon.begin_write(a, obj);
            m.charge(300 * sim::kMicrosecond);
            mon.end_write(a, obj);
          }
          --live;
        });
      }
      while (live > 0) k.delay(20 * sim::kMillisecond);
      EXPECT_GT(rfs.counters().hedges, 0u);
    }
    fs.shutdown();
  });
  out.elapsed = m.run();
  EXPECT_FALSE(m.deadlocked());
  out.log = mon.take_log();
  return out;
}

TEST(ServeChaos, InstantReplayLogEqualityHoldsWithServeEnabled) {
  const ReplayRun a = run_replay_workload();
  const ReplayRun b = run_replay_workload();
  EXPECT_EQ(a.elapsed, b.elapsed);
  ASSERT_EQ(a.log.per_actor.size(), b.log.per_actor.size());
  for (std::size_t i = 0; i < a.log.per_actor.size(); ++i) {
    ASSERT_EQ(a.log.per_actor[i].size(), b.log.per_actor[i].size())
        << "actor " << i;
    for (std::size_t j = 0; j < a.log.per_actor[i].size(); ++j) {
      const replay::AccessEntry& x = a.log.per_actor[i][j];
      const replay::AccessEntry& y = b.log.per_actor[i][j];
      EXPECT_EQ(x.object, y.object) << i << "/" << j;
      EXPECT_EQ(x.version, y.version) << i << "/" << j;
      EXPECT_EQ(x.readers, y.readers) << i << "/" << j;
      EXPECT_EQ(x.is_write, y.is_write) << i << "/" << j;
      EXPECT_EQ(x.at, y.at) << i << "/" << j;
    }
  }
}

// --- Kill during checkpoint, restart with under-replicated blocks ---------

TEST(ServeChaos, KillDuringCheckpointRestartsAndResyncsToFullStrength) {
  // 16 KB of protected state = 4 checkpoint data blocks, so the file's
  // stripes span every server — including the one that dies.
  constexpr std::uint32_t kWords = 4096;
  bridge::StableStore store;
  // Incarnation 1: 4 servers, replicated data file, one healthy checkpoint;
  // then server 2's node dies loudly — mid-run, with the second checkpoint
  // torn by the death and half the rewrite train landing on 2 live replicas
  // only.
  {
    sim::FaultPlan plan;
    plan.kill(2, 1500 * sim::kMillisecond);
    Machine m(butterfly1(8), plan);
    chrys::Kernel k(m);
    k.create_process(7, [&] {
      bridge::BridgeFs fs(k, 4, bridge::DiskParams{}, &store);
      {
        ServeConfig cfg;
        cfg.hedge_floor = 500 * sim::kMillisecond;
        ReplicatedFs rfs(k, fs, nullptr, cfg);
        rescue::Checkpointer cp(k, fs, rescue::CheckpointConfig{1, "ckpt"});
        const sim::PhysAddr base = m.alloc(5, kWords * 4);
        cp.protect(base, kWords * 4);
        for (std::uint32_t w = 0; w < kWords; ++w)
          m.poke<std::uint32_t>(base.plus(w * 4), 0xC0DE0000u + w);
        const bridge::FileId f = rfs.open("data", 16);
        std::vector<std::uint8_t> blk;
        for (std::uint32_t b = 0; b < 8; ++b) {
          fill_block(blk, b, 0);
          ASSERT_EQ(rfs.write(f, b, blk.data()), Status::kOk);
        }
        cp.take_checkpoint();  // healthy: lands fully in ckpt.a
        while (k.node_alive(2)) k.delay(50 * sim::kMillisecond);
        // Rewrites while a server is down: each block whose stripe set
        // includes server 2 commits on 2 replicas, leaving a stale third
        // copy on the dead node's platters.
        for (std::uint32_t b = 0; b < 8; ++b) {
          fill_block(blk, b, 9);
          ASSERT_EQ(rfs.write(f, b, blk.data()), Status::kOk);
        }
        EXPECT_GT(rfs.counters().failed_replicas, 0u);
        // The checkpoint the death interrupts: its stripes on server 2
        // throw, tearing the buffer — exactly what restore() must survive.
        const int err = k.catch_block([&] { cp.take_checkpoint(); });
        EXPECT_EQ(err, chrys::kThrowNodeDead);
      }
      fs.shutdown();
    });
    m.run();
    ASSERT_FALSE(m.deadlocked());
  }
  ASSERT_FALSE(store.empty());

  // Incarnation 2: the machine reboots with every node back (the platters
  // survived; the node was repaired).  The checkpoint falls back to the
  // last valid buffer, and resync() votes the stale replicas back into
  // agreement — converging every block to 3 identical live copies.
  {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    k.create_process(7, [&] {
      bridge::BridgeFs fs(k, 4, bridge::DiskParams{}, &store);
      {
        ServeConfig cfg;
        cfg.hedge_floor = 500 * sim::kMillisecond;
        ReplicatedFs rfs(k, fs, nullptr, cfg);
        rescue::Checkpointer cp(k, fs, rescue::CheckpointConfig{1, "ckpt"});
        const sim::PhysAddr base = m.alloc(5, kWords * 4);
        cp.protect(base, kWords * 4);
        ASSERT_TRUE(cp.restore()) << "torn buffer must fall back, not fail";
        for (std::uint32_t w = 0; w < kWords; ++w)
          ASSERT_EQ(m.peek<std::uint32_t>(base.plus(w * 4)), 0xC0DE0000u + w)
              << "word " << w;
        const bridge::FileId f = rfs.open("data", 16);
        EXPECT_EQ(rfs.blocks(f), 8u);
        const std::uint32_t rewrites = rfs.resync(f);
        EXPECT_GT(rewrites, 0u) << "stale third copies must be repaired";
        EXPECT_EQ(rfs.resync(f), 0u) << "second pass: already converged";
        std::vector<std::uint8_t> blk, back(bridge::kBlockSize);
        for (std::uint32_t b = 0; b < 8; ++b) {
          EXPECT_EQ(rfs.live_replicas(f, b), 3u);
          ASSERT_EQ(rfs.read(f, b, back.data()), Status::kOk);
          fill_block(blk, b, 9);
          EXPECT_EQ(back, blk) << "block " << b;
        }
      }
      fs.shutdown();
    });
    m.run();
    ASSERT_FALSE(m.deadlocked());
  }
}

}  // namespace
}  // namespace bfly::serve
