// The charge() switch-free fast path: legality and A/B equivalence at the
// raw-machine level.  (The app-level determinism suite — Gauss, sorts, SMP,
// Instant Replay log equality — lives in tests/integration.)
#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::sim {
namespace {

MachineConfig cfg_fast(std::uint32_t nodes, bool fast) {
  MachineConfig c = butterfly1(nodes);
  c.host_fastpath = fast;
  return c;
}

TEST(Fastpath, SoloFiberChargesWithoutContextSwitches) {
  Machine m(cfg_fast(4, true));
  m.spawn(0, [&] {
    for (int i = 0; i < 100; ++i) m.charge(10);
  });
  m.run();
  EXPECT_EQ(m.now(), 1000u);
  const HostPerf hp = m.host_perf();
  EXPECT_TRUE(hp.fastpath_enabled);
  EXPECT_EQ(hp.fastpath_charges, 100u);
  EXPECT_EQ(hp.fiber_resumes, 1u);       // the initial spawn resume only
  EXPECT_EQ(hp.events_dispatched, 1u);
}

TEST(Fastpath, DisabledByConfigTakesSlowPath) {
  Machine m(cfg_fast(4, false));
  m.spawn(0, [&] {
    for (int i = 0; i < 100; ++i) m.charge(10);
  });
  m.run();
  EXPECT_EQ(m.now(), 1000u);  // simulated outcome identical
  const HostPerf hp = m.host_perf();
  EXPECT_FALSE(hp.fastpath_enabled);
  EXPECT_EQ(hp.fastpath_charges, 0u);
  EXPECT_EQ(hp.fiber_resumes, 101u);  // spawn + one per charge
}

TEST(Fastpath, EnvVarForcesOff) {
  ASSERT_EQ(setenv("BFLY_NO_FASTPATH", "1", 1), 0);
  Machine m(cfg_fast(4, true));
  unsetenv("BFLY_NO_FASTPATH");
  EXPECT_FALSE(m.fastpath_enabled());
  m.spawn(0, [&] { m.charge(10); });
  m.run();
  EXPECT_EQ(m.host_perf().fastpath_charges, 0u);
}

TEST(Fastpath, EnvVarZeroMeansOn) {
  ASSERT_EQ(setenv("BFLY_NO_FASTPATH", "0", 1), 0);
  Machine m(cfg_fast(4, true));
  unsetenv("BFLY_NO_FASTPATH");
  EXPECT_TRUE(m.fastpath_enabled());
}

TEST(Fastpath, StrictlyEarlierRequired_TiedEventRunsFirst) {
  // A pending event at exactly the fiber's resume time must win (it holds
  // the older sequence number), so charge() may not warp over it.
  Machine m(cfg_fast(4, true));
  std::vector<int> order;
  m.engine().post_at(10, [&] { order.push_back(1); });
  m.spawn(0, [&] {
    m.charge(10);  // resume would tie with the t=10 closure: slow path
    order.push_back(2);
  });
  m.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(m.host_perf().fastpath_charges, 0u);
}

TEST(Fastpath, EarlierResumeWarpsOverLaterEvent) {
  Machine m(cfg_fast(4, true));
  std::vector<int> order;
  m.engine().post_at(100, [&] { order.push_back(2); });
  m.spawn(0, [&] {
    m.charge(10);  // strictly earlier than t=100: warp, no yield
    order.push_back(1);
  });
  m.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_GE(m.host_perf().fastpath_charges, 1u);
}

TEST(Fastpath, StopRequestForcesSlowPath) {
  // A fiber that stops the engine and then charges must actually stop: the
  // fast path may not warp past a requested stop.
  auto run_one = [](bool fast) {
    Machine m(cfg_fast(4, fast));
    bool resumed_after_stop = false;
    Fiber* f = m.spawn(0, [&] {
      m.engine().stop();
      m.charge(10);
      resumed_after_stop = true;
    });
    m.run();
    EXPECT_FALSE(resumed_after_stop);
    EXPECT_FALSE(f->finished());
    return m.engine().pending();
  };
  EXPECT_EQ(run_one(true), run_one(false));
}

TEST(Fastpath, ObserverAttachDisablesFastPath) {
  struct NullObserver : MemObserver {
    void on_access(Fiber*, NodeId, PhysAddr, std::uint32_t, MemOp) override {}
    void on_spawn(Fiber*, Fiber*) override {}
    void on_free(PhysAddr, std::size_t) override {}
    void on_release(Fiber*, std::uint64_t) override {}
    void on_acquire(Fiber*, std::uint64_t) override {}
    void on_lock_acquire(Fiber*, std::uint64_t) override {}
    void on_lock_release(Fiber*, std::uint64_t) override {}
    void on_label(PhysAddr, std::size_t, std::string) override {}
  };
  Machine m(cfg_fast(4, true));
  NullObserver obs;
  m.set_observer(&obs);
  m.spawn(0, [&] { m.charge(10); });
  m.run();
  EXPECT_EQ(m.host_perf().fastpath_charges, 0u);
}

TEST(Fastpath, ContendedWorkloadIdenticalOnAndOff) {
  // Many fibers hammering one module: interleavings, stats, and final time
  // must be bit-identical with the fast path on and off.
  auto run_one = [](bool fast) {
    Machine m(cfg_fast(16, fast));
    PhysAddr a = m.alloc(3, 64);
    for (NodeId n = 0; n < 16; ++n) {
      m.spawn(n, [&m, a] {
        for (int i = 0; i < 20; ++i) {
          (void)m.fetch_add_u32(a, 1);
          m.charge(700);
        }
      });
    }
    const Time end = m.run();
    return std::tuple{end, m.peek<std::uint32_t>(a),
                      m.stats().total_queue_ns(),
                      m.stats().total_remote_refs()};
  };
  EXPECT_EQ(run_one(true), run_one(false));
}

TEST(Fastpath, DeadlockDetectionUnaffected) {
  Machine m(cfg_fast(4, true));
  m.spawn(0, [&] {
    m.charge(100);  // fast path
    m.park();       // nobody will wake us
  });
  m.run();
  EXPECT_TRUE(m.deadlocked());
  ASSERT_EQ(m.blocked_fibers().size(), 1u);
}

TEST(Fastpath, SleepUntilUsesFastPath) {
  Machine m(cfg_fast(4, true));
  m.spawn(0, [&] { m.sleep_until(5000); });
  m.run();
  EXPECT_EQ(m.now(), 5000u);
  EXPECT_EQ(m.host_perf().fastpath_charges, 1u);
}

}  // namespace
}  // namespace bfly::sim
