// The shared JSON writer: every byte of JSON the repo emits (fault stats,
// bench rows, scope exports) routes through it, so its escaping and comma
// placement are load-bearing for downstream scrapers and trace viewers.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "sim/json.hpp"
#include "sim/stats.hpp"

namespace bfly::sim::json {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(escape("plain text 123"), "plain text 123");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escape("tab\tnl\ncr\r"), "tab\\tnl\\ncr\\r");
  EXPECT_EQ(escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(JsonWriter, NestsObjectsAndArrays) {
  Writer w;
  w.begin_object()
      .kv("a", std::uint64_t{1})
      .key("arr")
      .begin_array()
      .value(std::uint64_t{2})
      .value("x")
      .end_array()
      .key("obj")
      .begin_object()
      .kv("b", true)
      .end_object()
      .end_object();
  EXPECT_EQ(w.str(), "{\"a\":1,\"arr\":[2,\"x\"],\"obj\":{\"b\":true}}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeZero) {
  Writer w;
  w.begin_object()
      .kv("nan", std::nan(""))
      .kv("inf", HUGE_VAL)
      .end_object();
  EXPECT_EQ(w.str(), "{\"nan\":0,\"inf\":0}");
}

TEST(JsonWriter, SignedAndUnsignedIntegers) {
  Writer w;
  w.begin_array()
      .value(std::int64_t{-7})
      .value(std::uint64_t{18446744073709551615ull})
      .value(std::int32_t{-1})
      .end_array();
  EXPECT_EQ(w.str(), "[-7,18446744073709551615,-1]");
}

TEST(JsonWriter, FragmentShapeSeparatesTopLevelPairs) {
  Writer w(Writer::kFragment);
  w.kv("a", std::uint64_t{1}).kv("b", std::uint64_t{2});
  EXPECT_EQ(w.str(), "\"a\":1,\"b\":2");
}

TEST(JsonWriter, RawSplicesFragmentsWithCommas) {
  Writer frag(Writer::kFragment);
  frag.kv("x", std::uint64_t{1}).kv("y", std::uint64_t{2});
  Writer w;
  w.begin_object().kv("head", true).raw(frag.str()).end_object();
  EXPECT_EQ(w.str(), "{\"head\":true,\"x\":1,\"y\":2}");
}

TEST(JsonWriter, FaultJsonFragmentSplices) {
  // MachineStats::fault_json() is a braceless fragment by contract; it must
  // splice into a Writer object without doubling or dropping commas.
  MachineStats st;
  st.mem_faults_injected = 3;
  Writer w;
  w.begin_object().kv("bench", "x").raw(st.fault_json()).end_object();
  const std::string out = w.str();
  EXPECT_NE(out.find("\"bench\":\"x\",\"mem_faults_injected\":3"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '}');
}

}  // namespace
}  // namespace bfly::sim::json
