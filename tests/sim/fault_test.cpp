// Deterministic fault injection at the machine level: node kills, transient
// memory faults, and switch packet faults, all reproducible from
// (config, FaultPlan) alone.
#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"

namespace bfly::sim {
namespace {

TEST(FaultPlan, EmptyPlanChangesNothing) {
  // Two machines running the same program, one with a default (empty)
  // FaultPlan passed explicitly: identical elapsed time and stats.
  auto run = [](bool with_plan) {
    Machine m = with_plan ? Machine(butterfly1(8), FaultPlan{})
                          : Machine(butterfly1(8));
    std::uint32_t sum = 0;
    const PhysAddr a = m.alloc(3, 64);
    m.poke<std::uint32_t>(a, 5);
    m.spawn(0, [&] {
      for (int i = 0; i < 50; ++i) sum += m.read<std::uint32_t>(a);
      m.write<std::uint32_t>(a, 7);
    });
    const Time t = m.run();
    return std::pair<Time, std::uint32_t>(t, sum);
  };
  const auto plain = run(false);
  const auto planned = run(true);
  EXPECT_EQ(plain.first, planned.first);
  EXPECT_EQ(plain.second, planned.second);
}

TEST(FaultPlan, KilledNodeStopsItsFibersWithoutDeadlock) {
  FaultPlan plan;
  plan.kill(1, 5 * kMillisecond);
  Machine m(butterfly1(4), plan);
  int victim_steps = 0;
  int survivor_steps = 0;
  m.spawn(1, [&] {
    for (int i = 0; i < 100; ++i) {
      m.charge(kMillisecond);
      ++victim_steps;
    }
  });
  m.spawn(0, [&] {
    for (int i = 0; i < 100; ++i) {
      m.charge(kMillisecond);
      ++survivor_steps;
    }
  });
  m.run();
  EXPECT_FALSE(m.deadlocked());
  EXPECT_EQ(survivor_steps, 100);
  EXPECT_LT(victim_steps, 100);
  EXPECT_FALSE(m.node_alive(1));
  EXPECT_TRUE(m.node_alive(0));
  EXPECT_EQ(m.dead_nodes(), 1u);
}

TEST(FaultPlan, ReferencesToADeadNodeThrow) {
  FaultPlan plan;
  plan.kill(2, kMillisecond);
  Machine m(butterfly1(4), plan);
  const PhysAddr remote = m.alloc(2, 64);
  bool threw = false;
  NodeId reported = 99;
  m.spawn(0, [&] {
    m.charge(10 * kMillisecond);  // node 2 is gone by now
    try {
      (void)m.read<std::uint32_t>(remote);
    } catch (const NodeDeadError& e) {
      threw = true;
      reported = e.node();
    }
  });
  m.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(reported, 2u);
  EXPECT_GE(m.stats().dead_node_refs, 1u);
  EXPECT_FALSE(m.deadlocked());
}

TEST(FaultPlan, AllocOnDeadNodeThrows) {
  FaultPlan plan;
  plan.kill(3, kMillisecond);
  Machine m(butterfly1(4), plan);
  bool threw = false;
  m.spawn(0, [&] {
    m.charge(10 * kMillisecond);
    try {
      (void)m.alloc(3, 64);
    } catch (const NodeDeadError&) {
      threw = true;
    }
  });
  m.run();
  EXPECT_TRUE(threw);
}

TEST(FaultPlan, TransientMemoryFaultsAreDeterministic) {
  auto run = [] {
    FaultPlan plan;
    plan.mem_fault_prob = 0.05;
    plan.seed = 1234;
    Machine m(butterfly1(8), plan);
    const PhysAddr a = m.alloc(5, 64);
    std::uint64_t faults_seen = 0;
    m.spawn(0, [&] {
      for (int i = 0; i < 400; ++i) {
        try {
          (void)m.read<std::uint32_t>(a);
        } catch (const MemoryFaultError& e) {
          ++faults_seen;
          EXPECT_EQ(e.node(), 5u);
        }
      }
    });
    const Time t = m.run();
    return std::tuple<std::uint64_t, std::uint64_t, Time>(
        faults_seen, m.stats().mem_faults_injected, t);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_GT(std::get<0>(a), 0u);
  EXPECT_EQ(std::get<0>(a), std::get<1>(a));
  // Same plan, same seed: byte-identical fault pattern and timing.
  EXPECT_EQ(a, b);
}

TEST(FaultPlan, PacketDropsAddRetryLatency) {
  auto elapsed_with = [](double drop_prob) {
    FaultPlan plan;
    plan.packet_drop_prob = drop_prob;
    plan.drop_retry_ns = 200 * kMicrosecond;
    Machine m(butterfly1(8), plan);
    const PhysAddr a = m.alloc(6, 64);
    m.spawn(0, [&] {
      for (int i = 0; i < 300; ++i) (void)m.read<std::uint32_t>(a);
    });
    const Time t = m.run();
    return std::pair<Time, std::uint64_t>(t, m.fabric().packets_dropped());
  };
  const auto faulty = elapsed_with(0.2);
  const auto clean = elapsed_with(0.0);
  EXPECT_GT(faulty.second, 0u);
  EXPECT_EQ(clean.second, 0u);
  EXPECT_GT(faulty.first, clean.first);
}

TEST(FaultPlan, PacketDelaysAddLatencyDeterministically) {
  auto run = [] {
    FaultPlan plan;
    plan.packet_delay_prob = 0.3;
    plan.packet_delay_ns = 100 * kMicrosecond;
    plan.seed = 77;
    Machine m(butterfly1(8), plan);
    const PhysAddr a = m.alloc(4, 64);
    m.spawn(0, [&] {
      for (int i = 0; i < 200; ++i) (void)m.read<std::uint32_t>(a);
    });
    const Time t = m.run();
    return std::pair<Time, std::uint64_t>(t, m.fabric().packets_delayed());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_GT(a.second, 0u);
  EXPECT_EQ(a, b);
}

TEST(FaultPlan, KillAtTimeZeroIsRejected) {
  // The machine must come up before it can fail: a Time-0 kill is a plan
  // bug, not a fault scenario, and validation says so immediately.
  FaultPlan plan;
  EXPECT_THROW(plan.kill(1, 0), SimError);
  EXPECT_TRUE(plan.node_kills.empty());  // the bad entry was not kept
}

TEST(FaultPlan, KillJustAfterTimeZeroPreventsSpawns) {
  FaultPlan plan;
  plan.kill(1, 1);  // one nanosecond in: before anything can run
  Machine m(butterfly1(4), plan);
  m.spawn(0, [&] { m.charge(kMillisecond); });
  m.run();
  EXPECT_FALSE(m.node_alive(1));
  EXPECT_THROW(m.spawn(1, [] {}), NodeDeadError);
}

TEST(FaultPlan, DuplicateKillOfSameNodeIsRejected) {
  FaultPlan plan;
  plan.kill(2, kMillisecond);
  EXPECT_THROW(plan.kill(2, 5 * kMillisecond), SimError);
  EXPECT_EQ(plan.node_kills.size(), 1u);  // first kill survives
}

TEST(FaultPlan, HealIsRejectedAsUnsupported) {
  FaultPlan plan;
  plan.kill(1, kMillisecond);
  EXPECT_THROW(plan.heal(1, 2 * kMillisecond), SimError);
}

TEST(FaultPlan, SilentKillSkipsCrashObserversButNotDeathObservers) {
  FaultPlan plan;
  plan.kill_silent(1, kMillisecond);
  plan.kill(2, 2 * kMillisecond);
  Machine m(butterfly1(4), plan);
  std::vector<NodeId> deaths, crashes;
  (void)m.on_node_death([&](NodeId n) { deaths.push_back(n); });
  const auto cid = m.on_node_crash([&](NodeId n) { crashes.push_back(n); });
  m.spawn(0, [&] { m.charge(10 * kMillisecond); });
  m.run();
  // The simulator always knows (death tier); the machine-check broadcast
  // (crash tier) fires only for the loud kill — node 1 died silently.
  EXPECT_EQ(deaths, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(crashes, (std::vector<NodeId>{2}));
  EXPECT_FALSE(m.node_alive(1));
  EXPECT_FALSE(m.node_alive(2));
  m.remove_crash_observer(cid);
}

TEST(FaultPlan, SilentKillStillUnwindsFibers) {
  FaultPlan plan;
  plan.kill_silent(1, 5 * kMillisecond);
  Machine m(butterfly1(4), plan);
  int victim_steps = 0;
  m.spawn(1, [&] {
    for (int i = 0; i < 100; ++i) {
      m.charge(kMillisecond);
      ++victim_steps;
    }
  });
  m.run();
  EXPECT_FALSE(m.deadlocked());
  EXPECT_LT(victim_steps, 100);
  EXPECT_FALSE(m.node_alive(1));
}

TEST(FaultPlan, RuntimeKillNodeMatchesPlannedKill) {
  // kill_node() arms the same machinery as a planned kill.
  Machine m(butterfly1(4));
  int steps = 0;
  m.kill_node(2, 3 * kMillisecond);
  m.spawn(2, [&] {
    for (int i = 0; i < 10; ++i) {
      m.charge(kMillisecond);
      ++steps;
    }
  });
  m.run();
  EXPECT_FALSE(m.deadlocked());
  EXPECT_LT(steps, 10);
  EXPECT_FALSE(m.node_alive(2));
}

TEST(FaultPlan, DeathObserversFireOnceInOrder) {
  FaultPlan plan;
  plan.kill(0, kMillisecond);
  plan.kill(3, 2 * kMillisecond);
  Machine m(butterfly1(4), plan);
  std::vector<std::pair<int, NodeId>> calls;
  const auto id1 = m.on_node_death([&](NodeId n) { calls.push_back({1, n}); });
  (void)m.on_node_death([&](NodeId n) { calls.push_back({2, n}); });
  m.spawn(1, [&] { m.charge(10 * kMillisecond); });
  m.run();
  ASSERT_EQ(calls.size(), 4u);
  EXPECT_EQ(calls[0], (std::pair<int, NodeId>{1, 0}));
  EXPECT_EQ(calls[1], (std::pair<int, NodeId>{2, 0}));
  EXPECT_EQ(calls[2], (std::pair<int, NodeId>{1, 3}));
  EXPECT_EQ(calls[3], (std::pair<int, NodeId>{2, 3}));
  m.remove_death_observer(id1);
}

TEST(FaultPlan, BadKillTargetIsRejected) {
  FaultPlan plan;
  plan.kill(9, kMillisecond);  // only 4 nodes
  EXPECT_THROW(Machine(butterfly1(4), plan), SimError);
}

}  // namespace
}  // namespace bfly::sim
