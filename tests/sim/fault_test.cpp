// Deterministic fault injection at the machine level: node kills, transient
// memory faults, and switch packet faults, all reproducible from
// (config, FaultPlan) alone.
#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"

namespace bfly::sim {
namespace {

TEST(FaultPlan, EmptyPlanChangesNothing) {
  // Two machines running the same program, one with a default (empty)
  // FaultPlan passed explicitly: identical elapsed time and stats.
  auto run = [](bool with_plan) {
    Machine m = with_plan ? Machine(butterfly1(8), FaultPlan{})
                          : Machine(butterfly1(8));
    std::uint32_t sum = 0;
    const PhysAddr a = m.alloc(3, 64);
    m.poke<std::uint32_t>(a, 5);
    m.spawn(0, [&] {
      for (int i = 0; i < 50; ++i) sum += m.read<std::uint32_t>(a);
      m.write<std::uint32_t>(a, 7);
    });
    const Time t = m.run();
    return std::pair<Time, std::uint32_t>(t, sum);
  };
  const auto plain = run(false);
  const auto planned = run(true);
  EXPECT_EQ(plain.first, planned.first);
  EXPECT_EQ(plain.second, planned.second);
}

TEST(FaultPlan, KilledNodeStopsItsFibersWithoutDeadlock) {
  FaultPlan plan;
  plan.kill(1, 5 * kMillisecond);
  Machine m(butterfly1(4), plan);
  int victim_steps = 0;
  int survivor_steps = 0;
  m.spawn(1, [&] {
    for (int i = 0; i < 100; ++i) {
      m.charge(kMillisecond);
      ++victim_steps;
    }
  });
  m.spawn(0, [&] {
    for (int i = 0; i < 100; ++i) {
      m.charge(kMillisecond);
      ++survivor_steps;
    }
  });
  m.run();
  EXPECT_FALSE(m.deadlocked());
  EXPECT_EQ(survivor_steps, 100);
  EXPECT_LT(victim_steps, 100);
  EXPECT_FALSE(m.node_alive(1));
  EXPECT_TRUE(m.node_alive(0));
  EXPECT_EQ(m.dead_nodes(), 1u);
}

TEST(FaultPlan, ReferencesToADeadNodeThrow) {
  FaultPlan plan;
  plan.kill(2, kMillisecond);
  Machine m(butterfly1(4), plan);
  const PhysAddr remote = m.alloc(2, 64);
  bool threw = false;
  NodeId reported = 99;
  m.spawn(0, [&] {
    m.charge(10 * kMillisecond);  // node 2 is gone by now
    try {
      (void)m.read<std::uint32_t>(remote);
    } catch (const NodeDeadError& e) {
      threw = true;
      reported = e.node();
    }
  });
  m.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(reported, 2u);
  EXPECT_GE(m.stats().dead_node_refs, 1u);
  EXPECT_FALSE(m.deadlocked());
}

TEST(FaultPlan, AllocOnDeadNodeThrows) {
  FaultPlan plan;
  plan.kill(3, kMillisecond);
  Machine m(butterfly1(4), plan);
  bool threw = false;
  m.spawn(0, [&] {
    m.charge(10 * kMillisecond);
    try {
      (void)m.alloc(3, 64);
    } catch (const NodeDeadError&) {
      threw = true;
    }
  });
  m.run();
  EXPECT_TRUE(threw);
}

TEST(FaultPlan, TransientMemoryFaultsAreDeterministic) {
  auto run = [] {
    FaultPlan plan;
    plan.mem_fault_prob = 0.05;
    plan.seed = 1234;
    Machine m(butterfly1(8), plan);
    const PhysAddr a = m.alloc(5, 64);
    std::uint64_t faults_seen = 0;
    m.spawn(0, [&] {
      for (int i = 0; i < 400; ++i) {
        try {
          (void)m.read<std::uint32_t>(a);
        } catch (const MemoryFaultError& e) {
          ++faults_seen;
          EXPECT_EQ(e.node(), 5u);
        }
      }
    });
    const Time t = m.run();
    return std::tuple<std::uint64_t, std::uint64_t, Time>(
        faults_seen, m.stats().mem_faults_injected, t);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_GT(std::get<0>(a), 0u);
  EXPECT_EQ(std::get<0>(a), std::get<1>(a));
  // Same plan, same seed: byte-identical fault pattern and timing.
  EXPECT_EQ(a, b);
}

TEST(FaultPlan, PacketDropsAddRetryLatency) {
  auto elapsed_with = [](double drop_prob) {
    FaultPlan plan;
    plan.packet_drop_prob = drop_prob;
    plan.drop_retry_ns = 200 * kMicrosecond;
    Machine m(butterfly1(8), plan);
    const PhysAddr a = m.alloc(6, 64);
    m.spawn(0, [&] {
      for (int i = 0; i < 300; ++i) (void)m.read<std::uint32_t>(a);
    });
    const Time t = m.run();
    return std::pair<Time, std::uint64_t>(t, m.fabric().packets_dropped());
  };
  const auto faulty = elapsed_with(0.2);
  const auto clean = elapsed_with(0.0);
  EXPECT_GT(faulty.second, 0u);
  EXPECT_EQ(clean.second, 0u);
  EXPECT_GT(faulty.first, clean.first);
}

TEST(FaultPlan, PacketDelaysAddLatencyDeterministically) {
  auto run = [] {
    FaultPlan plan;
    plan.packet_delay_prob = 0.3;
    plan.packet_delay_ns = 100 * kMicrosecond;
    plan.seed = 77;
    Machine m(butterfly1(8), plan);
    const PhysAddr a = m.alloc(4, 64);
    m.spawn(0, [&] {
      for (int i = 0; i < 200; ++i) (void)m.read<std::uint32_t>(a);
    });
    const Time t = m.run();
    return std::pair<Time, std::uint64_t>(t, m.fabric().packets_delayed());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_GT(a.second, 0u);
  EXPECT_EQ(a, b);
}

TEST(FaultPlan, KillAtTimeZeroIsRejected) {
  // The machine must come up before it can fail: a Time-0 kill is a plan
  // bug, not a fault scenario, and validation says so immediately.
  FaultPlan plan;
  EXPECT_THROW(plan.kill(1, 0), SimError);
  EXPECT_TRUE(plan.node_kills.empty());  // the bad entry was not kept
}

TEST(FaultPlan, KillJustAfterTimeZeroPreventsSpawns) {
  FaultPlan plan;
  plan.kill(1, 1);  // one nanosecond in: before anything can run
  Machine m(butterfly1(4), plan);
  m.spawn(0, [&] { m.charge(kMillisecond); });
  m.run();
  EXPECT_FALSE(m.node_alive(1));
  EXPECT_THROW(m.spawn(1, [] {}), NodeDeadError);
}

TEST(FaultPlan, DuplicateKillOfSameNodeIsRejected) {
  FaultPlan plan;
  plan.kill(2, kMillisecond);
  EXPECT_THROW(plan.kill(2, 5 * kMillisecond), SimError);
  EXPECT_EQ(plan.node_kills.size(), 1u);  // first kill survives
}

TEST(FaultPlan, HealIsRejectedAsUnsupported) {
  FaultPlan plan;
  plan.kill(1, kMillisecond);
  EXPECT_THROW(plan.heal(1, 2 * kMillisecond), SimError);
}

TEST(FaultPlan, SilentKillSkipsCrashObserversButNotDeathObservers) {
  FaultPlan plan;
  plan.kill_silent(1, kMillisecond);
  plan.kill(2, 2 * kMillisecond);
  Machine m(butterfly1(4), plan);
  std::vector<NodeId> deaths, crashes;
  (void)m.on_node_death([&](NodeId n) { deaths.push_back(n); });
  const auto cid = m.on_node_crash([&](NodeId n) { crashes.push_back(n); });
  m.spawn(0, [&] { m.charge(10 * kMillisecond); });
  m.run();
  // The simulator always knows (death tier); the machine-check broadcast
  // (crash tier) fires only for the loud kill — node 1 died silently.
  EXPECT_EQ(deaths, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(crashes, (std::vector<NodeId>{2}));
  EXPECT_FALSE(m.node_alive(1));
  EXPECT_FALSE(m.node_alive(2));
  m.remove_crash_observer(cid);
}

TEST(FaultPlan, SilentKillStillUnwindsFibers) {
  FaultPlan plan;
  plan.kill_silent(1, 5 * kMillisecond);
  Machine m(butterfly1(4), plan);
  int victim_steps = 0;
  m.spawn(1, [&] {
    for (int i = 0; i < 100; ++i) {
      m.charge(kMillisecond);
      ++victim_steps;
    }
  });
  m.run();
  EXPECT_FALSE(m.deadlocked());
  EXPECT_LT(victim_steps, 100);
  EXPECT_FALSE(m.node_alive(1));
}

TEST(FaultPlan, RuntimeKillNodeMatchesPlannedKill) {
  // kill_node() arms the same machinery as a planned kill.
  Machine m(butterfly1(4));
  int steps = 0;
  m.kill_node(2, 3 * kMillisecond);
  m.spawn(2, [&] {
    for (int i = 0; i < 10; ++i) {
      m.charge(kMillisecond);
      ++steps;
    }
  });
  m.run();
  EXPECT_FALSE(m.deadlocked());
  EXPECT_LT(steps, 10);
  EXPECT_FALSE(m.node_alive(2));
}

TEST(FaultPlan, DeathObserversFireOnceInOrder) {
  FaultPlan plan;
  plan.kill(0, kMillisecond);
  plan.kill(3, 2 * kMillisecond);
  Machine m(butterfly1(4), plan);
  std::vector<std::pair<int, NodeId>> calls;
  const auto id1 = m.on_node_death([&](NodeId n) { calls.push_back({1, n}); });
  (void)m.on_node_death([&](NodeId n) { calls.push_back({2, n}); });
  m.spawn(1, [&] { m.charge(10 * kMillisecond); });
  m.run();
  ASSERT_EQ(calls.size(), 4u);
  EXPECT_EQ(calls[0], (std::pair<int, NodeId>{1, 0}));
  EXPECT_EQ(calls[1], (std::pair<int, NodeId>{2, 0}));
  EXPECT_EQ(calls[2], (std::pair<int, NodeId>{1, 3}));
  EXPECT_EQ(calls[3], (std::pair<int, NodeId>{2, 3}));
  m.remove_death_observer(id1);
}

TEST(FaultPlan, BadKillTargetIsRejected) {
  FaultPlan plan;
  plan.kill(9, kMillisecond);  // only 4 nodes
  EXPECT_THROW(Machine(butterfly1(4), plan), SimError);
}

TEST(FaultPlan, SlowWindowsAreValidatedLikeKills) {
  FaultPlan plan;
  // Speed-ups, Time-0 starts, empty and overlapping windows are rejected;
  // the rejected window must not linger in the plan.
  EXPECT_THROW(plan.slow(1, kMillisecond, 2 * kMillisecond, 0.5), SimError);
  EXPECT_THROW(plan.slow(1, 0, kMillisecond, 2.0), SimError);
  EXPECT_THROW(plan.slow(1, 2 * kMillisecond, kMillisecond, 2.0), SimError);
  EXPECT_TRUE(plan.slow_nodes.empty());
  plan.slow(1, kMillisecond, 5 * kMillisecond, 4.0);
  EXPECT_THROW(plan.slow(1, 4 * kMillisecond, 6 * kMillisecond, 2.0),
               SimError);
  EXPECT_EQ(plan.slow_nodes.size(), 1u);
  // Back-to-back windows and other nodes are fine.
  plan.slow(1, 5 * kMillisecond, 6 * kMillisecond, 2.0);
  plan.slow(2, kMillisecond, 2 * kMillisecond, 8.0);
  EXPECT_TRUE(plan.any());
  // A slow target beyond the machine's node count is caught at build time.
  FaultPlan bad;
  bad.slow(9, kMillisecond, 2 * kMillisecond, 2.0);
  EXPECT_THROW(Machine(butterfly1(4), bad), SimError);
}

TEST(FaultPlan, SlowNodeStretchesItsMemoryServiceInWindow) {
  // A remote read against the slowed node's module takes longer inside the
  // window and reverts to the healthy cost after it closes.
  auto timed_read = [](FaultPlan plan, Time start) {
    Machine m(butterfly1(4), plan);
    const PhysAddr a = m.alloc(1, 64);
    Time cost = 0;
    m.spawn(0, [&] {
      m.charge(start);
      const Time t0 = m.now();
      for (int i = 0; i < 32; ++i) (void)m.read<std::uint32_t>(a);
      cost = m.now() - t0;
    });
    m.run();
    return cost;
  };
  FaultPlan slow;
  slow.slow(1, kMillisecond, 100 * kMillisecond, 16.0);
  const Time healthy = timed_read(FaultPlan{}, 2 * kMillisecond);
  const Time in_window = timed_read(slow, 2 * kMillisecond);
  const Time after = timed_read(slow, 200 * kMillisecond);
  EXPECT_GT(in_window, healthy);
  EXPECT_EQ(after, healthy) << "window closed: healthy service again";
}

TEST(FaultPlan, SlowNodeIsDeterministic) {
  auto run_once = [] {
    FaultPlan plan;
    plan.slow(1, kMillisecond, 50 * kMillisecond, 8.0);
    Machine m(butterfly1(4), plan);
    const PhysAddr a = m.alloc(1, 64);
    m.spawn(0, [&] {
      for (int i = 0; i < 64; ++i) (void)m.read<std::uint32_t>(a);
    });
    return m.run();
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- Switch-level fault domains and partition windows ---------------------

TEST(FaultPlan, PartitionWindowsAreValidatedAtBuildTime) {
  FaultPlan plan;
  // Empty sides, Time-0 starts, ill-ordered windows and nodes listed on
  // both sides are plan bugs; the rejected window must not linger.
  EXPECT_THROW(plan.partition({}, {1}, kMillisecond, 2 * kMillisecond),
               SimError);
  EXPECT_THROW(plan.partition({0}, {1}, 0, kMillisecond), SimError);
  EXPECT_THROW(plan.partition({0}, {1}, 2 * kMillisecond, kMillisecond),
               SimError);
  EXPECT_THROW(
      plan.partition({0, 1}, {1, 2}, kMillisecond, 2 * kMillisecond),
      SimError);
  EXPECT_TRUE(plan.partitions.empty());
  plan.partition({0}, {1}, kMillisecond, 5 * kMillisecond);
  // Two simultaneous cuts would make reachability ambiguous.
  EXPECT_THROW(
      plan.partition({2}, {3}, 4 * kMillisecond, 6 * kMillisecond),
      SimError);
  EXPECT_EQ(plan.partitions.size(), 1u);
  // Back-to-back windows are fine ([start, heal) half-open).
  plan.partition({2}, {3}, 5 * kMillisecond, 6 * kMillisecond);
  EXPECT_TRUE(plan.any());
}

TEST(FaultPlan, CardLinkAndRetryBudgetValidation) {
  FaultPlan plan;
  EXPECT_THROW(plan.fail_card(0, 1, 0), SimError);  // Time-0 card death
  plan.fail_card(0, 1, kMillisecond);
  EXPECT_THROW(plan.fail_card(0, 1, 2 * kMillisecond), SimError);  // dup
  EXPECT_EQ(plan.card_fails.size(), 1u);
  EXPECT_THROW(plan.fail_link(1, 3, 0), SimError);
  plan.fail_link(1, 3, kMillisecond);
  EXPECT_THROW(plan.fail_link(1, 3, 5 * kMillisecond), SimError);
  EXPECT_EQ(plan.link_fails.size(), 1u);
  // Geometry bounds are machine-dependent, so Machine checks them.
  FaultPlan bad_stage;
  bad_stage.fail_card(7, 0, kMillisecond);  // butterfly1(16) has 2 stages
  EXPECT_THROW(Machine(butterfly1(16), bad_stage), SimError);
  // The PNC always sends a packet at least once; hand-edited plans with a
  // zero retry budget are caught by Machine's re-validation.
  FaultPlan zero_budget;
  zero_budget.packet_drop_prob = 0.1;
  zero_budget.max_drop_retries = 0;
  EXPECT_THROW(zero_budget.validate(), SimError);
  EXPECT_THROW(Machine(butterfly1(16), zero_budget), SimError);
}

TEST(FaultPlan, DeadCardDetoursReferencesAfterItsDeathTime) {
  // A planned card death fires at its time: the same remote read costs the
  // healthy latency before and one extra hop after.
  FaultPlan plan;
  plan.fail_card(0, 1, 5 * kMillisecond);  // stage-0 card of srcs with n%4==1
  Machine m(butterfly1(16), plan);
  const PhysAddr a = m.alloc(10, 64);
  Time before = 0, after = 0;
  m.spawn(1, [&] {
    Time t0 = m.now();
    (void)m.read<std::uint32_t>(a);
    before = m.now() - t0;
    m.charge(10 * kMillisecond);
    t0 = m.now();
    (void)m.read<std::uint32_t>(a);
    after = m.now() - t0;
  });
  m.run();
  EXPECT_EQ(after, before + 400u) << "+1 hop through the redundant column";
  EXPECT_EQ(m.stats().alt_routed, 1u);
  EXPECT_EQ(m.stats().net_unreachable_refs, 0u);
}

TEST(FaultPlan, DeadFinalColumnCardMakesItsNodesUnreachable) {
  FaultPlan plan;
  plan.fail_card(1, 2, kMillisecond);  // final column: owns nodes 8..11
  Machine m(butterfly1(16), plan);
  const PhysAddr severed = m.alloc(9, 64);
  bool threw = false;
  Time wasted = 0, paid = 0;
  m.spawn(0, [&] {
    m.charge(5 * kMillisecond);
    EXPECT_FALSE(m.reachable(0, 9));
    EXPECT_TRUE(m.node_alive(9)) << "unreachable, not dead";
    const Time t0 = m.now();
    try {
      (void)m.read<std::uint32_t>(severed);
    } catch (const NetUnreachableError& e) {
      threw = true;
      wasted = e.wasted();
      paid = m.now() - t0;
    }
  });
  m.run();
  EXPECT_TRUE(threw);
  EXPECT_GT(wasted, 0u);
  EXPECT_GE(paid, wasted) << "futile PNC retries are charged, not free";
  EXPECT_GE(m.stats().net_unreachable_refs, 1u);
  EXPECT_EQ(m.stats().dead_node_refs, 0u);
}

TEST(FaultPlan, CrossCutReferencesThrowUntilThePartitionHeals) {
  FaultPlan plan;
  plan.partition({0, 1}, {2, 3}, 5 * kMillisecond, 20 * kMillisecond);
  Machine m(butterfly1(4), plan);
  const PhysAddr far_side = m.alloc(2, 64);
  const PhysAddr same_side = m.alloc(1, 64);
  std::uint32_t cross_ok = 0, cross_cut = 0;
  m.spawn(0, [&] {
    (void)m.read<std::uint32_t>(far_side);  // before the cut
    ++cross_ok;
    m.charge(10 * kMillisecond);  // inside the window now
    EXPECT_FALSE(m.reachable(0, 2));
    EXPECT_FALSE(m.reachable(3, 1)) << "cut is symmetric";
    EXPECT_TRUE(m.reachable(0, 1)) << "same side stays connected";
    EXPECT_TRUE(m.reachable(2, 3));
    const Time t0 = m.now();
    try {
      (void)m.read<std::uint32_t>(far_side);
    } catch (const NetUnreachableError& e) {
      ++cross_cut;
      EXPECT_EQ(e.node(), 2u);
      EXPECT_GE(m.now() - t0,
                16 * (100 * kMicrosecond));  // charged retry budget
    }
    (void)m.read<std::uint32_t>(same_side);  // unaffected by the cut
    m.charge(15 * kMillisecond);  // past heal: connectivity is back
    EXPECT_TRUE(m.reachable(0, 2));
    (void)m.read<std::uint32_t>(far_side);
    ++cross_ok;
  });
  m.run();
  EXPECT_FALSE(m.deadlocked());
  EXPECT_EQ(cross_ok, 2u);
  EXPECT_EQ(cross_cut, 1u);
  EXPECT_EQ(m.stats().net_unreachable_refs, 1u);
}

TEST(FaultPlan, HealObserversFireAtTheHealInstant) {
  FaultPlan plan;
  plan.partition({0}, {1}, kMillisecond, 8 * kMillisecond);
  Machine m(butterfly1(4), plan);
  std::vector<std::pair<std::size_t, Time>> fired;
  const auto id = m.on_partition_heal(
      [&](std::size_t idx) { fired.push_back({idx, m.now()}); });
  m.spawn(2, [&] { m.charge(2 * kMillisecond); });
  // Subscribing posts the heal event, which keeps the engine alive through
  // the window even though the workload finishes earlier.
  EXPECT_EQ(m.run(), 8 * kMillisecond);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, 0u);
  EXPECT_EQ(fired[0].second, 8 * kMillisecond);
  m.remove_heal_observer(id);
}

TEST(FaultPlan, PartitionedRunIsDeterministic) {
  auto run_once = [] {
    FaultPlan plan;
    plan.partition({0, 1}, {2, 3}, 2 * kMillisecond, 30 * kMillisecond);
    Machine m(butterfly1(4), plan);
    const PhysAddr a = m.alloc(2, 64);
    std::uint64_t cut_refs = 0;
    m.spawn(0, [&] {
      for (int i = 0; i < 40; ++i) {
        m.charge(kMillisecond);
        try {
          (void)m.read<std::uint32_t>(a);
        } catch (const NetUnreachableError&) {
          ++cut_refs;
        }
      }
    });
    const Time t = m.run();
    return std::pair<Time, std::uint64_t>(t, cut_refs);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_GT(a.second, 0u);
  EXPECT_EQ(a, b);
}

TEST(RetryPolicy, FixedScheduleDoublesToCap) {
  const RetryPolicy p{4, 100, 350, 0.0};
  EXPECT_EQ(p.max_attempts(), 4u);
  EXPECT_EQ(p.backoff_cap(), 350);
  EXPECT_EQ(p.backoff(0), 100);
  EXPECT_EQ(p.backoff(1), 200);
  EXPECT_EQ(p.backoff(2), 350);  // capped
  EXPECT_EQ(p.backoff(3), 350);
}

TEST(RetryPolicy, ZeroJitterDrawsNothingFromTheRng) {
  const RetryPolicy p{4, 100, 350, 0.0};
  Rng rng(42);
  const std::uint64_t before = rng.next();
  Rng again(42);
  EXPECT_EQ(p.backoff_jittered(1, again), p.backoff(1));
  // The RNG state is untouched: the next draw matches the fresh sequence.
  EXPECT_EQ(again.next(), before);
}

TEST(RetryPolicy, JitterSpreadsDownwardWithinBounds) {
  const RetryPolicy p{6, 1000, 100000, 0.5};
  Rng rng(7);
  for (std::uint32_t a = 0; a < 6; ++a) {
    const Time b = p.backoff(a);
    for (int i = 0; i < 20; ++i) {
      const Time j = p.backoff_jittered(a, rng);
      EXPECT_LE(j, b);
      EXPECT_GE(j, b - static_cast<Time>(static_cast<double>(b) * 0.5));
    }
  }
}

TEST(RetryPolicy, JitteredScheduleIsReproducibleFromTheSeed) {
  const RetryPolicy p{6, 1000, 100000, 0.25};
  Rng a(1234), b(1234);
  for (std::uint32_t i = 0; i < 6; ++i)
    EXPECT_EQ(p.backoff_jittered(i, a), p.backoff_jittered(i, b));
  // A different seed gives a different (but still in-bounds) schedule.
  Rng c(9999);
  bool any_diff = false;
  Rng d(1234);
  for (std::uint32_t i = 0; i < 6; ++i)
    if (p.backoff_jittered(i, c) != p.backoff_jittered(i, d)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace bfly::sim
