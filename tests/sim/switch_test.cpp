#include "sim/switch_fabric.hpp"

#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace bfly::sim {
namespace {

TEST(Switch, StageCountIsCeilLog4) {
  EXPECT_EQ(SwitchFabric(butterfly1(4)).stages(), 1u);
  EXPECT_EQ(SwitchFabric(butterfly1(16)).stages(), 2u);
  EXPECT_EQ(SwitchFabric(butterfly1(64)).stages(), 3u);
  EXPECT_EQ(SwitchFabric(butterfly1(128)).stages(), 4u);  // 128 needs 4 stages
  EXPECT_EQ(SwitchFabric(butterfly1(256)).stages(), 4u);
}

TEST(Switch, LocalRouteIsFree) {
  SwitchFabric f(butterfly1(64));
  EXPECT_EQ(f.route(3, 3, 1000, 1), 1000u);
}

TEST(Switch, UncontendedRouteIsPipelineLatency) {
  SwitchFabric f(butterfly1(64));
  EXPECT_EQ(f.route(0, 63, 1000, 1), 1000u + 3 * 400u);
}

TEST(Switch, ContentionModelQueuesAtSharedPorts) {
  MachineConfig cfg = butterfly1(64);
  cfg.model_switch_contention = true;
  SwitchFabric f(cfg);
  // Two packets to the same destination at the same instant: the second
  // queues behind the first at every stage.
  const Time a = f.route(0, 63, 0, 1);
  const Time b = f.route(1, 63, 0, 1);
  EXPECT_GT(b, a);
  EXPECT_GT(f.contention_ns(), 0u);
}

TEST(Switch, ContentionNegligibleForScatteredTraffic) {
  // Reproduces (in-model) the Rettberg & Thomas observation the paper cites:
  // with destinations scattered, switch queueing is a tiny fraction of
  // traversal time.
  MachineConfig cfg = butterfly1(64);
  cfg.model_switch_contention = true;
  SwitchFabric f(cfg);
  Time total_latency = 0;
  int sent = 0;
  for (int round = 0; round < 50; ++round) {
    for (NodeId src = 0; src < 64; ++src) {
      const NodeId dst = (src * 37 + round * 11 + 1) % 64;
      if (dst == src) continue;
      const Time t0 = round * 10000;
      total_latency += f.route(src, dst, t0, 1) - t0;
      ++sent;
    }
  }
  ASSERT_GT(sent, 0);
  EXPECT_LT(static_cast<double>(f.contention_ns()),
            0.10 * static_cast<double>(total_latency))
      << "scattered traffic should see <10% switch queueing";
}

// --- Fault domains: dead cards, dead links, alternate-path routing --------
//
// Geometry cheat-sheet for butterfly1(16): stages()==2, 4 cards per stage,
// hop 400ns.  Stage-0 wire for src->dst is (dst & 0xC) | (src & 3), and the
// card owning it is `src & 3` (the source digit the detour can re-pick).
// Stage-1 wire is dst itself and its card is `dst >> 2` — the final column
// is destination-determined and wired straight into the memory modules.

TEST(Switch, HealthyFabricHasAPathEverywhere) {
  SwitchFabric f(butterfly1(16));
  for (NodeId s = 0; s < 16; ++s)
    for (NodeId d = 0; d < 16; ++d) EXPECT_TRUE(f.has_path(s, d));
}

TEST(Switch, DeadEarlyStageCardDetoursForOneExtraHop) {
  SwitchFabric f(butterfly1(16));
  MachineStats st;
  f.set_stats(&st);
  f.fail_card(0, 1);  // stage-0 card 1: default path of every src with src%4==1
  // An unaffected source pays plain pipeline latency, no detour counted.
  EXPECT_EQ(f.route(0, 10, 1000, 1), 1000u + 2 * 400u);
  EXPECT_EQ(st.alt_routed, 0u);
  // An affected source still gets through — via the redundant column, for
  // exactly one extra hop — and the machine counter sees the detour.
  EXPECT_TRUE(f.has_path(1, 10));
  EXPECT_EQ(f.route(1, 10, 1000, 1), 1000u + 3 * 400u);
  EXPECT_EQ(st.alt_routed, 1u);
}

TEST(Switch, DeadFinalColumnCardSeversItsFourNodes) {
  SwitchFabric f(butterfly1(16));
  f.fail_card(1, 2);  // final column: card 2 owns destinations 8..11
  for (NodeId d = 8; d < 12; ++d) EXPECT_FALSE(f.has_path(0, d));
  EXPECT_TRUE(f.has_path(0, 7));
  EXPECT_TRUE(f.has_path(0, 12));
  // The cut is directional: the severed nodes can still send outward (their
  // own stage-0 cards and the survivors' final cards are healthy).
  EXPECT_TRUE(f.has_path(9, 0));
  EXPECT_EQ(f.route(9, 0, 500, 1), 500u + 2 * 400u);
  try {
    f.route(0, 9, 500, 1);
    FAIL() << "route into the dead final card must throw";
  } catch (const NetUnreachableError& e) {
    EXPECT_EQ(e.src(), 0u);
    EXPECT_EQ(e.node(), 9u);
    // The PNC burned its full default retry budget discovering the hole.
    EXPECT_EQ(e.wasted(), 16 * (100 * kMicrosecond));
  }
}

TEST(Switch, DeadLinkDetoursOnlyTheRoutesCrossingIt) {
  SwitchFabric f(butterfly1(16));
  MachineStats st;
  f.set_stats(&st);
  f.fail_link(0, 6);  // stage-0 wire 6 = srcs with src%4==2 heading to 4..7
  EXPECT_EQ(f.route(2, 5, 0, 1), 3 * 400u);  // crosses wire 6: +1 hop
  EXPECT_EQ(st.alt_routed, 1u);
  EXPECT_EQ(f.route(2, 9, 0, 1), 2 * 400u);  // different dst digit: untouched
  EXPECT_EQ(st.alt_routed, 1u);
}

TEST(Switch, DeadFinalStageLinkSeversExactlyOneNode) {
  SwitchFabric f(butterfly1(16));
  f.fail_link(1, 5);  // every path to node 5 ends on stage-1 wire 5
  for (NodeId s = 0; s < 16; ++s) {
    if (s == 5) continue;
    EXPECT_FALSE(f.has_path(s, 5)) << "src " << s;
  }
  EXPECT_TRUE(f.has_path(5, 0));  // outbound unaffected
  EXPECT_TRUE(f.has_path(0, 6));  // neighbours unaffected
  EXPECT_THROW(f.route(3, 5, 0, 1), NetUnreachableError);
}

TEST(Switch, DropRetryBudgetCapsTheRetryLoop) {
  // With drop probability 1.0 the legacy unbounded retry loop would never
  // terminate; the PNC budget turns it into a bounded, charged failure.
  SwitchFabric f(butterfly1(16));
  MachineStats st;
  f.set_stats(&st);
  FaultPlan plan;
  plan.packet_drop_prob = 1.0;
  plan.max_drop_retries = 4;
  Rng rng(1);
  f.configure_faults(plan, &rng);
  try {
    f.route(0, 9, 0, 1);
    FAIL() << "an always-dropping fabric must give up, not spin";
  } catch (const NetUnreachableError& e) {
    EXPECT_EQ(e.wasted(), 4 * (100 * kMicrosecond));
  }
  EXPECT_EQ(f.packets_dropped(), 4u);
  EXPECT_EQ(st.drops_exhausted, 1u);
}

}  // namespace
}  // namespace bfly::sim
