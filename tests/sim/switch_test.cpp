#include "sim/switch_fabric.hpp"

#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace bfly::sim {
namespace {

TEST(Switch, StageCountIsCeilLog4) {
  EXPECT_EQ(SwitchFabric(butterfly1(4)).stages(), 1u);
  EXPECT_EQ(SwitchFabric(butterfly1(16)).stages(), 2u);
  EXPECT_EQ(SwitchFabric(butterfly1(64)).stages(), 3u);
  EXPECT_EQ(SwitchFabric(butterfly1(128)).stages(), 4u);  // 128 needs 4 stages
  EXPECT_EQ(SwitchFabric(butterfly1(256)).stages(), 4u);
}

TEST(Switch, LocalRouteIsFree) {
  SwitchFabric f(butterfly1(64));
  EXPECT_EQ(f.route(3, 3, 1000, 1), 1000u);
}

TEST(Switch, UncontendedRouteIsPipelineLatency) {
  SwitchFabric f(butterfly1(64));
  EXPECT_EQ(f.route(0, 63, 1000, 1), 1000u + 3 * 400u);
}

TEST(Switch, ContentionModelQueuesAtSharedPorts) {
  MachineConfig cfg = butterfly1(64);
  cfg.model_switch_contention = true;
  SwitchFabric f(cfg);
  // Two packets to the same destination at the same instant: the second
  // queues behind the first at every stage.
  const Time a = f.route(0, 63, 0, 1);
  const Time b = f.route(1, 63, 0, 1);
  EXPECT_GT(b, a);
  EXPECT_GT(f.contention_ns(), 0u);
}

TEST(Switch, ContentionNegligibleForScatteredTraffic) {
  // Reproduces (in-model) the Rettberg & Thomas observation the paper cites:
  // with destinations scattered, switch queueing is a tiny fraction of
  // traversal time.
  MachineConfig cfg = butterfly1(64);
  cfg.model_switch_contention = true;
  SwitchFabric f(cfg);
  Time total_latency = 0;
  int sent = 0;
  for (int round = 0; round < 50; ++round) {
    for (NodeId src = 0; src < 64; ++src) {
      const NodeId dst = (src * 37 + round * 11 + 1) % 64;
      if (dst == src) continue;
      const Time t0 = round * 10000;
      total_latency += f.route(src, dst, t0, 1) - t0;
      ++sent;
    }
  }
  ASSERT_GT(sent, 0);
  EXPECT_LT(static_cast<double>(f.contention_ns()),
            0.10 * static_cast<double>(total_latency))
      << "scattered traffic should see <10% switch queueing";
}

}  // namespace
}  // namespace bfly::sim
