#include "sim/fiber.hpp"

#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace bfly::sim {
namespace {

TEST(Fiber, RunsBodyOnResume) {
  bool ran = false;
  Fiber f([&] { ran = true; }, 64 * 1024);
  EXPECT_FALSE(ran);
  f.resume();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, YieldSuspendsAndResumeContinues) {
  int step = 0;
  Fiber f(
      [&] {
        step = 1;
        Fiber::yield_to_engine();
        step = 2;
      },
      64 * 1024);
  f.resume();
  EXPECT_EQ(step, 1);
  EXPECT_EQ(f.state(), Fiber::State::kBlocked);
  f.resume();
  EXPECT_EQ(step, 2);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, CurrentTracksExecution) {
  Fiber* seen = nullptr;
  Fiber f([&] { seen = Fiber::current(); }, 64 * 1024);
  EXPECT_EQ(Fiber::current(), nullptr);
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, DeepStackUse) {
  // Recursion to a depth that would smash a tiny stack must work with the
  // configured stack size.
  std::function<int(int)> fib = [&](int n) {
    return n < 2 ? n : fib(n - 1) + fib(n - 2);
  };
  int result = 0;
  Fiber f([&] { result = fib(18); }, 192 * 1024);
  f.resume();
  EXPECT_EQ(result, 2584);
}

TEST(MachineFiber, ChargeAdvancesTime) {
  Machine m(butterfly1(4));
  Time end = 0;
  m.spawn(0, [&] {
    m.charge(1000);
    m.charge(500);
    end = m.now();
  });
  m.run();
  EXPECT_EQ(end, 1500u);
  EXPECT_FALSE(m.deadlocked());
}

TEST(MachineFiber, ParkAndWakeup) {
  Machine m(butterfly1(4));
  Fiber* sleeper = nullptr;
  Time woke_at = 0;
  sleeper = m.spawn(0, [&] {
    m.park();
    woke_at = m.now();
  });
  m.spawn(1, [&] {
    m.charge(5000);
    m.wakeup(sleeper);
  });
  m.run();
  EXPECT_EQ(woke_at, 5000u);
}

TEST(MachineFiber, UnwokenParkIsDeadlock) {
  Machine m(butterfly1(2));
  m.spawn(0, [&] { m.park(); });
  m.run();
  EXPECT_TRUE(m.deadlocked());
  EXPECT_EQ(m.blocked_fibers().size(), 1u);
}

TEST(MachineFiber, ManyFibersInterleaveDeterministically) {
  Machine m(butterfly1(16));
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    m.spawn(i, [&, i] {
      m.charge(100 * (i % 4));
      order.push_back(i);
    });
  }
  m.run();
  ASSERT_EQ(order.size(), 16u);
  // Sorted by (charge time, spawn order): all i%4==0 first, etc.
  std::vector<int> expect;
  for (int r = 0; r < 4; ++r)
    for (int i = r; i < 16; i += 4) expect.push_back(i);
  EXPECT_EQ(order, expect);
}

TEST(MachineFiber, SleepUntil) {
  Machine m(butterfly1(2));
  Time t = 0;
  m.spawn(0, [&] {
    m.sleep_until(9000);
    t = m.now();
  });
  m.run();
  EXPECT_EQ(t, 9000u);
}

}  // namespace
}  // namespace bfly::sim
