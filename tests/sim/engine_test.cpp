#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

namespace bfly::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.post_at(30, [&] { order.push_back(3); });
  e.post_at(10, [&] { order.push_back(1); });
  e.post_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 30u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) e.post_at(5, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 5) e.post_in(7, hop);
  };
  e.post_at(0, hop);
  EXPECT_EQ(e.run(), 28u);
  EXPECT_EQ(hops, 5);
}

TEST(Engine, PastPostingsClampToNow) {
  Engine e;
  Time seen = 1234;
  e.post_at(100, [&] {
    e.post_at(1, [&] { seen = e.now(); });  // in the past: clamps to now
  });
  e.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Engine, StopHaltsTheLoop) {
  Engine e;
  int ran = 0;
  e.post_at(1, [&] { ++ran; e.stop(); });
  e.post_at(2, [&] { ++ran; });
  e.run();
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(e.empty());
}

// Regression for the hand-rolled heap replacing std::priority_queue (whose
// top() had to be const_cast-moved): equal-time events must dispatch in
// sequence order even when new same-time events are posted *while* the tie
// group is already being drained — the pop/push interleaving exercises
// sift-down immediately followed by sift-up through the same subtree.
TEST(Engine, EqualTimePostsDuringDispatchKeepSeqOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    e.post_at(5, [&e, &order, i] {
      order.push_back(i);
      // Same-time follow-ons, posted mid-drain: they must run after every
      // earlier-posted t=5 event and in their own posting order.
      e.post_at(5, [&order, i] { order.push_back(100 + i); });
    });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 100, 101, 102, 103}));
}

TEST(Engine, HeapOrdersRandomizedTimesDeterministically) {
  // Shuffled posting times: the heap must replay them in (time, seq) order.
  Engine e;
  Rng rng(1234);
  std::vector<std::pair<Time, int>> posted;
  std::vector<std::pair<Time, int>> ran;
  for (int i = 0; i < 500; ++i) {
    const Time t = rng.below(64);  // heavy tie traffic on purpose
    posted.emplace_back(t, i);
    e.post_at(t, [&ran, t, i] { ran.emplace_back(t, i); });
  }
  e.run();
  std::stable_sort(posted.begin(), posted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_EQ(ran, posted);
}

TEST(Engine, TypedFiberEventsInterleaveWithClosuresInSeqOrder) {
  // Fiber events (opaque payload, zero-allocation) and closure events posted
  // at the same time share one total (time, seq) order.
  Engine e;
  std::vector<int> order;
  e.set_fiber_handler(
      [](void* ctx, void* payload) {
        static_cast<std::vector<int>*>(ctx)->push_back(
            static_cast<int>(reinterpret_cast<std::intptr_t>(payload)));
      },
      &order);
  e.post_fiber_at(7, reinterpret_cast<void*>(std::intptr_t{1}));
  e.post_at(7, [&order] { order.push_back(2); });
  e.post_fiber_at(7, reinterpret_cast<void*>(std::intptr_t{3}));
  e.post_at(3, [&order] { order.push_back(0); });
  EXPECT_EQ(e.run(), 7u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Engine, NextTimeTracksEarliestPendingEvent) {
  Engine e;
  e.post_at(30, [] {});
  EXPECT_EQ(e.next_time(), 30u);
  e.post_at(10, [] {});
  EXPECT_EQ(e.next_time(), 10u);
  e.post_at(20, [] {});
  EXPECT_EQ(e.next_time(), 10u);
  e.run();
  EXPECT_TRUE(e.empty());
}

TEST(Engine, StopRequestedVisibleDuringRun) {
  Engine e;
  bool seen = false;
  e.post_at(1, [&] {
    e.stop();
    seen = e.stop_requested();
  });
  e.run();
  EXPECT_TRUE(seen);
  EXPECT_TRUE(e.stop_requested());  // stays set until the next run() starts
  int ran = 0;
  e.post_at(2, [&] { ++ran; });
  e.run();  // clears the flag on entry and dispatches normally
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(e.stop_requested());
}

TEST(Engine, OutsizedClosuresStillDispatch) {
  // Captures beyond SmallFn's inline buffer take the heap fallback; the
  // engine contract (order, values) must not change.
  Engine e;
  std::array<std::uint64_t, 16> big{};
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i + 1;
  std::uint64_t sum = 0;
  e.post_at(1, [big, &sum] {
    for (std::uint64_t v : big) sum += v;
  });
  e.run();
  EXPECT_EQ(sum, 136u);
}

TEST(Engine, CountsDispatchedEvents) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.post_at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_dispatched(), 5u);
}

TEST(Engine, WarpToAdvancesClock) {
  Engine e;
  e.warp_to(500);
  EXPECT_EQ(e.now(), 500u);
  e.warp_to(100);  // never goes backwards
  EXPECT_EQ(e.now(), 500u);
}

}  // namespace
}  // namespace bfly::sim
