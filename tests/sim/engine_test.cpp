#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bfly::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.post_at(30, [&] { order.push_back(3); });
  e.post_at(10, [&] { order.push_back(1); });
  e.post_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 30u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) e.post_at(5, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 5) e.post_in(7, hop);
  };
  e.post_at(0, hop);
  EXPECT_EQ(e.run(), 28u);
  EXPECT_EQ(hops, 5);
}

TEST(Engine, PastPostingsClampToNow) {
  Engine e;
  Time seen = 1234;
  e.post_at(100, [&] {
    e.post_at(1, [&] { seen = e.now(); });  // in the past: clamps to now
  });
  e.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Engine, StopHaltsTheLoop) {
  Engine e;
  int ran = 0;
  e.post_at(1, [&] { ++ran; e.stop(); });
  e.post_at(2, [&] { ++ran; });
  e.run();
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(e.empty());
}

TEST(Engine, WarpToAdvancesClock) {
  Engine e;
  e.warp_to(500);
  EXPECT_EQ(e.now(), 500u);
  e.warp_to(100);  // never goes backwards
  EXPECT_EQ(e.now(), 500u);
}

}  // namespace
}  // namespace bfly::sim
