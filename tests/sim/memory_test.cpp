#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace bfly::sim {
namespace {

// Runs `body` on node `n` of machine `m` and completes the run.
void on_node(Machine& m, NodeId n, std::function<void()> body) {
  m.spawn(n, std::move(body));
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(Memory, LocalReadCosts800ns) {
  Machine m(butterfly1(128));
  PhysAddr a = m.alloc(0, 64);
  Time dt = 0;
  on_node(m, 0, [&] {
    const Time t0 = m.now();
    (void)m.read<std::uint32_t>(a);
    dt = m.now() - t0;
  });
  EXPECT_EQ(dt, 800u);  // 300 issue + 500 module service
}

TEST(Memory, RemoteReadIsFiveTimesLocal) {
  Machine m(butterfly1(128));
  PhysAddr a = m.alloc(5, 64);
  Time dt = 0;
  on_node(m, 0, [&] {
    const Time t0 = m.now();
    (void)m.read<std::uint32_t>(a);
    dt = m.now() - t0;
  });
  EXPECT_EQ(dt, 4000u);  // the paper's "about 4 us, roughly five times local"
}

TEST(Memory, WriteReadRoundTripsData) {
  Machine m(butterfly1(8));
  PhysAddr a = m.alloc(3, 128);
  std::uint64_t got = 0;
  on_node(m, 1, [&] {
    m.write<std::uint64_t>(a, 0xdeadbeefcafef00dULL);
    got = m.read<std::uint64_t>(a.plus(0));
  });
  EXPECT_EQ(got, 0xdeadbeefcafef00dULL);
}

TEST(Memory, RemoteTrafficStealsCyclesFromHomeNode) {
  // The paper: "remote references steal memory cycles from the local
  // processor".  A node hammered by remote readers must see its own local
  // references slow down.
  auto run_victim = [](bool hammer) {
    Machine m(butterfly1(64));
    PhysAddr local = m.alloc(0, 64);
    PhysAddr shared = m.alloc(0, 64);  // lives on the victim's node
    Time victim_time = 0;
    m.spawn(0, [&] {
      const Time t0 = m.now();
      for (int i = 0; i < 200; ++i) (void)m.read<std::uint32_t>(local);
      victim_time = m.now() - t0;
    });
    if (hammer) {
      for (NodeId n = 1; n <= 32; ++n) {
        m.spawn(n, [&m, shared] {
          for (int i = 0; i < 100; ++i) (void)m.read<std::uint32_t>(shared);
        });
      }
    }
    m.run();
    return victim_time;
  };
  const Time quiet = run_victim(false);
  const Time contended = run_victim(true);
  EXPECT_EQ(quiet, 200u * 800u);
  EXPECT_GT(contended, quiet * 3) << "home module occupancy must stall the "
                                     "local processor under remote load";
}

TEST(Memory, AtomicFetchAdd) {
  Machine m(butterfly1(16));
  PhysAddr ctr = m.alloc(7, 8);
  on_node(m, 0, [&] { m.write<std::uint32_t>(ctr, 0); });
  for (NodeId n = 0; n < 16; ++n)
    m.spawn(n, [&m, ctr] {
      for (int i = 0; i < 10; ++i) (void)m.fetch_add_u32(ctr, 1);
    });
  m.run();
  EXPECT_EQ(m.peek<std::uint32_t>(ctr), 160u);
}

TEST(Memory, TestAndSetReturnsPreviousValue) {
  Machine m(butterfly1(4));
  PhysAddr lock = m.alloc(2, 8);
  std::uint32_t first = 99, second = 99;
  on_node(m, 0, [&] {
    first = m.test_and_set(lock);
    second = m.test_and_set(lock);
  });
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(second, 1u);
}

TEST(Memory, BlockCopyMovesBytesAndIsCheaperPerWord) {
  Machine m(butterfly1(128));
  constexpr std::size_t kBytes = 4096;
  PhysAddr src = m.alloc(9, kBytes);
  PhysAddr dst = m.alloc(0, kBytes);
  std::vector<std::uint8_t> pattern(kBytes);
  for (std::size_t i = 0; i < kBytes; ++i) pattern[i] = static_cast<std::uint8_t>(i * 7);
  m.poke_bytes(src, pattern.data(), kBytes);

  Time block_time = 0, word_time = 0;
  m.spawn(0, [&] {
    Time t0 = m.now();
    m.block_copy(dst, src, kBytes);
    block_time = m.now() - t0;
    t0 = m.now();
    for (std::size_t w = 0; w < kBytes / 4; ++w)
      (void)m.read<std::uint32_t>(src.plus(4 * w));
    word_time = m.now() - t0;
  });
  m.run();

  std::vector<std::uint8_t> got(kBytes);
  m.peek_bytes(got.data(), dst, kBytes);
  EXPECT_EQ(got, pattern);
  EXPECT_LT(block_time * 3, word_time)
      << "microcoded block transfer must be much cheaper than word-at-a-time "
         "remote reads (this underlies the paper's 42% Hough improvement)";
}

TEST(Memory, AllocatorReusesFreedBlocks) {
  Machine m(butterfly1(2));
  PhysAddr a = m.alloc(0, 100);
  m.free(a, 100);
  PhysAddr b = m.alloc(0, 100);
  EXPECT_EQ(a, b);  // first fit re-uses the freed block
}

TEST(Memory, FreeListChurnStaysBounded) {
  // Regression: free() used to append blocks without coalescing, so
  // alloc/free churn at one size grew the free list without bound.
  Machine m(butterfly1(2));
  for (int i = 0; i < 1000; ++i) {
    PhysAddr a = m.alloc(0, 48);
    m.free(a, 48);
    ASSERT_LE(m.free_blocks_on(0), 1u) << "iteration " << i;
  }
  EXPECT_EQ(m.allocated_on(0), 0u);
}

TEST(Memory, AdjacentFreeBlocksCoalesce) {
  Machine m(butterfly1(2));
  PhysAddr a = m.alloc(0, 64);
  PhysAddr b = m.alloc(0, 64);
  PhysAddr c = m.alloc(0, 64);
  // Free out of order: middle, then both neighbours — every merge direction
  // (with predecessor, with successor, bridging) is exercised.
  m.free(b, 64);
  EXPECT_EQ(m.free_blocks_on(0), 1u);
  m.free(a, 64);
  EXPECT_EQ(m.free_blocks_on(0), 1u);  // a merged in front of b
  m.free(c, 64);
  EXPECT_EQ(m.free_blocks_on(0), 1u);  // c merged behind a+b
  // The coalesced block serves an allocation none of the fragments could.
  PhysAddr big = m.alloc(0, 192);
  EXPECT_EQ(big, a);
  EXPECT_EQ(m.free_blocks_on(0), 0u);
}

TEST(Memory, InterleavedSizesCoalesceAcrossFrees) {
  Machine m(butterfly1(2));
  std::vector<PhysAddr> blocks;
  for (int i = 0; i < 16; ++i) blocks.push_back(m.alloc(0, 32));
  for (int i = 15; i >= 0; --i) m.free(blocks[i], 32);  // reverse order
  EXPECT_EQ(m.free_blocks_on(0), 1u);
  EXPECT_EQ(m.alloc(0, 16 * 32), blocks[0]);
}

TEST(Memory, AllocatorExhaustionThrows) {
  MachineConfig cfg = butterfly1(2);
  cfg.memory_per_node = 4096;
  Machine m(cfg);
  (void)m.alloc(0, 4000);
  EXPECT_THROW((void)m.alloc(0, 4000), SimError);
  (void)m.alloc(1, 4000);  // other nodes unaffected
}

TEST(Memory, OutOfRangeAddressThrows) {
  MachineConfig cfg = butterfly1(2);
  cfg.memory_per_node = 1024;
  Machine m(cfg);
  m.spawn(0, [&] {
    EXPECT_THROW(m.write<std::uint32_t>(PhysAddr{0, 2048}, 1), SimError);
    EXPECT_THROW((void)m.read<std::uint8_t>(PhysAddr{99, 0}), SimError);
  });
  m.run();
}

TEST(Memory, AccessWordsAggregatesCost) {
  Machine m(butterfly1(128));
  PhysAddr a = m.alloc(3, 4096);
  Time batched = 0, individual = 0;
  m.spawn(0, [&] {
    Time t0 = m.now();
    m.access_words(a, 100);
    batched = m.now() - t0;
    t0 = m.now();
    for (int i = 0; i < 100; ++i) (void)m.read<std::uint32_t>(a);
    individual = m.now() - t0;
  });
  m.run();
  EXPECT_EQ(batched, individual);  // same simulated cost, fewer host events
  EXPECT_EQ(m.stats().node[0].remote_refs, 200u);
}

TEST(Memory, StatsDistinguishLocalAndRemote) {
  Machine m(butterfly1(8));
  PhysAddr here = m.alloc(0, 16);
  PhysAddr there = m.alloc(4, 16);
  m.spawn(0, [&] {
    (void)m.read<std::uint32_t>(here);
    (void)m.read<std::uint32_t>(there);
    (void)m.read<std::uint32_t>(there);
  });
  m.run();
  EXPECT_EQ(m.stats().node[0].local_refs, 1u);
  EXPECT_EQ(m.stats().node[0].remote_refs, 2u);
  EXPECT_EQ(m.stats().node[4].serviced_remote, 2u);
}

}  // namespace
}  // namespace bfly::sim
