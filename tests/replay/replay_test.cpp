#include <gtest/gtest.h>

#include "replay/instant_replay.hpp"
#include "replay/moviola.hpp"

namespace bfly::replay {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

// A deliberately racy workload: `actors` processes on different nodes take
// turns (in whatever order timing dictates) incrementing a shared counter
// through the CREW protocol.  The observable result is the ORDER in which
// actors' write sections executed — pure nondeterminism.
struct RacyRun {
  std::vector<std::uint32_t> order;  // actor per write section, in exec order
  Log log;
  Time elapsed = 0;
  std::uint64_t monitor_refs = 0;
  int fault_code = 0;
};

RacyRun run_racy(std::uint32_t actors, std::uint32_t rounds, Mode mode,
                 std::uint64_t jitter_seed, const Log* script = nullptr,
                 sim::FaultPlan plan = {}) {
  Machine m(butterfly1(8), std::move(plan));
  chrys::Kernel k(m);
  Monitor mon(k, actors);
  RacyRun out;
  const std::uint32_t obj = mon.register_object(0, "counter");
  mon.set_mode(mode);
  if (script != nullptr) mon.load_log(*script);

  sim::Rng jitter(jitter_seed);
  std::vector<sim::Time> delays;
  for (std::uint32_t i = 0; i < actors * rounds; ++i)
    delays.push_back((1 + jitter.below(40)) * 100 * sim::kMicrosecond);

  const Time t0 = 0;
  for (std::uint32_t a = 0; a < actors; ++a) {
    k.create_process(a % m.nodes(), [&, a] {
      for (std::uint32_t r = 0; r < rounds; ++r) {
        k.delay(delays[a * rounds + r]);
        const int code = k.catch_block([&] {
          mon.begin_write(a, obj);
          out.order.push_back(a);
          m.charge(500 * sim::kMicrosecond);  // the guarded work
          mon.end_write(a, obj);
        });
        if (code != chrys::kThrowNone) {
          out.fault_code = code;
          return;
        }
      }
    });
  }
  out.elapsed = m.run() - t0;
  out.log = mon.take_log();
  out.monitor_refs = mon.monitor_refs();
  return out;
}

TEST(InstantReplay, TimingPerturbationChangesTheOrderWithoutReplay) {
  RacyRun a = run_racy(4, 6, Mode::kRecord, 1111);
  RacyRun b = run_racy(4, 6, Mode::kRecord, 9999);
  ASSERT_EQ(a.order.size(), b.order.size());
  EXPECT_NE(a.order, b.order)
      << "the workload must actually be nondeterministic for the replay "
         "test to mean anything";
}

TEST(InstantReplay, ReplayForcesTheRecordedOrder) {
  RacyRun rec = run_racy(4, 6, Mode::kRecord, 1111);
  // Re-run under completely different timing, driven by the log.
  RacyRun rep = run_racy(4, 6, Mode::kReplay, 9999, &rec.log);
  EXPECT_EQ(rep.order, rec.order)
      << "Instant Replay must reproduce the exact recorded interleaving";
  EXPECT_EQ(rep.fault_code, 0);
}

TEST(InstantReplay, ReplayIsStableUnderManyPerturbations) {
  RacyRun rec = run_racy(3, 5, Mode::kRecord, 42);
  for (std::uint64_t seed : {7u, 77u, 777u, 7777u}) {
    RacyRun rep = run_racy(3, 5, Mode::kReplay, seed, &rec.log);
    EXPECT_EQ(rep.order, rec.order) << "seed " << seed;
  }
}

TEST(InstantReplay, LogHoldsOrderNotContent) {
  RacyRun rec = run_racy(4, 4, Mode::kRecord, 5);
  // 16 write sections -> 16 log entries of fixed size: O(events), not
  // O(data).  "Less time and space than other methods because the actual
  // information communicated between processes is not saved."
  EXPECT_EQ(rec.log.total_entries(), 16u);
}

TEST(InstantReplay, MonitoringOverheadIsAFewPercent) {
  RacyRun off = run_racy(4, 8, Mode::kOff, 33);
  RacyRun rec = run_racy(4, 8, Mode::kRecord, 33);
  ASSERT_GT(off.elapsed, 0u);
  const double overhead =
      (static_cast<double>(rec.elapsed) - static_cast<double>(off.elapsed)) /
      static_cast<double>(off.elapsed);
  EXPECT_LT(overhead, 0.20) << "monitoring should cost a few percent, got "
                            << overhead * 100 << "%";
  EXPECT_GT(rec.monitor_refs, 0u);
}

TEST(InstantReplay, DivergentExecutionIsDetected) {
  RacyRun rec = run_racy(2, 3, Mode::kRecord, 8);
  // Replay with MORE rounds than recorded: the log runs dry.
  RacyRun rep = run_racy(2, 5, Mode::kReplay, 8, &rec.log);
  EXPECT_EQ(rep.fault_code, chrys::kThrowReplayDiverged);
}

TEST(InstantReplay, ReadersAndWritersInterleaveCorrectly) {
  // CREW: concurrent readers allowed, writers exclusive, versions ordered.
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  Monitor mon(k, 3);
  const std::uint32_t obj = mon.register_object(1, "cell");
  mon.set_mode(Mode::kRecord);
  const sim::PhysAddr cell = m.alloc(1, 8);
  m.poke<std::uint32_t>(cell, 0);
  std::vector<std::uint32_t> seen;
  // Writer bumps the cell twice; two readers read between writes.
  k.create_process(0, [&] {
    for (int i = 1; i <= 2; ++i) {
      mon.begin_write(0, obj);
      m.write<std::uint32_t>(cell, i * 10);
      mon.end_write(0, obj);
      k.delay(10 * sim::kMillisecond);
    }
  });
  for (std::uint32_t a = 1; a <= 2; ++a) {
    k.create_process(a, [&, a] {
      k.delay(3 * sim::kMillisecond);
      mon.begin_read(a, obj);
      seen.push_back(m.read<std::uint32_t>(cell));
      mon.end_read(a, obj);
    });
  }
  m.run();
  ASSERT_FALSE(m.deadlocked());
  ASSERT_EQ(seen.size(), 2u);
  for (std::uint32_t v : seen) EXPECT_TRUE(v == 10u || v == 20u);
  Log log = mon.take_log();
  EXPECT_EQ(log.total_entries(), 4u);
}

// Entry-by-entry log equality: byte-identical in every recorded field.
void expect_logs_identical(const Log& a, const Log& b) {
  ASSERT_EQ(a.per_actor.size(), b.per_actor.size());
  for (std::size_t i = 0; i < a.per_actor.size(); ++i) {
    ASSERT_EQ(a.per_actor[i].size(), b.per_actor[i].size()) << "actor " << i;
    for (std::size_t j = 0; j < a.per_actor[i].size(); ++j) {
      const AccessEntry& x = a.per_actor[i][j];
      const AccessEntry& y = b.per_actor[i][j];
      EXPECT_EQ(x.object, y.object) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.version, y.version) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.readers, y.readers) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.is_write, y.is_write) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.at, y.at) << "actor " << i << " entry " << j;
    }
  }
}

TEST(InstantReplay, FaultPlanWithZeroProbsKeepsRecordingDeterministic) {
  // A FaultPlan whose probabilistic faults are all zero — here it only
  // kills node 7, which hosts no actor and no monitored object — must not
  // perturb determinism: two same-seed record runs produce byte-identical
  // logs, orders, and elapsed times.
  sim::FaultPlan plan;
  plan.mem_fault_prob = 0.0;
  plan.kill(7, 10 * sim::kMillisecond);
  RacyRun a = run_racy(4, 6, Mode::kRecord, 1111, nullptr, plan);
  RacyRun b = run_racy(4, 6, Mode::kRecord, 1111, nullptr, plan);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.fault_code, 0);
  expect_logs_identical(a.log, b.log);
}

TEST(InstantReplay, EmptyFaultPlanIsByteIdenticalToNoPlan) {
  // The acceptance bar for the fault machinery: constructing the machine
  // with a default FaultPlan must leave the run bit-for-bit unchanged.
  RacyRun plain = run_racy(4, 6, Mode::kRecord, 2222);
  RacyRun planned = run_racy(4, 6, Mode::kRecord, 2222, nullptr,
                             sim::FaultPlan{});
  EXPECT_EQ(plain.order, planned.order);
  EXPECT_EQ(plain.elapsed, planned.elapsed);
  expect_logs_identical(plain.log, planned.log);
}

TEST(InstantReplay, ReplayStillForcesOrderUnderAFaultPlan) {
  // Record clean, replay on a machine whose unused node dies mid-run: the
  // recorded interleaving must still be enforced on the survivors.
  RacyRun rec = run_racy(4, 6, Mode::kRecord, 1111);
  sim::FaultPlan plan;
  plan.kill(7, 10 * sim::kMillisecond);
  RacyRun rep = run_racy(4, 6, Mode::kReplay, 9999, &rec.log, plan);
  EXPECT_EQ(rep.order, rec.order);
  EXPECT_EQ(rep.fault_code, 0);
}

TEST(Moviola, BuildsThePartialOrder) {
  RacyRun rec = run_racy(3, 4, Mode::kRecord, 2);
  Moviola mv(rec.log);
  EXPECT_EQ(mv.events().size(), 12u);
  EXPECT_GT(mv.cross_actor_edges(), 0u)
      << "writes to one object must order across actors";
  // All 12 writes hit one object: the dependence chain covers every event.
  EXPECT_EQ(mv.critical_path(), 12u);
  const std::string dot = mv.to_dot();
  EXPECT_NE(dot.find("digraph moviola"), std::string::npos);
  EXPECT_NE(dot.find("W(counter"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Moviola, IndependentObjectsGiveShortCriticalPath) {
  // Two actors writing DISJOINT objects: no cross edges, path = own chain.
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  Monitor mon(k, 2);
  const std::uint32_t o0 = mon.register_object(0, "a");
  const std::uint32_t o1 = mon.register_object(1, "b");
  mon.set_mode(Mode::kRecord);
  for (std::uint32_t a = 0; a < 2; ++a) {
    k.create_process(a, [&, a] {
      const std::uint32_t obj = a == 0 ? o0 : o1;
      for (int r = 0; r < 5; ++r) {
        mon.begin_write(a, obj);
        m.charge(sim::kMillisecond);
        mon.end_write(a, obj);
      }
    });
  }
  m.run();
  Log log = mon.take_log();
  Moviola mv(log);
  EXPECT_EQ(mv.events().size(), 10u);
  EXPECT_EQ(mv.critical_path(), 5u);
}

TEST(Moviola, BottleneckFinderPicksTheHotObject) {
  // Two objects: one written 9 times, one written 3 times — the hot one is
  // the serialization bottleneck.
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  Monitor mon(k, 2);
  const std::uint32_t hot = mon.register_object(0, "hot");
  const std::uint32_t cold = mon.register_object(1, "cold");
  mon.set_mode(Mode::kRecord);
  k.create_process(0, [&] {
    for (int i = 0; i < 9; ++i) {
      mon.begin_write(0, hot);
      m.charge(sim::kMillisecond);
      mon.end_write(0, hot);
    }
  });
  k.create_process(1, [&] {
    for (int i = 0; i < 3; ++i) {
      mon.begin_write(1, cold);
      m.charge(sim::kMillisecond);
      mon.end_write(1, cold);
    }
  });
  m.run();
  Log log = mon.take_log();
  Moviola mv(log);
  const Moviola::Bottleneck b = mv.bottleneck();
  EXPECT_EQ(b.name, "hot");
  EXPECT_EQ(b.chain, 9u);
  const auto per_actor = mv.events_per_actor();
  EXPECT_EQ(per_actor, (std::vector<std::uint32_t>{9, 3}));
}

TEST(Moviola, DeadlockReportNamesTheWaiters) {
  Machine m(butterfly1(2));
  chrys::Kernel k(m);
  chrys::Oid dq = chrys::kNoObject;
  k.create_process(0, [&] {
    dq = k.make_dual_queue();
    (void)k.dq_dequeue(dq);  // nobody will ever post
  });
  m.run();
  ASSERT_TRUE(m.deadlocked());
  const std::string report = Moviola::deadlock_report(k, m);
  EXPECT_NE(report.find("DEADLOCK"), std::string::npos);
  EXPECT_NE(report.find("dual queue"), std::string::npos);
}

}  // namespace
}  // namespace bfly::replay
