#include "crowd/crowd.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace bfly::crowd {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

TEST(Crowd, EveryWorkerRunsExactlyOnce) {
  Machine m(butterfly1(16));
  chrys::Kernel k(m);
  std::vector<int> hits(37, 0);
  k.create_process(0, [&] {
    spread(k, 37, [&](std::uint32_t w) { ++hits[w]; });
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Crowd, WorkersLandOnDistinctNodes) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  std::vector<sim::NodeId> node_of(8, 999);
  k.create_process(0, [&] {
    spread(k, 8, [&](std::uint32_t w) {
      node_of[w] = k.self().node();
    });
  });
  m.run();
  for (std::uint32_t w = 0; w < 8; ++w) EXPECT_EQ(node_of[w], w % 8);
}

TEST(Crowd, TreeCreationBeatsSerialCreation) {
  auto run = [](bool tree) {
    Machine m(butterfly1(64));
    chrys::Kernel k(m);
    Time t = 0;
    k.create_process(0, [&] {
      auto work = [&k](std::uint32_t) { k.machine().charge(sim::kMillisecond); };
      t = tree ? spread(k, 64, work) : spread_serial(k, 64, work);
    });
    m.run();
    return t;
  };
  const Time serial = run(false);
  const Time tree = run(true);
  EXPECT_LT(tree, serial / 2)
      << "fan-out creation must be well ahead of one-by-one creation at 64";
}

TEST(Crowd, TemplateSerializationCapsTheSpeedup) {
  // The Amdahl lesson: even the tree cannot beat the serialized
  // process-template section — total creation time is bounded below by
  // n * serial_section.
  Machine m(butterfly1(64));
  chrys::Kernel k(m);
  Time t = 0;
  k.create_process(0, [&] { t = spread(k, 64, [](std::uint32_t) {}); });
  m.run();
  const Time floor = 63 * m.config().proc_create_serial_ns;
  EXPECT_GE(t, floor)
      << "the serialized template resource bounds creation from below";
  EXPECT_LT(t, 4 * floor) << "but the tree should stay near that bound";
}

TEST(Crowd, LargerFanoutShortensTheTree) {
  auto run = [](std::uint32_t fanout) {
    Machine m(butterfly1(64));
    chrys::Kernel k(m);
    Time t = 0;
    CrowdOptions opt;
    opt.fanout = fanout;
    k.create_process(0, [&] {
      t = spread(
          k, 64,
          [&k](std::uint32_t) { k.machine().charge(20 * sim::kMillisecond); },
          opt);
    });
    m.run();
    return t;
  };
  // With deep work per worker, tree depth (startup latency) matters less,
  // but fanout-4 should still not lose to fanout-2.
  EXPECT_LE(run(4), run(2) + 10 * sim::kMillisecond);
}

TEST(Crowd, NestedUseInsideWorkers) {
  // Crowd Control composes: each top worker spreads a sub-crowd.
  Machine m(butterfly1(16));
  chrys::Kernel k(m);
  std::atomic<int> total{0};
  k.create_process(0, [&] {
    spread(k, 4, [&](std::uint32_t) {
      spread(k, 4, [&](std::uint32_t) { ++total; });
    });
  });
  m.run();
  EXPECT_EQ(total.load(), 16);
  ASSERT_FALSE(m.deadlocked());
}

}  // namespace
}  // namespace bfly::crowd
