// Planted-race tests for the bfly::analyze happens-before detector, plus
// the lock-order and hot-word lints.  Each racy microprogram has a fixed
// twin that differs only in the synchronization, and the detector must
// flag exactly the planted race in one and nothing in the other.
#include <gtest/gtest.h>

#include <string>

#include "analyze/analyze.hpp"
#include "chrysalis/kernel.hpp"
#include "chrysalis/spinlock.hpp"

namespace bfly::analyze {
namespace {

using sim::butterfly1;
using sim::Machine;

// --- Planted race 1: the unsynchronized counter ------------------------------

// Two processes read-modify-write one shared word with no synchronization:
// the classic lost-update bug.  Exactly one racy word, attributed to the
// two incrementer processes and the labelled object.
TEST(RaceDetector, UnsynchronizedCounterRaces) {
  Machine m(butterfly1(2));
  Analyzer an(m);
  chrys::Kernel k(m);
  const sim::PhysAddr counter = m.alloc(0, 4);
  m.poke<std::uint32_t>(counter, 0);
  m.label_memory(counter, 4, "counter");
  for (std::uint32_t a = 0; a < 2; ++a) {
    k.create_process(
        a,
        [&m, counter] {
          for (int i = 0; i < 4; ++i) {
            const auto v = m.read<std::uint32_t>(counter);
            m.write<std::uint32_t>(counter, v + 1);
          }
        },
        "inc" + std::to_string(a));
  }
  m.run();
  EXPECT_EQ(an.races_total(), 1u);
  ASSERT_EQ(an.races().size(), 1u);
  const RaceReport& r = an.races()[0];
  EXPECT_EQ(r.object, "counter");
  EXPECT_EQ(r.addr, counter);
  // One access from each incrementer, in either order.
  EXPECT_NE(r.actor, r.prior_actor);
  EXPECT_TRUE(r.actor == "inc0" || r.actor == "inc1") << r.actor;
  EXPECT_TRUE(r.prior_actor == "inc0" || r.prior_actor == "inc1")
      << r.prior_actor;
  EXPECT_NE(an.report().find("RACE on counter"), std::string::npos);
}

// Same program with the increment under a spin lock: the lock word's
// test-and-set / release-store pair orders the critical sections, so the
// counter is clean.
TEST(RaceDetector, SpinLockedCounterIsClean) {
  Machine m(butterfly1(2));
  Analyzer an(m);
  chrys::Kernel k(m);
  const sim::PhysAddr counter = m.alloc(0, 4);
  const sim::PhysAddr cell = m.alloc(0, 4);
  m.poke<std::uint32_t>(counter, 0);
  m.poke<std::uint32_t>(cell, 0);
  m.label_memory(counter, 4, "counter");
  for (std::uint32_t a = 0; a < 2; ++a) {
    k.create_process(
        a,
        [&m, counter, cell] {
          chrys::SpinLock lock(m, cell);
          for (int i = 0; i < 4; ++i) {
            lock.acquire();
            const auto v = m.read<std::uint32_t>(counter);
            m.write<std::uint32_t>(counter, v + 1);
            lock.release();
          }
        },
        "inc" + std::to_string(a));
  }
  m.run();
  EXPECT_EQ(an.races_total(), 0u) << an.report();
  EXPECT_EQ(m.peek<std::uint32_t>(counter), 8u);
}

// A PNC fetch_add makes the counter itself a synchronization cell: clean.
TEST(RaceDetector, AtomicCounterIsClean) {
  Machine m(butterfly1(2));
  Analyzer an(m);
  chrys::Kernel k(m);
  const sim::PhysAddr counter = m.alloc(0, 4);
  m.poke<std::uint32_t>(counter, 0);
  m.label_memory(counter, 4, "counter");
  for (std::uint32_t a = 0; a < 2; ++a) {
    k.create_process(a, [&m, counter] {
      for (int i = 0; i < 4; ++i) (void)m.fetch_add_u32(counter, 1);
    });
  }
  m.run();
  EXPECT_EQ(an.races_total(), 0u) << an.report();
  EXPECT_EQ(m.peek<std::uint32_t>(counter), 8u);
}

// --- Planted race 2: the missed event_wait ------------------------------------

// The producer writes a result and posts an event; the consumer "knows"
// the data is ready by then and just sleeps instead of waiting.  Timing
// hides the bug (the read really does come later), but there is no
// happens-before edge — exactly what a race detector exists to catch.
TEST(RaceDetector, MissedEventWaitRaces) {
  Machine m(butterfly1(2));
  Analyzer an(m);
  chrys::Kernel k(m);
  const sim::PhysAddr result = m.alloc(0, 4);
  m.poke<std::uint32_t>(result, 0);
  m.label_memory(result, 4, "result");
  chrys::Oid ev = chrys::kNoObject;
  std::uint32_t got = 0;
  k.create_process(
      0,
      [&] {
        ev = k.make_event();
        k.delay(10 * sim::kMillisecond);  // "surely done by now"
        got = m.read<std::uint32_t>(result);
      },
      "consumer");
  k.create_process(
      1,
      [&] {
        k.delay(2 * sim::kMillisecond);
        m.write<std::uint32_t>(result, 99);
        k.event_post(ev, 1);
      },
      "producer");
  m.run();
  EXPECT_EQ(got, 99u);  // timing hid the bug...
  EXPECT_EQ(an.races_total(), 1u) << an.report();  // ...the clocks did not
  ASSERT_EQ(an.races().size(), 1u);
  const RaceReport& r = an.races()[0];
  EXPECT_EQ(r.object, "result");
  EXPECT_EQ(r.prior_actor, "producer");
  EXPECT_EQ(r.prior_op, sim::MemOp::kWrite);
  EXPECT_EQ(r.actor, "consumer");
}

// Fixed twin: the consumer actually waits, the event edge orders the
// accesses, zero races.
TEST(RaceDetector, PairedEventWaitIsClean) {
  Machine m(butterfly1(2));
  Analyzer an(m);
  chrys::Kernel k(m);
  const sim::PhysAddr result = m.alloc(0, 4);
  m.poke<std::uint32_t>(result, 0);
  m.label_memory(result, 4, "result");
  chrys::Oid ev = chrys::kNoObject;
  std::uint32_t got = 0;
  k.create_process(
      0,
      [&] {
        ev = k.make_event();
        (void)k.event_wait(ev);
        got = m.read<std::uint32_t>(result);
      },
      "consumer");
  k.create_process(
      1,
      [&] {
        k.delay(2 * sim::kMillisecond);
        m.write<std::uint32_t>(result, 99);
        k.event_post(ev, 1);
      },
      "producer");
  m.run();
  EXPECT_EQ(got, 99u);
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

// --- Lock-order lint -----------------------------------------------------------

// Two processes take two spin locks in opposite orders, staggered so this
// run gets away with it: a potential deadlock the acquisition graph still
// exposes as an A->B->A cycle.
TEST(LockOrder, OppositeOrdersMakeACycle) {
  Machine m(butterfly1(2));
  Analyzer an(m);
  chrys::Kernel k(m);
  const sim::PhysAddr ca = m.alloc(0, 4);
  const sim::PhysAddr cb = m.alloc(1, 4);
  m.poke<std::uint32_t>(ca, 0);
  m.poke<std::uint32_t>(cb, 0);
  m.label_memory(ca, 4, "lockA");
  m.label_memory(cb, 4, "lockB");
  k.create_process(0, [&] {
    chrys::SpinLock a(m, ca), b(m, cb);
    a.acquire();
    b.acquire();
    b.release();
    a.release();
  });
  k.create_process(1, [&] {
    chrys::SpinLock a(m, ca), b(m, cb);
    k.delay(50 * sim::kMillisecond);  // stagger: no actual deadlock today
    b.acquire();
    a.acquire();
    a.release();
    b.release();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  const auto cycles = an.lock_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  ASSERT_EQ(cycles[0].names.size(), 2u);
  EXPECT_TRUE((cycles[0].names[0] == "lockA" &&
               cycles[0].names[1] == "lockB") ||
              (cycles[0].names[0] == "lockB" && cycles[0].names[1] == "lockA"))
      << cycles[0].names[0] << " / " << cycles[0].names[1];
  EXPECT_NE(an.report().find("CYCLE"), std::string::npos);
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

// Consistent A-then-B ordering everywhere: no cycle.
TEST(LockOrder, ConsistentOrderIsClean) {
  Machine m(butterfly1(2));
  Analyzer an(m);
  chrys::Kernel k(m);
  const sim::PhysAddr ca = m.alloc(0, 4);
  const sim::PhysAddr cb = m.alloc(1, 4);
  m.poke<std::uint32_t>(ca, 0);
  m.poke<std::uint32_t>(cb, 0);
  for (std::uint32_t p = 0; p < 2; ++p) {
    k.create_process(p, [&, p] {
      chrys::SpinLock a(m, ca), b(m, cb);
      k.delay(p * 50 * sim::kMillisecond);
      a.acquire();
      b.acquire();
      b.release();
      a.release();
    });
  }
  m.run();
  EXPECT_TRUE(an.lock_cycles().empty());
}

// --- Hot-word lint -------------------------------------------------------------

// One fiber hammers a remote word; its home module spends a visible
// fraction of the run serving remote traffic for that single address —
// the paper's memory-contention smell, as a report.
TEST(HotWord, RemoteHammeredWordIsFlagged) {
  Machine m(butterfly1(2));
  Analyzer an(m);
  const sim::PhysAddr cell = m.alloc(0, 4);
  m.poke<std::uint32_t>(cell, 0);
  m.label_memory(cell, 4, "hot_cell");
  m.spawn(1, [&] {
    for (int i = 0; i < 2000; ++i) (void)m.read<std::uint32_t>(cell);
  });
  m.run();
  const auto hot = an.hot_words();
  ASSERT_GE(hot.size(), 1u) << an.report();
  EXPECT_EQ(hot[0].object, "hot_cell");
  EXPECT_GE(hot[0].remote_words, 2000u);
  EXPECT_GE(hot[0].occupancy, 0.05);
  EXPECT_EQ(an.races_total(), 0u);
}

// The same traffic issued locally never trips the remote-occupancy lint.
TEST(HotWord, LocalTrafficIsNotFlagged) {
  Machine m(butterfly1(2));
  Analyzer an(m);
  const sim::PhysAddr cell = m.alloc(0, 4);
  m.poke<std::uint32_t>(cell, 0);
  m.spawn(0, [&] {
    for (int i = 0; i < 2000; ++i) (void)m.read<std::uint32_t>(cell);
  });
  m.run();
  EXPECT_TRUE(an.hot_words().empty()) << an.report();
}

// --- Mechanics ----------------------------------------------------------------

// Freed memory must not leak epochs into its next owner: allocate, race-free
// write, free, reallocate from another actor — no false race.
TEST(RaceDetector, FreeClearsShadowState) {
  Machine m(butterfly1(2));
  Analyzer an(m);
  chrys::Kernel k(m);
  k.create_process(0, [&] {
    const sim::PhysAddr a = m.alloc(0, 8);
    m.write<std::uint32_t>(a, 1);
    m.free(a, 8);
    k.delay(sim::kMillisecond);
  });
  k.create_process(1, [&] {
    k.delay(5 * sim::kMillisecond);
    // First-fit hands back the same range the other process just used.
    const sim::PhysAddr b = m.alloc(0, 8);
    m.write<std::uint32_t>(b, 2);
    m.free(b, 8);
  });
  m.run();
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

// Suppressions drop matching objects from the report but the shadow word
// still stops re-reporting.
TEST(RaceDetector, SuppressionSilencesAnObject) {
  Machine m(butterfly1(2));
  Analyzer an(m);
  an.suppress("counter");
  chrys::Kernel k(m);
  const sim::PhysAddr counter = m.alloc(0, 4);
  m.poke<std::uint32_t>(counter, 0);
  m.label_memory(counter, 4, "counter");
  for (std::uint32_t a = 0; a < 2; ++a) {
    k.create_process(a, [&m, counter] {
      for (int i = 0; i < 4; ++i) {
        const auto v = m.read<std::uint32_t>(counter);
        m.write<std::uint32_t>(counter, v + 1);
      }
    });
  }
  m.run();
  EXPECT_EQ(an.races_total(), 0u);
  EXPECT_TRUE(an.races().empty());
}

}  // namespace
}  // namespace bfly::analyze
