// Race-detector sweep over the application suite: every app runs (small
// problem sizes, small machine) with the Analyzer attached and must come
// out race-free.  Gauss under the Uniform System is the acceptance bar
// from the issue; the rest of the suite rides along so a future change
// that drops a happens-before edge anywhere in the stack fails here.
#include <gtest/gtest.h>

#include "analyze/analyze.hpp"
#include "apps/alphabeta.hpp"
#include "apps/connectionist.hpp"
#include "apps/gauss.hpp"
#include "apps/geometry.hpp"
#include "apps/graph.hpp"
#include "apps/hough.hpp"
#include "apps/image.hpp"
#include "apps/mst.hpp"
#include "apps/pedagogical.hpp"
#include "apps/pentominoes.hpp"
#include "apps/sort.hpp"

namespace bfly::analyze {
namespace {

using sim::butterfly1;
using sim::Machine;

TEST(AppsScan, GaussUs) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  apps::GaussConfig cfg;
  cfg.n = 24;
  apps::GaussResult r = apps::gauss_us(m, cfg);
  EXPECT_LT(apps::gauss_error(r, cfg.n, cfg.seed), 1e-9);
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, GaussSmp) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  apps::GaussConfig cfg;
  cfg.n = 24;
  apps::GaussResult r = apps::gauss_smp(m, cfg);
  EXPECT_LT(apps::gauss_error(r, cfg.n, cfg.seed), 1e-9);
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, Hough) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  apps::HoughConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.angles = 45;
  cfg.processors = 8;
  cfg.noise = 50;
  (void)apps::hough(m, cfg);
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, OddEvenSort) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  apps::SortConfig cfg;
  cfg.n = 128;
  cfg.processors = 4;
  apps::SortResult r = apps::odd_even_sort(m, cfg);
  EXPECT_TRUE(std::is_sorted(r.keys.begin(), r.keys.end()));
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, BitonicSort) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  apps::SortConfig cfg;
  cfg.n = 128;
  cfg.processors = 4;
  apps::SortResult r = apps::bitonic_sort(m, cfg);
  EXPECT_TRUE(std::is_sorted(r.keys.begin(), r.keys.end()));
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, BiffApplyAndHistogram) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  const apps::Image img = apps::Image::synthetic(48, 48, 5);
  (void)apps::biff_apply(m, img, apps::filter_invert(), 4);
  (void)apps::biff_histogram(m, img, 4);
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, BiffPipeline) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  const apps::Image img = apps::Image::synthetic(48, 48, 6);
  (void)apps::biff_pipeline(
      m, img, {apps::filter_threshold(96), apps::filter_invert()}, 4);
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, ConvexHull) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  (void)apps::convex_hull(m, apps::random_points(200, 21), 8);
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, ConnectedComponents) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  // Documented suppression: connected_components uses chaotic relaxation —
  // same-round tasks read neighbour labels while others overwrite them,
  // with no synchronization by design.  Labels move monotonically towards
  // the component minimum and the driver loops to a fixpoint, so a stale
  // read only delays convergence (the result check below proves it).  See
  // the matching comment in src/apps/graph.cpp.
  an.suppress("cc.labels");
  const apps::Graph g = apps::Graph::random(60, 3, 77);
  apps::GraphRunResult r = apps::connected_components(m, g, 8);
  EXPECT_EQ(r.labels, apps::cc_reference(g));
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, TransitiveClosure) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  const apps::Graph g = apps::Graph::random(30, 2, 5);
  apps::GraphRunResult r = apps::transitive_closure(m, g, 8);
  EXPECT_EQ(r.value, apps::closure_reference(g));
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, SubgraphIso) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  const apps::Graph tri = apps::Graph::cliques(1, 3);
  const apps::Graph host = apps::Graph::cliques(1, 4);
  (void)apps::subgraph_isomorphism(m, tri, host, 8);
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, BoruvkaMst) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  const apps::WeightedGraph g = apps::WeightedGraph::random(40, 20, 9);
  apps::MstResult r = apps::boruvka_mst(m, g, 8);
  EXPECT_EQ(r.total_weight, apps::mst_reference(g));
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, Queens) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  apps::QueensResult r = apps::queens(m, 6, 8);
  EXPECT_EQ(r.solutions, apps::queens_reference(6));
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, KnightsTour) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  (void)apps::knights_tour(m, 5, 4, 11);
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, Pentominoes) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  apps::PentominoConfig cfg;  // 5x5, FILTY
  (void)apps::pentominoes(m, cfg, 8);
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, AlphaBeta) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  apps::GameConfig cfg;
  cfg.depth = 4;
  cfg.branching = 5;
  apps::SearchResult r = apps::alphabeta_parallel(m, cfg, 8);
  EXPECT_EQ(r.value, apps::alphabeta_reference(cfg).value);
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

TEST(AppsScan, Connectionist) {
  Machine m(butterfly1(8));
  Analyzer an(m);
  apps::ConnectionistConfig cfg;
  cfg.units = 64;
  cfg.fanin = 6;
  cfg.rounds = 2;
  cfg.processors = 4;
  (void)apps::connectionist(m, cfg);
  EXPECT_EQ(an.races_total(), 0u) << an.report();
}

}  // namespace
}  // namespace bfly::analyze
