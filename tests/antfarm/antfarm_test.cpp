#include "antfarm/antfarm.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace bfly::antfarm {
namespace {

using sim::butterfly1;
using sim::Machine;

// Runs `body` on a creator process with a colony; the colony is joined
// after body returns, so any state the threads touch must be declared in
// the caller's scope (it must outlive `body`).
void with_colony(std::uint32_t machine_nodes, std::uint32_t colony_nodes,
                 std::function<void(chrys::Kernel&, Colony&)> body) {
  Machine m(butterfly1(machine_nodes));
  chrys::Kernel k(m);
  k.create_process(0, [&] {
    Colony col(k, colony_nodes);
    body(k, col);
    col.join();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(AntFarm, ThreadsRunOnTheirNodes) {
  std::vector<sim::NodeId> where;
  with_colony(8, 4, [&where](chrys::Kernel&, Colony& col) {
    for (sim::NodeId n = 0; n < 4; ++n)
      col.start(n, [&col, &where] {
        where.push_back(Colony::node_of(col.self()));
      });
  });
  std::sort(where.begin(), where.end());
  EXPECT_EQ(where, (std::vector<sim::NodeId>{0, 1, 2, 3}));
}

TEST(AntFarm, ManyThreadsOnOneProcess) {
  // The point of Ant Farm: far more threads than a node could hold
  // processes (SARs limited processes to a handful per node).
  int count = 0;
  with_colony(4, 2, [&count](chrys::Kernel&, Colony& col) {
    for (int i = 0; i < 300; ++i)
      col.start(i % 2, [&count] { ++count; });
  });
  EXPECT_EQ(count, 300);
}

TEST(AntFarm, SendReceiveAcrossNodes) {
  std::uint64_t got = 0;
  with_colony(8, 4, [&got](chrys::Kernel&, Colony& col) {
    const ThreadId receiver =
        col.start(3, [&col, &got] { got = col.receive(); });
    col.start(1, [&col, receiver] { col.send(receiver, 777); });
  });
  EXPECT_EQ(got, 777u);
}

TEST(AntFarm, BlockingReceiveSwitchesToOtherThreads) {
  // A blocked thread must not stall its siblings on the same node.
  std::vector<int> order;
  with_colony(4, 1, [&order](chrys::Kernel&, Colony& col) {
    const ThreadId waiter = col.start(0, [&col, &order] {
      (void)col.receive();  // blocks: no message yet
      order.push_back(2);
    });
    col.start(0, [&col, &order, waiter] {
      order.push_back(1);  // runs while the waiter is blocked
      col.send(waiter, 1);
    });
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(AntFarm, TokenRingAcrossColony) {
  std::uint64_t final_v = 0;
  std::vector<ThreadId> ring(8);
  with_colony(8, 8, [&](chrys::Kernel&, Colony& col) {
    for (sim::NodeId n = 0; n < 8; ++n) {
      ring[n] = col.start(n, [&col, &ring, &final_v, n] {
        const std::uint64_t v = col.receive();
        if (n == 0) {
          final_v = v;
          return;
        }
        col.send(ring[(n + 1) % 8], v + 1);
      });
    }
    col.send(ring[1], 1);  // kick off at node 1: walks 1..7 then back to 0
  });
  EXPECT_EQ(final_v, 8u);
}

TEST(AntFarm, OneThreadPerGraphNodeShortestPath) {
  // The motivating use: one lightweight thread per graph vertex running a
  // wavefront shortest-path relaxation.
  constexpr std::uint32_t kV = 24;
  std::vector<std::vector<std::uint32_t>> adj(kV);
  for (std::uint32_t v = 0; v < kV; ++v) {
    adj[v].push_back((v + 1) % kV);
    adj[(v + 1) % kV].push_back(v);
    if (v % 4 == 0) {
      adj[v].push_back((v + 7) % kV);
      adj[(v + 7) % kV].push_back(v);
    }
  }
  std::vector<std::uint32_t> dist(kV, 0xffffffffu);
  std::vector<ThreadId> tid(kV);
  with_colony(8, 8, [&](chrys::Kernel&, Colony& col) {
    for (std::uint32_t v = 0; v < kV; ++v) {
      tid[v] = col.start(v % 8, [&, v] {
        while (true) {
          const std::uint64_t d = col.receive();
          if (d == ~0ull) return;  // shutdown token
          if (d >= dist[v]) continue;
          dist[v] = static_cast<std::uint32_t>(d);
          for (std::uint32_t u : adj[v]) col.send(tid[u], d + 1);
        }
      });
    }
    col.send(tid[0], 0);
    // Termination: a supervisor waits for the wave to die down, then
    // broadcasts shutdown tokens.
    col.start(0, [&] {
      for (std::uint32_t i = 0; i < kV * 6; ++i) col.yield();
      for (std::uint32_t v = 0; v < kV; ++v) col.send(tid[v], ~0ull);
    });
  });
  // Verify against host BFS.
  std::vector<std::uint32_t> ref(kV, 0xffffffffu);
  std::deque<std::uint32_t> q{0};
  ref[0] = 0;
  while (!q.empty()) {
    const auto v = q.front();
    q.pop_front();
    for (auto u : adj[v])
      if (ref[u] == 0xffffffffu) {
        ref[u] = ref[v] + 1;
        q.push_back(u);
      }
  }
  EXPECT_EQ(dist, ref);
}

TEST(AntFarm, GallocScattersAcrossNodes) {
  std::vector<sim::NodeId> nodes;
  with_colony(8, 4, [&nodes](chrys::Kernel&, Colony& col) {
    col.start(0, [&col, &nodes] {
      for (int i = 0; i < 8; ++i) nodes.push_back(col.galloc(64).node);
    });
  });
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes, (std::vector<sim::NodeId>{0, 0, 1, 1, 2, 2, 3, 3}));
}

TEST(AntFarm, ThreadSwitchIsMuchCheaperThanProcessCreation) {
  Machine m(butterfly1(2));
  chrys::Kernel k(m);
  sim::Time thread_cost = 0, process_cost = 0;
  k.create_process(0, [&] {
    Colony col(k, 1);
    sim::Time t0 = m.now();
    constexpr int kThreads = 200;
    for (int i = 0; i < kThreads; ++i) col.start(0, [] {});
    col.join();
    thread_cost = (m.now() - t0) / kThreads;  // marginal cost per thread
    t0 = m.now();
    k.create_process(1, [] {});
    process_cost = m.now() - t0;
  });
  m.run();
  EXPECT_LT(thread_cost * 5, process_cost)
      << "lightweight threads must be far cheaper than Chrysalis processes";
}

}  // namespace
}  // namespace bfly::antfarm
