#include "smp/family.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace bfly::smp {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

// Boots a machine, runs `body` as the creating process, runs to completion.
void with_family_creator(std::uint32_t nodes, std::function<void(chrys::Kernel&)> body) {
  Machine m(butterfly1(nodes));
  chrys::Kernel k(m);
  k.create_process(0, [&] { body(k); }, "creator");
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(Topology, Shapes) {
  Topology ring = Topology::ring(5);
  EXPECT_TRUE(ring.connected(0, 4));
  EXPECT_TRUE(ring.connected(2, 3));
  EXPECT_FALSE(ring.connected(0, 2));

  Topology tree = Topology::tree(7, 2);
  EXPECT_TRUE(tree.connected(0, 1));
  EXPECT_TRUE(tree.connected(1, 3));
  EXPECT_FALSE(tree.connected(3, 4));
  EXPECT_EQ(Topology::tree_parent(5), 2u);

  Topology torus = Topology::mesh(3, 4, true, true);
  EXPECT_TRUE(torus.connected(0, 3));   // column wrap
  EXPECT_TRUE(torus.connected(0, 8));   // row wrap
  EXPECT_TRUE(torus.connected(5, 6));

  Topology star = Topology::star(6);
  EXPECT_TRUE(star.connected(0, 5));
  EXPECT_FALSE(star.connected(1, 2));
}

TEST(Family, PingPong) {
  with_family_creator(4, [](chrys::Kernel& k) {
    std::uint32_t echoed = 0;
    Family fam(
        k, Topology::line(2),
        [&](Member& me) {
          if (me.index() == 0) {
            me.send_value<std::uint32_t>(1, 1, 0xc0ffee);
            Message r = me.receive();
            echoed = r.as<std::uint32_t>();
          } else {
            Message msg = me.receive();
            const auto v = msg.as<std::uint32_t>();
            me.send_value<std::uint32_t>(0, 2, v + 1);
          }
        });
    fam.join();
    EXPECT_EQ(echoed, 0xc0ffee + 1u);
    EXPECT_EQ(fam.messages_sent(), 2u);
  });
}

TEST(Family, NonNeighborSendThrows) {
  with_family_creator(4, [](chrys::Kernel& k) {
    int code = 0;
    Family fam(k, Topology::line(3), [&](Member& me) {
      if (me.index() == 0) {
        code = k.catch_block([&] { me.send_value<std::uint32_t>(2, 0, 1); });
      }
    });
    fam.join();
    EXPECT_EQ(code, chrys::kThrowNotConnected);
  });
}

TEST(Family, RingPassesTokenAround) {
  constexpr std::uint32_t kN = 8;
  with_family_creator(8, [](chrys::Kernel& k) {
    std::uint32_t final_sum = 0;
    Family fam(k, Topology::ring(kN), [&](Member& me) {
      const std::uint32_t next = (me.index() + 1) % kN;
      if (me.index() == 0) {
        me.send_value<std::uint32_t>(next, 0, 0);
        Message back = me.receive();
        final_sum = back.as<std::uint32_t>();
      } else {
        Message msg = me.receive();
        me.send_value<std::uint32_t>(next, 0, msg.as<std::uint32_t>() + me.index());
      }
    });
    fam.join();
    EXPECT_EQ(final_sum, (kN - 1) * kN / 2);
  });
}

TEST(Family, TreeReduction) {
  constexpr std::uint32_t kN = 15;
  with_family_creator(16, [](chrys::Kernel& k) {
    std::uint32_t total = 0;
    Family fam(k, Topology::tree(kN, 2), [&](Member& me) {
      std::uint32_t acc = me.index() + 1;  // value at this node
      for (std::uint32_t c : me.children()) {
        (void)c;
        Message msg = me.receive();
        acc += msg.as<std::uint32_t>();
      }
      if (me.index() == 0) total = acc;
      else me.send_value<std::uint32_t>(me.parent(), 0, acc);
    });
    fam.join();
    EXPECT_EQ(total, kN * (kN + 1) / 2);
  });
}

TEST(Family, LargePayloadsArriveIntact) {
  with_family_creator(4, [](chrys::Kernel& k) {
    bool ok = false;
    Family fam(k, Topology::line(2), [&](Member& me) {
      if (me.index() == 0) {
        std::vector<std::uint8_t> data(4096);
        for (std::size_t i = 0; i < data.size(); ++i)
          data[i] = static_cast<std::uint8_t>(i % 251);
        me.send(1, 7, data.data(), data.size());
      } else {
        Message msg = me.receive();
        ok = msg.tag == 7 && msg.payload.size() == 4096;
        for (std::size_t i = 0; ok && i < msg.payload.size(); ++i)
          ok = msg.payload[i] == static_cast<std::uint8_t>(i % 251);
      }
    });
    fam.join();
    EXPECT_TRUE(ok);
  });
}

TEST(Family, FixedAllocationMapsMembersToNodes) {
  with_family_creator(4, [](chrys::Kernel& k) {
    std::vector<sim::NodeId> where(6, 999);
    FamilyOptions opt;
    opt.base_node = 2;
    Family fam(
        k, Topology::complete(6),
        [&](Member& me) { where[me.index()] = me.node(); }, opt);
    fam.join();
    for (std::uint32_t i = 0; i < 6; ++i) EXPECT_EQ(where[i], (2 + i) % 4);
  });
}

TEST(Family, TryReceiveDoesNotBlock) {
  with_family_creator(4, [](chrys::Kernel& k) {
    bool was_empty = false, got_later = false;
    Family fam(k, Topology::line(2), [&](Member& me) {
      if (me.index() == 1) {
        Message msg;
        was_empty = !me.try_receive(&msg);
        while (!me.try_receive(&msg)) k.delay(sim::kMillisecond);
        got_later = msg.as<std::uint32_t>() == 5;
      } else {
        k.delay(10 * sim::kMillisecond);
        me.send_value<std::uint32_t>(1, 0, 5);
      }
    });
    fam.join();
    EXPECT_TRUE(was_empty);
    EXPECT_TRUE(got_later);
  });
}

TEST(SarCacheT, CacheAvoidsRemapCost) {
  // Repeated sends on one channel: with the cache only the first pays the
  // map; without it every send pays map + unmap.
  auto total_time = [](std::uint32_t cache_cap) {
    Machine m(butterfly1(4));
    chrys::Kernel k(m);
    Time t = 0;
    k.create_process(0, [&] {
      FamilyOptions opt;
      opt.sar_cache_capacity = cache_cap;
      Family fam(k, Topology::line(2), [&](Member& me) {
        if (me.index() == 0) {
          const Time t0 = k.machine().now();
          for (int i = 0; i < 20; ++i)
            me.send_value<std::uint32_t>(1, 0, i);
          t = k.machine().now() - t0;
        } else {
          for (int i = 0; i < 20; ++i) (void)me.receive();
        }
      }, opt);
      fam.join();
    });
    m.run();
    return t;
  };
  const Time cached = total_time(8);
  const Time uncached = total_time(0);
  EXPECT_LT(cached * 3, uncached)
      << "the SAR cache must amortize the ~1 ms map/unmap per message";
}

TEST(SarCacheT, EvictionWhenChannelsExceedCapacity) {
  Machine m(butterfly1(2));
  SarCache cache(m, 2);
  Time spent = 0;
  m.spawn(0, [&] {
    cache.access(1);
    cache.access(2);
    cache.access(1);  // hit
    cache.access(3);  // evicts 2
    cache.access(2);  // miss again
    spent = m.now();
  });
  m.run();
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_GT(spent, 0u);
}

TEST(Family, ManyToOneFunnel) {
  // Star: all leaves report to the hub — the Gaussian elimination shape.
  constexpr std::uint32_t kN = 9;
  with_family_creator(16, [](chrys::Kernel& k) {
    std::uint32_t received = 0, sum = 0;
    Family fam(k, Topology::star(kN), [&](Member& me) {
      if (me.index() == 0) {
        for (std::uint32_t i = 1; i < kN; ++i) {
          Message msg = me.receive();
          ++received;
          sum += msg.as<std::uint32_t>();
        }
      } else {
        me.send_value<std::uint32_t>(0, 0, me.index());
      }
    });
    fam.join();
    EXPECT_EQ(received, kN - 1);
    EXPECT_EQ(sum, kN * (kN - 1) / 2);
  });
}

}  // namespace
}  // namespace bfly::smp
