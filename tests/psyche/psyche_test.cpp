#include "psyche/psyche.hpp"

#include <gtest/gtest.h>

namespace bfly::psyche {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

void with_os(std::function<void(chrys::Kernel&, Psyche&)> body) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  Psyche os(k);
  k.create_process(0, [&] { body(k, os); });
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(Psyche, RealmsLiveInAUniformAddressSpace) {
  with_os([](chrys::Kernel&, Psyche& os) {
    const RealmId a = os.create_realm(1, 4096, "a");
    const RealmId b = os.create_realm(2, 4096, "b");
    // Unique, non-overlapping uniform ranges.
    EXPECT_NE(os.realm_base(a), os.realm_base(b));
    // A pointer into realm b can be passed around and dereferenced by
    // anyone — no per-process address spaces to translate between.
    const std::uint64_t p = os.realm_base(b) + 128;
    os.uwrite<std::uint64_t>(p, 0xfeedface);
    EXPECT_EQ(os.uread<std::uint64_t>(p), 0xfeedfaceu);
  });
}

TEST(Psyche, BadUniformAddressFaults) {
  with_os([](chrys::Kernel& k, Psyche& os) {
    (void)os.create_realm(1, 256, "small");
    const int code = k.catch_block(
        [&] { (void)os.uread<std::uint32_t>(0xdead0000ull); });
    EXPECT_EQ(code, chrys::kThrowSegmentFault);
  });
}

TEST(Psyche, OperationsRunThroughAccessProtocols) {
  with_os([](chrys::Kernel&, Psyche& os) {
    const RealmId counter = os.create_realm(1, 64, "counter");
    const std::uint64_t cell = os.realm_base(counter);
    os.uwrite<std::uint64_t>(cell, 0);
    os.define_operation(counter, "add", [&](std::uint64_t d) {
      const auto v = os.uread<std::uint64_t>(cell) + d;
      os.uwrite<std::uint64_t>(cell, v);
      return v;
    });
    EXPECT_EQ(os.invoke(counter, "add", 5, Access::kOptimized), 5u);
    EXPECT_EQ(os.invoke(counter, "add", 7, Access::kOptimized), 12u);
  });
}

TEST(Psyche, ProtectedInvokeRequiresAKey) {
  with_os([](chrys::Kernel& k, Psyche& os) {
    const RealmId r = os.create_realm(1, 64, "guarded");
    os.define_operation(r, "op", [](std::uint64_t) { return 1ull; });
    // Without a key: denied.
    int code = k.catch_block([&] { (void)os.invoke(r, "op", 0); });
    EXPECT_EQ(code, chrys::kThrowNotOwner);
    // With a key on the access list: allowed.
    const Key key = os.mint_key(r, kInvoke);
    os.hold_key(key);
    EXPECT_EQ(os.invoke(r, "op", 0), 1u);
  });
}

TEST(Psyche, OptimizedAccessSkipsTheCheckEntirely) {
  // The explicit protection/performance tradeoff: optimized access works
  // even without rights — you chose speed over checking.
  with_os([](chrys::Kernel&, Psyche& os) {
    const RealmId r = os.create_realm(1, 64, "open");
    os.define_operation(r, "op", [](std::uint64_t) { return 9ull; });
    EXPECT_EQ(os.invoke(r, "op", 0, Access::kOptimized), 9u);
  });
}

TEST(Psyche, PrivilegesAreEvaluatedLazily) {
  with_os([](chrys::Kernel&, Psyche& os) {
    const RealmId r = os.create_realm(1, 64, "lazy");
    os.define_operation(r, "op", [](std::uint64_t) { return 0ull; });
    os.hold_key(os.mint_key(r, kInvoke));
    for (int i = 0; i < 10; ++i) (void)os.invoke(r, "op", 0);
    EXPECT_EQ(os.validations(), 1u) << "only the first call validates";
    EXPECT_EQ(os.cache_hits(), 9u);
  });
}

TEST(Psyche, RevocationInvalidatesCachedPrivileges) {
  with_os([](chrys::Kernel& k, Psyche& os) {
    const RealmId r = os.create_realm(1, 64, "revocable");
    os.define_operation(r, "op", [](std::uint64_t) { return 0ull; });
    const Key key = os.mint_key(r, kInvoke);
    os.hold_key(key);
    (void)os.invoke(r, "op", 0);  // validates and caches
    os.revoke_key(r, key);
    const int code = k.catch_block([&] { (void)os.invoke(r, "op", 0); });
    EXPECT_EQ(code, chrys::kThrowNotOwner)
        << "revocation must pierce the privilege cache";
  });
}

TEST(Psyche, AccessModeCostLadder) {
  // kOptimized ~ procedure call << kProtected (cached) << kParanoid.
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  Psyche os(k);
  Time opt = 0, prot = 0, paranoid = 0;
  k.create_process(0, [&] {
    const RealmId r = os.create_realm(1, 64, "ladder");
    os.define_operation(r, "op", [](std::uint64_t) { return 0ull; });
    os.hold_key(os.mint_key(r, kInvoke));
    constexpr int kReps = 20;
    (void)os.invoke(r, "op", 0);  // warm the cache
    Time t0 = m.now();
    for (int i = 0; i < kReps; ++i) (void)os.invoke(r, "op", 0, Access::kOptimized);
    opt = (m.now() - t0) / kReps;
    t0 = m.now();
    for (int i = 0; i < kReps; ++i) (void)os.invoke(r, "op", 0, Access::kProtected);
    prot = (m.now() - t0) / kReps;
    t0 = m.now();
    for (int i = 0; i < kReps; ++i) (void)os.invoke(r, "op", 0, Access::kParanoid);
    paranoid = (m.now() - t0) / kReps;
  });
  m.run();
  EXPECT_LT(opt * 5, prot);
  EXPECT_LT(prot * 3, paranoid);
}

TEST(Psyche, DifferentModelsShareARealm) {
  // The Psyche thesis in miniature: two processes written against
  // different conventions interact through one realm in the uniform
  // address space.
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  Psyche os(k);
  std::uint64_t consumer_sum = 0;
  RealmId mailbox = 0;
  std::uint64_t base = 0;  // must outlive every process that captures it
  k.create_process(0, [&] {
    mailbox = os.create_realm(4, 1024, "mailbox");
    base = os.realm_base(mailbox);
    os.uwrite<std::uint32_t>(base, 0);  // count
    os.define_operation(mailbox, "deposit", [&os, base](std::uint64_t v) {
      const auto n = os.uread<std::uint32_t>(base);
      os.uwrite<std::uint64_t>(base + 8 + 8 * n, v);
      os.uwrite<std::uint32_t>(base, n + 1);
      return static_cast<std::uint64_t>(n + 1);
    });
    // Producer uses the access protocol; consumer reads the shared data
    // directly through uniform addresses.
    k.create_process(1, [&os, &mailbox] {
      for (std::uint64_t v = 1; v <= 5; ++v)
        (void)os.invoke(mailbox, "deposit", v * 11, Access::kOptimized);
    });
    k.create_process(2, [&] {
      while (os.uread<std::uint32_t>(base) < 5) k.delay(sim::kMillisecond);
      for (int i = 0; i < 5; ++i)
        consumer_sum += os.uread<std::uint64_t>(base + 8 + 8 * i);
    });
  });
  m.run();
  EXPECT_EQ(consumer_sum, 11u * (1 + 2 + 3 + 4 + 5));
  ASSERT_FALSE(m.deadlocked());
}

}  // namespace
}  // namespace bfly::psyche
