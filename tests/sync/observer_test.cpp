// Observer-facing contract of the scalable primitives: attaching the
// moviola wait-graph Detector (and, when built, the analyze race detector)
// to an MCS + tree-barrier workload leaves the run event-identical through
// Instant Replay, publishes the happens-before edges that keep the race
// detector quiet, feeds the lock-order lint, and never manufactures a
// deadlock out of local-spin waiting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chrysalis/kernel.hpp"
#include "moviola/wait_graph.hpp"
#include "replay/instant_replay.hpp"
#include "sync/barrier.hpp"
#include "sync/mcs.hpp"

#ifdef BFLY_HAVE_ANALYZE
#include "analyze/analyze.hpp"
#endif

namespace bfly::sync {
namespace {

using replay::AccessEntry;
using replay::Log;
using replay::Mode;
using replay::Monitor;
using sim::butterfly1;
using sim::Machine;
using sim::Time;

struct SyncRun {
  std::vector<std::uint32_t> order;
  Log log;
  Time elapsed = 0;
};

// Four workers hammer an MCS-guarded shared object for a few rounds, with
// a tree barrier between rounds — both primitives exercised under real
// contention, all accesses recorded through the Instant Replay monitor.
SyncRun run_sync_workload(bool instrumented) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  std::unique_ptr<moviola::Detector> det;
#ifdef BFLY_HAVE_ANALYZE
  std::unique_ptr<analyze::Analyzer> ana;
  if (instrumented) ana = std::make_unique<analyze::Analyzer>(m);
#endif
  if (instrumented) det = std::make_unique<moviola::Detector>(m, &k);

  const std::uint32_t actors = 4;
  std::vector<sim::NodeId> nodes{0, 1, 2, 3};
  McsLock lock(m, 0, nodes, sim::kMicrosecond);
  TreeBarrier bar(m, nodes, 2);
  Monitor mon(k, actors);
  SyncRun out;
  const std::uint32_t obj = mon.register_object(0, "counter");
  mon.set_mode(Mode::kRecord);

  for (std::uint32_t a = 0; a < actors; ++a) {
    k.create_process(nodes[a], [&, a] {
      for (std::uint32_t r = 0; r < 5; ++r) {
        k.delay((1 + (a * 13 + r * 7) % 29) * 100 * sim::kMicrosecond);
        lock.acquire(a);
        mon.begin_write(a, obj);
        out.order.push_back(a);
        m.charge(300 * sim::kMicrosecond);
        mon.end_write(a, obj);
        lock.release(a);
        bar.arrive(a);
      }
    });
  }
  out.elapsed = m.run();
  out.log = mon.take_log();
  if (det) {
    EXPECT_TRUE(det->analyze().empty()) << det->report();
    EXPECT_TRUE(det->lints().empty());
  }
#ifdef BFLY_HAVE_ANALYZE
  if (ana) {
    EXPECT_EQ(ana->races_total(), 0u) << ana->report();
    EXPECT_TRUE(ana->lock_cycles().empty());
  }
#endif
  return out;
}

void expect_logs_identical(const Log& a, const Log& b) {
  ASSERT_EQ(a.per_actor.size(), b.per_actor.size());
  for (std::size_t i = 0; i < a.per_actor.size(); ++i) {
    ASSERT_EQ(a.per_actor[i].size(), b.per_actor[i].size()) << "actor " << i;
    for (std::size_t j = 0; j < a.per_actor[i].size(); ++j) {
      const AccessEntry& x = a.per_actor[i][j];
      const AccessEntry& y = b.per_actor[i][j];
      EXPECT_EQ(x.object, y.object) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.version, y.version) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.readers, y.readers) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.is_write, y.is_write) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.at, y.at) << "actor " << i << " entry " << j;
    }
  }
}

TEST(SyncObservers, InstrumentedRunIsEventIdenticalToBare) {
  const SyncRun bare = run_sync_workload(/*instrumented=*/false);
  const SyncRun inst = run_sync_workload(/*instrumented=*/true);
  EXPECT_EQ(inst.order, bare.order);
  EXPECT_EQ(inst.elapsed, bare.elapsed);
  expect_logs_identical(inst.log, bare.log);
}

TEST(SyncObservers, HeavyMcsContentionIsNotMistakenForADeadlock) {
  // Waiters park by *spinning locally* — runnable the whole time.  A
  // quiescence-based detector watching the run must see ordinary progress,
  // not a wedge, even with its watchdog armed.
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  moviola::Detector det(m, &k);
  det.arm_watchdog(5 * sim::kMillisecond);
  std::vector<sim::NodeId> nodes{0, 1, 2, 3};
  McsLock lock(m, 0, nodes, sim::kMicrosecond);
  int total = 0;
  for (std::uint32_t w = 0; w < 4; ++w) {
    k.create_process(nodes[w], [&, w] {
      for (int r = 0; r < 10; ++r) {
        lock.acquire(w);
        m.charge(2 * sim::kMillisecond);  // long holds: deep queues
        lock.release(w);
        ++total;
      }
    });
  }
  m.run();
  EXPECT_EQ(total, 40);
  EXPECT_FALSE(m.deadlocked());
  EXPECT_FALSE(det.fired());
  EXPECT_TRUE(det.analyze().empty()) << det.report();
}

TEST(SyncObservers, WedgedMcsWaiterIsNamedAsStarved) {
  // The hog takes the MCS lock and blocks in the kernel; the waiter spins
  // on its local flag forever.  The wait-for graph must name the *waiter*
  // (via the probes it publishes on the lock's identity channel), not
  // report a phantom deadlock cycle.
  Machine m(butterfly1(2));
  chrys::Kernel k(m);
  moviola::Detector det(m, &k);
  std::vector<sim::NodeId> nodes{0, 1};
  McsLock lock(m, 0, nodes, sim::kMicrosecond);
  k.create_process(0, [&] {
    lock.acquire(0);
    const chrys::Oid ev = k.make_event();
    (void)k.event_wait(ev);  // never posted: holds the lock forever
  }, "hog");
  k.create_process(1, [&] {
    k.delay(sim::kMillisecond);
    lock.acquire(1);  // spins forever on its local flag
  }, "spinner");
  m.engine().post_at(50 * sim::kMillisecond, [&m] { m.engine().stop(); });
  m.run();

  const auto findings = det.analyze();
  bool starved_spinner = false;
  for (const auto& f : findings) {
    EXPECT_NE(f.kind, moviola::StuckKind::kDeadlock) << det.report();
    if (f.kind == moviola::StuckKind::kStarvation &&
        f.members == std::vector<std::string>{"spinner"}) {
      starved_spinner = true;
      EXPECT_EQ(f.channels,
                (std::vector<std::uint64_t>{sim::chan_of(lock.tail_cell())}));
    }
  }
  EXPECT_TRUE(starved_spinner) << det.report();
}

#ifdef BFLY_HAVE_ANALYZE

TEST(SyncObservers, BarrierEdgesOrderCrossPhaseAccesses) {
  // Worker 0 writes the word before the barrier; worker 1 reads it after.
  // Without the release/acquire edges arrive() publishes, this is a
  // textbook race; with them the analyzer stays quiet.
  Machine m(butterfly1(4));
  analyze::Analyzer ana(m);
  std::vector<sim::NodeId> nodes{0, 1};
  TreeBarrier bar(m, nodes, 2);
  const sim::PhysAddr data = m.alloc(0, 8);
  m.poke<std::uint32_t>(data, 0);
  m.spawn(0, [&] {
    m.write<std::uint32_t>(data, 42);
    bar.arrive(0);
  });
  m.spawn(1, [&] {
    bar.arrive(1);
    EXPECT_EQ(m.read<std::uint32_t>(data), 42u);
  });
  m.run();
  EXPECT_EQ(ana.races_total(), 0u) << ana.report();
}

TEST(SyncObservers, LockOrderLintNamesMcsCycles) {
  // Opposite acquisition orders over two MCS locks — serialized in time so
  // the run completes, but the potential-deadlock cycle must still be
  // reported, symbolized with the MCS tail labels.
  Machine m(butterfly1(4));
  analyze::Analyzer ana(m);
  std::vector<sim::NodeId> nodes{0, 1};
  McsLock a(m, 0, nodes), b(m, 1, nodes);
  m.spawn(0, [&] {
    a.acquire(0);
    b.acquire(0);
    b.release(0);
    a.release(0);
  });
  m.spawn(1, [&] {
    m.charge(100 * sim::kMillisecond);  // well after worker 0 finished
    b.acquire(1);
    a.acquire(1);
    a.release(1);
    b.release(1);
  });
  m.run();
  const auto cycles = ana.lock_cycles();
  ASSERT_FALSE(cycles.empty()) << ana.report();
  bool named = false;
  for (const auto& c : cycles)
    for (const auto& n : c.names)
      if (n.find("sync.mcs.tail") != std::string::npos) named = true;
  EXPECT_TRUE(named) << ana.report();
}

#endif  // BFLY_HAVE_ANALYZE

}  // namespace
}  // namespace bfly::sync
