// Barrier correctness: the centralized 1988 barrier and the sense-reversing
// combining tree, across arities, pool sizes, and repeated episodes.
#include "sync/barrier.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bfly::sync {
namespace {

using sim::butterfly1;
using sim::Machine;

// Run `rounds` increment/check cycles over `workers` fibers: every worker
// bumps its phase counter, crosses the barrier, and verifies all counters
// reached the round (nobody passed early), then crosses again so no worker
// races ahead into the next increment.
template <typename Barrier>
void run_phases(Machine& m, Barrier& bar, std::uint32_t workers,
                std::uint32_t rounds, const std::vector<sim::NodeId>& nodes) {
  std::vector<std::uint32_t> phase(workers, 0);
  for (std::uint32_t w = 0; w < workers; ++w) {
    m.spawn(nodes[w % nodes.size()], [&, w] {
      for (std::uint32_t r = 0; r < rounds; ++r) {
        ++phase[w];
        m.charge((1 + (w * 7 + r) % 13) * 10 * sim::kMicrosecond);
        bar.arrive(w);
        for (std::uint32_t x = 0; x < workers; ++x)
          EXPECT_EQ(phase[x], r + 1) << "round " << r << " worker " << w;
        bar.arrive(w);
      }
    });
  }
  m.run();
  for (std::uint32_t x = 0; x < workers; ++x) EXPECT_EQ(phase[x], rounds);
}

TEST(CentralBarrier, SynchronizesRepeatedRounds) {
  Machine m(butterfly1(8));
  std::vector<sim::NodeId> nodes{0, 1, 2, 3, 4, 5, 6, 7};
  CentralBarrier bar(m, 0, 8);
  run_phases(m, bar, 8, 5, nodes);
  EXPECT_EQ(m.stats().barrier_episodes, 10u);  // two arrives per round
}

TEST(CentralBarrier, SingleWorkerNeverBlocks) {
  Machine m(butterfly1(2));
  CentralBarrier bar(m, 0, 1);
  std::vector<sim::NodeId> nodes{0};
  run_phases(m, bar, 1, 3, nodes);
}

TEST(TreeBarrier, SynchronizesAcrossArities) {
  for (const std::uint32_t arity : {2u, 3u, 4u, 8u}) {
    Machine m(butterfly1(16));
    std::vector<sim::NodeId> nodes;
    for (sim::NodeId n = 0; n < 16; ++n) nodes.push_back(n);
    TreeBarrier bar(m, nodes, arity);
    run_phases(m, bar, 16, 4, nodes);
    EXPECT_EQ(m.stats().barrier_episodes, 8u) << "arity " << arity;
  }
}

TEST(TreeBarrier, HandlesPoolSizesOffTheArity) {
  // 13 workers at arity 4: ragged last groups at every level.
  Machine m(butterfly1(16));
  std::vector<sim::NodeId> nodes;
  for (sim::NodeId n = 0; n < 13; ++n) nodes.push_back(n);
  TreeBarrier bar(m, nodes, 4);
  EXPECT_EQ(bar.levels(), 2u);  // 13 -> 4 groups -> 1 root
  run_phases(m, bar, 13, 4, nodes);
}

TEST(TreeBarrier, LevelCountIsLogArity) {
  Machine m(butterfly1(64));
  std::vector<sim::NodeId> nodes;
  for (sim::NodeId n = 0; n < 64; ++n) nodes.push_back(n);
  EXPECT_EQ(TreeBarrier(m, nodes, 4).levels(), 3u);   // 64 -> 16 -> 4 -> 1
  EXPECT_EQ(TreeBarrier(m, nodes, 8).levels(), 2u);   // 64 -> 8 -> 1
  EXPECT_EQ(TreeBarrier(m, nodes, 2).levels(), 6u);   // 2^6
}

TEST(TreeBarrier, SingleWorkerNeverBlocks) {
  Machine m(butterfly1(2));
  std::vector<sim::NodeId> nodes{0};
  TreeBarrier bar(m, nodes, 4);
  run_phases(m, bar, 1, 3, nodes);
}

TEST(TreeBarrier, WaitersSpinOnTheirOwnNodesOnly) {
  // Hold the barrier open by delaying the last arriver; the early arrivers
  // must not generate traffic into any node but their own while they wait.
  Machine m(butterfly1(8));
  std::vector<sim::NodeId> nodes{0, 1, 2, 3};
  TreeBarrier bar(m, nodes, 4);
  for (std::uint32_t w = 0; w < 4; ++w) {
    m.spawn(nodes[w], [&, w] {
      if (w == 3) m.charge(20 * sim::kMillisecond);  // everyone else waits
      bar.arrive(w);
    });
  }
  const std::uint64_t before = m.stats().node[3].serviced_remote;
  m.run();
  // Node 3 (the straggler, whose own cell also hosts nothing shared)
  // serviced no remote probe stream while the others spun for ~20 ms.
  EXPECT_LT(m.stats().node[3].serviced_remote - before, 16u);
  EXPECT_GT(bar.local_spins(), 0u);
}

}  // namespace
}  // namespace bfly::sync
