// MCS queue locks: mutual exclusion, FIFO handoff, the local-spin property
// (waiters cost the lock holder's node nothing), and the swap/cas PNC
// primitives the lock is built from.
#include "sync/mcs.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "chrysalis/spinlock.hpp"

namespace bfly::sync {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::PhysAddr;

TEST(PncAtomics, SwapReturnsPreviousValue) {
  Machine m(butterfly1(4));
  const PhysAddr a = m.alloc(1, 8);
  m.poke<std::uint32_t>(a, 0);
  m.spawn(0, [&] {
    EXPECT_EQ(m.swap_u32(a, 5), 0u);
    EXPECT_EQ(m.swap_u32(a, 9), 5u);
    EXPECT_EQ(m.read<std::uint32_t>(a), 9u);
  });
  m.run();
}

TEST(PncAtomics, CasStoresOnlyOnMatch) {
  Machine m(butterfly1(4));
  const PhysAddr a = m.alloc(1, 8);
  m.poke<std::uint32_t>(a, 5);
  m.spawn(0, [&] {
    EXPECT_EQ(m.cas_u32(a, 5, 9), 5u);   // matches: stores 9
    EXPECT_EQ(m.read<std::uint32_t>(a), 9u);
    EXPECT_EQ(m.cas_u32(a, 5, 7), 9u);   // stale expect: no store
    EXPECT_EQ(m.read<std::uint32_t>(a), 9u);
  });
  m.run();
}

TEST(McsLock, MutualExclusionUnderContention) {
  Machine m(butterfly1(8));
  std::vector<sim::NodeId> nodes{0, 1, 2, 3, 4, 5, 6, 7};
  McsLock lock(m, 0, nodes);
  int in_cs = 0, max_in_cs = 0, total = 0;
  for (std::uint32_t w = 0; w < 8; ++w) {
    m.spawn(nodes[w], [&, w] {
      for (int r = 0; r < 20; ++r) {
        lock.acquire(w);
        max_in_cs = std::max(max_in_cs, ++in_cs);
        m.charge(50 * sim::kMicrosecond);
        --in_cs;
        lock.release(w);
        m.charge(10 * sim::kMicrosecond);
        ++total;
      }
    });
  }
  m.run();
  EXPECT_EQ(max_in_cs, 1);
  EXPECT_EQ(total, 8 * 20);
  EXPECT_EQ(lock.acquisitions(), 160u);
  EXPECT_EQ(m.stats().lock_acquisitions, 160u);
}

TEST(McsLock, HandoffIsFifoInArrivalOrder) {
  Machine m(butterfly1(8));
  std::vector<sim::NodeId> nodes{0, 1, 2, 3, 4, 5, 6, 7};
  McsLock lock(m, 0, nodes);
  std::vector<std::uint32_t> order;
  for (std::uint32_t w = 0; w < 8; ++w) {
    m.spawn(nodes[w], [&, w] {
      // Stagger arrivals well past a switch round trip so the tail swaps
      // land in worker order; the long critical section queues everyone.
      m.charge((1 + w) * 100 * sim::kMicrosecond);
      lock.acquire(w);
      order.push_back(w);
      m.charge(2 * sim::kMillisecond);
      lock.release(w);
    });
  }
  m.run();
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(McsLock, WaitersDoNotTouchTheHomeNodeWhileSpinning) {
  // The whole point of the algorithm: a queued waiter probes its own node's
  // memory.  Compare remote references serviced by the lock's home node
  // under a long hold — the 1988 spin lock hammers it once per probe, the
  // MCS queue touches it a constant number of times per contender.
  const auto contend = [](bool mcs) {
    Machine m(butterfly1(8));
    std::vector<sim::NodeId> nodes{1, 2, 3, 4};
    const PhysAddr cell = m.alloc(0, 8);
    m.poke<std::uint32_t>(cell, 0);
    McsLock qlock(m, 0, nodes, sim::kMicrosecond);
    for (std::uint32_t w = 0; w < 4; ++w) {
      m.spawn(nodes[w], [&m, &qlock, cell, w, mcs] {
        chrys::SpinLock slock(m, cell, sim::kMicrosecond);
        if (mcs) qlock.acquire(w); else slock.acquire();
        if (w == 0) m.charge(20 * sim::kMillisecond);  // the long hold
        if (mcs) qlock.release(w); else slock.release();
      });
    }
    m.run();
    return m.stats().node[0].serviced_remote;
  };
  const std::uint64_t spin_remote = contend(false);
  const std::uint64_t mcs_remote = contend(true);
  // Spinners probed the home node for ~20 ms at 1 us.
  EXPECT_GT(spin_remote, 1000u);
  // MCS: per contender one tail swap + a link/handoff pair, plus the
  // release CAS — a small constant, not a probe stream.
  EXPECT_LT(mcs_remote, 40u);
}

TEST(McsLock, UncontendedAcquireIsCheap) {
  Machine m(butterfly1(4));
  std::vector<sim::NodeId> nodes{1};
  McsLock lock(m, 0, nodes);
  m.spawn(1, [&] {
    for (int i = 0; i < 10; ++i) {
      lock.acquire(0);
      lock.release(0);
    }
  });
  m.run();
  EXPECT_EQ(lock.acquisitions(), 10u);
  EXPECT_EQ(lock.local_spins(), 0u);  // never queued behind anyone
}

}  // namespace
}  // namespace bfly::sync
