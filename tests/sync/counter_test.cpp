// Idle-counter strategies: central exactness, distributed modular sums,
// and the Uniform System running (and surviving kills) on each.
#include "sync/counter.hpp"

#include <gtest/gtest.h>

#include "us/uniform_system.hpp"

namespace bfly::sync {
namespace {

using sim::butterfly1;
using sim::exascale_ish;
using sim::Machine;

TEST(CentralCounter, IsExactAndReturnsPrevious) {
  Machine m(butterfly1(4));
  CentralCounter c(m, 0, "test.counter");
  EXPECT_TRUE(c.exact());
  m.spawn(1, [&] {
    EXPECT_EQ(c.add(3), 0u);
    EXPECT_EQ(c.add(0xffffffffu), 3u);  // decrement
    EXPECT_EQ(c.read(), 2u);
  });
  m.run();
  EXPECT_EQ(c.peek_total(), 2u);
  c.poke_adjust(-2);
  EXPECT_EQ(c.peek_total(), 0u);
}

TEST(DistributedCounter, SumsCellsThatWrapIndividually) {
  Machine m(butterfly1(8));
  std::vector<sim::NodeId> nodes{0, 1, 2, 3, 4, 5, 6, 7};
  DistributedCounter c(m, nodes, "test.counter");
  EXPECT_FALSE(c.exact());
  // Node 0 generates 24 units of work; every node retires 3 of them — the
  // retiring cells go "negative" (wrap), only the sum means anything.
  m.spawn(0, [&] { EXPECT_EQ(c.add(24), IdleCounter::kUnknown); });
  m.run();
  EXPECT_EQ(c.peek_total(), 24u);
  for (sim::NodeId n = 0; n < 8; ++n)
    m.spawn(n, [&] { (void)c.add(0xfffffffdu); });  // -3 each
  m.run();
  EXPECT_EQ(c.peek_total(), 0u);
  std::uint32_t seen = 1;
  m.spawn(5, [&] { seen = c.read(); });
  m.run();
  EXPECT_EQ(seen, 0u);
}

TEST(DistributedCounter, ExciseFoldsTheCellValue) {
  Machine m(butterfly1(4));
  std::vector<sim::NodeId> nodes{0, 1, 2, 3};
  DistributedCounter c(m, nodes, "test.counter");
  m.spawn(2, [&] { (void)c.add(7); });
  m.run();
  c.excise(2);
  EXPECT_EQ(c.peek_total(), 7u);  // survived the node
  c.poke_adjust(-7);
  EXPECT_EQ(c.peek_total(), 0u);
}

TEST(UsCounter, AutoFollowsTheMachineStrategy) {
  {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    us::UniformSystem us(k);
    us.run_main([&] { EXPECT_TRUE(us.idle_counter().exact()); });
  }
  {
    Machine m(exascale_ish(8));
    chrys::Kernel k(m);
    us::UniformSystem us(k);
    us.run_main([&] { EXPECT_FALSE(us.idle_counter().exact()); });
  }
}

TEST(UsCounter, ForAllCompletesOnTheDistributedCounter) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  us::UsConfig cfg;
  cfg.idle_counter = CounterKind::kDistributed;
  us::UniformSystem us(k, cfg);
  std::uint32_t completed = 0;
  us.run_main([&] {
    us.for_all(0, 100, [&](us::TaskCtx& c) {
      c.m.compute(500);
      ++completed;
    });
    // The polling waiter saw a confirmed zero.
    EXPECT_EQ(us.idle_counter().peek_total(), 0u);
    // Back-to-back waves reuse the same cells.
    us.for_all(0, 50, [&](us::TaskCtx&) { ++completed; });
  });
  EXPECT_FALSE(m.deadlocked());
  EXPECT_EQ(completed, 150u);
  EXPECT_EQ(us.tasks_run(), 150u);
}

TEST(UsCounter, KillMidWaveIsRecoveredOnTheDistributedCounter) {
  // The satellite fix: the kill-rescue path (owed decrements, waiter
  // rescue) must go through the strategy interface, not peek/poke a cell
  // that no longer exists.  Node 5's counter cell dies with it; its value
  // folds host-side and the wave still drains.
  sim::FaultPlan plan;
  plan.kill(5, 100 * sim::kMillisecond);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  us::UsConfig cfg;
  cfg.processors = 8;
  cfg.idle_counter = CounterKind::kDistributed;
  us::UniformSystem us(k, cfg);
  std::vector<std::uint32_t> done(200, 0);
  us.run_main([&] {
    us.for_all(0, 200, [&](us::TaskCtx& c) {
      c.m.compute(20000);  // ~10 ms: every manager is mid-task at 100 ms
      ++done[c.arg];
    });
  });
  EXPECT_FALSE(m.deadlocked());
  for (std::uint32_t i = 0; i < 200; ++i)
    EXPECT_GE(done[i], 1u) << "task " << i;
  EXPECT_EQ(us.nodes_lost(), 1u);
  EXPECT_GE(us.tasks_reissued(), 1u);
}

TEST(UsCounter, WholePoolDeadReleasesThePollingWaiter) {
  // All managers die mid-wave; the distributed-counter waiter polls, so
  // the managers_alive_ == 0 escape must fire from the poll loop (there is
  // no event anyone could post).
  sim::FaultPlan plan;
  plan.kill(0, 60 * sim::kMillisecond);
  plan.kill(1, 65 * sim::kMillisecond);
  plan.kill(2, 70 * sim::kMillisecond);
  Machine m(butterfly1(4), plan);
  chrys::Kernel k(m);
  us::UsConfig cfg;
  cfg.processors = 3;  // pool = nodes 0..2; main lives on node 3
  cfg.idle_counter = CounterKind::kDistributed;
  us::UniformSystem us(k, cfg);
  bool returned = false;
  k.create_process(3, [&] {
    us.initialize();
    us.gen_on_index(0, 400, [&](us::TaskCtx& c) { c.m.compute(40000); });
    us.wait_idle();
    returned = true;
  });
  m.run();
  EXPECT_FALSE(m.deadlocked());
  EXPECT_TRUE(returned);
  EXPECT_EQ(us.nodes_lost(), 3u);
  EXPECT_EQ(us.managers_alive(), 0u);
}

TEST(UsCounter, TransientFaultsAreAbsorbedByTheDistributedCounter) {
  sim::FaultPlan plan;
  plan.mem_fault_prob = 0.01;
  plan.seed = 99;
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  us::UsConfig cfg;
  cfg.idle_counter = CounterKind::kDistributed;
  us::UniformSystem us(k, cfg);
  std::uint32_t completed = 0;
  us.run_main([&] {
    us.for_all(0, 100, [&](us::TaskCtx& c) {
      c.m.compute(1000);
      ++completed;
    });
  });
  EXPECT_FALSE(m.deadlocked());
  EXPECT_EQ(completed + us.tasks_faulted(), 100u);
}

}  // namespace
}  // namespace bfly::sync
