#include "m2/coroutines.hpp"

#include <gtest/gtest.h>

namespace bfly::m2 {
namespace {

using sim::butterfly1;
using sim::Machine;

void in_process(std::function<void(chrys::Kernel&)> body) {
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  k.create_process(0, [&] { body(k); });
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(Coroutines, ExplicitTransferPingPong) {
  in_process([](chrys::Kernel& k) {
    CoroutineSystem cs(k);
    std::vector<int> trace;
    Coroutine* b = nullptr;
    Coroutine* a = cs.new_coroutine([&] {
      trace.push_back(1);
      cs.transfer(b);
      trace.push_back(3);
      cs.transfer(b);
    });
    b = cs.new_coroutine([&] {
      trace.push_back(2);
      cs.transfer(a);
      trace.push_back(4);
      // falls off: control returns to main
    });
    cs.transfer(a);
    trace.push_back(5);
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_TRUE(b->finished());
    EXPECT_FALSE(a->finished());  // a is suspended mid-body, never resumed
  });
}

TEST(Coroutines, GeneratorPattern) {
  // The classic Modula-2 idiom: a producer coroutine yielding values to
  // main by explicit transfer.
  in_process([](chrys::Kernel& k) {
    CoroutineSystem cs(k);
    int value = 0;
    std::vector<int> got;
    Coroutine* gen = cs.new_coroutine([&] {
      for (int i = 1; i <= 5; ++i) {
        value = i * i;
        cs.transfer(cs.main());
      }
    });
    for (int i = 0; i < 5; ++i) {
      cs.transfer(gen);
      got.push_back(value);
    }
    EXPECT_EQ(got, (std::vector<int>{1, 4, 9, 16, 25}));
  });
}

TEST(Coroutines, TransferToFinishedThrows) {
  in_process([](chrys::Kernel& k) {
    CoroutineSystem cs(k);
    Coroutine* c = cs.new_coroutine([] {});
    cs.transfer(c);  // runs to completion, back to main
    EXPECT_TRUE(c->finished());
    const int code = k.catch_block([&] { cs.transfer(c); });
    EXPECT_EQ(code, chrys::kThrowBadObject);
  });
}

TEST(Coroutines, TransfersArePseudoParallelism) {
  // Coroutine transfers advance simulated time only by the transfer cost:
  // far cheaper than even Ant Farm's scheduled switches, and no
  // parallelism whatsoever.
  in_process([](chrys::Kernel& k) {
    CoroutineSystem cs(k);
    Coroutine* idle = cs.new_coroutine([&] {
      while (true) cs.transfer(cs.main());
    });
    const sim::Time t0 = k.now();
    for (int i = 0; i < 50; ++i) cs.transfer(idle);
    const sim::Time per = (k.now() - t0) / 100;  // 2 transfers per loop
    EXPECT_LT(per, 20 * sim::kMicrosecond);
    EXPECT_EQ(cs.transfers(), 100u);
  });
}

TEST(Coroutines, ManyCoroutinesRoundRobin) {
  in_process([](chrys::Kernel& k) {
    CoroutineSystem cs(k);
    constexpr int kN = 40;
    int sum = 0;
    std::vector<Coroutine*> cs_list;
    for (int i = 0; i < kN; ++i) {
      cs_list.push_back(cs.new_coroutine([&cs, &sum, i] {
        sum += i;
        cs.transfer(cs.main());  // yield once
        sum += 1000;
      }));
    }
    for (Coroutine* c : cs_list) cs.transfer(c);  // first halves
    EXPECT_EQ(sum, kN * (kN - 1) / 2);
    for (Coroutine* c : cs_list) cs.transfer(c);  // second halves
    EXPECT_EQ(sum, kN * (kN - 1) / 2 + kN * 1000);
  });
}

}  // namespace
}  // namespace bfly::m2
