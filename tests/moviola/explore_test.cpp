// PCT-style schedule exploration gates.
//
//   * one seed = one deterministic alternative schedule (same seed twice
//     gives field-by-field identical Instant Replay logs);
//   * perturbation is real: some seed reorders a contended workload
//     relative to the unexplored baseline;
//   * explorer-found interleavings reproduce: a run recorded under an
//     exploration seed replays bit-identically from its log even under a
//     different exploration seed and different timing jitter — Instant
//     Replay's version spinning forces the recorded order regardless of
//     how the dispatcher would otherwise choose.
#include <gtest/gtest.h>

#include <set>

#include "chrysalis/kernel.hpp"
#include "moviola/wait_graph.hpp"
#include "replay/instant_replay.hpp"

namespace bfly::moviola {
namespace {

using chrys::Kernel;
using replay::AccessEntry;
using replay::Log;
using replay::Mode;
using replay::Monitor;
using sim::butterfly1;
using sim::Machine;
using sim::Time;

struct RacyRun {
  std::vector<std::uint32_t> order;
  Log log;
  Time elapsed = 0;
  std::uint64_t dispatch_steps = 0;
};

// One actor per node (replay-mode version waits spin with machine charges,
// which do not release the kernel node — co-resident actors would
// livelock), with the nondeterminism funnelled through a shared token dual
// queue: actors park on it between rounds, so the dispatcher's choice of
// handoff winner — exactly what exploration perturbs — decides the write
// order.
RacyRun run_racy(std::uint32_t actors, std::uint32_t rounds, Mode mode,
                 std::uint64_t jitter_seed, std::uint64_t explore_seed,
                 const Log* script = nullptr) {
  Machine m(butterfly1(8));
  Kernel k(m);
  if (explore_seed != 0) k.set_schedule_exploration(explore_seed);
  Monitor mon(k, actors);
  RacyRun out;
  const std::uint32_t obj = mon.register_object(0, "counter");
  mon.set_mode(mode);
  if (script != nullptr) mon.load_log(*script);

  chrys::Oid tokens = k.make_dual_queue();
  sim::Rng jitter(jitter_seed);
  std::vector<Time> delays;
  for (std::uint32_t i = 0; i < actors * rounds; ++i)
    delays.push_back((1 + jitter.below(8)) * 100 * sim::kMicrosecond);

  for (std::uint32_t a = 0; a < actors; ++a) {
    k.create_process(1 + a, [&, a] {
      for (std::uint32_t r = 0; r < rounds; ++r) {
        (void)k.dq_dequeue(tokens);
        k.delay(delays[a * rounds + r]);
        mon.begin_write(a, obj);
        out.order.push_back(a);
        m.charge(500 * sim::kMicrosecond);
        mon.end_write(a, obj);
      }
    });
  }
  // The dispenser paces tokens slowly enough that several actors are
  // usually parked when one arrives: a real winner choice every time.
  k.create_process(0, [&] {
    for (std::uint32_t i = 0; i < actors * rounds; ++i) {
      k.delay(700 * sim::kMicrosecond);
      k.dq_enqueue(tokens, i);
    }
  });
  out.elapsed = m.run();
  out.log = mon.take_log();
  out.dispatch_steps = k.dispatch_steps();
  return out;
}

void expect_logs_identical(const Log& a, const Log& b) {
  ASSERT_EQ(a.per_actor.size(), b.per_actor.size());
  for (std::size_t i = 0; i < a.per_actor.size(); ++i) {
    ASSERT_EQ(a.per_actor[i].size(), b.per_actor[i].size()) << "actor " << i;
    for (std::size_t j = 0; j < a.per_actor[i].size(); ++j) {
      const AccessEntry& x = a.per_actor[i][j];
      const AccessEntry& y = b.per_actor[i][j];
      EXPECT_EQ(x.object, y.object) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.version, y.version) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.readers, y.readers) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.is_write, y.is_write) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.at, y.at) << "actor " << i << " entry " << j;
    }
  }
}

TEST(Explore, SameSeedIsBitIdentical) {
  const RacyRun a = run_racy(4, 6, Mode::kRecord, 11, /*explore=*/1234);
  const RacyRun b = run_racy(4, 6, Mode::kRecord, 11, /*explore=*/1234);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.elapsed, b.elapsed);
  expect_logs_identical(a.log, b.log);
}

TEST(Explore, SomeSeedPerturbsTheSchedule) {
  const RacyRun base = run_racy(4, 6, Mode::kRecord, 11, /*explore=*/0);
  EXPECT_EQ(base.dispatch_steps, 0u);  // exploration off: no PCT machinery
  std::set<std::vector<std::uint32_t>> orders{base.order};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RacyRun r = run_racy(4, 6, Mode::kRecord, 11, seed);
    EXPECT_GT(r.dispatch_steps, 0u) << "seed " << seed;
    orders.insert(r.order);
  }
  EXPECT_GT(orders.size(), 1u)
      << "8 exploration seeds produced no schedule different from FIFO";
}

TEST(Explore, PerturbedRunReplaysBitIdentically) {
  const RacyRun rec = run_racy(4, 6, Mode::kRecord, 11, /*explore=*/77);
  // Replay under different timing AND a different exploration seed: the
  // log must force the recorded order anyway.
  for (const std::uint64_t other : {0ull, 5ull, 99ull}) {
    const RacyRun rep = run_racy(4, 6, Mode::kReplay, 9999, other, &rec.log);
    EXPECT_EQ(rep.order, rec.order) << "explore seed " << other;
  }
}

TEST(Explore, DetectorStaysQuietUnderExploration) {
  // Zero false positives: a healthy contended workload explored with the
  // detector attached produces no findings and no lints.
  Machine m(butterfly1(2));
  Kernel k(m);
  Detector d(m, &k);
  k.set_schedule_exploration(31337);
  const chrys::Oid dq = k.make_dual_queue();
  for (int c = 0; c < 3; ++c) {
    k.create_process(0, [&] {
      for (int i = 0; i < 8; ++i) (void)k.dq_dequeue(dq);
    }, "consumer" + std::to_string(c));
  }
  k.create_process(1, [&] {
    for (int i = 0; i < 24; ++i) {
      k.delay(200 * sim::kMicrosecond);
      k.dq_enqueue(dq, static_cast<std::uint32_t>(i));
    }
  }, "producer");
  m.run();
  EXPECT_FALSE(m.deadlocked());
  EXPECT_TRUE(d.analyze().empty()) << d.report();
  EXPECT_TRUE(d.lints().empty());
}

TEST(Explore, SeedsPerturbDualQueueHandoffWinners) {
  // Three consumers park on one dual queue; the producer's enqueues hand
  // off to whichever waiter the (seeded) dispatcher picks.  Different
  // seeds must produce different winner sequences for at least one pair.
  auto winners = [](std::uint64_t explore_seed) {
    Machine m(butterfly1(2));
    Kernel k(m);
    if (explore_seed != 0) k.set_schedule_exploration(explore_seed);
    const chrys::Oid dq = k.make_dual_queue();
    std::vector<int> got;
    for (int c = 0; c < 3; ++c) {
      k.create_process(0, [&k, &got, dq, c] {
        for (int i = 0; i < 4; ++i) {
          (void)k.dq_dequeue(dq);
          got.push_back(c);
        }
      }, "c" + std::to_string(c));
    }
    k.create_process(1, [&k, dq] {
      for (int i = 0; i < 12; ++i) {
        k.delay(300 * sim::kMicrosecond);
        k.dq_enqueue(dq, static_cast<std::uint32_t>(i));
      }
    }, "p");
    m.run();
    EXPECT_FALSE(m.deadlocked());
    return got;
  };
  std::set<std::vector<int>> distinct;
  distinct.insert(winners(0));
  for (std::uint64_t s = 1; s <= 6; ++s) distinct.insert(winners(s));
  EXPECT_GT(distinct.size(), 1u)
      << "exploration never changed a dual-queue handoff winner";
}

}  // namespace
}  // namespace bfly::moviola
