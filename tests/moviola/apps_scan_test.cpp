// False-positive gate: the application suite runs with the Detector
// attached and must come out with zero findings and zero lints — a
// healthy run that joins all its workers leaves nothing blocked, and
// nothing in the stack blocks while holding a spin lock or charges from a
// hook.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/gauss.hpp"
#include "apps/graph.hpp"
#include "apps/hough.hpp"
#include "apps/sort.hpp"
#include "moviola/wait_graph.hpp"

namespace bfly::moviola {
namespace {

using sim::butterfly1;
using sim::Machine;

TEST(AppsScan, GaussUs) {
  Machine m(butterfly1(8));
  Detector d(m);
  apps::GaussConfig cfg;
  cfg.n = 24;
  apps::GaussResult r = apps::gauss_us(m, cfg);
  EXPECT_LT(apps::gauss_error(r, cfg.n, cfg.seed), 1e-9);
  EXPECT_FALSE(m.deadlocked());
  EXPECT_TRUE(d.analyze().empty()) << d.report();
  EXPECT_TRUE(d.lints().empty()) << d.report();
}

TEST(AppsScan, GaussSmp) {
  Machine m(butterfly1(8));
  Detector d(m);
  apps::GaussConfig cfg;
  cfg.n = 24;
  (void)apps::gauss_smp(m, cfg);
  EXPECT_FALSE(m.deadlocked());
  EXPECT_TRUE(d.analyze().empty()) << d.report();
  EXPECT_TRUE(d.lints().empty()) << d.report();
}

TEST(AppsScan, Hough) {
  Machine m(butterfly1(8));
  Detector d(m);
  apps::HoughConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.angles = 45;
  cfg.processors = 8;
  cfg.noise = 50;
  (void)apps::hough(m, cfg);
  EXPECT_FALSE(m.deadlocked());
  EXPECT_TRUE(d.analyze().empty()) << d.report();
  EXPECT_TRUE(d.lints().empty()) << d.report();
}

TEST(AppsScan, OddEvenSort) {
  Machine m(butterfly1(8));
  Detector d(m);
  apps::SortConfig cfg;
  cfg.n = 128;
  cfg.processors = 4;
  apps::SortResult r = apps::odd_even_sort(m, cfg);
  EXPECT_TRUE(std::is_sorted(r.keys.begin(), r.keys.end()));
  EXPECT_FALSE(m.deadlocked());
  EXPECT_TRUE(d.analyze().empty()) << d.report();
  EXPECT_TRUE(d.lints().empty()) << d.report();
}

TEST(AppsScan, ConnectedComponents) {
  Machine m(butterfly1(8));
  Detector d(m);
  const apps::Graph g = apps::Graph::random(60, 3, 77);
  apps::GraphRunResult r = apps::connected_components(m, g, 8);
  EXPECT_EQ(r.labels, apps::cc_reference(g));
  EXPECT_FALSE(m.deadlocked());
  EXPECT_TRUE(d.analyze().empty()) << d.report();
  EXPECT_TRUE(d.lints().empty()) << d.report();
}

}  // namespace
}  // namespace bfly::moviola
