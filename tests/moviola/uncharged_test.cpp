// The uncharged-instrumentation invariant for the wait observer: attaching
// a Detector must not perturb the simulated run at all.  Same harness as
// tests/analyze/uncharged_test.cpp — the Instant Replay racy workload's
// log records the exact interleaving, and the instrumented run's log must
// be field-by-field identical to the bare run's.
#include <gtest/gtest.h>

#include <memory>

#include "chrysalis/kernel.hpp"
#include "moviola/wait_graph.hpp"
#include "replay/instant_replay.hpp"

namespace bfly::moviola {
namespace {

using replay::AccessEntry;
using replay::Log;
using replay::Mode;
using replay::Monitor;
using sim::butterfly1;
using sim::Machine;
using sim::Time;

struct RacyRun {
  std::vector<std::uint32_t> order;
  Log log;
  Time elapsed = 0;
  std::uint64_t monitor_refs = 0;
};

RacyRun run_racy(std::uint32_t actors, std::uint32_t rounds,
                 std::uint64_t jitter_seed, bool instrumented) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  std::unique_ptr<Detector> det;
  if (instrumented) det = std::make_unique<Detector>(m, &k);
  Monitor mon(k, actors);
  RacyRun out;
  const std::uint32_t obj = mon.register_object(0, "counter");
  mon.set_mode(Mode::kRecord);

  sim::Rng jitter(jitter_seed);
  std::vector<Time> delays;
  for (std::uint32_t i = 0; i < actors * rounds; ++i)
    delays.push_back((1 + jitter.below(40)) * 100 * sim::kMicrosecond);

  for (std::uint32_t a = 0; a < actors; ++a) {
    k.create_process(a % m.nodes(), [&, a] {
      for (std::uint32_t r = 0; r < rounds; ++r) {
        k.delay(delays[a * rounds + r]);
        mon.begin_write(a, obj);
        out.order.push_back(a);
        m.charge(500 * sim::kMicrosecond);
        mon.end_write(a, obj);
      }
    });
  }
  out.elapsed = m.run();
  out.log = mon.take_log();
  out.monitor_refs = mon.monitor_refs();
  if (det) {
    EXPECT_TRUE(det->analyze().empty()) << det->report();
    EXPECT_TRUE(det->lints().empty());
  }
  return out;
}

void expect_logs_identical(const Log& a, const Log& b) {
  ASSERT_EQ(a.per_actor.size(), b.per_actor.size());
  for (std::size_t i = 0; i < a.per_actor.size(); ++i) {
    ASSERT_EQ(a.per_actor[i].size(), b.per_actor[i].size()) << "actor " << i;
    for (std::size_t j = 0; j < a.per_actor[i].size(); ++j) {
      const AccessEntry& x = a.per_actor[i][j];
      const AccessEntry& y = b.per_actor[i][j];
      EXPECT_EQ(x.object, y.object) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.version, y.version) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.readers, y.readers) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.is_write, y.is_write) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.at, y.at) << "actor " << i << " entry " << j;
    }
  }
}

TEST(Uncharged, DetectorRunIsEventIdenticalToBare) {
  const RacyRun bare = run_racy(4, 6, 1111, /*instrumented=*/false);
  const RacyRun inst = run_racy(4, 6, 1111, /*instrumented=*/true);
  EXPECT_EQ(inst.order, bare.order);
  EXPECT_EQ(inst.elapsed, bare.elapsed);
  EXPECT_EQ(inst.monitor_refs, bare.monitor_refs);
  expect_logs_identical(inst.log, bare.log);
}

TEST(Uncharged, HoldsAcrossTimingSeeds) {
  for (const std::uint64_t seed : {7u, 777u, 31337u}) {
    const RacyRun bare = run_racy(3, 5, seed, /*instrumented=*/false);
    const RacyRun inst = run_racy(3, 5, seed, /*instrumented=*/true);
    EXPECT_EQ(inst.order, bare.order) << "seed " << seed;
    EXPECT_EQ(inst.elapsed, bare.elapsed) << "seed " << seed;
    expect_logs_identical(inst.log, bare.log);
  }
}

}  // namespace
}  // namespace bfly::moviola
