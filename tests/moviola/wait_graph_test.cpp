// The three staged pathologies from the issue, each of which the detector
// must name exactly — the cycle members for a true deadlock, the waiter
// for a lost wakeup, the spinner (and holder) for starvation — plus the
// Kernel::blocked_processes() snapshot cross-check and the
// blocking-discipline lints.
#include <gtest/gtest.h>

#include <algorithm>

#include "chrysalis/kernel.hpp"
#include "chrysalis/spinlock.hpp"
#include "moviola/wait_graph.hpp"

namespace bfly::moviola {
namespace {

using chrys::Kernel;
using chrys::kNoObject;
using chrys::Oid;
using chrys::SpinLock;
using sim::butterfly1;
using sim::Machine;

// --- Fixture 1: three-process event cycle -----------------------------------
//
// Three processes, each owning one event.  Round 1 posts before waiting
// (completes, and teaches the detector who feeds whom); round 2 waits
// before posting — the classic ring deadlock a/b/c.
TEST(Deadlock, ThreeProcessEventCycleNamesExactMembers) {
  Machine m(butterfly1(4));
  Kernel k(m);
  Detector d(m, &k);

  Oid ea = kNoObject, eb = kNoObject, ec = kNoObject;
  auto ring = [&](Oid* mine, Oid* feeds) {
    return [&, mine, feeds] {
      *mine = k.make_event();
      k.delay(10 * sim::kMillisecond);  // let all three events exist
      // Round 1: post first, then wait — completes, records history.
      k.event_post(*feeds, 1);
      (void)k.event_wait(*mine);
      // Round 2: wait first — nobody ever posts again.
      (void)k.event_wait(*mine);
      k.event_post(*feeds, 2);  // never reached
    };
  };
  // Poster history: b feeds ea, c feeds eb, a feeds ec.
  const Oid pa = k.create_process(0, ring(&ea, &ec), "a");
  const Oid pb = k.create_process(1, ring(&eb, &ea), "b");
  const Oid pc = k.create_process(2, ring(&ec, &eb), "c");

  m.run();
  ASSERT_TRUE(m.deadlocked());
  EXPECT_EQ(d.blocked_now(), 3u);

  const auto findings = d.analyze();
  ASSERT_EQ(findings.size(), 1u) << d.report();
  const StuckReport& r = findings[0];
  EXPECT_EQ(r.kind, StuckKind::kDeadlock);
  EXPECT_EQ(r.members, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(r.processes, (std::vector<std::uint32_t>{pa, pb, pc}));
  EXPECT_EQ(r.channels,
            (std::vector<std::uint64_t>{sim::chan_of_oid(ea),
                                        sim::chan_of_oid(eb),
                                        sim::chan_of_oid(ec)}));
  EXPECT_NE(r.detail.find("deadlock"), std::string::npos);
}

// Kernel::blocked_processes() must agree with the wait-for graph during a
// staged deadlock: same processes, same objects waited on.
TEST(Deadlock, BlockedProcessesSnapshotMatchesWaitGraph) {
  Machine m(butterfly1(4));
  Kernel k(m);
  Detector d(m, &k);

  Oid ea = kNoObject, eb = kNoObject;
  k.create_process(0, [&] {
    ea = k.make_event();
    k.delay(5 * sim::kMillisecond);
    k.event_post(eb, 1);
    (void)k.event_wait(ea);
    (void)k.event_wait(ea);  // deadlocks: b is also stuck
  }, "x");
  k.create_process(1, [&] {
    eb = k.make_event();
    k.delay(5 * sim::kMillisecond);
    k.event_post(ea, 1);
    (void)k.event_wait(eb);
    (void)k.event_wait(eb);
  }, "y");

  m.run();
  ASSERT_TRUE(m.deadlocked());

  const auto findings = d.analyze();
  ASSERT_EQ(findings.size(), 1u) << d.report();
  ASSERT_EQ(findings[0].kind, StuckKind::kDeadlock);

  const auto snap = k.blocked_processes();
  ASSERT_EQ(snap.size(), findings[0].members.size());
  for (std::size_t i = 0; i < findings[0].members.size(); ++i) {
    const auto it = std::find_if(
        snap.begin(), snap.end(), [&](const Kernel::BlockedInfo& b) {
          return b.name == findings[0].members[i];
        });
    ASSERT_NE(it, snap.end()) << findings[0].members[i];
    EXPECT_EQ(it->process, findings[0].processes[i]);
    EXPECT_EQ(sim::chan_of_oid(it->waiting_on), findings[0].channels[i]);
  }
}

// blocked_processes() on a healthy (finished) run is empty, and while a
// process is blocked mid-run it reports exactly that process.
TEST(BlockedProcesses, EmptyAfterCleanRunAndExactMidRun) {
  Machine m(butterfly1(2));
  Kernel k(m);
  Oid ev = kNoObject;
  std::size_t mid_count = 0;
  std::string mid_name;
  Oid mid_waiting = kNoObject;
  k.create_process(0, [&] {
    ev = k.make_event();
    (void)k.event_wait(ev);
  }, "sleeper");
  k.create_process(1, [&] {
    k.delay(5 * sim::kMillisecond);
    const auto snap = k.blocked_processes();
    mid_count = snap.size();
    if (!snap.empty()) {
      mid_name = snap[0].name;
      mid_waiting = snap[0].waiting_on;
    }
    k.event_post(ev, 1);
  }, "poster");
  m.run();
  EXPECT_FALSE(m.deadlocked());
  EXPECT_EQ(mid_count, 1u);
  EXPECT_EQ(mid_name, "sleeper");
  EXPECT_EQ(mid_waiting, ev);
  EXPECT_TRUE(k.blocked_processes().empty());
}

// --- Fixture 2: lost wakeup --------------------------------------------------
//
// Two posts race ahead of the wait: the second overwrites the first
// (binary-semaphore semantics), so the waiter's second wait blocks on a
// wakeup that existed and was destroyed.
TEST(LostWakeup, OverwrittenPostBeforeWaitNamesTheWaiter) {
  Machine m(butterfly1(2));
  Kernel k(m);
  Detector d(m, &k);

  Oid ev = kNoObject;
  k.create_process(0, [&] {
    ev = k.make_event();
    k.delay(10 * sim::kMillisecond);
    (void)k.event_wait(ev);  // consumes the surviving datum
    (void)k.event_wait(ev);  // blocks forever: the other wakeup was lost
  }, "waiter");
  k.create_process(1, [&] {
    k.delay(2 * sim::kMillisecond);
    k.event_post(ev, 1);
    k.event_post(ev, 2);  // overwrites: wakeup #1 destroyed
  }, "poster");

  m.run();
  ASSERT_TRUE(m.deadlocked());
  EXPECT_EQ(d.overwrites(sim::chan_of_oid(ev)), 1u);

  const auto findings = d.analyze();
  ASSERT_EQ(findings.size(), 1u) << d.report();
  EXPECT_EQ(findings[0].kind, StuckKind::kLostWakeup);
  EXPECT_EQ(findings[0].members, (std::vector<std::string>{"waiter"}));
  EXPECT_EQ(findings[0].channels,
            (std::vector<std::uint64_t>{sim::chan_of_oid(ev)}));
}

// A waiter whose poster simply never showed up (no overwrite, no cycle) is
// an orphan wait, not a deadlock — the classification must not lump them.
TEST(OrphanWait, NoPosterIsNotADeadlock) {
  Machine m(butterfly1(2));
  Kernel k(m);
  Detector d(m, &k);
  k.create_process(0, [&] {
    const Oid ev = k.make_event();
    (void)k.event_wait(ev);
  }, "lonely");
  m.run();
  ASSERT_TRUE(m.deadlocked());
  const auto findings = d.analyze();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, StuckKind::kOrphanWait);
  EXPECT_EQ(findings[0].members, (std::vector<std::string>{"lonely"}));
}

// --- Fixture 3: spin-under-SpinLock starvation -------------------------------
//
// The hog takes the lock and then blocks in the kernel (the
// blocking-discipline lint), so the spinner probes forever: runnable,
// never blocked, starved.  The run is cut by an engine stop because a
// spinner keeps the event heap alive indefinitely.
TEST(Starvation, SpinnerUnderHeldLockNamesSpinnerAndHolder) {
  Machine m(butterfly1(2));
  Kernel k(m);
  Detector d(m, &k);

  const sim::PhysAddr cell = m.alloc(0, 8);
  k.create_process(0, [&] {
    SpinLock lock(m, cell);
    lock.acquire();
    const Oid ev = k.make_event();
    (void)k.event_wait(ev);  // blocks holding the lock; nobody posts
  }, "hog");
  k.create_process(1, [&] {
    k.delay(sim::kMillisecond);  // let the hog take the lock
    SpinLock lock(m, cell, sim::kMicrosecond);
    lock.acquire();  // spins forever
  }, "spinner");
  m.engine().post_at(50 * sim::kMillisecond, [&m] { m.engine().stop(); });

  m.run();
  const auto findings = d.analyze();

  const auto starved = std::find_if(
      findings.begin(), findings.end(),
      [](const StuckReport& r) { return r.kind == StuckKind::kStarvation; });
  ASSERT_NE(starved, findings.end()) << d.report();
  EXPECT_EQ(starved->members, (std::vector<std::string>{"spinner"}));
  EXPECT_EQ(starved->channels,
            (std::vector<std::uint64_t>{sim::chan_of(cell)}));
  EXPECT_NE(starved->detail.find("held by hog"), std::string::npos)
      << starved->detail;

  // The hog's kernel block while holding the spin lock is exactly the
  // blocking-discipline violation the lint exists for.
  const auto& lints = d.lints();
  ASSERT_FALSE(lints.empty());
  EXPECT_EQ(lints[0].kind, LintReport::Kind::kBlockUnderLock);
  EXPECT_EQ(lints[0].actor, "hog");
}

// --- Lints: charged work inside an uncharged hook ----------------------------

class ChargingObserver final : public sim::MemObserver {
 public:
  explicit ChargingObserver(Machine& m) : m_(m) { m_.set_observer(this); }
  ~ChargingObserver() override {
    if (m_.observer() == this) m_.set_observer(nullptr);
  }
  void on_access(sim::Fiber*, sim::NodeId, sim::PhysAddr, std::uint32_t,
                 sim::MemOp) override {}
  void on_spawn(sim::Fiber*, sim::Fiber*) override {}
  void on_free(sim::PhysAddr, std::size_t) override {}
  void on_release(sim::Fiber* f, std::uint64_t) override {
    // Violates the hooks' host-side contract: charges simulated time from
    // inside an observer callback.
    if (f != nullptr) m_.charge(100);
  }
  void on_acquire(sim::Fiber*, std::uint64_t) override {}
  void on_lock_acquire(sim::Fiber*, std::uint64_t) override {}
  void on_lock_release(sim::Fiber*, std::uint64_t) override {}
  void on_label(sim::PhysAddr, std::size_t, std::string) override {}

 private:
  Machine& m_;
};

TEST(Lint, ChargedWorkInsideHookIsReported) {
  Machine m(butterfly1(1));
  Kernel k(m);
  Detector d(m, &k);
  ChargingObserver evil(m);
  k.create_process(0, [&] {
    const Oid ev = k.make_event();
    k.event_post(ev, 1);  // observe_release -> evil charges
    (void)k.event_wait(ev);
  }, "p");
  m.run();
  EXPECT_GT(m.hook_charges(), 0u);
  (void)d.analyze();
  const auto& lints = d.lints();
  ASSERT_FALSE(lints.empty());
  EXPECT_EQ(lints.back().kind, LintReport::Kind::kChargedHook);
}

TEST(Lint, CleanHooksReportNothing) {
  Machine m(butterfly1(1));
  Kernel k(m);
  Detector d(m, &k);
  k.create_process(0, [&] {
    const Oid ev = k.make_event();
    k.event_post(ev, 1);
    (void)k.event_wait(ev);
  }, "p");
  m.run();
  EXPECT_EQ(m.hook_charges(), 0u);
  EXPECT_TRUE(d.analyze().empty());
  EXPECT_TRUE(d.lints().empty());
}

// --- Watchdog ----------------------------------------------------------------

// A deadlocked pair under a heap kept alive by unrelated timers: run()
// would only return when the timers drain, but the watchdog spots the
// quiescent fiber set mid-run, captures the analysis, and disarms.
TEST(Watchdog, FiresOnQuiescenceUnderPendingTimers) {
  Machine m(butterfly1(2));
  Kernel k(m);
  Detector d(m, &k);

  Oid ea = kNoObject, eb = kNoObject;
  k.create_process(0, [&] {
    ea = k.make_event();
    k.delay(2 * sim::kMillisecond);
    k.event_post(eb, 1);
    (void)k.event_wait(ea);
    (void)k.event_wait(ea);  // deadlock
  }, "x");
  k.create_process(1, [&] {
    eb = k.make_event();
    k.delay(2 * sim::kMillisecond);
    k.event_post(ea, 1);
    (void)k.event_wait(eb);
    (void)k.event_wait(eb);
  }, "y");

  // Unrelated periodic work that keeps the event heap non-empty long past
  // the deadlock (posted up front; each is a no-op closure).
  for (int i = 1; i <= 40; ++i)
    m.engine().post_at(i * sim::kMillisecond, [] {});

  d.arm_watchdog(2 * sim::kMillisecond);
  m.run();

  EXPECT_TRUE(d.fired());
  ASSERT_EQ(d.findings().size(), 1u) << d.report();
  EXPECT_EQ(d.findings()[0].kind, StuckKind::kDeadlock);
  EXPECT_EQ(d.findings()[0].members, (std::vector<std::string>{"x", "y"}));
}

TEST(Watchdog, StaysQuietOnAHealthyRun) {
  Machine m(butterfly1(2));
  Kernel k(m);
  Detector d(m, &k);
  Oid ev = kNoObject;
  k.create_process(0, [&] {
    ev = k.make_event();
    (void)k.event_wait(ev);
  }, "w");
  k.create_process(1, [&] {
    k.delay(20 * sim::kMillisecond);  // longer than the watchdog period
    k.event_post(ev, 1);
  }, "p");
  d.arm_watchdog(1 * sim::kMillisecond);
  m.run();
  EXPECT_FALSE(m.deadlocked());
  EXPECT_FALSE(d.fired());
  EXPECT_TRUE(d.findings().empty());
}

}  // namespace
}  // namespace bfly::moviola
