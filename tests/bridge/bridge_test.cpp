#include "bridge/bridge.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace bfly::bridge {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

void fill_block(std::vector<std::uint8_t>& blk, std::uint32_t index) {
  blk.assign(kBlockSize, 0);
  for (std::size_t i = 0; i < kBlockSize; ++i)
    blk[i] = static_cast<std::uint8_t>((index * 31 + i) % 251);
}

void with_fs(std::uint32_t machine_nodes, std::uint32_t servers,
             std::function<void(chrys::Kernel&, BridgeFs&)> body) {
  Machine m(butterfly1(machine_nodes));
  chrys::Kernel k(m);
  k.create_process(machine_nodes - 1, [&] {
    BridgeFs fs(k, servers);
    body(k, fs);
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(Bridge, BlockReadWriteRoundTrip) {
  with_fs(8, 4, [](chrys::Kernel&, BridgeFs& fs) {
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk, back(kBlockSize);
    for (std::uint32_t b = 0; b < 10; ++b) {
      fill_block(blk, b);
      fs.write_block(f, b, blk.data());
    }
    EXPECT_EQ(fs.blocks(f), 10u);
    for (std::uint32_t b = 0; b < 10; ++b) {
      fs.read_block(f, b, back.data());
      fill_block(blk, b);
      EXPECT_EQ(back, blk) << "block " << b;
    }
  });
}

TEST(Bridge, ToolCopyReplicatesInterleavedFile) {
  with_fs(8, 4, [](chrys::Kernel&, BridgeFs& fs) {
    const FileId src = fs.create("src");
    const FileId dst = fs.create("dst");
    std::vector<std::uint8_t> blk, back(kBlockSize);
    for (std::uint32_t b = 0; b < 13; ++b) {
      fill_block(blk, b);
      fs.write_block(src, b, blk.data());
    }
    fs.tool_copy(src, dst);
    EXPECT_EQ(fs.blocks(dst), 13u);
    EXPECT_EQ(fs.tool_compare(src, dst), 0u);
    for (std::uint32_t b = 0; b < 13; ++b) {
      fs.read_block(dst, b, back.data());
      fill_block(blk, b);
      EXPECT_EQ(back, blk);
    }
  });
}

TEST(Bridge, ToolSearchCountsBytes) {
  with_fs(8, 3, [](chrys::Kernel&, BridgeFs& fs) {
    const FileId f = fs.create("hay");
    std::vector<std::uint8_t> blk(kBlockSize, 0);
    blk[5] = 0xaa;
    blk[100] = 0xaa;
    fs.write_block(f, 0, blk.data());
    blk.assign(kBlockSize, 0);
    blk[9] = 0xaa;
    fs.write_block(f, 1, blk.data());
    blk.assign(kBlockSize, 0);
    fs.write_block(f, 2, blk.data());
    EXPECT_EQ(fs.tool_search(f, 0xaa), 3u);
    EXPECT_EQ(fs.tool_search(f, 0xbb), 0u);
  });
}

TEST(Bridge, ToolCompareSpotsDifferences) {
  with_fs(8, 4, [](chrys::Kernel&, BridgeFs& fs) {
    const FileId a = fs.create("a");
    const FileId b = fs.create("b");
    std::vector<std::uint8_t> blk;
    for (std::uint32_t i = 0; i < 8; ++i) {
      fill_block(blk, i);
      fs.write_block(a, i, blk.data());
      if (i == 5) blk[17] ^= 1;  // corrupt one block of b
      fs.write_block(b, i, blk.data());
    }
    EXPECT_EQ(fs.tool_compare(a, b), 1u);
  });
}

TEST(Bridge, ToolSortProducesSortedRecords) {
  with_fs(8, 4, [](chrys::Kernel&, BridgeFs& fs) {
    const FileId src = fs.create("unsorted");
    const FileId dst = fs.create("sorted");
    sim::Rng rng(99);
    constexpr std::uint32_t kBlocks = 8;
    constexpr std::uint32_t kRec = kBlockSize / 4;
    std::vector<std::uint32_t> all;
    for (std::uint32_t b = 0; b < kBlocks; ++b) {
      std::vector<std::uint32_t> recs(kRec);
      for (auto& r : recs) r = static_cast<std::uint32_t>(rng.next());
      all.insert(all.end(), recs.begin(), recs.end());
      fs.write_block(src, b, recs.data());
    }
    fs.tool_sort(src, dst);
    std::sort(all.begin(), all.end());
    std::vector<std::uint32_t> got;
    std::vector<std::uint8_t> buf(kBlockSize);
    for (std::uint32_t b = 0; b < kBlocks; ++b) {
      fs.read_block(dst, b, buf.data());
      const auto* p = reinterpret_cast<const std::uint32_t*>(buf.data());
      got.insert(got.end(), p, p + kRec);
    }
    EXPECT_EQ(got, all);
  });
}

TEST(Bridge, MoreDisksScaleToolThroughput) {
  // The headline claim: near-linear speedup in the number of disks for
  // tool-interface operations.
  auto search_time = [](std::uint32_t servers) {
    Machine m(butterfly1(64));
    chrys::Kernel k(m);
    Time t = 0;
    k.create_process(63, [&] {
      BridgeFs fs(k, servers);
      const FileId f = fs.create("big");
      std::vector<std::uint8_t> blk(kBlockSize, 7);
      for (std::uint32_t b = 0; b < 240; ++b) fs.write_block(f, b, blk.data());
      const Time t0 = m.now();
      (void)fs.tool_search(f, 9);
      t = m.now() - t0;
      fs.shutdown();
    });
    m.run();
    return t;
  };
  const Time d1 = search_time(1);
  const Time d8 = search_time(8);
  const double speedup = static_cast<double>(d1) / static_cast<double>(d8);
  EXPECT_GT(speedup, 6.0) << "8 disks should search ~8x faster than 1";
  EXPECT_LE(speedup, 8.5);
}

TEST(Bridge, NaiveInterfaceDoesNotScale) {
  // A synchronous client reading one block at a time gains nothing from
  // striping: "faster storage devices cannot solve the I/O bottleneck
  // problem ... if data passes through a file system on a single
  // processor" — exactly the motivation for the tool interface.
  auto scan_time = [](std::uint32_t servers) {
    Machine m(butterfly1(32));
    chrys::Kernel k(m);
    Time t = 0;
    k.create_process(31, [&] {
      BridgeFs fs(k, servers);
      const FileId f = fs.create("file");
      std::vector<std::uint8_t> blk(kBlockSize, 1);
      for (std::uint32_t b = 0; b < 24; ++b) fs.write_block(f, b, blk.data());
      std::vector<std::uint8_t> buf(kBlockSize);
      const Time t0 = m.now();
      for (std::uint32_t b = 0; b < 24; ++b) fs.read_block(f, b, buf.data());
      t = m.now() - t0;
      fs.shutdown();
    });
    m.run();
    return t;
  };
  const Time one = scan_time(1);
  const Time four = scan_time(4);
  EXPECT_LT(four, 2 * one);
  EXPECT_GT(four * 2, one) << "no parallel win through the serial client";
}

TEST(BridgeFaults, DeadServerFailsItsStripeOthersKeepServing) {
  // Four servers on nodes 0-3; node 2's server dies mid-run.  Blocks whose
  // stripe lands on server 2 raise kThrowNodeDead; the other stripes keep
  // working, and shutdown still completes.
  sim::FaultPlan plan;
  plan.kill(2, 500 * sim::kMillisecond);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  std::uint32_t dead_stripe_errors = 0;
  std::uint32_t good_reads = 0;
  k.create_process(7, [&] {
    BridgeFs fs(k, 4);
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk, back(kBlockSize);
    // All 12 writes land well before the kill at 500 ms.
    for (std::uint32_t b = 0; b < 12; ++b) {
      fill_block(blk, b);
      fs.write_block(f, b, blk.data());
    }
    // Wait out the kill, then read everything back: the dead server's
    // stripe fails, the rest is intact.
    while (k.node_alive(2)) k.delay(50 * sim::kMillisecond);
    for (std::uint32_t b = 0; b < 12; ++b) {
      const int err = k.catch_block([&] {
        fs.read_block(f, b, back.data());
        fill_block(blk, b);
        if (back == blk) ++good_reads;
      });
      if (err == chrys::kThrowNodeDead) ++dead_stripe_errors;
    }
    EXPECT_EQ(fs.servers_lost(), 1u);
    EXPECT_EQ(fs.servers_alive(), 3u);
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  // Blocks 2, 6, 10 live on the dead server.
  EXPECT_EQ(dead_stripe_errors, 3u);
  EXPECT_EQ(good_reads, 9u);
}

TEST(BridgeFaults, ToolOpsRunDegradedOnSurvivors) {
  sim::FaultPlan plan;
  plan.kill(1, 300 * sim::kMillisecond);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  k.create_process(7, [&] {
    BridgeFs fs(k, 4);
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk(kBlockSize, 0xAB);
    // 8 blocks at ~26 ms each: done well before the kill at 300 ms.
    for (std::uint32_t b = 0; b < 8; ++b) fs.write_block(f, b, blk.data());
    // Wait out the kill, then search: it runs on the 3 survivors only.
    while (k.node_alive(1)) k.delay(50 * sim::kMillisecond);
    const std::uint64_t hits = fs.tool_search(f, 0xAB);
    // 6 of 8 blocks are on surviving servers (blocks 1 and 5 are lost).
    EXPECT_EQ(hits, 6u * kBlockSize);
    EXPECT_EQ(fs.servers_lost(), 1u);
    EXPECT_EQ(fs.servers_alive(), 3u);
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(BridgeFaults, RequestInFlightOnDyingServerGetsAFailureReply) {
  // The client is blocked waiting on a reply from the very server that
  // dies: it must receive a failure reply promptly, not hang.
  sim::FaultPlan plan;
  plan.kill(0, 100 * sim::kMillisecond);
  Machine m(butterfly1(4), plan);
  chrys::Kernel k(m);
  bool threw = false;
  k.create_process(3, [&] {
    BridgeFs fs(k, 2);
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk(kBlockSize, 1);
    // Server 0 (node 0) owns even blocks; a long write train keeps it busy
    // across its death time.
    for (std::uint32_t b = 0; b < 40 && !threw; b += 2) {
      const int err = k.catch_block([&] { fs.write_block(f, b, blk.data()); });
      if (err == chrys::kThrowNodeDead) threw = true;
    }
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_TRUE(threw);
}

TEST(BridgeFaults, DiskKilledMidRequestFailsInFlightAndSubsequentOps) {
  // Node 0 homes a disk and dies mid-request: the in-flight request gets a
  // failure reply, and every later block op on that stripe raises promptly
  // — in both directions — instead of hanging on a queue nobody serves.
  sim::FaultPlan plan;
  plan.kill(0, 100 * sim::kMillisecond);
  Machine m(butterfly1(4), plan);
  chrys::Kernel k(m);
  k.create_process(3, [&] {
    BridgeFs fs(k, 2);
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk(kBlockSize, 1), back(kBlockSize);
    bool threw = false;
    // Server 0 owns even blocks; the write train is mid-request at 100 ms.
    for (std::uint32_t b = 0; b < 40 && !threw; b += 2) {
      const int err = k.catch_block([&] { fs.write_block(f, b, blk.data()); });
      if (err == chrys::kThrowNodeDead) threw = true;
    }
    EXPECT_TRUE(threw);
    // Subsequent ops on the dead stripe refuse fast (no disk service).
    const sim::Time before = m.now();
    EXPECT_EQ(k.catch_block([&] { fs.write_block(f, 0, blk.data()); }),
              chrys::kThrowNodeDead);
    EXPECT_EQ(k.catch_block([&] { fs.read_block(f, 0, back.data()); }),
              chrys::kThrowNodeDead);
    EXPECT_LT(m.now() - before, 10 * sim::kMillisecond);
    // The surviving server's stripe still works.
    fs.write_block(f, 1, blk.data());
    fs.read_block(f, 1, back.data());
    EXPECT_EQ(back, blk);
    EXPECT_EQ(fs.servers_lost(), 1u);
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(BridgeFaults, SilentlyDeadServerIsExcisedByAFailureDetector) {
  // A silent kill fires no crash broadcast: the client blocked on the dead
  // server's reply stays blocked until a failure detector's verdict
  // arrives through excise_node, which fail-replies the in-flight request.
  sim::FaultPlan plan;
  plan.kill_silent(0, 100 * sim::kMillisecond);
  Machine m(butterfly1(4), plan);
  chrys::Kernel k(m);
  bool threw = false;
  BridgeFs* fsp = nullptr;
  k.create_process(3, [&] {
    BridgeFs fs(k, 2);
    fsp = &fs;
    // A stand-in detector on another node: notices the death (ground truth
    // here; rescue::Membership in real use) and reports it a while later.
    k.create_process(2, [&] {
      while (k.node_alive(0)) k.delay(20 * sim::kMillisecond);
      k.delay(50 * sim::kMillisecond);
      fsp->excise_node(0);
    });
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk(kBlockSize, 2);
    for (std::uint32_t b = 0; b < 40 && !threw; b += 2) {
      const int err = k.catch_block([&] { fs.write_block(f, b, blk.data()); });
      if (err == chrys::kThrowNodeDead) threw = true;
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(fs.servers_lost(), 1u);
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_TRUE(threw);
}

TEST(Bridge, StableStoreSurvivesAMachineReboot) {
  StableStore store;
  // First incarnation writes a file; the store is flushed on destruction.
  {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    k.create_process(7, [&] {
      BridgeFs fs(k, 4, DiskParams{}, &store);
      const FileId f = fs.create("data");
      std::vector<std::uint8_t> blk;
      for (std::uint32_t b = 0; b < 10; ++b) {
        fill_block(blk, b);
        fs.write_block(f, b, blk.data());
      }
      fs.shutdown();
    });
    m.run();
    ASSERT_FALSE(m.deadlocked());
  }
  ASSERT_FALSE(store.empty());
  // A fresh Machine — a reboot — sees the same bytes on the platters.
  {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    k.create_process(7, [&] {
      BridgeFs fs(k, 4, DiskParams{}, &store);
      FileId f = 0;
      ASSERT_TRUE(fs.lookup("data", &f));
      EXPECT_EQ(fs.blocks(f), 10u);
      std::vector<std::uint8_t> blk, back(kBlockSize);
      for (std::uint32_t b = 0; b < 10; ++b) {
        fs.read_block(f, b, back.data());
        fill_block(blk, b);
        EXPECT_EQ(back, blk) << "block " << b;
      }
      fs.shutdown();
    });
    m.run();
    ASSERT_FALSE(m.deadlocked());
  }
  // A different server count would scramble the interleaving: refused.
  {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    bool threw = false;
    k.create_process(7, [&] {
      try {
        BridgeFs fs(k, 2, DiskParams{}, &store);
        fs.shutdown();
      } catch (const sim::SimError&) {
        threw = true;
      }
    });
    m.run();
    EXPECT_TRUE(threw);
  }
}

}  // namespace
}  // namespace bfly::bridge
