#include "bridge/bridge.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace bfly::bridge {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

void fill_block(std::vector<std::uint8_t>& blk, std::uint32_t index) {
  blk.assign(kBlockSize, 0);
  for (std::size_t i = 0; i < kBlockSize; ++i)
    blk[i] = static_cast<std::uint8_t>((index * 31 + i) % 251);
}

void with_fs(std::uint32_t machine_nodes, std::uint32_t servers,
             std::function<void(chrys::Kernel&, BridgeFs&)> body) {
  Machine m(butterfly1(machine_nodes));
  chrys::Kernel k(m);
  k.create_process(machine_nodes - 1, [&] {
    BridgeFs fs(k, servers);
    body(k, fs);
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(Bridge, BlockReadWriteRoundTrip) {
  with_fs(8, 4, [](chrys::Kernel&, BridgeFs& fs) {
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk, back(kBlockSize);
    for (std::uint32_t b = 0; b < 10; ++b) {
      fill_block(blk, b);
      fs.write_block(f, b, blk.data());
    }
    EXPECT_EQ(fs.blocks(f), 10u);
    for (std::uint32_t b = 0; b < 10; ++b) {
      fs.read_block(f, b, back.data());
      fill_block(blk, b);
      EXPECT_EQ(back, blk) << "block " << b;
    }
  });
}

TEST(Bridge, ToolCopyReplicatesInterleavedFile) {
  with_fs(8, 4, [](chrys::Kernel&, BridgeFs& fs) {
    const FileId src = fs.create("src");
    const FileId dst = fs.create("dst");
    std::vector<std::uint8_t> blk, back(kBlockSize);
    for (std::uint32_t b = 0; b < 13; ++b) {
      fill_block(blk, b);
      fs.write_block(src, b, blk.data());
    }
    fs.tool_copy(src, dst);
    EXPECT_EQ(fs.blocks(dst), 13u);
    EXPECT_EQ(fs.tool_compare(src, dst), 0u);
    for (std::uint32_t b = 0; b < 13; ++b) {
      fs.read_block(dst, b, back.data());
      fill_block(blk, b);
      EXPECT_EQ(back, blk);
    }
  });
}

TEST(Bridge, ToolSearchCountsBytes) {
  with_fs(8, 3, [](chrys::Kernel&, BridgeFs& fs) {
    const FileId f = fs.create("hay");
    std::vector<std::uint8_t> blk(kBlockSize, 0);
    blk[5] = 0xaa;
    blk[100] = 0xaa;
    fs.write_block(f, 0, blk.data());
    blk.assign(kBlockSize, 0);
    blk[9] = 0xaa;
    fs.write_block(f, 1, blk.data());
    blk.assign(kBlockSize, 0);
    fs.write_block(f, 2, blk.data());
    EXPECT_EQ(fs.tool_search(f, 0xaa), 3u);
    EXPECT_EQ(fs.tool_search(f, 0xbb), 0u);
  });
}

TEST(Bridge, ToolCompareSpotsDifferences) {
  with_fs(8, 4, [](chrys::Kernel&, BridgeFs& fs) {
    const FileId a = fs.create("a");
    const FileId b = fs.create("b");
    std::vector<std::uint8_t> blk;
    for (std::uint32_t i = 0; i < 8; ++i) {
      fill_block(blk, i);
      fs.write_block(a, i, blk.data());
      if (i == 5) blk[17] ^= 1;  // corrupt one block of b
      fs.write_block(b, i, blk.data());
    }
    EXPECT_EQ(fs.tool_compare(a, b), 1u);
  });
}

TEST(Bridge, ToolSortProducesSortedRecords) {
  with_fs(8, 4, [](chrys::Kernel&, BridgeFs& fs) {
    const FileId src = fs.create("unsorted");
    const FileId dst = fs.create("sorted");
    sim::Rng rng(99);
    constexpr std::uint32_t kBlocks = 8;
    constexpr std::uint32_t kRec = kBlockSize / 4;
    std::vector<std::uint32_t> all;
    for (std::uint32_t b = 0; b < kBlocks; ++b) {
      std::vector<std::uint32_t> recs(kRec);
      for (auto& r : recs) r = static_cast<std::uint32_t>(rng.next());
      all.insert(all.end(), recs.begin(), recs.end());
      fs.write_block(src, b, recs.data());
    }
    fs.tool_sort(src, dst);
    std::sort(all.begin(), all.end());
    std::vector<std::uint32_t> got;
    std::vector<std::uint8_t> buf(kBlockSize);
    for (std::uint32_t b = 0; b < kBlocks; ++b) {
      fs.read_block(dst, b, buf.data());
      const auto* p = reinterpret_cast<const std::uint32_t*>(buf.data());
      got.insert(got.end(), p, p + kRec);
    }
    EXPECT_EQ(got, all);
  });
}

TEST(Bridge, MoreDisksScaleToolThroughput) {
  // The headline claim: near-linear speedup in the number of disks for
  // tool-interface operations.
  auto search_time = [](std::uint32_t servers) {
    Machine m(butterfly1(64));
    chrys::Kernel k(m);
    Time t = 0;
    k.create_process(63, [&] {
      BridgeFs fs(k, servers);
      const FileId f = fs.create("big");
      std::vector<std::uint8_t> blk(kBlockSize, 7);
      for (std::uint32_t b = 0; b < 240; ++b) fs.write_block(f, b, blk.data());
      const Time t0 = m.now();
      (void)fs.tool_search(f, 9);
      t = m.now() - t0;
      fs.shutdown();
    });
    m.run();
    return t;
  };
  const Time d1 = search_time(1);
  const Time d8 = search_time(8);
  const double speedup = static_cast<double>(d1) / static_cast<double>(d8);
  EXPECT_GT(speedup, 6.0) << "8 disks should search ~8x faster than 1";
  EXPECT_LE(speedup, 8.5);
}

TEST(Bridge, NaiveInterfaceDoesNotScale) {
  // A synchronous client reading one block at a time gains nothing from
  // striping: "faster storage devices cannot solve the I/O bottleneck
  // problem ... if data passes through a file system on a single
  // processor" — exactly the motivation for the tool interface.
  auto scan_time = [](std::uint32_t servers) {
    Machine m(butterfly1(32));
    chrys::Kernel k(m);
    Time t = 0;
    k.create_process(31, [&] {
      BridgeFs fs(k, servers);
      const FileId f = fs.create("file");
      std::vector<std::uint8_t> blk(kBlockSize, 1);
      for (std::uint32_t b = 0; b < 24; ++b) fs.write_block(f, b, blk.data());
      std::vector<std::uint8_t> buf(kBlockSize);
      const Time t0 = m.now();
      for (std::uint32_t b = 0; b < 24; ++b) fs.read_block(f, b, buf.data());
      t = m.now() - t0;
      fs.shutdown();
    });
    m.run();
    return t;
  };
  const Time one = scan_time(1);
  const Time four = scan_time(4);
  EXPECT_LT(four, 2 * one);
  EXPECT_GT(four * 2, one) << "no parallel win through the serial client";
}

TEST(BridgeFaults, DeadServerFailsItsStripeOthersKeepServing) {
  // Four servers on nodes 0-3; node 2's server dies mid-run.  Blocks whose
  // stripe lands on server 2 raise kThrowNodeDead; the other stripes keep
  // working, and shutdown still completes.
  sim::FaultPlan plan;
  plan.kill(2, 500 * sim::kMillisecond);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  std::uint32_t dead_stripe_errors = 0;
  std::uint32_t good_reads = 0;
  k.create_process(7, [&] {
    BridgeFs fs(k, 4);
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk, back(kBlockSize);
    // All 12 writes land well before the kill at 500 ms.
    for (std::uint32_t b = 0; b < 12; ++b) {
      fill_block(blk, b);
      fs.write_block(f, b, blk.data());
    }
    // Wait out the kill, then read everything back: the dead server's
    // stripe fails, the rest is intact.
    while (k.node_alive(2)) k.delay(50 * sim::kMillisecond);
    for (std::uint32_t b = 0; b < 12; ++b) {
      const int err = k.catch_block([&] {
        fs.read_block(f, b, back.data());
        fill_block(blk, b);
        if (back == blk) ++good_reads;
      });
      if (err == chrys::kThrowNodeDead) ++dead_stripe_errors;
    }
    EXPECT_EQ(fs.servers_lost(), 1u);
    EXPECT_EQ(fs.servers_alive(), 3u);
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  // Blocks 2, 6, 10 live on the dead server.
  EXPECT_EQ(dead_stripe_errors, 3u);
  EXPECT_EQ(good_reads, 9u);
}

TEST(BridgeFaults, ToolOpsRunDegradedOnSurvivors) {
  sim::FaultPlan plan;
  plan.kill(1, 300 * sim::kMillisecond);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  k.create_process(7, [&] {
    BridgeFs fs(k, 4);
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk(kBlockSize, 0xAB);
    // 8 blocks at ~26 ms each: done well before the kill at 300 ms.
    for (std::uint32_t b = 0; b < 8; ++b) fs.write_block(f, b, blk.data());
    // Wait out the kill, then search: it runs on the 3 survivors only.
    while (k.node_alive(1)) k.delay(50 * sim::kMillisecond);
    const std::uint64_t hits = fs.tool_search(f, 0xAB);
    // 6 of 8 blocks are on surviving servers (blocks 1 and 5 are lost).
    EXPECT_EQ(hits, 6u * kBlockSize);
    EXPECT_EQ(fs.servers_lost(), 1u);
    EXPECT_EQ(fs.servers_alive(), 3u);
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(BridgeFaults, RequestInFlightOnDyingServerGetsAFailureReply) {
  // The client is blocked waiting on a reply from the very server that
  // dies: it must receive a failure reply promptly, not hang.
  sim::FaultPlan plan;
  plan.kill(0, 100 * sim::kMillisecond);
  Machine m(butterfly1(4), plan);
  chrys::Kernel k(m);
  bool threw = false;
  k.create_process(3, [&] {
    BridgeFs fs(k, 2);
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk(kBlockSize, 1);
    // Server 0 (node 0) owns even blocks; a long write train keeps it busy
    // across its death time.
    for (std::uint32_t b = 0; b < 40 && !threw; b += 2) {
      const int err = k.catch_block([&] { fs.write_block(f, b, blk.data()); });
      if (err == chrys::kThrowNodeDead) threw = true;
    }
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_TRUE(threw);
}

TEST(BridgeFaults, DiskKilledMidRequestFailsInFlightAndSubsequentOps) {
  // Node 0 homes a disk and dies mid-request: the in-flight request gets a
  // failure reply, and every later block op on that stripe raises promptly
  // — in both directions — instead of hanging on a queue nobody serves.
  sim::FaultPlan plan;
  plan.kill(0, 100 * sim::kMillisecond);
  Machine m(butterfly1(4), plan);
  chrys::Kernel k(m);
  k.create_process(3, [&] {
    BridgeFs fs(k, 2);
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk(kBlockSize, 1), back(kBlockSize);
    bool threw = false;
    // Server 0 owns even blocks; the write train is mid-request at 100 ms.
    for (std::uint32_t b = 0; b < 40 && !threw; b += 2) {
      const int err = k.catch_block([&] { fs.write_block(f, b, blk.data()); });
      if (err == chrys::kThrowNodeDead) threw = true;
    }
    EXPECT_TRUE(threw);
    // Subsequent ops on the dead stripe refuse fast (no disk service).
    const sim::Time before = m.now();
    EXPECT_EQ(k.catch_block([&] { fs.write_block(f, 0, blk.data()); }),
              chrys::kThrowNodeDead);
    EXPECT_EQ(k.catch_block([&] { fs.read_block(f, 0, back.data()); }),
              chrys::kThrowNodeDead);
    EXPECT_LT(m.now() - before, 10 * sim::kMillisecond);
    // The surviving server's stripe still works.
    fs.write_block(f, 1, blk.data());
    fs.read_block(f, 1, back.data());
    EXPECT_EQ(back, blk);
    EXPECT_EQ(fs.servers_lost(), 1u);
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(BridgeFaults, SilentlyDeadServerIsExcisedByAFailureDetector) {
  // A silent kill fires no crash broadcast: the client blocked on the dead
  // server's reply stays blocked until a failure detector's verdict
  // arrives through excise_node, which fail-replies the in-flight request.
  sim::FaultPlan plan;
  plan.kill_silent(0, 100 * sim::kMillisecond);
  Machine m(butterfly1(4), plan);
  chrys::Kernel k(m);
  bool threw = false;
  BridgeFs* fsp = nullptr;
  k.create_process(3, [&] {
    BridgeFs fs(k, 2);
    fsp = &fs;
    // A stand-in detector on another node: notices the death (ground truth
    // here; rescue::Membership in real use) and reports it a while later.
    k.create_process(2, [&] {
      while (k.node_alive(0)) k.delay(20 * sim::kMillisecond);
      k.delay(50 * sim::kMillisecond);
      fsp->excise_node(0);
    });
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk(kBlockSize, 2);
    for (std::uint32_t b = 0; b < 40 && !threw; b += 2) {
      const int err = k.catch_block([&] { fs.write_block(f, b, blk.data()); });
      if (err == chrys::kThrowNodeDead) threw = true;
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(fs.servers_lost(), 1u);
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_TRUE(threw);
}

TEST(Bridge, StableStoreSurvivesAMachineReboot) {
  StableStore store;
  // First incarnation writes a file; the store is flushed on destruction.
  {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    k.create_process(7, [&] {
      BridgeFs fs(k, 4, DiskParams{}, &store);
      const FileId f = fs.create("data");
      std::vector<std::uint8_t> blk;
      for (std::uint32_t b = 0; b < 10; ++b) {
        fill_block(blk, b);
        fs.write_block(f, b, blk.data());
      }
      fs.shutdown();
    });
    m.run();
    ASSERT_FALSE(m.deadlocked());
  }
  ASSERT_FALSE(store.empty());
  // A fresh Machine — a reboot — sees the same bytes on the platters.
  {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    k.create_process(7, [&] {
      BridgeFs fs(k, 4, DiskParams{}, &store);
      FileId f = 0;
      ASSERT_TRUE(fs.lookup("data", &f));
      EXPECT_EQ(fs.blocks(f), 10u);
      std::vector<std::uint8_t> blk, back(kBlockSize);
      for (std::uint32_t b = 0; b < 10; ++b) {
        fs.read_block(f, b, back.data());
        fill_block(blk, b);
        EXPECT_EQ(back, blk) << "block " << b;
      }
      fs.shutdown();
    });
    m.run();
    ASSERT_FALSE(m.deadlocked());
  }
  // A different server count would scramble the interleaving: refused.
  {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    bool threw = false;
    k.create_process(7, [&] {
      try {
        BridgeFs fs(k, 2, DiskParams{}, &store);
        fs.shutdown();
      } catch (const sim::SimError&) {
        threw = true;
      }
    });
    m.run();
    EXPECT_TRUE(threw);
  }
}

TEST(BridgeDeadline, BudgetedCallsRoundTripOnAHealthyFs) {
  with_fs(8, 4, [](chrys::Kernel&, BridgeFs& fs) {
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk, back(kBlockSize);
    for (std::uint32_t b = 0; b < 8; ++b) {
      fill_block(blk, b);
      ASSERT_TRUE(fs.write_block_for(f, b, blk.data(), sim::kSecond));
    }
    for (std::uint32_t b = 0; b < 8; ++b) {
      ASSERT_TRUE(fs.read_block_for(f, b, back.data(), sim::kSecond));
      fill_block(blk, b);
      EXPECT_EQ(back, blk) << "block " << b;
    }
  });
}

TEST(BridgeDeadline, ReadTimesOutOnASilentlyDeadServerInsteadOfHanging) {
  // Silent kill: no crash broadcast, nobody fail-replies the queue.  Before
  // the deadline interface this read could only hang until a failure
  // detector spoke up; now it abandons the request and returns false within
  // its budget.
  sim::FaultPlan plan;
  plan.kill_silent(0, 100 * sim::kMillisecond);
  Machine m(butterfly1(4), plan);
  chrys::Kernel k(m);
  k.create_process(3, [&] {
    BridgeFs fs(k, 2);
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk(kBlockSize, 3), back(kBlockSize);
    fs.write_block(f, 1, blk.data());  // survivor's stripe, for later
    // A budgeted write train against server 0: the request in flight when
    // the node goes catatonic at 100 ms gets no reply and no broadcast —
    // the budget is all that brings the client back.
    const Time budget = 150 * sim::kMillisecond;
    bool timed_out = false;
    Time worst = 0;
    for (std::uint32_t i = 0; i < 40 && !timed_out; ++i) {
      const Time t0 = m.now();
      const int err = k.catch_block([&] {
        if (!fs.write_block_for(f, (i % 4) * 2, blk.data(), budget))
          timed_out = true;
      });
      worst = std::max(worst, m.now() - t0);
      // A *new* request against the corpse discovers the death by touching
      // its memory; only the in-flight one needed the deadline.
      if (err == chrys::kThrowNodeDead) break;
    }
    EXPECT_TRUE(timed_out);
    EXPECT_LE(worst, budget + 50 * sim::kMillisecond) << "bounded by budget";
    // The survivor's stripe still answers inside any reasonable budget.
    EXPECT_TRUE(fs.read_block_for(f, 1, back.data(), sim::kSecond));
    EXPECT_EQ(back, blk);
    // A detector's verdict finally lands: the abandoned request parked on
    // the corpse is reclaimed and shutdown no longer waits on it.
    fs.excise_node(0);
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
}

TEST(BridgeDeadline, AbandonedRequestsDoNotStrandTheServerOrTheSlots) {
  // Time out against a *live but busy* server: the abandoned request is
  // eventually claimed by the server, which must skip the client's (gone)
  // buffers, reclaim the slot, and keep serving later requests normally.
  with_fs(8, 2, [](chrys::Kernel& k, BridgeFs& fs) {
    const FileId f = fs.create("data");
    std::vector<std::uint8_t> blk(kBlockSize, 5), back(kBlockSize);
    for (std::uint32_t b = 0; b < 6; ++b) fs.write_block(f, b, blk.data());
    // Pile asynchronous reads onto server 0 so a later budgeted read
    // cannot be served in time.
    const chrys::Oid dq = k.make_dual_queue();
    std::vector<std::uint32_t> rids;
    std::vector<std::vector<std::uint8_t>> bufs(6);
    for (std::uint32_t i = 0; i < 6; ++i) {
      bufs[i].assign(kBlockSize, 0);
      rids.push_back(fs.submit_read(f, 0, bufs[i].data(), dq));
    }
    // Seek+transfer is ~26 ms per access: a 1 ms budget must lose.
    EXPECT_FALSE(fs.read_block_for(f, 0, back.data(), sim::kMillisecond));
    // Drain the pile; every queued read completes fine.
    for (std::uint32_t i = 0; i < 6; ++i) {
      const std::uint32_t rid = k.dq_dequeue(dq);
      EXPECT_FALSE(fs.request_failed(rid));
      fs.finish_request(rid);
    }
    fs.release_reply_queue(dq);
    // The abandoned request was served meanwhile without touching `back`.
    fs.read_block(f, 2, back.data());
    EXPECT_EQ(back, blk);
  });
}

}  // namespace
}  // namespace bfly::bridge
