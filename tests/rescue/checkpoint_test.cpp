// Deterministic checkpoint/restart through Bridge stable storage.
#include "rescue/checkpoint.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"

namespace bfly::rescue {
namespace {

using sim::butterfly1;
using sim::Machine;

constexpr std::uint32_t kWords = 1500;  // ~6 KB: spans two disk blocks

// The checkpointed workload: a deterministic per-step scramble of a shared
// array.  Steps must land in order — skipping or repeating one from the
// wrong state changes every word — which is exactly what makes the final
// bytes a fingerprint of correct restart behaviour.
void apply_step(Machine& m, sim::PhysAddr base, std::uint32_t step) {
  for (std::uint32_t w = 0; w < kWords; ++w) {
    const auto v = m.peek<std::uint32_t>(base.plus(w * 4));
    m.poke<std::uint32_t>(base.plus(w * 4),
                          v * 1664525u + step * 1013904223u + w);
  }
}

void host_step(std::vector<std::uint32_t>& a, std::uint32_t step) {
  for (std::uint32_t w = 0; w < kWords; ++w)
    a[w] = a[w] * 1664525u + step * 1013904223u + w;
}

void init_region(Machine& m, sim::PhysAddr base) {
  for (std::uint32_t w = 0; w < kWords; ++w)
    m.poke<std::uint32_t>(base.plus(w * 4), w * 2654435761u);
}

std::vector<std::uint32_t> read_region(Machine& m, sim::PhysAddr base) {
  std::vector<std::uint32_t> out(kWords);
  for (std::uint32_t w = 0; w < kWords; ++w)
    out[w] = m.peek<std::uint32_t>(base.plus(w * 4));
  return out;
}

TEST(Checkpoint, RestartResumesFromTheLastCheckpointBitForBit) {
  // Reference: all six steps applied in order, host-side.
  std::vector<std::uint32_t> expect(kWords);
  for (std::uint32_t w = 0; w < kWords; ++w) expect[w] = w * 2654435761u;
  for (std::uint32_t s = 0; s < 6; ++s) host_step(expect, s);

  bridge::StableStore store;
  // First incarnation: checkpoint every 2 steps, "crash" after step 2 —
  // the run simply stops with steps 0-2 done but only 0-1 checkpointed.
  {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    k.create_process(7, [&] {
      bridge::BridgeFs fs(k, 4, bridge::DiskParams{}, &store);
      Checkpointer cp(k, fs, CheckpointConfig{2, "ckpt"});
      const sim::PhysAddr base = m.alloc(1, kWords * 4);
      init_region(m, base);
      cp.protect(base, kWords * 4);
      EXPECT_FALSE(cp.restore());  // fresh store: nothing to restore
      cp.run_steps(3, [&](std::uint32_t s) { apply_step(m, base, s); });
      fs.shutdown();
    });
    m.run();
    ASSERT_FALSE(m.deadlocked());
    EXPECT_EQ(m.stats().checkpoints_taken, 1u);  // at the step-2 boundary
    EXPECT_EQ(m.stats().restart_count, 0u);
  }
  // Second incarnation: a fresh Machine under the same deterministic
  // allocation sequence gets the same region address; restore rolls the
  // memory back to the checkpoint and step 2 is *re-run* from the right
  // state, so the final bytes match the uninterrupted reference exactly.
  {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    std::vector<std::uint32_t> final_words;
    k.create_process(7, [&] {
      bridge::BridgeFs fs(k, 4, bridge::DiskParams{}, &store);
      Checkpointer cp(k, fs, CheckpointConfig{2, "ckpt"});
      const sim::PhysAddr base = m.alloc(1, kWords * 4);
      cp.protect(base, kWords * 4);
      ASSERT_TRUE(cp.restore());
      EXPECT_EQ(cp.next_step(), 2u);
      cp.run_steps(6, [&](std::uint32_t s) { apply_step(m, base, s); });
      final_words = read_region(m, base);
      fs.shutdown();
    });
    m.run();
    ASSERT_FALSE(m.deadlocked());
    EXPECT_EQ(m.stats().restart_count, 1u);
    EXPECT_EQ(final_words, expect);
  }
}

TEST(Checkpoint, TornCheckpointFallsBackToThePreviousBuffer) {
  // Two checkpoints land in alternating buffers; the newer one is then
  // torn (a data block rewritten while its header still describes the old
  // bytes — what a crash between data and header writes leaves behind).
  // restore() must reject the torn buffer by checksum and fall back.
  bridge::StableStore store;
  {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    k.create_process(7, [&] {
      bridge::BridgeFs fs(k, 4, bridge::DiskParams{}, &store);
      Checkpointer cp(k, fs, CheckpointConfig{1, "ckpt"});
      const sim::PhysAddr base = m.alloc(1, kWords * 4);
      cp.protect(base, kWords * 4);
      for (std::uint32_t w = 0; w < kWords; ++w)
        m.poke<std::uint32_t>(base.plus(w * 4), 0xA0000000u + w);
      cp.take_checkpoint();  // seq 1 -> ckpt.a
      for (std::uint32_t w = 0; w < kWords; ++w)
        m.poke<std::uint32_t>(base.plus(w * 4), 0xB0000000u + w);
      cp.take_checkpoint();  // seq 2 -> ckpt.b
      bridge::FileId f = 0;
      ASSERT_TRUE(fs.lookup("ckpt.b", &f));
      std::vector<std::uint8_t> garbage(bridge::kBlockSize, 0x5A);
      fs.write_block(f, 1, garbage.data());  // the tear
      fs.shutdown();
    });
    m.run();
    ASSERT_FALSE(m.deadlocked());
  }
  {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    std::vector<std::uint32_t> words;
    k.create_process(7, [&] {
      bridge::BridgeFs fs(k, 4, bridge::DiskParams{}, &store);
      Checkpointer cp(k, fs, CheckpointConfig{1, "ckpt"});
      const sim::PhysAddr base = m.alloc(1, kWords * 4);
      cp.protect(base, kWords * 4);
      ASSERT_TRUE(cp.restore());
      words = read_region(m, base);
      fs.shutdown();
    });
    m.run();
    ASSERT_FALSE(m.deadlocked());
    ASSERT_EQ(words.size(), kWords);
    for (std::uint32_t w = 0; w < kWords; ++w)
      ASSERT_EQ(words[w], 0xA0000000u + w) << "word " << w;
  }
}

TEST(Checkpoint, RegionShapeMismatchInvalidatesTheImage) {
  // A restart that protects different regions than the run that wrote the
  // checkpoint must not scatter bytes into the wrong places.
  bridge::StableStore store;
  {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    k.create_process(7, [&] {
      bridge::BridgeFs fs(k, 4, bridge::DiskParams{}, &store);
      Checkpointer cp(k, fs, CheckpointConfig{1, "ckpt"});
      const sim::PhysAddr base = m.alloc(1, kWords * 4);
      cp.protect(base, kWords * 4);
      cp.take_checkpoint();
      fs.shutdown();
    });
    m.run();
  }
  {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    k.create_process(7, [&] {
      bridge::BridgeFs fs(k, 4, bridge::DiskParams{}, &store);
      Checkpointer cp(k, fs, CheckpointConfig{1, "ckpt"});
      const sim::PhysAddr base = m.alloc(1, kWords * 4);
      cp.protect(base, kWords * 2);  // half the region: not what was saved
      EXPECT_FALSE(cp.restore());
      fs.shutdown();
    });
    m.run();
    EXPECT_EQ(m.stats().restart_count, 0u);
  }
}

TEST(Checkpoint, CheckpointTruncatesTheAttachedReplayLog) {
  // A restored run can never replay history from before the checkpoint, so
  // the record log is cut there — events after the barrier still record.
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  replay::Monitor mon(k, 1);
  const std::uint32_t obj = mon.register_object(0, "cell");
  mon.set_mode(replay::Mode::kRecord);
  bridge::StableStore store;
  std::size_t entries = 999;
  k.create_process(7, [&] {
    bridge::BridgeFs fs(k, 4, bridge::DiskParams{}, &store);
    Checkpointer cp(k, fs, CheckpointConfig{1, "ckpt"});
    cp.attach_replay(&mon);
    const sim::PhysAddr base = m.alloc(1, 256);
    cp.protect(base, 256);
    for (int i = 0; i < 3; ++i) {
      mon.begin_write(0, obj);
      m.charge(100 * sim::kMicrosecond);
      mon.end_write(0, obj);
    }
    cp.take_checkpoint();  // barrier: the three entries above are dropped
    mon.begin_write(0, obj);
    m.charge(100 * sim::kMicrosecond);
    mon.end_write(0, obj);
    entries = mon.take_log().total_entries();
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_EQ(entries, 1u);
}

}  // namespace
}  // namespace bfly::rescue
