// Heartbeat/watchdog membership: surviving silent node deaths without ever
// touching the corpse.
#include "rescue/rescue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "us/uniform_system.hpp"

namespace bfly::rescue {
namespace {

using sim::butterfly1;
using sim::Machine;

// A Uniform System grind sized so every worker is still busy when the kill
// lands at 50 ms: 400 idempotent 1 ms tasks across 8 managers, each task
// stamping its own result cell.  The killed node is a pure *worker* —
// shared memory lives on nodes 0-3, node 5 holds no data any peer touches
// — so nothing a survivor does ever references the corpse.
struct GrindSetup {
  static constexpr std::uint32_t kTasks = 400;
  us::UsConfig cfg;
  rescue::RescueConfig rc;
  GrindSetup() {
    cfg.memory_nodes = 4;
    // Keep the watchdog off node 0: the US work queue and completion
    // counter saturate that memory module during the grind, and heartbeat
    // reads queued behind it would stall detection until the grind drains.
    rc.monitor_node = 6;
  }
};

TEST(Membership, SilentKillWithNoDetectorDeadlocksTheUniformSystem) {
  // The control: node 5 goes catatonic at 50 ms with no machine-check
  // broadcast.  Its in-flight task's completion decrement is never applied,
  // no survivor ever touches node 5's memory, so wait_idle blocks forever.
  sim::FaultPlan plan;
  plan.kill_silent(5, 50 * sim::kMillisecond);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  GrindSetup s;
  us::UniformSystem us(k, s.cfg);
  us.run_main([&] {
    us.for_all(0, GrindSetup::kTasks,
               [&](us::TaskCtx& c) { c.m.compute(2000); });
  });
  EXPECT_TRUE(m.deadlocked());
}

TEST(Membership, HeartbeatDetectionAloneCompletesTheStrandedRun) {
  // Same machine, same silent kill — plus the membership service.  The
  // watchdog notices node 5's heartbeat word stop moving, declares it, and
  // the subscription excises it from the Uniform System pool: the stranded
  // task is re-issued and the run completes.  Nobody ever referenced the
  // dead node's memory; detection came from the heartbeat timeout alone.
  sim::FaultPlan plan;
  plan.kill_silent(5, 50 * sim::kMillisecond);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  GrindSetup s;
  us::UniformSystem us(k, s.cfg);
  Membership mem(k, s.rc);  // 2 ms heartbeats, suspect after 8 ms stale
  mem.subscribe([&](sim::NodeId n) { us.excise_node(n); });
  std::vector<std::uint8_t> done(GrindSetup::kTasks, 0);
  us.run_main([&] {
    mem.start();
    us.for_all(0, GrindSetup::kTasks, [&](us::TaskCtx& c) {
      c.m.compute(2000);
      done[c.arg] = 1;  // idempotent: a re-run stamps the same cell
    });
    mem.stop();
  });
  ASSERT_FALSE(m.deadlocked());
  for (std::uint32_t i = 0; i < GrindSetup::kTasks; ++i)
    EXPECT_TRUE(done[i]) << "task " << i << " never completed";
  EXPECT_EQ(m.stats().suspects_declared, 1u);
  EXPECT_EQ(m.stats().false_suspects, 0u);
  ASSERT_EQ(mem.history().size(), 1u);
  EXPECT_EQ(mem.history()[0].node, 5u);
  EXPECT_FALSE(mem.member(5));
  EXPECT_EQ(mem.members_alive(), 7u);
  EXPECT_EQ(us.nodes_lost(), 1u);
  // Detection happened after the kill but within a few staleness windows.
  const sim::Time detect = mem.suspected_at(5);
  EXPECT_GT(detect, 50 * sim::kMillisecond);
  EXPECT_LT(detect, 80 * sim::kMillisecond);
}

TEST(Membership, FalseAccusationIsCountedAndChangesNothing) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  us::UniformSystem us(k);
  std::uint32_t notified = 0;
  Membership mem(k);
  mem.subscribe([&](sim::NodeId) { ++notified; });
  us.run_main([&] {
    mem.denounce(3);       // node 3 is perfectly healthy
    us.excise_node(3);     // and a direct excision is refused too
    us.for_all(0, 16, [](us::TaskCtx& c) { c.m.compute(500); });
  });
  ASSERT_FALSE(m.deadlocked());
  EXPECT_EQ(m.stats().false_suspects, 1u);
  EXPECT_EQ(m.stats().suspects_declared, 0u);
  EXPECT_TRUE(mem.member(3));
  EXPECT_EQ(mem.epoch(), 0u);
  EXPECT_EQ(notified, 0u);
  EXPECT_EQ(us.nodes_lost(), 0u);
  EXPECT_EQ(us.managers_alive(), 0u);  // terminate() stopped all 8
}

TEST(Membership, DenounceOfAGenuinelyDeadNodeDeclaresImmediately) {
  // The retry-exhaustion path: a layer that gave up on a node accuses it
  // directly, skipping the heartbeat timeout.  The verdict is checked
  // against ground truth and then published like any other suspicion.
  sim::FaultPlan plan;
  plan.kill_silent(2, 10 * sim::kMillisecond);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  std::vector<sim::NodeId> notified;
  Membership mem(k);  // never started: denounce alone drives it
  mem.subscribe([&](sim::NodeId n) { notified.push_back(n); });
  k.create_process(0, [&] {
    k.delay(20 * sim::kMillisecond);
    mem.denounce(2);
    mem.denounce(2);  // double accusation: second is a no-op
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_EQ(m.stats().suspects_declared, 1u);
  EXPECT_EQ(mem.epoch(), 1u);
  EXPECT_EQ(notified, (std::vector<sim::NodeId>{2}));
  EXPECT_FALSE(mem.member(2));
}

TEST(Membership, UnsubscribedCallbackStopsFiring) {
  sim::FaultPlan plan;
  plan.kill_silent(1, 5 * sim::kMillisecond);
  plan.kill_silent(2, 5 * sim::kMillisecond);
  Machine m(butterfly1(4), plan);
  chrys::Kernel k(m);
  std::uint32_t calls = 0;
  Membership mem(k);
  const auto id = mem.subscribe([&](sim::NodeId) { ++calls; });
  k.create_process(0, [&] {
    k.delay(10 * sim::kMillisecond);
    mem.denounce(1);
    mem.unsubscribe(id);
    mem.denounce(2);
  });
  m.run();
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(mem.epoch(), 2u);
}

TEST(Membership, ZeroFaultAnswerIsUnchangedByTheInstrumentation) {
  // The membership service charges real simulated time (heartbeats cross
  // the switch), so timing shifts — but on a healthy machine the *answer*
  // of a deterministic workload must be byte-identical with rescue on.
  auto run = [](bool with_rescue) {
    Machine m(butterfly1(8));
    chrys::Kernel k(m);
    us::UniformSystem us(k);
    Membership mem(k);
    if (with_rescue) mem.subscribe([&](sim::NodeId n) { us.excise_node(n); });
    std::vector<std::uint32_t> out(64, 0);
    us.run_main([&] {
      if (with_rescue) mem.start();
      us.for_all(0, 64, [&](us::TaskCtx& c) {
        c.m.compute(1000);
        out[c.arg] = c.arg * 2654435761u;
      });
      if (with_rescue) mem.stop();
    });
    EXPECT_FALSE(m.deadlocked());
    EXPECT_EQ(m.stats().suspects_declared, 0u);
    EXPECT_EQ(m.stats().false_suspects, 0u);
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Membership, PartitionedNodesAreSuspectedUnreachableNotExcised) {
  // A 50/50 cut separates the monitor (node 0) from nodes 4-7 for 140 ms.
  // Their heartbeats stall, but they are alive: the watchdog must flag them
  // suspected_unreachable — still members, never excised, never counted as
  // false suspects — and graduate them back when the cut heals.  Every
  // transition bumps the epoch, fencing any stale view a healed minority
  // might still hold.  The cut opens at 80 ms: bringing up 8 daemons plus
  // the watchdog costs ~35 ms of simulated time (create_process charges a
  // serialized template pass), and the service must be fully up pre-cut.
  sim::FaultPlan plan;
  plan.partition({0, 1, 2, 3}, {4, 5, 6, 7}, 80 * sim::kMillisecond,
                 220 * sim::kMillisecond);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  Membership mem(k);  // monitor on node 0, side A
  std::vector<std::pair<sim::NodeId, bool>> transitions;
  mem.subscribe_reach([&](sim::NodeId n, bool entering) {
    transitions.push_back({n, entering});
  });
  std::uint32_t excisions = 0;
  mem.subscribe([&](sim::NodeId) { ++excisions; });
  std::uint64_t epoch_mid = 0;
  k.create_process(0, [&] {
    mem.start();
    ASSERT_LT(m.now(), 80 * sim::kMillisecond) << "service must be up pre-cut";
    auto until = [&](sim::Time t) { if (m.now() < t) k.delay(t - m.now()); };
    until(160 * sim::kMillisecond);  // deep inside the window
    for (sim::NodeId n = 4; n < 8; ++n) {
      EXPECT_TRUE(mem.member(n)) << "node " << n << " must stay a member";
      EXPECT_TRUE(mem.unreachable(n)) << "node " << n;
    }
    EXPECT_FALSE(mem.unreachable(1)) << "same-side node untouched";
    EXPECT_EQ(mem.members_unreachable(), 4u);
    epoch_mid = mem.epoch();
    until(300 * sim::kMillisecond);  // well past heal: heartbeats resumed
    for (sim::NodeId n = 4; n < 8; ++n)
      EXPECT_FALSE(mem.unreachable(n)) << "node " << n << " not restored";
    EXPECT_EQ(mem.members_unreachable(), 0u);
    mem.stop();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  // Ground truth: alive-but-unreachable is neither a declared suspicion nor
  // a false positive — it is its own state.
  EXPECT_EQ(m.stats().suspects_declared, 0u);
  EXPECT_EQ(m.stats().false_suspects, 0u);
  EXPECT_EQ(m.stats().suspects_unreachable, 4u);
  EXPECT_EQ(m.stats().unreachable_restored, 4u);
  EXPECT_EQ(mem.members_alive(), 8u);
  EXPECT_TRUE(mem.history().empty());
  // Epoch fencing: 4 bumps entering the cut, 4 more on restore.
  EXPECT_EQ(epoch_mid, 4u);
  EXPECT_EQ(mem.epoch(), 8u);
  ASSERT_EQ(transitions.size(), 8u);
  std::vector<sim::NodeId> entered, restored;
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(transitions[i].second, i < 4)
        << "all enters precede all restores";
    (transitions[i].second ? entered : restored).push_back(transitions[i].first);
  }
  std::sort(entered.begin(), entered.end());
  std::sort(restored.begin(), restored.end());
  EXPECT_EQ(entered, (std::vector<sim::NodeId>{4, 5, 6, 7}));
  EXPECT_EQ(restored, (std::vector<sim::NodeId>{4, 5, 6, 7}));
  EXPECT_EQ(excisions, 0u);
}

TEST(Membership, DenounceOfAPartitionedNodeFlagsInsteadOfExcising) {
  // The retry-exhaustion accusation path must make the same distinction the
  // watchdog does: an accusee the monitor cannot reach is alive, so it is
  // flagged suspected_unreachable rather than declared or dismissed.
  sim::FaultPlan plan;
  plan.partition({0}, {3}, 10 * sim::kMillisecond, 100 * sim::kMillisecond);
  Machine m(butterfly1(4), plan);
  chrys::Kernel k(m);
  Membership mem(k);  // never started: denounce alone drives it
  k.create_process(0, [&] {
    k.delay(50 * sim::kMillisecond);  // inside the window
    mem.denounce(3);
    mem.denounce(3);  // already flagged: second accusation is a no-op
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_TRUE(mem.member(3));
  EXPECT_TRUE(mem.unreachable(3));
  EXPECT_EQ(mem.members_unreachable(), 1u);
  EXPECT_EQ(mem.epoch(), 1u);
  EXPECT_EQ(m.stats().suspects_unreachable, 1u);
  EXPECT_EQ(m.stats().false_suspects, 0u);
  EXPECT_EQ(m.stats().suspects_declared, 0u);
}

TEST(Membership, DeathWhilePartitionedGraduatesToExcision) {
  // A node that dies while flagged suspected_unreachable: the later verdict
  // wins.  The declaration clears the unreachable flag so the two counters
  // never double-book one node.
  sim::FaultPlan plan;
  plan.partition({0}, {3}, 10 * sim::kMillisecond, 200 * sim::kMillisecond);
  plan.kill_silent(3, 60 * sim::kMillisecond);
  Machine m(butterfly1(4), plan);
  chrys::Kernel k(m);
  Membership mem(k);
  k.create_process(0, [&] {
    k.delay(30 * sim::kMillisecond);
    mem.denounce(3);  // alive but cut off: flagged
    EXPECT_TRUE(mem.unreachable(3));
    k.delay(50 * sim::kMillisecond);  // node 3 is dead now
    mem.denounce(3);  // the accusation sticks this time
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_FALSE(mem.member(3));
  EXPECT_FALSE(mem.unreachable(3));
  EXPECT_EQ(mem.members_unreachable(), 0u);
  EXPECT_EQ(m.stats().suspects_declared, 1u);
  EXPECT_EQ(m.stats().suspects_unreachable, 1u);
  EXPECT_EQ(m.stats().unreachable_restored, 0u);
  EXPECT_EQ(mem.epoch(), 2u);
}

TEST(Membership, ConfigSanityIsEnforced) {
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  RescueConfig bad;
  bad.suspect_after = bad.heartbeat_period;  // would suspect the healthy
  EXPECT_THROW(Membership(k, bad), sim::SimError);
  RescueConfig off_machine;
  off_machine.monitor_node = 99;
  EXPECT_THROW(Membership(k, off_machine), sim::SimError);
}

}  // namespace
}  // namespace bfly::rescue
