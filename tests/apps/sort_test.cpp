#include "apps/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace bfly::apps {
namespace {

using sim::butterfly1;
using sim::Machine;

TEST(OddEvenSort, SortsAcrossProcesses) {
  Machine m(butterfly1(8));
  SortConfig cfg;
  cfg.n = 512;
  cfg.processors = 8;
  SortResult r = odd_even_sort(m, cfg);
  ASSERT_FALSE(r.deadlocked);
  std::vector<std::uint32_t> expect = random_keys(cfg.n, cfg.seed);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(r.keys, expect);
}

TEST(OddEvenSort, OddProcessorCountWorks) {
  Machine m(butterfly1(8));
  SortConfig cfg;
  cfg.n = 350;
  cfg.processors = 7;
  SortResult r = odd_even_sort(m, cfg);
  ASSERT_FALSE(r.deadlocked);
  EXPECT_TRUE(std::is_sorted(r.keys.begin(), r.keys.end()));
  EXPECT_EQ(r.keys.size(), cfg.n);
}

TEST(OddEvenSort, InjectedBugDeadlocks) {
  // The Figure 6 scenario: receive-before-send in every pair.
  Machine m(butterfly1(8));
  SortConfig cfg;
  cfg.n = 128;
  cfg.processors = 8;
  cfg.inject_deadlock = true;
  SortResult r = odd_even_sort(m, cfg);
  EXPECT_TRUE(r.deadlocked);
}

TEST(BitonicSort, SortsSharedArray) {
  Machine m(butterfly1(16));
  SortConfig cfg;
  cfg.n = 1024;
  cfg.processors = 16;
  SortResult r = bitonic_sort(m, cfg);
  ASSERT_FALSE(r.deadlocked);
  std::vector<std::uint32_t> expect = random_keys(cfg.n, cfg.seed);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(r.keys, expect);
}

TEST(BitonicSort, ScalesWithProcessors) {
  SortConfig cfg;
  cfg.n = 2048;
  cfg.processors = 2;
  Machine m2(butterfly1(32));
  const auto t2 = bitonic_sort(m2, cfg).elapsed;
  cfg.processors = 16;
  Machine m16(butterfly1(32));
  const auto t16 = bitonic_sort(m16, cfg).elapsed;
  EXPECT_LT(t16 * 2, t2);
}

class BitonicSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BitonicSizes, SortsEverySize) {
  Machine m(butterfly1(8));
  SortConfig cfg;
  cfg.n = GetParam();
  cfg.processors = 8;
  SortResult r = bitonic_sort(m, cfg);
  EXPECT_TRUE(std::is_sorted(r.keys.begin(), r.keys.end()));
  EXPECT_EQ(r.keys.size(), cfg.n);
}

INSTANTIATE_TEST_SUITE_P(Pow2Sweep, BitonicSizes,
                         ::testing::Values(64u, 128u, 256u, 512u, 2048u));

}  // namespace
}  // namespace bfly::apps
