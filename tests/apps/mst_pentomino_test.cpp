#include <gtest/gtest.h>

#include "apps/image.hpp"
#include "apps/mst.hpp"
#include "apps/pentominoes.hpp"

namespace bfly::apps {
namespace {

using sim::butterfly1;
using sim::Machine;

// --- Minimal spanning tree -----------------------------------------------------

TEST(Mst, BoruvkaMatchesKruskalReference) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    const WeightedGraph g = WeightedGraph::random(60, 120, seed);
    Machine m(butterfly1(8));
    const MstResult r = boruvka_mst(m, g, 8);
    EXPECT_EQ(r.total_weight, mst_reference(g)) << "seed " << seed;
    EXPECT_EQ(r.edges_used, g.n - 1) << "a spanning tree has n-1 edges";
  }
}

TEST(Mst, TrivialGraphs) {
  WeightedGraph g;
  g.n = 2;
  g.edges.push_back(WeightedGraph::Edge{0, 1, 5});
  Machine m(butterfly1(4));
  const MstResult r = boruvka_mst(m, g, 4);
  EXPECT_EQ(r.total_weight, 5u);
  EXPECT_EQ(r.edges_used, 1u);
}

TEST(Mst, ScalesWithProcessors) {
  const WeightedGraph g = WeightedGraph::random(200, 2000, 3);
  Machine m2(butterfly1(32));
  const auto t2 = boruvka_mst(m2, g, 2).elapsed;
  Machine m16(butterfly1(32));
  const auto t16 = boruvka_mst(m16, g, 16).elapsed;
  EXPECT_LT(t16 * 2, t2);
}

// --- Pentominoes ------------------------------------------------------------------

TEST(Pentominoes, ParallelCountMatchesSerial) {
  PentominoConfig cfg;
  cfg.width = 5;
  cfg.height = 5;
  cfg.pieces = "FILTY";
  const std::uint64_t ref = pentomino_reference(cfg);
  Machine m(butterfly1(8));
  const PentominoResult r = pentominoes(m, cfg, 8);
  EXPECT_EQ(r.solutions, ref);
  EXPECT_GT(r.nodes, 0u);
}

TEST(Pentominoes, KnownTinyCase) {
  // Two P pentominoes tile a 2x5 box (each piece's complement in the box
  // is its own shape).  Distinct letters are separate piece slots, so "PP"
  // means two copies.
  PentominoConfig cfg;
  cfg.width = 5;
  cfg.height = 2;
  cfg.pieces = "PP";
  const std::uint64_t ref = pentomino_reference(cfg);
  Machine m(butterfly1(4));
  EXPECT_EQ(pentominoes(m, cfg, 4).solutions, ref);
  EXPECT_GT(ref, 0u);
}

TEST(Pentominoes, ImpossibleTilingYieldsZero) {
  PentominoConfig cfg;
  cfg.width = 5;
  cfg.height = 2;
  cfg.pieces = "XI";  // the X pentomino cannot fit in a 2-row strip
  EXPECT_EQ(pentomino_reference(cfg), 0u);
  Machine m(butterfly1(4));
  EXPECT_EQ(pentominoes(m, cfg, 4).solutions, 0u);
}

// --- Zero crossings -------------------------------------------------------------

TEST(Biff, ZeroCrossingsFindBlobBoundaries) {
  Machine m(butterfly1(8));
  const Image img = Image::synthetic(64, 64, 4);
  BiffResult r = biff_apply(m, img, filter_zero_crossings(), 8, 12);
  std::uint64_t marked = 0;
  for (std::uint8_t p : r.image.pixels) marked += p == 255;
  EXPECT_GT(marked, 100u) << "blob edges must produce zero crossings";
  EXPECT_LT(marked, 64u * 64u / 2) << "but not half the image";
}

}  // namespace
}  // namespace bfly::apps
