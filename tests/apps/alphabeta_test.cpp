#include "apps/alphabeta.hpp"

#include <gtest/gtest.h>

namespace bfly::apps {
namespace {

using sim::butterfly1;
using sim::Machine;

TEST(AlphaBeta, ReferencePrunes) {
  GameConfig cfg;
  cfg.depth = 5;
  cfg.branching = 6;
  const SearchResult r = alphabeta_reference(cfg);
  // Far fewer nodes than the full 6^5 tree.
  EXPECT_LT(r.nodes, 4000u);
  EXPECT_GE(r.value, -100);
  EXPECT_LE(r.value, 100);
}

TEST(AlphaBeta, ParallelFindsTheSameValue) {
  for (std::uint64_t seed : {1u, 22u, 333u}) {
    GameConfig cfg;
    cfg.depth = 5;
    cfg.branching = 6;
    cfg.seed = seed;
    const SearchResult ref = alphabeta_reference(cfg);
    Machine m(butterfly1(8));
    const SearchResult par = alphabeta_parallel(m, cfg, 6);
    EXPECT_EQ(par.value, ref.value) << "seed " << seed;
  }
}

TEST(AlphaBeta, SearchOverheadIsVisibleButBounded) {
  GameConfig cfg;
  cfg.depth = 5;
  cfg.branching = 8;
  const SearchResult ref = alphabeta_reference(cfg);
  Machine m(butterfly1(16));
  const SearchResult par = alphabeta_parallel(m, cfg, 8);
  EXPECT_GE(par.nodes, ref.nodes)
      << "speculative subtrees cannot visit fewer nodes than serial";
  EXPECT_LT(par.nodes, ref.nodes * 8)
      << "the shared alpha bound must recover most cutoffs";
}

TEST(AlphaBeta, ParallelSearchIsFaster) {
  GameConfig cfg;
  cfg.depth = 6;
  cfg.branching = 8;
  Machine m1(butterfly1(16));
  const auto t1 = alphabeta_parallel(m1, cfg, 1).elapsed;
  Machine m8(butterfly1(16));
  const auto t8 = alphabeta_parallel(m8, cfg, 8).elapsed;
  EXPECT_LT(t8 * 2, t1) << "root splitting should give real speedup";
}

}  // namespace
}  // namespace bfly::apps
