// Tests for the remaining Rochester applications: connectionist simulator,
// graph algorithms, convex hull, N-queens, knight's tour, BIFF filters.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "apps/connectionist.hpp"
#include "apps/geometry.hpp"
#include "apps/graph.hpp"
#include "apps/image.hpp"
#include "apps/pedagogical.hpp"

namespace bfly::apps {
namespace {

using sim::butterfly1;
using sim::Machine;

// --- Connectionist -----------------------------------------------------------

TEST(Connectionist, MatchesHostReference) {
  Machine m(butterfly1(16));
  ConnectionistConfig cfg;
  cfg.units = 128;
  cfg.fanin = 8;
  cfg.rounds = 4;
  cfg.processors = 8;
  ConnectionistResult r = connectionist(m, cfg);
  const std::vector<float> ref = connectionist_reference(cfg);
  ASSERT_EQ(r.activations.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(r.activations[i], ref[i], 1e-5) << "unit " << i;
  EXPECT_FALSE(m.deadlocked());
}

TEST(Connectionist, ScalesWithProcessors) {
  ConnectionistConfig cfg;
  cfg.units = 256;
  cfg.fanin = 16;
  cfg.rounds = 3;
  cfg.processors = 2;
  Machine m2(butterfly1(32));
  const auto t2 = connectionist(m2, cfg).elapsed;
  cfg.processors = 16;
  Machine m16(butterfly1(32));
  const auto t16 = connectionist(m16, cfg).elapsed;
  EXPECT_LT(t16 * 3, t2);
}

// --- Graphs --------------------------------------------------------------------

TEST(ConnectedComponents, LabelsCliques) {
  Machine m(butterfly1(8));
  const Graph g = Graph::cliques(5, 6);
  GraphRunResult r = connected_components(m, g, 8);
  ASSERT_EQ(r.labels.size(), 30u);
  for (std::uint32_t c = 0; c < 5; ++c)
    for (std::uint32_t i = 0; i < 6; ++i)
      EXPECT_EQ(r.labels[c * 6 + i], c * 6) << "vertex " << c * 6 + i;
}

TEST(ConnectedComponents, MatchesReferenceOnRandomGraph) {
  Machine m(butterfly1(8));
  const Graph g = Graph::random(120, 3, 77);
  GraphRunResult r = connected_components(m, g, 8);
  EXPECT_EQ(r.labels, cc_reference(g));
}

TEST(TransitiveClosure, CountsReachablePairs) {
  Machine m(butterfly1(8));
  const Graph g = Graph::cliques(3, 4);  // 3 components of 4: 3*16 pairs
  GraphRunResult r = transitive_closure(m, g, 8);
  EXPECT_EQ(r.value, 48u);
}

TEST(TransitiveClosure, MatchesReferenceOnRandomGraph) {
  Machine m(butterfly1(8));
  const Graph g = Graph::random(60, 2, 5);
  GraphRunResult r = transitive_closure(m, g, 8);
  EXPECT_EQ(r.value, closure_reference(g));
}

TEST(SubgraphIso, CountsTriangles) {
  Machine m(butterfly1(8));
  const Graph tri = Graph::cliques(1, 3);
  Graph host = Graph::cliques(1, 4);  // K4 contains 24 ordered K3 embeddings
  GraphRunResult r = subgraph_isomorphism(m, tri, host, 8);
  EXPECT_EQ(r.value, iso_reference(tri, host));
  EXPECT_EQ(r.value, 24u);
}

TEST(SubgraphIso, MatchesReferenceOnRandomHost) {
  Machine m(butterfly1(8));
  Graph path;
  path.n = 3;
  path.adj.resize(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  const Graph host = Graph::random(12, 3, 9);
  GraphRunResult r = subgraph_isomorphism(m, path, host, 8);
  EXPECT_EQ(r.value, iso_reference(path, host));
}

// --- Convex hull ------------------------------------------------------------------

TEST(ConvexHull, MatchesReference) {
  Machine m(butterfly1(8));
  const std::vector<Point> pts = random_points(400, 21);
  HullResult r = convex_hull(m, pts, 8);
  std::vector<Point> ref = hull_reference(pts);
  auto norm = [](std::vector<Point> v) {
    std::sort(v.begin(), v.end(), [](const Point& a, const Point& b) {
      return a.x != b.x ? a.x < b.x : a.y < b.y;
    });
    return v;
  };
  EXPECT_EQ(norm(r.hull), norm(ref));
}

TEST(ConvexHull, HandlesSmallInputs) {
  Machine m(butterfly1(4));
  std::vector<Point> pts = {{0, 0}, {1, 0}, {0, 1}, {0.1, 0.1}};
  HullResult r = convex_hull(m, pts, 4);
  EXPECT_EQ(r.hull.size(), 3u);
}

// --- Queens & knight ------------------------------------------------------------------

TEST(Queens, CountsMatchKnownValues) {
  Machine m(butterfly1(8));
  EXPECT_EQ(queens(m, 6, 8).solutions, 4u);
  Machine m2(butterfly1(8));
  EXPECT_EQ(queens(m2, 8, 8).solutions, 92u);
}

TEST(Queens, ReferenceAgrees) {
  EXPECT_EQ(queens_reference(7), 40u);
}

TEST(KnightsTour, FindsAValidTour) {
  Machine m(butterfly1(8));
  KnightResult r = knights_tour(m, 5, 4, 123);
  ASSERT_TRUE(r.found);
  // Valid tour: every square visited exactly once, consecutive steps are
  // knight moves.
  std::vector<std::uint32_t> pos(26, 999);
  for (std::uint32_t i = 0; i < 25; ++i) {
    ASSERT_GE(r.tour[i], 1);
    ASSERT_LE(r.tour[i], 25);
    pos[r.tour[i]] = i;
  }
  for (std::uint32_t s = 1; s < 25; ++s) {
    const int x0 = pos[s] % 5, y0 = pos[s] / 5;
    const int x1 = pos[s + 1] % 5, y1 = pos[s + 1] / 5;
    const int dx = std::abs(x1 - x0), dy = std::abs(y1 - y0);
    EXPECT_TRUE((dx == 1 && dy == 2) || (dx == 2 && dy == 1))
        << "step " << s;
  }
}

TEST(KnightsTour, WinnerDependsOnTiming) {
  // The nondeterminism Instant Replay was built for: different timing
  // perturbations crown different winners (or tours).
  std::vector<std::uint32_t> winners;
  std::vector<std::vector<std::uint8_t>> tours;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    Machine m(butterfly1(8));
    KnightResult r = knights_tour(m, 5, 4, seed);
    ASSERT_TRUE(r.found);
    winners.push_back(r.winner);
    tours.push_back(r.tour);
  }
  const bool winners_vary =
      std::adjacent_find(winners.begin(), winners.end(),
                         std::not_equal_to<>()) != winners.end();
  const bool tours_vary =
      std::adjacent_find(tours.begin(), tours.end(),
                         std::not_equal_to<>()) != tours.end();
  EXPECT_TRUE(winners_vary || tours_vary);
}

// --- BIFF ------------------------------------------------------------------------------

TEST(Biff, ThresholdProducesBinaryImage) {
  Machine m(butterfly1(8));
  const Image img = Image::synthetic(64, 64, 4);
  BiffResult r = biff_apply(m, img, filter_threshold(128), 8);
  for (std::uint8_t p : r.image.pixels) EXPECT_TRUE(p == 0 || p == 255);
}

TEST(Biff, HistogramCountsEveryPixel) {
  Machine m(butterfly1(8));
  const Image img = Image::synthetic(64, 48, 4);
  BiffResult r = biff_histogram(m, img, 8);
  const std::uint64_t total =
      std::accumulate(r.histogram.begin(), r.histogram.end(), 0ull);
  EXPECT_EQ(total, 64u * 48u);
  // Cross-check one bin against the host image.
  std::uint32_t host_bin100 = 0;
  for (std::uint8_t p : img.pixels) host_bin100 += p == 100;
  EXPECT_EQ(r.histogram[100], host_bin100);
}

TEST(Biff, PipelineComposesFilters) {
  Machine m(butterfly1(8));
  const Image img = Image::synthetic(48, 48, 7);
  BiffResult r = biff_pipeline(
      m, img, {filter_box3(), filter_sobel(), filter_threshold(64)}, 8);
  // Compose on the host for comparison.
  Image a = img, b = img;
  filter_box3()(img, a);
  filter_sobel()(a, b);
  filter_threshold(64)(b, a);
  EXPECT_EQ(r.image.pixels, a.pixels);
  EXPECT_GT(r.elapsed, 0u);
}

TEST(Biff, SobelFindsBlobEdges) {
  Machine m(butterfly1(8));
  const Image img = Image::synthetic(64, 64, 4);
  BiffResult r = biff_apply(m, img, filter_sobel(), 8);
  std::uint64_t strong = 0;
  for (std::uint8_t p : r.image.pixels) strong += p > 128;
  EXPECT_GT(strong, 50u) << "blob boundaries must produce strong edges";
}

}  // namespace
}  // namespace bfly::apps
