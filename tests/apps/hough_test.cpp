#include "apps/hough.hpp"

#include <gtest/gtest.h>

namespace bfly::apps {
namespace {

using sim::butterfly1;
using sim::Machine;

HoughConfig small_cfg(HoughVariant v) {
  HoughConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.angles = 45;
  cfg.processors = 8;
  cfg.lines = 2;
  cfg.noise = 40;
  cfg.variant = v;
  return cfg;
}

TEST(HoughImage, HasPlantedEdges) {
  HoughConfig cfg = small_cfg(HoughVariant::kNaive);
  const auto img = make_edge_image(cfg);
  std::size_t edges = 0;
  for (auto p : img) edges += p;
  EXPECT_GT(edges, 60u);   // two lines plus noise
  EXPECT_LT(edges, 400u);  // sparse image
}

TEST(Hough, NaiveFindsPlantedLines) {
  Machine m(butterfly1(16));
  HoughConfig cfg = small_cfg(HoughVariant::kNaive);
  HoughResult r = hough(m, cfg);
  EXPECT_TRUE(peaks_match_planted_lines(cfg, r));
  EXPECT_GT(r.elapsed, 0u);
}

TEST(Hough, AllVariantsProduceIdenticalAccumulators) {
  HoughResult base;
  for (HoughVariant v : {HoughVariant::kNaive, HoughVariant::kLocalCopy,
                         HoughVariant::kLocalTables}) {
    Machine m(butterfly1(16));
    HoughConfig cfg = small_cfg(v);
    HoughResult r = hough(m, cfg);
    EXPECT_TRUE(peaks_match_planted_lines(cfg, r));
    if (v == HoughVariant::kNaive) {
      base = r;
    } else {
      EXPECT_EQ(r.accumulator, base.accumulator)
          << "variants differ only in locality, not in results";
    }
  }
}

TEST(Hough, CopyLocalBeatsNaive) {
  Machine m1(butterfly1(16));
  HoughResult naive = hough(m1, small_cfg(HoughVariant::kNaive));
  Machine m2(butterfly1(16));
  HoughResult local = hough(m2, small_cfg(HoughVariant::kLocalCopy));
  EXPECT_LT(local.elapsed, naive.elapsed);
}

TEST(Hough, LocalTablesBeatCopyLocal) {
  Machine m1(butterfly1(16));
  HoughResult copy = hough(m1, small_cfg(HoughVariant::kLocalCopy));
  Machine m2(butterfly1(16));
  HoughResult tables = hough(m2, small_cfg(HoughVariant::kLocalTables));
  EXPECT_LT(tables.elapsed, copy.elapsed);
}

TEST(Hough, RemoteTrafficDropsWithLocality) {
  Machine m1(butterfly1(16));
  HoughResult naive = hough(m1, small_cfg(HoughVariant::kNaive));
  Machine m2(butterfly1(16));
  HoughResult tables = hough(m2, small_cfg(HoughVariant::kLocalTables));
  EXPECT_LT(tables.remote_refs, naive.remote_refs / 2);
}

}  // namespace
}  // namespace bfly::apps
