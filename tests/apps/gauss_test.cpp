#include "apps/gauss.hpp"

#include <gtest/gtest.h>

namespace bfly::apps {
namespace {

using sim::butterfly1;
using sim::Machine;

TEST(GaussReference, SolvesTheSystem) {
  const std::uint32_t n = 24;
  std::vector<double> a, b;
  generate_system(n, 7, a, b);
  const std::vector<double> x = gauss_reference(n, 7);
  // Verify A x = b directly.
  for (std::uint32_t i = 0; i < n; ++i) {
    double s = 0;
    for (std::uint32_t j = 0; j < n; ++j)
      s += a[static_cast<std::size_t>(i) * n + j] * x[j];
    EXPECT_NEAR(s, b[i], 1e-8);
  }
}

TEST(GaussUs, MatchesReference) {
  Machine m(butterfly1(16));
  GaussConfig cfg;
  cfg.n = 32;
  GaussResult r = gauss_us(m, cfg);
  ASSERT_EQ(r.solution.size(), cfg.n);
  EXPECT_LT(gauss_error(r, cfg.n, cfg.seed), 1e-9);
  EXPECT_GT(r.elapsed, 0u);
  EXPECT_FALSE(m.deadlocked());
}

TEST(GaussSmp, MatchesReference) {
  Machine m(butterfly1(16));
  GaussConfig cfg;
  cfg.n = 32;
  GaussResult r = gauss_smp(m, cfg);
  ASSERT_EQ(r.solution.size(), cfg.n);
  EXPECT_LT(gauss_error(r, cfg.n, cfg.seed), 1e-9);
  EXPECT_GT(r.messages, 0u);
  EXPECT_FALSE(m.deadlocked());
}

TEST(GaussSmp, SingleProcessorWorks) {
  Machine m(butterfly1(4));
  GaussConfig cfg;
  cfg.n = 16;
  cfg.processors = 1;
  GaussResult r = gauss_smp(m, cfg);
  EXPECT_LT(gauss_error(r, cfg.n, cfg.seed), 1e-9);
  EXPECT_EQ(r.messages, 0u);
}

TEST(GaussUs, SingleProcessorWorks) {
  Machine m(butterfly1(4));
  GaussConfig cfg;
  cfg.n = 16;
  cfg.processors = 1;
  GaussResult r = gauss_us(m, cfg);
  EXPECT_LT(gauss_error(r, cfg.n, cfg.seed), 1e-9);
}

TEST(GaussSmp, MessageVolumeIsPTimesN) {
  Machine m(butterfly1(8));
  GaussConfig cfg;
  cfg.n = 40;
  cfg.processors = 8;
  GaussResult r = gauss_smp(m, cfg);
  // Broadcast: (P-1) per pivot over N-1 pivots, plus (N - ceil(N/P)) gather
  // messages.  The paper rounds this to P*N.
  const std::uint64_t broadcast = static_cast<std::uint64_t>(cfg.n - 1) * 7;
  EXPECT_GE(r.messages, broadcast);
  EXPECT_LE(r.messages, broadcast + cfg.n);
}

TEST(GaussUs, MoreProcessorsIsFasterAtThisScale) {
  GaussConfig cfg;
  cfg.n = 48;
  cfg.processors = 2;
  Machine m2(butterfly1(32));
  const auto t2 = gauss_us(m2, cfg).elapsed;
  cfg.processors = 16;
  Machine m16(butterfly1(32));
  const auto t16 = gauss_us(m16, cfg).elapsed;
  EXPECT_LT(t16, t2);
}

struct GaussParam {
  std::uint32_t n;
  std::uint32_t procs;
};

class GaussBothModels : public ::testing::TestWithParam<GaussParam> {};

TEST_P(GaussBothModels, AgreeWithReference) {
  const GaussParam p = GaussParam(GetParam());
  {
    Machine m(butterfly1(16));
    GaussConfig cfg;
    cfg.n = p.n;
    cfg.processors = p.procs;
    EXPECT_LT(gauss_error(gauss_us(m, cfg), cfg.n, cfg.seed), 1e-8)
        << "US n=" << p.n << " P=" << p.procs;
  }
  {
    Machine m(butterfly1(16));
    GaussConfig cfg;
    cfg.n = p.n;
    cfg.processors = p.procs;
    EXPECT_LT(gauss_error(gauss_smp(m, cfg), cfg.n, cfg.seed), 1e-8)
        << "SMP n=" << p.n << " P=" << p.procs;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GaussBothModels,
    ::testing::Values(GaussParam{8, 2}, GaussParam{16, 3}, GaussParam{17, 4},
                      GaussParam{32, 8}, GaussParam{33, 16},
                      GaussParam{64, 16}));

}  // namespace
}  // namespace bfly::apps
