#include "us/uniform_system.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace bfly::us {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

TEST(UniformSystem, RunsTasksOnAllProcessors) {
  Machine m(butterfly1(16));
  chrys::Kernel k(m);
  UniformSystem us(k);
  std::vector<int> hits(16, 0);
  us.run_main([&] {
    us.for_all(0, 200, [&](TaskCtx& c) {
      c.m.charge(sim::kMillisecond);  // make tasks long enough to spread
      ++hits[c.node];
    });
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 200);
  int busy_nodes = 0;
  for (int h : hits) busy_nodes += h > 0;
  EXPECT_GT(busy_nodes, 12) << "work queue should spread tasks over nodes";
  EXPECT_FALSE(m.deadlocked());
}

TEST(UniformSystem, TasksSeeTheirIndexArgument) {
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  UniformSystem us(k);
  std::vector<std::uint32_t> seen;
  us.run_main([&] {
    us.for_all(10, 20, [&](TaskCtx& c) { seen.push_back(c.arg); });
  });
  std::sort(seen.begin(), seen.end());
  std::vector<std::uint32_t> expect(10);
  std::iota(expect.begin(), expect.end(), 10u);
  EXPECT_EQ(seen, expect);
}

TEST(UniformSystem, WaitIdleWaitsForEverything) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  UniformSystem us(k);
  int done = 0;
  bool all_done_at_wait = false;
  us.run_main([&] {
    us.gen_on_index(0, 50, [&](TaskCtx& c) {
      c.m.charge(2 * sim::kMillisecond);
      ++done;
    });
    us.wait_idle();
    all_done_at_wait = (done == 50);
  });
  EXPECT_TRUE(all_done_at_wait);
}

TEST(UniformSystem, RepeatedGenerationsAndWaits) {
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  UniformSystem us(k);
  int total = 0;
  us.run_main([&] {
    for (int round = 0; round < 5; ++round) {
      us.for_all(0, 20, [&](TaskCtx& c) {
        c.m.charge(100 * sim::kMicrosecond);
        ++total;
      });
    }
  });
  EXPECT_EQ(total, 100);
}

TEST(UniformSystem, TasksCanGenerateTasks) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  UniformSystem us(k);
  std::atomic<int> leaf_count{0};
  us.run_main([&] {
    us.gen_task([&](TaskCtx& c) {
      for (int i = 0; i < 10; ++i)
        c.us.gen_task([&](TaskCtx&) { ++leaf_count; });
    });
    us.wait_idle();
  });
  EXPECT_EQ(leaf_count.load(), 10);
}

TEST(UniformSystem, SharedMemoryIsGloballyVisible) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  UniformSystem us(k);
  std::uint32_t sum = 0;
  us.run_main([&] {
    sim::PhysAddr arr = us.alloc_global(8 * 4);
    for (int i = 0; i < 8; ++i) us.put<std::uint32_t>(arr.plus(4 * i), 0);
    us.for_all(0, 8, [&, arr](TaskCtx& c) {
      c.us.put<std::uint32_t>(arr.plus(4 * c.arg), c.arg * c.arg);
    });
    for (int i = 0; i < 8; ++i) sum += us.get<std::uint32_t>(arr.plus(4 * i));
  });
  EXPECT_EQ(sum, 0u + 1 + 4 + 9 + 16 + 25 + 36 + 49);
}

TEST(UniformSystem, ScatterRowsRoundRobinsAcrossMemories) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  UsConfig cfg;
  cfg.memory_nodes = 4;
  UniformSystem us(k, cfg);
  std::vector<sim::PhysAddr> rows;
  us.run_main([&] { rows = us.scatter_rows(12, 256); });
  ASSERT_EQ(rows.size(), 12u);
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(rows[i].node, i % 4);
}

TEST(UniformSystem, HeapCeilingIs16MB) {
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  UniformSystem us(k);
  int code = chrys::kThrowNone;
  us.run_main([&] {
    code = k.catch_block([&] {
      for (int i = 0; i < 20; ++i)
        (void)us.alloc_global(1024 * 1024);  // 20 MB > 16 MB ceiling
    });
  });
  EXPECT_EQ(code, chrys::kThrowOutOfMemory);
  EXPECT_LE(us.heap_in_use(), 16u * 1024 * 1024);
}

TEST(UniformSystem, AtomicAddAccumulatesAcrossTasks) {
  Machine m(butterfly1(16));
  chrys::Kernel k(m);
  UniformSystem us(k);
  std::uint32_t result = 0;
  us.run_main([&] {
    sim::PhysAddr acc = us.alloc_global(4);
    us.put<std::uint32_t>(acc, 0);
    us.for_all(0, 100, [acc](TaskCtx& c) { c.us.atomic_add(acc, c.arg); });
    result = us.get<std::uint32_t>(acc);
  });
  EXPECT_EQ(result, 4950u);
}

TEST(UniformSystem, CopyToLocalRoundTrips) {
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  UniformSystem us(k);
  bool ok = false;
  us.run_main([&] {
    sim::PhysAddr src = us.alloc_on(2, 1024);
    std::vector<std::uint8_t> data(1024);
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = static_cast<std::uint8_t>(i * 13);
    us.copy_from_local(src, data.data(), data.size());
    std::vector<std::uint8_t> back(1024, 0);
    us.copy_to_local(back.data(), src, back.size());
    ok = (back == data);
  });
  EXPECT_TRUE(ok);
}

TEST(UniformSystem, TreeInitIsFasterThanSerialInitAtScale) {
  auto init_time = [](bool tree) {
    Machine m(butterfly1(64));
    chrys::Kernel k(m);
    UsConfig cfg;
    cfg.tree_init = tree;
    UniformSystem us(k, cfg);
    Time t = 0;
    k.create_process(0, [&] {
      const Time t0 = m.now();
      us.initialize();
      // Managers exist once a trivial sweep completes.
      us.for_all(0, 64, [](TaskCtx&) {});
      t = m.now() - t0;
      us.terminate();
    });
    m.run();
    return t;
  };
  const Time serial = init_time(false);
  const Time tree = init_time(true);
  EXPECT_LT(tree, serial)
      << "fan-out creation must beat serial creation at 64 processors";
}

TEST(UniformSystem, ParallelSpeedupOnIndependentWork) {
  auto elapsed = [](std::uint32_t procs) {
    Machine m(butterfly1(64));
    chrys::Kernel k(m);
    UsConfig cfg;
    cfg.processors = procs;
    UniformSystem us(k, cfg);
    Time t = 0;
    us.run_main([&] {
      const Time t0 = m.now();
      us.for_all(0, 256, [](TaskCtx& c) { c.m.charge(5 * sim::kMillisecond); });
      t = m.now() - t0;
    });
    return t;
  };
  const Time t1 = elapsed(1);
  const Time t32 = elapsed(32);
  const double speedup = static_cast<double>(t1) / static_cast<double>(t32);
  EXPECT_GT(speedup, 16.0) << "expected substantial speedup on 32 procs";
  EXPECT_LE(speedup, 32.5);
}

}  // namespace
}  // namespace bfly::us
