// Failure-injection tests for the Uniform System.
#include <gtest/gtest.h>

#include "us/uniform_system.hpp"

namespace bfly::us {
namespace {

using sim::butterfly1;
using sim::Machine;

TEST(UsFaults, ThrowingTaskDoesNotKillItsManager) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  UniformSystem us(k);
  int completed = 0;
  us.run_main([&] {
    us.for_all(0, 40, [&](TaskCtx& c) {
      if (c.arg % 4 == 0) c.k.throw_err(chrys::kThrowUser + 9);
      ++completed;
    });
    // Managers survived: a second generation still runs everywhere.
    us.for_all(0, 40, [&](TaskCtx&) { ++completed; });
  });
  EXPECT_EQ(completed, 30 + 40);
  EXPECT_EQ(us.tasks_faulted(), 10u);
  EXPECT_EQ(us.tasks_run(), 80u);
  EXPECT_FALSE(m.deadlocked());
}

TEST(UsFaults, WaitIdleStillFiresWhenTasksFault) {
  // The completion counter must be decremented even for faulting tasks,
  // or wait_idle would hang forever.
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  UniformSystem us(k);
  bool finished = false;
  us.run_main([&] {
    us.gen_on_index(0, 10, [&](TaskCtx& c) {
      c.k.throw_err(chrys::kThrowUser);
    });
    us.wait_idle();
    finished = true;
  });
  EXPECT_TRUE(finished);
  EXPECT_EQ(us.tasks_faulted(), 10u);
}

TEST(UsFaults, AllocationFailureInsideTaskIsTrapped) {
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  UsConfig cfg;
  cfg.heap_limit = 64 * 1024;
  UniformSystem us(k, cfg);
  us.run_main([&] {
    us.for_all(0, 8, [](TaskCtx& c) {
      (void)c.us.alloc_global(32 * 1024);  // most of these blow the limit
    });
  });
  EXPECT_GE(us.tasks_faulted(), 6u);
  EXPECT_FALSE(m.deadlocked());
}

}  // namespace
}  // namespace bfly::us
