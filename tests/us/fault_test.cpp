// Failure-injection tests for the Uniform System.
#include <gtest/gtest.h>

#include "us/uniform_system.hpp"

namespace bfly::us {
namespace {

using sim::butterfly1;
using sim::Machine;

TEST(UsFaults, ThrowingTaskDoesNotKillItsManager) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  UniformSystem us(k);
  int completed = 0;
  us.run_main([&] {
    us.for_all(0, 40, [&](TaskCtx& c) {
      if (c.arg % 4 == 0) c.k.throw_err(chrys::kThrowUser + 9);
      ++completed;
    });
    // Managers survived: a second generation still runs everywhere.
    us.for_all(0, 40, [&](TaskCtx&) { ++completed; });
  });
  EXPECT_EQ(completed, 30 + 40);
  EXPECT_EQ(us.tasks_faulted(), 10u);
  EXPECT_EQ(us.tasks_run(), 80u);
  EXPECT_FALSE(m.deadlocked());
}

TEST(UsFaults, WaitIdleStillFiresWhenTasksFault) {
  // The completion counter must be decremented even for faulting tasks,
  // or wait_idle would hang forever.
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  UniformSystem us(k);
  bool finished = false;
  us.run_main([&] {
    us.gen_on_index(0, 10, [&](TaskCtx& c) {
      c.k.throw_err(chrys::kThrowUser);
    });
    us.wait_idle();
    finished = true;
  });
  EXPECT_TRUE(finished);
  EXPECT_EQ(us.tasks_faulted(), 10u);
}

TEST(UsFaults, AllocationFailureInsideTaskIsTrapped) {
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  UsConfig cfg;
  cfg.heap_limit = 64 * 1024;
  UniformSystem us(k, cfg);
  us.run_main([&] {
    us.for_all(0, 8, [](TaskCtx& c) {
      (void)c.us.alloc_global(32 * 1024);  // most of these blow the limit
    });
  });
  EXPECT_GE(us.tasks_faulted(), 6u);
  EXPECT_FALSE(m.deadlocked());
}

TEST(UsFaults, NodeKilledMidForAllIsRecovered) {
  // The tentpole scenario: a processor dies while a for_all is in flight.
  // The surviving managers absorb its work — including the task that was
  // running on it when it died — and the wave completes correctly.
  sim::FaultPlan plan;
  plan.kill(5, 100 * sim::kMillisecond);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  UsConfig cfg;
  cfg.processors = 8;
  cfg.memory_nodes = 4;
  UniformSystem us(k, cfg);
  std::vector<std::uint32_t> done(200, 0);
  us.run_main([&] {
    us.for_all(0, 200, [&](TaskCtx& c) {
      c.m.compute(20000);  // ~10 ms: every manager is mid-task at 100 ms
      ++done[c.arg];
    });
  });
  EXPECT_FALSE(m.deadlocked());
  for (std::uint32_t i = 0; i < 200; ++i)
    EXPECT_EQ(done[i], 1u) << "task " << i;
  EXPECT_EQ(us.nodes_lost(), 1u);
  EXPECT_GE(us.tasks_reissued(), 1u);
  EXPECT_GE(us.tasks_run(), 200u);
  EXPECT_GE(k.killed_processes(), 1u);
}

TEST(UsFaults, SecondWaveRunsOnSurvivorsAfterAKill) {
  sim::FaultPlan plan;
  plan.kill(2, 80 * sim::kMillisecond);
  Machine m(butterfly1(4), plan);
  chrys::Kernel k(m);
  UniformSystem us(k);
  std::uint32_t first = 0, second = 0;
  us.run_main([&] {
    us.for_all(0, 60, [&](TaskCtx& c) {
      c.m.compute(20000);
      ++first;
    });
    us.for_all(0, 40, [&](TaskCtx& c) {
      c.m.compute(2000);
      ++second;
    });
  });
  EXPECT_FALSE(m.deadlocked());
  EXPECT_EQ(first, 60u);
  EXPECT_EQ(second, 40u);
  EXPECT_EQ(us.nodes_lost(), 1u);
}

TEST(UsFaults, EveryWorkerKilledStillReleasesTheWaiter) {
  // The whole pool dies mid-wave.  wait_idle must be released with the
  // work undone rather than blocking forever: there is nobody left who
  // could ever finish it.
  sim::FaultPlan plan;
  plan.kill(0, 60 * sim::kMillisecond);
  plan.kill(1, 65 * sim::kMillisecond);
  plan.kill(2, 70 * sim::kMillisecond);
  Machine m(butterfly1(4), plan);
  chrys::Kernel k(m);
  UsConfig cfg;
  cfg.processors = 3;  // pool = nodes 0..2; main lives on node 3
  UniformSystem us(k, cfg);
  bool returned = false;
  k.create_process(3, [&] {
    us.initialize();
    us.gen_on_index(0, 400, [&](TaskCtx& c) { c.m.compute(40000); });
    us.wait_idle();
    returned = true;
  });
  m.run();
  EXPECT_FALSE(m.deadlocked());
  EXPECT_TRUE(returned);
  EXPECT_EQ(us.nodes_lost(), 3u);
  EXPECT_EQ(us.managers_alive(), 0u);
}

TEST(UsFaults, TransientMemoryFaultsAreAbsorbed) {
  // Aggressive transient fault rate: tasks fault and are counted, the
  // infrastructure (completion counter, allocator lock) retries and the
  // run still terminates.
  sim::FaultPlan plan;
  plan.mem_fault_prob = 0.01;
  plan.seed = 99;
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  UniformSystem us(k);
  std::uint32_t completed = 0;
  us.run_main([&] {
    const sim::PhysAddr a = us.alloc_global(256);
    us.for_all(0, 100, [&](TaskCtx& c) {
      for (int i = 0; i < 20; ++i) (void)c.us.get<std::uint32_t>(a);
      ++completed;
    });
  });
  EXPECT_FALSE(m.deadlocked());
  EXPECT_GT(m.stats().mem_faults_injected, 0u);
  // Tasks that faulted did not finish their loop, but every descriptor was
  // consumed exactly once and the wave terminated.
  EXPECT_EQ(completed + us.tasks_faulted(), 100u);
}

TEST(UsFaults, NodeKilledDuringInitializationIsSkipped) {
  // The kill lands while run_main is still creating managers (serial
  // creation takes ~4 ms per node, the kill fires at 2 ms): the dead node
  // must be left out of the pool, not crash the initializer or strand the
  // survivors.
  sim::FaultPlan plan;
  plan.kill(3, 2 * sim::kMillisecond);
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  UniformSystem us(k);
  std::uint32_t completed = 0;
  us.run_main([&] {
    us.for_all(0, 50, [&](TaskCtx& c) {
      c.m.compute(1000);
      ++completed;
    });
    EXPECT_EQ(us.managers_alive(), 7u);  // before terminate() stops them
  });
  EXPECT_FALSE(m.deadlocked());
  EXPECT_EQ(completed, 50u);
  EXPECT_EQ(us.nodes_lost(), 1u);
}

TEST(UsFaults, TreeInitAdoptsTheSubtreeOfADeadNode) {
  // Fan-out creation: node 1 (whose subtree is 3, 4) dies before its
  // manager starts, so its parent must create the grandchildren directly
  // or half the pool never comes up.
  sim::FaultPlan plan;
  plan.kill(1, 1);  // one nanosecond in: manager creation takes milliseconds
  Machine m(butterfly1(8), plan);
  chrys::Kernel k(m);
  UsConfig cfg;
  cfg.tree_init = true;
  UniformSystem us(k, cfg);
  std::vector<std::uint32_t> ran_on(8, 0);
  us.run_main([&] {
    us.for_all(0, 200, [&](TaskCtx& c) {
      c.m.compute(2000);
      ++ran_on[c.node];
    });
  });
  EXPECT_FALSE(m.deadlocked());
  EXPECT_EQ(us.nodes_lost(), 1u);
  EXPECT_EQ(ran_on[1], 0u);
  // The dead node's children still joined the pool.
  EXPECT_GT(ran_on[3], 0u);
  EXPECT_GT(ran_on[4], 0u);
}

}  // namespace
}  // namespace bfly::us
