#include "pds/concurrent.hpp"

#include <gtest/gtest.h>

#include <map>

namespace bfly::pds {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

TEST(ExtendibleHash, InsertFindSingleProcess) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  ExtendibleHash h(m, 4);
  k.create_process(0, [&] {
    for (std::uint64_t i = 0; i < 100; ++i) h.insert(i, i * i);
    std::uint64_t v = 0;
    for (std::uint64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(h.find(i, &v)) << i;
      EXPECT_EQ(v, i * i);
    }
    EXPECT_FALSE(h.find(1000, &v));
  });
  m.run();
  EXPECT_GT(h.global_depth(), 3u) << "splits must have deepened the table";
  EXPECT_GT(h.splits(), 10u);
}

TEST(ExtendibleHash, OverwriteUpdatesValue) {
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  ExtendibleHash h(m);
  k.create_process(0, [&] {
    h.insert(7, 1);
    h.insert(7, 2);
    std::uint64_t v = 0;
    ASSERT_TRUE(h.find(7, &v));
    EXPECT_EQ(v, 2u);
  });
  m.run();
  EXPECT_EQ(h.entries(), 1u);
}

TEST(ExtendibleHash, ConcurrentInsertersDoNotLoseEntries) {
  Machine m(butterfly1(16));
  chrys::Kernel k(m);
  ExtendibleHash h(m, 4);
  constexpr std::uint32_t kWriters = 12, kEach = 40;
  for (std::uint32_t w = 0; w < kWriters; ++w) {
    k.create_process(w, [&h, w] {
      for (std::uint32_t i = 0; i < kEach; ++i)
        h.insert(static_cast<std::uint64_t>(w) * 1000 + i, w + i);
    });
  }
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_EQ(h.entries(), kWriters * kEach);
  // Verify every entry afterwards.
  chrys::Kernel k2(m);
  k2.create_process(0, [&] {
    std::uint64_t v = 0;
    for (std::uint32_t w = 0; w < kWriters; ++w)
      for (std::uint32_t i = 0; i < kEach; ++i) {
        ASSERT_TRUE(h.find(static_cast<std::uint64_t>(w) * 1000 + i, &v));
        EXPECT_EQ(v, w + i);
      }
  });
  m.run();
}

TEST(FetchAndPhi, FifoSingleProcess) {
  Machine m(butterfly1(8));
  chrys::Kernel k(m);
  FetchAndPhiQueue q(m, 16);
  k.create_process(0, [&] {
    for (std::uint32_t i = 0; i < 10; ++i) q.enqueue(i);
    for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(q.dequeue(), i);
    std::uint32_t v;
    EXPECT_FALSE(q.try_dequeue(&v));
  });
  m.run();
}

TEST(FetchAndPhi, WrapsAroundTheRing) {
  Machine m(butterfly1(4));
  chrys::Kernel k(m);
  FetchAndPhiQueue q(m, 4);  // tiny ring: several laps
  k.create_process(0, [&] {
    for (std::uint32_t lap = 0; lap < 5; ++lap)
      for (std::uint32_t i = 0; i < 4; ++i) {
        q.enqueue(lap * 4 + i);
        EXPECT_EQ(q.dequeue(), lap * 4 + i);
      }
  });
  m.run();
}

TEST(FetchAndPhi, ManyProducersManyConsumers) {
  Machine m(butterfly1(16));
  chrys::Kernel k(m);
  FetchAndPhiQueue q(m, 64);
  constexpr std::uint32_t kProd = 6, kCons = 6, kEach = 30;
  std::map<std::uint32_t, int> seen;
  for (std::uint32_t p = 0; p < kProd; ++p) {
    k.create_process(p, [&q, p] {
      for (std::uint32_t i = 0; i < kEach; ++i) q.enqueue(p * 100 + i);
    });
  }
  for (std::uint32_t c = 0; c < kCons; ++c) {
    k.create_process(kProd + c, [&] {
      for (std::uint32_t i = 0; i < kEach; ++i) ++seen[q.dequeue()];
    });
  }
  m.run();
  ASSERT_FALSE(m.deadlocked());
  EXPECT_EQ(seen.size(), kProd * kEach);
  for (const auto& [v, count] : seen) {
    (void)v;
    EXPECT_EQ(count, 1) << "every element delivered exactly once";
  }
}

TEST(FetchAndPhi, OutScalesTheGlobalLockUnderContention) {
  // The point of fetch-and-phi: the single-lock queue serializes on one
  // cell; the ticket queue's only serialization is a single atomic each.
  auto run = [](bool ticket_queue) {
    Machine m(butterfly1(32));
    chrys::Kernel k(m);
    FetchAndPhiQueue fq(m, 1024);  // >= total items: no consumer drains it
    LockedQueue lq(m);
    constexpr std::uint32_t kProcs = 24, kOps = 25;
    for (std::uint32_t p = 0; p < kProcs; ++p) {
      k.create_process(p, [&, p] {
        for (std::uint32_t i = 0; i < kOps; ++i) {
          if (ticket_queue) fq.enqueue(p * 100 + i);
          else lq.enqueue(p * 100 + i);
        }
      });
    }
    return m.run();
  };
  const Time locked = run(false);
  const Time ticketed = run(true);
  EXPECT_LT(ticketed * 2, locked)
      << "fetch-and-phi should leave the global lock well behind";
}

}  // namespace
}  // namespace bfly::pds
