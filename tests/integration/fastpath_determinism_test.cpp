// App-level proof that the charge() fast path is unobservable: every app
// run with the fast path on must be bit-for-bit identical — Instant Replay
// logs, full per-node Stats, final simulated time, and computed results —
// to the same run with BFLY_NO_FASTPATH semantics (cfg.host_fastpath =
// false, which forces every charge through the post/yield/resume slow
// path).  This is the strongest cross-check the repo has: the replay log
// records the exact interleaving of every monitored access, so a single
// reordered event anywhere in the run shows up as a log mismatch.
//
// The suite also runs under the ASan+UBSan preset (same binary, sanitized
// build), which shakes out lifetime bugs in the typed-event path.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "apps/gauss.hpp"
#include "apps/sort.hpp"
#include "replay/instant_replay.hpp"
#include "sim/json.hpp"
#include "sim/machine.hpp"
#include "sim/rng.hpp"

namespace bfly {
namespace {

using replay::AccessEntry;
using replay::Log;
using sim::butterfly1;
using sim::Machine;
using sim::MachineConfig;
using sim::MachineStats;
using sim::Time;

MachineConfig cfg_fast(std::uint32_t nodes, bool fast) {
  MachineConfig c = butterfly1(nodes);
  c.host_fastpath = fast;
  return c;
}

/// Every stats field of every node, serialized: two runs agree iff their
/// fingerprints match, and a mismatch names itself in the failure output.
std::string stats_fingerprint(const MachineStats& s) {
  sim::json::Writer w;
  w.begin_array();
  for (const auto& n : s.node) {
    w.begin_object()
        .kv("local", n.local_refs)
        .kv("remote", n.remote_refs)
        .kv("serviced", n.serviced_remote)
        .kv("stall", n.stall_ns)
        .kv("queue", n.queue_ns)
        .kv("compute", n.compute_ns)
        .kv("block_words", n.block_words)
        .end_object();
  }
  w.end_array();
  return w.take();
}

void expect_logs_identical(const Log& a, const Log& b) {
  ASSERT_EQ(a.per_actor.size(), b.per_actor.size());
  for (std::size_t i = 0; i < a.per_actor.size(); ++i) {
    ASSERT_EQ(a.per_actor[i].size(), b.per_actor[i].size()) << "actor " << i;
    for (std::size_t j = 0; j < a.per_actor[i].size(); ++j) {
      const AccessEntry& x = a.per_actor[i][j];
      const AccessEntry& y = b.per_actor[i][j];
      EXPECT_EQ(x.object, y.object) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.version, y.version) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.readers, y.readers) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.is_write, y.is_write) << "actor " << i << " entry " << j;
      EXPECT_EQ(x.at, y.at) << "actor " << i << " entry " << j;
    }
  }
}

TEST(FastpathDeterminism, GaussUniformSystem) {
  apps::GaussConfig cfg;
  cfg.n = 32;
  cfg.processors = 8;

  Machine on(cfg_fast(8, true));
  const apps::GaussResult r_on = apps::gauss_us(on, cfg);
  Machine off(cfg_fast(8, false));
  const apps::GaussResult r_off = apps::gauss_us(off, cfg);

  EXPECT_GT(on.host_perf().fastpath_charges, 0u);
  EXPECT_EQ(off.host_perf().fastpath_charges, 0u);
  EXPECT_EQ(r_on.elapsed, r_off.elapsed);
  EXPECT_EQ(r_on.solution, r_off.solution);
  EXPECT_EQ(on.now(), off.now());
  EXPECT_EQ(stats_fingerprint(on.stats()), stats_fingerprint(off.stats()));
}

TEST(FastpathDeterminism, GaussMessagePassingSmp) {
  apps::GaussConfig cfg;
  cfg.n = 24;
  cfg.processors = 4;

  Machine on(cfg_fast(8, true));
  const apps::GaussResult r_on = apps::gauss_smp(on, cfg);
  Machine off(cfg_fast(8, false));
  const apps::GaussResult r_off = apps::gauss_smp(off, cfg);

  EXPECT_EQ(r_on.elapsed, r_off.elapsed);
  EXPECT_EQ(r_on.messages, r_off.messages);
  EXPECT_EQ(r_on.solution, r_off.solution);
  EXPECT_EQ(on.now(), off.now());
  EXPECT_EQ(stats_fingerprint(on.stats()), stats_fingerprint(off.stats()));
}

TEST(FastpathDeterminism, BitonicSortUniformSystem) {
  apps::SortConfig cfg;
  cfg.n = 256;
  cfg.processors = 8;

  Machine on(cfg_fast(8, true));
  const apps::SortResult r_on = apps::bitonic_sort(on, cfg);
  Machine off(cfg_fast(8, false));
  const apps::SortResult r_off = apps::bitonic_sort(off, cfg);

  EXPECT_EQ(r_on.elapsed, r_off.elapsed);
  EXPECT_EQ(r_on.keys, r_off.keys);
  EXPECT_EQ(on.now(), off.now());
  EXPECT_EQ(stats_fingerprint(on.stats()), stats_fingerprint(off.stats()));
}

TEST(FastpathDeterminism, OddEvenSortSmp) {
  apps::SortConfig cfg;
  cfg.n = 128;
  cfg.processors = 8;

  Machine on(cfg_fast(8, true));
  const apps::SortResult r_on = apps::odd_even_sort(on, cfg);
  Machine off(cfg_fast(8, false));
  const apps::SortResult r_off = apps::odd_even_sort(off, cfg);

  EXPECT_EQ(r_on.elapsed, r_off.elapsed);
  EXPECT_EQ(r_on.keys, r_off.keys);
  EXPECT_EQ(on.now(), off.now());
  EXPECT_EQ(stats_fingerprint(on.stats()), stats_fingerprint(off.stats()));
}

TEST(FastpathDeterminism, InstantReplayLogsIdentical) {
  // The racy Instant Replay workload from the uncharged harnesses: jittered
  // writers race for one monitored object, and the recorded log *is* the
  // interleaving.  Fast path on vs off must record the same history.
  auto run_racy = [](bool fast) {
    Machine m(cfg_fast(8, fast));
    chrys::Kernel k(m);
    replay::Monitor mon(k, 4);
    const std::uint32_t obj = mon.register_object(0, "counter");
    mon.set_mode(replay::Mode::kRecord);

    sim::Rng jitter(4242);
    std::vector<Time> delays;
    for (std::uint32_t i = 0; i < 4 * 6; ++i)
      delays.push_back((1 + jitter.below(40)) * 100 * sim::kMicrosecond);

    auto order = std::make_shared<std::vector<std::uint32_t>>();
    for (std::uint32_t a = 0; a < 4; ++a) {
      k.create_process(a % m.nodes(), [&m, &k, &mon, &delays, order, a, obj] {
        for (std::uint32_t r = 0; r < 6; ++r) {
          k.delay(delays[a * 6 + r]);
          mon.begin_write(a, obj);
          order->push_back(a);
          m.charge(500 * sim::kMicrosecond);
          mon.end_write(a, obj);
        }
      });
    }
    const Time elapsed = m.run();
    return std::tuple{*order, mon.take_log(), elapsed,
                      stats_fingerprint(m.stats())};
  };

  const auto [order_on, log_on, t_on, fp_on] = run_racy(true);
  const auto [order_off, log_off, t_off, fp_off] = run_racy(false);
  EXPECT_EQ(order_on, order_off);
  EXPECT_EQ(t_on, t_off);
  EXPECT_EQ(fp_on, fp_off);
  expect_logs_identical(log_on, log_off);
}

}  // namespace
}  // namespace bfly
