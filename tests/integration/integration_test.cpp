// Cross-module integration and machine-wide property tests.
#include <gtest/gtest.h>

#include "apps/gauss.hpp"
#include "bridge/bridge.hpp"
#include "chrysalis/kernel.hpp"
#include "crowd/crowd.hpp"
#include "replay/instant_replay.hpp"
#include "sim/machine.hpp"
#include "us/uniform_system.hpp"

namespace bfly {
namespace {

using sim::butterfly1;
using sim::Machine;
using sim::Time;

// --- Determinism: the property Instant Replay's correctness rests on ------

TEST(Determinism, IdenticalRunsProduceIdenticalTimelines) {
  auto run_once = [] {
    Machine m(butterfly1(32));
    chrys::Kernel k(m);
    us::UniformSystem us(k);
    std::vector<std::uint32_t> order;
    us.run_main([&] {
      sim::PhysAddr acc = us.alloc_global(4);
      us.put<std::uint32_t>(acc, 0);
      us.for_all(0, 100, [&](us::TaskCtx& c) {
        c.m.charge((1 + c.arg % 7) * sim::kMillisecond);
        c.us.atomic_add(acc, c.arg);
        order.push_back(c.arg);
      });
    });
    return std::pair{m.now(), order};
  };
  const auto [t1, o1] = run_once();
  const auto [t2, o2] = run_once();
  EXPECT_EQ(t1, t2) << "simulated end time must be bit-identical";
  EXPECT_EQ(o1, o2) << "task interleaving must be bit-identical";
}

TEST(Determinism, GaussSolutionIdenticalAcrossRuns) {
  apps::GaussConfig cfg;
  cfg.n = 24;
  cfg.processors = 8;
  Machine m1(butterfly1(16)), m2(butterfly1(16));
  const auto r1 = apps::gauss_us(m1, cfg);
  const auto r2 = apps::gauss_us(m2, cfg);
  EXPECT_EQ(r1.elapsed, r2.elapsed);
  EXPECT_EQ(r1.solution, r2.solution);
  EXPECT_EQ(r1.remote_refs, r2.remote_refs);
}

// --- Machine-size property sweep ----------------------------------------------

class MachineSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MachineSizes, LatencyInvariantsHoldAtEverySize) {
  const std::uint32_t nodes = GetParam();
  Machine m(butterfly1(nodes));
  sim::PhysAddr local = m.alloc(0, 16);
  sim::PhysAddr remote = m.alloc(nodes - 1, 16);
  Time tl = 0, tr = 0;
  m.spawn(0, [&] {
    Time t0 = m.now();
    (void)m.read<std::uint32_t>(local);
    tl = m.now() - t0;
    t0 = m.now();
    (void)m.read<std::uint32_t>(remote);
    tr = m.now() - t0;
  });
  m.run();
  EXPECT_EQ(tl, 800u) << "local latency is size-independent";
  EXPECT_GE(tr, 2u * tl) << "remote always costs several times local";
  EXPECT_LE(tr, 6u * tl) << "and never more than ~5x plus a stage";
}

TEST_P(MachineSizes, UniformSystemSweepCompletesEverywhere) {
  const std::uint32_t nodes = GetParam();
  Machine m(butterfly1(nodes));
  chrys::Kernel k(m);
  us::UniformSystem us(k);
  std::uint32_t sum = 0;
  us.run_main([&] {
    sim::PhysAddr acc = us.alloc_global(4);
    us.put<std::uint32_t>(acc, 0);
    us.for_all(0, 2 * nodes, [acc](us::TaskCtx& c) {
      c.us.atomic_add(acc, 1);
    });
    sum = us.get<std::uint32_t>(acc);
  });
  EXPECT_EQ(sum, 2 * nodes);
  EXPECT_FALSE(m.deadlocked());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MachineSizes,
                         ::testing::Values(2u, 4u, 7u, 16u, 33u, 64u, 128u,
                                           256u));

// --- Full-stack scenario ---------------------------------------------------------

TEST(FullStack, CrowdBuildsWorkersThatUseBridgeAndReplay) {
  // Crowd Control spawns workers; each writes blocks into Bridge under
  // Instant Replay monitoring; the recorded log is structurally sane and
  // the file contents are right.
  Machine m(butterfly1(16));
  chrys::Kernel k(m);
  replay::Monitor mon(k, 8);
  mon.set_mode(replay::Mode::kRecord);
  const std::uint32_t obj = mon.register_object(0, "fs-meta");
  k.create_process(15, [&] {
    bridge::BridgeFs fs(k, 4);  // servers on nodes 0-3
    const bridge::FileId f = fs.create("log");
    // Workers must not share nodes with the Bridge servers: a worker
    // spinning in the CREW lock would monopolize its node's CPU and starve
    // a co-located server — the paper's warning that with spin locks
    // "implementation-dependent deadlock becomes a serious possibility".
    crowd::CrowdOptions opt;
    opt.base_node = 4;
    crowd::spread(
        k, 8,
        [&](std::uint32_t w) {
          std::vector<std::uint8_t> blk(bridge::kBlockSize,
                                        static_cast<std::uint8_t>(w));
          mon.begin_write(w, obj);
          fs.write_block(f, w, blk.data());
          mon.end_write(w, obj);
        },
        opt);
    // Every worker's block arrived intact.
    std::vector<std::uint8_t> buf(bridge::kBlockSize);
    for (std::uint32_t w = 0; w < 8; ++w) {
      fs.read_block(f, w, buf.data());
      EXPECT_EQ(buf[0], static_cast<std::uint8_t>(w));
      EXPECT_EQ(buf[bridge::kBlockSize - 1], static_cast<std::uint8_t>(w));
    }
    fs.shutdown();
  });
  m.run();
  ASSERT_FALSE(m.deadlocked());
  replay::Log log = mon.take_log();
  EXPECT_EQ(log.total_entries(), 8u);
  // Versions 0..7 were handed out exactly once each.
  std::vector<bool> seen(8, false);
  for (const auto& per : log.per_actor)
    for (const auto& e : per) seen[e.version] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(FullStack, SixteenMegabyteLimitBitesRealPrograms) {
  // A Uniform System program that tries to build a 20 MB working set dies
  // at the paper's 16 MB ceiling; the same program on a Mach-era config
  // (heap_limit lifted) succeeds.
  auto run = [](std::size_t limit) {
    Machine m(butterfly1(64));
    chrys::Kernel k(m);
    us::UsConfig cfg;
    if (limit != 0) cfg.heap_limit = limit;
    us::UniformSystem us(k, cfg);
    int code = chrys::kThrowNone;
    us.run_main([&] {
      code = k.catch_block([&] {
        for (int i = 0; i < 40; ++i) (void)us.alloc_global(512 * 1024);
      });
    });
    return code;
  };
  EXPECT_EQ(run(0), chrys::kThrowOutOfMemory);             // Butterfly-I
  EXPECT_EQ(run(64u * 1024 * 1024), chrys::kThrowNone);    // paged successor
}

}  // namespace
}  // namespace bfly
