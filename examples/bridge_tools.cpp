// Working with the Bridge parallel file system (Section 3.4): create an
// interleaved file over many disks, then copy / search / sort it with the
// tool interface, which ships the operation to the data.

#include <cstdio>

#include "bridge/bridge.hpp"
#include "sim/machine.hpp"

int main() {
  using namespace bfly;
  sim::MachineConfig mc = sim::butterfly1(64);
  mc.memory_per_node = 4u << 20;
  sim::Machine m(mc);
  chrys::Kernel k(m);

  k.create_process(63, [&] {
    bridge::BridgeFs fs(k, /*servers=*/16);
    std::printf("Bridge: %u servers, one disk each, %zu-byte blocks\n",
                fs.servers(), bridge::kBlockSize);

    // A 64-block interleaved file of random records.
    const bridge::FileId data = fs.create("records");
    sim::Rng rng(12);
    std::vector<std::uint8_t> blk(bridge::kBlockSize);
    for (std::uint32_t b = 0; b < 64; ++b) {
      for (auto& byte : blk) byte = static_cast<std::uint8_t>(rng.next());
      fs.write_block(data, b, blk.data());
    }
    std::printf("wrote %u blocks (block k lives on server k mod %u)\n",
                fs.blocks(data), fs.servers());

    sim::Time t0 = m.now();
    const bridge::FileId copy = fs.create("records.bak");
    fs.tool_copy(data, copy);
    std::printf("tool copy:    %8.2fs  (every server copies its own blocks)\n",
                (m.now() - t0) / 1e9);

    t0 = m.now();
    const std::uint64_t hits = fs.tool_search(data, 0x7f);
    std::printf("tool search:  %8.2fs  (%llu bytes equal to 0x7f)\n",
                (m.now() - t0) / 1e9, static_cast<unsigned long long>(hits));

    t0 = m.now();
    const std::uint32_t diff = fs.tool_compare(data, copy);
    std::printf("tool compare: %8.2fs  (%u differing blocks)\n",
                (m.now() - t0) / 1e9, diff);

    t0 = m.now();
    const bridge::FileId sorted = fs.create("records.sorted");
    fs.tool_sort(data, sorted);
    std::printf("tool sort:    %8.2fs  (parallel runs + serial merge)\n",
                (m.now() - t0) / 1e9);

    // Verify the sort via the ordinary block interface.
    std::uint32_t prev = 0;
    bool ok = true;
    for (std::uint32_t b = 0; b < fs.blocks(sorted); ++b) {
      fs.read_block(sorted, b, blk.data());
      const auto* recs = reinterpret_cast<const std::uint32_t*>(blk.data());
      for (std::size_t i = 0; i < bridge::kBlockSize / 4; ++i) {
        ok = ok && recs[i] >= prev;
        prev = recs[i];
      }
    }
    std::printf("sorted order verified: %s\n", ok ? "YES" : "NO");
    fs.shutdown();
  });
  m.run();
  return 0;
}
