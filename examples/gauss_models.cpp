// Two programming models, one problem (Sections 3.1 and 4.1): Gaussian
// elimination implemented under shared memory (Uniform System) and message
// passing (SMP), on the same simulated hardware.
//
// "The results of this comparison suggested that neither shared memory nor
// message passing was inherently superior, and that either might be
// preferred for individual applications."
//
// Run with an argument to choose the matrix size: ./gauss_models 192

#include <cstdio>
#include <cstdlib>

#include "apps/gauss.hpp"
#include "sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace bfly;
  apps::GaussConfig cfg;
  cfg.n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 128;

  std::printf("solving a %ux%u system under both models (64 processors)\n\n",
              cfg.n, cfg.n);
  cfg.processors = 64;

  sim::MachineConfig mc = sim::butterfly1(128);
  mc.memory_per_node = 4u << 20;

  sim::Machine mu(mc);
  const apps::GaussResult us = apps::gauss_us(mu, cfg);
  std::printf("shared memory (US):   %8.2fs   %llu remote refs, "
              "%llu block words\n",
              us.elapsed / 1e9,
              static_cast<unsigned long long>(us.remote_refs),
              static_cast<unsigned long long>(us.block_words));

  sim::Machine ms(mc);
  const apps::GaussResult smp = apps::gauss_smp(ms, cfg);
  std::printf("message passing (SMP): %7.2fs   %llu messages\n",
              smp.elapsed / 1e9,
              static_cast<unsigned long long>(smp.messages));

  const double eu = apps::gauss_error(us, cfg.n, cfg.seed);
  const double es = apps::gauss_error(smp, cfg.n, cfg.seed);
  std::printf("\nmax error vs reference: US %.2e, SMP %.2e\n", eu, es);
  std::printf("(run bench_fig5_gauss for the full Figure 5 sweep: the SMP\n"
              "curve rises past 64 processors because its communication\n"
              "volume is P*N messages.)\n");
  return 0;
}
