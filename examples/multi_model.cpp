// Multiple programming models on one machine (Sections 3.4 and 4.2) — the
// observation that became Psyche: "Some large applications may even require
// different programming models for different components; therefore it is
// also important that mechanisms be in place for communication across
// programming models."
//
// One simulated Butterfly runs, simultaneously:
//   * a Uniform System crowd producing work items into shared memory,
//   * an SMP family post-processing them via messages,
//   * an Ant Farm thread swarm doing fine-grain bookkeeping,
// all meeting in a Psyche realm in the uniform address space.

#include <cstdio>

#include "antfarm/antfarm.hpp"
#include "psyche/psyche.hpp"
#include "sim/machine.hpp"
#include "smp/family.hpp"
#include "us/uniform_system.hpp"

int main() {
  using namespace bfly;
  sim::Machine m(sim::butterfly1(32));
  chrys::Kernel k(m);
  psyche::Psyche os(k);
  us::UsConfig ucfg;
  ucfg.processors = 8;
  us::UniformSystem us(k, ucfg);

  std::uint64_t smp_checksum = 0;
  std::uint64_t ant_count = 0;

  us.run_main([&] {
    // The meeting point: a realm with a deposit protocol.
    const psyche::RealmId pool = os.create_realm(0, 8192, "work-pool");
    const std::uint64_t base = os.realm_base(pool);
    os.uwrite<std::uint32_t>(base, 0);  // item count
    os.define_operation(pool, "deposit", [&os, base](std::uint64_t v) {
      const auto n = os.uread<std::uint32_t>(base);
      os.uwrite<std::uint64_t>(base + 8 + 8 * n, v);
      os.uwrite<std::uint32_t>(base, n + 1);
      return static_cast<std::uint64_t>(n);
    });

    // Model 1: a Uniform System crowd computes 64 items.
    us.for_all(0, 64, [&](us::TaskCtx& c) {
      const std::uint64_t item = 1000 + c.arg * c.arg;
      c.m.compute(500);
      (void)os.invoke(pool, "deposit", item, psyche::Access::kOptimized);
    });
    std::printf("US crowd deposited %u items into the realm\n",
                os.uread<std::uint32_t>(base));

    // Model 2: an SMP family of 4 splits the pool and reduces by message
    // passing up a star.
    smp::Family fam(k, smp::Topology::star(4), [&](smp::Member& me) {
      if (me.index() == 0) {
        std::uint64_t total = 0;
        for (int i = 0; i < 3; ++i) total += me.receive().as<std::uint64_t>();
        smp_checksum = total;
      } else {
        const std::uint32_t n = os.uread<std::uint32_t>(base);
        std::uint64_t sum = 0;
        for (std::uint32_t i = me.index() - 1; i < n; i += 3)
          sum += os.uread<std::uint64_t>(base + 8 + 8 * i);
        me.send_value<std::uint64_t>(0, 0, sum);
      }
    });
    fam.join();
    std::printf("SMP family reduced the pool by messages: checksum %llu\n",
                static_cast<unsigned long long>(smp_checksum));

    // Model 3: an Ant Farm swarm — one lightweight thread per item — each
    // verifies one entry and reports to a tally thread.
    antfarm::Colony col(k, 8);
    antfarm::ThreadId tally = col.start(0, [&] {
      const std::uint32_t n = os.uread<std::uint32_t>(base);
      for (std::uint32_t i = 0; i < n; ++i) ant_count += col.receive();
    });
    const std::uint32_t n = os.uread<std::uint32_t>(base);
    for (std::uint32_t i = 0; i < n; ++i) {
      col.start(i % 8, [&os, &col, base, tally, i] {
        const std::uint64_t v = os.uread<std::uint64_t>(base + 8 + 8 * i);
        col.send(tally, v >= 1000 ? 1 : 0);
      });
    }
    col.join();
    std::printf("Ant Farm swarm (%llu threads) verified %llu items\n",
                static_cast<unsigned long long>(col.threads_started()),
                static_cast<unsigned long long>(ant_count));
  });

  // Host-side check: the three models agree.
  std::uint64_t expect = 0;
  for (std::uint32_t i = 0; i < 64; ++i) expect += 1000 + i * i;
  std::printf("\nexpected checksum %llu -> %s; three models, one machine, "
              "one address space.\n",
              static_cast<unsigned long long>(expect),
              smp_checksum == expect && ant_count == 64 ? "MATCH" : "MISMATCH");
  return 0;
}
