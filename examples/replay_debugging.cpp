// Debugging a nondeterministic program with Instant Replay and Moviola
// (Section 3.3): record once, replay exactly, browse the partial order.
//
// The workload is a four-process race on one shared account object; which
// process "wins" each round depends on timing.  We record an execution,
// replay it under completely different timing, and print the Moviola graph
// a Rochester developer would have browsed.

#include <cstdio>

#include "chrysalis/kernel.hpp"
#include "replay/instant_replay.hpp"
#include "replay/moviola.hpp"
#include "sim/machine.hpp"

namespace {

using namespace bfly;

std::vector<std::uint32_t> run(replay::Mode mode, std::uint64_t jitter,
                               replay::Log* inout_log) {
  sim::Machine m(sim::butterfly1(8));
  chrys::Kernel k(m);
  replay::Monitor mon(k, 4);
  const std::uint32_t account = mon.register_object(0, "account");
  mon.set_mode(mode);
  if (mode == replay::Mode::kReplay) mon.load_log(*inout_log);
  std::vector<std::uint32_t> order;
  sim::Rng rng(jitter);
  for (std::uint32_t a = 0; a < 4; ++a) {
    const sim::Time delay = (1 + rng.below(20)) * 300 * sim::kMicrosecond;
    k.create_process(a, [&, a, delay] {
      for (int round = 0; round < 3; ++round) {
        k.delay(delay * (round + 1));
        mon.begin_write(a, account);
        order.push_back(a);  // "deposit"
        m.charge(sim::kMillisecond);
        mon.end_write(a, account);
      }
    });
  }
  m.run();
  if (mode == replay::Mode::kRecord) *inout_log = mon.take_log();
  return order;
}

void print_order(const char* label, const std::vector<std::uint32_t>& o) {
  std::printf("%-28s", label);
  for (std::uint32_t a : o) std::printf(" P%u", a);
  std::printf("\n");
}

}  // namespace

int main() {
  replay::Log log;
  const auto recorded = run(replay::Mode::kRecord, 42, &log);
  print_order("recorded execution:", recorded);

  // The same program under different timing — different answer.
  replay::Log scratch;
  const auto other = run(replay::Mode::kRecord, 4242, &scratch);
  print_order("different timing, no replay:", other);

  // Replay pins the interleaving no matter what timing does.
  const auto replayed = run(replay::Mode::kReplay, 4242, &log);
  print_order("same timing, WITH replay:", replayed);
  std::printf("replay reproduced the recording: %s\n\n",
              replayed == recorded ? "YES" : "no");

  std::printf("the log holds %zu fixed-size entries — order, not contents.\n\n",
              log.total_entries());

  replay::Moviola mv(log);
  std::printf("Moviola partial order (%zu events, critical path %u):\n%s",
              mv.events().size(), mv.critical_path(), mv.to_dot().c_str());
  return 0;
}
