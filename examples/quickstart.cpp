// Quickstart: boot a simulated 128-node Butterfly, bring up Chrysalis and
// the Uniform System, and run a data-parallel computation.
//
//   cmake --build build && ./build/examples/quickstart
//
// This is the 30-second tour: a machine, an operating system, a shared
// memory, a crowd of tasks, and the NUMA facts of life (local 0.8us, remote
// 4us, contention real).
//
// Pass `--trace out.json` to record the whole run with bfly::scope and
// write a Chrome trace-event file: open it at https://ui.perfetto.dev or
// chrome://tracing to see one track per simulated node.  Tracing charges
// no simulated time, so the printed timings are identical either way.

#include <cstdio>
#include <cstring>
#include <memory>

#include "chrysalis/kernel.hpp"
#include "scope/scope.hpp"
#include "sim/machine.hpp"
#include "us/uniform_system.hpp"

int main(int argc, char** argv) {
  using namespace bfly;

  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
  }

  // 1. A 128-node Butterfly-I: 8 MHz 68000s, 1 MB memory per node, 4-ary
  //    switching network, remote references ~5x local.
  sim::Machine m(sim::butterfly1(128));
  chrys::Kernel kernel(m);
  us::UniformSystem us(kernel);

  std::unique_ptr<scope::Tracer> tracer;
  if (trace_path != nullptr) tracer = std::make_unique<scope::Tracer>(m);

  std::printf("Butterfly-I: %u nodes, %u switch stages\n", m.nodes(),
              m.fabric().stages());

  // 2. Everything below runs in simulated time on the simulated machine.
  us.run_main([&] {
    // Globally shared memory, scattered across the 128 memories.
    const std::uint32_t kCells = 1u << 14;
    sim::PhysAddr table = us.alloc_global(kCells * 4);
    for (std::uint32_t i = 0; i < kCells; ++i)
      us.put<std::uint32_t>(table.plus(4 * i), i);

    // A crowd of run-to-completion tasks: count primes in [2, kCells).
    sim::PhysAddr primes = us.alloc_global(4);
    us.put<std::uint32_t>(primes, 0);
    const sim::Time t0 = m.now();
    us.for_all(0, 128, [&](us::TaskCtx& c) {
      const std::uint32_t span = kCells / 128;
      const std::uint32_t lo = std::max(2u, c.arg * span);
      std::uint32_t found = 0;
      for (std::uint32_t v = lo; v < (c.arg + 1) * span; ++v) {
        bool prime = v >= 2;
        for (std::uint32_t d = 2; d * d <= v && prime; ++d)
          if (v % d == 0) prime = false;
        c.m.compute(8);  // trial division work
        if (prime) ++found;
      }
      if (found) c.us.atomic_add(primes, found);
    });
    const sim::Time elapsed = m.now() - t0;
    std::printf("primes below %u: %u   (simulated time %s on 128 procs)\n",
                kCells, us.get<std::uint32_t>(primes),
                sim::format_duration(elapsed).c_str());
  });

  if (tracer != nullptr) {
    std::FILE* f = std::fopen(trace_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "quickstart: cannot write %s\n", trace_path);
      return 1;
    }
    const std::string trace = tracer->chrome_trace();
    std::fwrite(trace.data(), 1, trace.size(), f);
    std::fclose(f);
    std::printf("trace: %llu spans on %zu tracks -> %s "
                "(open in https://ui.perfetto.dev)\n",
                static_cast<unsigned long long>(tracer->spans_begun()),
                tracer->tracks(), trace_path);
  }

  // 3. The NUMA facts of life, measured on the same machine.
  sim::Machine probe(sim::butterfly1(128));
  sim::PhysAddr local = probe.alloc(0, 64);
  sim::PhysAddr remote = probe.alloc(64, 64);
  probe.spawn(0, [&] {
    sim::Time t0 = probe.now();
    (void)probe.read<std::uint32_t>(local);
    const sim::Time tl = probe.now() - t0;
    t0 = probe.now();
    (void)probe.read<std::uint32_t>(remote);
    const sim::Time tr = probe.now() - t0;
    std::printf("local read %s, remote read %s (%.1fx): cache your data.\n",
                sim::format_duration(tl).c_str(),
                sim::format_duration(tr).c_str(),
                static_cast<double>(tr) / static_cast<double>(tl));
  });
  probe.run();
  return 0;
}
