// BIFF-style vision pipeline (Section 3.1): "A researcher at a workstation
// can download an image into the Butterfly, apply a complex sequence of
// operations, and upload the result in a tiny fraction of the time required
// to perform the same operations locally."
//
// We compose smooth -> edge detect -> threshold over a synthetic image,
// compare 1-processor and 120-processor runs, and print a coarse ASCII view
// of the result.

#include <cstdio>

#include "apps/image.hpp"
#include "sim/machine.hpp"

int main() {
  using namespace bfly;
  const apps::Image img = apps::Image::synthetic(192, 192, 99);
  const std::vector<apps::Filter> pipeline = {
      apps::filter_box3(), apps::filter_sobel(), apps::filter_threshold(96)};

  std::printf("BIFF pipeline: box3 -> sobel -> threshold on %ux%u image\n",
              img.width, img.height);
  apps::BiffResult out;
  for (std::uint32_t procs : {1u, 16u, 120u}) {
    sim::Machine m(sim::butterfly1(128));
    out = apps::biff_pipeline(m, img, pipeline, procs);
    std::printf("  %3u processors: %s\n", procs,
                sim::format_duration(out.elapsed).c_str());
  }

  // Histogram of the original (a BIFF utility in its own right).
  sim::Machine m(sim::butterfly1(128));
  const apps::BiffResult hist = apps::biff_histogram(m, img, 64);
  std::uint32_t peak = 0;
  for (int b = 1; b < 256; ++b)
    if (hist.histogram[b] > hist.histogram[peak]) peak = b;
  std::printf("histogram peak at intensity %u (%u pixels), computed in %s\n",
              peak, hist.histogram[peak],
              sim::format_duration(hist.elapsed).c_str());

  // ASCII edge map, downsampled 6x.
  std::printf("\nedge map (downsampled):\n");
  for (std::uint32_t y = 0; y < out.image.height; y += 8) {
    for (std::uint32_t x = 0; x < out.image.width; x += 4)
      std::putchar(out.image.at(x, y) > 0 ? '#' : '.');
    std::putchar('\n');
  }
  return 0;
}
