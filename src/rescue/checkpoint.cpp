#include "rescue/checkpoint.hpp"

#include <cstring>

namespace bfly::rescue {

namespace {

constexpr std::uint32_t kMagic = 0x42434b31;  // "1KCB"

// Header block layout (u32 little-endian at byte offsets).
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffSeq = 4;
constexpr std::size_t kOffStep = 8;
constexpr std::size_t kOffRegions = 12;
constexpr std::size_t kOffBytes = 16;
constexpr std::size_t kOffSum = 20;

std::uint32_t fnv1a(const std::vector<std::uint8_t>& data) {
  std::uint32_t h = 2166136261u;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

void put_u32(std::vector<std::uint8_t>& blk, std::size_t off,
             std::uint32_t v) {
  std::memcpy(blk.data() + off, &v, 4);
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& blk, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, blk.data() + off, 4);
  return v;
}

}  // namespace

Checkpointer::Checkpointer(chrys::Kernel& k, bridge::BridgeFs& fs,
                           CheckpointConfig cfg)
    : k_(k), m_(k.machine()), fs_(fs), cfg_(std::move(cfg)) {}

void Checkpointer::protect(sim::PhysAddr addr, std::size_t bytes) {
  regions_.push_back(Region{addr, bytes});
}

std::size_t Checkpointer::total_bytes() const {
  std::size_t n = 0;
  for (const auto& r : regions_) n += r.bytes;
  return n;
}

void Checkpointer::take_checkpoint() {
  if (regions_.empty()) return;
  ++seq_;
  sim::TraceSpan span(m_, "rescue", "checkpoint", seq_);
  const std::string name =
      cfg_.file_prefix + ((seq_ % 2) != 0 ? ".a" : ".b");
  bridge::FileId f;
  if (!fs_.lookup(name, &f)) f = fs_.create(name);
  // Gather the protected regions out of simulated memory: charged block
  // reads, possibly remote — checkpointing costs simulated time.
  std::vector<std::uint8_t> data(total_bytes());
  std::size_t off = 0;
  for (const auto& r : regions_) {
    m_.block_read(data.data() + off, r.addr, r.bytes);
    off += r.bytes;
  }
  const std::uint32_t sum = fnv1a(data);
  // Data blocks first, header block strictly last: a crash mid-checkpoint
  // leaves this buffer with a stale (or zero) header whose checksum cannot
  // match the half-written data, so restore() rejects it and falls back to
  // the other buffer.
  const auto nblk = static_cast<std::uint32_t>(
      (data.size() + bridge::kBlockSize - 1) / bridge::kBlockSize);
  std::vector<std::uint8_t> blk(bridge::kBlockSize);
  for (std::uint32_t i = 0; i < nblk; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * bridge::kBlockSize;
    const std::size_t len = std::min(bridge::kBlockSize, data.size() - base);
    std::memset(blk.data(), 0, bridge::kBlockSize);
    std::memcpy(blk.data(), data.data() + base, len);
    fs_.write_block(f, 1 + i, blk.data());
  }
  std::memset(blk.data(), 0, bridge::kBlockSize);
  put_u32(blk, kOffMagic, kMagic);
  put_u32(blk, kOffSeq, seq_);
  put_u32(blk, kOffStep, next_step_);
  put_u32(blk, kOffRegions, static_cast<std::uint32_t>(regions_.size()));
  put_u32(blk, kOffBytes, static_cast<std::uint32_t>(data.size()));
  put_u32(blk, kOffSum, sum);
  fs_.write_block(f, 0, blk.data());
  ++m_.stats().checkpoints_taken;
  if (mon_ != nullptr) mon_->truncate_log();
}

bool Checkpointer::validate(bridge::FileId f, std::uint32_t* seq,
                            std::uint32_t* step,
                            std::vector<std::uint8_t>* data) {
  if (fs_.blocks(f) < 1) return false;
  std::vector<std::uint8_t> blk(bridge::kBlockSize);
  fs_.read_block(f, 0, blk.data());
  if (get_u32(blk, kOffMagic) != kMagic) return false;
  if (get_u32(blk, kOffRegions) != regions_.size()) return false;
  const std::uint32_t bytes = get_u32(blk, kOffBytes);
  if (bytes != total_bytes()) return false;
  // Pull everything out of the header before blk is reused for data.
  const std::uint32_t want_sum = get_u32(blk, kOffSum);
  const std::uint32_t hdr_seq = get_u32(blk, kOffSeq);
  const std::uint32_t hdr_step = get_u32(blk, kOffStep);
  const auto nblk = static_cast<std::uint32_t>(
      (bytes + bridge::kBlockSize - 1) / bridge::kBlockSize);
  if (fs_.blocks(f) < 1 + nblk) return false;
  data->assign(bytes, 0);
  for (std::uint32_t i = 0; i < nblk; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * bridge::kBlockSize;
    const std::size_t len = std::min(bridge::kBlockSize, data->size() - base);
    fs_.read_block(f, 1 + i, blk.data());
    std::memcpy(data->data() + base, blk.data(), len);
  }
  if (fnv1a(*data) != want_sum) return false;
  *seq = hdr_seq;
  *step = hdr_step;
  return true;
}

bool Checkpointer::restore() {
  sim::TraceSpan span(m_, "rescue", "restore");
  std::uint32_t best_seq = 0, best_step = 0;
  std::vector<std::uint8_t> best;
  for (const char* suffix : {".a", ".b"}) {
    bridge::FileId f;
    if (!fs_.lookup(cfg_.file_prefix + suffix, &f)) continue;
    std::uint32_t seq = 0, step = 0;
    std::vector<std::uint8_t> data;
    if (!validate(f, &seq, &step, &data)) continue;
    if (seq > best_seq) {
      best_seq = seq;
      best_step = step;
      best = std::move(data);
    }
  }
  if (best_seq == 0) return false;
  // Scatter the image back into the protected regions (charged writes).
  std::size_t off = 0;
  for (const auto& r : regions_) {
    m_.block_write(r.addr, best.data() + off, r.bytes);
    off += r.bytes;
  }
  seq_ = best_seq;  // keep alternating buffers from where we left off
  next_step_ = best_step;
  ++m_.stats().restart_count;
  return true;
}

void Checkpointer::run_steps(std::uint32_t total,
                             const std::function<void(std::uint32_t)>& fn) {
  for (std::uint32_t i = next_step_; i < total; ++i) {
    fn(i);
    next_step_ = i + 1;
    // Checkpoint at the boundary (quiesced: the caller's step has drained
    // its tasks); skip the pointless one after the final step.
    if (cfg_.every_steps != 0 && next_step_ < total &&
        next_step_ % cfg_.every_steps == 0) {
      take_checkpoint();
    }
  }
}

}  // namespace bfly::rescue
