// RESCUE — proactive failure detection for the simulated Butterfly.
//
// The paper's machines were "rarely fully operational": nodes died and the
// software had to keep going.  The packages in this repo already tolerate
// *loud* deaths (the machine-check broadcast fires their crash observers),
// but a silently failed node — one that just stops responding — is only
// noticed when somebody touches the corpse.  A Uniform System run whose
// dead node held no data touched by any peer would block in wait_idle
// forever.
//
// Membership closes that hole with the classic heartbeat/watchdog scheme,
// built from the same Chrysalis primitives application code uses:
//
//   * one daemon process per node increments a per-node heartbeat word in
//     the monitor node's memory every heartbeat_period (a remote write,
//     charged across the simulated switch like any other reference);
//   * a watchdog process on the monitor node scans the words every period
//     (local charged reads); a node whose word has not moved for
//     suspect_after simulated time is *suspected*;
//   * a suspicion against a node that is in fact alive is checked against
//     the switch: if the monitor can still reach it the accusation is a
//     *false suspect* and ignored — the detector may be wrong and must
//     never disturb the living;
//   * a stale node that is alive but *unreachable* (a partition window or
//     dead switch hardware between it and the monitor) is not excised: it
//     enters the suspected_unreachable state — still a member, flagged for
//     routing-around — and is restored when its heartbeats resume.  Both
//     transitions bump the epoch, so a healed minority holding a stale
//     view is fenced: any decision tagged with the old epoch is refusable;
//   * a confirmed suspicion bumps the membership epoch, appends to the
//     suspicion history, publishes the new epoch to a shared-memory cell,
//     and notifies subscribers (wire us::UniformSystem::excise_node,
//     net::Mesh::excise_node and bridge::BridgeFs::excise_node here).
//
// Retry exhaustion is the complementary accusation path: when a bounded
// RetryPolicy gives up on a node, denounce() turns that into an immediate
// suspicion check instead of waiting out the heartbeat timeout.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "chrysalis/kernel.hpp"

namespace bfly::rescue {

/// The rescue layer's retry engine is the simulator's RetryPolicy (see
/// sim/fault.hpp): bounded exponential backoff with optional deterministic
/// jitter.  Aliased here because retry exhaustion is a rescue-layer concept
/// — it is what graduates into a denounce() — and callers (bfly::serve)
/// reach it through this namespace.
using RetryPolicy = sim::RetryPolicy;

struct RescueConfig {
  /// How often each node's daemon refreshes its heartbeat word.
  sim::Time heartbeat_period = 2 * sim::kMillisecond;
  /// Staleness after which the watchdog suspects a node.  Must comfortably
  /// exceed heartbeat_period or healthy nodes get (false-)suspected.
  sim::Time suspect_after = 8 * sim::kMillisecond;
  /// Node whose memory holds the heartbeat words and runs the watchdog.
  /// Pick a lightly-loaded node: heartbeat reads queue at this node's
  /// memory module like any other reference, so co-locating the monitor
  /// with a contended structure (the US work queue lives on node 0)
  /// delays detection by however deep that queue runs.
  sim::NodeId monitor_node = 0;
};

/// One entry per declared suspicion, oldest first.
struct Suspicion {
  sim::NodeId node = 0;
  sim::Time at = 0;          ///< simulated time of the declaration
  std::uint64_t epoch = 0;   ///< membership epoch it created
};

class Membership {
 public:
  /// Allocates the heartbeat words.  Call start() from a Chrysalis process
  /// to launch the daemons; a Membership that is never started charges
  /// nothing (zero overhead when rescue is off).
  Membership(chrys::Kernel& k, RescueConfig cfg = {});

  Membership(const Membership&) = delete;
  Membership& operator=(const Membership&) = delete;

  /// Launch one heartbeat daemon per (live) node plus the watchdog.  Must
  /// be called from a Chrysalis process.
  void start();
  /// Stop the service and *join* it: flags the daemons, then blocks (must
  /// be on a Chrysalis process) until every daemon on a live node has
  /// exited, so no heartbeat fiber can run after this object — or the
  /// caller's stack frame — is gone.  Daemons on killed nodes never wake
  /// and are not waited for.  Call before the main process returns or
  /// run() never drains.
  void stop();

  /// Register a callback run when a node is declared dead.  Runs in the
  /// watchdog's process context (or the denouncer's), after the membership
  /// state has been updated.  Returns an id for unsubscribe.
  std::uint64_t subscribe(std::function<void(sim::NodeId)> fn);
  void unsubscribe(std::uint64_t id);

  /// Register a callback run on reachability transitions: fn(n, true) when
  /// `n` enters suspected_unreachable, fn(n, false) when it is restored.
  /// Runs in the watchdog's (or denouncer's) process context after the
  /// epoch has been bumped and published.  Returns an id for
  /// unsubscribe_reach.
  std::uint64_t subscribe_reach(std::function<void(sim::NodeId, bool)> fn);
  void unsubscribe_reach(std::uint64_t id);

  /// Accuse a node directly (e.g. from a retry-exhaustion hook): checked
  /// against ground truth immediately — a live accusee is a false suspect,
  /// a dead one is declared without waiting for the heartbeat timeout.
  void denounce(sim::NodeId n);

  /// Is the node in the current membership view?  An unreachable node is
  /// still a member — partitions are expected to heal; only death excises.
  bool member(sim::NodeId n) const { return n < member_.size() && member_[n]; }
  /// Is the node in the suspected_unreachable state (alive, a member, but
  /// the monitor cannot reach it across the switch)?
  bool unreachable(sim::NodeId n) const {
    return n < unreachable_.size() && unreachable_[n];
  }
  /// Members currently flagged suspected_unreachable.
  std::uint32_t members_unreachable() const { return members_unreachable_; }
  /// Members remaining in the current view.
  std::uint32_t members_alive() const { return members_alive_; }
  /// Bumped once per declared suspicion.
  std::uint64_t epoch() const { return epoch_; }
  const std::vector<Suspicion>& history() const { return history_; }
  /// Shared-memory cell (on the monitor node) holding the current epoch:
  /// application tasks can poll it cheaply to learn the view changed.
  sim::PhysAddr epoch_cell() const { return epoch_cell_; }

  /// First suspicion declared against `n`, or 0 if none (for benches
  /// measuring time-to-detect).
  sim::Time suspected_at(sim::NodeId n) const;

 private:
  void daemon_loop(sim::NodeId n);
  void watchdog_loop();
  void declare_suspect(sim::NodeId n);
  void mark_unreachable(sim::NodeId n);
  void mark_restored(sim::NodeId n);
  void publish_epoch();

  chrys::Kernel& k_;
  sim::Machine& m_;
  RescueConfig cfg_;
  sim::PhysAddr hb_base_{};    // nodes() heartbeat words on monitor_node
  sim::PhysAddr epoch_cell_{}; // published epoch, on monitor_node
  bool started_ = false;
  bool stopping_ = false;
  std::vector<std::uint8_t> daemon_up_;  ///< per-node daemon still running
  bool watchdog_up_ = false;
  std::vector<std::uint8_t> member_;
  std::vector<std::uint8_t> unreachable_;  ///< suspected_unreachable flags
  std::uint32_t members_alive_ = 0;
  std::uint32_t members_unreachable_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<Suspicion> history_;
  struct Subscriber {
    std::uint64_t id;
    std::function<void(sim::NodeId)> fn;
  };
  std::vector<Subscriber> subs_;
  struct ReachSubscriber {
    std::uint64_t id;
    std::function<void(sim::NodeId, bool)> fn;
  };
  std::vector<ReachSubscriber> reach_subs_;
  std::uint64_t next_sub_ = 1;
  // Watchdog bookkeeping (host-side; the charged work is the word reads).
  std::vector<std::uint32_t> last_seq_;
  std::vector<sim::Time> last_move_;
};

}  // namespace bfly::rescue
