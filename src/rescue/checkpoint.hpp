// Checkpoint/restart through the Bridge file system.
//
// A long computation structured as steps (outer iterations of Gauss, phases
// of a sort) registers its shared-memory regions with protect() and runs
// its steps through run_steps().  At configurable step boundaries — the
// computation is *quiesced* there: wait_idle has drained the Uniform System
// task bag, so the bag's serialization is just the step cursor — the
// checkpointer reads every protected region out of simulated memory
// (charged block reads), streams it into a checkpoint file on the Bridge
// servers (charged disk writes), and writes the header block last.  Two
// files are used alternately, so a crash mid-checkpoint tears at most the
// buffer being written; the header-written-last-plus-checksum rule makes a
// torn buffer detectably invalid and restore() falls back to the other.
//
// Because the Bridge store is backed by a StableStore that outlives the
// Machine, a fresh simulation under the same seed can restore() the latest
// valid checkpoint and resume at the recorded step — and since the
// simulator is deterministic, the restarted run's answer is bit-for-bit
// the answer the unkilled run would have produced.
//
// Checkpoints are also Instant Replay barriers: nothing before a restored
// checkpoint can ever be re-executed, so the monitor's record log is
// truncated at each checkpoint (attach_replay), keeping it bounded.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bridge/bridge.hpp"
#include "replay/instant_replay.hpp"

namespace bfly::rescue {

struct CheckpointConfig {
  /// Take a checkpoint every N completed steps (0 = never).
  std::uint32_t every_steps = 1;
  /// Checkpoint file names are <prefix>.a and <prefix>.b.
  std::string file_prefix = "ckpt";
};

class Checkpointer {
 public:
  Checkpointer(chrys::Kernel& k, bridge::BridgeFs& fs,
               CheckpointConfig cfg = {});

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Register a shared-memory region to be saved/restored.  Regions must
  /// be registered in the same order in the original and restarted runs
  /// (deterministic allocation gives them identical addresses anyway).
  void protect(sim::PhysAddr addr, std::size_t bytes);

  /// Truncate this monitor's record log at every checkpoint.
  void attach_replay(replay::Monitor* mon) { mon_ = mon; }

  /// Load the newest valid checkpoint, if any: scatters the saved bytes
  /// back into the protected regions and sets next_step().  Returns false
  /// (and leaves memory untouched) when no valid checkpoint exists — e.g.
  /// a fresh run, or both buffers torn.  Call from a Chrysalis process.
  bool restore();

  /// First step run_steps() will execute (0 on a fresh run).
  std::uint32_t next_step() const { return next_step_; }

  /// Run steps [next_step(), total), checkpointing at every_steps
  /// boundaries.  Call from a Chrysalis process; `fn` gets the step index.
  void run_steps(std::uint32_t total,
                 const std::function<void(std::uint32_t)>& fn);

  /// Take a checkpoint now (run_steps calls this; exposed for tests).
  void take_checkpoint();

 private:
  struct Region {
    sim::PhysAddr addr{};
    std::size_t bytes = 0;
  };

  std::size_t total_bytes() const;
  /// Validate one buffer file; on success fills seq/step/data.
  bool validate(bridge::FileId f, std::uint32_t* seq, std::uint32_t* step,
                std::vector<std::uint8_t>* data);

  chrys::Kernel& k_;
  sim::Machine& m_;
  bridge::BridgeFs& fs_;
  CheckpointConfig cfg_;
  replay::Monitor* mon_ = nullptr;
  std::vector<Region> regions_;
  std::uint32_t seq_ = 0;        // last checkpoint sequence number written
  std::uint32_t next_step_ = 0;
};

}  // namespace bfly::rescue
