#include "rescue/rescue.hpp"

namespace bfly::rescue {

Membership::Membership(chrys::Kernel& k, RescueConfig cfg)
    : k_(k), m_(k.machine()), cfg_(cfg) {
  if (cfg_.monitor_node >= m_.nodes())
    throw sim::SimError("Membership: monitor_node out of range");
  if (cfg_.suspect_after <= cfg_.heartbeat_period)
    throw sim::SimError(
        "Membership: suspect_after must exceed heartbeat_period or healthy "
        "nodes get suspected");
  const std::uint32_t n = m_.nodes();
  member_.assign(n, 1);
  unreachable_.assign(n, 0);
  daemon_up_.assign(n, 0);
  members_alive_ = n;
  last_seq_.assign(n, 0);
  last_move_.assign(n, 0);
  // One 8-byte heartbeat word per node, plus the published epoch cell, all
  // in the monitor node's memory.
  hb_base_ = m_.alloc(cfg_.monitor_node, static_cast<std::size_t>(n) * 8);
  epoch_cell_ = m_.alloc(cfg_.monitor_node, 8);
}

void Membership::start() {
  if (started_) return;
  started_ = true;
  const std::uint32_t nodes = m_.nodes();
  for (sim::NodeId n = 0; n < nodes; ++n) {
    if (!k_.node_alive(n)) {
      // Dead before the service came up: it will never heartbeat, so the
      // watchdog will declare it after suspect_after — no special case.
      continue;
    }
    try {
      k_.create_process(n, [this, n] { daemon_loop(n); },
                        "hb-" + std::to_string(n));
    } catch (const chrys::ThrowSignal& t) {
      // The node died while its daemon was being built (creation charges
      // real time, and kills land mid-charge).  Same story as dead-before-
      // start: no heartbeat will ever come, the watchdog declares it.
      if (t.code == chrys::kThrowNodeDead) continue;
      // Starting mid-cut: the daemon template cannot be shipped across an
      // active partition.  Skip the node rather than aborting the whole
      // service — the watchdog will park it as suspected_unreachable.  It
      // has no daemon, so after the heal it shows up as a (repeating)
      // false suspicion instead of graduating back; restart the service to
      // reinstall daemons if membership is brought up mid-partition.
      if (t.code == chrys::kThrowNetUnreachable) continue;
      throw;
    }
    // Process creation is expensive (a serialized pass over the global
    // template): across a whole machine this loop holds the caller's CPU
    // for tens of milliseconds.  Yield so an already-created daemon on this
    // node can get its first heartbeat out before its grace expires.
    k_.yield();
  }
  // The scan starts counting staleness from now, so nodes get a full
  // suspect_after to produce their first heartbeat.
  for (sim::NodeId n = 0; n < nodes; ++n) last_move_[n] = m_.now();
  k_.create_process(cfg_.monitor_node, [this] { watchdog_loop(); },
                    "hb-watchdog");
}

void Membership::stop() {
  stopping_ = true;
  if (!started_) return;
  // Join the daemons: each one holds a pointer to this object (and the
  // fibers themselves may outlive the caller's stack frame), so returning
  // while any can still wake is a use-after-free waiting for a scheduler
  // slot.  A daemon sleeps at most one period before it sees the flag; a
  // daemon on a killed node never wakes and must not be waited for.  The
  // iteration bound turns a join regression into a loud test failure
  // (leaked daemon) instead of a hang.
  for (int i = 0; i < 1000; ++i) {
    bool busy = watchdog_up_ && m_.node_alive(cfg_.monitor_node);
    for (sim::NodeId n = 0; n < m_.nodes() && !busy; ++n)
      busy = daemon_up_[n] != 0 && m_.node_alive(n);
    if (!busy) return;
    k_.delay(cfg_.heartbeat_period);
  }
}

void Membership::daemon_loop(sim::NodeId n) {
  daemon_up_[n] = 1;
  // Stagger the daemons across the period so the monitor's memory is not
  // hit by every node in the same simulated instant.
  const sim::Time phase =
      cfg_.heartbeat_period * n / std::max<std::uint32_t>(1, m_.nodes());
  if (phase > 0) k_.delay(phase);
  std::uint32_t seq = 0;
  while (!stopping_) {
    ++seq;
    m_.trace_instant("rescue", "heartbeat", seq);
    try {
      // A remote write across the switch, charged like any application
      // reference — heartbeat traffic costs simulated time.
      m_.write<std::uint32_t>(hb_base_.plus(n * 8), seq);
    } catch (const sim::NodeDeadError&) {
      break;  // the monitor is gone; nobody is listening
    } catch (const sim::NetUnreachableError&) {
      // Partitioned away from the monitor: keep trying.  Each failed
      // attempt was charged (retries plus backoff), and the first write
      // that lands after the heal is what graduates this node from
      // suspected_unreachable back to a full member.
    } catch (const sim::MemoryFaultError&) {
      // A dropped heartbeat is harmless — the next one supersedes it.
    }
    k_.delay(cfg_.heartbeat_period);
  }
  daemon_up_[n] = 0;
}

void Membership::watchdog_loop() {
  watchdog_up_ = true;
  while (!stopping_) {
    k_.delay(cfg_.heartbeat_period);
    if (stopping_) break;
    for (sim::NodeId n = 0; n < m_.nodes(); ++n) {
      if (!member_[n]) continue;
      // Local charged read of the node's heartbeat word.
      const auto seq = m_.read<std::uint32_t>(hb_base_.plus(n * 8));
      if (seq != last_seq_[n]) {
        last_seq_[n] = seq;
        last_move_[n] = m_.now();
        // A heartbeat from a suspected_unreachable node means the path
        // healed: restore it (with an epoch bump, fencing stale views).
        if (unreachable_[n]) mark_restored(n);
        continue;
      }
      if (m_.now() - last_move_[n] <= cfg_.suspect_after) continue;
      // Stale.  Check the accusation against ground truth: the detector
      // may be wrong, and a false suspicion must never evict the living.
      // An alive-but-unreachable node is neither a false suspicion nor a
      // death: the detector was *right* that heartbeats stopped, but the
      // fault is in the switch, not the node — park it in
      // suspected_unreachable instead of excising it.
      if (m_.node_alive(n)) {
        if (m_.reachable(cfg_.monitor_node, n)) {
          // A flagged node whose path just healed is *expected* to be stale
          // until its next heartbeat lands — give it a fresh grace period
          // without booking a false suspicion; the restore happens when the
          // sequence moves.
          if (!unreachable_[n]) ++m_.stats().false_suspects;
          last_move_[n] = m_.now();
        } else if (!unreachable_[n]) {
          mark_unreachable(n);
        }
        continue;
      }
      declare_suspect(n);
    }
  }
  watchdog_up_ = false;
}

void Membership::denounce(sim::NodeId n) {
  if (n >= member_.size() || !member_[n]) return;
  if (m_.node_alive(n)) {
    if (m_.reachable(cfg_.monitor_node, n)) {
      ++m_.stats().false_suspects;
    } else if (!unreachable_[n]) {
      mark_unreachable(n);
    }
    return;
  }
  declare_suspect(n);
}

void Membership::declare_suspect(sim::NodeId n) {
  if (!member_[n]) return;
  m_.trace_instant("rescue", "suspect", n);
  member_[n] = 0;
  if (unreachable_[n]) {
    // Died while partitioned away: it is a corpse now, not a suspect.
    unreachable_[n] = 0;
    --members_unreachable_;
  }
  --members_alive_;
  ++epoch_;
  ++m_.stats().suspects_declared;
  history_.push_back(Suspicion{n, m_.now(), epoch_});
  // Publish the new view before notifying anyone, so a subscriber that
  // polls epoch_cell() from a task sees a consistent picture.
  publish_epoch();
  for (const auto& s : subs_) s.fn(n);
}

void Membership::mark_unreachable(sim::NodeId n) {
  m_.trace_instant("rescue", "unreachable", n);
  unreachable_[n] = 1;
  ++members_unreachable_;
  ++epoch_;  // fence: decisions made under the old view are refusable
  ++m_.stats().suspects_unreachable;
  publish_epoch();
  for (const auto& s : reach_subs_) s.fn(n, true);
}

void Membership::mark_restored(sim::NodeId n) {
  m_.trace_instant("rescue", "restored", n);
  unreachable_[n] = 0;
  --members_unreachable_;
  // The epoch bump on restore is the fence in the other direction: the
  // healed minority re-learns the view before anyone honors its acks.
  ++epoch_;
  ++m_.stats().unreachable_restored;
  publish_epoch();
  for (const auto& s : reach_subs_) s.fn(n, false);
}

void Membership::publish_epoch() {
  m_.write<std::uint32_t>(epoch_cell_, static_cast<std::uint32_t>(epoch_));
}

std::uint64_t Membership::subscribe(std::function<void(sim::NodeId)> fn) {
  subs_.push_back(Subscriber{next_sub_, std::move(fn)});
  return next_sub_++;
}

void Membership::unsubscribe(std::uint64_t id) {
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    if (subs_[i].id == id) {
      subs_.erase(subs_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::uint64_t Membership::subscribe_reach(
    std::function<void(sim::NodeId, bool)> fn) {
  reach_subs_.push_back(ReachSubscriber{next_sub_, std::move(fn)});
  return next_sub_++;
}

void Membership::unsubscribe_reach(std::uint64_t id) {
  for (std::size_t i = 0; i < reach_subs_.size(); ++i) {
    if (reach_subs_[i].id == id) {
      reach_subs_.erase(reach_subs_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

sim::Time Membership::suspected_at(sim::NodeId n) const {
  for (const auto& s : history_)
    if (s.node == n) return s.at;
  return 0;
}

}  // namespace bfly::rescue
