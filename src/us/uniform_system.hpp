// The BBN Uniform System (Section 2.3 of the paper), rebuilt on Chrysalis.
//
// The Uniform System presents the illusion of one global shared memory plus
// cheap run-to-completion tasks.  At initialization a manager process is
// created on every participating processor; a global work queue (a
// microcoded dual queue) feeds them task descriptors.  Tasks inherit the
// globally shared memory, so granularity can be as small as a subroutine
// call.  Synchronization inside tasks is by spin lock only — tasks cannot
// block — which is exactly the property the paper criticizes.
//
// Faithful warts:
//   * the shared heap is capped at 16 MB (256 segments x 64 KB) on the
//     Butterfly-I profile;
//   * memory allocation is serialized behind one lock unless the parallel
//     (Ellis & Olson style) allocator is enabled — the Amdahl bench flips
//     this switch;
//   * data placement matters: alloc_on/scatter let programs spread data
//     across memories (the contention experiment) or concentrate it.
#pragma once

#include <cstdint>
#include <functional>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "chrysalis/kernel.hpp"
#include "chrysalis/spinlock.hpp"
#include "sync/counter.hpp"

namespace bfly::us {

class UniformSystem;

/// Handed to every task when it runs on a manager.
struct TaskCtx {
  UniformSystem& us;
  chrys::Kernel& k;
  sim::Machine& m;
  std::uint32_t worker = 0;   ///< manager index, 0..processors-1
  sim::NodeId node = 0;       ///< node the task is executing on
  std::uint32_t arg = 0;      ///< per-task argument (e.g. an index)
};

using TaskFn = std::function<void(TaskCtx&)>;

struct UsConfig {
  /// Processors to run managers on (0 = every node of the machine).
  std::uint32_t processors = 0;
  /// Nodes to scatter shared memory across (0 = every node).  The paper's
  /// contention experiment spreads data over all 128 memories even when
  /// fewer processors compute.
  std::uint32_t memory_nodes = 0;
  /// Serial allocator (one global lock) vs parallel first-fit per node
  /// (Ellis & Olson).  Serial was "a dominant factor in many programs".
  bool parallel_allocator = true;
  /// Shared-heap ceiling; 16 MB on the Butterfly-I (the SAR limit).
  std::size_t heap_limit = 16u * 1024 * 1024;
  /// Create managers through a fan-out tree instead of serially (the
  /// "faster initialization" Rochester contributed to the BBN release).
  bool tree_init = false;
  /// Bounded retry for infrastructure accesses (completion counter, scatter
  /// cursor): transient faults are retried with exponential backoff; after
  /// retry.attempts tries the fault is treated as permanent (the exhaustion
  /// hook fires, then the error propagates).
  sim::RetryPolicy retry;
  /// Outstanding-task counter strategy.  kAuto follows the machine's
  /// MachineConfig::sync_strategy: the 1988 single hot cell on node 0, or
  /// per-processor distributed cells whose waiter polls the aggregated sum.
  sync::CounterKind idle_counter = sync::CounterKind::kAuto;
};

class UniformSystem {
 public:
  UniformSystem(chrys::Kernel& k, UsConfig cfg = {});
  ~UniformSystem();

  UniformSystem(const UniformSystem&) = delete;
  UniformSystem& operator=(const UniformSystem&) = delete;

  chrys::Kernel& kernel() { return k_; }
  sim::Machine& machine() { return m_; }
  std::uint32_t processors() const { return procs_; }
  /// The outstanding-task counter (valid after initialize()).
  sync::IdleCounter& idle_counter() { return *idle_counter_; }

  /// Convenience: initialize, run `main` as a process on node 0, shut the
  /// managers down when it returns, and run the machine to completion.
  /// Returns total simulated time.
  sim::Time run_main(std::function<void()> main);

  /// Create the manager processes (callable from a Chrysalis process).
  void initialize();
  /// Stop all managers (drains the work queue first).
  void terminate();

  // --- Globally shared memory -------------------------------------------------

  /// Allocate from the shared heap, scattered round-robin over the memory
  /// nodes.  Throws ThrowSignal{kThrowOutOfMemory} past the 16 MB ceiling.
  sim::PhysAddr alloc_global(std::size_t bytes);
  /// Allocate on a specific node's memory.
  sim::PhysAddr alloc_on(sim::NodeId node, std::size_t bytes);
  void free_global(sim::PhysAddr p, std::size_t bytes);
  std::size_t heap_in_use() const { return heap_in_use_; }

  /// Allocate `count` rows of `row_bytes`, row i on memory node i mod M —
  /// the standard US matrix scatter.
  std::vector<sim::PhysAddr> scatter_rows(std::size_t count,
                                          std::size_t row_bytes);

  // --- Timed shared-memory access ----------------------------------------------

  template <typename T>
  T get(sim::PhysAddr a) {
    return m_.read<T>(a);
  }
  template <typename T>
  void put(sim::PhysAddr a, T v) {
    m_.write<T>(a, v);
  }
  std::uint32_t atomic_add(sim::PhysAddr a, std::uint32_t d) {
    return m_.fetch_add_u32(a, d);
  }
  /// The standard US locality idiom: copy a block of (possibly remote)
  /// shared memory into the worker's local memory, process it there, copy
  /// results back.  Worth 42% on the Hough transform (Section 4.1).
  void copy_to_local(void* dst, sim::PhysAddr src, std::size_t bytes) {
    m_.block_read(dst, src, bytes);
  }
  void copy_from_local(sim::PhysAddr dst, const void* src, std::size_t bytes) {
    m_.block_write(dst, src, bytes);
  }

  // --- Task generation -----------------------------------------------------------

  /// Enqueue one task.
  void gen_task(TaskFn fn, std::uint32_t arg = 0);
  /// GenTaskForEachIndex: one task per index in [lo, hi).
  void gen_on_index(std::uint32_t lo, std::uint32_t hi, TaskFn fn);
  /// Block the calling process until every generated task has completed.
  void wait_idle();
  /// gen_on_index + wait_idle.
  void for_all(std::uint32_t lo, std::uint32_t hi, TaskFn fn);

  std::uint64_t tasks_run() const { return tasks_run_; }
  /// Tasks that ended in an uncaught throw (trapped by the manager).
  std::uint64_t tasks_faulted() const { return tasks_faulted_; }

  // --- Degraded-machine operation ---------------------------------------------
  // When a FaultPlan kills a node, the Uniform System drops that processor
  // from the pool and re-issues whatever task was in flight on it, so a
  // for_all still completes on the survivors — the paper's machines were
  // "rarely fully operational" and the pool simply shrank.

  /// Pool processors lost to node deaths.
  std::uint32_t nodes_lost() const { return nodes_lost_; }
  /// Tasks re-issued because their processor died mid-task (at-least-once
  /// execution: such tasks must tolerate a partial prior run).
  std::uint64_t tasks_reissued() const { return tasks_reissued_; }
  /// Managers still serving the work queue.
  std::uint32_t managers_alive() const { return managers_alive_; }

  /// Excise a node the caller knows to be dead (a failure detector's
  /// verdict): re-issue its in-flight task, apply any owed completion
  /// decrement, rescue a stranded wait_idle.  Loud kills arrive here
  /// automatically through the machine's crash broadcast; silent kills
  /// need this call — typically wired to rescue::Membership::subscribe.
  /// No-op if the node is still alive (a false suspicion must not disturb
  /// a running manager) or was already excised.
  void excise_node(sim::NodeId n);

  /// Called (with the faulting node) when an infrastructure access exhausts
  /// its RetryPolicy, just before the error propagates.  Feed this to
  /// rescue::Membership::denounce so retry exhaustion becomes an accusation.
  void set_retry_exhausted_hook(std::function<void(sim::NodeId)> fn) {
    retry_exhausted_ = std::move(fn);
  }

 private:
  struct TaskRec {
    TaskFn fn;
    std::uint32_t arg;
  };

  void manager_loop(std::uint32_t worker);
  void start_manager_tree(std::uint32_t worker);
  // Record a manager whose node was already dead when we tried to create
  // it (a kill that lands during initialization); no-op if the death
  // observer got there first.
  void mark_manager_dead(std::uint32_t worker);
  void enqueue_descriptor(std::uint32_t tid);
  void handle_node_death(sim::NodeId n);
  sim::PhysAddr allocate_with_lock(sim::NodeId node, std::size_t bytes);
  // Infrastructure accesses (completion counter, scatter cursor) retry
  // transient memory faults: losing one would wedge the whole system, and
  // the real PNC retried failed transactions.  Dead-node errors still
  // propagate — those are permanent.
  std::uint32_t fetch_add_retry(sim::PhysAddr a, std::uint32_t d);
  std::uint32_t read_u32_retry(sim::PhysAddr a);
  // Same bounded retry, through the counter strategy.
  std::uint32_t counter_add_retry(std::uint32_t d);
  std::uint32_t counter_read_retry();

  chrys::Kernel& k_;
  sim::Machine& m_;
  UsConfig cfg_;
  std::uint32_t procs_ = 0;
  std::uint32_t mem_nodes_ = 0;
  bool initialized_ = false;

  chrys::Oid work_queue_ = chrys::kNoObject;
  std::deque<TaskRec> table_;
  std::vector<chrys::Oid> managers_;

  // Shared-heap bookkeeping.
  sim::PhysAddr serial_lock_cell_{};
  std::vector<sim::PhysAddr> node_lock_cell_;
  sim::PhysAddr rr_counter_{};  // round-robin scatter cursor (on node 0)
  std::size_t heap_in_use_ = 0;

  // Completion tracking: outstanding-task counter in shared memory (central
  // on node 0, or distributed per processor) plus — for the central,
  // exact() counter only — an event owned by the waiting process.
  std::unique_ptr<sync::IdleCounter> idle_counter_;
  chrys::Oid idle_event_ = chrys::kNoObject;
  chrys::Oid waiter_proc_ = chrys::kNoObject;
  std::uint64_t tasks_run_ = 0;
  std::uint64_t tasks_faulted_ = 0;

  // Fault recovery state (all host-side: zero cost on healthy runs).
  std::uint64_t crash_observer_ = 0;
  std::function<void(sim::NodeId)> retry_exhausted_;
  std::vector<std::uint32_t> inflight_;      // per worker: tid being run
  std::vector<std::uint8_t> decrementing_;   // per worker: task done, counter
                                             // decrement still in flight
  std::vector<std::uint8_t> manager_alive_;  // per worker
  std::uint32_t managers_alive_ = 0;
  std::uint32_t nodes_lost_ = 0;
  std::uint64_t tasks_reissued_ = 0;
};

}  // namespace bfly::us
