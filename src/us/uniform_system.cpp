#include "us/uniform_system.hpp"

#include <algorithm>
#include <cassert>

namespace bfly::us {

namespace {
constexpr std::uint32_t kStopTid = 0xffffffffu;
constexpr std::uint32_t kNoTask = 0xfffffffeu;
// CPU cost of a manager picking up and launching one task beyond the dual
// queue cost itself.
constexpr sim::Time kDispatchOverhead = 15 * sim::kMicrosecond;
// CPU held while searching a free list inside the allocator lock.
constexpr sim::Time kAllocWork = 100 * sim::kMicrosecond;
// How often a wait_idle waiter re-scans a distributed (inexact) counter.
constexpr sim::Time kIdlePollInterval = 250 * sim::kMicrosecond;

// Clears a spin-lock word host-side if an exception (in particular a
// FiberKill unwinding a dying node) escapes while the lock is held.  A dead
// allocator must not wedge every other node spinning on its lock.  The poke
// is untimed: the clear models the PNC crash handler, not a store by the
// (dead) holder.
struct LockCrashGuard {
  sim::Machine& m;
  sim::PhysAddr cell;
  bool armed = true;
  ~LockCrashGuard() {
    if (armed) m.poke<std::uint32_t>(cell, 0);
  }
};
}  // namespace

UniformSystem::UniformSystem(chrys::Kernel& k, UsConfig cfg)
    : k_(k), m_(k.machine()), cfg_(cfg) {
  procs_ = cfg_.processors == 0 ? m_.nodes()
                                : std::min(cfg_.processors, m_.nodes());
  mem_nodes_ = cfg_.memory_nodes == 0
                   ? m_.nodes()
                   : std::min(cfg_.memory_nodes, m_.nodes());
}

UniformSystem::~UniformSystem() {
  if (crash_observer_ != 0) m_.remove_crash_observer(crash_observer_);
}

sim::Time UniformSystem::run_main(std::function<void()> main) {
  k_.create_process(
      0,
      [this, body = std::move(main)] {
        initialize();
        body();
        terminate();
      },
      "us-main");
  return m_.run();
}

void UniformSystem::initialize() {
  assert(!initialized_);
  initialized_ = true;
  sim::TraceSpan span(m_, "us", "initialize", procs_);
  work_queue_ = k_.make_dual_queue();
  k_.give_to_system(work_queue_);  // shared by all managers

  // Shared-heap metadata lives on node 0 (a mild hot spot, as on the real
  // system).  The outstanding-task counter is the strategy's choice: the
  // 1988 hot cell on node 0, or one cell per pool processor.
  sync::CounterKind kind = cfg_.idle_counter;
  if (kind == sync::CounterKind::kAuto)
    kind = m_.config().sync_strategy == sim::SyncStrategy::kScalable
               ? sync::CounterKind::kDistributed
               : sync::CounterKind::kCentral;
  if (kind == sync::CounterKind::kDistributed) {
    std::vector<sim::NodeId> cell_nodes(procs_);
    for (std::uint32_t w = 0; w < procs_; ++w) cell_nodes[w] = w;
    idle_counter_ = std::make_unique<sync::DistributedCounter>(
        m_, cell_nodes, "US.outstanding");
  } else {
    idle_counter_ = std::make_unique<sync::CentralCounter>(m_, 0,
                                                           "US.outstanding");
  }
  rr_counter_ = m_.alloc(0, 8);
  m_.poke<std::uint32_t>(rr_counter_, 0);
  m_.label_memory(rr_counter_, 8, "US.rr_counter");
  serial_lock_cell_ = m_.alloc(0, 8);
  m_.poke<std::uint32_t>(serial_lock_cell_, 0);
  m_.label_memory(serial_lock_cell_, 8, "US.serial_lock");
  node_lock_cell_.resize(mem_nodes_);
  for (std::uint32_t n = 0; n < mem_nodes_; ++n) {
    // A memory node already dead at startup still needs a lock cell — the
    // round-robin allocator grabs the lock before discovering the node is
    // gone.  Park the cell on node 0 so the probe fails cleanly.
    node_lock_cell_[n] = m_.alloc(m_.node_alive(n) ? n : 0, 8);
    m_.poke<std::uint32_t>(node_lock_cell_[n], 0);
    m_.label_memory(node_lock_cell_[n], 8,
                    "US.node_lock[" + std::to_string(n) + "]");
  }

  managers_.assign(procs_, chrys::kNoObject);
  inflight_.assign(procs_, kNoTask);
  decrementing_.assign(procs_, 0);
  manager_alive_.assign(procs_, 1);
  managers_alive_ = procs_;
  // Crash tier, not death tier: the Uniform System only learns of deaths
  // the hardware broadcasts.  A silent kill reaches handle_node_death via
  // excise_node (a failure detector's verdict) instead.
  crash_observer_ =
      m_.on_node_crash([this](sim::NodeId n) { handle_node_death(n); });
  if (!cfg_.tree_init) {
    // Historical behaviour: the initializing process creates every manager
    // serially — startup is linear in P (the paper's Amdahl lesson; the
    // Rochester "faster initialization" fix is tree_init below).
    for (std::uint32_t w = 0; w < procs_; ++w) {
      if (!manager_alive_[w]) continue;  // died while we were creating others
      try {
        managers_[w] = k_.create_process(
            w, [this, w] { manager_loop(w); }, "us-mgr" + std::to_string(w));
      } catch (const chrys::ThrowSignal& t) {
        if (t.code != chrys::kThrowNodeDead) throw;
        mark_manager_dead(w);
      }
    }
  } else {
    // Fan-out tree: manager w creates managers 2w+1 and 2w+2 before
    // entering its loop.  The local part of creation parallelizes; the
    // serialized template section remains (and still limits speedup).
    start_manager_tree(0);
  }
}

void UniformSystem::start_manager_tree(std::uint32_t w) {
  if (manager_alive_[w]) {
    try {
      managers_[w] = k_.create_process(
          w,
          [this, w] {
            for (std::uint32_t c = 2 * w + 1; c <= 2 * w + 2; ++c)
              if (c < procs_) start_manager_tree(c);
            manager_loop(w);
          },
          "us-mgr" + std::to_string(w));
      return;
    } catch (const chrys::ThrowSignal& t) {
      if (t.code != chrys::kThrowNodeDead) throw;
      mark_manager_dead(w);
    }
  }
  // Subtree root is dead: adopt its children so their subtrees still start.
  for (std::uint32_t c = 2 * w + 1; c <= 2 * w + 2; ++c)
    if (c < procs_) start_manager_tree(c);
}

void UniformSystem::mark_manager_dead(std::uint32_t w) {
  // A node found dead at manager-creation time.  If the death observer
  // already saw it die (registered before the creation loop), everything
  // below happened there.
  if (!manager_alive_[w]) return;
  manager_alive_[w] = 0;
  --managers_alive_;
  ++nodes_lost_;
}

void UniformSystem::terminate() {
  m_.trace_instant("us", "terminate", procs_);
  for (std::uint32_t w = 0; w < procs_; ++w) k_.dq_enqueue(work_queue_, kStopTid);
}

void UniformSystem::manager_loop(std::uint32_t worker) {
  const sim::NodeId node = k_.self().node();
  while (true) {
    // Task boundaries are the manager's only scheduling points, so give any
    // co-resident process (a heartbeat daemon, the membership watchdog) its
    // slice here: with nothing else ready this is free, and without it a
    // long grind starves the detector until the whole run drains.
    k_.yield();
    const std::uint32_t tid = k_.dq_dequeue(work_queue_);
    if (tid == kStopTid) break;
    // Record the claim before any further yield: if this node dies mid-task
    // the death observer re-issues exactly this descriptor.
    inflight_[worker] = tid;
    {
      sim::TraceSpan span(m_, "us", "task", table_[tid].arg);
      m_.charge(kDispatchOverhead);
      TaskCtx ctx{*this, k_, m_, worker, node, table_[tid].arg};
      // A task that throws — or hits a machine fault — must not take its
      // manager down with it: the processor would silently drop out of the
      // crowd.  Trap, count, move on.
      try {
        table_[tid].fn(ctx);
      } catch (const chrys::ThrowSignal&) {
        ++tasks_faulted_;
      } catch (const sim::NodeDeadError&) {
        ++tasks_faulted_;
      } catch (const sim::NetUnreachableError&) {
        ++tasks_faulted_;
      } catch (const sim::MemoryFaultError&) {
        ++tasks_faulted_;
      }
    }
    ++tasks_run_;
    // The task body is done: from here the descriptor must not be re-run,
    // but its outstanding_ decrement is still owed.  The two flags flip
    // host-side (no yields), so the death observer always sees exactly one
    // of: "reissue the task" / "apply the owed decrement" / "all settled".
    inflight_[worker] = kNoTask;
    decrementing_[worker] = 1;
    // With a distributed counter this add is local and returns kUnknown —
    // no manager can tell it drained the count, so nobody posts and the
    // waiter polls instead (see wait_idle).
    const std::uint32_t before = counter_add_retry(0xffffffffu);
    decrementing_[worker] = 0;
    if (before == 1 && waiter_proc_ != chrys::kNoObject) {
      // Post first, clear second: if this node dies inside the post's
      // charge, waiter_proc_ is still set and the death observer rescues
      // the waiter.  Delivery and the clear are a single host-side step.
      k_.event_post(idle_event_, 0);
      waiter_proc_ = chrys::kNoObject;
    }
  }
  manager_alive_[worker] = 0;
  --managers_alive_;
}

void UniformSystem::enqueue_descriptor(std::uint32_t tid) {
  k_.dq_enqueue(work_queue_, tid);
}

std::uint32_t UniformSystem::fetch_add_retry(sim::PhysAddr a,
                                             std::uint32_t d) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      return m_.fetch_add_u32(a, d);
    } catch (const sim::MemoryFaultError& e) {
      if (attempt + 1 >= std::max(1u, cfg_.retry.attempts)) {
        if (retry_exhausted_) retry_exhausted_(e.node());
        throw;
      }
      m_.charge(cfg_.retry.backoff(attempt));
    }
  }
}

std::uint32_t UniformSystem::read_u32_retry(sim::PhysAddr a) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      return m_.read<std::uint32_t>(a);
    } catch (const sim::MemoryFaultError& e) {
      if (attempt + 1 >= std::max(1u, cfg_.retry.attempts)) {
        if (retry_exhausted_) retry_exhausted_(e.node());
        throw;
      }
      m_.charge(cfg_.retry.backoff(attempt));
    }
  }
}

std::uint32_t UniformSystem::counter_add_retry(std::uint32_t d) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      return idle_counter_->add(d);
    } catch (const sim::MemoryFaultError& e) {
      if (attempt + 1 >= std::max(1u, cfg_.retry.attempts)) {
        if (retry_exhausted_) retry_exhausted_(e.node());
        throw;
      }
      m_.charge(cfg_.retry.backoff(attempt));
    }
  }
}

std::uint32_t UniformSystem::counter_read_retry() {
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      return idle_counter_->read();
    } catch (const sim::MemoryFaultError& e) {
      if (attempt + 1 >= std::max(1u, cfg_.retry.attempts)) {
        if (retry_exhausted_) retry_exhausted_(e.node());
        throw;
      }
      m_.charge(cfg_.retry.backoff(attempt));
    }
  }
}

void UniformSystem::excise_node(sim::NodeId n) {
  // A live node must never be excised: its manager is still running and
  // would later double-apply every completion we faked here.  Membership
  // filters false suspicions before calling, but stay defensive.
  if (n >= m_.nodes() || m_.node_alive(n)) return;
  handle_node_death(n);
}

void UniformSystem::handle_node_death(sim::NodeId n) {
  if (!initialized_ || n >= procs_) return;  // not a pool processor
  if (!manager_alive_[n]) return;            // already stopped normally
  manager_alive_[n] = 0;
  --managers_alive_;
  ++nodes_lost_;
  if (decrementing_[n]) {
    // The task body finished but the node died before its outstanding-count
    // decrement landed; apply it on the dead manager's behalf (host-side —
    // the simulated store was lost with the node).
    decrementing_[n] = 0;
    idle_counter_->poke_adjust(-1);
  }
  // Retire the dead node's counter cell (its value folds host-side, so
  // the count survives the node).
  idle_counter_->excise(n);
  if (inflight_[n] != kNoTask) {
    // The claimed descriptor died with its manager mid-run: put it back at
    // the front of the queue for a survivor.  At-least-once semantics —
    // tasks observe no partial simulated writes (mutations are atomic with
    // the charge that pays for them), so a re-run is safe.
    const std::uint32_t tid = inflight_[n];
    inflight_[n] = kNoTask;
    ++tasks_reissued_;
    k_.dq_enqueue(work_queue_, tid);
  }
  // Rescue a stranded wait_idle: either the work drained exactly as the
  // last manager died, or there is nobody left to drain it.
  if (waiter_proc_ != chrys::kNoObject &&
      (managers_alive_ == 0 || idle_counter_->peek_total() == 0)) {
    waiter_proc_ = chrys::kNoObject;
    k_.event_post(idle_event_, 0);
  }
}

void UniformSystem::gen_task(TaskFn fn, std::uint32_t arg) {
  table_.push_back(TaskRec{std::move(fn), arg});
  const auto tid = static_cast<std::uint32_t>(table_.size() - 1);
  m_.trace_instant("us", "gen_task", tid);
  (void)counter_add_retry(1);
  enqueue_descriptor(tid);
}

void UniformSystem::gen_on_index(std::uint32_t lo, std::uint32_t hi,
                                 TaskFn fn) {
  if (lo >= hi) return;
  m_.trace_instant("us", "gen_on_index", hi - lo);
  // One shared TaskRec; the per-index argument rides in the descriptor's
  // low bits via distinct records (kept simple: one record per index, the
  // closure is shared).
  (void)counter_add_retry(hi - lo);
  for (std::uint32_t i = lo; i < hi; ++i) {
    table_.push_back(TaskRec{fn, i});
    enqueue_descriptor(static_cast<std::uint32_t>(table_.size() - 1));
    // A large generation holds this CPU for many milliseconds of charged
    // enqueues; let co-resident processes run between descriptors (free
    // when nothing is ready).
    k_.yield();
  }
}

void UniformSystem::wait_idle() {
  // The span's *end* is what matters downstream: scope::Tracer treats it as
  // a phase barrier in the critical-path report.
  sim::TraceSpan span(m_, "us", "wait_idle");
  if (!idle_counter_->exact()) {
    // Distributed cells: no completion can tell it drained the count, so
    // the waiter polls the aggregated sum.  A charged scan never reads a
    // false zero while only decrements are in flight, and the untimed peek
    // re-confirms the zero against cells folded by crash handlers.
    for (;;) {
      if (counter_read_retry() == 0 && idle_counter_->peek_total() == 0)
        return;
      // Whole pool dead: the queued tasks will never run.  Return degraded
      // instead of polling forever.
      if (managers_alive_ == 0) return;
      k_.delay(kIdlePollInterval);
    }
  }
  chrys::Process& p = k_.self();
  if (counter_read_retry() == 0) return;
  // Whole pool dead: the queued tasks will never run, and nobody is left to
  // post the idle event.  Return degraded instead of parking forever.
  if (managers_alive_ == 0) return;
  idle_event_ = k_.make_event(p.oid());
  waiter_proc_ = p.oid();
  // Re-check: the last task may have completed while we created the event.
  if (counter_read_retry() == 0) {
    if (waiter_proc_ != chrys::kNoObject) {
      // No manager claimed the post: nothing outstanding, just clean up.
      waiter_proc_ = chrys::kNoObject;
      k_.delete_object(idle_event_);
      idle_event_ = chrys::kNoObject;
      return;
    }
    // A manager posted already; fall through and consume it.
  }
  (void)k_.event_wait(idle_event_);
  k_.delete_object(idle_event_);
  idle_event_ = chrys::kNoObject;
}

void UniformSystem::for_all(std::uint32_t lo, std::uint32_t hi, TaskFn fn) {
  gen_on_index(lo, hi, std::move(fn));
  wait_idle();
}

// --- Shared memory ---------------------------------------------------------------

sim::PhysAddr UniformSystem::allocate_with_lock(sim::NodeId node,
                                                std::size_t bytes) {
  const sim::PhysAddr cell = cfg_.parallel_allocator
                                 ? node_lock_cell_[node % mem_nodes_]
                                 : serial_lock_cell_;
  chrys::SpinLock lock(m_, cell);
  lock.acquire();
  // Armed only while the lock is held; disarmed after release() returns (a
  // release interrupted by a kill never cleared the word, so disarming
  // before it would leave the lock set forever).
  LockCrashGuard guard{m_, cell};
  m_.charge(kAllocWork);
  // Ceiling check and bookkeeping must be adjacent (no yields between),
  // so concurrent allocators on different nodes cannot both squeeze under
  // the 16 MB limit.
  if (heap_in_use_ + bytes > cfg_.heap_limit) {
    lock.release();
    guard.armed = false;
    throw chrys::ThrowSignal{chrys::kThrowOutOfMemory,
                             static_cast<std::uint32_t>(bytes)};
  }
  sim::PhysAddr a;
  try {
    a = m_.alloc(node, bytes);
  } catch (const sim::NodeDeadError&) {
    lock.release();
    guard.armed = false;
    throw chrys::ThrowSignal{chrys::kThrowNodeDead, node};
  } catch (const sim::SimError&) {
    lock.release();
    guard.armed = false;
    throw chrys::ThrowSignal{chrys::kThrowOutOfMemory, node};
  }
  heap_in_use_ += bytes;
  lock.release();
  guard.armed = false;
  return a;
}

sim::PhysAddr UniformSystem::alloc_global(std::size_t bytes) {
  const std::uint32_t idx = fetch_add_retry(rr_counter_, 1);
  return allocate_with_lock(idx % mem_nodes_, bytes);
}

sim::PhysAddr UniformSystem::alloc_on(sim::NodeId node, std::size_t bytes) {
  return allocate_with_lock(node, bytes);
}

void UniformSystem::free_global(sim::PhysAddr p, std::size_t bytes) {
  m_.free(p, bytes);
  heap_in_use_ -= std::min(heap_in_use_, bytes);
}

std::vector<sim::PhysAddr> UniformSystem::scatter_rows(std::size_t count,
                                                       std::size_t row_bytes) {
  std::vector<sim::PhysAddr> rows;
  rows.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    rows.push_back(alloc_on(static_cast<sim::NodeId>(i % mem_nodes_),
                            row_bytes));
  return rows;
}

}  // namespace bfly::us
