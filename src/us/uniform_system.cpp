#include "us/uniform_system.hpp"

#include <algorithm>
#include <cassert>

namespace bfly::us {

namespace {
constexpr std::uint32_t kStopTid = 0xffffffffu;
// CPU cost of a manager picking up and launching one task beyond the dual
// queue cost itself.
constexpr sim::Time kDispatchOverhead = 15 * sim::kMicrosecond;
// CPU held while searching a free list inside the allocator lock.
constexpr sim::Time kAllocWork = 100 * sim::kMicrosecond;
}  // namespace

UniformSystem::UniformSystem(chrys::Kernel& k, UsConfig cfg)
    : k_(k), m_(k.machine()), cfg_(cfg) {
  procs_ = cfg_.processors == 0 ? m_.nodes()
                                : std::min(cfg_.processors, m_.nodes());
  mem_nodes_ = cfg_.memory_nodes == 0
                   ? m_.nodes()
                   : std::min(cfg_.memory_nodes, m_.nodes());
}

UniformSystem::~UniformSystem() = default;

sim::Time UniformSystem::run_main(std::function<void()> main) {
  k_.create_process(
      0,
      [this, body = std::move(main)] {
        initialize();
        body();
        terminate();
      },
      "us-main");
  return m_.run();
}

void UniformSystem::initialize() {
  assert(!initialized_);
  initialized_ = true;
  work_queue_ = k_.make_dual_queue();
  k_.give_to_system(work_queue_);  // shared by all managers

  // Shared-heap metadata lives on node 0 (a mild hot spot, as on the real
  // system).
  outstanding_ = m_.alloc(0, 8);
  m_.poke<std::uint32_t>(outstanding_, 0);
  rr_counter_ = m_.alloc(0, 8);
  m_.poke<std::uint32_t>(rr_counter_, 0);
  serial_lock_cell_ = m_.alloc(0, 8);
  m_.poke<std::uint32_t>(serial_lock_cell_, 0);
  node_lock_cell_.resize(mem_nodes_);
  for (std::uint32_t n = 0; n < mem_nodes_; ++n) {
    node_lock_cell_[n] = m_.alloc(n, 8);
    m_.poke<std::uint32_t>(node_lock_cell_[n], 0);
  }

  managers_.assign(procs_, chrys::kNoObject);
  if (!cfg_.tree_init) {
    // Historical behaviour: the initializing process creates every manager
    // serially — startup is linear in P (the paper's Amdahl lesson; the
    // Rochester "faster initialization" fix is tree_init below).
    for (std::uint32_t w = 0; w < procs_; ++w) {
      managers_[w] = k_.create_process(
          w, [this, w] { manager_loop(w); }, "us-mgr" + std::to_string(w));
    }
  } else {
    // Fan-out tree: manager w creates managers 2w+1 and 2w+2 before
    // entering its loop.  The local part of creation parallelizes; the
    // serialized template section remains (and still limits speedup).
    start_manager_tree(0);
  }
}

void UniformSystem::start_manager_tree(std::uint32_t w) {
  managers_[w] = k_.create_process(
      w,
      [this, w] {
        for (std::uint32_t c = 2 * w + 1; c <= 2 * w + 2; ++c)
          if (c < procs_) start_manager_tree(c);
        manager_loop(w);
      },
      "us-mgr" + std::to_string(w));
}

void UniformSystem::terminate() {
  for (std::uint32_t w = 0; w < procs_; ++w) k_.dq_enqueue(work_queue_, kStopTid);
}

void UniformSystem::manager_loop(std::uint32_t worker) {
  const sim::NodeId node = k_.self().node();
  while (true) {
    const std::uint32_t tid = k_.dq_dequeue(work_queue_);
    if (tid == kStopTid) break;
    m_.charge(kDispatchOverhead);
    TaskCtx ctx{*this, k_, m_, worker, node, table_[tid].arg};
    // A task that throws must not take its manager down with it — the
    // processor would silently drop out of the crowd.  Trap, count, move on.
    try {
      table_[tid].fn(ctx);
    } catch (const chrys::ThrowSignal&) {
      ++tasks_faulted_;
    }
    ++tasks_run_;
    // Completion: last task out signals the waiter, if any.
    if (m_.fetch_add_u32(outstanding_, 0xffffffffu) == 1 &&
        waiter_proc_ != chrys::kNoObject) {
      waiter_proc_ = chrys::kNoObject;
      k_.event_post(idle_event_, 0);
    }
  }
}

void UniformSystem::enqueue_descriptor(std::uint32_t tid) {
  k_.dq_enqueue(work_queue_, tid);
}

void UniformSystem::gen_task(TaskFn fn, std::uint32_t arg) {
  table_.push_back(TaskRec{std::move(fn), arg});
  const auto tid = static_cast<std::uint32_t>(table_.size() - 1);
  (void)m_.fetch_add_u32(outstanding_, 1);
  enqueue_descriptor(tid);
}

void UniformSystem::gen_on_index(std::uint32_t lo, std::uint32_t hi,
                                 TaskFn fn) {
  if (lo >= hi) return;
  // One shared TaskRec; the per-index argument rides in the descriptor's
  // low bits via distinct records (kept simple: one record per index, the
  // closure is shared).
  (void)m_.fetch_add_u32(outstanding_, hi - lo);
  for (std::uint32_t i = lo; i < hi; ++i) {
    table_.push_back(TaskRec{fn, i});
    enqueue_descriptor(static_cast<std::uint32_t>(table_.size() - 1));
  }
}

void UniformSystem::wait_idle() {
  chrys::Process& p = k_.self();
  if (m_.read<std::uint32_t>(outstanding_) == 0) return;
  idle_event_ = k_.make_event(p.oid());
  waiter_proc_ = p.oid();
  // Re-check: the last task may have completed while we created the event.
  if (m_.read<std::uint32_t>(outstanding_) == 0) {
    if (waiter_proc_ != chrys::kNoObject) {
      // No manager claimed the post: nothing outstanding, just clean up.
      waiter_proc_ = chrys::kNoObject;
      k_.delete_object(idle_event_);
      idle_event_ = chrys::kNoObject;
      return;
    }
    // A manager posted already; fall through and consume it.
  }
  (void)k_.event_wait(idle_event_);
  k_.delete_object(idle_event_);
  idle_event_ = chrys::kNoObject;
}

void UniformSystem::for_all(std::uint32_t lo, std::uint32_t hi, TaskFn fn) {
  gen_on_index(lo, hi, std::move(fn));
  wait_idle();
}

// --- Shared memory ---------------------------------------------------------------

sim::PhysAddr UniformSystem::allocate_with_lock(sim::NodeId node,
                                                std::size_t bytes) {
  const sim::PhysAddr cell = cfg_.parallel_allocator
                                 ? node_lock_cell_[node % mem_nodes_]
                                 : serial_lock_cell_;
  chrys::SpinLock lock(m_, cell);
  lock.acquire();
  m_.charge(kAllocWork);
  // Ceiling check and bookkeeping must be adjacent (no yields between),
  // so concurrent allocators on different nodes cannot both squeeze under
  // the 16 MB limit.
  if (heap_in_use_ + bytes > cfg_.heap_limit) {
    lock.release();
    throw chrys::ThrowSignal{chrys::kThrowOutOfMemory,
                             static_cast<std::uint32_t>(bytes)};
  }
  sim::PhysAddr a;
  try {
    a = m_.alloc(node, bytes);
  } catch (const sim::SimError&) {
    lock.release();
    throw chrys::ThrowSignal{chrys::kThrowOutOfMemory, node};
  }
  heap_in_use_ += bytes;
  lock.release();
  return a;
}

sim::PhysAddr UniformSystem::alloc_global(std::size_t bytes) {
  const std::uint32_t idx = m_.fetch_add_u32(rr_counter_, 1);
  return allocate_with_lock(idx % mem_nodes_, bytes);
}

sim::PhysAddr UniformSystem::alloc_on(sim::NodeId node, std::size_t bytes) {
  return allocate_with_lock(node, bytes);
}

void UniformSystem::free_global(sim::PhysAddr p, std::size_t bytes) {
  m_.free(p, bytes);
  heap_in_use_ -= std::min(heap_in_use_, bytes);
}

std::vector<sim::PhysAddr> UniformSystem::scatter_rows(std::size_t count,
                                                       std::size_t row_bytes) {
  std::vector<sim::PhysAddr> rows;
  rows.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    rows.push_back(alloc_on(static_cast<sim::NodeId>(i % mem_nodes_),
                            row_bytes));
  return rows;
}

}  // namespace bfly::us
