#include "sync/counter.hpp"

#include <string>

namespace bfly::sync {

// --- CentralCounter --------------------------------------------------------

CentralCounter::CentralCounter(sim::Machine& m, sim::NodeId home,
                               const std::string& label)
    : m_(m) {
  cell_ = m_.alloc(home, 8);
  m_.poke<std::uint32_t>(cell_, 0);
  m_.label_memory(cell_, 8, label);
}

std::uint32_t CentralCounter::add(std::uint32_t delta) {
  return m_.fetch_add_u32(cell_, delta);
}

std::uint32_t CentralCounter::read() { return m_.read<std::uint32_t>(cell_); }

std::uint32_t CentralCounter::peek_total() {
  return m_.peek<std::uint32_t>(cell_);
}

void CentralCounter::poke_adjust(std::int32_t delta) {
  const std::uint32_t v = m_.peek<std::uint32_t>(cell_);
  m_.poke<std::uint32_t>(cell_, v + static_cast<std::uint32_t>(delta));
}

// --- DistributedCounter ----------------------------------------------------

DistributedCounter::DistributedCounter(
    sim::Machine& m, const std::vector<sim::NodeId>& cell_nodes,
    const std::string& label)
    : m_(m) {
  cells_.reserve(cell_nodes.size());
  dead_.assign(cell_nodes.size(), 0);
  for (std::uint32_t i = 0; i < cell_nodes.size(); ++i) {
    // A node already dead at construction still gets a (useless) cell — on
    // node 0, so probes fail cleanly rather than faulting the allocator.
    const sim::NodeId home = m_.node_alive(cell_nodes[i]) ? cell_nodes[i] : 0;
    const sim::PhysAddr c = m_.alloc(home, 8);
    m_.poke<std::uint32_t>(c, 0);
    m_.label_memory(c, 8, label + "[" + std::to_string(i) + "]");
    cells_.push_back(c);
    node_slot_.emplace(cell_nodes[i], i);  // first mapping wins
  }
}

std::uint32_t DistributedCounter::slot_of(sim::NodeId n) const {
  const auto it = node_slot_.find(n);
  if (it != node_slot_.end()) return it->second;
  return n % static_cast<std::uint32_t>(cells_.size());
}

void DistributedCounter::fold(std::uint32_t i) {
  if (dead_[i]) return;
  folded_ += m_.peek<std::uint32_t>(cells_[i]);
  m_.poke<std::uint32_t>(cells_[i], 0);
  dead_[i] = 1;
}

std::uint32_t DistributedCounter::add(std::uint32_t delta) {
  const std::uint32_t start = slot_of(m_.current_node());
  const auto n = static_cast<std::uint32_t>(cells_.size());
  for (std::uint32_t k = 0; k < n; ++k) {
    const std::uint32_t i = (start + k) % n;
    if (dead_[i]) continue;
    try {
      (void)m_.fetch_add_u32(cells_[i], delta);
      m_.observe_release(sim::chan_of(cells_[0]));
      return kUnknown;
    } catch (const sim::NodeDeadError&) {
      // Cell's home died since we mapped it: retire it and spill to the
      // next live cell.  (MemoryFaultError — transient — propagates; the
      // caller's retry policy owns that.)
      fold(i);
    }
  }
  // Every cell's home is dead; the count still has to survive.
  folded_ += delta;
  return kUnknown;
}

std::uint32_t DistributedCounter::read() {
  std::uint32_t total = folded_;
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    if (dead_[i]) continue;
    try {
      total += m_.read<std::uint32_t>(cells_[i]);
    } catch (const sim::NodeDeadError&) {
      fold(i);  // self-healing: a death we never heard about
      total += m_.peek<std::uint32_t>(cells_[i]);  // folded to 0; harmless
    }
  }
  m_.observe_acquire(sim::chan_of(cells_[0]));
  return total;
}

std::uint32_t DistributedCounter::peek_total() {
  std::uint32_t total = folded_;
  for (std::uint32_t i = 0; i < cells_.size(); ++i)
    if (!dead_[i]) total += m_.peek<std::uint32_t>(cells_[i]);
  return total;
}

void DistributedCounter::poke_adjust(std::int32_t delta) {
  folded_ += static_cast<std::uint32_t>(delta);
}

void DistributedCounter::excise(sim::NodeId n) {
  for (std::uint32_t i = 0; i < cells_.size(); ++i)
    if (cells_[i].node == n) fold(i);
}

}  // namespace bfly::sync
