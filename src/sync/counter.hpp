// Idle/outstanding-work counters: the 1988 single hot word vs per-node
// distributed cells with aggregated reads.
//
// The Uniform System tracks outstanding tasks in one shared counter on node
// 0: every generation increments it, every completion decrements it, and on
// a big machine that cell becomes the hottest word in the program — each of
// N managers keeps an atomic add in flight, so the home module serializes
// the whole crowd (the paper's memory-contention lesson applied to the US's
// own bookkeeping).
//
// DistributedCounter splits the count into one cell per participating node.
// Adds hit the caller's *own* cell — local, contention-free, O(1) — at the
// price of an inexact read: the true value is the modular sum over all
// cells, which read() computes with a charged scan.  That trade is exactly
// right for idle detection, where the only interesting question is "is the
// sum zero", polled rarely.
//
// The interface mirrors how us::UniformSystem actually uses its counter,
// including the fault-recovery warts: host-side peeks for crash handlers,
// an owed-decrement adjustment, and excision of dead nodes' cells (their
// last value folds into a host-side accumulator so the count survives the
// node).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::sync {

/// Which counter an idle-tracking subsystem should build.
enum class CounterKind : std::uint8_t {
  kAuto,         ///< follow MachineConfig::sync_strategy
  kCentral,      ///< one shared cell (1988 behaviour)
  kDistributed,  ///< per-node cells + aggregating read
};

class IdleCounter {
 public:
  /// Returned by add() when the counter cannot cheaply report the previous
  /// global value (distributed adds are local by design).
  static constexpr std::uint32_t kUnknown = 0xffffffffu;

  virtual ~IdleCounter() = default;

  /// True if add() returns the exact previous global value — i.e. a single
  /// decrementer can detect "I took it to zero" without a read().
  virtual bool exact() const = 0;

  /// Atomically add `delta` (mod 2^32; pass 0xffffffffu to decrement) from
  /// the calling fiber.  Returns the previous global value when exact(),
  /// kUnknown otherwise.  Charged.
  virtual std::uint32_t add(std::uint32_t delta) = 0;

  /// Charged read of the global value (a scan, for distributed counters).
  /// Never returns a false zero while decrements-only traffic is in flight;
  /// may transiently over-read during a scan.
  virtual std::uint32_t read() = 0;

  /// Host-side (untimed) snapshot — for crash handlers, which act on behalf
  /// of dead nodes and must not charge simulated time.
  virtual std::uint32_t peek_total() = 0;

  /// Host-side adjustment (e.g. applying a dead manager's owed decrement).
  virtual void poke_adjust(std::int32_t delta) = 0;

  /// Node `n` died: preserve whatever its cell holds and stop touching it.
  virtual void excise(sim::NodeId n) = 0;

  /// The counter's identity channel cell (for hooks and tests).
  virtual sim::PhysAddr cell() const = 0;
};

/// The 1988 counter: one cell, typically on node 0.  Byte-for-byte the
/// allocation and access pattern the Uniform System always had.
class CentralCounter final : public IdleCounter {
 public:
  CentralCounter(sim::Machine& m, sim::NodeId home, const std::string& label);

  bool exact() const override { return true; }
  std::uint32_t add(std::uint32_t delta) override;
  std::uint32_t read() override;
  std::uint32_t peek_total() override;
  void poke_adjust(std::int32_t delta) override;
  void excise(sim::NodeId) override {}  // peeks/pokes work on dead nodes
  sim::PhysAddr cell() const override { return cell_; }

 private:
  sim::Machine& m_;
  sim::PhysAddr cell_;
};

/// One cell per entry of `cell_nodes` (normally the participating
/// processors), each in that node's local memory.  A caller's add lands on
/// the cell mapped to its current node (fallback: node mod #cells, for
/// callers outside the pool).  read() sums the live cells mod 2^32 —
/// individual cells wrap freely (a worker that only ever decrements holds a
/// huge unsigned value); only the sum is meaningful.
///
/// Adds publish a release edge and reads an acquire edge on the identity
/// channel, so the race detector orders task-completion writes before the
/// waiter's post-wait_idle reads.
class DistributedCounter final : public IdleCounter {
 public:
  DistributedCounter(sim::Machine& m, const std::vector<sim::NodeId>& cell_nodes,
                     const std::string& label);

  bool exact() const override { return false; }
  std::uint32_t add(std::uint32_t delta) override;
  std::uint32_t read() override;
  std::uint32_t peek_total() override;
  void poke_adjust(std::int32_t delta) override;
  void excise(sim::NodeId n) override;
  sim::PhysAddr cell() const override { return cells_[0]; }

  std::uint32_t cells() const { return static_cast<std::uint32_t>(cells_.size()); }

 private:
  std::uint32_t slot_of(sim::NodeId n) const;
  // Preserve cell i's value host-side and retire it (its node is dead).
  void fold(std::uint32_t i);

  sim::Machine& m_;
  std::vector<sim::PhysAddr> cells_;
  std::vector<std::uint8_t> dead_;
  std::unordered_map<sim::NodeId, std::uint32_t> node_slot_;
  // Sum of excised cells plus host-side adjustments, mod 2^32.
  std::uint32_t folded_ = 0;
};

}  // namespace bfly::sync
