// MCS queue locks on simulated Butterfly memory (Mellor-Crummey & Scott —
// Scott being the source paper's second author; "Algorithms for Scalable
// Synchronization on Shared-Memory Multiprocessors", TOCS 1991).
//
// The 1988 paper's complaint about busy-waiting is that every probe of a
// spin lock steals memory cycles from the node that owns the lock word.  An
// MCS lock fixes exactly that: contenders enqueue themselves with a single
// atomic swap on the tail word, then spin on a flag in their *own* node's
// memory.  Waiting costs zero switch traffic and zero foreign module
// cycles; a release touches the network once, to hand the lock to the queue
// head.  The lock is FIFO by construction.
//
// Hook contract: identical to chrys::SpinLock.  The lock's identity channel
// is chan_of(tail cell); acquires, releases, and every waiting probe are
// published there, so the moviola wait-for-graph, the analyze lock-order
// lint, and the race detector's HB edges treat an MCS lock exactly like a
// spin lock.  Waiters stay runnable while spinning (they charge time, never
// park), so quiescence-based deadlock detection sees no false deadlocks
// from local-spin parking.
//
// All cross-worker accesses to qnode words go through PNC atomics (swap),
// which both matches the hardware handoff and keeps those words sync cells
// for the race detector; a worker's plain accesses to its own qnode are
// single-threaded by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::sync {

class McsLock {
 public:
  /// `home` hosts the tail word (the only globally shared cell).  Worker
  /// `w` of `worker_nodes` gets its qnode in the local memory of
  /// `worker_nodes[w]` — pass each contender's own node for the zero-
  /// remote-traffic spin the algorithm is about.  `local_probe` is the
  /// local re-check interval while waiting; with `probe_backoff_max` != 0
  /// it doubles per probe up to the cap (bounds host event count for very
  /// long queues; a local probe steals nothing either way).
  McsLock(sim::Machine& m, sim::NodeId home,
          const std::vector<sim::NodeId>& worker_nodes,
          sim::Time local_probe = sim::kMicrosecond,
          sim::Time probe_backoff_max = 0);
  ~McsLock();

  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  /// Acquire / release on behalf of worker `w` (0-based index into the
  /// worker_nodes list).  Must be called from a fiber; the usual pairing
  /// discipline applies.
  void acquire(std::uint32_t w);
  void release(std::uint32_t w);

  /// The lock's identity: the tail word (hook channel = chan_of(tail)).
  sim::PhysAddr tail_cell() const { return tail_; }

  std::uint64_t acquisitions() const { return acquisitions_; }
  /// Local flag re-checks while queued — the MCS analogue of SpinLock's
  /// failed probes, except these hit the waiter's own module.
  std::uint64_t local_spins() const { return local_spins_; }

 private:
  std::uint32_t swap_retry(sim::PhysAddr a, std::uint32_t v);
  std::uint32_t read_retry(sim::PhysAddr a);

  sim::Machine& m_;
  sim::PhysAddr tail_;                  // 0 = free, else worker index + 1
  std::vector<sim::PhysAddr> next_;     // per worker, on the worker's node
  std::vector<sim::PhysAddr> locked_;   // per worker, on the worker's node
  sim::Time local_probe_;
  sim::Time probe_backoff_max_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t local_spins_ = 0;
};

}  // namespace bfly::sync
