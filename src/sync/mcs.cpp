#include "sync/mcs.hpp"

#include <algorithm>
#include <string>

namespace bfly::sync {

McsLock::McsLock(sim::Machine& m, sim::NodeId home,
                 const std::vector<sim::NodeId>& worker_nodes,
                 sim::Time local_probe, sim::Time probe_backoff_max)
    : m_(m),
      local_probe_(local_probe),
      probe_backoff_max_(probe_backoff_max) {
  tail_ = m_.alloc(home, 8);
  m_.poke<std::uint32_t>(tail_, 0);
  m_.label_memory(tail_, 8, "sync.mcs.tail");
  next_.reserve(worker_nodes.size());
  locked_.reserve(worker_nodes.size());
  for (std::size_t w = 0; w < worker_nodes.size(); ++w) {
    // One 8-byte qnode per worker in that worker's local memory: the next
    // pointer and the flag it spins on.
    const sim::PhysAddr q = m_.alloc(worker_nodes[w], 8);
    m_.poke<std::uint32_t>(q, 0);
    m_.poke<std::uint32_t>(sim::PhysAddr{q.node, q.offset + 4}, 0);
    m_.label_memory(q, 8, "sync.mcs.qnode[" + std::to_string(w) + "]");
    next_.push_back(q);
    locked_.push_back(sim::PhysAddr{q.node, q.offset + 4});
  }
}

McsLock::~McsLock() = default;

std::uint32_t McsLock::swap_retry(sim::PhysAddr a, std::uint32_t v) {
  // A transient memory fault aborts the reference before any mutation, so
  // retrying is safe; the PNC retried failed transactions the same way.
  for (;;) {
    try {
      return m_.swap_u32(a, v);
    } catch (const sim::MemoryFaultError&) {
      m_.charge(local_probe_);
    }
  }
}

std::uint32_t McsLock::read_retry(sim::PhysAddr a) {
  for (;;) {
    try {
      return m_.read<std::uint32_t>(a);
    } catch (const sim::MemoryFaultError&) {
      m_.charge(local_probe_);
    }
  }
}

void McsLock::acquire(std::uint32_t w) {
  // Reset my qnode.  Local plain writes: no other worker touches these
  // words except through the atomic link/handoff swaps below.
  m_.write<std::uint32_t>(next_[w], 0);
  m_.write<std::uint32_t>(locked_[w], 1);
  // Enqueue with one atomic swap on the tail — the only switch transaction
  // a contended acquire ever issues.
  const std::uint32_t pred = swap_retry(tail_, w + 1);
  if (pred != 0) {
    // Link into the predecessor, then spin on my *local* flag.  Every probe
    // below is a reference into this node's own module: the holder's node
    // never sees it.
    swap_retry(next_[pred - 1], w + 1);
    sim::Time wait = local_probe_;
    while (read_retry(locked_[w]) != 0) {
      ++local_spins_;
      ++m_.stats().lock_spins;
      m_.observe_spin(sim::chan_of(tail_));
      m_.charge(wait);
      if (probe_backoff_max_ != 0)
        wait = std::min(wait * 2, probe_backoff_max_);
    }
  }
  ++acquisitions_;
  ++m_.stats().lock_acquisitions;
  m_.observe_lock_acquire(sim::chan_of(tail_));
}

void McsLock::release(std::uint32_t w) {
  m_.observe_lock_release(sim::chan_of(tail_));
  std::uint32_t nxt = read_retry(next_[w]);
  if (nxt == 0) {
    // No linked successor.  If the tail still points at us the queue is
    // empty and the CAS frees the lock.
    for (;;) {
      try {
        if (m_.cas_u32(tail_, w + 1, 0) == w + 1) return;
        break;
      } catch (const sim::MemoryFaultError&) {
        m_.charge(local_probe_);
      }
    }
    // A successor swapped the tail but has not linked yet; it is at most
    // one reference away.
    while ((nxt = read_retry(next_[w])) == 0) {
      ++local_spins_;
      ++m_.stats().lock_spins;
      m_.observe_spin(sim::chan_of(tail_));
      m_.charge(local_probe_);
    }
  }
  // Hand the lock across the switch to the queue head: the release path's
  // single remote reference.
  swap_retry(locked_[nxt - 1], 0);
}

}  // namespace bfly::sync
