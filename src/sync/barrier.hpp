// Barriers for large simulated machines: the 1988 centralized counter +
// sense flag, and the scalable sense-reversing combining tree.
//
// CentralBarrier is what Butterfly programs actually did (and what
// us::wait_idle's hot decrement cell amounts to): every arrival fetch-adds
// one counter word, every waiter spins across the switch on one sense word.
// Arrival is serialized by the home module — O(n) — and the spin probes
// steal that module's cycles, which is the paper's own busy-waiting
// complaint scaled up.
//
// TreeBarrier is the combining-tree/MCS-style fix (Mellor-Crummey & Scott,
// TOCS 1991): workers arrive in groups of `arity` at scattered per-subtree
// counter cells; the last arriver of each group carries the arrival one
// level up.  Waiters spin on a sense flag in their *own* node's memory, and
// the release fans back down the same tree — O(arity * log_arity n) remote
// references on the critical path, zero remote spin traffic.
//
// Both publish release edges on arrival and acquire edges on departure
// (plus observe_spin probes while waiting) on the barrier's identity
// channel, so the race detector orders cross-phase data accesses and the
// moviola detector can name a wedged barrier.  Sense reversal means no
// flag resets: waiters alternate the value they wait for each episode.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::sync {

class CentralBarrier {
 public:
  /// Counter and sense words live on `home` (the hot spot).  `probe` is the
  /// (remote) sense re-check interval; with `probe_backoff_max` != 0 it
  /// doubles per probe up to the cap.
  CentralBarrier(sim::Machine& m, sim::NodeId home, std::uint32_t workers,
                 sim::Time probe = 5 * sim::kMicrosecond,
                 sim::Time probe_backoff_max = 0);

  /// Block (spin) worker `w` until all workers have arrived.
  void arrive(std::uint32_t w);

  /// The barrier's identity channel cell (the sense word's home).
  sim::PhysAddr sense_cell() const { return sense_; }
  std::uint64_t spins() const { return spins_; }

 private:
  sim::Machine& m_;
  std::uint32_t n_;
  sim::PhysAddr count_;
  sim::PhysAddr sense_;
  sim::Time probe_;
  sim::Time probe_backoff_max_;
  std::vector<std::uint64_t> epoch_;
  std::uint64_t spins_ = 0;
};

class TreeBarrier {
 public:
  /// Worker `w` lives on `worker_nodes[w]`; its sense flag is allocated
  /// there so waiting is a local spin.  Subtree counter cells scatter
  /// across the machine (each on its first worker's node).  `arity` is
  /// clamped to [2, 8].
  TreeBarrier(sim::Machine& m, const std::vector<sim::NodeId>& worker_nodes,
              std::uint32_t arity = 4, sim::Time local_probe = sim::kMicrosecond,
              sim::Time probe_backoff_max = 0);

  void arrive(std::uint32_t w);

  /// Identity channel cell: the root arrival counter.
  sim::PhysAddr root_cell() const { return tree_.back()[0].count; }
  std::uint64_t local_spins() const { return local_spins_; }
  std::uint32_t levels() const { return static_cast<std::uint32_t>(tree_.size()); }

 private:
  struct TreeNode {
    sim::PhysAddr count;
    std::vector<sim::PhysAddr> reps;  // child representatives (levels >= 1)
    std::uint32_t fanin = 0;
  };

  std::uint32_t fetch_add_retry(sim::PhysAddr a, std::uint32_t d);
  std::uint32_t swap_retry(sim::PhysAddr a, std::uint32_t v);
  std::uint32_t read_retry(sim::PhysAddr a);

  sim::Machine& m_;
  std::uint32_t arity_;
  sim::Time local_probe_;
  sim::Time probe_backoff_max_;
  std::vector<std::vector<TreeNode>> tree_;  // [level][group]
  std::vector<sim::PhysAddr> flag_;          // per worker, on its own node
  std::vector<std::uint64_t> epoch_;
  std::uint64_t local_spins_ = 0;
};

}  // namespace bfly::sync
