#include "sync/barrier.hpp"

#include <algorithm>
#include <string>

namespace bfly::sync {

// --- CentralBarrier --------------------------------------------------------

CentralBarrier::CentralBarrier(sim::Machine& m, sim::NodeId home,
                               std::uint32_t workers, sim::Time probe,
                               sim::Time probe_backoff_max)
    : m_(m),
      n_(workers),
      probe_(probe),
      probe_backoff_max_(probe_backoff_max),
      epoch_(workers, 0) {
  count_ = m_.alloc(home, 8);
  m_.poke<std::uint32_t>(count_, 0);
  m_.label_memory(count_, 8, "sync.cbar.count");
  sense_ = m_.alloc(home, 8);
  m_.poke<std::uint32_t>(sense_, 0);
  m_.label_memory(sense_, 8, "sync.cbar.sense");
}

void CentralBarrier::arrive(std::uint32_t w) {
  const auto sense = static_cast<std::uint32_t>((++epoch_[w]) & 1);
  m_.observe_release(sim::chan_of(sense_));
  std::uint32_t c;
  for (;;) {
    try {
      c = m_.fetch_add_u32(count_, 1);
      break;
    } catch (const sim::MemoryFaultError&) {
      m_.charge(probe_);
    }
  }
  if (c + 1 == n_) {
    // Last arrival: reset the counter for the next episode *before*
    // flipping the sense word (re-arrivals must see a zero count), then
    // release everyone.
    for (;;) {
      try {
        m_.swap_u32(count_, 0);
        break;
      } catch (const sim::MemoryFaultError&) {
        m_.charge(probe_);
      }
    }
    for (;;) {
      try {
        m_.swap_u32(sense_, sense);
        break;
      } catch (const sim::MemoryFaultError&) {
        m_.charge(probe_);
      }
    }
    ++m_.stats().barrier_episodes;
  } else {
    // Spin across the switch on the shared sense word — every probe holds
    // the home module for a service slot.
    sim::Time wait = probe_;
    for (;;) {
      std::uint32_t s;
      try {
        s = m_.read<std::uint32_t>(sense_);
      } catch (const sim::MemoryFaultError&) {
        s = sense + 1;  // failed probe: not released yet
      }
      if (s == sense) break;
      ++spins_;
      ++m_.stats().lock_spins;
      m_.observe_spin(sim::chan_of(sense_));
      m_.charge(wait);
      if (probe_backoff_max_ != 0) wait = std::min(wait * 2, probe_backoff_max_);
    }
  }
  m_.observe_acquire(sim::chan_of(sense_));
}

// --- TreeBarrier -----------------------------------------------------------

TreeBarrier::TreeBarrier(sim::Machine& m,
                         const std::vector<sim::NodeId>& worker_nodes,
                         std::uint32_t arity, sim::Time local_probe,
                         sim::Time probe_backoff_max)
    : m_(m),
      arity_(std::min(8u, std::max(2u, arity))),
      local_probe_(local_probe),
      probe_backoff_max_(probe_backoff_max),
      epoch_(worker_nodes.size(), 0) {
  const auto workers = static_cast<std::uint32_t>(worker_nodes.size());
  // Per-worker sense flags in each worker's own memory.
  flag_.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    const sim::PhysAddr f = m_.alloc(worker_nodes[w], 8);
    m_.poke<std::uint32_t>(f, 0);
    m_.label_memory(f, 8, "sync.tbar.flag[" + std::to_string(w) + "]");
    flag_.push_back(f);
  }
  // Arrival tree: level 0 groups `arity` workers; each level above groups
  // `arity` lower groups, down to a single root.  A group's cells live on
  // the node of its first worker, which scatters the per-subtree hot words
  // across the machine.
  std::uint32_t span = arity_;           // workers covered per group
  std::uint32_t prev = workers;          // children at this level
  for (;;) {
    const std::uint32_t groups = (prev + arity_ - 1) / arity_;
    std::vector<TreeNode> level(groups);
    for (std::uint32_t g = 0; g < groups; ++g) {
      TreeNode& nd = level[g];
      nd.fanin = std::min(arity_, prev - g * arity_);
      const std::uint32_t first = g * span;
      const sim::NodeId home = worker_nodes[std::min(first, workers - 1)];
      nd.count = m_.alloc(home, 8);
      m_.poke<std::uint32_t>(nd.count, 0);
      m_.label_memory(nd.count, 8,
                      "sync.tbar.count[" + std::to_string(tree_.size()) + "." +
                          std::to_string(g) + "]");
      if (!tree_.empty()) {
        // Internal node: record which worker represented each child group.
        nd.reps.reserve(nd.fanin);
        for (std::uint32_t s = 0; s < nd.fanin; ++s) {
          const sim::PhysAddr r = m_.alloc(home, 8);
          m_.poke<std::uint32_t>(r, 0);
          nd.reps.push_back(r);
        }
      }
    }
    tree_.push_back(std::move(level));
    if (groups == 1) break;
    prev = groups;
    span *= arity_;
  }
}

std::uint32_t TreeBarrier::fetch_add_retry(sim::PhysAddr a, std::uint32_t d) {
  for (;;) {
    try {
      return m_.fetch_add_u32(a, d);
    } catch (const sim::MemoryFaultError&) {
      m_.charge(local_probe_);
    }
  }
}

std::uint32_t TreeBarrier::swap_retry(sim::PhysAddr a, std::uint32_t v) {
  for (;;) {
    try {
      return m_.swap_u32(a, v);
    } catch (const sim::MemoryFaultError&) {
      m_.charge(local_probe_);
    }
  }
}

std::uint32_t TreeBarrier::read_retry(sim::PhysAddr a) {
  for (;;) {
    try {
      return m_.read<std::uint32_t>(a);
    } catch (const sim::MemoryFaultError&) {
      m_.charge(local_probe_);
    }
  }
}

void TreeBarrier::arrive(std::uint32_t w) {
  const auto sense = static_cast<std::uint32_t>((++epoch_[w]) & 1);
  const std::uint64_t chan = sim::chan_of(root_cell());
  m_.observe_release(chan);
  // Climb: while we are the last arrival of our group, carry the arrival a
  // level up; remember every node we closed — we own its release.
  struct Owned {
    std::uint32_t level;
    std::uint32_t group;
  };
  std::vector<Owned> owned;
  owned.reserve(tree_.size());
  std::uint32_t level = 0;
  std::uint32_t group = w / arity_;
  std::uint32_t slot = w % arity_;
  bool root_winner = false;
  for (;;) {
    TreeNode& nd = tree_[level][group];
    if (level > 0) swap_retry(nd.reps[slot], w + 1);
    const std::uint32_t c = fetch_add_retry(nd.count, 1);
    if (c + 1 < nd.fanin) break;  // someone is still below: wait for release
    owned.push_back({level, group});
    if (level + 1 == tree_.size()) {
      root_winner = true;  // the machine-wide last arrival
      break;
    }
    slot = group % arity_;
    group /= arity_;
    ++level;
  }
  if (root_winner) {
    // Nobody wakes the machine-wide winner, so nobody advances its flag;
    // bring it to the episode's sense here or the *next* episode's spin
    // would see the stale value already matching and sail through.
    swap_retry(flag_[w], sense);
  } else {
    // Spin on my own node's flag: zero switch traffic while waiting.
    sim::Time wait = local_probe_;
    while (read_retry(flag_[w]) != sense) {
      ++local_spins_;
      ++m_.stats().lock_spins;
      m_.observe_spin(chan);
      m_.charge(wait);
      if (probe_backoff_max_ != 0) wait = std::min(wait * 2, probe_backoff_max_);
    }
  }
  // Release wave: reset and wake every node we closed, top-down.  Each
  // woken representative resumes here and releases its own subtree, so the
  // wakeup fans out with O(arity) remote writes per level per releaser.
  for (auto it = owned.rbegin(); it != owned.rend(); ++it) {
    TreeNode& nd = tree_[it->level][it->group];
    swap_retry(nd.count, 0);  // next episode's arrivals must see zero
    if (it->level == 0) {
      const std::uint32_t base = it->group * arity_;
      for (std::uint32_t i = 0; i < nd.fanin; ++i) {
        const std::uint32_t x = base + i;
        if (x != w) swap_retry(flag_[x], sense);
      }
    } else {
      for (std::uint32_t s = 0; s < nd.fanin; ++s) {
        const std::uint32_t r = read_retry(nd.reps[s]);
        if (r != 0 && r - 1 != w) swap_retry(flag_[r - 1], sense);
      }
    }
  }
  if (root_winner) ++m_.stats().barrier_episodes;
  m_.observe_acquire(chan);
}

}  // namespace bfly::sync
