// Static family topologies for SMP (LeBlanc, HICSS'88).
//
// An SMP process family is connected according to an arbitrary static
// topology fixed at creation: each member may communicate with its parent,
// its children, and the siblings the topology names.  The constructors
// below cover the shapes the Rochester packages used (NET's lines,
// cylinders and tori; SMP's trees and rings) plus fully-connected for
// small families.
#pragma once

#include <cstdint>
#include <vector>

namespace bfly::smp {

class Topology {
 public:
  explicit Topology(std::uint32_t n) : adj_(n) {}

  std::uint32_t size() const { return static_cast<std::uint32_t>(adj_.size()); }

  /// Declare an undirected communication edge.
  void add_edge(std::uint32_t a, std::uint32_t b) {
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }

  bool connected(std::uint32_t a, std::uint32_t b) const {
    for (std::uint32_t x : adj_[a])
      if (x == b) return true;
    return false;
  }

  const std::vector<std::uint32_t>& neighbors(std::uint32_t m) const {
    return adj_[m];
  }

  // --- Standard shapes ---------------------------------------------------

  static Topology line(std::uint32_t n) {
    Topology t(n);
    for (std::uint32_t i = 0; i + 1 < n; ++i) t.add_edge(i, i + 1);
    return t;
  }

  static Topology ring(std::uint32_t n) {
    Topology t = line(n);
    if (n > 2) t.add_edge(n - 1, 0);
    return t;
  }

  /// k-ary tree in heap order: children of i are k*i+1 .. k*i+k.
  static Topology tree(std::uint32_t n, std::uint32_t arity = 2) {
    Topology t(n);
    for (std::uint32_t i = 0; i < n; ++i)
      for (std::uint32_t c = arity * i + 1; c <= arity * i + arity && c < n;
           ++c)
        t.add_edge(i, c);
    return t;
  }

  /// rows x cols mesh; wrap makes a cylinder (wrap_cols) or torus (both).
  static Topology mesh(std::uint32_t rows, std::uint32_t cols,
                       bool wrap_rows = false, bool wrap_cols = false) {
    Topology t(rows * cols);
    auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
    for (std::uint32_t r = 0; r < rows; ++r) {
      for (std::uint32_t c = 0; c < cols; ++c) {
        if (c + 1 < cols) t.add_edge(id(r, c), id(r, c + 1));
        else if (wrap_cols && cols > 2) t.add_edge(id(r, c), id(r, 0));
        if (r + 1 < rows) t.add_edge(id(r, c), id(r + 1, c));
        else if (wrap_rows && rows > 2) t.add_edge(id(r, c), id(0, c));
      }
    }
    return t;
  }

  /// Star: member 0 connected to everyone (the Gaussian-elimination shape:
  /// a coordinator scattering rows and gathering results).
  static Topology star(std::uint32_t n) {
    Topology t(n);
    for (std::uint32_t i = 1; i < n; ++i) t.add_edge(0, i);
    return t;
  }

  static Topology complete(std::uint32_t n) {
    Topology t(n);
    for (std::uint32_t i = 0; i < n; ++i)
      for (std::uint32_t j = i + 1; j < n; ++j) t.add_edge(i, j);
    return t;
  }

  /// Heap-order tree helpers (also used by families built on tree()).
  static std::uint32_t tree_parent(std::uint32_t i, std::uint32_t arity = 2) {
    return i == 0 ? 0 : (i - 1) / arity;
  }

 private:
  std::vector<std::vector<std::uint32_t>> adj_;
};

}  // namespace bfly::smp
