// SMP: Structured Message Passing (Section 3.2; LeBlanc, Gafter & Ohkami,
// BPR 8).
//
// SMP supports the dynamic construction of process families: hierarchical
// collections of heavyweight processes communicating through asynchronous
// messages, connected according to an arbitrary static topology.  Processes
// are allocated to processors by a fixed algorithm (base_node + index mod
// nodes) — the paper notes this "can lead to an imbalance in processor
// load".  Message buffers must be mapped into the sender's scarce segmented
// address space; the optional SAR cache delays unmaps to amortize that
// millisecond-class cost.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "chrysalis/kernel.hpp"
#include "smp/sar_cache.hpp"
#include "smp/topology.hpp"

namespace bfly::smp {

class Family;

struct Message {
  std::uint32_t from = 0;
  std::uint32_t tag = 0;
  std::vector<std::uint8_t> payload;

  template <typename T>
  T as() const {
    T v{};
    std::memcpy(&v, payload.data(), std::min(sizeof(T), payload.size()));
    return v;
  }
};

struct FamilyOptions {
  /// Member i runs on node (base_node + i) mod nodes.
  sim::NodeId base_node = 0;
  /// Channel buffers each member may keep mapped (0 = no SAR cache: every
  /// message pays map + unmap).  The default is the realistic segment
  /// budget: 256 SARs minus code/stack/heap segments.  A family member
  /// with more live channels than this thrashes the cache — the paper's
  /// "must map its buffers in and out dynamically".
  std::uint32_t sar_cache_capacity = 200;
};

/// A member's view of its family; passed to the member body and valid for
/// the body's lifetime.  All methods must be called from the member's own
/// process.
class Member {
 public:
  std::uint32_t index() const { return index_; }
  std::uint32_t size() const;
  sim::NodeId node() const { return node_; }
  Family& family() { return fam_; }

  /// Asynchronous send to a topology neighbor.  Throws
  /// ThrowSignal{kThrowNotConnected} otherwise.
  void send(std::uint32_t dest, std::uint32_t tag, const void* data,
            std::size_t len);
  template <typename T>
  void send_value(std::uint32_t dest, std::uint32_t tag, const T& v) {
    send(dest, tag, &v, sizeof(T));
  }

  /// Blocking receive (any neighbor, FIFO arrival order).
  Message receive();
  bool try_receive(Message* out);

  const std::vector<std::uint32_t>& neighbors() const;
  /// Heap-order helpers for tree-shaped families.
  std::uint32_t parent(std::uint32_t arity = 2) const {
    return Topology::tree_parent(index_, arity);
  }
  std::vector<std::uint32_t> children(std::uint32_t arity = 2) const;

  SarCache& sar_cache() { return cache_; }

 private:
  friend class Family;
  Member(Family& f, std::uint32_t index, sim::NodeId node,
         std::uint32_t cache_capacity);

  Family& fam_;
  std::uint32_t index_;
  sim::NodeId node_;
  chrys::Oid mailbox_ = chrys::kNoObject;
  SarCache cache_;
};

using MemberBody = std::function<void(Member&)>;

class Family {
 public:
  /// Create the family; must be called from a Chrysalis process (the
  /// creator pays the per-process creation costs serially).
  Family(chrys::Kernel& k, Topology topo, MemberBody body,
         FamilyOptions opt = {});
  ~Family();

  Family(const Family&) = delete;
  Family& operator=(const Family&) = delete;

  std::uint32_t size() const { return topo_.size(); }
  const Topology& topology() const { return topo_; }
  chrys::Kernel& kernel() { return k_; }

  /// Block the creator until every member body has returned.
  void join();

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  friend class Member;
  struct MsgRec {
    std::uint32_t from = 0;
    std::uint32_t tag = 0;
    sim::PhysAddr buf{};
    std::uint32_t len = 0;
    bool in_use = false;
  };

  std::uint32_t put_record(MsgRec rec);
  MsgRec take_record(std::uint32_t id);

  chrys::Kernel& k_;
  sim::Machine& m_;
  Topology topo_;
  FamilyOptions opt_;
  std::vector<std::unique_ptr<Member>> members_;
  std::deque<MsgRec> records_;
  std::vector<std::uint32_t> record_free_;
  chrys::Oid done_queue_ = chrys::kNoObject;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace bfly::smp
