#include "smp/family.hpp"

#include <cassert>

namespace bfly::smp {

namespace {
// Fixed marshalling overhead per message beyond data movement.
constexpr sim::Time kSendOverhead = 80 * sim::kMicrosecond;
constexpr sim::Time kReceiveOverhead = 60 * sim::kMicrosecond;
}  // namespace

// --- Member -----------------------------------------------------------------

Member::Member(Family& f, std::uint32_t index, sim::NodeId node,
               std::uint32_t cache_capacity)
    : fam_(f), index_(index), node_(node),
      cache_(f.kernel().machine(), cache_capacity) {}

std::uint32_t Member::size() const { return fam_.size(); }

const std::vector<std::uint32_t>& Member::neighbors() const {
  return fam_.topo_.neighbors(index_);
}

std::vector<std::uint32_t> Member::children(std::uint32_t arity) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t c = arity * index_ + 1;
       c <= arity * index_ + arity && c < fam_.size(); ++c)
    out.push_back(c);
  return out;
}

void Member::send(std::uint32_t dest, std::uint32_t tag, const void* data,
                  std::size_t len) {
  if (!fam_.topo_.connected(index_, dest))
    throw chrys::ThrowSignal{chrys::kThrowNotConnected, dest};
  chrys::Kernel& k = fam_.k_;
  sim::Machine& m = fam_.m_;
  sim::TraceSpan span(m, "smp", "send", dest);

  // Map the channel buffer (SAR cache decides the real cost).
  cache_.access((static_cast<std::uint64_t>(index_) << 32) | dest);
  m.charge(kSendOverhead);

  // The message body lands in a buffer on the receiver's node.
  Member& rcv = *fam_.members_[dest];
  Family::MsgRec rec;
  rec.from = index_;
  rec.tag = tag;
  rec.len = static_cast<std::uint32_t>(len);
  if (len > 0) {
    rec.buf = m.alloc(rcv.node_, len);
    m.label_memory(rec.buf, len,
                   "SMP.msg[" + std::to_string(index_) + "->" +
                       std::to_string(dest) + "]");
    m.block_write(rec.buf, data, len);
  }
  const std::uint32_t id = fam_.put_record(rec);
  k.dq_enqueue(rcv.mailbox_, id);
  ++fam_.messages_sent_;
  fam_.bytes_sent_ += len;
}

Message Member::receive() {
  chrys::Kernel& k = fam_.k_;
  sim::Machine& m = fam_.m_;
  sim::TraceSpan span(m, "smp", "recv", index_);
  const std::uint32_t id = k.dq_dequeue(mailbox_);
  Family::MsgRec rec = fam_.take_record(id);
  m.charge(kReceiveOverhead);
  Message msg;
  msg.from = rec.from;
  msg.tag = rec.tag;
  msg.payload.resize(rec.len);
  if (rec.len > 0) {
    // Receiver maps the buffer too, then pulls it to local memory.
    cache_.access((static_cast<std::uint64_t>(rec.from) << 32) | index_);
    m.block_read(msg.payload.data(), rec.buf, rec.len);
    m.free(rec.buf, rec.len);
  }
  return msg;
}

bool Member::try_receive(Message* out) {
  chrys::Kernel& k = fam_.k_;
  std::uint32_t id = 0;
  if (!k.dq_try_dequeue(mailbox_, &id)) return false;
  Family::MsgRec rec = fam_.take_record(id);
  fam_.m_.charge(kReceiveOverhead);
  out->from = rec.from;
  out->tag = rec.tag;
  out->payload.resize(rec.len);
  if (rec.len > 0) {
    cache_.access((static_cast<std::uint64_t>(rec.from) << 32) | index_);
    fam_.m_.block_read(out->payload.data(), rec.buf, rec.len);
    fam_.m_.free(rec.buf, rec.len);
  }
  return true;
}

// --- Family ------------------------------------------------------------------

Family::Family(chrys::Kernel& k, Topology topo, MemberBody body,
               FamilyOptions opt)
    : k_(k), m_(k.machine()), topo_(topo), opt_(opt) {
  const std::uint32_t n = topo_.size();
  done_queue_ = k_.make_dual_queue();
  members_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const sim::NodeId node = (opt_.base_node + i) % m_.nodes();
    members_.emplace_back(
        new Member(*this, i, node, opt_.sar_cache_capacity));
  }
  // Mailboxes exist before any member runs (members may send immediately).
  for (auto& mem : members_) mem->mailbox_ = k_.make_dual_queue();
  for (std::uint32_t i = 0; i < n; ++i) {
    Member* mem = members_[i].get();
    k_.create_process(
        mem->node_,
        [this, mem, body] {
          body(*mem);
          mem->cache_.flush();
          k_.dq_enqueue(done_queue_, mem->index());
        },
        "smp-" + std::to_string(i));
  }
}

Family::~Family() = default;

void Family::join() {
  for (std::uint32_t i = 0; i < size(); ++i) (void)k_.dq_dequeue(done_queue_);
}

std::uint32_t Family::put_record(MsgRec rec) {
  rec.in_use = true;
  if (!record_free_.empty()) {
    const std::uint32_t id = record_free_.back();
    record_free_.pop_back();
    records_[id] = rec;
    return id;
  }
  records_.push_back(rec);
  return static_cast<std::uint32_t>(records_.size() - 1);
}

Family::MsgRec Family::take_record(std::uint32_t id) {
  MsgRec rec = records_[id];
  assert(rec.in_use);
  records_[id].in_use = false;
  records_[id].len = 0;
  record_free_.push_back(id);
  return rec;
}

}  // namespace bfly::smp
