// The SMP SAR cache (Section 3.2).
//
// An SMP process with many communication channels cannot keep every
// channel's buffer mapped: SARs are scarce.  Mapping or unmapping costs
// over a millisecond, so SMP "incorporates an optional SAR cache that
// delays unmap operations as long as possible, in hopes of avoiding a
// subsequent map".  This is that cache: an LRU over channel buffer
// mappings with a fixed SAR budget.  A hit is free; a miss charges one map
// (plus one unmap when a victim must be evicted).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/machine.hpp"

namespace bfly::smp {

class SarCache {
 public:
  /// `capacity` is the number of channel buffers that may stay mapped.
  /// capacity 0 disables caching: every access pays map + unmap.
  SarCache(sim::Machine& m, std::uint32_t capacity)
      : m_(m), capacity_(capacity) {}

  /// Touch `channel` before using its buffer; charges the calling fiber
  /// for whatever SAR traffic is needed.
  void access(std::uint64_t channel) {
    const sim::Time map_cost = m_.config().sar_map_ns;
    if (capacity_ == 0) {
      m_.charge(2 * map_cost);  // map now, unmap immediately after use
      misses_++;
      return;
    }
    auto it = index_.find(channel);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh
      hits_++;
      return;
    }
    misses_++;
    sim::Time cost = map_cost;
    if (lru_.size() >= capacity_) {
      index_.erase(lru_.back());
      lru_.pop_back();
      cost += map_cost;  // evicting unmaps the victim
      evictions_++;
    }
    lru_.push_front(channel);
    index_[channel] = lru_.begin();
    m_.charge(cost);
  }

  /// Drop every mapping (e.g. before the process exits), charging unmaps.
  void flush() {
    if (!lru_.empty()) m_.charge(lru_.size() * m_.config().sar_map_ns);
    lru_.clear();
    index_.clear();
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  sim::Machine& m_;
  std::uint32_t capacity_;
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> index_;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

}  // namespace bfly::smp
