#include "net/mesh.hpp"

#include <cassert>
#include <cstring>

namespace bfly::net {

namespace {
constexpr sim::Time kWriteOverhead = 50 * sim::kMicrosecond;
constexpr sim::Time kReadOverhead = 40 * sim::kMicrosecond;
}  // namespace

// --- Stream -------------------------------------------------------------

Stream::Stream(Mesh& mesh, std::uint32_t id, sim::NodeId reader_node,
               sim::NodeId writer_node)
    : mesh_(mesh), id_(id), reader_node_(reader_node),
      writer_node_(writer_node) {}

void Stream::write(const void* data, std::size_t n) {
  if (n == 0) return;
  sim::Machine& m = mesh_.m_;
  chrys::Kernel& k = mesh_.k_;
  sim::TraceSpan span(m, "net", "stream_write", n);
  m.charge(kWriteOverhead);
  // Release before the chunk body is published: everything the writer did
  // up to here is visible to whoever reads this stream.  (The dual-queue
  // hand-off publishes an edge too; this one names the stream itself.)
  m.observe_release(sim::chan_of_stream(id_));
  // The chunk body lands in a buffer on the reader's node.
  Mesh::Chunk c;
  c.len = static_cast<std::uint32_t>(n);
  c.buf = m.alloc(reader_node_, n);
  mesh_.with_retry([&] { m.block_write(c.buf, data, n); });
  std::uint32_t cid;
  if (!mesh_.chunk_free_.empty()) {
    cid = mesh_.chunk_free_.back();
    mesh_.chunk_free_.pop_back();
    mesh_.chunks_[cid] = c;
  } else {
    mesh_.chunks_.push_back(c);
    cid = static_cast<std::uint32_t>(mesh_.chunks_.size() - 1);
  }
  k.dq_enqueue(chunk_queue_, cid);
  mesh_.bytes_streamed_ += n;
}

void Stream::read(void* out, std::size_t n) {
  sim::Machine& m = mesh_.m_;
  chrys::Kernel& k = mesh_.k_;
  sim::TraceSpan span(m, "net", "stream_read", n);
  m.charge(kReadOverhead);
  auto* dst = static_cast<std::uint8_t*>(out);
  std::size_t got = 0;
  while (got < n) {
    if (!buffered_.empty()) {
      dst[got++] = buffered_.front();
      buffered_.pop_front();
      continue;
    }
    if (broken_)
      throw chrys::ThrowSignal{chrys::kThrowBrokenStream, id_};
    // Pull the next chunk (blocks until a writer supplies one).  With a
    // read timeout configured, each expiry re-checks the writer's liveness:
    // a silently dead writer posts no EOF sentinel, so the reader's own
    // timeout is what turns "blocked forever" into a broken-stream error.
    std::uint32_t cid;
    if (mesh_.opt_.read_timeout > 0) {
      while (!k.dq_dequeue_for(chunk_queue_, mesh_.opt_.read_timeout, &cid)) {
        if (!k.node_alive(writer_node_)) {
          broken_ = true;
          k.dq_enqueue_uncharged(chunk_queue_, Mesh::kEofCid);
          throw chrys::ThrowSignal{chrys::kThrowBrokenStream, id_};
        }
      }
    } else {
      cid = k.dq_dequeue(chunk_queue_);
    }
    if (cid == Mesh::kEofCid) {
      // The writer exited (or its node died) with bytes still owed.  Put
      // the sentinel back so any later read fails the same way, and raise.
      broken_ = true;
      k.dq_enqueue_uncharged(chunk_queue_, Mesh::kEofCid);
      throw chrys::ThrowSignal{chrys::kThrowBrokenStream, id_};
    }
    m.observe_acquire(sim::chan_of_stream(id_));
    Mesh::Chunk c = mesh_.chunks_[cid];
    mesh_.chunk_free_.push_back(cid);
    std::vector<std::uint8_t> tmp(c.len);
    mesh_.with_retry([&] { m.block_read(tmp.data(), c.buf, c.len); });
    m.free(c.buf, c.len);
    buffered_.insert(buffered_.end(), tmp.begin(), tmp.end());
  }
}

// --- Mesh ---------------------------------------------------------------

Mesh::Mesh(chrys::Kernel& k, std::uint32_t rows, std::uint32_t cols,
           ElementBody body, MeshOptions opt)
    : k_(k), m_(k.machine()), opt_(opt), rows_(rows), cols_(cols) {
  done_queue_ = k_.make_dual_queue();
  elements_.resize(static_cast<std::size_t>(rows) * cols);
  auto at = [this](std::uint32_t r, std::uint32_t c) -> Element& {
    return elements_[static_cast<std::size_t>(r) * cols_ + c];
  };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      Element& e = at(r, c);
      e.row_ = r;
      e.col_ = c;
      e.node_ = (opt.base_node + r * cols + c) % m_.nodes();
    }
  }
  // Wire the four directions.  out(East) of (r,c) == in(West) of (r,c+1).
  auto connect = [&](Element& from, Direction df, Element& to, Direction dt) {
    Stream* s = make_stream(to.node_, from.node_);
    from.out_[static_cast<int>(df)] = s;
    to.in_[static_cast<int>(dt)] = s;
  };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      // Eastward and back.
      if (c + 1 < cols) {
        connect(at(r, c), Direction::kEast, at(r, c + 1), Direction::kWest);
        connect(at(r, c + 1), Direction::kWest, at(r, c), Direction::kEast);
      } else if (opt.wrap_cols && cols > 1) {
        connect(at(r, c), Direction::kEast, at(r, 0), Direction::kWest);
        connect(at(r, 0), Direction::kWest, at(r, c), Direction::kEast);
      }
      // Southward and back.
      if (r + 1 < rows) {
        connect(at(r, c), Direction::kSouth, at(r + 1, c), Direction::kNorth);
        connect(at(r + 1, c), Direction::kNorth, at(r, c), Direction::kSouth);
      } else if (opt.wrap_rows && rows > 1) {
        connect(at(r, c), Direction::kSouth, at(0, c), Direction::kNorth);
        connect(at(0, c), Direction::kNorth, at(r, c), Direction::kSouth);
      }
    }
  }
  element_active_.assign(elements_.size(), 1);
  // Crash tier: the mesh hears only broadcast deaths.  Silent kills reach
  // it through excise_node (a failure detector) or a reader's timeout.
  crash_observer_ =
      m_.on_node_crash([this](sim::NodeId n) { handle_node_death(n); });
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    Element* ep = &elements_[i];
    // A kill landing during construction may have excised this element
    // already (the observer above fires mid-charge); and a node found dead
    // at creation time must cost us the element, not the whole mesh.
    if (!element_active_[i]) continue;
    try {
      k_.create_process(
          ep->node_,
          [this, ep, body, i] {
            // A body that throws must still release its obligations: its
            // readers get EOF instead of a silent hang, and join() still
            // gets this element's completion token.
            try {
              body(*ep);
            } catch (const chrys::ThrowSignal&) {
              ++elements_faulted_;
            } catch (const sim::NodeDeadError&) {
              ++elements_faulted_;
            } catch (const sim::NetUnreachableError&) {
              ++elements_faulted_;
            } catch (const sim::MemoryFaultError&) {
              ++elements_faulted_;
            }
            for (Stream* s : ep->out_)
              if (s != nullptr)
                k_.dq_enqueue_uncharged(s->chunk_queue_, kEofCid);
            k_.dq_enqueue(done_queue_, 0);
            element_active_[i] = 0;
          },
          "net-" + std::to_string(ep->row_) + "," + std::to_string(ep->col_));
    } catch (const chrys::ThrowSignal& t) {
      if (t.code != chrys::kThrowNodeDead &&
          t.code != chrys::kThrowNetUnreachable)
        throw;
      if (element_active_[i]) element_gone(i);
    }
  }
}

Mesh::~Mesh() {
  if (crash_observer_ != 0) m_.remove_crash_observer(crash_observer_);
}

void Mesh::with_retry(const std::function<void()>& op) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      op();
      return;
    } catch (const sim::MemoryFaultError& e) {
      if (attempt + 1 >= std::max(1u, opt_.retry.attempts)) {
        if (retry_exhausted_) retry_exhausted_(e.node());
        throw;
      }
      m_.charge(opt_.retry.backoff(attempt));
    }
  }
}

void Mesh::excise_node(sim::NodeId n) {
  if (n >= m_.nodes() || m_.node_alive(n)) return;  // never excise the living
  handle_node_death(n);
}

void Mesh::element_gone(std::size_t idx) {
  element_active_[idx] = 0;
  ++elements_lost_;
  Element& e = elements_[idx];
  // The dead element will never write again nor report done; do both on
  // its behalf (uncharged — the PNC's crash handling, not the dead node).
  for (Stream* s : e.out_)
    if (s != nullptr) k_.dq_enqueue_uncharged(s->chunk_queue_, kEofCid);
  k_.dq_enqueue_uncharged(done_queue_, 0);
}

void Mesh::handle_node_death(sim::NodeId n) {
  for (std::size_t i = 0; i < elements_.size(); ++i)
    if (element_active_[i] && elements_[i].node_ == n) element_gone(i);
}

Stream* Mesh::make_stream(sim::NodeId reader_node, sim::NodeId writer_node) {
  auto s = std::unique_ptr<Stream>(
      new Stream(*this, static_cast<std::uint32_t>(streams_.size()),
                 reader_node, writer_node));
  s->chunk_queue_ = k_.make_dual_queue();
  streams_.push_back(std::move(s));
  return streams_.back().get();
}

void Mesh::join() {
  for (std::size_t i = 0; i < elements_.size(); ++i)
    (void)k_.dq_dequeue(done_queue_);
}

}  // namespace bfly::net
