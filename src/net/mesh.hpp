// NET — regular process networks with byte streams (Hinkelman, BPR 5;
// Section 3.2 of the paper).
//
// NET was the first systems package Rochester built: where Chrysalis needed
// over 100 lines of code to create a single process, NET could create a
// whole mesh of processes, including communication connections, in half a
// page.  It builds regular rectangular meshes — lines, rings, cylinders,
// tori — whose elements talk to their neighbours through untyped byte
// streams.
//
// Streams carry raw bytes with no message boundaries: a reader may consume
// half of one write and the first half of the next, exactly like a pipe.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "chrysalis/kernel.hpp"

namespace bfly::net {

class Mesh;

/// One direction on one edge of the mesh: a FIFO byte stream.
class Stream {
 public:
  /// Write `n` bytes (asynchronous; blocks only for the transfer cost).
  /// Throws sim::NodeDeadError if the reader's node has died (the chunk
  /// buffer lives in the reader's memory).
  void write(const void* data, std::size_t n);
  /// Read exactly `n` bytes, blocking until they have all arrived.  If the
  /// writing element exits or its node dies before supplying them, throws
  /// chrys::ThrowSignal{kThrowBrokenStream} instead of blocking forever.
  void read(void* out, std::size_t n);
  /// The writer is gone and no more bytes will ever arrive.
  bool broken() const { return broken_; }
  /// Bytes immediately available.
  std::size_t available() const { return buffered_.size(); }

  template <typename T>
  void write_value(const T& v) {
    write(&v, sizeof(T));
  }
  template <typename T>
  T read_value() {
    T v{};
    read(&v, sizeof(T));
    return v;
  }

 private:
  friend class Mesh;
  Stream(Mesh& mesh, std::uint32_t id, sim::NodeId reader_node,
         sim::NodeId writer_node);

  Mesh& mesh_;
  std::uint32_t id_;
  sim::NodeId reader_node_;
  sim::NodeId writer_node_;
  chrys::Oid chunk_queue_ = chrys::kNoObject;  // dual queue of chunk ids
  std::deque<std::uint8_t> buffered_;          // reader-side reassembly
  bool broken_ = false;                        // EOF sentinel was seen
};

enum class Direction : std::uint8_t { kNorth, kSouth, kWest, kEast };

/// A mesh element's view of its environment.
class Element {
 public:
  std::uint32_t row() const { return row_; }
  std::uint32_t col() const { return col_; }
  sim::NodeId node() const { return node_; }

  /// Outgoing stream toward `d`; nullptr at an unwrapped boundary.
  Stream* out(Direction d) { return out_[static_cast<int>(d)]; }
  /// Incoming stream from `d`; nullptr at an unwrapped boundary.
  Stream* in(Direction d) { return in_[static_cast<int>(d)]; }

 private:
  friend class Mesh;
  std::uint32_t row_ = 0, col_ = 0;
  sim::NodeId node_ = 0;
  Stream* out_[4] = {};
  Stream* in_[4] = {};
};

using ElementBody = std::function<void(Element&)>;

struct MeshOptions {
  bool wrap_rows = false;  ///< torus in the row direction
  bool wrap_cols = false;  ///< cylinder / torus in the column direction
  sim::NodeId base_node = 0;
  /// Bounded retry for the chunk block transfers; a transient memory fault
  /// on a stream is retried with backoff before propagating.
  sim::RetryPolicy retry;
  /// When nonzero, a blocked read re-checks the writer's liveness every
  /// `read_timeout` of simulated time and raises kThrowBrokenStream if the
  /// writer's node is gone — the reader's own failure detection, needed for
  /// silent deaths where no EOF sentinel was ever posted.  0 blocks forever
  /// (and preserves the pre-rescue event stream exactly).
  sim::Time read_timeout = 0;
};

/// Builds the mesh (processes plus all streams) and runs an element body on
/// every process.  Construction is "half a page of code" for the caller:
/// one call.
class Mesh {
 public:
  Mesh(chrys::Kernel& k, std::uint32_t rows, std::uint32_t cols,
       ElementBody body, MeshOptions opt = {});
  ~Mesh();

  Mesh(const Mesh&) = delete;
  Mesh& operator=(const Mesh&) = delete;

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }

  /// Wait for every element body to return — or for its node to die; a
  /// mesh on a faulty machine still joins (degraded, never deadlocked).
  void join();

  std::uint64_t bytes_streamed() const { return bytes_streamed_; }
  /// Elements whose body ended in an uncaught throw (e.g. a broken stream).
  std::uint64_t elements_faulted() const { return elements_faulted_; }
  /// Elements lost outright to node deaths.
  std::uint64_t elements_lost() const { return elements_lost_; }

  /// Excise a node a failure detector has declared dead: readers of its
  /// elements' streams get EOF, join() gets their completion tokens.  Loud
  /// kills arrive here automatically via the crash broadcast; silent kills
  /// need this call (wire it to rescue::Membership::subscribe).  No-op for
  /// a node that is still alive or already excised.
  void excise_node(sim::NodeId n);

  /// Called when a stream transfer exhausts its RetryPolicy, before the
  /// fault propagates (feed to rescue::Membership::denounce).
  void set_retry_exhausted_hook(std::function<void(sim::NodeId)> fn) {
    retry_exhausted_ = std::move(fn);
  }

 private:
  friend class Stream;
  /// Sentinel chunk id: "this stream's writer is gone".  Posted uncharged
  /// on writer exit or node death so a blocked reader errors out instead of
  /// waiting forever; never collides with a real chunk id.
  static constexpr std::uint32_t kEofCid = 0xffffffffu;
  struct Chunk {
    sim::PhysAddr buf{};
    std::uint32_t len = 0;
  };

  Stream* make_stream(sim::NodeId reader_node, sim::NodeId writer_node);
  void element_gone(std::size_t idx);
  void handle_node_death(sim::NodeId n);
  /// Run `op` under the mesh's RetryPolicy: transient memory faults are
  /// retried with backoff; exhaustion fires the hook and rethrows.
  void with_retry(const std::function<void()>& op);

  chrys::Kernel& k_;
  sim::Machine& m_;
  MeshOptions opt_;
  std::uint32_t rows_, cols_;
  std::vector<Element> elements_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::deque<Chunk> chunks_;
  std::vector<std::uint32_t> chunk_free_;
  chrys::Oid done_queue_ = chrys::kNoObject;
  std::uint64_t bytes_streamed_ = 0;
  std::vector<std::uint8_t> element_active_;  // body still owes its streams
  std::uint64_t elements_faulted_ = 0;
  std::uint64_t elements_lost_ = 0;
  std::uint64_t crash_observer_ = 0;
  std::function<void(sim::NodeId)> retry_exhausted_;
};

}  // namespace bfly::net
