// SERVE — replicated Bridge serving with graceful degradation.
//
// The paper's Butterfly was "rarely fully operational", and ROADMAP item 3
// asks for the serving-cluster experiment that follows from that: a block
// store that keeps answering an open-loop client population while nodes die
// mid-run.  Bridge (src/bridge) fail-replies when a stripe's server dies;
// serve turns that honest failure into continued service:
//
//   * N-way replication with hash-interleaved placement: replica r of
//     logical block b of file f lives on server (mix(f,b) + r) mod D, the
//     distributed-memory emulation trick of "Emulating a large memory with
//     a collection of smaller ones" — no directory, any client computes any
//     replica's home.  Reads go to any replica (read-any), writes to all
//     live replicas (write-all).
//   * Epoch-driven excision: when bfly::rescue suspects a node, its
//     replicas are routed around immediately and re-replicated onto
//     surviving servers in the background by a repair worker; the redirect
//     map the repairs build is consulted on every subsequent access.
//   * Per-request deadline budget: every read/write carries a time budget;
//     inside it, failed replicas are retried with deterministic jittered
//     exponential backoff (rescue::RetryPolicy); at its end the caller gets
//     kTimeout, never a hang.
//   * Tail-latency hedging: a read that has waited past a running latency
//     quantile issues a second read to another replica; first reply wins,
//     the loser is abandoned (bridge skips its data moves).  This is the
//     defence against *gray* failure — the slow-but-alive node heartbeats
//     cannot see (sim::FaultPlan::slow).
//   * Admission control: a client that finds a server's queue past
//     queue_limit sheds the request (reject-with-backpressure) instead of
//     piling on, so offered load past saturation degrades p99 instead of
//     collapsing goodput.
//   * Partition tolerance: replicas that are alive but *unreachable* (a
//     FaultPlan partition window, or all switch paths crossing dead cards)
//     are routed around, not repaired — the node is not a corpse and its
//     data will return.  Write-all degrades to majority-quorum: with any
//     unreachable arm, an ack requires commits on a majority of the
//     non-dead replicas, so a client on the minority side of a split gets
//     kNoQuorum instead of a split-brain ack.  Every ack taken with an
//     unreachable arm logs that arm in a dirty log; when the machine's
//     partition heals, the repair worker replays the log through
//     resync_block()'s majority vote, converging the stale side.  With no
//     unreachable arms the legacy any-commit ack is unchanged.
//
// Everything is driven by the config's seeded PRNG plus the deterministic
// engine, so a serving run — retries, hedges, sheds and all — is a pure
// function of (config, plan, program); the Instant Replay harness holds
// with serve enabled (tests/serve/chaos_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bridge/bridge.hpp"
#include "rescue/rescue.hpp"

namespace bfly::serve {

struct ServeConfig {
  /// Replicas per block.  Grounded in the replicant-opera storage-sim
  /// default of 3; must be >= 1 and <= the Bridge server count.
  std::uint32_t replicas = 3;
  /// Per-request time budget: reads and writes return kTimeout rather than
  /// outlive it.  Zero is rejected — a serving layer without deadlines is
  /// just Bridge.
  sim::Time deadline = 400 * sim::kMillisecond;
  /// Retry engine for failed/shed replicas: bounded exponential backoff
  /// with deterministic jitter (attempts, base, cap, jitter).
  rescue::RetryPolicy retry{4, 1 * sim::kMillisecond, 32 * sim::kMillisecond,
                            0.5};
  /// Hedge a read once it has waited past the hedge_quantile of recent
  /// read latencies (floored by hedge_floor).
  bool hedge_reads = true;
  double hedge_quantile = 0.9;
  sim::Time hedge_floor = 30 * sim::kMillisecond;
  /// Ring of recent read latencies the quantile is estimated from, and the
  /// samples required before the estimate is trusted (hedge_floor rules
  /// until then).
  std::uint32_t hedge_window = 64;
  std::uint32_t min_hedge_samples = 8;
  /// Admission control: a server whose queue (incl. the request being
  /// served) is at least this deep sheds the incoming request.
  std::size_t queue_limit = 12;
  /// Seed for the layer's private RNG (replica choice, retry jitter).
  std::uint64_t seed = 0x5e7e5e7eULL;
};

enum class Status {
  kOk,
  kTimeout,    ///< deadline budget exhausted
  kShed,       ///< retries exhausted, every candidate was shedding load
  kNoReplica,  ///< retries exhausted, no live replica could serve
  kNoQuorum,   ///< partition: a majority of non-dead replicas is unreachable
};

/// Host-side counters mirrored into sim::MachineStats (serve_* fields) so
/// benches export them via fault_json().
struct ServeCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t retries = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t sheds = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t rereplications = 0;
  std::uint64_t failed_replicas = 0;  ///< write arms lost to dead servers
  std::uint64_t lost_blocks = 0;      ///< repairs with no surviving replica
  std::uint64_t quorum_rejects = 0;   ///< writes refused on the minority side
  std::uint64_t dirty_logged = 0;     ///< replica arms logged for heal-time fix
  std::uint64_t reconciled = 0;       ///< blocks re-converged after a heal
};

class ReplicatedFs {
 public:
  /// Layer over an existing BridgeFs.  `mem` wires suspicion-driven
  /// excision (may be null: loud kills still excise via the crash
  /// broadcast).  Must be constructed from a Chrysalis process context or
  /// before run(); registers a crash observer it removes on destruction.
  ReplicatedFs(chrys::Kernel& k, bridge::BridgeFs& fs,
               rescue::Membership* mem = nullptr, ServeConfig cfg = {});
  ~ReplicatedFs();

  ReplicatedFs(const ReplicatedFs&) = delete;
  ReplicatedFs& operator=(const ReplicatedFs&) = delete;

  /// Create (or reopen, after a restart) a replicated file.  `max_blocks`
  /// caps the logical block count — repair slots are allocated above it, so
  /// it is a hard limit, not a hint.
  bridge::FileId open(const std::string& name, std::uint32_t max_blocks);

  /// Logical blocks written so far.
  std::uint32_t blocks(bridge::FileId f) const { return nlogical_[f]; }

  /// Replicated block ops with deadline, retries, hedging and admission
  /// control.  kBlockSize bytes move per call.
  Status read(bridge::FileId f, std::uint32_t b, void* out);
  Status write(bridge::FileId f, std::uint32_t b, const void* data);

  // --- Repair ------------------------------------------------------------
  /// Launch the background repair worker on `node` (a Chrysalis process).
  void start_repair(sim::NodeId node);
  /// Ask the worker to exit once its queue drains, then block (on a
  /// Chrysalis process) until it has — the worker reads this object, so a
  /// teardown that outruns it is a use-after-free.  Skips waiting when the
  /// worker's node has been killed.
  void stop_repair();
  /// True when no repair jobs are queued or in progress.
  bool repair_idle() const { return pending_repairs_ == 0; }

  /// Route around a dead node now and queue re-replication of everything it
  /// held.  Wired to rescue::Membership when one is attached; loud kills
  /// arrive automatically via the crash broadcast.  No-op for live nodes.
  void excise_node(sim::NodeId n);

  /// Foreground convergence pass: re-reads every replica of every block of
  /// `f`, votes on the canonical content (majority, ties to the lowest
  /// replica), and rewrites divergent or unreadable replicas.  Returns the
  /// number of replicas rewritten.  This is the restart path: a rebooted
  /// machine reloads Bridge's stable store, but blocks written while a
  /// replica's server was dead are stale there until resync.
  std::uint32_t resync(bridge::FileId f);

  /// One block of resync(): read every live replica, majority-vote the
  /// canonical content (ties to the lowest replica), rewrite divergent
  /// replicas.  Returns replicas rewritten.  This is also the heal-time
  /// reconciliation primitive the dirty log is replayed through.
  std::uint32_t resync_block(bridge::FileId f, std::uint32_t b);

  /// Dirty-log entries awaiting heal-time reconciliation (for tests).
  std::size_t dirty_blocks() const { return dirty_.size(); }

  const ServeCounters& counters() const { return counters_; }
  /// Live replicas of block b (for tests asserting convergence to N).
  std::uint32_t live_replicas(bridge::FileId f, std::uint32_t b) const;
  /// Server index holding replica r of (f, b), redirects applied — lets
  /// benches and tests compute which side of a partition a block's
  /// majority lands on.
  std::uint32_t replica_server(bridge::FileId f, std::uint32_t b,
                               std::uint32_t r) const {
    return server_of_replica(f, b, r);
  }

 private:
  struct RepairJob {
    bridge::FileId file = 0;
    std::uint32_t block = 0;
    std::uint32_t replica = 0;
    std::uint32_t tries = 0;  ///< failed attempts so far (bounded)
  };

  static std::uint64_t mix(std::uint64_t f, std::uint64_t b);
  static std::uint64_t key(bridge::FileId f, std::uint32_t b,
                           std::uint32_t r) {
    return (static_cast<std::uint64_t>(f) << 40) |
           (static_cast<std::uint64_t>(b) << 8) | r;
  }
  /// Physical Bridge block index replica r of (f, b) lives at (redirects
  /// applied).
  std::uint32_t phys_index(bridge::FileId f, std::uint32_t b,
                           std::uint32_t r) const;
  std::uint32_t server_of_replica(bridge::FileId f, std::uint32_t b,
                                  std::uint32_t r) const {
    return fs_.server_of(phys_index(f, b, r));
  }
  bool replica_alive(bridge::FileId f, std::uint32_t b,
                     std::uint32_t r) const {
    return fs_.server_alive(server_of_replica(f, b, r));
  }
  /// Alive *and* the switch can carry a reference from the calling
  /// process's node to the replica's server.  Must run in process context.
  bool replica_reachable(bridge::FileId f, std::uint32_t b,
                         std::uint32_t r) const {
    const std::uint32_t s = server_of_replica(f, b, r);
    return fs_.server_alive(s) &&
           m_.reachable(m_.current_node(), fs_.server_node(s));
  }
  /// Record a successful read latency and return the current hedge
  /// threshold estimate.
  void record_latency(sim::Time t);
  sim::Time hedge_threshold() const;
  void queue_repairs_for_node(sim::NodeId n);
  void queue_repair(bridge::FileId f, std::uint32_t b, std::uint32_t r);
  /// Hand the dirty log to the repair worker (idempotent while queued).
  void queue_reconcile();
  /// Replay the dirty log through resync_block(), oldest key first.
  void reconcile();
  void repair_loop();
  /// Perform one repair job; true if the block is back to full strength or
  /// the job is moot, false if it should be retried later.
  bool do_repair(const RepairJob& j);
  /// Settle an outstanding async arm: abandon it, or drain its raced-in
  /// reply token and free the slot.
  void settle(chrys::Oid dq, std::uint32_t rid);

  chrys::Kernel& k_;
  sim::Machine& m_;
  bridge::BridgeFs& fs_;
  rescue::Membership* mem_ = nullptr;
  ServeConfig cfg_;
  sim::Rng rng_;

  std::vector<std::uint32_t> nlogical_;     // per file: logical blocks
  std::vector<std::uint32_t> max_blocks_;   // per file: logical capacity
  std::vector<std::uint32_t> repair_next_;  // per file: next repair slot
  // (f,b,r) -> physical index, for replicas moved by repair.
  std::unordered_map<std::uint64_t, std::uint32_t> redirect_;
  // (f,b,r) keys acked while the arm was unreachable: the heal-time
  // reconciliation work list.  Replayed in sorted-key order so the
  // reconcile pass is deterministic (Instant Replay holds).
  std::unordered_set<std::uint64_t> dirty_;
  // Blocks (f<<32|b) a resync_block() is scanning right now.  A write
  // landing mid-scan could be outvoted by two stale replicas and reverted
  // after its ack; writers stall until the scan is over instead.
  std::unordered_set<std::uint64_t> resync_busy_;

  // Latency ring for the hedge quantile estimate.
  std::vector<sim::Time> lat_ring_;
  std::uint32_t lat_count_ = 0;
  std::uint32_t lat_idx_ = 0;

  // Repair machinery.
  std::vector<RepairJob> repair_jobs_;      // host-side job slots
  std::vector<std::uint32_t> repair_free_;
  // (f,b,r) keys queued or being repaired — dedups the excise sweep
  // against per-write dead-arm discoveries.
  std::unordered_set<std::uint64_t> repair_inflight_;
  chrys::Oid repair_dq_ = chrys::kNoObject;
  std::uint32_t pending_repairs_ = 0;
  bool repair_running_ = false;
  bool repair_stopping_ = false;
  sim::NodeId repair_node_ = 0;  ///< where the worker runs, for the join
  // Nodes already excised by this layer (the crash broadcast and the
  // failure detector both report loud kills; excise once).
  std::vector<std::uint8_t> excised_;

  bool reconcile_queued_ = false;

  ServeCounters counters_;
  std::uint64_t crash_observer_ = 0;
  std::uint64_t mem_sub_ = 0;
  std::uint64_t heal_observer_ = 0;
};

}  // namespace bfly::serve
