#include "serve/serve.hpp"

#include <algorithm>
#include <cstring>

namespace bfly::serve {

namespace {
constexpr std::uint32_t kNoRid = 0xffffffffu;
constexpr std::uint32_t kStopJob = 0xffffffffu;
constexpr std::uint32_t kReconcileJob = 0xfffffffeu;
constexpr std::uint32_t kNoReplicaIdx = 0xffffffffu;
/// What a shed costs the client: the rejected request's round trip.
constexpr sim::Time kShedCost = 100 * sim::kMicrosecond;
/// Give up re-replicating a block after this many attempts (each with the
/// retry policy's backoff); the block is then counted lost.
constexpr std::uint32_t kRepairMaxTries = 8;
}  // namespace

ReplicatedFs::ReplicatedFs(chrys::Kernel& k, bridge::BridgeFs& fs,
                           rescue::Membership* mem, ServeConfig cfg)
    : k_(k), m_(k.machine()), fs_(fs), mem_(mem), cfg_(cfg),
      rng_(cfg.seed) {
  if (cfg_.replicas == 0 || cfg_.replicas > fs_.servers())
    throw sim::SimError(
        "serve: replicas must be in [1, servers] — each replica needs its "
        "own server");
  if (cfg_.deadline == 0)
    throw sim::SimError(
        "serve: zero deadline — a serving layer without deadlines is just "
        "Bridge; give every request a budget");
  if (cfg_.retry.attempts == 0)
    throw sim::SimError("serve: retry.attempts must be >= 1");
  if (cfg_.hedge_window == 0)
    throw sim::SimError("serve: hedge_window must be >= 1");
  lat_ring_.assign(cfg_.hedge_window, 0);
  excised_.assign(m_.nodes(), 0);
  repair_dq_ = k_.make_dual_queue();
  // Crash tier: loud kills reach us through the machine-check broadcast
  // (after Bridge's own observer, which registered first, fail-replied the
  // dead servers' queues).  Silent kills arrive via the failure detector.
  crash_observer_ =
      m_.on_node_crash([this](sim::NodeId n) { excise_node(n); });
  if (mem_ != nullptr)
    mem_sub_ = mem_->subscribe([this](sim::NodeId n) { excise_node(n); });
  // Partition tier: when a cut heals, replay the dirty log so the stale
  // side converges without waiting for a foreground resync().
  if (m_.faults_possible())
    heal_observer_ = m_.on_partition_heal(
        [this](std::size_t) { queue_reconcile(); });
}

ReplicatedFs::~ReplicatedFs() {
  if (crash_observer_ != 0) m_.remove_crash_observer(crash_observer_);
  if (mem_ != nullptr && mem_sub_ != 0) mem_->unsubscribe(mem_sub_);
  if (heal_observer_ != 0) m_.remove_heal_observer(heal_observer_);
}

std::uint64_t ReplicatedFs::mix(std::uint64_t f, std::uint64_t b) {
  std::uint64_t z = f * 0x9e3779b97f4a7c15ULL + b + 0x632be59bd9b4e019ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint32_t ReplicatedFs::phys_index(bridge::FileId f, std::uint32_t b,
                                       std::uint32_t r) const {
  const auto it = redirect_.find(key(f, b, r));
  if (it != redirect_.end()) return it->second;
  const std::uint32_t d = fs_.servers();
  const auto server = static_cast<std::uint32_t>((mix(f, b) + r) % d);
  // Slot (b*R + r) is unique per (b, r), so the physical index collides
  // with no other replica regardless of which server the hash picked.
  const std::uint32_t slot = b * cfg_.replicas + r;
  return slot * d + server;
}

bridge::FileId ReplicatedFs::open(const std::string& name,
                                  std::uint32_t max_blocks) {
  if (max_blocks == 0)
    throw sim::SimError("serve: max_blocks must be >= 1");
  bridge::FileId f;
  if (!fs_.lookup(name, &f)) f = fs_.create(name);
  while (nlogical_.size() <= f) {
    nlogical_.push_back(0);
    max_blocks_.push_back(0);
    repair_next_.push_back(0);
  }
  max_blocks_[f] = max_blocks;
  // Repair slots live above every slot normal placement can use.
  repair_next_[f] =
      std::max(repair_next_[f], max_blocks * cfg_.replicas);
  // Reopening after a restart: recover the logical length from the
  // physical extent (slot = phys / D, slot < nlogical * R for normal
  // placement; repair slots can only overestimate, so clamp).
  const std::uint32_t physn = fs_.blocks(f);
  if (physn > 0) {
    const std::uint32_t slot_max = (physn - 1) / fs_.servers();
    nlogical_[f] = std::min(
        max_blocks, (slot_max + cfg_.replicas) / cfg_.replicas);
  }
  return f;
}

void ReplicatedFs::record_latency(sim::Time t) {
  lat_ring_[lat_idx_] = t;
  lat_idx_ = (lat_idx_ + 1) % cfg_.hedge_window;
  if (lat_count_ < cfg_.hedge_window) ++lat_count_;
}

sim::Time ReplicatedFs::hedge_threshold() const {
  if (lat_count_ < cfg_.min_hedge_samples) return cfg_.hedge_floor;
  std::vector<sim::Time> v(lat_ring_.begin(), lat_ring_.begin() + lat_count_);
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      cfg_.hedge_quantile * static_cast<double>(v.size() - 1));
  return std::max(cfg_.hedge_floor, v[idx]);
}

void ReplicatedFs::settle(chrys::Oid dq, std::uint32_t rid) {
  if (rid == kNoRid) return;
  if (!fs_.abandon_request(rid)) return;  // in flight; the bridge owns it
  // The reply raced our abandonment in: its token is in the queue (the
  // main loop consumes tokens the moment it sees them, so an outstanding
  // arm's token can only be here).  Drain until we meet it, re-enqueueing
  // tokens that belong to other still-outstanding arms.
  const std::size_t depth = k_.dq_depth(dq);
  std::uint32_t t;
  for (std::size_t i = 0; i <= depth; ++i) {
    if (!k_.dq_try_dequeue_uncharged(dq, &t)) break;
    if (t == rid) {
      fs_.finish_request(rid);
      return;
    }
    k_.dq_enqueue_uncharged(dq, t);
  }
}

Status ReplicatedFs::read(bridge::FileId f, std::uint32_t b, void* out) {
  sim::TraceSpan span(m_, "serve", "read", b);
  ++counters_.reads;
  const sim::Time t0 = m_.now();
  const sim::Time deadline_at = t0 + cfg_.deadline;
  const std::uint32_t r_count = cfg_.replicas;
  const chrys::Oid dq = k_.make_dual_queue();
  std::vector<std::uint8_t> scratch(bridge::kBlockSize);  // hedge arm
  const auto start = static_cast<std::uint32_t>(rng_.below(r_count));
  Status give_up = Status::kNoReplica;

  for (std::uint32_t attempt = 0; attempt < cfg_.retry.max_attempts();
       ++attempt) {
    if (attempt > 0) {
      const sim::Time back = cfg_.retry.backoff_jittered(attempt - 1, rng_);
      if (m_.now() + back >= deadline_at) break;  // no budget for a retry
      ++counters_.retries;
      ++m_.stats().serve_retries;
      m_.trace_instant("serve", "retry", attempt);
      k_.delay(back);
    }
    // Candidate scan: primary is the first live, non-shedding replica in
    // rotation order; the hedge candidate is the next one after it.
    std::uint32_t primary_r = kNoReplicaIdx;
    std::uint32_t hedge_r = kNoReplicaIdx;
    bool any_live = false;
    for (std::uint32_t i = 0; i < r_count; ++i) {
      const std::uint32_t r = (start + attempt + i) % r_count;
      if (!replica_alive(f, b, r)) continue;
      // Alive but on the far side of a partition (or behind dead switch
      // hardware): read-any means any *reachable* replica will do.
      if (!replica_reachable(f, b, r)) continue;
      any_live = true;
      if (primary_r == kNoReplicaIdx) {
        const std::uint32_t s = server_of_replica(f, b, r);
        if (fs_.queue_depth(s) >= cfg_.queue_limit) {
          ++counters_.sheds;
          ++m_.stats().serve_sheds;
          m_.trace_instant("serve", "shed", s);
          m_.charge(kShedCost);
          continue;
        }
        primary_r = r;
      } else if (server_of_replica(f, b, r) !=
                 server_of_replica(f, b, primary_r)) {
        hedge_r = r;
        break;
      }
    }
    if (primary_r == kNoReplicaIdx) {
      give_up = any_live ? Status::kShed : Status::kNoReplica;
      continue;
    }

    const std::uint32_t prid =
        fs_.submit_read(f, phys_index(f, b, primary_r), out, dq);
    std::uint32_t hrid = kNoRid;
    bool primary_out = true;
    bool hedge_out = false;
    const sim::Time hedge_at =
        (cfg_.hedge_reads && hedge_r != kNoReplicaIdx)
            ? m_.now() + hedge_threshold()
            : 0;
    bool won = false;

    while (primary_out || hedge_out) {
      const sim::Time now = m_.now();
      if (now >= deadline_at) break;
      const bool hedge_pending = hedge_at != 0 && hrid == kNoRid &&
                                 primary_out;
      sim::Time wait_until = deadline_at;
      if (hedge_pending && hedge_at < wait_until) wait_until = hedge_at;
      std::uint32_t tok;
      if (wait_until > now &&
          k_.dq_dequeue_for(dq, wait_until - now, &tok)) {
        const bool failed = fs_.request_failed(tok);
        const bool is_primary = tok == prid;
        if (is_primary)
          primary_out = false;
        else
          hedge_out = false;
        if (failed) {
          fs_.finish_request(tok);
          continue;
        }
        const std::uint32_t wr = is_primary ? primary_r : hedge_r;
        const std::uint32_t ws = server_of_replica(f, b, wr);
        if (!is_primary) {
          ++counters_.hedge_wins;
          ++m_.stats().serve_hedge_wins;
          std::memcpy(out, scratch.data(), bridge::kBlockSize);
        }
        fs_.finish_request(tok);
        try {
          // The block travels back across the switch.
          m_.access_words(sim::PhysAddr{fs_.server_node(ws), 0},
                          bridge::kBlockSize / 4 / 8);
        } catch (const sim::NodeDeadError&) {
          // The server died between its reply and our data pull — the
          // block died with it.  Treat it exactly like a fail-reply: the
          // other arm (or the next attempt) can still win.
          continue;
        } catch (const sim::NetUnreachableError&) {
          // A partition window opened between the reply and the pull.
          // Same recovery: let the other arm or the next rotation try.
          continue;
        }
        won = true;
        break;
      }
      if (hedge_pending && m_.now() >= hedge_at && m_.now() < deadline_at) {
        hrid = fs_.submit_read(f, phys_index(f, b, hedge_r),
                               scratch.data(), dq);
        hedge_out = true;
        ++counters_.hedges;
        ++m_.stats().serve_hedges;
        m_.trace_instant("serve", "hedge", b);
        continue;
      }
      break;  // deadline
    }

    if (won) {
      if (primary_out) settle(dq, prid);
      if (hedge_out) settle(dq, hrid);
      fs_.release_reply_queue(dq);
      record_latency(m_.now() - t0);
      return Status::kOk;
    }
    if (m_.now() >= deadline_at) {
      if (primary_out) settle(dq, prid);
      if (hedge_out) settle(dq, hrid);
      ++counters_.timeouts;
      ++m_.stats().serve_timeouts;
      m_.trace_instant("serve", "timeout", b);
      fs_.release_reply_queue(dq);
      return Status::kTimeout;
    }
    // Every issued arm fail-replied (its server died): rotate replicas.
    give_up = Status::kNoReplica;
  }
  fs_.release_reply_queue(dq);
  return give_up;
}

Status ReplicatedFs::write(bridge::FileId f, std::uint32_t b,
                           const void* data) {
  if (b >= max_blocks_[f])
    throw sim::SimError("serve: write past max_blocks — repair slots live "
                        "above the declared capacity");
  sim::TraceSpan span(m_, "serve", "write", b);
  ++counters_.writes;
  // A write racing a resync_block() scan of the same block can be outvoted
  // by the replicas read before it landed and silently reverted — an acked
  // write lost.  Stall until the scan is done; reconciliation is rare and
  // short, and a stale *read* during it is already allowed by read-any.
  const std::uint64_t fb =
      (static_cast<std::uint64_t>(f) << 32) | b;
  while (resync_busy_.count(fb) != 0) k_.delay(1 * sim::kMillisecond);
  const sim::Time deadline_at = m_.now() + cfg_.deadline;
  if (b >= nlogical_[f]) nlogical_[f] = b + 1;
  const std::uint32_t r_count = cfg_.replicas;
  const chrys::Oid dq = k_.make_dual_queue();
  std::vector<std::uint8_t> need(r_count, 1);
  // Per-arm fate: dead arms shrink the quorum denominator (their server is
  // a corpse; repair relocates them), unreachable arms arm the quorum rule
  // (their server will return; the dirty log reconverges them at heal).
  std::vector<std::uint8_t> dead_arm(r_count, 0);
  std::vector<std::uint8_t> unreach_arm(r_count, 0);
  std::vector<std::uint8_t> committed_arm(r_count, 0);
  std::uint32_t committed = 0;
  bool any_shed_last = false;

  // An ack with any unreachable arm needs commits on a majority of the
  // non-dead replicas — the side of the split holding fewer than half of a
  // block's replicas must refuse, or a heal faces two acked histories.
  // With no unreachable arm the legacy any-commit ack stands unchanged.
  const auto decide = [&](Status on_none) -> Status {
    std::uint32_t dead = 0, unreach = 0;
    for (std::uint32_t r = 0; r < r_count; ++r) {
      dead += dead_arm[r];
      unreach += unreach_arm[r];
    }
    if (unreach == 0) return committed > 0 ? Status::kOk : on_none;
    const auto log_dirty = [&](const std::vector<std::uint8_t>& arms) {
      for (std::uint32_t r = 0; r < r_count; ++r) {
        if (!arms[r]) continue;
        if (dirty_.insert(key(f, b, r)).second) {
          ++counters_.dirty_logged;
          ++m_.stats().serve_dirty_logged;
        }
      }
    };
    const std::uint32_t quorum = (r_count - dead) / 2 + 1;
    if (committed < quorum) {
      // Refused — but any arm that *did* commit is now a rogue replica
      // carrying unacked content.  Log it so the heal's majority vote
      // reverts it; without this a post-heal read-any could surface a
      // write the client was told failed.
      if (committed > 0) log_dirty(committed_arm);
      ++counters_.quorum_rejects;
      ++m_.stats().serve_quorum_rejects;
      m_.trace_instant("serve", "no_quorum", b);
      return Status::kNoQuorum;
    }
    log_dirty(unreach_arm);
    return Status::kOk;
  };

  for (std::uint32_t attempt = 0; attempt < cfg_.retry.max_attempts();
       ++attempt) {
    if (attempt > 0) {
      const sim::Time back = cfg_.retry.backoff_jittered(attempt - 1, rng_);
      if (m_.now() + back >= deadline_at) break;
      ++counters_.retries;
      ++m_.stats().serve_retries;
      m_.trace_instant("serve", "retry", attempt);
      k_.delay(back);
    }
    // Write-all: one arm per live replica still needing the block.
    std::vector<std::uint32_t> rids;
    std::vector<std::uint32_t> rid_rep;
    any_shed_last = false;
    for (std::uint32_t r = 0; r < r_count; ++r) {
      if (!need[r]) continue;
      if (!replica_alive(f, b, r)) {
        ++counters_.failed_replicas;
        queue_repair(f, b, r);
        need[r] = 0;
        dead_arm[r] = 1;
        continue;
      }
      if (!replica_reachable(f, b, r)) {
        // Alive across a partition: no repair (the replica is not lost)
        // and no charged attempts against a cut we already know about —
        // the arm goes to the quorum rule and, on ack, the dirty log.
        need[r] = 0;
        unreach_arm[r] = 1;
        continue;
      }
      const std::uint32_t s = server_of_replica(f, b, r);
      if (fs_.queue_depth(s) >= cfg_.queue_limit) {
        ++counters_.sheds;
        ++m_.stats().serve_sheds;
        m_.trace_instant("serve", "shed", s);
        m_.charge(kShedCost);
        any_shed_last = true;
        continue;  // still needed next attempt
      }
      rids.push_back(fs_.submit_write(f, phys_index(f, b, r), data, dq));
      rid_rep.push_back(r);
    }

    std::vector<std::uint8_t> outstanding(rids.size(), 1);
    std::size_t left = rids.size();
    bool timed_out = false;
    while (left > 0) {
      const sim::Time now = m_.now();
      if (now >= deadline_at) {
        timed_out = true;
        break;
      }
      std::uint32_t tok;
      if (!k_.dq_dequeue_for(dq, deadline_at - now, &tok)) {
        timed_out = true;
        break;
      }
      for (std::size_t i = 0; i < rids.size(); ++i) {
        if (rids[i] != tok || !outstanding[i]) continue;
        outstanding[i] = 0;
        --left;
        if (fs_.request_failed(tok)) {
          if (fs_.request_unreachable(tok)) {
            // The cut opened mid-request: partition fate, not death —
            // no relocation; reconciliation owns this arm after the heal.
            need[rid_rep[i]] = 0;
            unreach_arm[rid_rep[i]] = 1;
          } else {
            ++counters_.failed_replicas;
            queue_repair(f, b, rid_rep[i]);
            need[rid_rep[i]] = 0;  // its server is dead; repair relocates
            dead_arm[rid_rep[i]] = 1;
          }
        } else {
          need[rid_rep[i]] = 0;
          committed_arm[rid_rep[i]] = 1;
          ++committed;
        }
        fs_.finish_request(tok);
        break;
      }
    }
    if (timed_out) {
      for (std::size_t i = 0; i < rids.size(); ++i)
        if (outstanding[i]) settle(dq, rids[i]);
      ++counters_.timeouts;
      ++m_.stats().serve_timeouts;
      m_.trace_instant("serve", "timeout", b);
      fs_.release_reply_queue(dq);
      // Partial success still serves readers; abandoned arms may or may
      // not have committed — resync() is the converger either way.  Under
      // a partition the quorum rule overrides: no minority-side acks.
      return decide(Status::kTimeout);
    }
    bool done = true;
    for (std::uint32_t r = 0; r < r_count; ++r)
      if (need[r]) done = false;
    if (done) break;
  }
  fs_.release_reply_queue(dq);
  return decide(any_shed_last ? Status::kShed : Status::kNoReplica);
}

// --- Excision & repair ----------------------------------------------------

void ReplicatedFs::excise_node(sim::NodeId n) {
  if (n >= m_.nodes() || m_.node_alive(n)) return;  // never the living
  if (excised_[n]) return;
  excised_[n] = 1;
  m_.trace_instant("serve", "excise", n);
  fs_.excise_node(n);  // no-op if the crash broadcast already did it
  queue_repairs_for_node(n);
}

void ReplicatedFs::queue_repairs_for_node(sim::NodeId n) {
  for (bridge::FileId f = 0; f < nlogical_.size(); ++f) {
    for (std::uint32_t b = 0; b < nlogical_[f]; ++b) {
      for (std::uint32_t r = 0; r < cfg_.replicas; ++r) {
        const std::uint32_t s = server_of_replica(f, b, r);
        if (fs_.server_node(s) == n) queue_repair(f, b, r);
      }
    }
  }
}

void ReplicatedFs::queue_repair(bridge::FileId f, std::uint32_t b,
                                std::uint32_t r) {
  if (!repair_inflight_.insert(key(f, b, r)).second) return;  // queued
  std::uint32_t j;
  if (!repair_free_.empty()) {
    j = repair_free_.back();
    repair_free_.pop_back();
    repair_jobs_[j] = RepairJob{f, b, r, 0};
  } else {
    repair_jobs_.push_back(RepairJob{f, b, r, 0});
    j = static_cast<std::uint32_t>(repair_jobs_.size() - 1);
  }
  ++pending_repairs_;
  // Uncharged: repairs are queued from observer context (node death).
  k_.dq_enqueue_uncharged(repair_dq_, j);
}

void ReplicatedFs::start_repair(sim::NodeId node) {
  if (repair_running_) return;
  repair_running_ = true;
  repair_stopping_ = false;
  repair_node_ = node;
  k_.create_process(node, [this] { repair_loop(); }, "serve-repair");
}

void ReplicatedFs::stop_repair() {
  if (!repair_running_ || repair_stopping_) return;
  repair_stopping_ = true;
  k_.dq_enqueue_uncharged(repair_dq_, kStopJob);
  // Join: the worker reads this object until it exits, so blocking here
  // (callers are on a process) is what makes "call before teardown" safe.
  // A worker whose node was killed never wakes; don't wait for a corpse.
  while (repair_running_ && m_.node_alive(repair_node_))
    k_.delay(1 * sim::kMillisecond);
}

void ReplicatedFs::queue_reconcile() {
  if (dirty_.empty() || reconcile_queued_) return;
  reconcile_queued_ = true;
  ++pending_repairs_;
  // Uncharged: heal observers fire from engine context, not a process.
  k_.dq_enqueue_uncharged(repair_dq_, kReconcileJob);
}

void ReplicatedFs::reconcile() {
  // Sorted keys, one resync_block per distinct (file, block): the replay
  // order is a pure function of the log's contents, so Instant Replay
  // holds across the heal.
  std::vector<std::uint64_t> keys(dirty_.begin(), dirty_.end());
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < keys.size();) {
    const std::uint64_t fb = keys[i] >> 8;
    std::size_t end = i;
    while (end < keys.size() && (keys[end] >> 8) == fb) ++end;
    const auto f = static_cast<bridge::FileId>(fb >> 32);
    const auto b = static_cast<std::uint32_t>(fb & 0xffffffffu);
    bool healed = true;
    try {
      resync_block(f, b);
    } catch (const chrys::ThrowSignal&) {
      // A server died (or a new cut opened) mid-reconcile: keep this
      // block's keys dirty; a later heal or foreground resync converges.
      healed = false;
    }
    if (healed) {
      for (std::size_t kki = i; kki < end; ++kki) dirty_.erase(keys[kki]);
      ++counters_.reconciled;
      ++m_.stats().serve_reconciled;
      m_.trace_instant("serve", "reconcile", b);
    }
    i = end;
  }
}

void ReplicatedFs::repair_loop() {
  while (true) {
    const std::uint32_t j = k_.dq_dequeue(repair_dq_);
    if (j == kStopJob) break;
    if (j == kReconcileJob) {
      reconcile_queued_ = false;
      reconcile();
      --pending_repairs_;
      continue;
    }
    RepairJob job = repair_jobs_[j];
    repair_free_.push_back(j);
    bool settled = false;
    try {
      settled = do_repair(job);
    } catch (const chrys::ThrowSignal&) {
      settled = false;  // a server died under us; retry elsewhere
    }
    if (!settled && job.tries + 1 < kRepairMaxTries) {
      ++job.tries;
      k_.delay(cfg_.retry.backoff(job.tries));
      std::uint32_t nj;
      if (!repair_free_.empty()) {
        nj = repair_free_.back();
        repair_free_.pop_back();
        repair_jobs_[nj] = job;
      } else {
        repair_jobs_.push_back(job);
        nj = static_cast<std::uint32_t>(repair_jobs_.size() - 1);
      }
      k_.dq_enqueue_uncharged(repair_dq_, nj);
      continue;  // still pending; inflight key stays claimed
    }
    if (!settled) {
      ++counters_.lost_blocks;
      m_.trace_instant("serve", "repair_lost", job.block);
    }
    repair_inflight_.erase(key(job.file, job.block, job.replica));
    --pending_repairs_;
  }
  repair_running_ = false;
}

bool ReplicatedFs::do_repair(const RepairJob& j) {
  // A duplicate or raced job whose replica is already reachable is moot.
  if (replica_alive(j.file, j.block, j.replica)) return true;
  sim::TraceSpan span(m_, "serve", "repair", j.block);
  // 1. Read any surviving replica.
  std::vector<std::uint8_t> buf(bridge::kBlockSize);
  bool have = false;
  for (std::uint32_t r2 = 0; r2 < cfg_.replicas && !have; ++r2) {
    if (r2 == j.replica || !replica_alive(j.file, j.block, r2)) continue;
    try {
      have = fs_.read_block_for(j.file, phys_index(j.file, j.block, r2),
                                buf.data(), cfg_.deadline);
    } catch (const chrys::ThrowSignal&) {
      // that server just died too; try the next replica
    }
  }
  if (!have) return false;
  // 2. Place the new copy on the first live server (in hash rotation
  //    order) that holds no other replica of this block.
  const std::uint32_t d = fs_.servers();
  const auto base = static_cast<std::uint32_t>(
      (mix(j.file, j.block) + j.replica) % d);
  for (std::uint32_t i = 1; i < d; ++i) {
    const std::uint32_t t = (base + i) % d;
    if (!fs_.server_alive(t)) continue;
    bool taken = false;
    for (std::uint32_t r2 = 0; r2 < cfg_.replicas; ++r2) {
      if (r2 != j.replica && server_of_replica(j.file, j.block, r2) == t)
        taken = true;
    }
    if (taken) continue;
    const std::uint32_t slot = repair_next_[j.file]++;
    const std::uint32_t phys = slot * d + t;
    try {
      if (!fs_.write_block_for(j.file, phys, buf.data(), cfg_.deadline))
        continue;  // slot wasted, target considered again next try
    } catch (const chrys::ThrowSignal&) {
      continue;
    }
    redirect_[key(j.file, j.block, j.replica)] = phys;
    ++counters_.rereplications;
    ++m_.stats().serve_rereplications;
    m_.trace_instant("serve", "rereplicate", j.block);
    return true;
  }
  return false;
}

std::uint32_t ReplicatedFs::live_replicas(bridge::FileId f,
                                          std::uint32_t b) const {
  std::uint32_t n = 0;
  for (std::uint32_t r = 0; r < cfg_.replicas; ++r)
    if (replica_alive(f, b, r)) ++n;
  return n;
}

std::uint32_t ReplicatedFs::resync_block(bridge::FileId f, std::uint32_t b) {
  // Fence concurrent writers off this block for the whole scan-vote-rewrite
  // pass (see the stall in write()); the guard survives the throws the
  // per-replica try/catches below can let escape.
  const std::uint64_t fb = (static_cast<std::uint64_t>(f) << 32) | b;
  struct BusyGuard {
    std::unordered_set<std::uint64_t>& set;
    std::uint64_t key;
    ~BusyGuard() { set.erase(key); }
  } guard{resync_busy_, fb};
  resync_busy_.insert(fb);
  const std::uint32_t r_count = cfg_.replicas;
  std::uint32_t rewrites = 0;
  std::vector<std::vector<std::uint8_t>> copy(r_count);
  std::vector<std::uint8_t> okr(r_count, 0);
  std::uint32_t have = 0;
  for (std::uint32_t r = 0; r < r_count; ++r) {
    copy[r].assign(bridge::kBlockSize, 0);
    if (!replica_alive(f, b, r)) continue;
    try {
      if (fs_.read_block_for(f, phys_index(f, b, r), copy[r].data(),
                             cfg_.deadline)) {
        okr[r] = 1;
        ++have;
      }
    } catch (const chrys::ThrowSignal&) {
    }
  }
  if (have == 0) {
    ++counters_.lost_blocks;
    return 0;
  }
  // Majority content vote; ties break to the lowest replica index.
  std::uint32_t best = kNoReplicaIdx;
  std::uint32_t best_votes = 0;
  for (std::uint32_t r = 0; r < r_count; ++r) {
    if (!okr[r]) continue;
    std::uint32_t votes = 0;
    for (std::uint32_t r2 = 0; r2 < r_count; ++r2)
      if (okr[r2] && copy[r2] == copy[r]) ++votes;
    if (votes > best_votes) {
      best_votes = votes;
      best = r;
    }
  }
  for (std::uint32_t r = 0; r < r_count; ++r) {
    if (okr[r] && copy[r] == copy[best]) continue;
    if (!replica_alive(f, b, r)) {
      queue_repair(f, b, r);  // relocation is the background path
      continue;
    }
    try {
      if (fs_.write_block_for(f, phys_index(f, b, r), copy[best].data(),
                              cfg_.deadline))
        ++rewrites;
    } catch (const chrys::ThrowSignal&) {
    }
  }
  return rewrites;
}

std::uint32_t ReplicatedFs::resync(bridge::FileId f) {
  sim::TraceSpan span(m_, "serve", "resync", f);
  std::uint32_t rewrites = 0;
  for (std::uint32_t b = 0; b < nlogical_[f]; ++b)
    rewrites += resync_block(f, b);
  return rewrites;
}

}  // namespace bfly::serve
