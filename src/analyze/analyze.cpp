#include "analyze/analyze.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

namespace bfly::analyze {

namespace {

const char* op_name(sim::MemOp op) {
  switch (op) {
    case sim::MemOp::kRead: return "read";
    case sim::MemOp::kWrite: return "write";
    case sim::MemOp::kAtomic: return "atomic";
    case sim::MemOp::kAggregate: return "aggregate";
  }
  return "?";
}

}  // namespace

Analyzer::Analyzer(sim::Machine& m) : Analyzer(m, Options()) {}

Analyzer::Analyzer(sim::Machine& m, Options opt) : m_(m), opt_(opt) {
  m_.set_observer(this);
}

Analyzer::~Analyzer() {
  if (m_.observer() == this) m_.set_observer(nullptr);
}

void Analyzer::join(Clock& into, const Clock& from) {
  if (from.size() > into.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i)
    into[i] = std::max(into[i], from[i]);
}

std::uint32_t Analyzer::actor_of(sim::Fiber* f) {
  auto it = actor_ids_.find(f);
  if (it == actor_ids_.end()) {
    // First sighting of a fiber spawned before we attached: no fork edge
    // is available, so it starts with an empty (all-zero) clock.
    const auto id = static_cast<std::uint32_t>(actors_.size());
    Actor a;
    a.fiber = f;
    a.name = f->name();
    a.clock.assign(id + 1, 0);
    a.clock[id] = 1;
    actors_.push_back(std::move(a));
    actor_ids_.emplace(f, id);
    return id;
  }
  Actor& a = actors_[it->second];
  // Runtimes often name a fiber after spawning it; pick the name up lazily.
  if (a.name != f->name() && !f->name().empty()) a.name = f->name();
  return it->second;
}

void Analyzer::on_spawn(sim::Fiber* parent, sim::Fiber* child) {
  // Resolve the parent first: actor_of may mint an actor, which must not
  // collide with the id we hand the child below.
  const std::uint32_t pid = parent != nullptr ? actor_of(parent) : kNoActor;
  // Always mint a fresh actor: the host may reuse a dead fiber's address.
  const auto id = static_cast<std::uint32_t>(actors_.size());
  Actor a;
  a.fiber = child;
  a.name = child->name();
  a.clock.assign(id + 1, 0);
  if (pid != kNoActor) {
    join(a.clock, actors_[pid].clock);  // fork edge: child sees parent
    Actor& p = actors_[pid];
    ++p.clock[pid];  // parent's later work is a new epoch
  }
  a.clock[id] = 1;
  actors_.push_back(std::move(a));
  actor_ids_[child] = id;
}

void Analyzer::on_free(sim::PhysAddr a, std::size_t bytes) {
  // The allocator will hand this range to unrelated code; stale epochs
  // (and stale labels) must not carry over.
  const std::uint32_t first = a.offset / 4;
  const auto last =
      static_cast<std::uint32_t>((a.offset + bytes + 3) / 4);  // exclusive
  for (std::uint32_t w = first; w < last; ++w)
    shadow_.erase(word_key(a.node, w));
  const std::uint64_t lo = word_key(a.node, a.offset);
  const std::uint64_t hi =
      word_key(a.node, static_cast<std::uint32_t>(a.offset + bytes));
  for (auto it = labels_.lower_bound(lo); it != labels_.end() &&
                                          it->first < hi;)
    it = labels_.erase(it);
}

void Analyzer::on_release(sim::Fiber* f, std::uint64_t chan) {
  if (f == nullptr) return;  // host context has no clock to publish
  const std::uint32_t a = actor_of(f);
  Actor& ac = actors_[a];
  join(channels_[chan], ac.clock);
  ++ac.clock[a];  // work after the release is a new epoch
}

void Analyzer::on_acquire(sim::Fiber* f, std::uint64_t chan) {
  if (f == nullptr) return;
  const std::uint32_t a = actor_of(f);
  auto it = channels_.find(chan);
  if (it != channels_.end()) join(actors_[a].clock, it->second);
}

void Analyzer::sync_word_access(std::uint32_t actor, std::uint64_t chan) {
  // The home module serializes word references, so every access to a
  // synchronization cell is totally ordered: model it as acquire + release
  // on the word's channel.
  Actor& ac = actors_[actor];
  Clock& ch = channels_[chan];
  join(ac.clock, ch);
  join(ch, ac.clock);
  ++ac.clock[actor];
}

void Analyzer::on_access(sim::Fiber* f, sim::NodeId requester, sim::PhysAddr a,
                         std::uint32_t words, sim::MemOp op) {
  const std::uint32_t actor =
      f != nullptr ? actor_of(f) : kNoActor;
  const bool remote = requester != a.node;
  const std::uint32_t first = a.offset / 4;
  for (std::uint32_t i = 0; i < words; ++i) {
    const sim::PhysAddr wa{a.node, (first + i) * 4};
    Shadow& s = shadow_[word_key(a.node, first + i)];
    if (remote)
      ++s.remote_words;
    else
      ++s.local_words;
    if (op == sim::MemOp::kAggregate) continue;  // volume, not an access
    if (actor == kNoActor) continue;             // untracked host context
    if (op == sim::MemOp::kAtomic) {
      s.sync = true;
      sync_word_access(actor, sim::chan_of(wa));
      continue;
    }
    if (s.sync) {
      // Plain access to a synchronization cell (spin-lock release store,
      // monitor unlock): ordered by the module, never a race.
      sync_word_access(actor, sim::chan_of(wa));
      continue;
    }
    check_word(actor, wa, s, op);
  }
}

void Analyzer::check_word(std::uint32_t actor, sim::PhysAddr word_addr,
                          Shadow& s, sim::MemOp op) {
  Actor& ac = actors_[actor];
  const sim::Time now = m_.now();

  if (!s.reported) {
    // Against the last write.
    if (s.wactor != kNoActor && s.wactor != actor &&
        s.wclk > component(ac.clock, s.wactor)) {
      record_race(actor, word_addr, s, op, s.wactor, s.wclk, s.wat,
                  sim::MemOp::kWrite);
    }
    // A write also races with any unordered read.
    if (!s.reported && op == sim::MemOp::kWrite) {
      for (const ReadEpoch& r : s.reads) {
        if (r.actor != actor && r.clk > component(ac.clock, r.actor)) {
          record_race(actor, word_addr, s, op, r.actor, r.clk, r.at,
                      sim::MemOp::kRead);
          break;
        }
      }
    }
  }

  const std::uint64_t myclk = component(ac.clock, actor);
  if (op == sim::MemOp::kRead) {
    for (ReadEpoch& r : s.reads) {
      if (r.actor == actor) {
        r.clk = myclk;
        r.at = now;
        return;
      }
    }
    s.reads.push_back(ReadEpoch{actor, myclk, now});
  } else {
    s.wactor = actor;
    s.wclk = myclk;
    s.wat = now;
    s.reads.clear();
  }
}

void Analyzer::record_race(std::uint32_t actor, sim::PhysAddr word_addr,
                           Shadow& s, sim::MemOp op, std::uint32_t prior,
                           std::uint64_t prior_clk, sim::Time prior_at,
                           sim::MemOp prior_op) {
  s.reported = true;  // one report per word, suppressed or not
  const std::string object = symbolize(word_addr);
  if (suppressed(object)) return;
  ++races_total_;
  if (races_.size() >= opt_.max_races) return;
  RaceReport r;
  r.addr = word_addr;
  r.object = object;
  r.prior_actor = actors_[prior].name.empty()
                      ? "actor#" + std::to_string(prior)
                      : actors_[prior].name;
  r.prior_op = prior_op;
  r.prior_at = prior_at;
  r.prior_clock = prior_clk;
  r.actor = actors_[actor].name.empty() ? "actor#" + std::to_string(actor)
                                        : actors_[actor].name;
  r.op = op;
  r.at = m_.now();
  r.seen_of_prior = component(actors_[actor].clock, prior);
  races_.push_back(std::move(r));
}

bool Analyzer::suppressed(const std::string& object) const {
  for (const std::string& s : suppressions_)
    if (object.find(s) != std::string::npos) return true;
  return false;
}

// --- Lock-order lint ---------------------------------------------------------

void Analyzer::on_lock_acquire(sim::Fiber* f, std::uint64_t lock) {
  if (f == nullptr) return;
  Actor& ac = actors_[actor_of(f)];
  for (const std::uint64_t held : ac.held_locks) {
    if (held == lock) continue;
    auto& out = lock_edges_[held];
    if (std::find(out.begin(), out.end(), lock) == out.end())
      out.push_back(lock);
  }
  ac.held_locks.push_back(lock);
}

void Analyzer::on_lock_release(sim::Fiber* f, std::uint64_t lock) {
  if (f == nullptr) return;
  Actor& ac = actors_[actor_of(f)];
  auto it = std::find(ac.held_locks.rbegin(), ac.held_locks.rend(), lock);
  if (it != ac.held_locks.rend()) ac.held_locks.erase(std::next(it).base());
}

std::vector<LockCycleReport> Analyzer::lock_cycles() const {
  std::vector<LockCycleReport> out;
  std::set<std::vector<std::uint64_t>> seen;  // canonical (rotated) cycles
  std::map<std::uint64_t, int> color;         // 0 white, 1 grey, 2 black
  std::vector<std::uint64_t> path;

  std::function<void(std::uint64_t)> dfs = [&](std::uint64_t u) {
    color[u] = 1;
    path.push_back(u);
    auto eit = lock_edges_.find(u);
    if (eit != lock_edges_.end()) {
      for (const std::uint64_t v : eit->second) {
        if (color[v] == 1) {
          // Back edge: the cycle is the path suffix starting at v.
          auto start = std::find(path.begin(), path.end(), v);
          std::vector<std::uint64_t> cyc(start, path.end());
          // Canonicalize: rotate the smallest lock id to the front.
          auto mn = std::min_element(cyc.begin(), cyc.end());
          std::rotate(cyc.begin(), mn, cyc.end());
          if (seen.insert(cyc).second) {
            LockCycleReport r;
            r.locks = cyc;
            for (const std::uint64_t l : cyc) {
              const sim::PhysAddr a{static_cast<sim::NodeId>(l >> 32),
                                    static_cast<std::uint32_t>(l)};
              r.names.push_back(symbolize(a));
            }
            out.push_back(std::move(r));
          }
        } else if (color[v] == 0) {
          dfs(v);
        }
      }
    }
    color[u] = 2;
    path.pop_back();
  };

  for (const auto& [u, tos] : lock_edges_)
    if (color[u] == 0) dfs(u);
  return out;
}

// --- Hot-word lint -----------------------------------------------------------

std::vector<HotWordReport> Analyzer::hot_words() const {
  std::vector<HotWordReport> out;
  const sim::Time elapsed = m_.now();
  if (elapsed == 0) return out;
  const double service = static_cast<double>(m_.config().module_service_ns);
  for (const auto& [key, s] : shadow_) {
    if (s.remote_words < opt_.hot_min_remote_refs) continue;
    const double occ =
        static_cast<double>(s.remote_words) * service /
        static_cast<double>(elapsed);
    if (occ < opt_.hot_occupancy) continue;
    HotWordReport h;
    h.addr = sim::PhysAddr{static_cast<sim::NodeId>(key >> 32),
                           static_cast<std::uint32_t>(key) * 4};
    h.object = symbolize(h.addr);
    h.remote_words = s.remote_words;
    h.local_words = s.local_words;
    h.occupancy = occ;
    out.push_back(std::move(h));
  }
  std::sort(out.begin(), out.end(),
            [](const HotWordReport& a, const HotWordReport& b) {
              return a.occupancy > b.occupancy;
            });
  return out;
}

// --- Symbolization -----------------------------------------------------------

void Analyzer::on_label(sim::PhysAddr a, std::size_t bytes, std::string name) {
  labels_[word_key(a.node, a.offset)] =
      Label{static_cast<std::uint32_t>(bytes), std::move(name)};
}

std::string Analyzer::symbolize(sim::PhysAddr a) const {
  auto it = labels_.upper_bound(word_key(a.node, a.offset));
  if (it != labels_.begin()) {
    --it;
    const auto node = static_cast<sim::NodeId>(it->first >> 32);
    const auto start = static_cast<std::uint32_t>(it->first);
    if (node == a.node && a.offset < start + it->second.len) {
      if (a.offset == start) return it->second.name;
      return it->second.name + "+" + std::to_string(a.offset - start);
    }
  }
  std::ostringstream os;
  os << "node " << a.node << " +0x" << std::hex << a.offset;
  return os.str();
}

// --- Report ------------------------------------------------------------------

std::string Analyzer::report() const {
  std::ostringstream os;
  os << "bfly::analyze report\n";
  os << "  races: " << races_total_ << "\n";
  for (const RaceReport& r : races_) {
    os << "    RACE on " << r.object << " (node " << r.addr.node << " +0x"
       << std::hex << r.addr.offset << std::dec << ")\n"
       << "      " << op_name(r.prior_op) << " by " << r.prior_actor
       << " at t=" << r.prior_at << " (epoch " << r.prior_clock << ")\n"
       << "      " << op_name(r.op) << " by " << r.actor << " at t=" << r.at
       << " (saw epoch " << r.seen_of_prior << " of prior actor)\n";
  }
  const auto cycles = lock_cycles();
  os << "  lock-order cycles: " << cycles.size() << "\n";
  for (const LockCycleReport& c : cycles) {
    os << "    CYCLE:";
    for (const std::string& n : c.names) os << " " << n;
    os << "\n";
  }
  const auto hot = hot_words();
  os << "  hot words: " << hot.size() << "\n";
  for (const HotWordReport& h : hot) {
    os << "    HOT " << h.object << ": occupancy "
       << static_cast<int>(h.occupancy * 100) << "% (" << h.remote_words
       << " remote / " << h.local_words << " local word refs)\n";
  }
  return os.str();
}

}  // namespace bfly::analyze
