// bfly::analyze — happens-before race detection and contention lints over
// the simulated memory stream.
//
// The Analyzer is a sim::MemObserver: it watches every timed memory
// reference and every synchronization edge the runtimes publish (see
// sim/observe.hpp) and maintains
//
//   * one vector clock per actor (fiber), advanced FastTrack-style:
//     a release joins the actor's clock into the channel and bumps the
//     actor's own component; an acquire joins the channel back;
//   * epoch-style shadow state per 32-bit word — the last write epoch and
//     the set of read epochs not ordered before it;
//   * a lock-acquisition graph (potential-deadlock lint);
//   * per-word local/remote traffic counters (hot-word lint).
//
// Two plain accesses to the same word race when neither happens before the
// other and at least one is a write.  A word ever touched by a PNC atomic
// (fetch_add / fetch_or / test_and_set) becomes a *synchronization cell*:
// the memory module serializes word references, so such a word orders its
// plain accesses too — the detector models each access to it as an
// acquire+release on the word's channel instead of race-checking it.  This
// is exactly the Butterfly idiom: spin-lock releases and monitor unlocks
// are plain stores to a word otherwise managed by test_and_set.
//
// Everything here is host-side and uncharged; attaching an Analyzer leaves
// the simulated run event-identical to a bare one (asserted in
// tests/analyze/uncharged_test.cpp via Instant Replay log equality).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::analyze {

/// One data race: two unordered accesses, at least one a write.
struct RaceReport {
  sim::PhysAddr addr;
  std::string object;      ///< symbolized name, or "node N +0xOFF"
  std::string prior_actor; ///< the access already in shadow state
  sim::MemOp prior_op = sim::MemOp::kRead;
  sim::Time prior_at = 0;
  std::uint64_t prior_clock = 0;  ///< epoch clock of the prior access
  std::string actor;       ///< the access that completed the race
  sim::MemOp op = sim::MemOp::kRead;
  sim::Time at = 0;
  std::uint64_t seen_of_prior = 0;  ///< what `actor` knew of `prior_actor`
};

/// A cycle in the lock-acquisition graph: a potential deadlock even if this
/// run happened to get away with it (complements Moviola's actual-deadlock
/// view).
struct LockCycleReport {
  std::vector<std::uint64_t> locks;  ///< channel ids, in cycle order
  std::vector<std::string> names;    ///< symbolized, parallel to locks
};

/// A word whose remote-reference occupancy of its home module exceeded the
/// threshold — the paper's memory-contention lesson as a diagnostic.
struct HotWordReport {
  sim::PhysAddr addr;
  std::string object;
  std::uint64_t remote_words = 0;
  std::uint64_t local_words = 0;
  double occupancy = 0.0;  ///< remote_words * module_service_ns / elapsed
};

class Analyzer final : public sim::MemObserver {
 public:
  struct Options {
    /// Remote occupancy fraction above which a word is reported hot.
    double hot_occupancy = 0.05;
    /// Ignore words with fewer remote word-references than this.
    std::uint64_t hot_min_remote_refs = 1000;
    /// Stop recording race reports past this many (each word reports at
    /// most once regardless).
    std::size_t max_races = 64;
  };

  /// Attaches to `m` (replacing any previous observer) for its lifetime.
  explicit Analyzer(sim::Machine& m);
  Analyzer(sim::Machine& m, Options opt);
  ~Analyzer() override;

  Analyzer(const Analyzer&) = delete;
  Analyzer& operator=(const Analyzer&) = delete;

  /// Drop race reports whose symbolized object name contains `substring`
  /// (documented suppressions for known-benign races).
  void suppress(std::string substring) {
    suppressions_.push_back(std::move(substring));
  }

  const std::vector<RaceReport>& races() const { return races_; }
  /// Distinct racy words found and not suppressed — counts past max_races
  /// even after races() stops growing.
  std::uint64_t races_total() const { return races_total_; }

  std::vector<LockCycleReport> lock_cycles() const;
  /// Evaluated against the machine's current time.
  std::vector<HotWordReport> hot_words() const;

  /// Human-readable summary of everything found.
  std::string report() const;

  /// Symbolized name for an address ("US.outstanding+0x4" style), falling
  /// back to "node N +0xOFF".
  std::string symbolize(sim::PhysAddr a) const;

  // --- MemObserver ----------------------------------------------------------
  void on_access(sim::Fiber* f, sim::NodeId requester, sim::PhysAddr a,
                 std::uint32_t words, sim::MemOp op) override;
  void on_spawn(sim::Fiber* parent, sim::Fiber* child) override;
  void on_free(sim::PhysAddr a, std::size_t bytes) override;
  void on_release(sim::Fiber* f, std::uint64_t chan) override;
  void on_acquire(sim::Fiber* f, std::uint64_t chan) override;
  void on_lock_acquire(sim::Fiber* f, std::uint64_t lock) override;
  void on_lock_release(sim::Fiber* f, std::uint64_t lock) override;
  void on_label(sim::PhysAddr a, std::size_t bytes, std::string name) override;

 private:
  static constexpr std::uint32_t kNoActor = 0xffffffffu;

  using Clock = std::vector<std::uint64_t>;  // missing entries read as 0

  struct Actor {
    sim::Fiber* fiber = nullptr;
    std::string name;
    Clock clock;  // clock[self] starts at 1
    std::vector<std::uint64_t> held_locks;
  };

  struct ReadEpoch {
    std::uint32_t actor = kNoActor;
    std::uint64_t clk = 0;
    sim::Time at = 0;
  };

  /// Shadow state for one 32-bit word.
  struct Shadow {
    std::uint32_t wactor = kNoActor;  // last write epoch
    std::uint64_t wclk = 0;
    sim::Time wat = 0;
    std::vector<ReadEpoch> reads;  // reads not ordered before a later write
    bool sync = false;      // touched by an atomic: exempt, orders accesses
    bool reported = false;  // one race report per word
    std::uint64_t local_words = 0;
    std::uint64_t remote_words = 0;
  };

  struct Label {
    std::uint32_t len = 0;
    std::string name;
  };

  static std::uint64_t word_key(sim::NodeId node, std::uint32_t word_index) {
    return (static_cast<std::uint64_t>(node) << 32) | word_index;
  }

  std::uint32_t actor_of(sim::Fiber* f);
  static std::uint64_t component(const Clock& c, std::uint32_t i) {
    return i < c.size() ? c[i] : 0;
  }
  static void join(Clock& into, const Clock& from);

  void check_word(std::uint32_t actor, sim::PhysAddr word_addr, Shadow& s,
                  sim::MemOp op);
  void record_race(std::uint32_t actor, sim::PhysAddr word_addr, Shadow& s,
                   sim::MemOp op, std::uint32_t prior, std::uint64_t prior_clk,
                   sim::Time prior_at, sim::MemOp prior_op);
  void sync_word_access(std::uint32_t actor, std::uint64_t chan);
  bool suppressed(const std::string& object) const;

  sim::Machine& m_;
  Options opt_;

  std::vector<Actor> actors_;
  std::unordered_map<sim::Fiber*, std::uint32_t> actor_ids_;
  std::unordered_map<std::uint64_t, Clock> channels_;
  std::unordered_map<std::uint64_t, Shadow> shadow_;
  // Acquisition-graph edges: held -> newly acquired.
  std::map<std::uint64_t, std::vector<std::uint64_t>> lock_edges_;
  // Symbolization: key = (node<<32|offset) of each labelled range start.
  std::map<std::uint64_t, Label> labels_;
  std::vector<std::string> suppressions_;

  std::vector<RaceReport> races_;
  std::uint64_t races_total_ = 0;
};

}  // namespace bfly::analyze
