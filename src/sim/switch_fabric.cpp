#include "sim/switch_fabric.hpp"

#include <algorithm>

namespace bfly::sim {

namespace {
std::uint32_t ceil_log4(std::uint32_t n) {
  std::uint32_t stages = 0;
  std::uint32_t reach = 1;
  while (reach < n) {
    reach *= 4;
    ++stages;
  }
  return std::max<std::uint32_t>(stages, 1);
}
}  // namespace

SwitchFabric::SwitchFabric(const MachineConfig& cfg)
    : nodes_(cfg.nodes),
      stages_(ceil_log4(cfg.nodes)),
      hop_ns_(cfg.switch_hop_ns),
      model_contention_(cfg.model_switch_contention),
      port_service_ns_(cfg.switch_port_service_ns) {
  if (model_contention_) {
    port_busy_.assign(static_cast<std::size_t>(stages_) * nodes_, 0);
  }
}

std::uint32_t SwitchFabric::port_index(std::uint32_t stage, NodeId src,
                                       NodeId dst) const {
  // Destination-tag routing in a 4-ary butterfly: after stage s the packet
  // sits on the wire whose high s+1 base-4 digits come from the destination
  // and whose remaining low digits still come from the source.  Two packets
  // contend at stage s only if they land on the same wire.
  std::uint32_t pos = 0;
  for (std::uint32_t i = 0; i < stages_; ++i) {
    const std::uint32_t shift = 2 * (stages_ - 1 - i);
    const std::uint32_t digit = ((i <= stage ? dst : src) >> shift) & 3u;
    pos |= digit << shift;
  }
  return stage * nodes_ + (pos % nodes_);
}

Time SwitchFabric::route(NodeId src, NodeId dst, Time depart,
                         std::uint32_t words) {
  if (src == dst) return depart;
  if (!model_contention_) return depart + traversal_ns();

  Time t = depart;
  const Time occupancy = port_service_ns_ * std::max<std::uint32_t>(words, 1);
  for (std::uint32_t s = 0; s < stages_; ++s) {
    Time& busy = port_busy_[port_index(s, src, dst)];
    const Time start = std::max(t, busy);
    contention_ns_ += start - t;
    busy = start + occupancy;
    t = start + hop_ns_;
  }
  return t;
}

}  // namespace bfly::sim
