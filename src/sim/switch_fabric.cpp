#include "sim/switch_fabric.hpp"

#include <algorithm>

namespace bfly::sim {

namespace {
std::uint32_t ceil_log4(std::uint32_t n) {
  std::uint32_t stages = 0;
  std::uint32_t reach = 1;
  while (reach < n) {
    reach *= 4;
    ++stages;
  }
  return std::max<std::uint32_t>(stages, 1);
}
}  // namespace

SwitchFabric::SwitchFabric(const MachineConfig& cfg)
    : nodes_(cfg.nodes),
      stages_(ceil_log4(cfg.nodes)),
      reach_(1u << (2 * ceil_log4(cfg.nodes))),
      hop_ns_(cfg.switch_hop_ns),
      model_contention_(cfg.model_switch_contention),
      port_service_ns_(cfg.switch_port_service_ns),
      combining_(cfg.model_switch_contention && cfg.switch_combining) {
  if (model_contention_) {
    port_busy_.assign(static_cast<std::size_t>(stages_) * nodes_, 0);
  }
}

bool SwitchFabric::combine_add(std::uint64_t cell, Time issue, Time* finish) {
  if (!combining_) return false;
  auto it = add_windows_.find(cell);
  if (it == add_windows_.end()) return false;
  AddWindow& w = it->second;
  // The add meets the leader's wait-buffer entry one hop in; past the
  // window the entry is gone and this add must lead a fresh transaction.
  if (issue + hop_ns_ >= w.until) {
    add_windows_.erase(it);
    return false;
  }
  // Combined: the merged operand rides the leader's transaction, and the
  // reply de-combines on the way back down — an uncontended round trip plus
  // one extra hop, no earlier than the previous combiner's reply.
  const Time own = issue + 2 * traversal_ns() + hop_ns_;
  w.finish = std::max(w.finish, own);
  *finish = w.finish;
  ++combined_adds_;
  if (stats_) ++stats_->combined_adds;
  return true;
}

void SwitchFabric::record_add(std::uint64_t cell, Time finish) {
  if (!combining_) return;
  add_windows_[cell] = AddWindow{finish, finish};
}

std::uint32_t SwitchFabric::port_index(std::uint32_t stage, NodeId src,
                                       NodeId dst) const {
  // Destination-tag routing in a 4-ary butterfly: after stage s the packet
  // sits on the wire whose high s+1 base-4 digits come from the destination
  // and whose remaining low digits still come from the source.  Two packets
  // contend at stage s only if they land on the same wire.
  return stage * nodes_ + (wire_at(stage, src, dst) % nodes_);
}

std::uint32_t SwitchFabric::wire_at(std::uint32_t stage, std::uint32_t src,
                                    NodeId dst) const {
  std::uint32_t pos = 0;
  for (std::uint32_t i = 0; i < stages_; ++i) {
    const std::uint32_t shift = 2 * (stages_ - 1 - i);
    const std::uint32_t digit = ((i <= stage ? dst : src) >> shift) & 3u;
    pos |= digit << shift;
  }
  return pos;
}

std::uint32_t SwitchFabric::card_at(std::uint32_t stage,
                                    std::uint32_t wire) const {
  // The 4x4 card at stage s connects the four wires differing only in base-4
  // digit s, so the card's identity is the wire position with digit s
  // removed.  Early-stage cards thus depend on *source* digits (a detour can
  // avoid them); the final stage's card is all destination digits — that
  // column is wired straight into the memory modules and unavoidable.
  const std::uint32_t shift = 2 * (stages_ - 1 - stage);
  const std::uint32_t high = wire >> (shift + 2);
  const std::uint32_t low = wire & ((1u << shift) - 1u);
  return (high << shift) | low;
}

void SwitchFabric::configure_faults(const FaultPlan& plan, Rng* rng) {
  drop_retry_ns_ = plan.drop_retry_ns;
  max_drop_retries_ = std::max(1u, plan.max_drop_retries);
  if (plan.packet_drop_prob <= 0.0 && plan.packet_delay_prob <= 0.0) return;
  fault_rng_ = rng;
  drop_prob_ = plan.packet_drop_prob;
  delay_prob_ = plan.packet_delay_prob;
  delay_ns_ = plan.packet_delay_ns;
}

void SwitchFabric::fail_card(std::uint32_t stage, std::uint32_t card) {
  if (!path_faults_) {
    card_dead_.assign(static_cast<std::size_t>(stages_) * cards(), 0);
    link_dead_.assign(static_cast<std::size_t>(stages_) * reach_, 0);
    path_faults_ = true;
  }
  card_dead_[static_cast<std::size_t>(stage) * cards() + card] = 1;
}

void SwitchFabric::fail_link(std::uint32_t stage, std::uint32_t link) {
  if (!path_faults_) {
    card_dead_.assign(static_cast<std::size_t>(stages_) * cards(), 0);
    link_dead_.assign(static_cast<std::size_t>(stages_) * reach_, 0);
    path_faults_ = true;
  }
  link_dead_[static_cast<std::size_t>(stage) * reach_ + link] = 1;
}

bool SwitchFabric::path_blocked(std::uint32_t vsrc, NodeId dst) const {
  for (std::uint32_t s = 0; s < stages_; ++s) {
    const std::uint32_t wire = wire_at(s, vsrc, dst);
    if (card_dead_[static_cast<std::size_t>(s) * cards() + card_at(s, wire)])
      return true;
    if (link_dead_[static_cast<std::size_t>(s) * reach_ + wire]) return true;
  }
  return false;
}

std::uint32_t SwitchFabric::pick_entry(NodeId src, NodeId dst) const {
  if (!path_blocked(src, dst)) return src;
  // The redundant extra column lets a packet enter the banyan on any input
  // row: scan deterministically for a row whose path to dst is healthy.
  // Only the source digits the banyan actually consults differ between
  // rows, so the scan converges within a handful of probes for any single
  // dead card off the final column.
  for (std::uint32_t d = 1; d < reach_; ++d) {
    const std::uint32_t vsrc = (src + d) % reach_;
    if (!path_blocked(vsrc, dst)) return vsrc;
  }
  return kNoPath;
}

bool SwitchFabric::has_path(NodeId src, NodeId dst) const {
  if (src == dst || !path_faults_) return true;
  return pick_entry(src, dst) != kNoPath;
}

void SwitchFabric::throw_unreachable(NodeId src, NodeId dst,
                                     const char* why) {
  // The PNC burns its full retry budget discovering the black hole; the
  // caller (Machine) charges this to the requester before surfacing the
  // error, so giving up is never cheaper than succeeding.
  throw NetUnreachableError(
      src, dst, why,
      static_cast<Time>(max_drop_retries_) * drop_retry_ns_);
}

Time SwitchFabric::route(NodeId src, NodeId dst, Time depart,
                         std::uint32_t words) {
  if (src == dst) return depart;
  if (fault_rng_ != nullptr) {
    // A dropped packet is retried by the PNC after a timeout; retries can
    // themselves be dropped, so the latency penalty compounds — but the
    // budget is bounded: past max_drop_retries the PNC declares the path
    // unreachable instead of spinning forever as drop_prob -> 1.
    std::uint32_t drops = 0;
    while (drop_prob_ > 0.0 && fault_rng_->uniform() < drop_prob_) {
      ++packets_dropped_;
      depart += drop_retry_ns_;
      if (++drops >= max_drop_retries_) {
        if (stats_ != nullptr) ++stats_->drops_exhausted;
        throw_unreachable(src, dst, "PNC drop-retry budget exhausted");
      }
    }
    if (delay_prob_ > 0.0 && fault_rng_->uniform() < delay_prob_) {
      ++packets_delayed_;
      depart += delay_ns_;
    }
  }
  std::uint32_t entry = src;
  Time detour_ns = 0;
  if (path_faults_) {
    entry = pick_entry(src, dst);
    if (entry == kNoPath)
      throw_unreachable(src, dst, "all paths cross dead switch hardware");
    if (entry != src) {
      // One extra hop through the redundant column to reach the detour row.
      detour_ns = hop_ns_;
      if (stats_ != nullptr) ++stats_->alt_routed;
    }
  }
  if (!model_contention_) return depart + detour_ns + traversal_ns();

  Time t = depart + detour_ns;
  const Time occupancy = port_service_ns_ * std::max<std::uint32_t>(words, 1);
  for (std::uint32_t s = 0; s < stages_; ++s) {
    Time& busy = port_busy_[port_index(s, entry, dst)];
    const Time start = std::max(t, busy);
    contention_ns_ += start - t;
    busy = start + occupancy;
    t = start + hop_ns_;
  }
  return t;
}

}  // namespace bfly::sim
