#include "sim/switch_fabric.hpp"

#include <algorithm>

namespace bfly::sim {

namespace {
std::uint32_t ceil_log4(std::uint32_t n) {
  std::uint32_t stages = 0;
  std::uint32_t reach = 1;
  while (reach < n) {
    reach *= 4;
    ++stages;
  }
  return std::max<std::uint32_t>(stages, 1);
}
}  // namespace

SwitchFabric::SwitchFabric(const MachineConfig& cfg)
    : nodes_(cfg.nodes),
      stages_(ceil_log4(cfg.nodes)),
      hop_ns_(cfg.switch_hop_ns),
      model_contention_(cfg.model_switch_contention),
      port_service_ns_(cfg.switch_port_service_ns) {
  if (model_contention_) {
    port_busy_.assign(static_cast<std::size_t>(stages_) * nodes_, 0);
  }
}

std::uint32_t SwitchFabric::port_index(std::uint32_t stage, NodeId src,
                                       NodeId dst) const {
  // Destination-tag routing in a 4-ary butterfly: after stage s the packet
  // sits on the wire whose high s+1 base-4 digits come from the destination
  // and whose remaining low digits still come from the source.  Two packets
  // contend at stage s only if they land on the same wire.
  std::uint32_t pos = 0;
  for (std::uint32_t i = 0; i < stages_; ++i) {
    const std::uint32_t shift = 2 * (stages_ - 1 - i);
    const std::uint32_t digit = ((i <= stage ? dst : src) >> shift) & 3u;
    pos |= digit << shift;
  }
  return stage * nodes_ + (pos % nodes_);
}

void SwitchFabric::configure_faults(const FaultPlan& plan, Rng* rng) {
  if (plan.packet_drop_prob <= 0.0 && plan.packet_delay_prob <= 0.0) return;
  fault_rng_ = rng;
  drop_prob_ = plan.packet_drop_prob;
  delay_prob_ = plan.packet_delay_prob;
  drop_retry_ns_ = plan.drop_retry_ns;
  delay_ns_ = plan.packet_delay_ns;
}

Time SwitchFabric::route(NodeId src, NodeId dst, Time depart,
                         std::uint32_t words) {
  if (src == dst) return depart;
  if (fault_rng_ != nullptr) {
    // A dropped packet is retried by the PNC after a timeout; retries can
    // themselves be dropped, so the latency penalty compounds.  A delayed
    // packet limps through a congested/flaky switch card once.
    while (drop_prob_ > 0.0 && fault_rng_->uniform() < drop_prob_) {
      ++packets_dropped_;
      depart += drop_retry_ns_;
    }
    if (delay_prob_ > 0.0 && fault_rng_->uniform() < delay_prob_) {
      ++packets_delayed_;
      depart += delay_ns_;
    }
  }
  if (!model_contention_) return depart + traversal_ns();

  Time t = depart;
  const Time occupancy = port_service_ns_ * std::max<std::uint32_t>(words, 1);
  for (std::uint32_t s = 0; s < stages_; ++s) {
    Time& busy = port_busy_[port_index(s, src, dst)];
    const Time start = std::max(t, busy);
    contention_ns_ += start - t;
    busy = start + occupancy;
    t = start + hop_ns_;
  }
  return t;
}

}  // namespace bfly::sim
