// Discrete-event engine.
//
// A single min-heap of (time, sequence, payload) events.  Sequence numbers
// make ordering total and deterministic.  Fibers interleave with the engine:
// an event typically resumes a fiber, which runs until it charges time (and
// schedules its own continuation) or blocks on a synchronization object.
//
// The heap is hand-rolled and the events are typed for host throughput:
//
//   * a *fiber event* carries an opaque payload pointer (Machine passes its
//     FiberCtl*) straight to a registered handler — posting one allocates
//     nothing and dispatching one is an indirect call;
//   * a *closure event* carries a SmallFn, which stores small lambdas
//     inline (see small_fn.hpp) — the std::function-per-event heap
//     allocation of the original engine is gone;
//   * push/pop sift with moves into a hole instead of swapping through
//     priority_queue::top(), which also removes the const_cast the old
//     `std::move(const_cast<Event&>(heap_.top()))` needed.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace bfly::sim {

class Engine {
 public:
  using Action = SmallFn;
  /// Handler for typed fiber events: called as handler(ctx, payload).
  using FiberHandler = void (*)(void* ctx, void* payload);

  Time now() const { return now_; }

  /// Register the handler that dispatches fiber events.  One per engine
  /// (the owning Machine); must be set before the first post_fiber_at.
  void set_fiber_handler(FiberHandler h, void* ctx) {
    fiber_fn_ = h;
    fiber_ctx_ = ctx;
  }

  /// Schedule `fn` at absolute time `t` (>= now).
  void post_at(Time t, Action fn) {
    if (t < now_) t = now_;
    push(Event{t, seq_++, nullptr, std::move(fn)});
  }

  /// Schedule `fn` after a delay.
  void post_in(Time delay, Action fn) { post_at(now_ + delay, std::move(fn)); }

  /// Schedule a fiber event at absolute time `t` (>= now).  `payload` must
  /// be non-null; it is handed verbatim to the registered fiber handler.
  /// Zero-allocation: the ~99% case on the simulator hot path.
  void post_fiber_at(Time t, void* payload) {
    assert(fiber_fn_ != nullptr && "post_fiber_at: no fiber handler set");
    assert(payload != nullptr);
    if (t < now_) t = now_;
    push(Event{t, seq_++, payload, Action{}});
  }

  /// Run until the event queue drains or `stop()` is called.
  /// Returns the final simulated time.
  Time run() {
    stopped_ = false;
    while (!heap_.empty() && !stopped_) {
      Event ev = pop_min();
      now_ = ev.t;
      ++dispatched_;
      if (ev.payload != nullptr) {
        fiber_fn_(fiber_ctx_, ev.payload);
      } else {
        ev.fn();
      }
    }
    return now_;
  }

  /// Run every event with time strictly before `bound`, leaving later
  /// events pending.  The window-execution primitive of the parallel host
  /// engine (src/parsim): a shard may only execute up to the global window
  /// edge, because a cross-shard message can arrive at any time >= bound.
  /// Ignores stop() — parallel runs forfeit instead (see Machine::run).
  Time run_until(Time bound) {
    while (!heap_.empty() && heap_.front().t < bound) {
      Event ev = pop_min();
      now_ = ev.t;
      ++dispatched_;
      if (ev.payload != nullptr) {
        fiber_fn_(fiber_ctx_, ev.payload);
      } else {
        ev.fn();
      }
    }
    return now_;
  }

  /// Pop the earliest pending event without dispatching it.  Used once per
  /// parallel run to split the serial heap into per-shard heaps (events come
  /// out in (t, seq) order, so reposting preserves tie order).  Returns
  /// false when the heap is empty.
  bool take_earliest(Time* t, void** payload, Action* fn) {
    if (heap_.empty()) return false;
    Event ev = pop_min();
    *t = ev.t;
    *payload = ev.payload;
    *fn = std::move(ev.fn);
    return true;
  }

  /// Stop the run loop after the current event completes.
  void stop() { stopped_ = true; }
  /// True between a stop() call and the end of the current run() loop (the
  /// charge() fast path must not warp past a requested stop).
  bool stop_requested() const { return stopped_; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  /// Pending *fiber* events (scheduled resumes).  When this reaches zero
  /// with live fibers remaining, the heap has quiesced to closure events
  /// (timers, watchdogs) only: no fiber will ever run again unless one of
  /// those closures wakes it — the trigger for Moviola's deadlock view.
  std::size_t pending_fiber_events() const { return fiber_events_; }

  /// Earliest pending event time.  Only valid when !empty(); the charge()
  /// fast path uses it to prove no event can interleave before a resume.
  Time next_time() const {
    assert(!heap_.empty());
    return heap_.front().t;
  }

  /// Advance the clock without dispatching: used before run() to offset a
  /// scenario, and by the charge() fast path to warp over stretches where
  /// no pending event can observably interleave.  Never goes backwards.
  void warp_to(Time t) {
    if (t > now_) now_ = t;
  }

  /// Host-side count of events dispatched by run() since construction
  /// (observational; feeds the host-performance benches).
  std::uint64_t events_dispatched() const { return dispatched_; }

 private:
  struct Event {
    Time t = 0;
    std::uint64_t seq = 0;
    void* payload = nullptr;  ///< non-null: fiber event for fiber_fn_
    Action fn;                ///< otherwise: the closure to run

    bool before(const Event& o) const {
      return t != o.t ? t < o.t : seq < o.seq;
    }
  };

  // Binary min-heap over (t, seq).  Sift with moves into a hole: one move
  // per level instead of three, and no self-move at the boundaries.
  void push(Event ev) {
    if (ev.payload != nullptr) ++fiber_events_;
    heap_.emplace_back();
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!ev.before(heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(ev);
  }

  Event pop_min() {
    Event min = std::move(heap_.front());
    if (min.payload != nullptr) --fiber_events_;
    Event last = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
      const std::size_t n = heap_.size();
      std::size_t i = 0;
      while (true) {
        std::size_t child = 2 * i + 1;
        if (child >= n) break;
        if (child + 1 < n && heap_[child + 1].before(heap_[child])) ++child;
        if (!heap_[child].before(last)) break;
        heap_[i] = std::move(heap_[child]);
        i = child;
      }
      heap_[i] = std::move(last);
    }
    return min;
  }

  std::vector<Event> heap_;
  std::size_t fiber_events_ = 0;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  bool stopped_ = false;
  FiberHandler fiber_fn_ = nullptr;
  void* fiber_ctx_ = nullptr;
};

}  // namespace bfly::sim
