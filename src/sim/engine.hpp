// Discrete-event engine.
//
// A single min-heap of (time, sequence, closure) events.  Sequence numbers
// make ordering total and deterministic.  Fibers interleave with the engine:
// an event typically resumes a fiber, which runs until it charges time (and
// schedules its own continuation) or blocks on a synchronization object.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace bfly::sim {

class Engine {
 public:
  using Action = std::function<void()>;

  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now).
  void post_at(Time t, Action fn) {
    if (t < now_) t = now_;
    heap_.push(Event{t, seq_++, std::move(fn)});
  }

  /// Schedule `fn` after a delay.
  void post_in(Time delay, Action fn) { post_at(now_ + delay, std::move(fn)); }

  /// Run until the event queue drains or `stop()` is called.
  /// Returns the final simulated time.
  Time run() {
    stopped_ = false;
    while (!heap_.empty() && !stopped_) {
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      now_ = ev.t;
      ev.fn();
    }
    return now_;
  }

  /// Stop the run loop after the current event completes.
  void stop() { stopped_ = true; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Advance the clock manually (only sensible before run()).
  void warp_to(Time t) {
    if (t > now_) now_ = t;
  }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Action fn;
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  bool stopped_ = false;
};

}  // namespace bfly::sim
