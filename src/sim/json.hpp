// Minimal JSON writer shared by stats, benches, and the scope exporters.
//
// One serializer for every byte of JSON the repo emits: the ad-hoc printf
// fragments that used to live in sim::MachineStats and the bench binaries
// all route through here, as do the Chrome trace and metrics exports of
// bfly::scope.  The writer is append-only (objects/arrays open and close in
// stack order), escapes strings per RFC 8259, and never emits NaN/Inf
// (non-finite doubles are written as 0 so the output always parses).
//
// Two output shapes:
//   * a complete value   — begin_object()...end_object(), then str()/take();
//   * a braceless *fragment* — Writer(Writer::kFragment), kv(...) pairs
//     only, for callers that splice fields into an object they are printing
//     themselves (MachineStats::fault_json(), bench rows).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace bfly::sim::json {

/// Append `s` to `out` with JSON string escaping (no surrounding quotes).
inline void escape_to(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

inline std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  escape_to(out, s);
  return out;
}

class Writer {
 public:
  enum Shape { kValue, kFragment };

  explicit Writer(Shape shape = kValue) : shape_(shape) {}

  Writer& begin_object() {
    comma();
    out_ += '{';
    stack_.push_back(false);
    return *this;
  }
  Writer& end_object() {
    out_ += '}';
    stack_.pop_back();
    return *this;
  }
  Writer& begin_array() {
    comma();
    out_ += '[';
    stack_.push_back(false);
    return *this;
  }
  Writer& end_array() {
    out_ += ']';
    stack_.pop_back();
    return *this;
  }

  Writer& key(std::string_view k) {
    comma();
    out_ += '"';
    escape_to(out_, k);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  Writer& value(std::string_view v) {
    comma();
    out_ += '"';
    escape_to(out_, v);
    out_ += '"';
    return *this;
  }
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  Writer& value(double v) {
    comma();
    if (!std::isfinite(v)) v = 0.0;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out_ += buf;
    return *this;
  }
  Writer& value(std::uint64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
    return *this;
  }
  Writer& value(std::int64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out_ += buf;
    return *this;
  }
  Writer& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  Writer& value(std::int32_t v) { return value(std::int64_t{v}); }

  /// Splice pre-serialized JSON (e.g. a fragment from another Writer).
  Writer& raw(std::string_view json) {
    comma();
    out_ += json;
    return *this;
  }

  template <typename T>
  Writer& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  // Insert the separating comma where a value/key begins.  A value directly
  // after key() never takes one; the first element of a container never
  // takes one; fragment writers separate top-level pairs themselves.
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) out_ += ',';
      stack_.back() = true;
    } else if (shape_ == kFragment) {
      if (top_used_) out_ += ',';
      top_used_ = true;
    }
  }

  Shape shape_;
  std::string out_;
  std::vector<bool> stack_;
  bool pending_value_ = false;
  bool top_used_ = false;
};

}  // namespace bfly::sim::json
