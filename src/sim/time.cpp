#include "sim/time.hpp"

#include <cstdio>

namespace bfly::sim {

std::string format_duration(Time ns) {
  char buf[48];
  if (ns < kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%lluns", static_cast<unsigned long long>(ns));
  } else if (ns < kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.2fus", static_cast<double>(ns) / kMicrosecond);
  } else if (ns < kSecond) {
    std::snprintf(buf, sizeof buf, "%.2fms", static_cast<double>(ns) / kMillisecond);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) / kSecond);
  }
  return buf;
}

}  // namespace bfly::sim
