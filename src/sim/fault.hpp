// Deterministic fault injection for the simulated Butterfly.
//
// The paper is blunt about the hardware: a 128-node Butterfly-I was rarely
// fully operational.  Nodes died, memory boards went bad, and the systems
// software ran on whatever subset of the machine survived the morning's
// diagnostics.  A FaultPlan lets a test or bench script that experience:
//
//   * kill a node at simulated time T — its fibers stop being scheduled
//     (their stacks unwind cleanly) and references to its memory module
//     raise NodeDeadError;
//   * inject transient memory faults (parity errors) on timed references
//     with a configurable probability;
//   * drop or delay switch packets, modelled as extra latency (a dropped
//     packet is retried by the PNC after a timeout).
//
// Everything is driven by the plan's own seeded RNG, so a run remains a
// pure function of (config, plan, program) and Instant Replay determinism
// is preserved.  An empty plan is free: no fault RNG draw ever happens and
// the event stream is byte-identical to a machine built without one.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/time.hpp"

namespace bfly::sim {

/// Raised on simulated machine faults (bad address, out of memory, ...).
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A timed reference (or allocation) targeted a node that has been killed.
class NodeDeadError : public SimError {
 public:
  explicit NodeDeadError(NodeId node)
      : SimError("reference to dead node " + std::to_string(node)),
        node_(node) {}
  NodeId node() const { return node_; }

 private:
  NodeId node_;
};

/// A timed reference suffered a transient (parity-style) memory fault.  The
/// reference's time was charged but no data moved; the operation may simply
/// be retried.
class MemoryFaultError : public SimError {
 public:
  explicit MemoryFaultError(NodeId node)
      : SimError("transient memory fault on node " + std::to_string(node)),
        node_(node) {}
  NodeId node() const { return node_; }

 private:
  NodeId node_;
};

/// Bounded retry with exponential backoff for remote operations.  The real
/// PNC retried failed transactions in microcode; the runtime layers retry a
/// few more times in software before giving a node up for dead.  Exhaustion
/// is how a transient-looking fault graduates into a membership accusation
/// (see bfly::rescue::Membership::denounce).
struct RetryPolicy {
  /// Total tries (first attempt included).  Must be >= 1.
  std::uint32_t attempts = 6;
  /// Backoff charged before the second try; doubles per retry.
  Time base = 50 * kMicrosecond;
  /// Backoff ceiling.
  Time cap = 5 * kMillisecond;

  /// Backoff to charge after failed attempt number `attempt` (0-based).
  Time backoff(std::uint32_t attempt) const {
    Time b = base;
    for (std::uint32_t i = 0; i < attempt && b < cap; ++i) b *= 2;
    return b < cap ? b : cap;
  }
};

/// A script of hardware failures, applied by Machine.  Reproducible: two
/// machines built from the same (config, plan) observe identical faults.
struct FaultPlan {
  struct NodeKill {
    NodeId node = 0;
    Time at = 0;
    /// A silent kill leaves the node catatonic without the machine-check
    /// broadcast peers normally observe: no crash observer fires, so the
    /// death is only discoverable by touching the corpse or by a failure
    /// detector noticing the missing heartbeats (bfly::rescue).
    bool silent = false;
  };

  /// Nodes to kill and when.  Kills are permanent for the run.
  std::vector<NodeKill> node_kills;

  /// Probability that one timed single-word reference suffers a transient
  /// memory fault (MemoryFaultError after the time is charged).
  double mem_fault_prob = 0.0;

  /// Probability that one switch packet is dropped.  A drop is modelled as
  /// the PNC's retry: the packet re-enters the network after drop_retry_ns.
  double packet_drop_prob = 0.0;
  Time drop_retry_ns = 100 * kMicrosecond;

  /// Probability that one switch packet is delayed by packet_delay_ns
  /// (models a congested or flaky switch card).
  double packet_delay_prob = 0.0;
  Time packet_delay_ns = 50 * kMicrosecond;

  /// Seed for the plan's private RNG (never shared with Machine's RNG).
  std::uint64_t seed = 0xb1f7fa17ULL;

  FaultPlan& kill(NodeId node, Time at) { return add_kill(node, at, false); }

  /// Kill without the machine-check broadcast: recovery layers hear nothing
  /// until a heartbeat watchdog (or a reference into the corpse) notices.
  FaultPlan& kill_silent(NodeId node, Time at) {
    return add_kill(node, at, true);
  }

  /// Bringing a dead node back mid-run is not modelled yet: the Uniform
  /// System pool, stream topology and Bridge stripes all assume kills are
  /// permanent for the run.  Rejecting loudly beats silently ignoring it.
  FaultPlan& heal(NodeId node, Time at) {
    throw SimError("FaultPlan::heal(node " + std::to_string(node) + ", at " +
                   std::to_string(at) + "): not yet supported — kills are "
                   "permanent for the run");
  }

  /// Invariants every kill list must satisfy; Machine re-validates the whole
  /// vector at construction so hand-built lists get the same errors as ones
  /// assembled through kill()/kill_silent().
  void validate() const {
    for (std::size_t i = 0; i < node_kills.size(); ++i) {
      const NodeKill& k = node_kills[i];
      if (k.at == 0)
        throw SimError("FaultPlan: kill of node " + std::to_string(k.node) +
                       " at Time 0 — the machine must come up before it can "
                       "fail; use any nonzero time");
      for (std::size_t j = 0; j < i; ++j)
        if (node_kills[j].node == k.node)
          throw SimError("FaultPlan: duplicate kill of node " +
                         std::to_string(k.node) + " (kills are permanent; "
                         "a node can only die once)");
    }
  }

  bool any() const {
    return !node_kills.empty() || mem_fault_prob > 0.0 ||
           packet_drop_prob > 0.0 || packet_delay_prob > 0.0;
  }

 private:
  FaultPlan& add_kill(NodeId node, Time at, bool silent) {
    node_kills.push_back(NodeKill{node, at, silent});
    try {
      validate();  // reject duplicate / Time-0 kills at the call site
    } catch (...) {
      node_kills.pop_back();  // a rejected kill must not linger in the plan
      throw;
    }
    return *this;
  }
};

}  // namespace bfly::sim
