// Deterministic fault injection for the simulated Butterfly.
//
// The paper is blunt about the hardware: a 128-node Butterfly-I was rarely
// fully operational.  Nodes died, memory boards went bad, and the systems
// software ran on whatever subset of the machine survived the morning's
// diagnostics.  A FaultPlan lets a test or bench script that experience:
//
//   * kill a node at simulated time T — its fibers stop being scheduled
//     (their stacks unwind cleanly) and references to its memory module
//     raise NodeDeadError;
//   * inject transient memory faults (parity errors) on timed references
//     with a configurable probability;
//   * drop or delay switch packets, modelled as extra latency (a dropped
//     packet is retried by the PNC after a timeout, up to max_drop_retries);
//   * kill a switch card or backplane link at time T — routes detour through
//     the redundant column for one extra hop, and references with no healthy
//     path raise NetUnreachableError;
//   * partition the machine into two sides for [start, heal) — cross-cut
//     references raise NetUnreachableError until the cut heals.
//
// Everything is driven by the plan's own seeded RNG, so a run remains a
// pure function of (config, plan, program) and Instant Replay determinism
// is preserved.  An empty plan is free: no fault RNG draw ever happens and
// the event stream is byte-identical to a machine built without one.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace bfly::sim {

/// Raised on simulated machine faults (bad address, out of memory, ...).
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A timed reference (or allocation) targeted a node that has been killed.
class NodeDeadError : public SimError {
 public:
  explicit NodeDeadError(NodeId node)
      : SimError("reference to dead node " + std::to_string(node)),
        node_(node) {}
  NodeId node() const { return node_; }

 private:
  NodeId node_;
};

/// A timed reference could not be routed: every path between requester and
/// home node is severed (dead switch cards/links on all candidate columns,
/// a partition window, or the PNC exhausting its drop-retry budget).  The
/// target node itself may be perfectly healthy — this is the network's
/// failure, distinct from NodeDeadError — so layers above should treat the
/// peer as *unreachable* (may come back) rather than dead (never will).
/// The PNC's futile retries are charged before the throw.
class NetUnreachableError : public SimError {
 public:
  NetUnreachableError(NodeId src, NodeId dst, const std::string& why,
                      Time wasted = 0)
      : SimError("node " + std::to_string(dst) + " unreachable from " +
                 std::to_string(src) + " (" + why + ")"),
        src_(src),
        dst_(dst),
        wasted_(wasted) {}
  NodeId src() const { return src_; }
  /// The unreachable peer (symmetric with NodeDeadError::node()).
  NodeId node() const { return dst_; }
  /// Time the PNC burned on futile retries; the machine charges it to the
  /// requester before the error surfaces.
  Time wasted() const { return wasted_; }

 private:
  NodeId src_;
  NodeId dst_;
  Time wasted_;
};

/// A timed reference suffered a transient (parity-style) memory fault.  The
/// reference's time was charged but no data moved; the operation may simply
/// be retried.
class MemoryFaultError : public SimError {
 public:
  explicit MemoryFaultError(NodeId node)
      : SimError("transient memory fault on node " + std::to_string(node)),
        node_(node) {}
  NodeId node() const { return node_; }

 private:
  NodeId node_;
};

/// Bounded retry with exponential backoff for remote operations.  The real
/// PNC retried failed transactions in microcode; the runtime layers retry a
/// few more times in software before giving a node up for dead.  Exhaustion
/// is how a transient-looking fault graduates into a membership accusation
/// (see bfly::rescue::Membership::denounce).
struct RetryPolicy {
  /// Total tries (first attempt included).  Must be >= 1.
  std::uint32_t attempts = 6;
  /// Backoff charged before the second try; doubles per retry.
  Time base = 50 * kMicrosecond;
  /// Backoff ceiling.
  Time cap = 5 * kMillisecond;
  /// Jitter fraction in [0, 1): each backoff is drawn uniformly from
  /// [b*(1-jitter), b] where b is the deterministic schedule.  Zero keeps
  /// the legacy fixed schedule and draws nothing from the caller's RNG, so
  /// existing users stay byte-identical.
  double jitter = 0.0;

  std::uint32_t max_attempts() const { return attempts; }
  Time backoff_cap() const { return cap; }

  /// Backoff to charge after failed attempt number `attempt` (0-based).
  Time backoff(std::uint32_t attempt) const {
    Time b = base;
    for (std::uint32_t i = 0; i < attempt && b < cap; ++i) b *= 2;
    return b < cap ? b : cap;
  }

  /// Jittered backoff: the fixed schedule spread downward by up to
  /// `jitter` so concurrent retriers decorrelate instead of stampeding in
  /// lockstep.  Deterministic given the caller's seeded RNG state.
  Time backoff_jittered(std::uint32_t attempt, Rng& rng) const {
    const Time b = backoff(attempt);
    if (jitter <= 0.0) return b;
    const double spread = static_cast<double>(b) * jitter;
    return b - static_cast<Time>(spread * rng.uniform());
  }
};

/// A script of hardware failures, applied by Machine.  Reproducible: two
/// machines built from the same (config, plan) observe identical faults.
struct FaultPlan {
  struct NodeKill {
    NodeId node = 0;
    Time at = 0;
    /// A silent kill leaves the node catatonic without the machine-check
    /// broadcast peers normally observe: no crash observer fires, so the
    /// death is only discoverable by touching the corpse or by a failure
    /// detector noticing the missing heartbeats (bfly::rescue).
    bool silent = false;
  };

  /// Gray failure: the node answers, but slowly.  Within [from, until) every
  /// memory-module service on the node (and Bridge's disk service, which
  /// shares the controller) is stretched by `factor`.  This is the failure
  /// mode heartbeats cannot see — the node still acks — so it is what
  /// hedged reads exist to beat.
  struct SlowNode {
    NodeId node = 0;
    Time from = 0;
    Time until = 0;
    double factor = 1.0;
  };

  /// A switch card (one 4x4 crossbar) dies at `at` and stays dead for the
  /// run — the fault domain real Butterflies shipped an extra switch column
  /// to survive.  Card `card` of stage `stage` owns output wires
  /// [card*4, card*4+4) of that stage.  Alternate-path routing detours
  /// around a dead card in any non-final stage for +1 hop; a dead
  /// final-stage card severs its four destination nodes (the last column
  /// is wired straight into the memory modules).
  struct CardFail {
    std::uint32_t stage = 0;
    std::uint32_t card = 0;
    Time at = 0;
  };

  /// A single output wire (backplane link) of a stage dies at `at`.  Finer
  /// grain than a card: only routes crossing that wire detour.
  struct LinkFail {
    std::uint32_t stage = 0;
    std::uint32_t link = 0;
    Time at = 0;
  };

  /// A clean bisection of the machine for [start, heal): every reference
  /// between a node in side_a and a node in side_b raises
  /// NetUnreachableError (after the PNC's charged retry budget).  Nodes on
  /// neither side keep full connectivity to both.  Unlike kills, a
  /// partition heals: at `heal` cross-cut traffic flows again and
  /// Machine::on_partition_heal observers fire.
  struct Partition {
    std::vector<NodeId> side_a;
    std::vector<NodeId> side_b;
    Time start = 0;
    Time heal = 0;
  };

  /// Nodes to kill and when.  Kills are permanent for the run.
  std::vector<NodeKill> node_kills;

  /// Persistent switch-card / link deaths and partition windows.
  std::vector<CardFail> card_fails;
  std::vector<LinkFail> link_fails;
  std::vector<Partition> partitions;

  /// Slow-node windows.  Validated like kills; windows on the same node
  /// must not overlap (two factors at one instant would be ambiguous).
  std::vector<SlowNode> slow_nodes;

  /// Probability that one timed single-word reference suffers a transient
  /// memory fault (MemoryFaultError after the time is charged).
  double mem_fault_prob = 0.0;

  /// Probability that one switch packet is dropped.  A drop is modelled as
  /// the PNC's retry: the packet re-enters the network after drop_retry_ns.
  double packet_drop_prob = 0.0;
  Time drop_retry_ns = 100 * kMicrosecond;

  /// PNC retry budget per packet: after this many consecutive drops the
  /// reference fails with NetUnreachableError instead of retrying forever
  /// (as packet_drop_prob -> 1 an unbounded loop never terminates).  The
  /// same budget prices the futile retries charged for a reference into a
  /// partition.  Must be >= 1.
  std::uint32_t max_drop_retries = 16;

  /// Probability that one switch packet is delayed by packet_delay_ns
  /// (models a congested or flaky switch card).
  double packet_delay_prob = 0.0;
  Time packet_delay_ns = 50 * kMicrosecond;

  /// Seed for the plan's private RNG (never shared with Machine's RNG).
  std::uint64_t seed = 0xb1f7fa17ULL;

  FaultPlan& kill(NodeId node, Time at) { return add_kill(node, at, false); }

  /// Kill without the machine-check broadcast: recovery layers hear nothing
  /// until a heartbeat watchdog (or a reference into the corpse) notices.
  FaultPlan& kill_silent(NodeId node, Time at) {
    return add_kill(node, at, true);
  }

  /// Bringing a dead node back mid-run is not modelled yet: the Uniform
  /// System pool, stream topology and Bridge stripes all assume kills are
  /// permanent for the run.  Rejecting loudly beats silently ignoring it.
  FaultPlan& heal(NodeId node, Time at) {
    throw SimError("FaultPlan::heal(node " + std::to_string(node) + ", at " +
                   std::to_string(at) + "): not yet supported — kills are "
                   "permanent for the run");
  }

  /// Degrade `node` for [from, until): every module service there takes
  /// `factor` times as long.  Validated immediately, like kill().
  FaultPlan& slow(NodeId node, Time from, Time until, double factor) {
    slow_nodes.push_back(SlowNode{node, from, until, factor});
    try {
      validate();
    } catch (...) {
      slow_nodes.pop_back();
      throw;
    }
    return *this;
  }

  /// Kill switch card `card` of stage `stage` at `at`.  Stage/card bounds
  /// depend on machine geometry, so Machine checks them at construction.
  FaultPlan& fail_card(std::uint32_t stage, std::uint32_t card, Time at) {
    card_fails.push_back(CardFail{stage, card, at});
    try {
      validate();
    } catch (...) {
      card_fails.pop_back();
      throw;
    }
    return *this;
  }

  /// Kill output wire `link` of stage `stage` at `at`.
  FaultPlan& fail_link(std::uint32_t stage, std::uint32_t link, Time at) {
    link_fails.push_back(LinkFail{stage, link, at});
    try {
      validate();
    } catch (...) {
      link_fails.pop_back();
      throw;
    }
    return *this;
  }

  /// Partition the machine into side_a | side_b for [start, heal).
  FaultPlan& partition(std::vector<NodeId> side_a, std::vector<NodeId> side_b,
                       Time start, Time heal) {
    partitions.push_back(
        Partition{std::move(side_a), std::move(side_b), start, heal});
    try {
      validate();
    } catch (...) {
      partitions.pop_back();
      throw;
    }
    return *this;
  }

  /// Invariants every kill list must satisfy; Machine re-validates the whole
  /// vector at construction so hand-built lists get the same errors as ones
  /// assembled through kill()/kill_silent().
  void validate() const {
    for (std::size_t i = 0; i < node_kills.size(); ++i) {
      const NodeKill& k = node_kills[i];
      if (k.at == 0)
        throw SimError("FaultPlan: kill of node " + std::to_string(k.node) +
                       " at Time 0 — the machine must come up before it can "
                       "fail; use any nonzero time");
      for (std::size_t j = 0; j < i; ++j)
        if (node_kills[j].node == k.node)
          throw SimError("FaultPlan: duplicate kill of node " +
                         std::to_string(k.node) + " (kills are permanent; "
                         "a node can only die once)");
    }
    for (std::size_t i = 0; i < slow_nodes.size(); ++i) {
      const SlowNode& s = slow_nodes[i];
      if (s.factor < 1.0)
        throw SimError("FaultPlan: slow-node factor " +
                       std::to_string(s.factor) + " on node " +
                       std::to_string(s.node) +
                       " — a gray failure slows a node down, factor >= 1");
      if (s.from == 0)
        throw SimError("FaultPlan: slow window on node " +
                       std::to_string(s.node) +
                       " starting at Time 0 — the machine must come up "
                       "healthy; use any nonzero time");
      if (s.until <= s.from)
        throw SimError("FaultPlan: empty slow window on node " +
                       std::to_string(s.node) + " (until must exceed from)");
      for (std::size_t j = 0; j < i; ++j) {
        const SlowNode& o = slow_nodes[j];
        if (o.node == s.node && s.from < o.until && o.from < s.until)
          throw SimError("FaultPlan: overlapping slow windows on node " +
                         std::to_string(s.node) +
                         " — one factor at a time per node");
      }
    }
    if (max_drop_retries == 0)
      throw SimError("FaultPlan: max_drop_retries must be >= 1 (the PNC "
                     "always sends the packet at least once)");
    for (std::size_t i = 0; i < card_fails.size(); ++i) {
      const CardFail& c = card_fails[i];
      if (c.at == 0)
        throw SimError("FaultPlan: card fail at Time 0 — the machine must "
                       "come up before it can fail; use any nonzero time");
      for (std::size_t j = 0; j < i; ++j)
        if (card_fails[j].stage == c.stage && card_fails[j].card == c.card)
          throw SimError("FaultPlan: duplicate fail of switch card " +
                         std::to_string(c.card) + " at stage " +
                         std::to_string(c.stage) +
                         " (card deaths are permanent)");
    }
    for (std::size_t i = 0; i < link_fails.size(); ++i) {
      const LinkFail& l = link_fails[i];
      if (l.at == 0)
        throw SimError("FaultPlan: link fail at Time 0 — the machine must "
                       "come up before it can fail; use any nonzero time");
      for (std::size_t j = 0; j < i; ++j)
        if (link_fails[j].stage == l.stage && link_fails[j].link == l.link)
          throw SimError("FaultPlan: duplicate fail of link " +
                         std::to_string(l.link) + " at stage " +
                         std::to_string(l.stage) +
                         " (link deaths are permanent)");
    }
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      const Partition& p = partitions[i];
      if (p.side_a.empty() || p.side_b.empty())
        throw SimError("FaultPlan: partition with an empty side — a cut "
                       "needs nodes on both sides");
      if (p.start == 0)
        throw SimError("FaultPlan: partition starting at Time 0 — the "
                       "machine must come up connected; use any nonzero "
                       "start");
      if (p.heal <= p.start)
        throw SimError("FaultPlan: ill-ordered partition window [" +
                       std::to_string(p.start) + ", " +
                       std::to_string(p.heal) +
                       ") — heal must come after start");
      for (NodeId a : p.side_a)
        for (NodeId b : p.side_b)
          if (a == b)
            throw SimError("FaultPlan: node " + std::to_string(a) +
                           " listed on both sides of a partition — a node "
                           "cannot be cut off from itself");
      for (std::size_t j = 0; j < i; ++j) {
        const Partition& o = partitions[j];
        if (p.start < o.heal && o.start < p.heal)
          throw SimError("FaultPlan: overlapping partition windows — two "
                         "simultaneous cuts would make reachability "
                         "ambiguous; serialize them");
      }
    }
  }

  bool any() const {
    return !node_kills.empty() || !slow_nodes.empty() ||
           !card_fails.empty() || !link_fails.empty() ||
           !partitions.empty() || mem_fault_prob > 0.0 ||
           packet_drop_prob > 0.0 || packet_delay_prob > 0.0;
  }

 private:
  FaultPlan& add_kill(NodeId node, Time at, bool silent) {
    node_kills.push_back(NodeKill{node, at, silent});
    try {
      validate();  // reject duplicate / Time-0 kills at the call site
    } catch (...) {
      node_kills.pop_back();  // a rejected kill must not linger in the plan
      throw;
    }
    return *this;
  }
};

}  // namespace bfly::sim
