// Small-buffer-optimized move-only closure for the event engine.
//
// The discrete-event hot loop used to pay a std::function heap allocation
// per posted event.  Engine events are now typed (fiber resumes carry a raw
// pointer, see engine.hpp); the closures that remain — kernel timeouts,
// fault kills, test bodies — are small lambdas, so SmallFn stores anything
// up to kInlineBytes in place and only falls back to the heap for outsized
// captures.  Move-only, like the engine's ownership of its events.
//
// Heap sifting moves events around constantly, so moves must be cheap:
// a trivially-copyable inline callable (virtually every lambda the runtime
// layers post — captures of pointers and integers) and the heap-fallback
// pointer both relocate with a plain memcpy of the buffer; only a
// non-trivial inline callable pays an indirect call to its move
// constructor.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace bfly::sim {

class SmallFn {
 public:
  /// Covers every closure the runtime layers post today (the largest is
  /// Kernel's dual-queue timeout at three words, see kernel.cpp); an event
  /// stays a single cache line.  Outsized captures fall back to the heap.
  static constexpr std::size_t kInlineBytes = 24;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): callsites pass lambdas.
  SmallFn(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (fits<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
      trivial_relocate_ = std::is_trivially_copyable_v<Fn> &&
                          std::is_trivially_destructible_v<Fn>;
      // Trivial relocation memcpys the whole buffer, so the tail past the
      // callable must be initialized (sizes are compile-time constants; this
      // folds to at most two stores).
      if (trivial_relocate_ && sizeof(Fn) < kInlineBytes)
        std::memset(buf_ + sizeof(Fn), 0, kInlineBytes - sizeof(Fn));
    } else {
      Fn* p = new Fn(std::forward<F>(f));
      std::memcpy(buf_, &p, sizeof(p));
      std::memset(buf_ + sizeof(p), 0, kInlineBytes - sizeof(p));
      ops_ = &HeapOps<Fn>::ops;
      trivial_relocate_ = true;  // only the owning pointer moves
    }
  }

  SmallFn(SmallFn&& o) noexcept
      : ops_(o.ops_), trivial_relocate_(o.trivial_relocate_) {
    if (ops_ != nullptr) relocate_from(o);
    o.ops_ = nullptr;
  }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      trivial_relocate_ = o.trivial_relocate_;
      if (ops_ != nullptr) relocate_from(o);
      o.ops_ = nullptr;
    }
    return *this;
  }
  ~SmallFn() { reset(); }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void* p);
    /// Move-construct the callable into `dst` and destroy it at `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* p);
  };

  template <typename Fn>
  static constexpr bool fits() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(void*) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* dst, void* src) {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* get(void* p) {
      Fn* f;
      std::memcpy(&f, p, sizeof(f));
      return f;
    }
    static void invoke(void* p) { (*get(p))(); }
    static void relocate(void* dst, void* src) {
      std::memcpy(dst, src, sizeof(Fn*));
    }
    static void destroy(void* p) { delete get(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void relocate_from(SmallFn& o) {
    if (trivial_relocate_) {
      std::memcpy(buf_, o.buf_, kInlineBytes);  // fixed size: vector copies
    } else {
      ops_->relocate(buf_, o.buf_);
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(void*) unsigned char buf_[kInlineBytes];
  bool trivial_relocate_ = false;
};

}  // namespace bfly::sim
