// Machine configuration profiles for the Butterfly family.
//
// The numbers below are calibrated against the paper (Section 2.1) and the
// Rochester Chrysalis benchmark report it cites (Dibble, BPR 18):
//   * a remote read on the Butterfly-I takes about 4 us, roughly 5x a local
//     reference;
//   * remote references *steal memory cycles* from the node that owns the
//     memory (modelled by a per-module service occupancy that every
//     reference, local or remote, must acquire);
//   * switch contention is nearly negligible (Rettberg & Thomas), so link
//     occupancy modelling is available but off by default;
//   * the Butterfly Plus improved local references ~4x and remote ~2x, and
//     added an MC68881 FPU (the Butterfly-I used software floating point
//     until the 1986 daughter-board upgrade).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace bfly::sim {

/// Identifies one processing node (processor + memory module).
using NodeId = std::uint32_t;

/// Which synchronization primitives the runtime layers default to.  The
/// 1988 style (centralized spin locks, one hot completion counter) is what
/// the paper's software actually did; the scalable style (MCS queue locks,
/// combining-tree barriers, per-node distributed counters — see src/sync)
/// is what the Ultracomputer -> exascale line of work replaced it with.
/// Only layers that consult it change behaviour; the machine model itself
/// is identical under both.
enum class SyncStrategy : std::uint8_t {
  kCentral1988,  ///< hot-word spin locks and counters, as on the Butterfly
  kScalable,     ///< MCS / combining-tree / distributed-counter primitives
};

struct MachineConfig {
  /// Number of processing nodes; Rochester's machine had 128 (max 256).
  std::uint32_t nodes = 128;

  /// Memory per node in bytes.  The Butterfly-I shipped with 1 MB per node
  /// (4 MB with extra boards); Rochester's 128-node machine totalled 120 MB.
  std::size_t memory_per_node = 1u << 20;

  // --- Memory reference timing -------------------------------------------
  /// Processor-side overhead of issuing any reference (address generation,
  /// PNC interpretation).
  Time issue_overhead_ns = 300;
  /// Occupancy of the home memory module per 32-bit word.  Both local and
  /// remote references hold the module for this long; queueing behind a busy
  /// module is what makes remote traffic steal cycles from the home CPU.
  Time module_service_ns = 500;
  /// One direction through one switch stage.
  Time switch_hop_ns = 400;
  /// Per-word streaming cost for microcoded block transfers (beyond the
  /// first word, which pays full round-trip latency).  The PNC could stream
  /// roughly one word per microsecond.
  Time block_word_ns = 1000;

  // --- Processor timing ----------------------------------------------------
  /// Cost of one "unit" of ALU/integer work (roughly one 68000 register
  /// instruction at 8 MHz: ~4 cycles = 500 ns).
  Time int_op_ns = 500;
  /// Cost of one floating-point operation.  Software floating point on the
  /// 8 MHz 68000 is on the order of 50-100 us per double-precision op; the
  /// MC68881 daughter board brought this to a few microseconds.
  Time flop_ns = 60 * kMicrosecond;

  // --- Switch contention (off by default; see Rettberg & Thomas) ----------
  bool model_switch_contention = false;
  /// Per-word occupancy of one switch output port when contention modelling
  /// is enabled (32 Mbit/s per path => ~1 us per 32-bit word).
  Time switch_port_service_ns = 1000;
  /// Ultracomputer-style combining of fetch-and-adds that meet at a switch
  /// stage (Gottlieb et al.).  Only meaningful together with
  /// model_switch_contention: combining exists to relieve the hot-spot
  /// tree saturation that the contention model creates.  Off by default so
  /// existing contention runs keep their exact timing.
  bool switch_combining = false;

  // --- Synchronization strategy (consulted by src/sync and the US) --------
  /// Which primitive family runtime layers pick when offered a choice (the
  /// Uniform System's completion counter, sync::make_* helpers).
  SyncStrategy sync_strategy = SyncStrategy::kCentral1988;
  /// Fan-in of the combining-tree barrier when the scalable strategy is
  /// selected (2..8 are sensible; 4 matches the switch radix).
  std::uint32_t barrier_arity = 4;

  // --- Operating system cost knobs (used by the Chrysalis layer) ----------
  /// Mapping or unmapping one segment costs "over 1 ms" (Section 2.1).
  Time sar_map_ns = 1200 * kMicrosecond;
  /// Entering+leaving a Chrysalis catch block costs about 70 us.
  Time catch_enter_ns = 35 * kMicrosecond;
  Time catch_leave_ns = 35 * kMicrosecond;
  /// Microcoded event / dual-queue primitives complete in tens of us.
  Time event_post_ns = 20 * kMicrosecond;
  Time event_wait_ns = 25 * kMicrosecond;
  Time dq_enqueue_ns = 30 * kMicrosecond;
  Time dq_dequeue_ns = 35 * kMicrosecond;
  /// Heavyweight process creation: milliseconds of local work plus a
  /// serialized critical section on the global process-template resource
  /// (the serialization the Crowd Control lesson is about).
  Time proc_create_local_ns = 3 * kMillisecond;
  Time proc_create_serial_ns = 1 * kMillisecond;
  /// Context switch between Chrysalis processes on one node.
  Time proc_switch_ns = 100 * kMicrosecond;
  /// Coroutine (lightweight thread) switch inside one process.
  Time thread_switch_ns = 30 * kMicrosecond;

  // --- SAR architecture -----------------------------------------------------
  /// SARs per node; Chrysalis hands them out in buddy-system blocks of
  /// 8/16/32/64/128/256.
  std::uint32_t sars_per_node = 512;
  std::uint32_t max_segments_per_process = 256;
  /// Maximum size of one segment (16-bit offset).
  std::size_t segment_limit = 1u << 16;

  /// Fiber stack size for simulated processes (host resource, not modelled).
  std::size_t fiber_stack_bytes = 192 * 1024;

  /// Host-side fast path in Machine::charge(): when no pending event could
  /// observably interleave, warp the clock instead of context-switching
  /// through the engine (see DESIGN.md "Host performance model").  Purely a
  /// host optimization — simulated behaviour is bit-for-bit identical, which
  /// the fast-path determinism suite asserts.  BFLY_NO_FASTPATH=1 in the
  /// environment forces it off regardless, for A/B comparison runs.
  bool host_fastpath = true;

  // --- Parallel host engine (src/parsim; see DESIGN.md §4f) ----------------
  /// Number of host-side shards the simulated nodes are partitioned across.
  /// 1 (the default) is the serial engine, byte-identical to a build before
  /// parsim existed.  With k > 1 shards, node n lives on shard
  /// n * k / nodes (a stable block partition: contiguous node ranges, every
  /// shard within one node of even).  Parallel runs are bit-identical for a
  /// fixed shard count regardless of host thread count, and identical across
  /// shard counts >= 2; they differ from the serial run only when module
  /// queueing overlaps (see the arrival-order note in DESIGN.md §4f).
  /// BFLY_HOST_SHARDS in the environment overrides this value.
  std::uint32_t host_shards = 1;
  /// Worker threads driving the shards (0 = min(shards, host cores)).
  /// Purely a host resource knob: simulated behaviour is independent of it.
  /// BFLY_HOST_THREADS in the environment overrides this value.
  std::uint32_t host_threads = 0;

  /// RNG seed for any randomized machine behaviour (fully deterministic).
  std::uint64_t seed = 0x5eed5eedULL;
};

/// The original Butterfly-I as installed at Rochester in 1985.
inline MachineConfig butterfly1(std::uint32_t nodes = 128) {
  MachineConfig c;
  c.nodes = nodes;
  return c;
}

/// Butterfly-I with the 1986 MC68020 + MC68881 floating-point daughter
/// board (Rochester upgraded 16 nodes).
inline MachineConfig butterfly1_fpu(std::uint32_t nodes = 16) {
  MachineConfig c;
  c.nodes = nodes;
  c.flop_ns = 6 * kMicrosecond;
  return c;
}

/// The Butterfly Plus (Butterfly 1000 hardware): local references improved
/// by ~4x, remote by ~2x, hardware FP and paged memory management.
inline MachineConfig butterfly_plus(std::uint32_t nodes = 128) {
  MachineConfig c;
  c.nodes = nodes;
  c.issue_overhead_ns = 75;
  c.module_service_ns = 125;
  c.switch_hop_ns = 200;
  c.block_word_ns = 500;
  c.int_op_ns = 125;
  c.flop_ns = 4 * kMicrosecond;
  c.sar_map_ns = 300 * kMicrosecond;  // paged MMU, no explicit SAR juggling
  // Operating-system paths ride the 4x faster local processor.
  c.catch_enter_ns = 9 * kMicrosecond;
  c.catch_leave_ns = 9 * kMicrosecond;
  c.event_post_ns = 5 * kMicrosecond;
  c.event_wait_ns = 7 * kMicrosecond;
  c.dq_enqueue_ns = 8 * kMicrosecond;
  c.dq_dequeue_ns = 9 * kMicrosecond;
  c.proc_create_local_ns = 800 * kMicrosecond;
  c.proc_create_serial_ns = 250 * kMicrosecond;
  c.proc_switch_ns = 25 * kMicrosecond;
  c.thread_switch_ns = 8 * kMicrosecond;
  return c;
}

/// A deliberately anachronistic profile for the scalable-synchronization
/// story (ROADMAP item 2): per-node compute runs at hundreds of MIPS while
/// the interconnect keeps multi-hop switch latencies, so the remote:local
/// ratio grows from the Butterfly's ~5-15x to ~100x.  This is the regime
/// the Ultracomputer -> exascale survey traces, where a centralized spin
/// lock or counter saturates its home module long before 16K nodes while
/// MCS locks, combining trees, and per-node counters keep scaling.  Local
/// reference: 5 + 10 = 15 ns; remote: 5 + 2x(6x150) + 10 ~ 1.8 us at 4K
/// nodes.  Selects the scalable primitives by default; benches A/B against
/// the 1988 ones by flipping sync_strategy back.
inline MachineConfig exascale_ish(std::uint32_t nodes = 4096) {
  MachineConfig c;
  c.nodes = nodes;
  c.memory_per_node = 1u << 20;
  c.issue_overhead_ns = 5;
  c.module_service_ns = 10;
  c.switch_hop_ns = 150;
  c.block_word_ns = 4;
  c.int_op_ns = 2;
  c.flop_ns = 4;
  c.switch_port_service_ns = 40;
  c.sar_map_ns = 20 * kMicrosecond;
  c.catch_enter_ns = kMicrosecond;
  c.catch_leave_ns = kMicrosecond;
  c.event_post_ns = 2 * kMicrosecond;
  c.event_wait_ns = 3 * kMicrosecond;
  c.dq_enqueue_ns = 3 * kMicrosecond;
  c.dq_dequeue_ns = 4 * kMicrosecond;
  c.proc_create_local_ns = 50 * kMicrosecond;
  c.proc_create_serial_ns = 20 * kMicrosecond;
  c.proc_switch_ns = 5 * kMicrosecond;
  c.thread_switch_ns = kMicrosecond;
  c.sync_strategy = SyncStrategy::kScalable;
  // Thousands of fibers per run: keep host stacks lean (lazily committed,
  // so resident cost tracks actual use).
  c.fiber_stack_bytes = 64 * 1024;
  return c;
}

}  // namespace bfly::sim
