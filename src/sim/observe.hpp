// Observation hooks for correctness tooling (the bfly::analyze layer).
//
// Every timed memory reference and every synchronization operation in the
// stack can be *observed* by a MemObserver registered on the Machine.  The
// hooks are strictly host-side: an observer may not perform timed
// operations, so an instrumented run is event-identical to a bare run (the
// uncharged-instrumentation invariant the analyze tests assert against
// Instant Replay logs).  When no observer is registered every hook is a
// single pointer test.
//
// Synchronization layers publish happens-before edges through *channels*:
// a release joins the releasing actor's knowledge into the channel, an
// acquire joins the channel into the acquiring actor.  Channel ids share
// one 64-bit namespace, partitioned by the helpers below:
//   * memory words (spin-lock cells, atomic counters) — chan_of(addr);
//   * Chrysalis objects (events, dual queues)         — chan_of_oid(oid);
//   * NET streams                                     — chan_of_stream(id).
#pragma once

#include <cstdint>
#include <string>

#include "sim/config.hpp"
#include "sim/time.hpp"

namespace bfly::sim {

class Fiber;

/// A physical address: (node, byte offset within that node's memory).
struct PhysAddr {
  NodeId node = 0;
  std::uint32_t offset = 0;

  PhysAddr plus(std::uint64_t delta) const {
    return PhysAddr{node, static_cast<std::uint32_t>(offset + delta)};
  }
  bool operator==(const PhysAddr&) const = default;
};

/// What kind of memory operation an on_access observation describes.
enum class MemOp : std::uint8_t {
  kRead,
  kWrite,
  /// PNC atomic read-modify-write (fetch_add, fetch_or, test_and_set).
  /// Marks the word as a synchronization cell: the memory module serializes
  /// word references, so a word managed by atomics orders its plain
  /// accesses too.
  kAtomic,
  /// access_words(): aggregate traffic accounting for tight loops.  These
  /// model reference *volume*, not individual data accesses, so detectors
  /// count them for contention but do not race-check them.
  kAggregate,
};

/// Channel id for a word-addressed synchronization cell.
constexpr std::uint64_t chan_of(PhysAddr a) {
  return (static_cast<std::uint64_t>(a.node) << 32) | a.offset;
}
/// Channel id for a Chrysalis kernel object (event, dual queue).
constexpr std::uint64_t chan_of_oid(std::uint32_t oid) {
  return (1ull << 62) | oid;
}
/// Channel id for a NET stream.
constexpr std::uint64_t chan_of_stream(std::uint32_t id) {
  return (2ull << 62) | id;
}

/// Host-side observer of the simulated memory / synchronization stream.
/// All callbacks run in the context (fiber or engine) that performed the
/// operation and must not charge simulated time.  `f` is nullptr for
/// operations performed from engine/host context.
class MemObserver {
 public:
  virtual ~MemObserver() = default;

  /// One reference of `words` 32-bit words starting at `a`, issued by a
  /// fiber running on `requester`.
  virtual void on_access(Fiber* f, NodeId requester, PhysAddr a,
                         std::uint32_t words, MemOp op) = 0;
  /// A new fiber was created (parent is nullptr for host-spawned fibers).
  virtual void on_spawn(Fiber* parent, Fiber* child) = 0;
  /// Physical memory was returned to the allocator; shadow state for the
  /// range is stale (the allocator hands reused addresses to unrelated
  /// code, which must not inherit old epochs).
  virtual void on_free(PhysAddr a, std::size_t bytes) = 0;

  /// Happens-before edges published by synchronization layers.
  virtual void on_release(Fiber* f, std::uint64_t chan) = 0;
  virtual void on_acquire(Fiber* f, std::uint64_t chan) = 0;

  /// Lock-order events (spin locks).  Purely for acquisition-graph lints;
  /// the mutual-exclusion edges themselves flow through the lock word.
  virtual void on_lock_acquire(Fiber* f, std::uint64_t lock) = 0;
  virtual void on_lock_release(Fiber* f, std::uint64_t lock) = 0;

  /// Symbolization: the runtimes name the shared objects they allocate so
  /// reports can say "US.outstanding" instead of "node 0 +0x10".
  virtual void on_label(PhysAddr a, std::size_t bytes, std::string name) = 0;
};

// --- Blocking / wait edges (the bfly::moviola layer) ------------------------

/// What kind of object a fiber blocked on.
enum class WaitKind : std::uint8_t {
  kEvent,      ///< Chrysalis event (binary semaphore)
  kDualQueue,  ///< Chrysalis dual queue dequeue
};

/// How a blocked fiber came back.
enum class WakeReason : std::uint8_t {
  kServed,   ///< a post/enqueue delivered a datum
  kTimeout,  ///< a timed wait expired with no data
};

/// What happened to a posted datum.
enum class PostOutcome : std::uint8_t {
  kHandoff,      ///< delivered straight to a blocked waiter
  kQueued,       ///< no waiter: queued (dual queue) or left pending (event)
  kOverwrote,    ///< event already pending: the previous datum is LOST
  kDroppedDead,  ///< the only candidate waiter died with its node; dropped
};

/// Host-side observer of blocking synchronization: who waits on what, who
/// feeds what, who spins on whose lock.  Same uncharged contract as
/// MemObserver — every callback runs in the context performing the
/// operation, may not charge simulated time, and costs one pointer test
/// when absent.  bfly::moviola builds its wait-for graph from these.
class WaitObserver {
 public:
  virtual ~WaitObserver() = default;

  /// `f` is about to block waiting on `chan` (a chan_of_oid channel).
  virtual void on_block(Fiber* f, std::uint64_t chan, WaitKind kind) = 0;
  /// `f` returned from a blocking wait on `chan`.
  virtual void on_wake(Fiber* f, std::uint64_t chan, WakeReason why) = 0;
  /// A post/enqueue to `chan` by `f` (nullptr from engine/host context).
  virtual void on_post(Fiber* f, std::uint64_t chan, PostOutcome out) = 0;
  /// One failed spin-lock probe by `f` on `lock` (a chan_of channel).
  /// Spinners are runnable, not blocked — a starving spinner shows up as an
  /// ever-growing probe streak, never as a blocked fiber.
  virtual void on_spin(Fiber* f, std::uint64_t lock) = 0;
  /// `f` acquired (`held` true) or released (`held` false) spin lock
  /// `lock`.  Lets the observer map each spin edge to the current holder.
  virtual void on_hold(Fiber* f, std::uint64_t lock, bool held) = 0;
};

/// Pseudo-node id for trace events emitted from engine/host context (no
/// fiber running).  Real nodes are dense from 0, so the sentinel is safe.
inline constexpr NodeId kTraceHostNode = 0xffffffffu;

/// Host-side sink for the tracing annotations scattered through the
/// runtimes (the bfly::scope layer).  Same contract as MemObserver: every
/// callback runs in the context that performed the operation, charges
/// nothing, and costs one pointer test when no sink is registered.
///
/// `cat` and `name` are borrowed, not copied: annotation sites pass string
/// literals so that tracing allocates nothing on the simulated path.  A
/// sink that outlives the literal-owning TU (none do today) would need to
/// copy.  Dynamic payloads travel in `arg`.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Open a nested span on the calling track (`f`, or host when nullptr).
  virtual void on_span_begin(Fiber* f, NodeId node, const char* cat,
                             const char* name, std::uint64_t arg) = 0;
  /// Close the innermost open span on the calling track.  Unmatched ends
  /// must be ignored by the sink (kill-unwinding can skip begins).
  virtual void on_span_end(Fiber* f, NodeId node) = 0;
  /// A point event on the calling track.
  virtual void on_instant(Fiber* f, NodeId node, const char* cat,
                          const char* name, std::uint64_t arg) = 0;
  /// One timed reference completed: `words` serviced by `home`'s memory
  /// module for a fiber on `requester`, of which `queue_ns` was spent
  /// queued behind other traffic at the module.  Richer than
  /// MemObserver::on_access (which cannot see contention) — this is what
  /// feeds the occupancy / contention / locality time series.
  virtual void on_reference(NodeId requester, NodeId home,
                            std::uint32_t words, Time queue_ns, MemOp op,
                            Time at) = 0;
};

}  // namespace bfly::sim
