#include "sim/fiber.hpp"

#include <cassert>
#include <cstdlib>
#include <exception>

// AddressSanitizer must be told about every stack switch, or its shadow
// memory (and the unwinder's notion of the current stack) stays pointed at
// the previous context — throws and deep frames on fiber stacks then report
// bogus stack-buffer-overflows.  The annotations below follow the protocol
// from <sanitizer/common_interface_defs.h>: announce the destination stack
// before swapcontext, restore the arriving context's fake stack right after.
#if defined(__SANITIZE_ADDRESS__)
#define BFLY_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BFLY_ASAN_FIBERS 1
#endif
#endif
#if defined(BFLY_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

namespace bfly::sim {

namespace {
// One engine context per host thread: the parallel engine (src/parsim) runs
// one shard's event loop per worker thread, and every fiber is resumed only
// from its owning shard's thread, so thread_local keeps each worker's
// engine/fiber switch state private.  The serial engine uses exactly one
// thread and pays only the (negligible) TLS addressing cost.
thread_local Fiber* g_current = nullptr;
thread_local ucontext_t g_engine_ctx;
#if defined(BFLY_ASAN_FIBERS)
// The engine runs on the host thread's own stack; its bounds are learned
// from the first finish_switch_fiber on arrival in a fiber.
thread_local void* g_engine_fake_stack = nullptr;
thread_local const void* g_engine_stack_bottom = nullptr;
thread_local std::size_t g_engine_stack_size = 0;
#endif

// Called first thing on arrival in a fiber; the departed context is always
// the engine, so the out-params record the engine's stack bounds.
inline void asan_enter_fiber([[maybe_unused]] void* fake_stack) {
#if defined(BFLY_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(fake_stack, &g_engine_stack_bottom,
                                  &g_engine_stack_size);
#endif
}
}  // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes,
             std::string name)
    : body_(std::move(body)),
      stack_(new char[stack_bytes]),
      stack_bytes_(stack_bytes),
      name_(std::move(name)) {
  getcontext(&ctx_);
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = nullptr;  // fibers exit through run_body(), never fall off
  const auto ptr = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xffffffffu));
  state_ = State::kRunnable;
}

Fiber::~Fiber() {
  // Destroying a live fiber abandons its stack; that is fine for simulation
  // teardown (Machine deletes all fibers when a run is abandoned).
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | lo);
  asan_enter_fiber(nullptr);  // first entry: no fake stack to restore
  self->run_body();
}

void Fiber::run_body() {
  try {
    body_();
  } catch (const FiberKill&) {
    // The fiber's node died; the stack has already unwound to here.
  }
  state_ = State::kFinished;
  g_current = nullptr;
#if defined(BFLY_ASAN_FIBERS)
  // nullptr handle: the fiber is done, let ASan free its fake stack.
  __sanitizer_start_switch_fiber(nullptr, g_engine_stack_bottom,
                                 g_engine_stack_size);
#endif
  swapcontext(&ctx_, &g_engine_ctx);
  // Never reached.
  std::abort();
}

void Fiber::resume() {
  assert(g_current == nullptr && "resume() must be called from the engine");
  assert(state_ == State::kRunnable || state_ == State::kBlocked);
  state_ = State::kRunning;
  g_current = this;
#if defined(BFLY_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&g_engine_fake_stack, stack_.get(),
                                 stack_bytes_);
#endif
  swapcontext(&g_engine_ctx, &ctx_);
#if defined(BFLY_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(g_engine_fake_stack, nullptr, nullptr);
#endif
}

void Fiber::yield_to_engine() {
  Fiber* self = g_current;
  assert(self != nullptr && "yield_to_engine() must be called from a fiber");
  self->state_ = State::kBlocked;
  g_current = nullptr;
#if defined(BFLY_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&self->asan_fake_stack_,
                                 g_engine_stack_bottom, g_engine_stack_size);
#endif
  swapcontext(&self->ctx_, &g_engine_ctx);
  asan_enter_fiber(self->asan_fake_stack_);
}

Fiber* Fiber::current() { return g_current; }

}  // namespace bfly::sim
