#include "sim/fiber.hpp"

#include <cassert>
#include <cstdlib>
#include <exception>

namespace bfly::sim {

namespace {
// Single host thread: plain statics are safe and cheap.
Fiber* g_current = nullptr;
ucontext_t g_engine_ctx;
}  // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes,
             std::string name)
    : body_(std::move(body)),
      stack_(new char[stack_bytes]),
      name_(std::move(name)) {
  getcontext(&ctx_);
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = nullptr;  // fibers exit through run_body(), never fall off
  const auto ptr = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xffffffffu));
  state_ = State::kRunnable;
}

Fiber::~Fiber() {
  // Destroying a live fiber abandons its stack; that is fine for simulation
  // teardown (Machine deletes all fibers when a run is abandoned).
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | lo);
  self->run_body();
}

void Fiber::run_body() {
  body_();
  state_ = State::kFinished;
  g_current = nullptr;
  swapcontext(&ctx_, &g_engine_ctx);
  // Never reached.
  std::abort();
}

void Fiber::resume() {
  assert(g_current == nullptr && "resume() must be called from the engine");
  assert(state_ == State::kRunnable || state_ == State::kBlocked);
  state_ = State::kRunning;
  g_current = this;
  swapcontext(&g_engine_ctx, &ctx_);
}

void Fiber::yield_to_engine() {
  Fiber* self = g_current;
  assert(self != nullptr && "yield_to_engine() must be called from a fiber");
  self->state_ = State::kBlocked;
  g_current = nullptr;
  swapcontext(&self->ctx_, &g_engine_ctx);
}

Fiber* Fiber::current() { return g_current; }

}  // namespace bfly::sim
