#include "sim/machine.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <exception>
#include <thread>

#include "parsim/driver.hpp"
#include "parsim/mailbox.hpp"
#include "parsim/msg.hpp"

namespace bfly::sim {

// --- Parallel host engine run state (see DESIGN.md §4f) --------------------
//
// Everything a shard owns during a parallel run: its event heap/clock, its
// RNG stream, the running-fiber pointer, fast-path counters, and the inbox
// other shards send into.  Shards are heap-allocated once per run so their
// addresses stay stable in the worker threads' TLS.
struct ParsimRun {
  struct Shard {
    Engine engine;
    Rng rng{0};
    Machine::FiberCtl* cur = nullptr;  ///< fiber running on this shard
    Time window_edge = 0;              ///< current conservative window edge
    std::uint64_t fiber_resumes = 0;
    std::uint64_t fastpath_charges = 0;
    std::uint64_t messages = 0;        ///< messages delivered to this shard
    std::uint32_t index = 0;
    parsim::Mailbox inbox;
    std::vector<parsim::Msg> staged;   ///< drain buffer, reused per window
  };
  std::vector<std::unique_ptr<Shard>> shard;
  /// Per-*node* message sequence counters: the deterministic tie-break key
  /// for mailbox delivery.  Only ever incremented by the node's owning
  /// shard, so no synchronization — McKenney per-CPU style.
  std::vector<std::uint64_t> node_seq;
};

namespace {
// The shard whose event loop is executing on this host thread (null outside
// parallel runs).  One worker drives several shards; the adapter points this
// at the right shard before every drain/window callback.
thread_local ParsimRun::Shard* t_shard = nullptr;
}  // namespace

// Machine <-> parsim::Driver glue.  The driver knows nothing about fibers or
// memory; these three hooks are the entire surface it drives.
struct ParsimAdapter final : parsim::ShardProgram {
  explicit ParsimAdapter(Machine* m) : m_(m) {}

  void shard_drain(std::uint32_t s) override {
    ParsimRun::Shard* sh = m_->par_->shard[s].get();
    t_shard = sh;
    sh->staged.clear();
    sh->inbox.drain(&sh->staged);  // sorted (arrive, src_node, seq)
    for (parsim::Msg& msg : sh->staged) {
      // Message deliveries ride the engine heap as tagged fiber events
      // (pointer bit 0), so they interleave with resumes in (t, seq) order
      // and count toward pending_fiber_events for quiescence.
      auto* pm = new parsim::Msg(std::move(msg));
      sh->engine.post_fiber_at(
          pm->arrive, reinterpret_cast<void*>(
                          reinterpret_cast<std::uintptr_t>(pm) | 1u));
    }
    sh->messages += sh->staged.size();
    sh->staged.clear();
  }

  Time shard_next_time(std::uint32_t s) override {
    Engine& e = m_->par_->shard[s]->engine;
    return e.empty() ? parsim::kTimeNever : e.next_time();
  }

  void shard_window(std::uint32_t s, Time edge) override {
    ParsimRun::Shard* sh = m_->par_->shard[s].get();
    t_shard = sh;
    sh->window_edge = edge;
    sh->engine.run_until(edge);
  }

 private:
  Machine* m_;
};

Machine::Machine(MachineConfig cfg, FaultPlan faults)
    : cfg_(cfg),
      faults_(std::move(faults)),
      fabric_(cfg),
      rng_(cfg.seed),
      fault_rng_(faults_.seed),
      stats_(cfg.nodes),
      node_(cfg.nodes),
      node_dead_(cfg.nodes, 0) {
  engine_.set_fiber_handler(&Machine::fiber_event, this);
  fastpath_ = cfg_.host_fastpath;
  if (const char* v = std::getenv("BFLY_NO_FASTPATH");
      v != nullptr && v[0] != '\0' && v[0] != '0') {
    fastpath_ = false;
  }
  std::uint32_t shards = cfg_.host_shards;
  if (const char* v = std::getenv("BFLY_HOST_SHARDS");
      v != nullptr && v[0] != '\0') {
    shards = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
  }
  eff_shards_ = std::min(std::max(shards, 1u), cfg_.nodes);
  combining_ = fabric_.combining();
  if (combining_) fabric_.set_stats(&stats_);
  if (faults_.any()) {
    fault_checks_ = true;
    fabric_.configure_faults(faults_, &fault_rng_);
    fabric_.set_stats(&stats_);
    // Re-validate the whole kill list: a plan assembled by hand (directly
    // into node_kills) must hit the same duplicate / Time-0 checks as one
    // built through kill().
    faults_.validate();
    for (const FaultPlan::NodeKill& k : faults_.node_kills) {
      if (k.node >= cfg_.nodes) throw SimError("FaultPlan: bad node in kill");
      engine_.post_at(k.at,
                      [this, n = k.node, s = k.silent] { do_kill(n, s); });
    }
    for (const FaultPlan::SlowNode& s : faults_.slow_nodes) {
      if (s.node >= cfg_.nodes)
        throw SimError("FaultPlan: bad node in slow window");
    }
    has_slow_ = !faults_.slow_nodes.empty();
    for (const FaultPlan::CardFail& c : faults_.card_fails) {
      if (c.stage >= fabric_.stages() || c.card >= fabric_.cards())
        throw SimError("FaultPlan: bad stage/card in card fail");
      engine_.post_at(c.at, [this, s = c.stage, cd = c.card] {
        fabric_.fail_card(s, cd);
      });
    }
    for (const FaultPlan::LinkFail& l : faults_.link_fails) {
      if (l.stage >= fabric_.stages() || l.link >= fabric_.wires())
        throw SimError("FaultPlan: bad stage/link in link fail");
      engine_.post_at(l.at, [this, s = l.stage, w = l.link] {
        fabric_.fail_link(s, w);
      });
    }
    for (const FaultPlan::Partition& p : faults_.partitions) {
      Cut cut;
      cut.start = p.start;
      cut.heal = p.heal;
      cut.side.assign(cfg_.nodes, 0);
      for (NodeId n : p.side_a) {
        if (n >= cfg_.nodes)
          throw SimError("FaultPlan: bad node in partition side");
        cut.side[n] = 1;
      }
      for (NodeId n : p.side_b) {
        if (n >= cfg_.nodes)
          throw SimError("FaultPlan: bad node in partition side");
        cut.side[n] = 2;
      }
      cuts_.push_back(std::move(cut));
    }
    has_cuts_ = !cuts_.empty();
  }
}

Machine::~Machine() = default;

// --- Fibers -------------------------------------------------------------

Fiber* Machine::spawn(NodeId node, std::function<void()> body,
                      std::string name, Time start_delay) {
  Fiber* f = spawn_parked(node, std::move(body), std::move(name));
  if (par_active_) {
    // Fibers spawned mid-run land on their node's shard (== the spawner's;
    // spawn_parked rejects cross-shard spawns) at the shard's local time.
    std::lock_guard<std::mutex> g(fiber_mu_);
    schedule_resume(ctl(f), t_shard->engine.now() + start_delay);
    return f;
  }
  schedule_resume(ctl(f), engine_.now() + start_delay);
  return f;
}

Fiber* Machine::spawn_parked(NodeId node, std::function<void()> body,
                             std::string name) {
  if (node >= cfg_.nodes) throw SimError("spawn: bad node id");
  if (fault_checks_ && node_dead_[node]) throw NodeDeadError(node);
  if (par_active_ && (t_shard == nullptr || shard_of(node) != t_shard->index))
    throw SimError(
        "parsim: cross-shard spawn during a parallel run (spawn onto the "
        "target node from one of its own fibers, or use host_shards=1)");
  auto fiber = std::make_unique<Fiber>(std::move(body),
                                       cfg_.fiber_stack_bytes,
                                       std::move(name));
  Fiber* f = fiber.get();
  FiberCtl c;
  c.fiber = std::move(fiber);
  c.node = node;
  c.shard = shard_of(node);
  {
    std::unique_lock<std::mutex> lk(fiber_mu_, std::defer_lock);
    if (par_active_) lk.lock();
    auto [it, ok] = fibers_.emplace(f, std::move(c));
    assert(ok);
    (void)ok;
    live_link(&it->second);
  }
  if (observer_) {
    HookScope h(this);
    observer_->on_spawn(Fiber::current(), f);
  }
  return f;
}

Machine::FiberCtl* Machine::ctl(Fiber* f) {
  auto it = fibers_.find(f);
  return it == fibers_.end() ? nullptr : &it->second;
}

NodeId Machine::current_node() const {
  FiberCtl* c = current_ctl();
  if (c == nullptr) throw SimError("current_node: not on a fiber");
  return c->node;
}

NodeId Machine::node_of(Fiber* f) const {
  if (par_active_) {
    ParsimRun::Shard* sh = t_shard;
    if (sh != nullptr && sh->cur != nullptr && sh->cur->fiber.get() == f)
      return sh->cur->node;
    std::lock_guard<std::mutex> g(fiber_mu_);
    auto it = fibers_.find(f);
    if (it == fibers_.end()) throw SimError("node_of: unknown fiber");
    return it->second.node;
  }
  if (cur_ctl_ != nullptr && cur_ctl_->fiber.get() == f) return cur_ctl_->node;
  auto it = fibers_.find(f);
  if (it == fibers_.end()) throw SimError("node_of: unknown fiber");
  return it->second.node;
}

NodeId Machine::trace_node() const {
  FiberCtl* c = current_ctl();
  return c == nullptr ? kTraceHostNode : c->node;
}

void Machine::live_link(FiberCtl* c) {
  c->live_prev = live_tail_;
  c->live_next = nullptr;
  if (live_tail_ != nullptr) {
    live_tail_->live_next = c;
  } else {
    live_head_ = c;
  }
  live_tail_ = c;
  ++live_count_;
}

void Machine::live_unlink(FiberCtl* c) {
  if (c->live_prev != nullptr) {
    c->live_prev->live_next = c->live_next;
  } else {
    live_head_ = c->live_next;
  }
  if (c->live_next != nullptr) {
    c->live_next->live_prev = c->live_prev;
  } else {
    live_tail_ = c->live_prev;
  }
  --live_count_;
}

void Machine::reap(FiberCtl* c) {
  std::unique_lock<std::mutex> lk(fiber_mu_, std::defer_lock);
  if (par_active_) lk.lock();
  live_unlink(c);
  fibers_.erase(c->fiber.get());  // destroys c and frees the stack
}

void Machine::fiber_event(void* machine, void* payload) {
  auto* m = static_cast<Machine*>(machine);
  const auto bits = reinterpret_cast<std::uintptr_t>(payload);
  if (bits & 1u) {
    // Tagged pointer: a cross-shard message delivery riding the fiber-event
    // heap (see ParsimAdapter::shard_drain).
    m->par_deliver(reinterpret_cast<parsim::Msg*>(bits & ~std::uintptr_t{1}));
    return;
  }
  m->do_resume(static_cast<FiberCtl*>(payload));
}

void Machine::do_resume(FiberCtl* c) {
  // A FiberCtl with a pending resume is never reaped (do_kill defers to the
  // pending event, abandon() forbids it), so `c` is always alive here.
  assert(c->resume_pending);
  c->resume_pending = false;
  Fiber* f = c->fiber.get();
  if (par_active_) {
    ParsimRun::Shard* sh = t_shard;
    assert(sh != nullptr && c->shard == sh->index &&
           "fiber resumed off its owning shard");
    ++sh->fiber_resumes;
    sh->cur = c;
    f->resume();
    sh->cur = nullptr;
    if (f->finished()) reap(c);
    return;
  }
  ++fiber_resumes_;
  cur_ctl_ = c;
  f->resume();
  cur_ctl_ = nullptr;
  if (f->finished()) reap(c);
}

void Machine::schedule_resume(FiberCtl* c, Time at) {
  assert(!c->resume_pending);
  c->resume_pending = true;
  if (par_active_) {
    ParsimRun::Shard* sh = t_shard;
    assert(sh != nullptr && c->shard == sh->index &&
           "resume scheduled off the owning shard");
    sh->engine.post_fiber_at(at, c);
    return;
  }
  engine_.post_fiber_at(at, c);
}

Time Machine::run() {
  if (eff_shards_ > 1) {
    par_forfeit_ = parallel_forfeit_reason();
    if (par_forfeit_ == nullptr) return par_run();
  } else {
    par_forfeit_ = "host_shards=1";
  }
  par_stats_ = ParallelRunStats{};
  return engine_.run();
}

std::vector<Fiber*> Machine::blocked_fibers() const {
  std::vector<Fiber*> out;
  for (FiberCtl* c = live_head_; c != nullptr; c = c->live_next)
    if (c->fiber->state() == Fiber::State::kBlocked)
      out.push_back(c->fiber.get());
  return out;
}

// --- Time ----------------------------------------------------------------

void Machine::check_kill(FiberCtl* c) {
  if (!c->killed) return;
  // A destructor running during the FiberKill unwind may reach a yield
  // point; yielding mid-unwind would corrupt the fiber, so timed operations
  // silently complete instantly on an already-dying fiber.
  if (std::uncaught_exceptions() > 0) return;
  throw FiberKill{};
}

void Machine::charge(Time ns) {
  if (par_active_) {
    par_charge(ns);
    return;
  }
  FiberCtl* c = current_ctl();
  if (c == nullptr) throw SimError("charge: not on a fiber");
  if (fault_checks_ && c->killed) {
    check_kill(c);
    return;  // in-flight exception: complete instantly, do not yield
  }
  const Time at = engine_.now() + ns;
  // Switch-free fast path: when this fiber's resume would be *strictly*
  // earlier than every pending event, the slow path's yield provably hands
  // control straight back — the engine would pop our fresh resume event
  // first (strictly earlier beats every pending time; a tie would lose on
  // sequence number, hence "strictly") and no other fiber, fault, or
  // observer-visible action can run in between.  So warp the clock and keep
  // going: no heap traffic, no context switch.  Disabled whenever anything
  // could legitimately interleave or watch: pending kills/faults
  // (fault_checks_), a requested engine stop, or attached instrumentation
  // (observers/trace sinks deliberately ride the battle-tested slow path;
  // the uncharged harnesses then cross-check the two).  The skipped
  // post_fiber_at also never burns an engine sequence number, which is
  // unobservable: relative order among the *other* events is unchanged.
  if (fastpath_ && !fault_checks_ && observer_ == nullptr &&
      trace_ == nullptr && wait_observer_ == nullptr &&
      !engine_.stop_requested() &&
      (engine_.empty() || at < engine_.next_time())) {
    engine_.warp_to(at);
    ++fastpath_charges_;
    return;
  }
  // A charge from inside an observer hook breaks the uncharged contract
  // (hooks run only when an observer is attached, which forfeits the fast
  // path above — so this check is complete here).
  if (hook_depth_ != 0) ++hook_charges_;
  schedule_resume(c, at);
  Fiber::yield_to_engine();
  if (fault_checks_) check_kill(c);
}

void Machine::charged_compute(Time ns) {
  stats_.node[current_node()].compute_ns += ns;
  charge(ns);
}

void Machine::sleep_until(Time t) {
  const Time n = now();  // shard-local clock during parallel runs
  charge(t > n ? t - n : 0);
}

void Machine::park() {
  FiberCtl* c = current_ctl();
  if (c == nullptr) throw SimError("park: not on a fiber");
  if (fault_checks_) {
    if (c->killed) {
      check_kill(c);
      return;
    }
    Fiber::yield_to_engine();
    check_kill(c);
    return;
  }
  Fiber::yield_to_engine();
}

void Machine::wakeup(Fiber* f, Time delay) {
  if (par_active_) {
    par_wakeup(f, delay);
    return;
  }
  FiberCtl* c = ctl(f);
  if (c == nullptr) return;  // already finished
  if (c->killed) return;     // doomed; it unwinds through its own path
  if (c->resume_pending || f->state() == Fiber::State::kRunning) {
    // The target is not parked.  Single-threaded cooperative scheduling
    // means a correct synchronization layer re-checks its state before
    // parking, so dropping this wakeup is safe and expected.
    return;
  }
  schedule_resume(c, engine_.now() + delay);
}

// --- Faults ---------------------------------------------------------------

void Machine::kill_node(NodeId node, Time at, bool silent) {
  if (node >= cfg_.nodes) throw SimError("kill_node: bad node");
  fault_checks_ = true;
  engine_.post_at(at, [this, node, silent] { do_kill(node, silent); });
}

std::uint64_t Machine::on_node_death(std::function<void(NodeId)> fn) {
  const std::uint64_t id = next_observer_id_++;
  death_observers_.push_back(DeathObserver{id, std::move(fn)});
  return id;
}

void Machine::remove_death_observer(std::uint64_t id) {
  std::erase_if(death_observers_,
                [id](const DeathObserver& o) { return o.id == id; });
}

std::uint64_t Machine::on_node_crash(std::function<void(NodeId)> fn) {
  const std::uint64_t id = next_observer_id_++;
  crash_observers_.push_back(DeathObserver{id, std::move(fn)});
  return id;
}

void Machine::remove_crash_observer(std::uint64_t id) {
  std::erase_if(crash_observers_,
                [id](const DeathObserver& o) { return o.id == id; });
}

void Machine::do_kill(NodeId n, bool silent) {
  if (n >= cfg_.nodes || node_dead_[n]) return;
  node_dead_[n] = 1;
  ++dead_nodes_count_;
  // Observers first: recovery layers capture in-flight state (which task a
  // manager was running, which requests a server held) while the scheduler's
  // view of the node is still intact.  Index loop: an observer may register
  // further observers but must not unregister others.
  for (std::size_t i = 0; i < death_observers_.size(); ++i)
    death_observers_[i].fn(n);
  // The machine-check broadcast: skipped for a silent kill, so recovery
  // layers stay oblivious until a failure detector or a doomed reference
  // finds the corpse.
  if (!silent)
    for (std::size_t i = 0; i < crash_observers_.size(); ++i)
      crash_observers_[i].fn(n);
  // Now tear down the node's fibers, in spawn order.  Victims are collected
  // as Fiber* and re-validated through the map: one victim's unwind may
  // reap another (a destructor calling abandon()).
  std::vector<Fiber*> victims;
  for (FiberCtl* c = live_head_; c != nullptr; c = c->live_next)
    if (c->node == n) victims.push_back(c->fiber.get());
  for (Fiber* f : victims) {
    FiberCtl* c = ctl(f);
    if (c == nullptr) continue;
    c->killed = true;
    // A fiber with a resume already queued unwinds when that event fires
    // (charge() re-checks killed on wakeup).
    if (c->resume_pending) continue;
    if (f->state() == Fiber::State::kRunnable) {
      // Never ran: nothing on its stack to unwind, drop it outright.
      reap(c);
      continue;
    }
    // Parked: resume it so park() raises FiberKill and the stack unwinds
    // through run_body, running destructors along the way.
    ++fiber_resumes_;
    cur_ctl_ = c;
    f->resume();
    cur_ctl_ = nullptr;
    if (f->finished()) reap(c);
  }
}

bool Machine::cut_between(NodeId a, NodeId b) const {
  const Time now = engine_.now();
  for (const Cut& c : cuts_) {
    if (now < c.start || now >= c.heal) continue;
    const std::int8_t sa = c.side[a];
    const std::int8_t sb = c.side[b];
    // Nodes listed on neither side keep full connectivity to both.
    if (sa != 0 && sb != 0 && sa != sb) return true;
  }
  return false;
}

bool Machine::reachable(NodeId a, NodeId b) const {
  if (a >= cfg_.nodes || b >= cfg_.nodes) return false;
  if (a == b) return true;
  if (has_cuts_ && cut_between(a, b)) return false;
  return fabric_.has_path(a, b);
}

void Machine::check_reach(NodeId req, NodeId home) {
  if (req == home || !cut_between(req, home)) return;
  ++stats_.net_unreachable_refs;
  // The requester pays the PNC's full futile retry budget: issue overhead
  // plus max_drop_retries timeouts into the void.  Giving up is never
  // cheaper than succeeding, so retry loops above stay honestly priced.
  charge(cfg_.issue_overhead_ns +
         static_cast<Time>(faults_.max_drop_retries) * faults_.drop_retry_ns);
  throw NetUnreachableError(req, home, "partition window");
}

std::uint64_t Machine::on_partition_heal(std::function<void(std::size_t)> fn) {
  const std::uint64_t id = next_observer_id_++;
  heal_observers_.push_back(HealObserver{id, std::move(fn)});
  // Heal events are posted lazily on first subscription: a plan whose heal
  // lies past the workload's natural end would otherwise keep every
  // unobserved run alive until the cut closed.
  if (!heal_events_posted_) {
    heal_events_posted_ = true;
    for (std::size_t i = 0; i < cuts_.size(); ++i)
      if (cuts_[i].heal > engine_.now())
        engine_.post_at(cuts_[i].heal, [this, i] { fire_heal(i); });
  }
  return id;
}

void Machine::remove_heal_observer(std::uint64_t id) {
  std::erase_if(heal_observers_,
                [id](const HealObserver& o) { return o.id == id; });
}

void Machine::fire_heal(std::size_t idx) {
  for (std::size_t i = 0; i < heal_observers_.size(); ++i)
    heal_observers_[i].fn(idx);
}

void Machine::check_node(NodeId home) const {
  if (home >= cfg_.nodes) throw SimError("bad node in address");
}

void Machine::check_target(NodeId home) {
  if (!node_dead_[home]) return;
  ++stats_.dead_node_refs;
  // The requester still pays for the failed transaction: issue overhead,
  // the trip out, and the error reply coming back.
  charge(cfg_.issue_overhead_ns + 2 * fabric_.traversal_ns());
  throw NodeDeadError(home);
}

void Machine::maybe_mem_fault(NodeId home) {
  if (faults_.mem_fault_prob <= 0.0) return;
  if (fault_rng_.uniform() >= faults_.mem_fault_prob) return;
  ++stats_.mem_faults_injected;
  throw MemoryFaultError(home);
}

void Machine::abandon(Fiber* f) {
  if (par_active_) {
    FiberCtl* c = nullptr;
    {
      std::lock_guard<std::mutex> g(fiber_mu_);
      auto it = fibers_.find(f);
      if (it == fibers_.end()) return;  // already finished
      c = &it->second;
    }
    assert(t_shard != nullptr && c->shard == t_shard->index &&
           "parsim: abandon from a foreign shard");
    assert(!c->resume_pending && f->state() != Fiber::State::kRunning);
    reap(c);  // re-locks fiber_mu_
    return;
  }
  FiberCtl* c = ctl(f);
  if (c == nullptr) return;  // already finished
  assert(!c->resume_pending && f->state() != Fiber::State::kRunning);
  reap(c);
}

// --- Memory --------------------------------------------------------------

void Machine::ensure_backing(Node& nd, std::size_t end) const {
  if (end > cfg_.memory_per_node) throw SimError("physical address out of range");
  if (nd.mem.size() < end) {
    std::size_t grown = std::max(end, nd.mem.size() * 2);
    nd.mem.resize(std::min(grown, cfg_.memory_per_node), 0);
  }
}

std::uint8_t* Machine::raw(PhysAddr a, std::size_t n) { return raw_mut(a, n); }

std::uint8_t* Machine::raw_mut(PhysAddr a, std::size_t n) {
  if (a.node >= cfg_.nodes) throw SimError("bad node in address");
  par_assert_owner(a.node);
  Node& nd = node_[a.node];
  ensure_backing(nd, static_cast<std::size_t>(a.offset) + n);
  return nd.mem.data() + a.offset;
}

const std::uint8_t* Machine::raw_const(PhysAddr a, std::size_t n) const {
  if (a.node >= cfg_.nodes) throw SimError("bad node in address");
  par_assert_owner(a.node);
  Node& nd = node_[a.node];
  ensure_backing(nd, static_cast<std::size_t>(a.offset) + n);
  return nd.mem.data() + a.offset;
}

PhysAddr Machine::alloc(NodeId node, std::size_t bytes, std::size_t align) {
  if (node >= cfg_.nodes) throw SimError("alloc: bad node");
  par_assert_owner(node);
  if (fault_checks_ && node_dead_[node]) throw NodeDeadError(node);
  if (bytes == 0) bytes = 1;
  (void)align;  // everything is 8-aligned
  const auto size = static_cast<std::uint32_t>((bytes + 7) & ~std::size_t{7});
  Node& nd = node_[node];
  // First fit over freed blocks.
  for (std::size_t i = 0; i < nd.free_list.size(); ++i) {
    FreeBlock& fb = nd.free_list[i];
    if (fb.size >= size) {
      PhysAddr a{node, fb.offset};
      fb.offset += size;
      fb.size -= size;
      if (fb.size == 0) nd.free_list.erase(nd.free_list.begin() + i);
      nd.allocated += size;
      return a;
    }
  }
  if (nd.high_water + size > cfg_.memory_per_node)
    throw SimError("alloc: node memory exhausted");
  PhysAddr a{node, nd.high_water};
  nd.high_water += size;
  nd.allocated += size;
  return a;
}

void Machine::free(PhysAddr addr, std::size_t bytes) {
  if (addr.node >= cfg_.nodes) return;
  par_assert_owner(addr.node);
  if (observer_) {
    HookScope h(this);
    observer_->on_free(addr, bytes);
  }
  const auto size = static_cast<std::uint32_t>((bytes + 7) & ~std::size_t{7});
  Node& nd = node_[addr.node];
  nd.allocated -= std::min<std::size_t>(nd.allocated, size);
  // The free list is kept sorted by offset so adjacent blocks coalesce on
  // insert — alloc/free churn at one size can never grow it without bound.
  // (Offsets never influence timing — only the home *node* does — so the
  // address-ordered first fit this implies is simulation-neutral.)
  auto it = std::lower_bound(
      nd.free_list.begin(), nd.free_list.end(), addr.offset,
      [](const FreeBlock& fb, std::uint32_t off) { return fb.offset < off; });
  if (it != nd.free_list.begin()) {
    auto prev = it - 1;
    if (prev->offset + prev->size == addr.offset) {
      prev->size += size;
      if (it != nd.free_list.end() &&
          prev->offset + prev->size == it->offset) {
        prev->size += it->size;
        nd.free_list.erase(it);
      }
      return;
    }
  }
  if (it != nd.free_list.end() && addr.offset + size == it->offset) {
    it->offset = addr.offset;
    it->size += size;
    return;
  }
  nd.free_list.insert(it, FreeBlock{addr.offset, size});
}

std::size_t Machine::allocated_on(NodeId node) const {
  return node_[node].allocated;
}

Time Machine::reference_finish(NodeId req, NodeId home, std::uint32_t words,
                               Time* queue_ns) {
  const Time t = engine_.now() + cfg_.issue_overhead_ns;
  Time arrive;
  try {
    arrive = fabric_.route(req, home, t, words);
  } catch (const NetUnreachableError& e) {
    // Dead switch card with no detour, or the PNC's drop-retry budget ran
    // out: the requester pays for the issue plus every futile retry, then
    // the error surfaces with no data moved.
    ++stats_.net_unreachable_refs;
    charge(cfg_.issue_overhead_ns + e.wasted());
    throw;
  }
  Node& h = node_[home];
  const Time start = std::max(arrive, h.module_busy_until);
  if (queue_ns) *queue_ns = start - arrive;
  Time service = static_cast<Time>(words) * cfg_.module_service_ns;
  if (has_slow_) {
    const double f = slow_factor(home);
    if (f != 1.0)
      service = static_cast<Time>(static_cast<double>(service) * f);
  }
  h.module_busy_until = start + service;
  Time finish = start + service;
  if (req != home) finish += fabric_.traversal_ns();  // reply path
  return finish;
}

double Machine::slow_factor(NodeId n) const {
  if (!has_slow_) return 1.0;
  const Time now = engine_.now();
  for (const FaultPlan::SlowNode& s : faults_.slow_nodes)
    if (s.node == n && now >= s.from && now < s.until) return s.factor;
  return 1.0;
}

void Machine::reference(PhysAddr a, std::uint32_t words, MemOp op) {
  assert(!par_active_ &&
         "parallel runs route references through par_word_op");
  const NodeId req = current_node();
  check_node(a.node);
  if (fault_checks_) {
    check_target(a.node);
    if (has_cuts_) check_reach(req, a.node);
  }
  observe_access(a, words, op, req);
  Time q = 0;
  const Time finish = reference_finish(req, a.node, words, &q);
  NodeStats& s = stats_.node[req];
  if (req == a.node) {
    ++s.local_refs;
  } else {
    ++s.remote_refs;
    ++stats_.node[a.node].serviced_remote;
  }
  s.queue_ns += q;
  trace_reference(req, a.node, words, q, op);
  const Time d = finish - engine_.now();
  s.stall_ns += d;
  charge(d);
  if (fault_checks_) maybe_mem_fault(a.node);
}

std::uint32_t Machine::fetch_add_u32(PhysAddr a, std::uint32_t delta) {
  if (par_active_)
    return static_cast<std::uint32_t>(
        par_word_op(a, 1, 4, parsim::RefOp::kFetchAdd, delta));
  if (combining_)
    combining_fetch_add_reference(a);
  else
    reference(a, 1, MemOp::kAtomic);
  auto* p = raw(a, 4);
  std::uint32_t old;
  std::memcpy(&old, p, 4);
  const std::uint32_t nv = old + delta;
  std::memcpy(p, &nv, 4);
  return old;
}

void Machine::combining_fetch_add_reference(PhysAddr a) {
  const NodeId req = current_node();
  check_node(a.node);
  if (fault_checks_) {
    check_target(a.node);
    if (has_cuts_) check_reach(req, a.node);
  }
  observe_access(a, 1, MemOp::kAtomic, req);
  const std::uint64_t key = chan_of(a);
  NodeStats& s = stats_.node[req];
  Time fin = 0;
  if (req != a.node &&
      fabric_.combine_add(key, engine_.now() + cfg_.issue_overhead_ns,
                          &fin)) {
    // Follower: merged at a switch stage; never touches the home module.
    ++s.remote_refs;
    trace_reference(req, a.node, 1, 0, MemOp::kAtomic);
    const Time d = fin > engine_.now() ? fin - engine_.now() : 0;
    s.stall_ns += d;
    charge(d);
  } else {
    // Leader (or local): a normal contended reference, opening a combining
    // window that stays live until the reply fans back down.
    Time q = 0;
    const Time finish = reference_finish(req, a.node, 1, &q);
    if (req == a.node) {
      ++s.local_refs;
    } else {
      ++s.remote_refs;
      ++stats_.node[a.node].serviced_remote;
    }
    s.queue_ns += q;
    trace_reference(req, a.node, 1, q, MemOp::kAtomic);
    if (req != a.node) fabric_.record_add(key, finish);
    const Time d = finish - engine_.now();
    s.stall_ns += d;
    charge(d);
  }
  if (fault_checks_) maybe_mem_fault(a.node);
}

std::uint32_t Machine::fetch_or_u32(PhysAddr a, std::uint32_t bits) {
  if (par_active_)
    return static_cast<std::uint32_t>(
        par_word_op(a, 1, 4, parsim::RefOp::kFetchOr, bits));
  reference(a, 1, MemOp::kAtomic);
  auto* p = raw(a, 4);
  std::uint32_t old;
  std::memcpy(&old, p, 4);
  const std::uint32_t nv = old | bits;
  std::memcpy(p, &nv, 4);
  return old;
}

std::uint32_t Machine::test_and_set(PhysAddr a) {
  if (par_active_)
    return static_cast<std::uint32_t>(
        par_word_op(a, 1, 4, parsim::RefOp::kTestAndSet, 0));
  reference(a, 1, MemOp::kAtomic);
  auto* p = raw(a, 4);
  std::uint32_t old;
  std::memcpy(&old, p, 4);
  const std::uint32_t one = 1;
  std::memcpy(p, &one, 4);
  return old;
}

std::uint32_t Machine::swap_u32(PhysAddr a, std::uint32_t v) {
  if (par_active_)
    return static_cast<std::uint32_t>(
        par_word_op(a, 1, 4, parsim::RefOp::kSwap, v));
  reference(a, 1, MemOp::kAtomic);
  auto* p = raw(a, 4);
  std::uint32_t old;
  std::memcpy(&old, p, 4);
  std::memcpy(p, &v, 4);
  return old;
}

std::uint32_t Machine::cas_u32(PhysAddr a, std::uint32_t expect,
                               std::uint32_t desired) {
  if (par_active_) {
    const std::uint64_t operand =
        (static_cast<std::uint64_t>(expect) << 32) | desired;
    return static_cast<std::uint32_t>(
        par_word_op(a, 1, 4, parsim::RefOp::kCas, operand));
  }
  reference(a, 1, MemOp::kAtomic);
  auto* p = raw(a, 4);
  std::uint32_t old;
  std::memcpy(&old, p, 4);
  if (old == expect) std::memcpy(p, &desired, 4);
  return old;
}

void Machine::block_copy(PhysAddr dst, PhysAddr src, std::size_t bytes) {
  if (bytes == 0) return;
  if (par_active_) {
    par_block_copy(dst, src, bytes);
    return;
  }
  const NodeId req = current_node();
  check_node(src.node);
  check_node(dst.node);
  if (fault_checks_) {
    check_target(src.node);
    check_target(dst.node);
    if (has_cuts_) {
      check_reach(req, src.node);
      check_reach(req, dst.node);
    }
  }
  const std::uint32_t words = word_count(bytes);
  observe_access(src, words, MemOp::kRead, req);
  observe_access(dst, words, MemOp::kWrite, req);
  Time q = 0;
  // Head of the transfer pays full reference latency to the source...
  const Time head = reference_finish(req, src.node, 1, &q);
  // ...then words stream at the block rate, occupying both modules.
  const Time stream = static_cast<Time>(words) * cfg_.block_word_ns;
  const Time occupancy =
      static_cast<Time>(words) * cfg_.module_service_ns;
  node_[src.node].module_busy_until =
      std::max(node_[src.node].module_busy_until, head) + occupancy;
  node_[dst.node].module_busy_until =
      std::max(node_[dst.node].module_busy_until, head) + occupancy;

  NodeStats& s = stats_.node[req];
  s.block_words += words;
  s.queue_ns += q;
  if (src.node != req || dst.node != req) ++s.remote_refs;
  else ++s.local_refs;
  trace_reference(req, src.node, words, q, MemOp::kRead);
  trace_reference(req, dst.node, words, 0, MemOp::kWrite);

  const Time total = (head - engine_.now()) + stream;
  s.stall_ns += total;
  // Move the bytes at completion time.
  std::vector<std::uint8_t> tmp(bytes);
  charge(total);
  // A parity error voids the whole transfer: time charged, no data moved
  // (same contract as reference(); the PNC reports the block as failed).
  if (fault_checks_) maybe_mem_fault(src.node);
  peek_bytes(tmp.data(), src, bytes);
  poke_bytes(dst, tmp.data(), bytes);
}

void Machine::block_read(void* host_dst, PhysAddr src, std::size_t bytes) {
  if (bytes == 0) return;
  if (par_active_) {
    par_block_read(host_dst, src, bytes);
    return;
  }
  const NodeId req = current_node();
  check_node(src.node);
  if (fault_checks_) {
    check_target(src.node);
    if (has_cuts_) check_reach(req, src.node);
  }
  const std::uint32_t words = word_count(bytes);
  observe_access(src, words, MemOp::kRead, req);
  Time q = 0;
  const Time head = reference_finish(req, src.node, 1, &q);
  const Time stream = static_cast<Time>(words) * cfg_.block_word_ns;
  node_[src.node].module_busy_until =
      std::max(node_[src.node].module_busy_until, head) +
      static_cast<Time>(words) * cfg_.module_service_ns;
  NodeStats& s = stats_.node[req];
  s.block_words += words;
  s.queue_ns += q;
  if (src.node != req) ++s.remote_refs;
  else ++s.local_refs;
  trace_reference(req, src.node, words, q, MemOp::kRead);
  const Time total = (head - engine_.now()) + stream;
  s.stall_ns += total;
  charge(total);
  if (fault_checks_) maybe_mem_fault(src.node);
  peek_bytes(host_dst, src, bytes);
}

void Machine::block_write(PhysAddr dst, const void* host_src,
                          std::size_t bytes) {
  if (bytes == 0) return;
  if (par_active_) {
    par_block_write(dst, host_src, bytes);
    return;
  }
  const NodeId req = current_node();
  check_node(dst.node);
  if (fault_checks_) {
    check_target(dst.node);
    if (has_cuts_) check_reach(req, dst.node);
  }
  const std::uint32_t words = word_count(bytes);
  observe_access(dst, words, MemOp::kWrite, req);
  Time q = 0;
  const Time head = reference_finish(req, dst.node, 1, &q);
  const Time stream = static_cast<Time>(words) * cfg_.block_word_ns;
  node_[dst.node].module_busy_until =
      std::max(node_[dst.node].module_busy_until, head) +
      static_cast<Time>(words) * cfg_.module_service_ns;
  NodeStats& s = stats_.node[req];
  s.block_words += words;
  s.queue_ns += q;
  if (dst.node != req) ++s.remote_refs;
  else ++s.local_refs;
  trace_reference(req, dst.node, words, q, MemOp::kWrite);
  const Time total = (head - engine_.now()) + stream;
  s.stall_ns += total;
  charge(total);
  if (fault_checks_) maybe_mem_fault(dst.node);
  poke_bytes(dst, host_src, bytes);
}

void Machine::access_words(PhysAddr a, std::uint32_t n, bool write) {
  (void)write;
  if (n == 0) return;
  if (par_active_) {
    par_access_words(a, n);
    return;
  }
  const NodeId req = current_node();
  check_node(a.node);
  if (fault_checks_) {
    check_target(a.node);
    if (has_cuts_) check_reach(req, a.node);
  }
  // Aggregate traffic: counted for contention lints, never race-checked
  // (these calls model reference volume, not individual data accesses).
  observe_access(a, n, MemOp::kAggregate, req);
  // n back-to-back single-word references; the requester is latency-bound,
  // so each starts when the previous completes.  Only the first can queue
  // behind foreign traffic (an approximation that keeps this O(1)).
  Time q = 0;
  const Time first = reference_finish(req, a.node, 1, &q);
  const Time per = first - engine_.now() - q;  // uncontended latency
  node_[a.node].module_busy_until +=
      static_cast<Time>(n - 1) * cfg_.module_service_ns;
  NodeStats& s = stats_.node[req];
  if (req == a.node) s.local_refs += n;
  else {
    s.remote_refs += n;
    stats_.node[a.node].serviced_remote += n;
  }
  s.queue_ns += q;
  trace_reference(req, a.node, n, q, MemOp::kAggregate);
  const Time total = q + static_cast<Time>(n) * per;
  s.stall_ns += total;
  charge(total);
}

// --- Parallel host engine (src/parsim; see DESIGN.md §4f) ------------------

const char* Machine::parallel_forfeit_reason() const {
  // The forfeit matrix: anything that needs the single global event order —
  // faults and their unwind machinery, contention modelling (global switch
  // port state), attached instrumentation (observers promise the serial
  // event order), or host timers riding the serial engine — runs serially,
  // byte-identical to host_shards=1.  Same philosophy as the charge() fast
  // path: the optimization silently steps aside whenever anything could
  // watch the difference.
  if (fault_checks_) return "fault plan or kill_node active";
  if (cfg_.model_switch_contention) return "switch contention model active";
  if (observer_ != nullptr) return "memory observer attached";
  if (trace_ != nullptr) return "trace sink attached";
  if (wait_observer_ != nullptr) return "wait observer attached";
  if (!death_observers_.empty() || !crash_observers_.empty())
    return "death/crash observers registered";
  if (!heal_observers_.empty()) return "heal observers registered";
  if (engine_.pending() != engine_.pending_fiber_events())
    return "timer/closure events pending";
  return nullptr;
}

Time Machine::par_run() {
  const std::uint32_t shards = eff_shards_;
  std::uint32_t threads = cfg_.host_threads;
  if (const char* v = std::getenv("BFLY_HOST_THREADS");
      v != nullptr && v[0] != '\0') {
    threads = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
  }
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min(shards, hw == 0 ? 1u : hw);
  }
  threads = std::max(1u, std::min(threads, shards));

  par_ = std::make_unique<ParsimRun>();
  par_->node_seq.assign(cfg_.nodes, 0);
  par_->shard.reserve(shards);
  for (std::uint32_t i = 0; i < shards; ++i) {
    auto sh = std::make_unique<ParsimRun::Shard>();
    sh->index = i;
    sh->engine.set_fiber_handler(&Machine::fiber_event, this);
    sh->engine.warp_to(engine_.now());
    // Per-shard RNG stream: deterministic in (seed, shard index), so a run
    // is bit-identical for a fixed shard count regardless of thread count.
    sh->rng.reseed(cfg_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    par_->shard.push_back(std::move(sh));
  }
  // Tag every live fiber with its owning shard, then split the serial heap:
  // take_earliest yields events in global (t, seq) order, so per-shard
  // reposting preserves each shard's tie order exactly.
  for (FiberCtl* c = live_head_; c != nullptr; c = c->live_next)
    c->shard = shard_of(c->node);
  Time t = 0;
  void* payload = nullptr;
  Engine::Action fn;
  while (engine_.take_earliest(&t, &payload, &fn)) {
    assert(payload != nullptr && "closure event past the forfeit check");
    auto* c = static_cast<FiberCtl*>(payload);
    par_->shard[c->shard]->engine.post_fiber_at(t, payload);
  }

  ParsimAdapter adapter(this);
  parsim::Driver driver(adapter, shards, threads, fabric_.traversal_ns());
  par_active_ = true;
  try {
    driver.run();
  } catch (...) {
    // A worker threw (cross-shard spawn, bad address, ...): shard clocks and
    // heaps are no longer coherent with the serial engine, so drop the run
    // state and surface the error — same contract as a serial run() whose
    // workload threw out of a closure.
    par_active_ = false;
    t_shard = nullptr;
    par_.reset();
    throw;
  }
  par_active_ = false;
  t_shard = nullptr;

  Time final_t = engine_.now();
  std::uint64_t msgs = 0;
  for (const auto& sh : par_->shard) {
    final_t = std::max(final_t, sh->engine.now());
    fiber_resumes_ += sh->fiber_resumes;
    fastpath_charges_ += sh->fastpath_charges;
    par_events_ += sh->engine.events_dispatched();
    msgs += sh->messages;
    assert(sh->engine.empty());
  }
  engine_.warp_to(final_t);
  if (engine_.pending() != 0)
    throw SimError(
        "parsim: engine().post_at during a parallel run — host timers "
        "forfeit parallelism; run with host_shards=1");
  const parsim::DriverStats& ds = driver.stats();
  par_stats_ = ParallelRunStats{shards, threads, ds.windows, msgs,
                                ds.barrier_wait_ns, ds.run_wall_ns};
  par_.reset();
  return final_t;
}

Time Machine::par_now() const {
  ParsimRun::Shard* sh = t_shard;
  return sh != nullptr ? sh->engine.now() : engine_.now();
}

Rng& Machine::par_rng() {
  ParsimRun::Shard* sh = t_shard;
  return sh != nullptr ? sh->rng : rng_;
}

Machine::FiberCtl* Machine::par_current_ctl(Fiber* f) const {
  ParsimRun::Shard* sh = t_shard;
  if (sh != nullptr && sh->cur != nullptr && sh->cur->fiber.get() == f)
    return sh->cur;
  std::lock_guard<std::mutex> g(fiber_mu_);
  auto it = fibers_.find(f);
  return it == fibers_.end() ? nullptr : const_cast<FiberCtl*>(&it->second);
}

std::size_t Machine::par_pending_fiber_events() const {
  // Global AND across shards: scheduled resumes plus in-heap message
  // deliveries (messages post as tagged fiber events) plus messages still
  // sitting in a mailbox — so a machine with a cross-shard reference in
  // flight never reports quiescent.
  std::size_t n = 0;
  for (const auto& sh : par_->shard)
    n += sh->engine.pending_fiber_events() + sh->inbox.size();
  return n;
}

void Machine::par_assert_owner([[maybe_unused]] NodeId n) const {
  assert((!par_active_ ||
          (t_shard != nullptr && shard_of(n) == t_shard->index)) &&
         "Machine node internals touched from a non-owning shard thread");
}

void Machine::par_charge(Time ns) {
  ParsimRun::Shard* sh = t_shard;
  FiberCtl* c = sh != nullptr ? sh->cur : nullptr;
  if (c == nullptr) throw SimError("charge: not on a fiber");
  Engine& eng = sh->engine;
  const Time at = eng.now() + ns;
  // Same proof as the serial fast path (observers, faults and stop() are
  // all forfeit conditions, so only the heap check remains), plus one new
  // bound: the resume must stay strictly inside the current window, because
  // a cross-shard message may arrive at any time >= the edge.
  if (fastpath_ && at < sh->window_edge &&
      (eng.empty() || at < eng.next_time())) {
    eng.warp_to(at);
    ++sh->fastpath_charges;
    return;
  }
  schedule_resume(c, at);
  Fiber::yield_to_engine();
}

void Machine::par_wakeup(Fiber* f, Time delay) {
  ParsimRun::Shard* sh = t_shard;
  if (sh == nullptr) throw SimError("wakeup: not on a shard thread");
  FiberCtl* c = nullptr;
  {
    std::lock_guard<std::mutex> g(fiber_mu_);
    auto it = fibers_.find(f);
    if (it == fibers_.end()) return;  // already finished
    c = &it->second;
  }
  if (c->shard == sh->index) {
    // Same shard: serial wakeup semantics verbatim.
    if (c->resume_pending || f->state() == Fiber::State::kRunning) return;
    schedule_resume(c, sh->engine.now() + delay);
    return;
  }
  // Cross-shard: the wakeup becomes a message and lands one switch
  // traversal later — it crosses the same switch as every other cross-node
  // signal, which is exactly what makes the lookahead window sound.  The
  // owner revalidates at delivery, so a fiber that finished (or a reused
  // address) in the meantime is dropped — the same contract as serial
  // wakeup on a non-parked fiber.
  FiberCtl* self = sh->cur;
  if (self == nullptr) throw SimError("parsim: wakeup outside a fiber");
  parsim::Msg m;
  m.kind = parsim::MsgKind::kWake;
  m.arrive = sh->engine.now() + fabric_.traversal_ns() + delay;
  m.src_node = self->node;
  m.seq = par_->node_seq[self->node]++;
  m.waiter = f;
  par_send(c->shard, std::move(m));
}

Time Machine::par_local_finish(NodeId node, std::uint32_t words,
                               Time* queue_ns) {
  // reference_finish specialized to req == home (route(n, n, t) == t, no
  // reply traversal, no slow-node windows — those forfeit) on the calling
  // shard's engine.
  par_assert_owner(node);
  const Time t = t_shard->engine.now() + cfg_.issue_overhead_ns;
  Node& h = node_[node];
  const Time start = std::max(t, h.module_busy_until);
  if (queue_ns != nullptr) *queue_ns = start - t;
  const Time service = static_cast<Time>(words) * cfg_.module_service_ns;
  h.module_busy_until = start + service;
  return start + service;
}

std::uint64_t Machine::par_word_op(PhysAddr a, std::uint32_t words,
                                   std::uint32_t bytes, parsim::RefOp op,
                                   std::uint64_t operand) {
  ParsimRun::Shard* sh = t_shard;
  FiberCtl* c = sh != nullptr ? sh->cur : nullptr;
  if (c == nullptr) throw SimError("reference: not on a fiber");
  const NodeId req = c->node;
  check_node(a.node);
  NodeStats& s = stats_.node[req];
  if (a.node == req) {
    // Local: no cross-node interaction, serial formulas verbatim.
    Time q = 0;
    const Time finish = par_local_finish(a.node, words, &q);
    ++s.local_refs;
    s.queue_ns += q;
    const Time d = finish - sh->engine.now();
    s.stall_ns += d;
    par_charge(d);
    return par_apply_word(a, op, operand, bytes);
  }
  // Remote: split phase.  The home shard applies the reference (module
  // occupancy + data) at its simulated *arrival* time — arrival order, not
  // issue order; see the determinism contract in DESIGN.md §4f.  All
  // req != home references go through messages, even when both nodes share
  // a shard, so results are independent of the shard count.
  ++s.remote_refs;
  const Time t0 = sh->engine.now();
  parsim::Msg m;
  m.kind = parsim::MsgKind::kRef;
  m.op = op;
  m.arrive = fabric_.route(req, a.node, t0 + cfg_.issue_overhead_ns, words);
  m.src_node = req;
  m.seq = par_->node_seq[req]++;
  m.words = words;
  m.bytes = bytes;
  m.addr = a;
  m.value = operand;
  m.t0 = t0;
  m.waiter = c;
  m.waiter_shard = sh->index;
  par_send(shard_of(a.node), std::move(m));
  Fiber::yield_to_engine();  // the home shard's reply resumes us
  s.queue_ns += c->reply_queue;
  s.stall_ns += sh->engine.now() - t0;
  return c->reply_value;
}

parsim::RefOp Machine::par_read_op() { return parsim::RefOp::kRead; }
parsim::RefOp Machine::par_write_op() { return parsim::RefOp::kWrite; }

void Machine::par_access_words(PhysAddr a, std::uint32_t n) {
  ParsimRun::Shard* sh = t_shard;
  FiberCtl* c = sh != nullptr ? sh->cur : nullptr;
  if (c == nullptr) throw SimError("access_words: not on a fiber");
  const NodeId req = c->node;
  check_node(a.node);
  NodeStats& s = stats_.node[req];
  if (a.node == req) {
    Time q = 0;
    const Time first = par_local_finish(a.node, 1, &q);
    const Time per = first - sh->engine.now() - q;  // uncontended latency
    node_[a.node].module_busy_until +=
        static_cast<Time>(n - 1) * cfg_.module_service_ns;
    s.local_refs += n;
    s.queue_ns += q;
    const Time total = q + static_cast<Time>(n) * per;
    s.stall_ns += total;
    par_charge(total);
    return;
  }
  s.remote_refs += n;
  const Time t0 = sh->engine.now();
  parsim::Msg m;
  m.kind = parsim::MsgKind::kAccessWords;
  m.arrive = fabric_.route(req, a.node, t0 + cfg_.issue_overhead_ns, 1);
  m.src_node = req;
  m.seq = par_->node_seq[req]++;
  m.words = n;
  m.addr = a;
  m.t0 = t0;
  m.waiter = c;
  m.waiter_shard = sh->index;
  par_send(shard_of(a.node), std::move(m));
  Fiber::yield_to_engine();
  s.queue_ns += c->reply_queue;
  s.stall_ns += sh->engine.now() - t0;
}

void Machine::par_block_read(void* host_dst, PhysAddr src, std::size_t bytes) {
  ParsimRun::Shard* sh = t_shard;
  FiberCtl* c = sh != nullptr ? sh->cur : nullptr;
  if (c == nullptr) throw SimError("block_read: not on a fiber");
  const NodeId req = c->node;
  check_node(src.node);
  const std::uint32_t words = word_count(bytes);
  const Time stream = static_cast<Time>(words) * cfg_.block_word_ns;
  NodeStats& s = stats_.node[req];
  s.block_words += words;
  if (src.node == req) {
    Time q = 0;
    const Time head = par_local_finish(src.node, 1, &q);
    node_[src.node].module_busy_until =
        std::max(node_[src.node].module_busy_until, head) +
        static_cast<Time>(words) * cfg_.module_service_ns;
    ++s.local_refs;
    s.queue_ns += q;
    const Time total = (head - sh->engine.now()) + stream;
    s.stall_ns += total;
    par_charge(total);
    peek_bytes(host_dst, src, bytes);
    return;
  }
  ++s.remote_refs;
  const Time t0 = sh->engine.now();
  parsim::Msg m;
  m.kind = parsim::MsgKind::kBlockRead;
  m.arrive = fabric_.route(req, src.node, t0 + cfg_.issue_overhead_ns, 1);
  m.src_node = req;
  m.seq = par_->node_seq[req]++;
  m.words = words;
  m.bytes = static_cast<std::uint32_t>(bytes);
  m.addr = src;
  m.waiter = c;
  m.waiter_shard = sh->index;
  par_send(shard_of(src.node), std::move(m));
  Fiber::yield_to_engine();
  s.queue_ns += c->reply_queue;
  s.stall_ns += sh->engine.now() - t0;
  std::memcpy(host_dst, c->reply_blob.data(), bytes);
  c->reply_blob = std::vector<std::uint8_t>();
}

void Machine::par_block_write(PhysAddr dst, const void* host_src,
                              std::size_t bytes) {
  ParsimRun::Shard* sh = t_shard;
  FiberCtl* c = sh != nullptr ? sh->cur : nullptr;
  if (c == nullptr) throw SimError("block_write: not on a fiber");
  const NodeId req = c->node;
  check_node(dst.node);
  const std::uint32_t words = word_count(bytes);
  const Time stream = static_cast<Time>(words) * cfg_.block_word_ns;
  NodeStats& s = stats_.node[req];
  s.block_words += words;
  if (dst.node == req) {
    Time q = 0;
    const Time head = par_local_finish(dst.node, 1, &q);
    node_[dst.node].module_busy_until =
        std::max(node_[dst.node].module_busy_until, head) +
        static_cast<Time>(words) * cfg_.module_service_ns;
    ++s.local_refs;
    s.queue_ns += q;
    const Time total = (head - sh->engine.now()) + stream;
    s.stall_ns += total;
    par_charge(total);
    poke_bytes(dst, host_src, bytes);
    return;
  }
  ++s.remote_refs;
  const Time t0 = sh->engine.now();
  parsim::Msg m;
  m.kind = parsim::MsgKind::kBlockWrite;
  m.arrive = fabric_.route(req, dst.node, t0 + cfg_.issue_overhead_ns, 1);
  m.src_node = req;
  m.seq = par_->node_seq[req]++;
  m.words = words;
  m.bytes = static_cast<std::uint32_t>(bytes);
  m.addr = dst;
  m.waiter = c;
  m.waiter_shard = sh->index;
  m.blob.assign(static_cast<const std::uint8_t*>(host_src),
                static_cast<const std::uint8_t*>(host_src) + bytes);
  par_send(shard_of(dst.node), std::move(m));
  Fiber::yield_to_engine();
  s.queue_ns += c->reply_queue;
  s.stall_ns += sh->engine.now() - t0;
}

void Machine::par_block_copy(PhysAddr dst, PhysAddr src, std::size_t bytes) {
  ParsimRun::Shard* sh = t_shard;
  FiberCtl* c = sh != nullptr ? sh->cur : nullptr;
  if (c == nullptr) throw SimError("block_copy: not on a fiber");
  const NodeId req = c->node;
  check_node(src.node);
  check_node(dst.node);
  const std::uint32_t words = word_count(bytes);
  const Time stream = static_cast<Time>(words) * cfg_.block_word_ns;
  const Time occupancy = static_cast<Time>(words) * cfg_.module_service_ns;
  NodeStats& s = stats_.node[req];
  s.block_words += words;
  if (src.node != req || dst.node != req) ++s.remote_refs;
  else ++s.local_refs;
  const Time t0 = sh->engine.now();
  // Read leg: head-of-transfer latency to the source, data captured by the
  // source's owner.
  Time head = 0;
  std::vector<std::uint8_t> data;
  if (src.node == req) {
    Time q = 0;
    head = par_local_finish(src.node, 1, &q);
    node_[src.node].module_busy_until =
        std::max(node_[src.node].module_busy_until, head) + occupancy;
    s.queue_ns += q;
    data.resize(bytes);
    peek_bytes(data.data(), src, bytes);
    const Time total = (head - t0) + stream;
    s.stall_ns += total;
    par_charge(total);
  } else {
    parsim::Msg m;
    m.kind = parsim::MsgKind::kBlockRead;
    m.arrive = fabric_.route(req, src.node, t0 + cfg_.issue_overhead_ns, 1);
    m.src_node = req;
    m.seq = par_->node_seq[req]++;
    m.words = words;
    m.bytes = static_cast<std::uint32_t>(bytes);
    m.addr = src;
    m.waiter = c;
    m.waiter_shard = sh->index;
    par_send(shard_of(src.node), std::move(m));
    Fiber::yield_to_engine();
    s.queue_ns += c->reply_queue;
    head = c->reply_value;  // source-side head-of-transfer completion
    data = std::move(c->reply_blob);
    c->reply_blob = std::vector<std::uint8_t>();
    s.stall_ns += sh->engine.now() - t0;
  }
  // Write leg: the destination module streams the same words starting at
  // `head` (serial formula: busy = max(busy, head) + occupancy).
  if (dst.node == req) {
    node_[dst.node].module_busy_until =
        std::max(node_[dst.node].module_busy_until, head) + occupancy;
    poke_bytes(dst, data.data(), bytes);
    return;
  }
  parsim::Msg w;
  w.kind = parsim::MsgKind::kBlockWrite;
  w.arrive = sh->engine.now() + fabric_.traversal_ns();
  w.src_node = req;
  w.seq = par_->node_seq[req]++;
  w.words = words;
  w.bytes = static_cast<std::uint32_t>(bytes);
  w.addr = dst;
  w.t0 = head;          // busy-update base at the destination
  w.waiter = nullptr;   // fire-and-forget: no reply leg
  w.blob = std::move(data);
  par_send(shard_of(dst.node), std::move(w));
}

void Machine::par_send(std::uint32_t dst_shard, parsim::Msg&& m) {
  par_->shard[dst_shard]->inbox.send(std::move(m));
}

void Machine::par_deliver(parsim::Msg* m) {
  std::unique_ptr<parsim::Msg> owned(m);
  ParsimRun::Shard* sh = t_shard;
  assert(sh != nullptr);
  switch (m->kind) {
    case parsim::MsgKind::kRef: {
      // Home side of a split-phase single reference: module occupancy and
      // the data operation apply now (arrival time), the reply departs at
      // completion.
      const PhysAddr a = m->addr;
      par_assert_owner(a.node);
      Node& h = node_[a.node];
      const Time start = std::max(m->arrive, h.module_busy_until);
      const Time service =
          static_cast<Time>(m->words) * cfg_.module_service_ns;
      h.module_busy_until = start + service;
      ++stats_.node[a.node].serviced_remote;
      m->value = par_apply_word(a, m->op, m->value, m->bytes);
      m->queue_ns = start - m->arrive;
      m->arrive = start + service + fabric_.traversal_ns();
      m->kind = parsim::MsgKind::kReply;
      m->src_node = a.node;
      m->seq = par_->node_seq[a.node]++;
      par_send(m->waiter_shard, std::move(*m));
      return;
    }
    case parsim::MsgKind::kAccessWords: {
      // Aggregate reference volume: the home module serves n back-to-back
      // words; the requester is latency-bound (serial access_words model).
      const PhysAddr a = m->addr;
      par_assert_owner(a.node);
      Node& h = node_[a.node];
      const Time start = std::max(m->arrive, h.module_busy_until);
      const Time q = start - m->arrive;
      const std::uint64_t n = m->words;
      h.module_busy_until =
          start + static_cast<Time>(n) * cfg_.module_service_ns;
      stats_.node[a.node].serviced_remote += n;
      const Time per = cfg_.issue_overhead_ns + 2 * fabric_.traversal_ns() +
                       cfg_.module_service_ns;
      m->queue_ns = q;
      m->arrive = m->t0 + q + static_cast<Time>(n) * per;
      m->kind = parsim::MsgKind::kReply;
      m->src_node = a.node;
      m->seq = par_->node_seq[a.node]++;
      par_send(m->waiter_shard, std::move(*m));
      return;
    }
    case parsim::MsgKind::kBlockRead: {
      const PhysAddr a = m->addr;
      par_assert_owner(a.node);
      Node& h = node_[a.node];
      const Time start = std::max(m->arrive, h.module_busy_until);
      const Time q = start - m->arrive;
      // Head word pays full reference latency; the stream then occupies the
      // module (serial block formulas).
      const Time head =
          start + cfg_.module_service_ns + fabric_.traversal_ns();
      h.module_busy_until =
          head + static_cast<Time>(m->words) * cfg_.module_service_ns;
      m->blob.resize(m->bytes);
      peek_bytes(m->blob.data(), a, m->bytes);
      m->queue_ns = q;
      m->value = head;  // block_copy uses this as the write-leg base
      m->arrive = head + static_cast<Time>(m->words) * cfg_.block_word_ns;
      m->kind = parsim::MsgKind::kReply;
      m->src_node = a.node;
      m->seq = par_->node_seq[a.node]++;
      par_send(m->waiter_shard, std::move(*m));
      return;
    }
    case parsim::MsgKind::kBlockWrite: {
      const PhysAddr a = m->addr;
      par_assert_owner(a.node);
      Node& h = node_[a.node];
      if (m->waiter == nullptr) {
        // Fire-and-forget write leg of a block_copy: t0 carries the
        // transfer head computed at the source.
        h.module_busy_until =
            std::max(h.module_busy_until, m->t0) +
            static_cast<Time>(m->words) * cfg_.module_service_ns;
        poke_bytes(a, m->blob.data(), m->bytes);
        return;
      }
      // Round-trip block_write: same shape as kBlockRead, data flows in.
      const Time start = std::max(m->arrive, h.module_busy_until);
      const Time q = start - m->arrive;
      const Time head =
          start + cfg_.module_service_ns + fabric_.traversal_ns();
      h.module_busy_until =
          head + static_cast<Time>(m->words) * cfg_.module_service_ns;
      poke_bytes(a, m->blob.data(), m->bytes);
      m->blob = std::vector<std::uint8_t>();
      m->queue_ns = q;
      m->value = head;
      m->arrive = head + static_cast<Time>(m->words) * cfg_.block_word_ns;
      m->kind = parsim::MsgKind::kReply;
      m->src_node = a.node;
      m->seq = par_->node_seq[a.node]++;
      par_send(m->waiter_shard, std::move(*m));
      return;
    }
    case parsim::MsgKind::kReply: {
      // Back on the requester's shard at completion time: fill the landing
      // area and resume the waiting fiber synchronously (it blocked with
      // yield_to_engine, not a scheduled resume).
      auto* c = static_cast<FiberCtl*>(m->waiter);
      assert(c != nullptr && c->shard == sh->index);
      c->reply_value = m->value;
      c->reply_queue = m->queue_ns;
      c->reply_blob = std::move(m->blob);
      c->resume_pending = true;
      do_resume(c);
      return;
    }
    case parsim::MsgKind::kWake: {
      // Cross-shard wakeup: revalidate through the fiber map — the target
      // may have finished (or its address been reused) since the sender
      // looked; both cases drop the wakeup, matching serial semantics.
      auto* f = static_cast<Fiber*>(m->waiter);
      FiberCtl* c = nullptr;
      {
        std::lock_guard<std::mutex> g(fiber_mu_);
        auto it = fibers_.find(f);
        if (it != fibers_.end()) c = &it->second;
      }
      if (c == nullptr || c->shard != sh->index) return;
      if (c->resume_pending || f->state() == Fiber::State::kRunning) return;
      schedule_resume(c, sh->engine.now());
      return;
    }
  }
}

std::uint64_t Machine::par_apply_word(PhysAddr a, parsim::RefOp op,
                                      std::uint64_t operand,
                                      std::uint32_t bytes) {
  switch (op) {
    case parsim::RefOp::kRead: {
      std::uint64_t v = 0;
      std::memcpy(&v, raw(a, bytes), bytes);
      return v;
    }
    case parsim::RefOp::kWrite: {
      std::memcpy(raw(a, bytes), &operand, bytes);
      return 0;
    }
    case parsim::RefOp::kFetchAdd: {
      auto* p = raw(a, 4);
      std::uint32_t old;
      std::memcpy(&old, p, 4);
      const std::uint32_t nv = old + static_cast<std::uint32_t>(operand);
      std::memcpy(p, &nv, 4);
      return old;
    }
    case parsim::RefOp::kFetchOr: {
      auto* p = raw(a, 4);
      std::uint32_t old;
      std::memcpy(&old, p, 4);
      const std::uint32_t nv = old | static_cast<std::uint32_t>(operand);
      std::memcpy(p, &nv, 4);
      return old;
    }
    case parsim::RefOp::kTestAndSet: {
      auto* p = raw(a, 4);
      std::uint32_t old;
      std::memcpy(&old, p, 4);
      const std::uint32_t one = 1;
      std::memcpy(p, &one, 4);
      return old;
    }
    case parsim::RefOp::kSwap: {
      auto* p = raw(a, 4);
      std::uint32_t old;
      std::memcpy(&old, p, 4);
      const auto nv = static_cast<std::uint32_t>(operand);
      std::memcpy(p, &nv, 4);
      return old;
    }
    case parsim::RefOp::kCas: {
      auto* p = raw(a, 4);
      std::uint32_t old;
      std::memcpy(&old, p, 4);
      const auto expect = static_cast<std::uint32_t>(operand >> 32);
      const auto desired = static_cast<std::uint32_t>(operand);
      if (old == expect) std::memcpy(p, &desired, 4);
      return old;
    }
  }
  return 0;  // unreachable
}

}  // namespace bfly::sim
