#include "sim/machine.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <exception>

namespace bfly::sim {

Machine::Machine(MachineConfig cfg, FaultPlan faults)
    : cfg_(cfg),
      faults_(std::move(faults)),
      fabric_(cfg),
      rng_(cfg.seed),
      fault_rng_(faults_.seed),
      stats_(cfg.nodes),
      node_(cfg.nodes),
      node_dead_(cfg.nodes, 0) {
  engine_.set_fiber_handler(&Machine::fiber_event, this);
  fastpath_ = cfg_.host_fastpath;
  if (const char* v = std::getenv("BFLY_NO_FASTPATH");
      v != nullptr && v[0] != '\0' && v[0] != '0') {
    fastpath_ = false;
  }
  if (faults_.any()) {
    fault_checks_ = true;
    fabric_.configure_faults(faults_, &fault_rng_);
    fabric_.set_stats(&stats_);
    // Re-validate the whole kill list: a plan assembled by hand (directly
    // into node_kills) must hit the same duplicate / Time-0 checks as one
    // built through kill().
    faults_.validate();
    for (const FaultPlan::NodeKill& k : faults_.node_kills) {
      if (k.node >= cfg_.nodes) throw SimError("FaultPlan: bad node in kill");
      engine_.post_at(k.at,
                      [this, n = k.node, s = k.silent] { do_kill(n, s); });
    }
    for (const FaultPlan::SlowNode& s : faults_.slow_nodes) {
      if (s.node >= cfg_.nodes)
        throw SimError("FaultPlan: bad node in slow window");
    }
    has_slow_ = !faults_.slow_nodes.empty();
    for (const FaultPlan::CardFail& c : faults_.card_fails) {
      if (c.stage >= fabric_.stages() || c.card >= fabric_.cards())
        throw SimError("FaultPlan: bad stage/card in card fail");
      engine_.post_at(c.at, [this, s = c.stage, cd = c.card] {
        fabric_.fail_card(s, cd);
      });
    }
    for (const FaultPlan::LinkFail& l : faults_.link_fails) {
      if (l.stage >= fabric_.stages() || l.link >= fabric_.wires())
        throw SimError("FaultPlan: bad stage/link in link fail");
      engine_.post_at(l.at, [this, s = l.stage, w = l.link] {
        fabric_.fail_link(s, w);
      });
    }
    for (const FaultPlan::Partition& p : faults_.partitions) {
      Cut cut;
      cut.start = p.start;
      cut.heal = p.heal;
      cut.side.assign(cfg_.nodes, 0);
      for (NodeId n : p.side_a) {
        if (n >= cfg_.nodes)
          throw SimError("FaultPlan: bad node in partition side");
        cut.side[n] = 1;
      }
      for (NodeId n : p.side_b) {
        if (n >= cfg_.nodes)
          throw SimError("FaultPlan: bad node in partition side");
        cut.side[n] = 2;
      }
      cuts_.push_back(std::move(cut));
    }
    has_cuts_ = !cuts_.empty();
  }
}

Machine::~Machine() = default;

// --- Fibers -------------------------------------------------------------

Fiber* Machine::spawn(NodeId node, std::function<void()> body,
                      std::string name, Time start_delay) {
  Fiber* f = spawn_parked(node, std::move(body), std::move(name));
  schedule_resume(ctl(f), engine_.now() + start_delay);
  return f;
}

Fiber* Machine::spawn_parked(NodeId node, std::function<void()> body,
                             std::string name) {
  if (node >= cfg_.nodes) throw SimError("spawn: bad node id");
  if (fault_checks_ && node_dead_[node]) throw NodeDeadError(node);
  auto fiber = std::make_unique<Fiber>(std::move(body),
                                       cfg_.fiber_stack_bytes,
                                       std::move(name));
  Fiber* f = fiber.get();
  FiberCtl c;
  c.fiber = std::move(fiber);
  c.node = node;
  auto [it, ok] = fibers_.emplace(f, std::move(c));
  assert(ok);
  (void)ok;
  live_link(&it->second);
  if (observer_) {
    HookScope h(this);
    observer_->on_spawn(Fiber::current(), f);
  }
  return f;
}

Machine::FiberCtl* Machine::ctl(Fiber* f) {
  auto it = fibers_.find(f);
  return it == fibers_.end() ? nullptr : &it->second;
}

NodeId Machine::current_node() const {
  FiberCtl* c = current_ctl();
  if (c == nullptr) throw SimError("current_node: not on a fiber");
  return c->node;
}

NodeId Machine::node_of(Fiber* f) const {
  if (cur_ctl_ != nullptr && cur_ctl_->fiber.get() == f) return cur_ctl_->node;
  auto it = fibers_.find(f);
  if (it == fibers_.end()) throw SimError("node_of: unknown fiber");
  return it->second.node;
}

NodeId Machine::trace_node() const {
  FiberCtl* c = current_ctl();
  return c == nullptr ? kTraceHostNode : c->node;
}

void Machine::live_link(FiberCtl* c) {
  c->live_prev = live_tail_;
  c->live_next = nullptr;
  if (live_tail_ != nullptr) {
    live_tail_->live_next = c;
  } else {
    live_head_ = c;
  }
  live_tail_ = c;
  ++live_count_;
}

void Machine::live_unlink(FiberCtl* c) {
  if (c->live_prev != nullptr) {
    c->live_prev->live_next = c->live_next;
  } else {
    live_head_ = c->live_next;
  }
  if (c->live_next != nullptr) {
    c->live_next->live_prev = c->live_prev;
  } else {
    live_tail_ = c->live_prev;
  }
  --live_count_;
}

void Machine::reap(FiberCtl* c) {
  live_unlink(c);
  fibers_.erase(c->fiber.get());  // destroys c and frees the stack
}

void Machine::fiber_event(void* machine, void* payload) {
  static_cast<Machine*>(machine)->do_resume(static_cast<FiberCtl*>(payload));
}

void Machine::do_resume(FiberCtl* c) {
  // A FiberCtl with a pending resume is never reaped (do_kill defers to the
  // pending event, abandon() forbids it), so `c` is always alive here.
  assert(c->resume_pending);
  c->resume_pending = false;
  Fiber* f = c->fiber.get();
  ++fiber_resumes_;
  cur_ctl_ = c;
  f->resume();
  cur_ctl_ = nullptr;
  if (f->finished()) reap(c);
}

void Machine::schedule_resume(FiberCtl* c, Time at) {
  assert(!c->resume_pending);
  c->resume_pending = true;
  engine_.post_fiber_at(at, c);
}

Time Machine::run() { return engine_.run(); }

std::vector<Fiber*> Machine::blocked_fibers() const {
  std::vector<Fiber*> out;
  for (FiberCtl* c = live_head_; c != nullptr; c = c->live_next)
    if (c->fiber->state() == Fiber::State::kBlocked)
      out.push_back(c->fiber.get());
  return out;
}

// --- Time ----------------------------------------------------------------

void Machine::check_kill(FiberCtl* c) {
  if (!c->killed) return;
  // A destructor running during the FiberKill unwind may reach a yield
  // point; yielding mid-unwind would corrupt the fiber, so timed operations
  // silently complete instantly on an already-dying fiber.
  if (std::uncaught_exceptions() > 0) return;
  throw FiberKill{};
}

void Machine::charge(Time ns) {
  FiberCtl* c = current_ctl();
  if (c == nullptr) throw SimError("charge: not on a fiber");
  if (fault_checks_ && c->killed) {
    check_kill(c);
    return;  // in-flight exception: complete instantly, do not yield
  }
  const Time at = engine_.now() + ns;
  // Switch-free fast path: when this fiber's resume would be *strictly*
  // earlier than every pending event, the slow path's yield provably hands
  // control straight back — the engine would pop our fresh resume event
  // first (strictly earlier beats every pending time; a tie would lose on
  // sequence number, hence "strictly") and no other fiber, fault, or
  // observer-visible action can run in between.  So warp the clock and keep
  // going: no heap traffic, no context switch.  Disabled whenever anything
  // could legitimately interleave or watch: pending kills/faults
  // (fault_checks_), a requested engine stop, or attached instrumentation
  // (observers/trace sinks deliberately ride the battle-tested slow path;
  // the uncharged harnesses then cross-check the two).  The skipped
  // post_fiber_at also never burns an engine sequence number, which is
  // unobservable: relative order among the *other* events is unchanged.
  if (fastpath_ && !fault_checks_ && observer_ == nullptr &&
      trace_ == nullptr && wait_observer_ == nullptr &&
      !engine_.stop_requested() &&
      (engine_.empty() || at < engine_.next_time())) {
    engine_.warp_to(at);
    ++fastpath_charges_;
    return;
  }
  // A charge from inside an observer hook breaks the uncharged contract
  // (hooks run only when an observer is attached, which forfeits the fast
  // path above — so this check is complete here).
  if (hook_depth_ != 0) ++hook_charges_;
  schedule_resume(c, at);
  Fiber::yield_to_engine();
  if (fault_checks_) check_kill(c);
}

void Machine::charged_compute(Time ns) {
  stats_.node[current_node()].compute_ns += ns;
  charge(ns);
}

void Machine::sleep_until(Time t) {
  const Time now = engine_.now();
  charge(t > now ? t - now : 0);
}

void Machine::park() {
  FiberCtl* c = current_ctl();
  if (c == nullptr) throw SimError("park: not on a fiber");
  if (fault_checks_) {
    if (c->killed) {
      check_kill(c);
      return;
    }
    Fiber::yield_to_engine();
    check_kill(c);
    return;
  }
  Fiber::yield_to_engine();
}

void Machine::wakeup(Fiber* f, Time delay) {
  FiberCtl* c = ctl(f);
  if (c == nullptr) return;  // already finished
  if (c->killed) return;     // doomed; it unwinds through its own path
  if (c->resume_pending || f->state() == Fiber::State::kRunning) {
    // The target is not parked.  Single-threaded cooperative scheduling
    // means a correct synchronization layer re-checks its state before
    // parking, so dropping this wakeup is safe and expected.
    return;
  }
  schedule_resume(c, engine_.now() + delay);
}

// --- Faults ---------------------------------------------------------------

void Machine::kill_node(NodeId node, Time at, bool silent) {
  if (node >= cfg_.nodes) throw SimError("kill_node: bad node");
  fault_checks_ = true;
  engine_.post_at(at, [this, node, silent] { do_kill(node, silent); });
}

std::uint64_t Machine::on_node_death(std::function<void(NodeId)> fn) {
  const std::uint64_t id = next_observer_id_++;
  death_observers_.push_back(DeathObserver{id, std::move(fn)});
  return id;
}

void Machine::remove_death_observer(std::uint64_t id) {
  std::erase_if(death_observers_,
                [id](const DeathObserver& o) { return o.id == id; });
}

std::uint64_t Machine::on_node_crash(std::function<void(NodeId)> fn) {
  const std::uint64_t id = next_observer_id_++;
  crash_observers_.push_back(DeathObserver{id, std::move(fn)});
  return id;
}

void Machine::remove_crash_observer(std::uint64_t id) {
  std::erase_if(crash_observers_,
                [id](const DeathObserver& o) { return o.id == id; });
}

void Machine::do_kill(NodeId n, bool silent) {
  if (n >= cfg_.nodes || node_dead_[n]) return;
  node_dead_[n] = 1;
  ++dead_nodes_count_;
  // Observers first: recovery layers capture in-flight state (which task a
  // manager was running, which requests a server held) while the scheduler's
  // view of the node is still intact.  Index loop: an observer may register
  // further observers but must not unregister others.
  for (std::size_t i = 0; i < death_observers_.size(); ++i)
    death_observers_[i].fn(n);
  // The machine-check broadcast: skipped for a silent kill, so recovery
  // layers stay oblivious until a failure detector or a doomed reference
  // finds the corpse.
  if (!silent)
    for (std::size_t i = 0; i < crash_observers_.size(); ++i)
      crash_observers_[i].fn(n);
  // Now tear down the node's fibers, in spawn order.  Victims are collected
  // as Fiber* and re-validated through the map: one victim's unwind may
  // reap another (a destructor calling abandon()).
  std::vector<Fiber*> victims;
  for (FiberCtl* c = live_head_; c != nullptr; c = c->live_next)
    if (c->node == n) victims.push_back(c->fiber.get());
  for (Fiber* f : victims) {
    FiberCtl* c = ctl(f);
    if (c == nullptr) continue;
    c->killed = true;
    // A fiber with a resume already queued unwinds when that event fires
    // (charge() re-checks killed on wakeup).
    if (c->resume_pending) continue;
    if (f->state() == Fiber::State::kRunnable) {
      // Never ran: nothing on its stack to unwind, drop it outright.
      reap(c);
      continue;
    }
    // Parked: resume it so park() raises FiberKill and the stack unwinds
    // through run_body, running destructors along the way.
    ++fiber_resumes_;
    cur_ctl_ = c;
    f->resume();
    cur_ctl_ = nullptr;
    if (f->finished()) reap(c);
  }
}

bool Machine::cut_between(NodeId a, NodeId b) const {
  const Time now = engine_.now();
  for (const Cut& c : cuts_) {
    if (now < c.start || now >= c.heal) continue;
    const std::int8_t sa = c.side[a];
    const std::int8_t sb = c.side[b];
    // Nodes listed on neither side keep full connectivity to both.
    if (sa != 0 && sb != 0 && sa != sb) return true;
  }
  return false;
}

bool Machine::reachable(NodeId a, NodeId b) const {
  if (a >= cfg_.nodes || b >= cfg_.nodes) return false;
  if (a == b) return true;
  if (has_cuts_ && cut_between(a, b)) return false;
  return fabric_.has_path(a, b);
}

void Machine::check_reach(NodeId req, NodeId home) {
  if (req == home || !cut_between(req, home)) return;
  ++stats_.net_unreachable_refs;
  // The requester pays the PNC's full futile retry budget: issue overhead
  // plus max_drop_retries timeouts into the void.  Giving up is never
  // cheaper than succeeding, so retry loops above stay honestly priced.
  charge(cfg_.issue_overhead_ns +
         static_cast<Time>(faults_.max_drop_retries) * faults_.drop_retry_ns);
  throw NetUnreachableError(req, home, "partition window");
}

std::uint64_t Machine::on_partition_heal(std::function<void(std::size_t)> fn) {
  const std::uint64_t id = next_observer_id_++;
  heal_observers_.push_back(HealObserver{id, std::move(fn)});
  // Heal events are posted lazily on first subscription: a plan whose heal
  // lies past the workload's natural end would otherwise keep every
  // unobserved run alive until the cut closed.
  if (!heal_events_posted_) {
    heal_events_posted_ = true;
    for (std::size_t i = 0; i < cuts_.size(); ++i)
      if (cuts_[i].heal > engine_.now())
        engine_.post_at(cuts_[i].heal, [this, i] { fire_heal(i); });
  }
  return id;
}

void Machine::remove_heal_observer(std::uint64_t id) {
  std::erase_if(heal_observers_,
                [id](const HealObserver& o) { return o.id == id; });
}

void Machine::fire_heal(std::size_t idx) {
  for (std::size_t i = 0; i < heal_observers_.size(); ++i)
    heal_observers_[i].fn(idx);
}

void Machine::check_node(NodeId home) const {
  if (home >= cfg_.nodes) throw SimError("bad node in address");
}

void Machine::check_target(NodeId home) {
  if (!node_dead_[home]) return;
  ++stats_.dead_node_refs;
  // The requester still pays for the failed transaction: issue overhead,
  // the trip out, and the error reply coming back.
  charge(cfg_.issue_overhead_ns + 2 * fabric_.traversal_ns());
  throw NodeDeadError(home);
}

void Machine::maybe_mem_fault(NodeId home) {
  if (faults_.mem_fault_prob <= 0.0) return;
  if (fault_rng_.uniform() >= faults_.mem_fault_prob) return;
  ++stats_.mem_faults_injected;
  throw MemoryFaultError(home);
}

void Machine::abandon(Fiber* f) {
  FiberCtl* c = ctl(f);
  if (c == nullptr) return;  // already finished
  assert(!c->resume_pending && f->state() != Fiber::State::kRunning);
  reap(c);
}

// --- Memory --------------------------------------------------------------

void Machine::ensure_backing(Node& nd, std::size_t end) const {
  if (end > cfg_.memory_per_node) throw SimError("physical address out of range");
  if (nd.mem.size() < end) {
    std::size_t grown = std::max(end, nd.mem.size() * 2);
    nd.mem.resize(std::min(grown, cfg_.memory_per_node), 0);
  }
}

std::uint8_t* Machine::raw(PhysAddr a, std::size_t n) { return raw_mut(a, n); }

std::uint8_t* Machine::raw_mut(PhysAddr a, std::size_t n) {
  if (a.node >= cfg_.nodes) throw SimError("bad node in address");
  Node& nd = node_[a.node];
  ensure_backing(nd, static_cast<std::size_t>(a.offset) + n);
  return nd.mem.data() + a.offset;
}

const std::uint8_t* Machine::raw_const(PhysAddr a, std::size_t n) const {
  if (a.node >= cfg_.nodes) throw SimError("bad node in address");
  Node& nd = node_[a.node];
  ensure_backing(nd, static_cast<std::size_t>(a.offset) + n);
  return nd.mem.data() + a.offset;
}

PhysAddr Machine::alloc(NodeId node, std::size_t bytes, std::size_t align) {
  if (node >= cfg_.nodes) throw SimError("alloc: bad node");
  if (fault_checks_ && node_dead_[node]) throw NodeDeadError(node);
  if (bytes == 0) bytes = 1;
  (void)align;  // everything is 8-aligned
  const auto size = static_cast<std::uint32_t>((bytes + 7) & ~std::size_t{7});
  Node& nd = node_[node];
  // First fit over freed blocks.
  for (std::size_t i = 0; i < nd.free_list.size(); ++i) {
    FreeBlock& fb = nd.free_list[i];
    if (fb.size >= size) {
      PhysAddr a{node, fb.offset};
      fb.offset += size;
      fb.size -= size;
      if (fb.size == 0) nd.free_list.erase(nd.free_list.begin() + i);
      nd.allocated += size;
      return a;
    }
  }
  if (nd.high_water + size > cfg_.memory_per_node)
    throw SimError("alloc: node memory exhausted");
  PhysAddr a{node, nd.high_water};
  nd.high_water += size;
  nd.allocated += size;
  return a;
}

void Machine::free(PhysAddr addr, std::size_t bytes) {
  if (addr.node >= cfg_.nodes) return;
  if (observer_) {
    HookScope h(this);
    observer_->on_free(addr, bytes);
  }
  const auto size = static_cast<std::uint32_t>((bytes + 7) & ~std::size_t{7});
  Node& nd = node_[addr.node];
  nd.allocated -= std::min<std::size_t>(nd.allocated, size);
  // The free list is kept sorted by offset so adjacent blocks coalesce on
  // insert — alloc/free churn at one size can never grow it without bound.
  // (Offsets never influence timing — only the home *node* does — so the
  // address-ordered first fit this implies is simulation-neutral.)
  auto it = std::lower_bound(
      nd.free_list.begin(), nd.free_list.end(), addr.offset,
      [](const FreeBlock& fb, std::uint32_t off) { return fb.offset < off; });
  if (it != nd.free_list.begin()) {
    auto prev = it - 1;
    if (prev->offset + prev->size == addr.offset) {
      prev->size += size;
      if (it != nd.free_list.end() &&
          prev->offset + prev->size == it->offset) {
        prev->size += it->size;
        nd.free_list.erase(it);
      }
      return;
    }
  }
  if (it != nd.free_list.end() && addr.offset + size == it->offset) {
    it->offset = addr.offset;
    it->size += size;
    return;
  }
  nd.free_list.insert(it, FreeBlock{addr.offset, size});
}

std::size_t Machine::allocated_on(NodeId node) const {
  return node_[node].allocated;
}

Time Machine::reference_finish(NodeId req, NodeId home, std::uint32_t words,
                               Time* queue_ns) {
  const Time t = engine_.now() + cfg_.issue_overhead_ns;
  Time arrive;
  try {
    arrive = fabric_.route(req, home, t, words);
  } catch (const NetUnreachableError& e) {
    // Dead switch card with no detour, or the PNC's drop-retry budget ran
    // out: the requester pays for the issue plus every futile retry, then
    // the error surfaces with no data moved.
    ++stats_.net_unreachable_refs;
    charge(cfg_.issue_overhead_ns + e.wasted());
    throw;
  }
  Node& h = node_[home];
  const Time start = std::max(arrive, h.module_busy_until);
  if (queue_ns) *queue_ns = start - arrive;
  Time service = static_cast<Time>(words) * cfg_.module_service_ns;
  if (has_slow_) {
    const double f = slow_factor(home);
    if (f != 1.0)
      service = static_cast<Time>(static_cast<double>(service) * f);
  }
  h.module_busy_until = start + service;
  Time finish = start + service;
  if (req != home) finish += fabric_.traversal_ns();  // reply path
  return finish;
}

double Machine::slow_factor(NodeId n) const {
  if (!has_slow_) return 1.0;
  const Time now = engine_.now();
  for (const FaultPlan::SlowNode& s : faults_.slow_nodes)
    if (s.node == n && now >= s.from && now < s.until) return s.factor;
  return 1.0;
}

void Machine::reference(PhysAddr a, std::uint32_t words, MemOp op) {
  const NodeId req = current_node();
  check_node(a.node);
  if (fault_checks_) {
    check_target(a.node);
    if (has_cuts_) check_reach(req, a.node);
  }
  observe_access(a, words, op, req);
  Time q = 0;
  const Time finish = reference_finish(req, a.node, words, &q);
  NodeStats& s = stats_.node[req];
  if (req == a.node) {
    ++s.local_refs;
  } else {
    ++s.remote_refs;
    ++stats_.node[a.node].serviced_remote;
  }
  s.queue_ns += q;
  trace_reference(req, a.node, words, q, op);
  const Time d = finish - engine_.now();
  s.stall_ns += d;
  charge(d);
  if (fault_checks_) maybe_mem_fault(a.node);
}

std::uint32_t Machine::fetch_add_u32(PhysAddr a, std::uint32_t delta) {
  reference(a, 1, MemOp::kAtomic);
  auto* p = raw(a, 4);
  std::uint32_t old;
  std::memcpy(&old, p, 4);
  const std::uint32_t nv = old + delta;
  std::memcpy(p, &nv, 4);
  return old;
}

std::uint32_t Machine::fetch_or_u32(PhysAddr a, std::uint32_t bits) {
  reference(a, 1, MemOp::kAtomic);
  auto* p = raw(a, 4);
  std::uint32_t old;
  std::memcpy(&old, p, 4);
  const std::uint32_t nv = old | bits;
  std::memcpy(p, &nv, 4);
  return old;
}

std::uint32_t Machine::test_and_set(PhysAddr a) {
  reference(a, 1, MemOp::kAtomic);
  auto* p = raw(a, 4);
  std::uint32_t old;
  std::memcpy(&old, p, 4);
  const std::uint32_t one = 1;
  std::memcpy(p, &one, 4);
  return old;
}

void Machine::block_copy(PhysAddr dst, PhysAddr src, std::size_t bytes) {
  if (bytes == 0) return;
  const NodeId req = current_node();
  check_node(src.node);
  check_node(dst.node);
  if (fault_checks_) {
    check_target(src.node);
    check_target(dst.node);
    if (has_cuts_) {
      check_reach(req, src.node);
      check_reach(req, dst.node);
    }
  }
  const std::uint32_t words = word_count(bytes);
  observe_access(src, words, MemOp::kRead, req);
  observe_access(dst, words, MemOp::kWrite, req);
  Time q = 0;
  // Head of the transfer pays full reference latency to the source...
  const Time head = reference_finish(req, src.node, 1, &q);
  // ...then words stream at the block rate, occupying both modules.
  const Time stream = static_cast<Time>(words) * cfg_.block_word_ns;
  const Time occupancy =
      static_cast<Time>(words) * cfg_.module_service_ns;
  node_[src.node].module_busy_until =
      std::max(node_[src.node].module_busy_until, head) + occupancy;
  node_[dst.node].module_busy_until =
      std::max(node_[dst.node].module_busy_until, head) + occupancy;

  NodeStats& s = stats_.node[req];
  s.block_words += words;
  s.queue_ns += q;
  if (src.node != req || dst.node != req) ++s.remote_refs;
  else ++s.local_refs;
  trace_reference(req, src.node, words, q, MemOp::kRead);
  trace_reference(req, dst.node, words, 0, MemOp::kWrite);

  const Time total = (head - engine_.now()) + stream;
  s.stall_ns += total;
  // Move the bytes at completion time.
  std::vector<std::uint8_t> tmp(bytes);
  charge(total);
  // A parity error voids the whole transfer: time charged, no data moved
  // (same contract as reference(); the PNC reports the block as failed).
  if (fault_checks_) maybe_mem_fault(src.node);
  peek_bytes(tmp.data(), src, bytes);
  poke_bytes(dst, tmp.data(), bytes);
}

void Machine::block_read(void* host_dst, PhysAddr src, std::size_t bytes) {
  if (bytes == 0) return;
  const NodeId req = current_node();
  check_node(src.node);
  if (fault_checks_) {
    check_target(src.node);
    if (has_cuts_) check_reach(req, src.node);
  }
  const std::uint32_t words = word_count(bytes);
  observe_access(src, words, MemOp::kRead, req);
  Time q = 0;
  const Time head = reference_finish(req, src.node, 1, &q);
  const Time stream = static_cast<Time>(words) * cfg_.block_word_ns;
  node_[src.node].module_busy_until =
      std::max(node_[src.node].module_busy_until, head) +
      static_cast<Time>(words) * cfg_.module_service_ns;
  NodeStats& s = stats_.node[req];
  s.block_words += words;
  s.queue_ns += q;
  if (src.node != req) ++s.remote_refs;
  else ++s.local_refs;
  trace_reference(req, src.node, words, q, MemOp::kRead);
  const Time total = (head - engine_.now()) + stream;
  s.stall_ns += total;
  charge(total);
  if (fault_checks_) maybe_mem_fault(src.node);
  peek_bytes(host_dst, src, bytes);
}

void Machine::block_write(PhysAddr dst, const void* host_src,
                          std::size_t bytes) {
  if (bytes == 0) return;
  const NodeId req = current_node();
  check_node(dst.node);
  if (fault_checks_) {
    check_target(dst.node);
    if (has_cuts_) check_reach(req, dst.node);
  }
  const std::uint32_t words = word_count(bytes);
  observe_access(dst, words, MemOp::kWrite, req);
  Time q = 0;
  const Time head = reference_finish(req, dst.node, 1, &q);
  const Time stream = static_cast<Time>(words) * cfg_.block_word_ns;
  node_[dst.node].module_busy_until =
      std::max(node_[dst.node].module_busy_until, head) +
      static_cast<Time>(words) * cfg_.module_service_ns;
  NodeStats& s = stats_.node[req];
  s.block_words += words;
  s.queue_ns += q;
  if (dst.node != req) ++s.remote_refs;
  else ++s.local_refs;
  trace_reference(req, dst.node, words, q, MemOp::kWrite);
  const Time total = (head - engine_.now()) + stream;
  s.stall_ns += total;
  charge(total);
  if (fault_checks_) maybe_mem_fault(dst.node);
  poke_bytes(dst, host_src, bytes);
}

void Machine::access_words(PhysAddr a, std::uint32_t n, bool write) {
  (void)write;
  if (n == 0) return;
  const NodeId req = current_node();
  check_node(a.node);
  if (fault_checks_) {
    check_target(a.node);
    if (has_cuts_) check_reach(req, a.node);
  }
  // Aggregate traffic: counted for contention lints, never race-checked
  // (these calls model reference volume, not individual data accesses).
  observe_access(a, n, MemOp::kAggregate, req);
  // n back-to-back single-word references; the requester is latency-bound,
  // so each starts when the previous completes.  Only the first can queue
  // behind foreign traffic (an approximation that keeps this O(1)).
  Time q = 0;
  const Time first = reference_finish(req, a.node, 1, &q);
  const Time per = first - engine_.now() - q;  // uncontended latency
  node_[a.node].module_busy_until +=
      static_cast<Time>(n - 1) * cfg_.module_service_ns;
  NodeStats& s = stats_.node[req];
  if (req == a.node) s.local_refs += n;
  else {
    s.remote_refs += n;
    stats_.node[a.node].serviced_remote += n;
  }
  s.queue_ns += q;
  trace_reference(req, a.node, n, q, MemOp::kAggregate);
  const Time total = q + static_cast<Time>(n) * per;
  s.stall_ns += total;
  charge(total);
}

}  // namespace bfly::sim
