// The Butterfly switching network.
//
// A 4-ary multistage (banyan) network: N nodes need ceil(log4 N) stages of
// 4x4 switches.  Routing is destination-digit addressed: at stage s the
// packet exits on the port given by base-4 digit s of the destination.
//
// The paper reports (citing Rettberg & Thomas, CACM 1986) that switch
// contention is "almost negligible" on the real machine, so by default we
// model only per-hop latency.  Optional port-occupancy modelling is provided
// for the ablation bench that verifies the claim inside our own model.
//
// Fault domains: large Butterfly configurations shipped an extra switch
// column precisely to provide redundant paths around failed switch cards.
// We model that here: a FaultPlan can kill a 4x4 switch card or a single
// backplane link; routes whose default path crosses dead silicon detour via
// the redundant column — the packet enters the banyan on a different input
// row (a re-randomized path digit) for one extra hop of latency.  The card
// at stage s is identified by every digit of the wire position EXCEPT digit
// s (the digit that stage switches), so early-stage cards depend on source
// digits (avoidable by detour) while the final column is fully
// destination-determined — it is wired straight into the memory modules and
// a dead final card severs its four nodes, exactly the unavoidable fault
// domain the real machine had.  When no healthy path exists the reference
// raises NetUnreachableError with the PNC's futile retry budget charged.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/config.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace bfly::sim {

class SwitchFabric {
 public:
  explicit SwitchFabric(const MachineConfig& cfg);

  /// Arm packet-level fault injection (drop/delay) from a plan.  `rng` must
  /// outlive the fabric; Machine passes its dedicated fault RNG so the main
  /// machine RNG stream is untouched.  No-op when the plan injects nothing.
  void configure_faults(const FaultPlan& plan, Rng* rng);

  /// Machine-wide counters for alt-routes / exhausted retry budgets; the
  /// fabric reports into them when set (Machine wires this at construction).
  void set_stats(MachineStats* s) { stats_ = s; }

  /// Number of switch stages a packet traverses.
  std::uint32_t stages() const { return stages_; }

  /// Wire positions per stage (4^stages — the virtual position space; for
  /// non-power-of-4 machines the physical wires fold onto it modulo nodes).
  std::uint32_t wires() const { return reach_; }
  /// 4x4 switch cards per stage.
  std::uint32_t cards() const { return reach_ / 4; }

  /// Pure pipeline latency of one traversal (no contention).
  Time traversal_ns() const { return stages_ * hop_ns_; }

  /// Kill card `card` of stage `stage` / output wire `link` of `stage`.
  /// Permanent for the run.  Machine schedules these from the FaultPlan.
  void fail_card(std::uint32_t stage, std::uint32_t card);
  void fail_link(std::uint32_t stage, std::uint32_t link);

  /// True when some path (default or detour) from src to dst is healthy.
  /// Always true while no card/link has failed yet.
  bool has_path(NodeId src, NodeId dst) const;

  /// Charge one packet of `words` 32-bit words through the network at time
  /// `depart`, from `src` to `dst`.  Returns the time the head of the packet
  /// arrives at the destination module.  With contention modelling enabled,
  /// the packet queues at each stage's output port.  Raises
  /// NetUnreachableError when every path crosses dead silicon or the PNC's
  /// drop-retry budget runs out (`wasted()` carries the burned retry time).
  Time route(NodeId src, NodeId dst, Time depart, std::uint32_t words);

  /// Total time packets spent queueing in the switch (0 unless contention
  /// modelling is on).
  Time contention_ns() const { return contention_ns_; }

  // --- Switch combining (Ultracomputer-style fetch-and-add) ---------------
  // When MachineConfig::switch_combining is set (together with contention
  // modelling), concurrent fetch-and-adds to one hot word that meet at a
  // switch stage merge into a single upstream transaction: the first add in
  // flight is the *leader* and pays the full contended traversal + module
  // service; any add to the same cell issued while the leader's wait-buffer
  // entry is live (until its reply fans back down) is a *follower* that
  // never reaches the module at all — it completes at its own uncontended
  // round trip plus one de-combining hop, no earlier than the previous
  // combiner.  Machine::fetch_add_u32 drives these two hooks; everything is
  // inert unless combining is armed.

  bool combining() const { return combining_; }
  /// Try to merge an add to `cell` issued at `issue`.  On success bumps the
  /// combined counter and returns the follower's completion time in
  /// `*finish`.  `cell` is the chan_of key of the hot word.
  bool combine_add(std::uint64_t cell, Time issue, Time* finish);
  /// Open a combining window for `cell`: a leader's request is in flight
  /// and its reply lands at `finish` (followers may merge until then).
  void record_add(std::uint64_t cell, Time finish);
  /// Fetch-adds that merged at a switch instead of reaching the module.
  std::uint64_t combined_adds() const { return combined_adds_; }

  /// Packets dropped (and retried) / delayed by fault injection.
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  std::uint64_t packets_delayed() const { return packets_delayed_; }

 private:
  std::uint32_t port_index(std::uint32_t stage, NodeId src, NodeId dst) const;
  /// Virtual wire position occupied after stage `stage` (unfolded space).
  std::uint32_t wire_at(std::uint32_t stage, std::uint32_t src,
                        NodeId dst) const;
  /// Card owning `wire` at `stage`: the wire position with digit `stage`
  /// removed.
  std::uint32_t card_at(std::uint32_t stage, std::uint32_t wire) const;
  /// True when the path entering the banyan at row `vsrc` crosses a dead
  /// card or link on the way to `dst`.
  bool path_blocked(std::uint32_t vsrc, NodeId dst) const;
  /// First healthy entry row for src->dst (the default row `src`, or a
  /// deterministic detour scan), or kNoPath.
  std::uint32_t pick_entry(NodeId src, NodeId dst) const;
  [[noreturn]] void throw_unreachable(NodeId src, NodeId dst,
                                      const char* why);

  static constexpr std::uint32_t kNoPath = 0xffffffffu;

  std::uint32_t nodes_;
  std::uint32_t stages_;
  std::uint32_t reach_;  // 4^stages_: virtual wire positions per stage
  Time hop_ns_;
  bool model_contention_;
  Time port_service_ns_;
  // busy-until per (stage, output port); port space is stages x nodes since
  // a 4-ary banyan has N output ports per stage (N/4 switches x 4 ports).
  std::vector<Time> port_busy_;
  Time contention_ns_ = 0;

  // Packet fault injection (inactive unless configure_faults armed it).
  Rng* fault_rng_ = nullptr;
  double drop_prob_ = 0.0;
  double delay_prob_ = 0.0;
  Time drop_retry_ns_ = 100 * kMicrosecond;
  Time delay_ns_ = 0;
  std::uint32_t max_drop_retries_ = 16;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_delayed_ = 0;

  // Persistent path health (empty until the first card/link failure fires;
  // routing skips every health check while path_faults_ is false, so plans
  // without them stay byte-identical).
  bool path_faults_ = false;
  std::vector<std::uint8_t> card_dead_;  // stages x cards()
  std::vector<std::uint8_t> link_dead_;  // stages x wires()
  MachineStats* stats_ = nullptr;

  // Combining windows, keyed by hot word (chan_of).  `until` is when the
  // leader's reply passes back through the combining stage (window closes);
  // `finish` chains follower completions so de-combined replies stay in
  // issue order.  Stale windows are pruned lazily on miss.
  struct AddWindow {
    Time until = 0;
    Time finish = 0;
  };
  bool combining_ = false;
  std::unordered_map<std::uint64_t, AddWindow> add_windows_;
  std::uint64_t combined_adds_ = 0;
};

}  // namespace bfly::sim
