// The Butterfly switching network.
//
// A 4-ary multistage (banyan) network: N nodes need ceil(log4 N) stages of
// 4x4 switches.  Routing is destination-digit addressed: at stage s the
// packet exits on the port given by base-4 digit s of the destination.
//
// The paper reports (citing Rettberg & Thomas, CACM 1986) that switch
// contention is "almost negligible" on the real machine, so by default we
// model only per-hop latency.  Optional port-occupancy modelling is provided
// for the ablation bench that verifies the claim inside our own model.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace bfly::sim {

class SwitchFabric {
 public:
  explicit SwitchFabric(const MachineConfig& cfg);

  /// Arm packet-level fault injection (drop/delay) from a plan.  `rng` must
  /// outlive the fabric; Machine passes its dedicated fault RNG so the main
  /// machine RNG stream is untouched.  No-op when the plan injects nothing.
  void configure_faults(const FaultPlan& plan, Rng* rng);

  /// Number of switch stages a packet traverses.
  std::uint32_t stages() const { return stages_; }

  /// Pure pipeline latency of one traversal (no contention).
  Time traversal_ns() const { return stages_ * hop_ns_; }

  /// Charge one packet of `words` 32-bit words through the network at time
  /// `depart`, from `src` to `dst`.  Returns the time the head of the packet
  /// arrives at the destination module.  With contention modelling enabled,
  /// the packet queues at each stage's output port.
  Time route(NodeId src, NodeId dst, Time depart, std::uint32_t words);

  /// Total time packets spent queueing in the switch (0 unless contention
  /// modelling is on).
  Time contention_ns() const { return contention_ns_; }

  /// Packets dropped (and retried) / delayed by fault injection.
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  std::uint64_t packets_delayed() const { return packets_delayed_; }

 private:
  std::uint32_t port_index(std::uint32_t stage, NodeId src, NodeId dst) const;

  std::uint32_t nodes_;
  std::uint32_t stages_;
  Time hop_ns_;
  bool model_contention_;
  Time port_service_ns_;
  // busy-until per (stage, output port); port space is stages x nodes since
  // a 4-ary banyan has N output ports per stage (N/4 switches x 4 ports).
  std::vector<Time> port_busy_;
  Time contention_ns_ = 0;

  // Packet fault injection (inactive unless configure_faults armed it).
  Rng* fault_rng_ = nullptr;
  double drop_prob_ = 0.0;
  double delay_prob_ = 0.0;
  Time drop_retry_ns_ = 0;
  Time delay_ns_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_delayed_ = 0;
};

}  // namespace bfly::sim
