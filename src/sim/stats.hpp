// Machine-wide and per-node statistics gathered by the simulator.
//
// Everything here is observational: no simulated behaviour depends on these
// counters, so they can be reset mid-run to bracket a measurement region
// (the benches do exactly that).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/json.hpp"
#include "sim/time.hpp"

namespace bfly::sim {

struct NodeStats {
  std::uint64_t local_refs = 0;    ///< references issued by this node to itself
  std::uint64_t remote_refs = 0;   ///< references issued by this node to others
  std::uint64_t serviced_remote = 0;  ///< remote refs serviced by this module
  Time stall_ns = 0;               ///< time this node's CPU spent in references
  Time queue_ns = 0;               ///< portion of stall spent waiting on busy modules
  Time compute_ns = 0;             ///< explicit compute charges
  std::uint64_t block_words = 0;   ///< words moved by block transfers
};

/// Host-side cost counters for the simulation substrate itself.  Unlike
/// NodeStats these describe the *host* machine — how many engine events,
/// context switches, and switch-free charges a run cost — and carry no
/// paper-reproduction meaning.  They feed bench_host_simulator's
/// BENCH_host_sim.json trajectory row and never influence simulation.
struct HostPerf {
  std::uint64_t events_dispatched = 0;  ///< engine events popped and run
  std::uint64_t fiber_resumes = 0;      ///< full fiber context switches
  std::uint64_t fastpath_charges = 0;   ///< charges that warped, no switch
  bool fastpath_enabled = false;

  /// Braceless JSON fragment for bench rows.
  std::string json() const {
    json::Writer w(json::Writer::kFragment);
    w.kv("events_dispatched", events_dispatched)
        .kv("fiber_resumes", fiber_resumes)
        .kv("fastpath_charges", fastpath_charges)
        .kv("fastpath_enabled", fastpath_enabled);
    return w.take();
  }
};

struct MachineStats {
  std::vector<NodeStats> node;

  // Machine-wide fault accounting (all zero unless a FaultPlan is active).
  std::uint64_t mem_faults_injected = 0;  ///< transient faults raised
  std::uint64_t dead_node_refs = 0;       ///< references that hit a dead node

  // Network fault-domain accounting (switch cards/links/partitions).
  std::uint64_t net_unreachable_refs = 0;  ///< references with no usable path
  std::uint64_t alt_routed = 0;            ///< packets detoured (+1 hop)
  std::uint64_t drops_exhausted = 0;       ///< PNC retry budgets exhausted

  // Rescue-layer accounting (bfly::rescue; zero when no detector runs).
  std::uint64_t suspects_declared = 0;   ///< dead nodes found by heartbeat loss
  std::uint64_t false_suspects = 0;      ///< accusations of nodes still alive
  std::uint64_t suspects_unreachable = 0;  ///< alive nodes flagged partitioned
  std::uint64_t unreachable_restored = 0;  ///< partitioned nodes heard again
  std::uint64_t checkpoints_taken = 0;   ///< quiesced checkpoints written
  std::uint64_t restart_count = 0;       ///< runs resumed from a checkpoint

  // Serving-layer accounting (bfly::serve; zero when no ReplicatedFs runs).
  std::uint64_t serve_retries = 0;         ///< per-request retry attempts
  std::uint64_t serve_hedges = 0;          ///< hedged second reads issued
  std::uint64_t serve_hedge_wins = 0;      ///< hedges that beat the primary
  std::uint64_t serve_sheds = 0;           ///< requests rejected by admission
  std::uint64_t serve_timeouts = 0;        ///< requests that ran out of budget
  std::uint64_t serve_rereplications = 0;  ///< blocks re-replicated after loss
  std::uint64_t serve_quorum_rejects = 0;  ///< writes refused: no majority
  std::uint64_t serve_dirty_logged = 0;    ///< replicas dirty-logged at ack
  std::uint64_t serve_reconciled = 0;      ///< dirty replicas healed post-cut

  // Synchronization accounting (chrys::SpinLock, src/sync, the combining
  // fabric).  Machine-wide aggregates: benches and the Stats JSON no longer
  // depend on keeping every lock instance alive to read its counters.
  std::uint64_t lock_acquisitions = 0;  ///< SpinLock + McsLock acquires
  std::uint64_t lock_spins = 0;         ///< failed probes (remote or local)
  std::uint64_t barrier_episodes = 0;   ///< barrier episodes completed
  std::uint64_t combined_adds = 0;      ///< fetch-adds merged at a switch

  explicit MachineStats(std::size_t n = 0) : node(n) {}

  void reset() {
    for (auto& s : node) s = NodeStats{};
    mem_faults_injected = 0;
    dead_node_refs = 0;
    net_unreachable_refs = 0;
    alt_routed = 0;
    drops_exhausted = 0;
    suspects_declared = 0;
    false_suspects = 0;
    suspects_unreachable = 0;
    unreachable_restored = 0;
    checkpoints_taken = 0;
    restart_count = 0;
    serve_retries = 0;
    serve_hedges = 0;
    serve_hedge_wins = 0;
    serve_sheds = 0;
    serve_timeouts = 0;
    serve_rereplications = 0;
    serve_quorum_rejects = 0;
    serve_dirty_logged = 0;
    serve_reconciled = 0;
    lock_acquisitions = 0;
    lock_spins = 0;
    barrier_episodes = 0;
    combined_adds = 0;
  }

  /// Synchronization counters as a JSON fragment (no braces), for benches
  /// that emit one JSON object per configuration.
  std::string sync_json() const {
    json::Writer w(json::Writer::kFragment);
    w.kv("lock_acquisitions", lock_acquisitions)
        .kv("lock_spins", lock_spins)
        .kv("barrier_episodes", barrier_episodes)
        .kv("combined_adds", combined_adds);
    return w.take();
  }

  /// Fault + rescue counters as a JSON fragment (no braces), for benches
  /// that emit one JSON object per configuration.
  std::string fault_json() const {
    json::Writer w(json::Writer::kFragment);
    w.kv("mem_faults_injected", mem_faults_injected)
        .kv("dead_node_refs", dead_node_refs)
        .kv("net_unreachable_refs", net_unreachable_refs)
        .kv("alt_routed", alt_routed)
        .kv("drops_exhausted", drops_exhausted)
        .kv("suspects_declared", suspects_declared)
        .kv("false_suspects", false_suspects)
        .kv("suspects_unreachable", suspects_unreachable)
        .kv("unreachable_restored", unreachable_restored)
        .kv("checkpoints_taken", checkpoints_taken)
        .kv("restart_count", restart_count)
        .kv("serve_retries", serve_retries)
        .kv("serve_hedges", serve_hedges)
        .kv("serve_hedge_wins", serve_hedge_wins)
        .kv("serve_sheds", serve_sheds)
        .kv("serve_timeouts", serve_timeouts)
        .kv("serve_rereplications", serve_rereplications)
        .kv("serve_quorum_rejects", serve_quorum_rejects)
        .kv("serve_dirty_logged", serve_dirty_logged)
        .kv("serve_reconciled", serve_reconciled);
    return w.take();
  }

  std::uint64_t total_local_refs() const {
    std::uint64_t t = 0;
    for (const auto& s : node) t += s.local_refs;
    return t;
  }
  std::uint64_t total_remote_refs() const {
    std::uint64_t t = 0;
    for (const auto& s : node) t += s.remote_refs;
    return t;
  }
  Time total_queue_ns() const {
    Time t = 0;
    for (const auto& s : node) t += s.queue_ns;
    return t;
  }
};

}  // namespace bfly::sim
