// Simulated time for the Butterfly machine model.
//
// All simulated durations and timestamps are integer nanoseconds.  The
// discrete-event engine is fully deterministic: ties in the event queue are
// broken by insertion sequence number, never by host behaviour.
#pragma once

#include <cstdint>
#include <string>

namespace bfly::sim {

/// Simulated time in nanoseconds since machine power-on.
using Time = std::uint64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

/// Render a duration with an adaptive unit ("3.2us", "1.5ms", "2.04s").
std::string format_duration(Time ns);

/// Fraction a/b as a double, 0 when b == 0.
inline double ratio(Time a, Time b) {
  return b == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(b);
}

}  // namespace bfly::sim
